// Package obs is the runtime's deterministic observability subsystem:
// structured trace events stamped with simulated time, per-migration spans
// that attribute each hop's latency to its phases (MD→MI conversion, wire,
// MI→MD respecialization — the breakdown behind the paper's Table 1), and a
// metrics registry of counters/gauges/histograms keyed by node and ISA.
//
// Everything here is driven by the discrete-event simulation: the same
// program on the same topology produces a byte-identical event stream and
// metrics snapshot on every run (asserted by test). The package deliberately
// imports nothing from the rest of the runtime — times are raw simulated
// microseconds (int64) and object identities are raw OID bits (uint32) — so
// every layer (netsim, wire, kernel, core) can emit into it without import
// cycles.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Kind identifies a structured event type.
type Kind uint8

// Event kinds. The order is part of the (internal) stream format; new kinds
// go at the end.
const (
	// EvText is a free-form kernel trace line (the legacy Trace hook is a
	// text sink over the event stream; lines that have no typed event yet
	// travel as EvText).
	EvText Kind = iota + 1
	// EvThreadStop: a thread's activation was observed stopped at bus stop
	// A of function Str (during migration marshalling). Frag/Obj identify
	// the thread piece and the migrating object.
	EvThreadStop
	// EvThreadResume: a migrated-in thread fragment was re-specialized and
	// rescheduled; A is the number of activation records installed.
	EvThreadResume
	// EvConvOut: an MD→MI conversion batch completed on Node; A is the
	// number of conversion-procedure calls, B the converted bytes.
	EvConvOut
	// EvConvIn: an MI→MD conversion batch completed (same payload as
	// EvConvOut).
	EvConvIn
	// EvWireSend: Node sent a protocol message of kind Str to node B; A is
	// the serialized payload length.
	EvWireSend
	// EvWireRecv: Node received a message of kind Str from node B; A is the
	// payload length.
	EvWireRecv
	// EvNetFrame: the shared medium carried a frame of A bytes (B payload
	// bytes) from Node; Span holds the transmission time in µs.
	EvNetFrame
	// EvMigrateOut: Node began migrating object Obj to node B (span Span);
	// Str is the object kind (plain/array/immutable), A the fragment count.
	EvMigrateOut
	// EvMigrateIn: Node finished installing object Obj from node B (span
	// Span).
	EvMigrateIn
	// EvRemoteInvoke: Node sent operation Str on object Obj to node B.
	EvRemoteInvoke
	// EvProxyForward: Node forwarded a message about Obj (kind Str) along
	// its forwarding address to node B.
	EvProxyForward
	// EvMonitorWait: Frag waited on condition A of object Obj.
	EvMonitorWait
	// EvMonitorSignal: Frag signalled condition A of object Obj.
	EvMonitorSignal
	// EvMonitorBlock: Frag blocked at monitor entry of Obj (contention).
	EvMonitorBlock
	// EvGCCycle: a collection on Node freed A objects (B bytes).
	EvGCCycle
	// EvFault: a thread died; Str is the message.
	EvFault
	// EvFaultInject: the chaos injector faulted a frame from Node to node B;
	// Str names the fault (drop/dup/delay/corrupt/partition).
	EvFaultInject
	// EvRetransmit: Node retransmitted link frame seq A to node B (Str is
	// the inner message kind); Span holds the attempt number.
	EvRetransmit
	// EvMoveCommit: Node's move of Obj to node B (span Span) was acked by
	// the destination and committed.
	EvMoveCommit
	// EvMoveAbort: Node aborted the move of Obj to node B (span Span); Str
	// is the reason (timeout/refused/degraded).
	EvMoveAbort
	// EvMoveDupDrop: Node suppressed a duplicate Move of Obj (span Span)
	// from node B — the object was already installed.
	EvMoveDupDrop
	// EvNodeCrash: Node crashed (fail-stop) at the scheduled instant.
	EvNodeCrash
	// EvNodeRestart: Node restarted with durable state intact.
	EvNodeRestart
	// EvNodeSuspect: Node started suspecting node B down (no frame for A µs).
	EvNodeSuspect
	// EvNodeRecover: Node heard from suspected node B again.
	EvNodeRecover
	// EvLinkDrop: Node discarded an undeliverable or unusable frame from
	// node B (Str is the reason, e.g. crc/down).
	EvLinkDrop
	// EvMoveGroupOut: Node sent a batched cohort move of A objects to node
	// B in one frame (span Span is the first member's span; Str labels the
	// cohort).
	EvMoveGroupOut
	// EvMoveGroupIn: Node finished installing a batched cohort move of A
	// objects from node B (span Span is the first member's span).
	EvMoveGroupIn
	// EvAutoDecision: the placement policy Str decided to move object Obj
	// (named by the decision text in Str) to node B; A is the decision
	// index within the tick.
	EvAutoDecision
	// EvDirDecree: Node (a move's source) drove the directory decree for
	// object Obj to completion — a quorum chose home node B at epoch A.
	EvDirDecree
	// EvDirDegraded: the directory round for object Obj gave up (Str says
	// why: decree attempts exhausted, lookup timeout, all replicas
	// suspected); the caller fell back to forwarding-address mode.
	EvDirDegraded
	// EvDirLookup: Node resolved a directory lookup for object Obj; A is 1
	// on a hit (B is the recorded home node) and 0 on a miss/degrade.
	EvDirLookup
	// EvDirCompact: the background compactor on Node rewrote the stale
	// proxy for object Obj to point at home node B (epoch A).
	EvDirCompact
)

func (k Kind) String() string {
	switch k {
	case EvText:
		return "text"
	case EvThreadStop:
		return "thread-stop"
	case EvThreadResume:
		return "thread-resume"
	case EvConvOut:
		return "conv-out"
	case EvConvIn:
		return "conv-in"
	case EvWireSend:
		return "wire-send"
	case EvWireRecv:
		return "wire-recv"
	case EvNetFrame:
		return "net-frame"
	case EvMigrateOut:
		return "migrate-out"
	case EvMigrateIn:
		return "migrate-in"
	case EvRemoteInvoke:
		return "remote-invoke"
	case EvProxyForward:
		return "proxy-forward"
	case EvMonitorWait:
		return "monitor-wait"
	case EvMonitorSignal:
		return "monitor-signal"
	case EvMonitorBlock:
		return "monitor-block"
	case EvGCCycle:
		return "gc-cycle"
	case EvFault:
		return "fault"
	case EvFaultInject:
		return "fault-inject"
	case EvRetransmit:
		return "retransmit"
	case EvMoveCommit:
		return "move-commit"
	case EvMoveAbort:
		return "move-abort"
	case EvMoveDupDrop:
		return "move-dup-drop"
	case EvNodeCrash:
		return "node-crash"
	case EvNodeRestart:
		return "node-restart"
	case EvNodeSuspect:
		return "node-suspect"
	case EvNodeRecover:
		return "node-recover"
	case EvLinkDrop:
		return "link-drop"
	case EvMoveGroupOut:
		return "move-group-out"
	case EvMoveGroupIn:
		return "move-group-in"
	case EvAutoDecision:
		return "auto-decision"
	case EvDirDecree:
		return "dir-decree"
	case EvDirDegraded:
		return "dir-degraded"
	case EvDirLookup:
		return "dir-lookup"
	case EvDirCompact:
		return "dir-compact"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured trace event. Field meaning depends on Kind (see
// the kind constants); unused fields are zero. At is simulated microseconds,
// Seq the event's emission index within its node's ring (per-node, so the
// numbering is identical whether the simulation ran sequentially or in
// parallel; cross-node order comes from sorting on (At, Node, Seq)).
type Event struct {
	Seq  uint64
	At   int64
	Node int32
	Kind Kind
	Span uint32 // migration span id (0: none)
	Frag uint32 // thread fragment id (0: none)
	Obj  uint32 // object identity bits (0: none)
	A, B uint64 // kind-specific scalars
	Str  string // kind-specific label
}

// Text renders the event as a legacy-style kernel trace line (without the
// timestamp prefix, which the sink adds).
func (e Event) Text() string {
	switch e.Kind {
	case EvText:
		return e.Str
	case EvThreadStop:
		return fmt.Sprintf("node%d frag%08x stopped at bus stop %d in %s", e.Node, e.Frag, e.A, e.Str)
	case EvThreadResume:
		return fmt.Sprintf("node%d frag%08x resumed (%d records respecialized)", e.Node, e.Frag, e.A)
	case EvConvOut:
		return fmt.Sprintf("node%d MD->MI conversion: %d calls, %d bytes", e.Node, e.A, e.B)
	case EvConvIn:
		return fmt.Sprintf("node%d MI->MD conversion: %d calls, %d bytes", e.Node, e.A, e.B)
	case EvWireSend:
		return fmt.Sprintf("node%d -> node%d %s (%d bytes)", e.Node, e.B, e.Str, e.A)
	case EvWireRecv:
		return fmt.Sprintf("node%d <- node%d %s (%d bytes)", e.Node, e.B, e.Str, e.A)
	case EvNetFrame:
		return fmt.Sprintf("net: frame from node%d, %d bytes (%d payload), %dµs on the medium", e.Node, e.A, e.B, e.Span)
	case EvMigrateOut:
		return fmt.Sprintf("node%d migrate-out obj%08x -> node%d (%s, %d frags, span %d)", e.Node, e.Obj, e.B, e.Str, e.A, e.Span)
	case EvMigrateIn:
		return fmt.Sprintf("node%d migrate-in obj%08x <- node%d (span %d)", e.Node, e.Obj, e.B, e.Span)
	case EvRemoteInvoke:
		return fmt.Sprintf("node%d remote invoke %s on obj%08x at node%d", e.Node, e.Str, e.Obj, e.B)
	case EvProxyForward:
		return fmt.Sprintf("node%d forwarded %s about obj%08x to node%d", e.Node, e.Str, e.Obj, e.B)
	case EvMonitorWait:
		return fmt.Sprintf("node%d frag%08x wait on cond %d of obj%08x", e.Node, e.Frag, e.A, e.Obj)
	case EvMonitorSignal:
		return fmt.Sprintf("node%d frag%08x signal cond %d of obj%08x", e.Node, e.Frag, e.A, e.Obj)
	case EvMonitorBlock:
		return fmt.Sprintf("node%d frag%08x blocked at monitor entry of obj%08x", e.Node, e.Frag, e.Obj)
	case EvGCCycle:
		return fmt.Sprintf("node%d gc: freed %d objects (%d bytes)", e.Node, e.A, e.B)
	case EvFault:
		return fmt.Sprintf("node%d frag%08x FAULT: %s", e.Node, e.Frag, e.Str)
	case EvFaultInject:
		return fmt.Sprintf("chaos: %s frame node%d -> node%d", e.Str, e.Node, e.B)
	case EvRetransmit:
		return fmt.Sprintf("node%d retransmit seq %d -> node%d (%s, attempt %d)", e.Node, e.A, e.B, e.Str, e.Span)
	case EvMoveCommit:
		return fmt.Sprintf("node%d move-commit obj%08x -> node%d (span %d)", e.Node, e.Obj, e.B, e.Span)
	case EvMoveAbort:
		return fmt.Sprintf("node%d move-abort obj%08x -> node%d (span %d): %s", e.Node, e.Obj, e.B, e.Span, e.Str)
	case EvMoveDupDrop:
		return fmt.Sprintf("node%d dropped duplicate Move of obj%08x from node%d (span %d)", e.Node, e.Obj, e.B, e.Span)
	case EvNodeCrash:
		return fmt.Sprintf("node%d CRASHED", e.Node)
	case EvNodeRestart:
		return fmt.Sprintf("node%d restarted", e.Node)
	case EvNodeSuspect:
		return fmt.Sprintf("node%d suspects node%d down (silent %dµs)", e.Node, e.B, e.A)
	case EvNodeRecover:
		return fmt.Sprintf("node%d heard from node%d again", e.Node, e.B)
	case EvLinkDrop:
		return fmt.Sprintf("node%d dropped frame from node%d (%s)", e.Node, e.B, e.Str)
	case EvMoveGroupOut:
		return fmt.Sprintf("node%d move-group-out %d objects -> node%d (span %d)", e.Node, e.A, e.B, e.Span)
	case EvMoveGroupIn:
		return fmt.Sprintf("node%d move-group-in %d objects <- node%d (span %d)", e.Node, e.A, e.B, e.Span)
	case EvAutoDecision:
		return fmt.Sprintf("node%d auto-decision #%d: %s -> node%d", e.Node, e.A, e.Str, e.B)
	case EvDirDecree:
		return fmt.Sprintf("node%d dir-decree obj%08x @ epoch %d -> node%d", e.Node, e.Obj, e.A, e.B)
	case EvDirDegraded:
		return fmt.Sprintf("node%d dir-degraded obj%08x: %s", e.Node, e.Obj, e.Str)
	case EvDirLookup:
		return fmt.Sprintf("node%d dir-lookup obj%08x: hit=%d node%d", e.Node, e.Obj, e.A, e.B)
	case EvDirCompact:
		return fmt.Sprintf("node%d dir-compact obj%08x -> node%d (epoch %d)", e.Node, e.Obj, e.B, e.A)
	}
	return fmt.Sprintf("node%d %s", e.Node, e.Kind)
}

// ring is a bounded per-node event buffer: the most recent cap events.
// Each ring numbers its own events (seq) and counts its own evictions
// (dropped): a ring is only ever written by its node's execution context,
// so per-ring state is what lets the parallel engine emit without locks.
type ring struct {
	buf     []Event
	next    int
	wrapped bool
	seq     uint64
	dropped uint64
}

func (r *ring) push(e Event) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.wrapped = true
}

// all returns the retained events oldest first.
func (r *ring) all() []Event {
	if !r.wrapped {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// NodeInfo labels one node in exports.
type NodeInfo struct {
	Name string // machine model name
	Arch string // ISA name
}

// DefaultRingCap bounds each node's event ring when the caller does not
// choose a capacity.
const DefaultRingCap = 8192

// Recorder collects events, spans and metrics for one cluster. Per-node
// event emission is partitioned: node i's events go to node i's ring,
// numbered by that ring's own counter, so concurrent node goroutines (the
// parallel engine) never share emission state. The span table and metrics
// registry are internally locked; the text sink is not (install one only
// for sequential runs — the parallel driver replays the merged stream
// after the run instead).
type Recorder struct {
	nodes   []NodeInfo
	rings   []ring
	cluster ring // events with Node < 0 (cluster-level text)
	spanMu  sync.Mutex
	spans   map[uint32]*Span
	spanSeq []uint64 // per-node span creation counters
	reg     *Registry
	sink    func(string)
}

// NewRecorder returns a recorder for n nodes with per-node rings of ringCap
// events (0 selects DefaultRingCap; negative disables event retention while
// keeping spans and metrics).
func NewRecorder(n, ringCap int) *Recorder {
	if ringCap == 0 {
		ringCap = DefaultRingCap
	}
	if ringCap < 0 {
		ringCap = 0
	}
	r := &Recorder{
		nodes:   make([]NodeInfo, n),
		rings:   make([]ring, n),
		spans:   map[uint32]*Span{},
		spanSeq: make([]uint64, n+1),
		reg:     NewRegistry(),
	}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, 0, ringCap)
	}
	r.cluster.buf = make([]Event, 0, min(ringCap, 1024))
	return r
}

// SetNodeInfo labels node i for exports.
func (r *Recorder) SetNodeInfo(i int, name, arch string) {
	if i >= 0 && i < len(r.nodes) {
		r.nodes[i] = NodeInfo{Name: name, Arch: arch}
	}
}

// Node returns node i's label.
func (r *Recorder) Node(i int) NodeInfo {
	if i >= 0 && i < len(r.nodes) {
		return r.nodes[i]
	}
	return NodeInfo{Name: fmt.Sprintf("node%d", i)}
}

// NumNodes returns the node count.
func (r *Recorder) NumNodes() int { return len(r.nodes) }

// Metrics returns the registry.
func (r *Recorder) Metrics() *Registry { return r.reg }

// SetTextSink installs a line sink that receives every event rendered as a
// legacy trace line (the old kernel Trace hook).
func (r *Recorder) SetTextSink(f func(string)) { r.sink = f }

// TextActive reports whether a text sink is installed (callers can skip
// building expensive text when false and no ring retains events).
func (r *Recorder) TextActive() bool { return r.sink != nil }

// Emit records one event: stamps the owning ring's sequence number and
// appends to that ring, rendering to the text sink if one is installed.
// Seq is per-ring (node), not global: a per-node counter is the only
// emission order both engines can agree on, and it is what the canonical
// (At, Node, Seq) merge in Events sorts by.
func (r *Recorder) Emit(e Event) {
	rg := &r.cluster
	if e.Node >= 0 && int(e.Node) < len(r.rings) {
		rg = &r.rings[e.Node]
	}
	rg.seq++
	e.Seq = rg.seq
	if rg.wrapped || len(rg.buf) == cap(rg.buf) {
		rg.dropped++
	}
	rg.push(e)
	if r.sink != nil {
		r.sink(fmt.Sprintf("[%8dµs] %s", e.At, e.Text()))
	}
}

// Textf emits a free-form trace line as an EvText event. The line is only
// formatted once, and only when something retains or renders it.
func (r *Recorder) Textf(at int64, node int32, format string, args ...any) {
	if r.sink == nil && len(r.rings) > 0 && cap(r.rings[0].buf) == 0 {
		return
	}
	r.Emit(Event{At: at, Node: node, Kind: EvText, Str: fmt.Sprintf(format, args...)})
}

// Dropped reports how many events were evicted from full rings (coverage
// caps are never silent).
func (r *Recorder) Dropped() uint64 {
	d := r.cluster.dropped
	for i := range r.rings {
		d += r.rings[i].dropped
	}
	return d
}

// Events returns every retained event merged in the canonical
// (At, Node, Seq) order — cluster-level events (Node < 0) first at each
// instant, then nodes ascending, then each ring's own emission order.
// This is the simulator's canonical event order, so the merge is identical
// under the sequential and parallel engines.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.rings {
		out = append(out, r.rings[i].all()...)
	}
	out = append(out, r.cluster.all()...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// OnFrame implements netsim's FrameObserver: the shared medium carried a
// frame. xmitMicros is the serialization time on the medium. Aggregate
// traffic counters come from netsim.Network.Counters at snapshot time; the
// observer only contributes the per-frame event.
func (r *Recorder) OnFrame(at int64, src, dst int, payload, frame int, xmitMicros int64) {
	r.Emit(Event{At: at, Node: int32(src), Kind: EvNetFrame,
		A: uint64(frame), B: uint64(payload), Span: uint32(xmitMicros)})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
