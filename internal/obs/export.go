// Exporters: Chrome trace-event JSON (load a migration timeline in
// chrome://tracing or Perfetto), a flat JSON metrics dump, and human text
// renderers. All output is deterministic: identical runs produce identical
// bytes.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// chromeEvent is one entry of the Chrome trace-event format (the subset we
// emit: metadata M, complete X, instant i, flow s/f).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	ID   uint32         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome-trace tid lanes per node process.
const (
	tidKernel = 1 // instant events: invokes, monitors, gc, faults
	tidMigr   = 2 // migration phase slices
	tidWire   = 3 // per-message send/recv instants
)

// WriteChromeTrace writes the recorder's spans and events in Chrome
// trace-event JSON. Each node is a process; migration spans appear as three
// complete slices — "MD→MI convert" on the source, "wire" spanning the
// transfer, "MI→MD respecialize" on the destination — linked by a flow
// arrow, with conversion-call and byte counts in args.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	add := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	for i := 0; i < r.NumNodes(); i++ {
		ni := r.Node(i)
		name := fmt.Sprintf("node%d %s", i, ni.Name)
		if ni.Arch != "" {
			name += " (" + ni.Arch + ")"
		}
		add(chromeEvent{Name: "process_name", Ph: "M", Pid: int32(i),
			Args: map[string]any{"name": name}})
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: int32(i), Tid: tidKernel,
			Args: map[string]any{"name": "kernel"}})
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: int32(i), Tid: tidMigr,
			Args: map[string]any{"name": "migration"}})
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: int32(i), Tid: tidWire,
			Args: map[string]any{"name": "wire"}})
	}

	dur := func(d int64) *int64 {
		if d < 0 {
			d = 0
		}
		return &d
	}
	for _, s := range r.Spans() {
		if !s.Done {
			continue
		}
		label := fmt.Sprintf("obj%08x %s", s.Obj, s.ObjKind)
		args := map[string]any{
			"span": s.ID, "object": fmt.Sprintf("%08x", s.Obj), "kind": s.ObjKind,
			"frags": s.Frags, "acts": s.Acts,
		}
		convArgs := map[string]any{"conv_calls": s.ConvOutCalls, "conv_bytes": s.ConvOutBytes}
		for k, v := range args {
			convArgs[k] = v
		}
		add(chromeEvent{Name: "MD→MI convert " + label, Cat: "migration", Ph: "X",
			Ts: s.Start, Dur: dur(s.ConvOutMicros()), Pid: s.Src, Tid: tidMigr, Args: convArgs})
		wireArgs := map[string]any{"wire_bytes": s.WireBytes}
		for k, v := range args {
			wireArgs[k] = v
		}
		add(chromeEvent{Name: "wire " + label, Cat: "migration", Ph: "X",
			Ts: s.SendAt, Dur: dur(s.WireMicros()), Pid: s.Src, Tid: tidWire, Args: wireArgs})
		respArgs := map[string]any{"conv_calls": s.ConvInCalls}
		for k, v := range args {
			respArgs[k] = v
		}
		add(chromeEvent{Name: "MI→MD respecialize " + label, Cat: "migration", Ph: "X",
			Ts: s.RespecStart, Dur: dur(s.RespecMicros()), Pid: s.Dst, Tid: tidMigr, Args: respArgs})
		// Flow arrow source → destination.
		add(chromeEvent{Name: "migration", Cat: "migration", Ph: "s", Ts: s.SendAt,
			Pid: s.Src, Tid: tidWire, ID: s.ID})
		add(chromeEvent{Name: "migration", Cat: "migration", Ph: "f", Ts: s.RespecStart,
			Pid: s.Dst, Tid: tidMigr, ID: s.ID})
	}

	for _, e := range r.Events() {
		if e.Node < 0 {
			continue
		}
		var name string
		tid := int32(tidKernel)
		switch e.Kind {
		case EvWireSend, EvWireRecv:
			name = fmt.Sprintf("%s %s", e.Kind, e.Str)
			tid = tidWire
		case EvRemoteInvoke:
			name = "invoke " + e.Str
		case EvProxyForward:
			name = "forward " + e.Str
		case EvMonitorWait, EvMonitorSignal, EvMonitorBlock, EvGCCycle, EvFault,
			EvThreadStop, EvThreadResume:
			name = e.Kind.String()
		default:
			continue // conversion batches and frames are inside span slices
		}
		add(chromeEvent{Name: name, Cat: "kernel", Ph: "i", Ts: e.At,
			Pid: e.Node, Tid: tid, S: "t",
			Args: map[string]any{"detail": e.Text()}})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// WriteMetricsJSON writes a metrics snapshot as flat JSON.
func WriteMetricsJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// EventLog renders every retained event as one text line (with timestamp),
// the format the determinism test compares byte-for-byte.
func EventLog(r *Recorder) []byte {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%6d [%8dµs] %s\n", e.Seq, e.At, e.Text())
	}
	return []byte(b.String())
}

// FormatSpans renders a human table of completed migration spans.
func FormatSpans(r *Recorder) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-10s %-12s %-9s %6s %12s %12s %12s %10s %10s\n",
		"span", "object", "route", "kind", "frags", "MD→MI µs", "wire µs", "MI→MD µs", "conv", "bytes")
	for _, s := range r.Spans() {
		if !s.Done {
			continue
		}
		fmt.Fprintf(&b, "%-5d %-10s %-12s %-9s %6d %12d %12d %12d %10d %10d\n",
			s.ID, fmt.Sprintf("%08x", s.Obj),
			fmt.Sprintf("n%d→n%d", s.Src, s.Dst), s.ObjKind, s.Frags,
			s.ConvOutMicros(), s.WireMicros(), s.RespecMicros(),
			s.ConvOutCalls+s.ConvInCalls, s.WireBytes)
	}
	return b.String()
}
