// The faults subcommand: run a program under a chaos plan and reconcile
// what the injector did to the network against what the protocol did to
// recover, per node. The left side of the report is pure cause (frames
// dropped, duplicated, delayed, corrupted, cut by partitions; scheduled
// crashes), the right side pure effect (retransmissions, link-layer
// rejects, suspicion/recovery transitions, move commits and aborts).

package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// faultTally accumulates per-node cause and effect counts.
type faultTally struct {
	injected  map[string]uint64 // by injector kind (frames sent FROM this node)
	linkDrops map[string]uint64 // by reject reason (frames arriving AT this node)
	retrans   uint64
	suspects  uint64
	recovers  uint64
	crashes   uint64
	restarts  uint64
	commits   uint64
	aborts    map[string]uint64 // by abort reason
	dupDrops  uint64
	faultsIn  uint64 // typed faults delivered to threads (node-down)
}

func newFaultTally() *faultTally {
	return &faultTally{
		injected:  map[string]uint64{},
		linkDrops: map[string]uint64{},
		aborts:    map[string]uint64{},
	}
}

func faultsMain() {
	netSpec := flag.String("net", "sun3,hp1,sparc,vax", "comma-separated machine list ("+core.MachineNames+")")
	mode := flag.String("mode", "enhanced", "conversion mode: enhanced, original, batched, fastpath")
	chaosSpec := flag.String("chaos", "", "seeded fault plan, e.g. seed=7,drop=0.05,crash=1@20ms:60ms")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emtrace faults [-net spec] [-mode m] -chaos plan file.em")
		os.Exit(2)
	}
	sys, err := runUnder(*netSpec, *mode, *chaosSpec, flag.Arg(0))
	if err != nil && sys == nil {
		for _, line := range core.Diagnostics(err) {
			fmt.Fprintln(os.Stderr, "emtrace:", line)
		}
		os.Exit(1)
	}
	// A run that faulted (e.g. a crash that never restarts takes its
	// threads down with it) still has a trace worth summarizing.
	if err != nil {
		fmt.Fprintln(os.Stderr, "emtrace: run ended with fault:", err)
	}

	tallies := make([]*faultTally, len(sys.Cluster.Nodes))
	for i := range tallies {
		tallies[i] = newFaultTally()
	}
	at := func(node int32) *faultTally {
		if node < 0 || int(node) >= len(tallies) {
			return newFaultTally() // orphan events tally into the void
		}
		return tallies[node]
	}
	for _, e := range sys.Recorder().Events() {
		switch e.Kind {
		case obs.EvFaultInject:
			at(e.Node).injected[e.Str]++
		case obs.EvLinkDrop:
			at(e.Node).linkDrops[e.Str]++
		case obs.EvRetransmit:
			at(e.Node).retrans++
		case obs.EvNodeSuspect:
			at(e.Node).suspects++
		case obs.EvNodeRecover:
			at(e.Node).recovers++
		case obs.EvNodeCrash:
			at(e.Node).crashes++
		case obs.EvNodeRestart:
			at(e.Node).restarts++
		case obs.EvMoveCommit:
			at(e.Node).commits++
		case obs.EvMoveAbort:
			at(e.Node).aborts[e.Str]++
		case obs.EvMoveDupDrop:
			at(e.Node).dupDrops++
		case obs.EvFault:
			at(e.Node).faultsIn++
		}
	}

	fmt.Printf("chaos fault/recovery reconciliation (%.1f ms simulated)\n\n", sys.ElapsedMS())
	for i, n := range sys.Cluster.Nodes {
		t := tallies[i]
		fmt.Printf("node%d %-18s [%s]\n", n.ID, n.Model.Name, n.Spec.Name)
		fmt.Printf("  injected : %s\n", kvLine(t.injected, "none"))
		lost := kvLine(t.linkDrops, "0")
		fmt.Printf("  recovered: retransmits=%d link-rejects=%s dup-moves-dropped=%d\n",
			t.retrans, lost, t.dupDrops)
		fmt.Printf("  liveness : crashes=%d restarts=%d suspects=%d recovers=%d thread-faults=%d\n",
			t.crashes, t.restarts, t.suspects, t.recovers, t.faultsIn)
		fmt.Printf("  moves    : commits=%d aborts=%s\n", t.commits, kvLine(t.aborts, "0"))
	}

	// Cluster-wide reconciliation: every injected fault should correspond
	// to a recovery action somewhere (retransmit, link reject, abort) or
	// be absorbed by redundancy (a dropped duplicate costs nothing).
	total := newFaultTally()
	for _, t := range tallies {
		for k, v := range t.injected {
			total.injected[k] += v
		}
		for k, v := range t.linkDrops {
			total.linkDrops[k] += v
		}
		total.retrans += t.retrans
		total.commits += t.commits
		for k, v := range t.aborts {
			total.aborts[k] += v
		}
		total.dupDrops += t.dupDrops
	}
	fmt.Printf("\ntotal injected : %s\n", kvLine(total.injected, "none"))
	fmt.Printf("total recovered: retransmits=%d link-rejects=%s move-commits=%d move-aborts=%s dup-moves-dropped=%d\n",
		total.retrans, kvLine(total.linkDrops, "0"), total.commits, kvLine(total.aborts, "0"), total.dupDrops)
}

// kvLine renders a count map as "k1=v1 k2=v2" with sorted keys, or empty.
func kvLine(m map[string]uint64, empty string) string {
	if len(m) == 0 {
		return empty
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
