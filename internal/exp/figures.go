// Figure and claim reproductions beyond Table 1.

package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// Fig2Workload is the program run at every level of the thread-state
// specialization hierarchy.
const Fig2Workload = `
object Work
  operation crunch(n: Int) -> (r: Int)
    var i: Int <- 0
    var acc: Int <- 0
    while i < n do
      acc <- acc + i * 3 - i / 2 + i % 7
      i <- i + 1
    end
    r <- acc
  end
end Work
object Main
  process
    var w: Work <- new Work
    print(w.crunch(20000))
  end process
end Main
`

// Fig2Row is one level of the hierarchy.
type Fig2Row struct {
	Level    string
	Output   string
	WallNS   int64  // real time to execute the level's engine
	Work     uint64 // engine-specific work units (steps / instructions)
	SimMS    float64
	Hardware string
}

// Figure2 runs the same program as interpreted source, as byte code, and as
// native code on each simulated ISA, demonstrating the specialization
// hierarchy: source and byte code are machine independent (trivially
// mobile, slower); native code is machine dependent (fast, and mobile only
// through the bus-stop conversion this system implements).
func Figure2() ([]Fig2Row, error) {
	info, prog, err := core.CompileInfo(Fig2Workload)
	if err != nil {
		return nil, err
	}
	var rows []Fig2Row

	start := time.Now()
	src := interp.NewSource(info)
	src.Run()
	rows = append(rows, Fig2Row{
		Level: "source (AST interpretation)", Output: strings.Join(src.RT().Output, "\n"),
		WallNS: time.Since(start).Nanoseconds(), Work: src.RT().Steps,
		Hardware: "machine independent",
	})

	start = time.Now()
	bc := interp.NewBytecode(ir.Build(info))
	bc.Run()
	rows = append(rows, Fig2Row{
		Level: "byte code (BC-Emerald style)", Output: strings.Join(bc.RT().Output, "\n"),
		WallNS: time.Since(start).Nanoseconds(), Work: bc.RT().Steps,
		Hardware: "machine independent",
	})

	for _, m := range []netsim.MachineModel{netsim.VAXstation2000, netsim.Sun3_100, netsim.SPARCstationSLC} {
		start = time.Now()
		sys, err := core.NewSystem(prog, []netsim.MachineModel{m}, core.Options{Mode: kernel.ModeEnhanced})
		if err != nil {
			return nil, err
		}
		if err := sys.Run(); err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			Level:  fmt.Sprintf("native code (%s)", m.Name),
			Output: sys.Output(), WallNS: time.Since(start).Nanoseconds(),
			Work:  sys.Cluster.Nodes[0].Instrs,
			SimMS: sys.ElapsedMS(), Hardware: m.Name,
		})
	}
	return rows, nil
}

// FormatFigure2 renders the hierarchy comparison.
func FormatFigure2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: thread-state specialization hierarchy (same program, three levels)\n")
	fmt.Fprintf(&b, "%-32s %-22s %14s %12s\n", "level", "thread state", "work units", "sim time")
	for _, r := range rows {
		sim := "-"
		if r.SimMS > 0 {
			sim = fmt.Sprintf("%.1f ms", r.SimMS)
		}
		fmt.Fprintf(&b, "%-32s %-22s %14d %12s\n", r.Level, r.Hardware, r.Work, sim)
	}
	b.WriteString("All levels print identical output; migration at the machine-independent\n")
	b.WriteString("levels is trivial, and the dotted MD->MI->MD arrows of Figure 2 are the\n")
	b.WriteString("kernel's bus-stop thread-state conversion exercised in Table 1.\n")
	return b.String()
}

// Figure34 renders the bridging-code example (Figures 3 and 4).
func Figure34() (string, error) {
	abstract, code1, code2, _, _ := bridge.Figure3()
	stop := code1.IndexOf("switch()") + 1
	plan, err := bridge.Build(abstract, code1, stop, code2)
	if err != nil {
		return "", err
	}
	tr := bridge.RunWithMigration(code1, stop, plan)
	if err := tr.ExactlyOnce(abstract); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3: differently optimized instances derived by code motion\n")
	fmt.Fprintf(&b, "  %s\n  %s\n  %s\n", abstract, code1, code2)
	fmt.Fprintf(&b, "Figure 4: thread stopped at the visible point after switch() in code1,\n")
	fmt.Fprintf(&b, "migrating to a processor running code2:\n")
	fmt.Fprintf(&b, "  %s\n", plan)
	fmt.Fprintf(&b, "executed trace: %v (each operation exactly once)\n", tr.Log)
	return b.String(), nil
}

// IntraNodeResult holds the §3.6 intra-node performance invariant data.
type IntraNodeResult struct {
	Arch            string
	LocalMS         float64 // compute phase, thread created locally
	MigratedMS      float64 // compute phase after migrating in
	LocalInstrs     uint64
	MigratedInstrs  uint64
	OriginalSysMS   float64 // same phase on the original system
	EnhancedMatches bool
}

// intraNodeSrc measures a pure-compute phase; variant "moved" first
// migrates the worker (and its thread) onto the measuring node.
func intraNodeSrc(moved bool) string {
	pre := ""
	if moved {
		pre = "move self to node(1)\n      move self to node(0)"
	}
	return fmt.Sprintf(`
object Worker
  operation run(n: Int) -> (r: Int)
    %s
    var t0: Int <- timems()
    var i: Int <- 0
    var acc: Int <- 0
    while i < n do
      acc <- acc + i * i %% 13
      i <- i + 1
    end
    var t1: Int <- timems()
    print(t1 - t0)
    r <- acc
  end
end Worker
object Main
  process
    var w: Worker <- new Worker
    print(w.run(30000))
  end process
end Main
`, pre)
}

// IntraNode verifies the paper's central performance claim: a migrated
// thread executes exactly the same instructions at exactly the same speed
// as a locally created one, and the enhanced system's local speed equals
// the original system's (§3.6: "Measurements on both systems verify this
// trivially").
func IntraNode(m netsim.MachineModel) (*IntraNodeResult, error) {
	run := func(src string, mode kernel.ConvMode, models []netsim.MachineModel) (*kernel.Cluster, error) {
		prog, err := core.Compile(src)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.Mode = mode
		cl, err := kernel.NewCluster(prog, models, cfg)
		if err != nil {
			return nil, err
		}
		cl.Start(nil)
		if err := cl.Run(80_000_000); err != nil {
			return nil, err
		}
		if len(cl.Faults) > 0 {
			return nil, fmt.Errorf("fault: %s", cl.Faults[0].Msg)
		}
		return cl, nil
	}
	phase := func(cl *kernel.Cluster) (float64, error) {
		lines := cl.PrintedLines()
		if len(lines) != 2 {
			return 0, fmt.Errorf("unexpected output %v", lines)
		}
		var ms float64
		if _, err := fmt.Sscanf(lines[0], "%f", &ms); err != nil {
			return 0, err
		}
		return ms, nil
	}

	local, err := run(intraNodeSrc(false), kernel.ModeEnhanced, []netsim.MachineModel{m, netsim.SPARCstationSLC})
	if err != nil {
		return nil, err
	}
	moved, err := run(intraNodeSrc(true), kernel.ModeEnhanced, []netsim.MachineModel{m, netsim.SPARCstationSLC})
	if err != nil {
		return nil, err
	}
	orig, err := run(intraNodeSrc(false), kernel.ModeOriginal, []netsim.MachineModel{m, m})
	if err != nil {
		return nil, err
	}
	res := &IntraNodeResult{Arch: m.Name}
	if res.LocalMS, err = phase(local); err != nil {
		return nil, err
	}
	if res.MigratedMS, err = phase(moved); err != nil {
		return nil, err
	}
	if res.OriginalSysMS, err = phase(orig); err != nil {
		return nil, err
	}
	res.LocalInstrs = local.Nodes[0].Instrs
	res.MigratedInstrs = moved.Nodes[0].Instrs
	// timems() has millisecond resolution, so phases can differ by one
	// quantization step; beyond that the invariant is exact.
	within := func(a, b float64) bool {
		d := a - b
		return d >= -1 && d <= 1
	}
	res.EnhancedMatches = within(res.LocalMS, res.MigratedMS) &&
		within(res.LocalMS, res.OriginalSysMS)
	return res, nil
}

// ConvResult summarizes the §3.6 conversion-cost observations for one mode.
type ConvResult struct {
	Mode         kernel.ConvMode
	MovesMS      float64
	ConvCalls    uint64
	WireBytes    uint64
	CallsPerByte float64
}

// ConversionStudy reruns the Table 1 workload under each conversion regime
// (SPARC pair plus a heterogeneous pair for the fast path).
func ConversionStudy() ([]ConvResult, error) {
	var out []ConvResult
	for _, mode := range []kernel.ConvMode{
		kernel.ModeOriginal, kernel.ModeEnhanced, kernel.ModeEnhancedBatched, kernel.ModeEnhancedFastPath,
	} {
		prog, err := core.Compile(Mobile13Source)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.Mode = mode
		cl, err := kernel.NewCluster(prog,
			[]netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC}, cfg)
		if err != nil {
			return nil, err
		}
		cl.Start(nil)
		if err := cl.Run(80_000_000); err != nil {
			return nil, err
		}
		lines := cl.PrintedLines()
		var elapsed float64
		fmt.Sscanf(lines[0], "%f", &elapsed)
		r := ConvResult{
			Mode:      mode,
			MovesMS:   elapsed / mobile13Trips,
			ConvCalls: cl.ConvStats().Calls,
			WireBytes: cl.Net.PayloadLen,
		}
		if r.WireBytes > 0 {
			r.CallsPerByte = float64(r.ConvCalls) / float64(r.WireBytes)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatConversionStudy renders the ablation.
func FormatConversionStudy(rs []ConvResult) string {
	var b strings.Builder
	b.WriteString("Conversion-routine ablation (SPARC<->SPARC, ms per two thread moves):\n")
	fmt.Fprintf(&b, "%-22s %12s %14s %16s\n", "mode", "2-move ms", "conv calls", "calls/byte")
	var orig, enh, batched float64
	for _, r := range rs {
		fmt.Fprintf(&b, "%-22s %12.1f %14d %16.2f\n", r.Mode, r.MovesMS, r.ConvCalls, r.CallsPerByte)
		switch r.Mode {
		case kernel.ModeOriginal:
			orig = r.MovesMS
		case kernel.ModeEnhanced:
			enh = r.MovesMS
		case kernel.ModeEnhancedBatched:
			batched = r.MovesMS
		}
	}
	if enh > orig && batched > orig {
		fmt.Fprintf(&b, "penalty: per-value %.0f%%, batched %.0f%% — the paper guessed efficient\n",
			(enh-orig)/orig*100, (batched-orig)/orig*100)
		fmt.Fprintf(&b, "routines would cut the penalty by ~50%%; measured reduction: %.0f%%\n",
			(enh-batched)/(enh-orig)*100)
	}
	return b.String()
}
