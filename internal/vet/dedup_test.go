package vet_test

import (
	"reflect"
	"testing"

	"repro/internal/vet"
)

// Dedup must merge findings identical up to architecture into one line
// with the arch list joined in encounter order, preserve everything
// else (including order), and never merge across any other field.
func TestDedup(t *testing.T) {
	d := func(pass, arch, msg string, stop int) vet.Diagnostic {
		return vet.Diagnostic{Pass: pass, Sev: vet.SevError,
			Object: "Obj", Func: "Obj.op", Arch: arch, Stop: stop, Msg: msg}
	}
	in := []vet.Diagnostic{
		d("pc-alignment", "vax", "same finding", 2),
		d("liveness-consistency", "vax", "other pass", 2),
		d("pc-alignment", "m68k", "same finding", 2),
		d("pc-alignment", "sparc", "same finding", 2),
		d("pc-alignment", "vax", "same finding", 3), // different stop: keep
		d("pc-alignment", "vax", "same finding", 2), // duplicate arch: drop
	}
	got := vet.Dedup(in)
	want := []vet.Diagnostic{
		d("pc-alignment", "vax,m68k,sparc", "same finding", 2),
		d("liveness-consistency", "vax", "other pass", 2),
		d("pc-alignment", "vax", "same finding", 3),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dedup = %+v, want %+v", got, want)
	}
	// Machine-independent findings (empty arch) collapse without
	// inventing an arch list.
	mi := []vet.Diagnostic{d("ptr-escape", "", "mi finding", -1), d("ptr-escape", "", "mi finding", -1)}
	got = vet.Dedup(mi)
	if len(got) != 1 || got[0].Arch != "" {
		t.Errorf("Dedup(mi) = %+v, want one finding with empty arch", got)
	}
}
