// Package arch defines the three simulated instruction-set architectures of
// the prototype — a VAX-like CISC, an M68K-like CISC and a SPARC-like RISC —
// together with byte-level instruction codecs, cycle-cost models and an
// emulator.
//
// The ISAs are deliberately small, but they diverge in exactly the
// dimensions the paper identifies as the hard part of heterogeneous native
// code mobility (§1, §2.2.1):
//
//   - byte order (VAX little endian; M68K and SPARC big endian),
//   - floating point format (VAX F-float vs IEEE 754),
//   - register files and the number of callee-saved variable homes,
//   - instruction sets (CISC memory-to-memory vs RISC load/store, which
//     "RISCifies" one abstract operation into several instructions),
//   - instruction encodings and lengths, hence program-counter values,
//   - atomicity (the VAX has an atomic UNLINKQ used for monitor exit; the
//     others must make a system call, §3.3).
//
// Machine code is genuinely encoded to bytes and decoded again by the
// emulator; program counters are real byte offsets that differ between
// architectures for the same program point.
package arch

import (
	"encoding/binary"
	"fmt"
)

// ID identifies an architecture.
type ID byte

// Architectures of the prototype network. Sun-3 and HP9000/300 machines
// share the M68K ISA (they differ in clock rate, modelled per node).
const (
	VAX ID = iota
	M68K
	SPARC
	NumArch
)

// String returns the architecture name.
func (id ID) String() string {
	switch id {
	case VAX:
		return "vax"
	case M68K:
		return "m68k"
	case SPARC:
		return "sparc"
	}
	return fmt.Sprintf("arch(%d)", byte(id))
}

// All lists every architecture.
func All() []ID { return []ID{VAX, M68K, SPARC} }

// ---------------------------------------------------------------- machine ops

// Op is a machine operation in the generic vocabulary. Each architecture
// supports a subset, with its own opcode numbers, operand-mode restrictions
// and encodings.
type Op byte

// Machine operations. Three-operand ALU ops take (src1, src2, dst); with
// stack modes, src2 is popped before src1 (so src1 is the deeper operand).
const (
	OpMov   Op = iota // mov src, dst
	OpAdd             // int src1+src2 -> dst
	OpSub             // src1-src2
	OpMul             //
	OpDiv             // faults on zero divisor
	OpMod             // faults on zero divisor
	OpNeg             // -src -> dst
	OpAbs             // |src| -> dst
	OpNot             // boolean not
	OpAnd             // boolean and
	OpOr              // boolean or
	OpFAdd            // float src1+src2 -> dst (architecture float format)
	OpFSub            //
	OpFMul            //
	OpFDiv            // faults on zero divisor
	OpFNeg            //
	OpCvt             // int src -> float dst
	OpScc             // set dst to (src1 CC src2), integer
	OpFScc            // float compare
	OpSScc            // string compare (src1, src2 are string refs)
	OpJmp             // jump to target (function-relative byte offset)
	OpBrz             // branch to target if src == 0
	OpBrnz            // branch to target if src != 0
	OpALoad           // dst = src1[src2] (array element)
	OpAStor           // src1[src2] = src3 (array, index, value)
	OpALen            // dst = length of array src
	OpSLen            // dst = length of string src
	OpSIdx            // dst = byte src2 of string src1
	OpPoll            // loop-bottom poll: trap TrapYield if preempt flag set
	OpRet             // return from operation (kernel trap)
	OpTrap            // kernel system call: kind, a, b
	OpUnlq            // atomic unlink: monitor exit in one instruction (VAX only)
	NumOp
)

var opNames = [NumOp]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpNeg: "neg", OpAbs: "abs", OpNot: "not", OpAnd: "and",
	OpOr: "or", OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpCvt: "cvt", OpScc: "scc", OpFScc: "fscc", OpSScc: "sscc",
	OpJmp: "jmp", OpBrz: "brz", OpBrnz: "brnz",
	OpALoad: "aload", OpAStor: "astor", OpALen: "alen", OpSLen: "slen",
	OpSIdx: "sidx", OpPoll: "poll", OpRet: "ret", OpTrap: "trap", OpUnlq: "unlq",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("mop(%d)", byte(o))
}

// nsrc/ndst per op, used by the codec and executor.
type opShape struct {
	nOperands int
	// dstIdx is the operand index written (or -1). For branches the last
	// operand is the target.
	dstIdx    int
	hasTarget bool
	hasCC     bool // carries a condition code
}

var shapes = [NumOp]opShape{
	OpMov:   {2, 1, false, false},
	OpAdd:   {3, 2, false, false},
	OpSub:   {3, 2, false, false},
	OpMul:   {3, 2, false, false},
	OpDiv:   {3, 2, false, false},
	OpMod:   {3, 2, false, false},
	OpNeg:   {2, 1, false, false},
	OpAbs:   {2, 1, false, false},
	OpNot:   {2, 1, false, false},
	OpAnd:   {3, 2, false, false},
	OpOr:    {3, 2, false, false},
	OpFAdd:  {3, 2, false, false},
	OpFSub:  {3, 2, false, false},
	OpFMul:  {3, 2, false, false},
	OpFDiv:  {3, 2, false, false},
	OpFNeg:  {2, 1, false, false},
	OpCvt:   {2, 1, false, false},
	OpScc:   {3, 2, false, true},
	OpFScc:  {3, 2, false, true},
	OpSScc:  {3, 2, false, true},
	OpJmp:   {0, -1, true, false},
	OpBrz:   {1, -1, true, false},
	OpBrnz:  {1, -1, true, false},
	OpALoad: {3, 2, false, false},
	OpAStor: {3, -1, false, false},
	OpALen:  {2, 1, false, false},
	OpSLen:  {2, 1, false, false},
	OpSIdx:  {3, 2, false, false},
	OpPoll:  {0, -1, false, false},
	OpRet:   {0, -1, false, false},
	OpTrap:  {0, -1, false, false},
	OpUnlq:  {0, -1, false, false},
}

// ---------------------------------------------------------------- operands

// Mode is an operand addressing mode.
type Mode byte

// Operand addressing modes. Pop/Push address the per-activation evaluation
// stack (the temporary area of the activation record) through the CPU's
// temp pointer, in the style of the VAX auto-increment/decrement modes.
const (
	ModeNone  Mode = iota
	ModeImm        // 32-bit immediate (floats in architecture format)
	ModeReg        // general register
	ModeFrame      // word at FP + disp
	ModeSelf       // word at self data area + disp
	ModeLit        // word at literal table entry idx (interned string refs)
	ModePop        // pop the evaluation stack (source only)
	ModePush       // push onto the evaluation stack (destination only)
)

func (m Mode) String() string {
	switch m {
	case ModeImm:
		return "imm"
	case ModeReg:
		return "reg"
	case ModeFrame:
		return "frame"
	case ModeSelf:
		return "self"
	case ModeLit:
		return "lit"
	case ModePop:
		return "pop"
	case ModePush:
		return "push"
	}
	return "none"
}

// Operand is a decoded operand.
type Operand struct {
	Mode Mode
	Reg  byte
	Disp uint16 // frame/self byte displacement or literal index
	Imm  uint32
}

// String renders the operand.
func (o Operand) String() string {
	switch o.Mode {
	case ModeImm:
		return fmt.Sprintf("#%#x", o.Imm)
	case ModeReg:
		return fmt.Sprintf("r%d", o.Reg)
	case ModeFrame:
		return fmt.Sprintf("%d(fp)", o.Disp)
	case ModeSelf:
		return fmt.Sprintf("%d(self)", o.Disp)
	case ModeLit:
		return fmt.Sprintf("lit[%d]", o.Disp)
	case ModePop:
		return "(tp)+"
	case ModePush:
		return "-(tp)"
	}
	return "?"
}

// Reg / Imm / Frame / SelfOp / Lit / Pop / Push are operand constructors.
func Reg(r byte) Operand         { return Operand{Mode: ModeReg, Reg: r} }
func Imm(v uint32) Operand       { return Operand{Mode: ModeImm, Imm: v} }
func Frame(disp uint16) Operand  { return Operand{Mode: ModeFrame, Disp: disp} }
func SelfOp(disp uint16) Operand { return Operand{Mode: ModeSelf, Disp: disp} }
func Lit(idx uint16) Operand     { return Operand{Mode: ModeLit, Disp: idx} }
func Pop() Operand               { return Operand{Mode: ModePop} }
func Push() Operand              { return Operand{Mode: ModePush} }

// Instr is a decoded machine instruction.
type Instr struct {
	Op       Op
	CC       byte // condition code for Scc family (ir.Cmp* values)
	Operands [3]Operand
	N        byte   // operand count
	Target   uint16 // branch target (function-relative byte offset)
	TrapKind TrapKind
	TrapA    uint16
	TrapB    uint16
	Size     uint32 // encoded size in bytes
}

// String renders the instruction in assembly-like form.
func (i Instr) String() string {
	switch i.Op {
	case OpJmp:
		return fmt.Sprintf("jmp %#x", i.Target)
	case OpBrz, OpBrnz:
		return fmt.Sprintf("%s %s, %#x", i.Op, i.Operands[0], i.Target)
	case OpTrap:
		return fmt.Sprintf("trap %s, %d, %d", i.TrapKind, i.TrapA, i.TrapB)
	case OpScc, OpFScc, OpSScc:
		s := fmt.Sprintf("%s.%d", i.Op, i.CC)
		for k := 0; k < int(i.N); k++ {
			s += fmt.Sprintf(" %s", i.Operands[k])
			if k+1 < int(i.N) {
				s += ","
			}
		}
		return s
	}
	s := i.Op.String()
	for k := 0; k < int(i.N); k++ {
		if k == 0 {
			s += " "
		} else {
			s += ", "
		}
		s += i.Operands[k].String()
	}
	return s
}

// ---------------------------------------------------------------- traps

// TrapKind identifies a kernel service requested by machine code. Every
// trap site is a bus stop.
type TrapKind byte

// Kernel trap kinds.
const (
	TrapNone     TrapKind = iota
	TrapCall              // invoke operation named name[A] on popped receiver; B = argc
	TrapNew               // create instance of object named name[A]; B = argc
	TrapNewArray          // pop length; create array with element kind B
	TrapPrint             // pop B values with kinds name[A]
	TrapNodes
	TrapThisNode
	TrapNodeAt
	TrapTimeMS
	TrapYield    // explicit reschedule, also produced by OpPoll preemption
	TrapStrOf    // pop value with kind letter name[A][0]
	TrapConcat   // pop two strings, push concatenation
	TrapMove     // pop node, ref
	TrapFix      // pop node, ref
	TrapRefix    // pop node, ref
	TrapUnfix    // pop ref
	TrapLocate   // pop ref, push node
	TrapWait     // pop condition index
	TrapSignal   // pop condition index
	TrapALoad    // pop index, array ref; push element (B = element kind)
	TrapAStore   // pop value, index, array ref (B = element kind)
	TrapALen     // pop array ref; push length
	TrapMonExit  // release the monitor of self (syscall form)
	TrapMonExitA // atomic monitor exit (VAX UNLINKQ); handled without scheduling
	TrapRet      // return from the current activation
	TrapFault    // runtime error; A encodes a FaultCode
	NumTrap
)

var trapNames = [NumTrap]string{
	TrapNone: "none", TrapCall: "call", TrapNew: "new", TrapNewArray: "newarray",
	TrapPrint: "print", TrapNodes: "nodes", TrapThisNode: "thisnode",
	TrapNodeAt: "nodeat", TrapTimeMS: "timems", TrapYield: "yield",
	TrapStrOf: "strof", TrapConcat: "concat", TrapMove: "move", TrapFix: "fix",
	TrapRefix: "refix", TrapUnfix: "unfix", TrapLocate: "locate",
	TrapWait: "wait", TrapSignal: "signal",
	TrapALoad: "aload", TrapAStore: "astore", TrapALen: "alen",
	TrapMonExit:  "monexit",
	TrapMonExitA: "monexit.atomic", TrapRet: "ret", TrapFault: "fault",
}

// String returns the trap name.
func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return fmt.Sprintf("trap(%d)", byte(k))
}

// FaultCode identifies a machine-detected runtime error.
type FaultCode uint16

// Fault codes.
const (
	FaultDivZero FaultCode = iota + 1
	FaultBounds
	FaultNilRef
	FaultStack
)

// String renders the fault.
func (f FaultCode) String() string {
	switch f {
	case FaultDivZero:
		return "division by zero"
	case FaultBounds:
		return "index out of bounds"
	case FaultNilRef:
		return "nil reference"
	case FaultStack:
		return "evaluation stack fault"
	}
	return fmt.Sprintf("fault(%d)", uint16(f))
}

// Trap is delivered to the kernel when machine code needs service. PC is
// the address of the *next* instruction (the resumption point — and, for
// call/syscall stops, the bus stop PC).
type Trap struct {
	Kind  TrapKind
	A, B  uint16
	PC    uint32
	Fault FaultCode
}

// ---------------------------------------------------------------- specs

// EncodingStyle selects the instruction encoding family.
type EncodingStyle byte

// Encoding styles.
const (
	EncVariableCISC EncodingStyle = iota // opcode + self-describing operands
	EncFixedRISC                         // 4-byte words (8 for immediates/traps)
)

// Spec describes one architecture.
type Spec struct {
	ID      ID
	Name    string
	ByteOrd binary.ByteOrder
	Style   EncodingStyle
	NumRegs int
	// HomeRegs are the callee-saved registers used as variable homes, in
	// assignment order. Their count differs per ISA, so the same variable
	// may be a register on one machine and memory on another.
	HomeRegs []byte
	// ScratchRegs are used by RISC lowering for intermediate values.
	ScratchRegs []byte
	// OpcodeBase scrambles opcode numbering so the encodings are genuinely
	// different between ISAs (opcode byte = rot8(op*OpcodeMul + OpcodeBase)).
	OpcodeBase byte
	OpcodeMul  byte // must be odd so the mapping is invertible mod 256
	Float      FloatCodec
	// HasAtomicUnlink: monitor exit compiles to a single UNLINKQ
	// instruction instead of a system call (§3.3).
	HasAtomicUnlink bool
	// Cycles gives the base cost of each machine op; operand modes add
	// memCycles per memory operand.
	Cycles    [NumOp]uint32
	MemCycles uint32
	// TrapCycles is the base cost of entering the kernel.
	TrapCycles uint32
}

// opcodeByte returns the architecture opcode byte for a generic op.
func (s *Spec) opcodeByte(op Op) byte { return byte(op)*s.OpcodeMul + s.OpcodeBase }

// opFromByte inverts opcodeByte.
func (s *Spec) opFromByte(b byte) (Op, error) {
	// Invert b = op*mul + base (mod 256) via the modular inverse of mul.
	inv := modInverse(s.OpcodeMul)
	op := Op((b - s.OpcodeBase) * inv)
	if op >= NumOp {
		return 0, fmt.Errorf("%s: illegal opcode byte %#x", s.Name, b)
	}
	return op, nil
}

// modInverse returns the multiplicative inverse of odd a modulo 256.
func modInverse(a byte) byte {
	var x byte = 1
	for i := 0; i < 8; i++ { // Newton iteration converges for mod 2^k
		x = x * (2 - a*x)
	}
	return x
}

// Supports reports whether the spec's executor accepts the operand mode at
// position idx of op: RISC ALU ops are register-only, and only moves may
// touch memory (one memory operand per instruction).
func (s *Spec) Supports(op Op, operands []Operand) error {
	if s.Style == EncVariableCISC {
		return nil
	}
	memCount := 0
	for _, o := range operands {
		switch o.Mode {
		case ModeFrame, ModeSelf, ModeLit, ModePop, ModePush:
			memCount++
		}
	}
	switch op {
	case OpMov:
		if memCount > 1 {
			return fmt.Errorf("%s: mov with %d memory operands", s.Name, memCount)
		}
		return nil
	case OpJmp, OpPoll, OpRet, OpTrap, OpUnlq:
		return nil
	case OpALoad, OpAStor, OpALen, OpSLen, OpSIdx, OpSScc:
		// Millicode helpers: register operands only.
		fallthrough
	default:
		for _, o := range operands {
			if o.Mode != ModeReg && o.Mode != ModeNone {
				return fmt.Errorf("%s: %v operand in %v", s.Name, o.Mode, op)
			}
		}
		if memCount > 0 {
			return fmt.Errorf("%s: memory operand in ALU op %v", s.Name, op)
		}
	}
	return nil
}
