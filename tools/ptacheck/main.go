// Command ptacheck pins the determinism of the points-to solver: for each
// argument program it runs the full analysis several times and diffs the
// rendered reports. The report is the contract emvet -graph exposes (and
// the planned emauto batching will consume), so any map-iteration order
// leaking into it must fail CI, not surface later as a flaky cohort list.
package main

import (
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/pta"
)

func report(src string) (string, error) {
	ast, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("parse: %w", err)
	}
	info, err := types.Check(ast)
	if err != nil {
		return "", fmt.Errorf("typecheck: %w", err)
	}
	r, err := pta.Analyze(ir.Build(info))
	if err != nil {
		return "", err
	}
	return r.Report(), nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: ptacheck file.em...")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptacheck:", err)
			bad = true
			continue
		}
		first, err := report(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptacheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		for i := 0; i < 4; i++ {
			again, err := report(string(data))
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptacheck: %s: re-solve: %v\n", path, err)
				bad = true
				break
			}
			if again != first {
				fmt.Fprintf(os.Stderr, "ptacheck: %s: solve %d differs from solve 1:\n--- first\n%s--- again\n%s",
					path, i+2, first, again)
				bad = true
				break
			}
		}
		if !bad {
			fmt.Printf("ptacheck: %s: %d solves identical\n", path, 5)
		}
	}
	if bad {
		os.Exit(1)
	}
}
