package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRingBounded(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{At: int64(i), Node: 0, Kind: EvText, Str: "x"})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	// Oldest retained is event 7 (seq starts at 1; 10 emitted, keep last 4).
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestEventsMergeCanonical(t *testing.T) {
	// Events merge in the canonical (At, Node, Seq) order: time first, then
	// node (cluster-level Node=-1 ahead of node 0), then per-node emission
	// order — the same total order under the sequential and parallel engines.
	r := NewRecorder(2, 8)
	r.Emit(Event{At: 5, Node: 1, Kind: EvText, Str: "a"})
	r.Emit(Event{At: 5, Node: 0, Kind: EvText, Str: "b"})
	r.Emit(Event{At: 5, Node: -1, Kind: EvText, Str: "c"})
	r.Emit(Event{At: 5, Node: 1, Kind: EvText, Str: "d"})
	r.Emit(Event{At: 2, Node: 1, Kind: EvText, Str: "e"})
	var got []string
	for _, e := range r.Events() {
		got = append(got, e.Str)
	}
	if strings.Join(got, "") != "ecbad" {
		t.Errorf("merged order %v, want [e c b a d]", got)
	}
}

func TestTextSinkSeesEveryEvent(t *testing.T) {
	r := NewRecorder(1, 8)
	var lines []string
	r.SetTextSink(func(s string) { lines = append(lines, s) })
	r.Emit(Event{At: 42, Node: 0, Kind: EvWireSend, A: 100, B: 1, Str: "move"})
	r.Textf(43, 0, "node%d print: %s", 0, "hi")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "node0 -> node1 move (100 bytes)") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[0], "42µs") {
		t.Errorf("line 0 lacks timestamp: %q", lines[0])
	}
	if !strings.Contains(lines[1], "node0 print: hi") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 1, 3, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Max != 1<<40 {
		t.Fatalf("count=%d max=%d", h.Count, h.Max)
	}
	// v=0 → bucket 0; v=1 → bucket 1; v=3 → bucket 2; v=100 → bucket 7;
	// huge → clamped to the last bucket.
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[2] != 1 ||
		h.Buckets[7] != 1 || h.Buckets[NumHistBuckets-1] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Add("zz", "node=1", 2)
	reg.Add("aa", "", 1)
	reg.Add("mm", "node=0,arch=vax", 3)
	reg.SetGauge("g", "node=0", -5)
	reg.Observe("h", "", 7)
	s := reg.Snapshot(99)
	if s.AtMicros != 99 {
		t.Fatalf("at = %d", s.AtMicros)
	}
	if len(s.Counters) != 3 || s.Counters[0].Name != "aa" ||
		s.Counters[1].Name != "mm" || s.Counters[2].Name != "zz" {
		t.Errorf("counters unsorted: %+v", s.Counters)
	}
	if s.Counters[1].Labels != "node=0,arch=vax" || s.Counters[1].Value != 3 {
		t.Errorf("labels lost: %+v", s.Counters[1])
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != -5 {
		t.Errorf("gauges: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 || s.Histograms[0].Sum != 7 {
		t.Errorf("hists: %+v", s.Histograms)
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(2, 8)
	s := r.BeginSpan(1000, 0, 1, 0xabc, "plain")
	s.ConvOutEnd = 1500
	s.ConvOutCalls = 40
	s.Frags, s.Acts = 1, 2
	r.SpanSent(s.ID, 256, 1500)
	r.SpanArrived(s.ID, 2100)
	r.SpanRespec(s.ID, 2100, 2600, 38)
	got := r.Span(s.ID)
	if got == nil || !got.Done {
		t.Fatal("span not closed")
	}
	if got.ConvOutMicros() != 500 || got.WireMicros() != 600 || got.RespecMicros() != 500 {
		t.Errorf("phases: conv=%d wire=%d respec=%d",
			got.ConvOutMicros(), got.WireMicros(), got.RespecMicros())
	}
	if got.TotalMicros() != 1600 {
		t.Errorf("total = %d", got.TotalMicros())
	}
	if r.Span(0) != nil || r.Span(99) != nil {
		t.Error("bogus span ids resolved")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	r := NewRecorder(2, 8)
	r.SetNodeInfo(0, "SPARCstation SLC", "sparc")
	r.SetNodeInfo(1, "VAXstation 2000", "vax")
	s := r.BeginSpan(0, 0, 1, 7, "plain")
	s.ConvOutEnd = 100
	r.SpanSent(s.ID, 64, 100)
	r.SpanArrived(s.ID, 400)
	r.SpanRespec(s.ID, 400, 450, 9)
	r.Emit(Event{At: 10, Node: 0, Kind: EvRemoteInvoke, Obj: 7, B: 1, Str: "ping"})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"MD→MI convert obj00000007 plain"`, `"wire obj00000007 plain"`,
		`"MI→MD respecialize obj00000007 plain"`,
		`"invoke ping"`, `"node0 SPARCstation SLC (sparc)"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
	// Same recorder exports identical bytes.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("chrome export is not deterministic")
	}
}
