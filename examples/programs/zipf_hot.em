// A zipf-skewed service mix: three clients scatter over the cluster and
// hammer mostly their own favourite service, but every service (with its
// Stats helper — a {Service, Stats} group-migration cohort) starts on the
// wrong node. This is the traffic shape the adaptive placement policies
// are built for. Try:
//   go run ./cmd/emrun examples/programs/zipf_hot.em
//   go run ./cmd/emrun -auto greedy-colocate examples/programs/zipf_hot.em
object Stats
  var total: Int <- 0
  var count: Int <- 0
  operation note(x: Int)
    total <- total + x
    count <- count + 1
  end
end Stats

object Service
  var stats: Stats
  operation work(x: Int) -> (r: Int)
    stats.note(x)
    r <- x * 2 + 1
  end
  initially
    stats <- new Stats
  end initially
end Service

object Client
  var fav: Service
  var alt: Service
  var home: Int
  process
    move self to node(home)
    var sum: Int <- 0
    var i: Int <- 1
    while i <= 10 do
      // ~80/20 zipf-ish split between the favourite and the alternate.
      if i % 5 == 0 then
        sum <- sum + alt.work(i)
      else
        sum <- sum + fav.work(i)
      end
      i <- i + 1
    end
    print("client on node ", home, " sum=", sum)
  end process
end Client

object Main
  var s0: Service
  var s1: Service
  var s2: Service
  initially
    s0 <- new Service
    s1 <- new Service
    s2 <- new Service
  end initially
  process
    // Deliberately misplace every service relative to its hot client.
    move s0 to node(1)
    move s1 to node(2)
    move s2 to node(0)
    var c0: Client <- new Client(s0, s1, 0)
    var c1: Client <- new Client(s1, s2, 1)
    var c2: Client <- new Client(s2, s0, 2)
    print("3 services up, distinct clients: ", c0 == c1, " ", c1 == c2)
  end process
end Main
