// Command emc is the Emerald-subset compiler driver: it compiles a source
// file for every simulated architecture and can dump per-ISA assembly,
// activation templates and bus-stop tables — the artifacts the runtime's
// heterogeneous mobility depends on. After compiling, it runs the
// mobility-soundness analyzer (internal/vet) over the result, so
// metadata inconsistent across ISAs is an error at compile time rather
// than a corrupted thread at migration time.
//
// Usage:
//
//	emc [-S] [-t] [-stops] [-arch vax|m68k|sparc] [-vet=false] file.em
//
//	-S      print disassembly per architecture
//	-t      print activation-record templates
//	-stops  print bus-stop tables
//	-arch   restrict output to one architecture
//	-vet    run the mobility-soundness passes (default true); findings of
//	        error severity fail the compile
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/vet"
)

func archNames() string {
	names := make([]string, 0, len(arch.All()))
	for _, id := range arch.All() {
		names = append(names, id.String())
	}
	return strings.Join(names, ", ")
}

func main() {
	asm := flag.Bool("S", false, "print disassembly")
	tmpl := flag.Bool("t", false, "print activation templates")
	stops := flag.Bool("stops", false, "print bus-stop tables")
	archName := flag.String("arch", "", "restrict to one architecture ("+archNames()+")")
	runVet := flag.Bool("vet", true, "run the mobility-soundness passes over the compiled program")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emc [-S] [-t] [-stops] [-arch a] [-vet=false] file.em")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "emc:", err)
		os.Exit(1)
	}
	prog, err := core.Compile(string(src))
	if err != nil {
		// Show every diagnostic, not just the first: a broken file is fixed
		// in one pass instead of one error at a time.
		for _, line := range core.Diagnostics(err) {
			fmt.Fprintln(os.Stderr, "emc:", line)
		}
		os.Exit(1)
	}
	if *runVet {
		diags := vet.Check(prog)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, "emc:", d)
		}
		if vet.HasErrors(diags) {
			os.Exit(1)
		}
	}
	var archs []arch.ID
	if *archName == "" {
		archs = arch.All()
	} else {
		found := false
		for _, id := range arch.All() {
			if id.String() == *archName {
				archs = []arch.ID{id}
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "emc: unknown architecture %q (have %s)\n", *archName, archNames())
			os.Exit(2)
		}
	}
	for _, oc := range prog.Objects {
		fmt.Printf("object %s (code %v)\n", oc.Name, oc.CodeOID)
		if !*asm && !*tmpl && !*stops {
			summarize(oc, archs)
			continue
		}
		for _, id := range archs {
			ac := oc.PerArch[id]
			for _, fc := range ac.Funcs {
				fmt.Printf("\n%s [%s] %d bytes, %d instrs, %d bus stops\n",
					fc.Name, id, len(fc.Code), fc.NumInstrs, fc.Stops.Len())
				if *asm {
					fmt.Print(arch.Disassemble(arch.SpecOf(id), fc.Code))
				}
				if *tmpl {
					printTemplate(fc)
				}
				if *stops {
					printStops(fc)
				}
			}
		}
	}
}

func summarize(oc *codegen.ObjectCode, archs []arch.ID) {
	for _, fc := range oc.PerArch[archs[0]].Funcs {
		fmt.Printf("  %-30s", fc.Name)
		for _, id := range archs {
			f := oc.PerArch[id].Funcs[oc.FuncIndex(fc.OpName)]
			fmt.Printf("  %s:%4dB/%3di", id, len(f.Code), f.NumInstrs)
		}
		fmt.Printf("  stops:%d\n", fc.Stops.Len())
	}
}

func printTemplate(fc *codegen.FuncCode) {
	t := fc.Template
	fmt.Printf("  template: size=%d savedFP@%d retDesc@%d retPC@%d self@%d temps@%d+%d\n",
		t.Size, t.SavedFPOff, t.RetDescOff, t.RetPCOff, t.SelfOff, t.TempOff, t.TempSlots)
	fmt.Printf("  saved regs: %v\n", t.SavedRegs)
	for i, h := range t.Vars {
		fmt.Printf("    var %2d %s\n", i, h)
	}
}

func printStops(fc *codegen.FuncCode) {
	for _, s := range fc.Stops.All() {
		exit := ""
		if s.ExitOnly {
			exit = " exit-only"
		}
		push := ""
		if s.Pushes {
			push = fmt.Sprintf(" pushes %s", s.ResultKind)
		}
		fmt.Printf("  stop %2d @pc=%-5d %-8s temps=%d%s%s\n",
			s.Stop, s.PC, s.Kind, s.TempDepth, push, exit)
	}
}
