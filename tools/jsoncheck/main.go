// Command jsoncheck validates that each argument file parses as JSON and is
// non-empty. The CI gate uses it to smoke-test the emtrace and embench
// exports without depending on any tool outside the Go toolchain.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck file.json...")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jsoncheck:", err)
			bad = true
			continue
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		if v == nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: empty document\n", path)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
