// Package auto is the adaptive-placement subsystem: pluggable policies that
// consume the kernel's metrics (per-node instruction pressure, per-link and
// per-object invocation traffic) plus the static facts the points-to
// analysis exports (group-migration cohorts, pinned classes) and decide,
// periodically, which objects should live where. The package is pure
// decision logic — it imports nothing from the kernel; the kernel builds a
// View each tick and executes the returned Decisions (see kernel/auto.go).
//
// Determinism is a hard requirement: the same sequence of Views must yield
// the same sequence of Decisions and a byte-identical decision log, because
// placement runs inside the deterministic simulation and its goldens.
// Every map iteration below is therefore sorted before use.
package auto

import (
	"fmt"
	"sort"
	"strings"
)

// ObjInfo describes one placement-eligible resident object.
type ObjInfo struct {
	OID   uint32
	Class string
	Node  int
	// Pinned objects are never scheduled: explicitly fixed, of an
	// immobile-reach pinned class, immutable, or mid-transit.
	Pinned bool
}

// ObjCall is the cumulative remote-invocation count addressed to one object
// from one caller node.
type ObjCall struct {
	OID   uint32
	Src   int
	Count uint64
}

// Link is the cumulative remote-invocation count over one (src,dst) pair.
type Link struct {
	Src, Dst int
	Count    uint64
}

// View is one periodic observation of the cluster, with cumulative
// counters; the engine differences successive views into per-window Deltas.
type View struct {
	Now      int64
	Nodes    int
	Instrs   []uint64  // per-node cumulative executed instructions
	Links    []Link    // cumulative per-link remote invocations
	ObjCalls []ObjCall // cumulative per-(object, caller) remote invocations
	Objects  []ObjInfo // resident plain objects, any order
}

// Delta is the traffic of one observation window, numerically sorted.
type Delta struct {
	Instrs   []uint64
	Links    []Link    // sorted by (Src, Dst)
	ObjCalls []ObjCall // sorted by (OID, Src)
}

// Decision is one placement action: move Obj (and, implicitly, its static
// cohort) from its current node to To.
type Decision struct {
	Policy   string
	Obj      uint32
	Class    string
	From, To int
	Why      string
}

// Policy turns one window's observation into placement decisions. Decide
// must be deterministic in (v, d) and must not retain either.
type Policy interface {
	Name() string
	Decide(v View, d Delta) []Decision
}

// Static carries the compile-time facts the points-to analysis exports.
type Static struct {
	// Cohorts are class-name groups that migrate together (pta.Cohorts).
	Cohorts [][]string
	// Pinned are class names reachable from fixed objects (immobile-reach):
	// the engine never schedules their instances.
	Pinned []string
}

// Names lists the registered policies.
func Names() []string { return []string{"greedy-colocate", "load-balance"} }

// New builds an engine driving the named policy.
func New(policy string, st Static) (*Engine, error) {
	var pol Policy
	switch policy {
	case "greedy-colocate":
		pol = &GreedyColocate{MinCalls: 4, MaxMoves: 4}
	case "load-balance":
		pol = &LoadBalance{MinInstrs: 1000, Ratio: 4}
	default:
		return nil, fmt.Errorf("auto: unknown policy %q (have: %s)",
			policy, strings.Join(Names(), ", "))
	}
	return NewEngine(pol, st), nil
}

// Engine differences successive Views, consults the policy, filters out
// illegal decisions (pinned objects, self-moves), and keeps the canonical
// decision log.
type Engine struct {
	pol       Policy
	static    Static
	prevInstr []uint64
	prevLink  map[[2]int]uint64
	prevObj   map[objKey]uint64
	ticks     int
	log       []string
}

type objKey struct {
	oid uint32
	src int
}

// NewEngine wraps a policy (useful for tests injecting custom policies).
func NewEngine(pol Policy, st Static) *Engine {
	return &Engine{
		pol:      pol,
		static:   st,
		prevLink: map[[2]int]uint64{},
		prevObj:  map[objKey]uint64{},
	}
}

// PolicyName returns the driven policy's name.
func (e *Engine) PolicyName() string { return e.pol.Name() }

// Log returns the decision log: one line per decision, in decision order.
func (e *Engine) Log() []string { return e.log }

// Tick consumes one observation and returns the legal decisions, stamped
// with the policy name and appended to the log.
func (e *Engine) Tick(v View) []Decision {
	e.ticks++
	d := e.delta(v)
	sort.Slice(v.Objects, func(i, j int) bool { return v.Objects[i].OID < v.Objects[j].OID })
	byOID := make(map[uint32]ObjInfo, len(v.Objects))
	for _, o := range v.Objects {
		byOID[o.OID] = o
	}
	var out []Decision
	for _, dec := range e.pol.Decide(v, d) {
		o, ok := byOID[dec.Obj]
		if !ok || o.Pinned || dec.From == dec.To ||
			dec.To < 0 || dec.To >= v.Nodes || o.Node != dec.From {
			continue
		}
		dec.Policy = e.pol.Name()
		out = append(out, dec)
		e.log = append(e.log, fmt.Sprintf("t=%dus %s: move obj %d (%s) node%d -> node%d: %s",
			v.Now, dec.Policy, dec.Obj, dec.Class, dec.From, dec.To, dec.Why))
	}
	return out
}

// delta differences v against the previous view and advances the baseline.
func (e *Engine) delta(v View) Delta {
	d := Delta{Instrs: make([]uint64, len(v.Instrs))}
	for i, cum := range v.Instrs {
		var prev uint64
		if i < len(e.prevInstr) {
			prev = e.prevInstr[i]
		}
		d.Instrs[i] = cum - prev
	}
	e.prevInstr = append(e.prevInstr[:0], v.Instrs...)
	for _, l := range v.Links {
		k := [2]int{l.Src, l.Dst}
		if w := l.Count - e.prevLink[k]; w > 0 {
			d.Links = append(d.Links, Link{Src: l.Src, Dst: l.Dst, Count: w})
		}
		e.prevLink[k] = l.Count
	}
	sort.Slice(d.Links, func(i, j int) bool {
		if d.Links[i].Src != d.Links[j].Src {
			return d.Links[i].Src < d.Links[j].Src
		}
		return d.Links[i].Dst < d.Links[j].Dst
	})
	for _, oc := range v.ObjCalls {
		k := objKey{oc.OID, oc.Src}
		if w := oc.Count - e.prevObj[k]; w > 0 {
			d.ObjCalls = append(d.ObjCalls, ObjCall{OID: oc.OID, Src: oc.Src, Count: w})
		}
		e.prevObj[k] = oc.Count
	}
	sort.Slice(d.ObjCalls, func(i, j int) bool {
		if d.ObjCalls[i].OID != d.ObjCalls[j].OID {
			return d.ObjCalls[i].OID < d.ObjCalls[j].OID
		}
		return d.ObjCalls[i].Src < d.ObjCalls[j].Src
	})
	return d
}
