# The tier-1 gate: everything `make ci` runs must stay green on every
# commit (see ROADMAP.md). The emvet step keeps the example corpus clean
# under the mobility-soundness analyzer on every ISA; the emtrace and
# benchjson smokes keep the observability exports loadable.

GO ?= go

.PHONY: ci build test vet emvet race emtrace-smoke benchjson-smoke bench-smoke chaos-smoke par-smoke fuzz-smoke pta-smoke auto-smoke dir-smoke jit-smoke bench-baselines

ci: vet build race emvet emtrace-smoke benchjson-smoke bench-smoke chaos-smoke par-smoke fuzz-smoke pta-smoke auto-smoke dir-smoke jit-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

emvet:
	$(GO) run ./cmd/emvet examples/programs/*.em

# A Chrome trace of the kilroy tour must export and parse as JSON.
emtrace-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/emtrace -chrome .ci/kilroy_trace.json -metrics .ci/kilroy_metrics.json examples/programs/kilroy.em
	$(GO) run ./tools/jsoncheck .ci/kilroy_trace.json .ci/kilroy_metrics.json

# embench table1 must write parseable BENCH_table1.json, and the fresh
# simulated metrics must stay within 20% of the committed baseline (the
# simulation is deterministic, so real drift means a behavior change;
# refresh deliberately with `make bench-baselines`).
benchjson-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/embench -out .ci -baseline . table1 > /dev/null
	$(GO) run ./tools/jsoncheck .ci/BENCH_table1.json

# Every Go benchmark must still run (one iteration): keeps the benchmark
# corpus and its AllocsPerRun/metric plumbing from bit-rotting.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Adaptive placement: the policy study must reproduce its committed
# BENCH_auto.json baseline (greedy-colocate collapsing remote traffic,
# batched cohort moves costing fewer wire bytes per object than singles),
# and the decision logs on the example corpus must match their goldens —
# including load-balance deciding nothing on the pinned-journal workload.
auto-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/embench -out .ci -baseline . auto > /dev/null
	$(GO) run ./tools/jsoncheck .ci/BENCH_auto.json
	$(GO) run ./cmd/emrun -auto greedy-colocate -auto-log examples/programs/zipf_hot.em 2> .ci/auto_greedy.log > /dev/null
	cmp testdata/auto_greedy.golden .ci/auto_greedy.log
	$(GO) run ./cmd/emrun -auto load-balance -auto-log examples/programs/fixed_pool.em 2> .ci/auto_lb.log > /dev/null
	cmp testdata/auto_lb.golden .ci/auto_lb.log

# The kilroy tour with the replicated directory armed must print exactly
# what the directory-off run prints — clean, with read leases on, and
# under the chaos-smoke fault plan — and the directory overhead study
# must match its committed baseline.
dir-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/emrun examples/programs/kilroy.em > .ci/kilroy_dir_off.out
	$(GO) run ./cmd/emrun -dir 3 examples/programs/kilroy.em > .ci/kilroy_dir_on.out
	cmp .ci/kilroy_dir_off.out .ci/kilroy_dir_on.out
	$(GO) run ./cmd/emrun -dir 3 -dir-lease 2000000 examples/programs/kilroy.em > .ci/kilroy_dir_lease.out
	cmp .ci/kilroy_dir_off.out .ci/kilroy_dir_lease.out
	$(GO) run ./cmd/emrun -dir 3 -chaos 'seed=7,drop=0.05,dup=0.03,delay=0.05:500us,corrupt=0.02,crash=2@76ms:156ms' \
		examples/programs/kilroy.em > .ci/kilroy_dir_chaos.out
	cmp .ci/kilroy_dir_off.out .ci/kilroy_dir_chaos.out
	$(GO) run ./cmd/embench -out .ci -baseline . dir > /dev/null
	$(GO) run ./tools/jsoncheck .ci/BENCH_dir.json

# The dispatch-tier study: legacy / predecode / fused superinstructions
# must agree on every simulated observable, and the deterministic fields
# of BENCH_jit.json (instrs, cycles, fused run structure) must match the
# committed baseline. The emulated-MIPS fields are host wall-clock and
# carry the "host" prefix the comparator skips.
jit-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/embench -out .ci -baseline . jit > /dev/null
	$(GO) run ./tools/jsoncheck .ci/BENCH_jit.json

# Regenerate the committed BENCH_*.json baselines (run after a deliberate
# model change, then commit the diff).
bench-baselines:
	$(GO) run ./cmd/embench table1 > /dev/null
	$(GO) run ./cmd/embench fig2 > /dev/null
	$(GO) run ./cmd/embench conv > /dev/null
	$(GO) run ./cmd/embench auto > /dev/null
	$(GO) run ./cmd/embench dir > /dev/null
	$(GO) run ./cmd/embench jit > /dev/null

# The kilroy tour under a seeded fault plan — 5% drops, duplicates,
# delays, corruption and a mid-tour crash/restart of node 2 — must print
# exactly what the fault-free run prints (crash-tolerant migration).
chaos-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/emrun examples/programs/kilroy.em > .ci/kilroy_clean.out
	$(GO) run ./cmd/emrun -chaos 'seed=7,drop=0.05,dup=0.03,delay=0.05:500us,corrupt=0.02,crash=2@76ms:156ms' \
		examples/programs/kilroy.em > .ci/kilroy_chaos.out
	cmp .ci/kilroy_clean.out .ci/kilroy_chaos.out

# Every example program must print identical output under the sequential
# and parallel engines, with the parallel driver under the race detector;
# the in-package differential (also -race) additionally compares event
# logs, metrics, spans, cycle/instruction counts and memory images across
# every ISA and the Figure 1 network, and checks for leaked goroutines.
par-smoke:
	mkdir -p .ci
	set -e; for p in examples/programs/*.em; do \
		name=$$(basename $$p .em); \
		$(GO) run ./cmd/emrun $$p > .ci/$$name.seq.out; \
		$(GO) run -race ./cmd/emrun -parallel $$p > .ci/$$name.par.out; \
		cmp .ci/$$name.seq.out .ci/$$name.par.out; \
	done
	$(GO) test -race ./internal/core -run TestParallelDifferential

# The wire decoder fuzz seeds (bounds-checked frame/message parsing) must
# hold; full fuzzing runs separately with -fuzz.
fuzz-smoke:
	$(GO) test -run FuzzMsgDecode ./internal/wire

# The points-to object-graph report must build for the whole corpus, find
# at least one group-migration cohort in producer_consumer, and be
# byte-identical across repeated solves (ptacheck re-solves 5x).
pta-smoke:
	mkdir -p .ci
	$(GO) run ./cmd/emvet -graph examples/programs/*.em > .ci/pta_graph.out
	grep -q '^cohort ' .ci/pta_graph.out
	$(GO) run ./cmd/emvet -graph examples/programs/producer_consumer.em | grep -q '^cohort '
	$(GO) run ./tools/ptacheck examples/programs/*.em
