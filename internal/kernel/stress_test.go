package kernel

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// churnSrc: several worker threads hammer a monitored counter inside object
// X while the coordinator keeps moving X around a heterogeneous network.
// Every interleaving forces migrations at different bus stops — calls,
// loop bottoms, monitor entry/exit, condition waits — and the final count
// must still be exact.
func churnSrc(workers, increments, moves int) string {
	return fmt.Sprintf(`
object Tally
  monitor
    var count: Int <- 0
    var closed: Bool <- false
    var done: Condition
    operation bump() -> (r: Int)
      count <- count + 1
      r <- count
    end
    operation finish()
      closed <- true
      signal done
    end
    operation result() -> (r: Int)
      while !closed do
        wait done
      end
      r <- count
    end
  end monitor
end Tally
object Worker
  var t: Tally
  var n: Int
  var last: Int <- 0
  process
    var i: Int <- 0
    while i < n do
      last <- t.bump()
      i <- i + 1
    end
  end process
end Worker
object Closer
  var t: Tally
  var expect: Int
  process
    // Busy-wait until all increments have landed, then close.
    loop
      var v: Int <- t.bump()
      exit when v > expect
      yield()
    end
    t.finish()
  end process
end Closer
object Main
  var t: Tally
  initially
    t <- new Tally
  end initially
  process
    var w: Int <- 0
    while w < %d do
      var wk: Worker <- new Worker(t, %d)
      w <- w + 1
    end
    var c: Closer <- new Closer(t, %d * %d)
    var m: Int <- 0
    while m < %d do
      move t to node((m + 1) %% nodes())
      var k: Int <- 0
      while k < 3 do
        yield()
        k <- k + 1
      end
      m <- m + 1
    end
    print("final=", t.result(), " c=", c == nil)
  end process
end Main
`, workers, increments, workers, increments, moves)
}

func TestMigrationChurnUnderMonitorLoad(t *testing.T) {
	configs := []struct {
		name   string
		models []netsim.MachineModel
	}{
		{"hetero3", []netsim.MachineModel{mSPARC, mVAX, mSun3}},
		{"hetero4", []netsim.MachineModel{mVAX, mSun3, mHP1, mSPARC}},
		{"homog", []netsim.MachineModel{mSPARC, mSPARC, mSPARC}},
	}
	const workers, increments, moves = 3, 40, 12
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			c := runSrc(t, churnSrc(workers, increments, moves), tc.models, DefaultConfig())
			got := c.OutputText()
			// The Closer's own bumps push the count past workers*increments;
			// the exact final value depends on scheduling but must be at
			// least the worker total plus the closing bump, and the run must
			// terminate without faults (checked by runSrc).
			var final int
			var cnil string
			if _, err := fmt.Sscanf(got, "final=%d c=%s", &final, &cnil); err != nil {
				t.Fatalf("output %q: %v", got, err)
			}
			if final < workers*increments+1 {
				t.Errorf("lost increments: final=%d want >= %d", final, workers*increments+1)
			}
			if cnil != "false" {
				t.Errorf("closer ref corrupted: %q", got)
			}
			migrations := uint64(0)
			for _, n := range c.Nodes {
				migrations += n.Migrations
			}
			// Some requested moves are no-ops (the object already sits on
			// the destination when the request lands), so require at least
			// half of them to be real migrations.
			if migrations < moves/2 {
				t.Errorf("only %d migrations happened (wanted >= %d)", migrations, moves/2)
			}
		})
	}
}

func TestChurnDeterministic(t *testing.T) {
	models := []netsim.MachineModel{mSPARC, mVAX, mSun3}
	src := churnSrc(2, 25, 8)
	a := runSrc(t, src, models, DefaultConfig())
	b := runSrc(t, src, models, DefaultConfig())
	if a.OutputText() != b.OutputText() || a.Sim.Now() != b.Sim.Now() {
		t.Errorf("nondeterminism: %q@%d vs %q@%d",
			a.OutputText(), a.Sim.Now(), b.OutputText(), b.Sim.Now())
	}
}

func TestFreshEntryFrameMigrates(t *testing.T) {
	// A frame pushed but never executed (Ready at PC 0) migrates with its
	// object: Mover runs between the invocation's frame push and its first
	// instruction thanks to the scheduler's FIFO order.
	c := runSrc(t, `
object X
  var v: Int <- 5
  operation op() -> (r: Int)
    r <- v + 100
  end
end X
object Pusher
  var x: X
  process
    print("got ", x.op())
  end process
end Pusher
object Mover
  var x: X
  process
    move x to node(1)
  end process
end Mover
object Main
  process
    var x: X <- new X
    var p: Pusher <- new Pusher(x)
    var m: Mover <- new Mover(x)
    print(p == m)
  end process
end Main
`, []netsim.MachineModel{mSun3, mVAX}, DefaultConfig())
	lines := c.PrintedLines()
	found := false
	for _, l := range lines {
		if l == "got 105" {
			found = true
		}
	}
	if !found {
		t.Errorf("output = %v", lines)
	}
}

func TestManyObjectsManyMoves(t *testing.T) {
	// A swarm of independent objects each tours the network; object tables,
	// proxies and forwarding must stay consistent.
	c := runSrc(t, `
object Bee
  var id: Int
  var hops: Int <- 0
  operation tour() -> (r: Int)
    var i: Int <- 0
    while i < 6 do
      move self to node((id + i) % nodes())
      hops <- hops + 1
      i <- i + 1
    end
    r <- hops * 100 + id
  end
end Bee
object Main
  process
    var bees: Array[Bee] <- new Array[Bee](6)
    var i: Int <- 0
    while i < 6 do
      bees[i] <- new Bee(i)
      i <- i + 1
    end
    i <- 0
    var total: Int <- 0
    while i < 6 do
      total <- total + bees[i].tour()
      i <- i + 1
    end
    print(total)
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX, mSun3, mHP1}, DefaultConfig())
	// Each bee: 6 hops -> 600 + id; sum = 6*600 + 0+1+..+5 = 3615.
	if got := c.OutputText(); got != "3615" {
		t.Errorf("output = %q, want 3615", got)
	}
}

func TestRemoteFaultPropagates(t *testing.T) {
	p := compileSrc(t, `
object Bomb
  operation boom(x: Int) -> (r: Int)
    r <- 10 / x
  end
end Bomb
object Main
  process
    var b: Bomb <- new Bomb
    move b to node(1)
    print(b.boom(0))
  end process
end Main
`)
	c, err := NewCluster(p, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start(nil)
	if err := c.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	// Both the serving thread (node1) and the caller (node0) die with the
	// fault; no output is produced and nothing deadlocks silently.
	if len(c.Faults) < 2 {
		t.Fatalf("faults = %v", c.Faults)
	}
	if len(c.Output) != 0 {
		t.Errorf("output = %v", c.PrintedLines())
	}
}

func TestMoveSelfDuringInitiallyIsDeferred(t *testing.T) {
	// An object that moves itself from its own `initially` block: the
	// creation chain (kernel continuations) pins the activations, so the
	// move is deferred until creation completes, then performed.
	c := runSrc(t, `
object Wanderer
  var home: Node
  initially
    move self to node(1)
    home <- thisnode()
  end initially
  function report() -> (r: String)
    r <- "created on " + str(home) + ", lives on " + str(locate(self))
  end
end Wanderer
object Main
  process
    var w: Wanderer <- new Wanderer
    print(w.report())
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	// The move is deferred past `initially`, so `home` records node0 and
	// the object ends up on node1 afterwards.
	if got := c.OutputText(); got != "created on node0, lives on node1" {
		t.Errorf("output = %q", got)
	}
}

func TestMoveByOtherThreadDuringCreationIsDeferred(t *testing.T) {
	// Another thread moves an object whose `initially` is still running
	// (it blocks on a monitor inside): the migration must wait for the
	// creation chain instead of tearing it apart.
	c := runSrc(t, `
object Gate
  monitor
    var open: Bool <- false
    var opened: Condition
    operation enter()
      while !open do
        wait opened
      end
    end
    operation unlock()
      open <- true
      signal opened
    end
  end monitor
end Gate
object Holder
  var item: Slow
  operation put(x: Slow)
    item <- x
  end
  function get() -> (r: Slow)
    r <- item
  end
end Holder
object Slow
  var g: Gate
  var h: Holder
  var ok: Bool <- false
  initially
    h.put(self)   // escape mid-creation so the mover can target us
    g.enter()     // block inside initially until the mover unlocks
    ok <- true
  end initially
  function done() -> (r: Bool)
    r <- ok
  end
end Slow
object Mover
  var g: Gate
  var h: Holder
  process
    var victim: Slow <- h.get()
    while victim == nil do
      yield()
      victim <- h.get()
    end
    // Creation of victim is still blocked on the gate: this move must be
    // deferred, not tear the creation chain apart.
    move victim to node(1)
    g.unlock()
  end process
end Mover
object Main
  var g: Gate
  var h: Holder
  initially
    g <- new Gate
    h <- new Holder(nil)
  end initially
  process
    var m: Mover <- new Mover(g, h)
    var s: Slow <- new Slow(g, h)
    print(s.done(), " ", locate(s), " ", m == nil)
  end process
end Main
`, []netsim.MachineModel{mSPARC, mSun3}, DefaultConfig())
	got := c.OutputText()
	if got != "true node1 false" {
		t.Errorf("output = %q, want creation completed then move", got)
	}
}
