// Package workgen generates scaled Emerald-subset workloads for the
// adaptive-placement experiments: K service objects (each with a helper
// Stats object allocated in its initializer, so the points-to analysis sees
// a {Service, Stats} group-migration cohort), and S simulated user sessions
// with zipf-skewed object popularity. Sessions scatter themselves over the
// cluster and issue their request streams as fully unrolled remote calls —
// every sampled index is baked into the source at generation time, so a
// given (Config, seed) always produces byte-identical source and therefore
// a deterministic simulation.
//
// Closed-loop sessions issue each request after the previous one completes
// (think: a user waiting on responses); open-loop sessions additionally
// stagger their arrival with a seeded warmup spin, so request injection is
// independent of service completion.
package workgen

import (
	"fmt"
	"math"
	"strings"
)

// Config shapes one generated workload.
type Config struct {
	// Seed drives every sampled quantity (zipf indices, argument values,
	// warmup lengths).
	Seed uint64
	// Services is K, the number of Service instances.
	Services int
	// Sessions is S, the number of simulated user sessions (one generated
	// object type each, so keep it modest).
	Sessions int
	// Requests is the per-session request count.
	Requests int
	// Theta is the zipf skew exponent (1.0–1.3 is web-like; higher skews
	// harder toward the hot object).
	Theta float64
	// Nodes spreads services and session homes round-robin over this many
	// nodes.
	Nodes int
	// Open staggers session arrivals with seeded warmup spins (open-loop);
	// false is pure closed-loop.
	Open bool
}

// Defaults fills zero fields with a small closed-loop workload.
func (c Config) Defaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Services <= 0 {
		c.Services = 4
	}
	if c.Sessions <= 0 {
		c.Sessions = 3
	}
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if c.Theta == 0 {
		c.Theta = 1.1
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	return c
}

// rng is the splitmix64 stream used across the repo's seeded components.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// zipf samples 0-based service ranks with P(rank i) proportional to
// 1/(i+1)^theta via the precomputed CDF.
type zipf struct {
	cdf []float64
}

func newZipf(n int, theta float64) *zipf {
	z := &zipf{cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *zipf) sample(u float64) int {
	for i, c := range z.cdf {
		if u < c {
			return i
		}
	}
	return len(z.cdf) - 1
}

// Generate renders the workload as Emerald-subset source.
func Generate(c Config) string {
	c = c.Defaults()
	r := &rng{state: c.Seed}
	z := newZipf(c.Services, c.Theta)

	var b strings.Builder
	fmt.Fprintf(&b, "// Generated workload: %d services, %d sessions x %d requests,\n",
		c.Services, c.Sessions, c.Requests)
	loop := "closed"
	if c.Open {
		loop = "open"
	}
	fmt.Fprintf(&b, "// zipf theta=%.2f, %s-loop, seed=%d, %d nodes. Do not edit.\n\n",
		c.Theta, loop, c.Seed, c.Nodes)

	b.WriteString(`object Stats
  var total: Int <- 0
  var count: Int <- 0
  operation note(x: Int)
    total <- total + x
    count <- count + 1
  end
end Stats

object Service
  var stats: Stats
  operation work(x: Int) -> (r: Int)
    stats.note(x)
    r <- x * 2 + 1
  end
  initially
    stats <- new Stats
  end initially
end Service

`)

	// svcList is the constructor argument list every session takes.
	svcNames := make([]string, c.Services)
	for i := range svcNames {
		svcNames[i] = fmt.Sprintf("s%d", i)
	}
	svcList := strings.Join(svcNames, ", ")

	for si := 0; si < c.Sessions; si++ {
		fmt.Fprintf(&b, "object Sess%d\n", si)
		for _, sv := range svcNames {
			fmt.Fprintf(&b, "  var %s: Service\n", sv)
		}
		b.WriteString("  process\n")
		home := si % c.Nodes
		fmt.Fprintf(&b, "    var h: Int <- %d %% nodes()\n", home)
		b.WriteString("    move self to node(h)\n")
		b.WriteString("    var sum: Int <- 0\n")
		if c.Open {
			// Seeded arrival stagger: a spin proportional to the session's
			// sampled offset, independent of any service's progress.
			warm := 50 + int(r.next()%uint64(400*(si+1)))
			fmt.Fprintf(&b, "    var w: Int <- 0\n")
			fmt.Fprintf(&b, "    while w < %d do\n      w <- w + 1\n    end\n", warm)
		}
		expect := 0
		for q := 0; q < c.Requests; q++ {
			// Per-session affinity: rotate the zipf ranking so each session's
			// hot service is its own rank-0 pick — the per-user working set
			// that gives a colocation policy something to exploit.
			target := (si + z.sample(r.float())) % c.Services
			x := 1 + int(r.next()%97)
			expect += x*2 + 1
			fmt.Fprintf(&b, "    sum <- sum + s%d.work(%d)\n", target, x)
		}
		fmt.Fprintf(&b, "    print(\"sess%d done sum=\", sum, \" expect=%d\")\n", si, expect)
		b.WriteString("  end process\n")
		fmt.Fprintf(&b, "end Sess%d\n\n", si)
	}

	b.WriteString("object Main\n")
	for _, sv := range svcNames {
		fmt.Fprintf(&b, "  var %s: Service\n", sv)
	}
	b.WriteString("  initially\n")
	for _, sv := range svcNames {
		fmt.Fprintf(&b, "    %s <- new Service\n", sv)
	}
	b.WriteString("  end initially\n  process\n")
	for i, sv := range svcNames {
		// Deliberately offset from the session homes (si % Nodes): the
		// initial placement is wrong for everyone, so adaptive policies have
		// real cross-node traffic to collapse.
		fmt.Fprintf(&b, "    var h%d: Int <- %d %% nodes()\n", i, (i+1)%c.Nodes)
		fmt.Fprintf(&b, "    move %s to node(h%d)\n", sv, i)
	}
	for si := 0; si < c.Sessions; si++ {
		fmt.Fprintf(&b, "    var t%d: Sess%d <- new Sess%d(%s)\n", si, si, si, svcList)
	}
	fmt.Fprintf(&b, "    print(\"workload up: %d services, %d sessions\")\n",
		c.Services, c.Sessions)
	b.WriteString("  end process\nend Main\n")
	return b.String()
}
