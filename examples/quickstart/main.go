// Quickstart: compile a small Emerald-subset program and run it on the
// paper's Figure 1 network — a Sun-3, an HP9000/300, a SPARC and a VAX on
// one Ethernet. An object (and the thread running inside it) hops from the
// Sun-3 to the VAX: the thread's activation records are converted from
// big-endian M68K form with six register homes to little-endian VAX form
// with four register homes and VAX F-floats, via bus stops, and keeps
// running.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const program = `
object Greeter
  var greeting: String <- "hello from"
  operation visit(dest: Node) -> (r: String)
    var count: Int <- 1
    var pi: Real <- 3.25
    move self to dest
    // Still the same thread, now running VAX native code.
    count <- count + 1
    r <- greeting + " " + str(thisnode()) + " (visit " + str(count) + ", pi=" + str(pi) + ")"
  end
end Greeter

object Main
  process
    print("starting on ", thisnode(), " of ", nodes(), " nodes")
    var g: Greeter <- new Greeter
    print(g.visit(node(3)))
    print("greeter now lives on ", locate(g))
  end process
end Main
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(prog, core.Figure1Network(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, line := range sys.Lines() {
		fmt.Println(line)
	}
	fmt.Printf("(simulated %.1f ms across a 4-node heterogeneous network)\n", sys.ElapsedMS())
}
