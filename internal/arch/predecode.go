// Predecoded execution: the per-instruction Decode in Step dominates
// emulation cost, yet the code bytes of a loaded function never change.
// Predecode walks a function once at load time and caches the decoded
// instructions in a PC-indexed table; RunPredecoded then dispatches over
// the cache with the operand-evaluation helpers hoisted into a small
// executor struct instead of per-Step closures. Step remains the
// reference implementation — RunPredecoded must be observationally
// identical to RunLegacy (same traps, faults, cycle counts, memory and
// register effects) for every input, which the differential tests assert.

package arch

import (
	"bytes"
	"fmt"

	"repro/internal/ir"
)

// Predecoded is an immutable instruction cache for one function's code.
// It is safe to share across CPUs (and goroutines) once built: execution
// never mutates it.
type Predecoded struct {
	code   []byte
	instrs []Instr
	index  []int32 // PC -> index into instrs; -1 when PC is mid-instruction
}

// Predecode decodes every instruction in code, walking linearly from PC 0.
// The code generator emits decodable placeholders even for unreachable
// slots, so any stream it produces predecodes fully; hand-built streams
// that do not decode end-to-end return an error and callers fall back to
// the byte-at-a-time path.
func Predecode(s *Spec, code []byte) (*Predecoded, error) {
	p := &Predecoded{code: code, index: make([]int32, len(code))}
	for i := range p.index {
		p.index[i] = -1
	}
	for pc := uint32(0); int(pc) < len(code); {
		in, err := Decode(s, code, pc)
		if err != nil {
			return nil, err
		}
		p.index[pc] = int32(len(p.instrs))
		p.instrs = append(p.instrs, in)
		pc += in.Size
	}
	return p, nil
}

// NumInstrs reports how many instructions were decoded.
func (p *Predecoded) NumInstrs() int { return len(p.instrs) }

// indexAt maps a PC to its cache slot, or -1 if pc does not start an
// instruction (out of range, or inside a multi-byte encoding).
func (p *Predecoded) indexAt(pc uint32) int32 {
	if int64(pc) >= int64(len(p.index)) {
		return -1
	}
	return p.index[pc]
}

// dexec is the hoisted execution state for one RunPredecoded call: what
// Step rebuilds as closures on every instruction lives here once per
// slice. cycles and fault are reset per instruction by exec.
type dexec struct {
	s      *Spec
	cpu    *CPU
	mem    []byte
	cycles uint32
	fault  FaultCode // first fault of the current instruction; 0 = none
}

func (e *dexec) ld32(addr uint32) (uint32, bool) {
	if int(addr)+4 > len(e.mem) || addr == 0 {
		return 0, false
	}
	return e.s.ByteOrd.Uint32(e.mem[addr : addr+4]), true
}

func (e *dexec) st32(addr, v uint32) bool {
	if int(addr)+4 > len(e.mem) || addr == 0 {
		return false
	}
	e.s.ByteOrd.PutUint32(e.mem[addr:addr+4], v)
	return true
}

// setFault records the first fault of the instruction, like Step's
// setFault: later faults in the same instruction do not overwrite it.
func (e *dexec) setFault(f FaultCode) uint32 {
	if e.fault == 0 {
		e.fault = f
	}
	return 0
}

// read evaluates a source operand (same semantics as Step's read closure,
// including Pop's depth decrement before the load).
func (e *dexec) read(o *Operand) uint32 {
	cpu := e.cpu
	switch o.Mode {
	case ModeImm:
		return o.Imm
	case ModeReg:
		return cpu.Regs[o.Reg&0xf]
	case ModeFrame:
		e.cycles += e.s.MemCycles
		v, ok := e.ld32(cpu.FP + uint32(o.Disp))
		if !ok {
			return e.setFault(FaultStack)
		}
		return v
	case ModeSelf:
		e.cycles += e.s.MemCycles
		v, ok := e.ld32(cpu.Self + ObjDataOff + uint32(o.Disp))
		if !ok {
			return e.setFault(FaultNilRef)
		}
		return v
	case ModeLit:
		e.cycles += e.s.MemCycles
		v, ok := e.ld32(cpu.LitBase + 4*uint32(o.Disp))
		if !ok {
			return e.setFault(FaultNilRef)
		}
		return v
	case ModePop:
		e.cycles += e.s.MemCycles
		if cpu.TempDepth <= 0 {
			return e.setFault(FaultStack)
		}
		cpu.TempDepth--
		v, ok := e.ld32(cpu.TempBase + 4*uint32(cpu.TempDepth))
		if !ok {
			return e.setFault(FaultStack)
		}
		return v
	}
	e.setFault(FaultStack)
	return 0
}

// write stores to a destination operand (Push increments depth only after
// a successful store, like Step's write closure).
func (e *dexec) write(o *Operand, v uint32) {
	cpu := e.cpu
	switch o.Mode {
	case ModeReg:
		cpu.Regs[o.Reg&0xf] = v
	case ModeFrame:
		e.cycles += e.s.MemCycles
		if !e.st32(cpu.FP+uint32(o.Disp), v) {
			e.setFault(FaultStack)
		}
	case ModeSelf:
		e.cycles += e.s.MemCycles
		if !e.st32(cpu.Self+ObjDataOff+uint32(o.Disp), v) {
			e.setFault(FaultNilRef)
		}
	case ModePush:
		e.cycles += e.s.MemCycles
		if !e.st32(cpu.TempBase+4*uint32(cpu.TempDepth), v) {
			e.setFault(FaultStack)
		} else {
			cpu.TempDepth++
		}
	default:
		e.setFault(FaultStack)
	}
}

// readString fetches a string's bytes.
func (e *dexec) readString(ref uint32) ([]byte, bool) {
	if ref == 0 {
		return nil, false
	}
	n, ok := e.ld32(ref + LenOff)
	if !ok || int(ref)+ArrDataOff+int(n) > len(e.mem) {
		return nil, false
	}
	return e.mem[ref+ArrDataOff : ref+ArrDataOff+n], true
}

// ccHolds evaluates a condition code against (lt, eq) flags.
func ccHolds(cc byte, lt, eq bool) uint32 {
	var r bool
	switch int(cc) {
	case ir.CmpEQ:
		r = eq
	case ir.CmpNE:
		r = !eq
	case ir.CmpLT:
		r = lt
	case ir.CmpLE:
		r = lt || eq
	case ir.CmpGT:
		r = !lt && !eq
	case ir.CmpGE:
		r = !lt
	}
	if r {
		return 1
	}
	return 0
}

// exec executes one predecoded instruction at pc. It mirrors Step's
// switch case for case — same operand evaluation order, fault precedence,
// cycle charges and PC-update rules — so the two dispatchers are
// interchangeable mid-stream.
func (e *dexec) exec(in *Instr, pc uint32) (*Trap, uint32, error) {
	s, cpu := e.s, e.cpu
	next := pc + in.Size
	e.cycles = s.Cycles[in.Op]
	e.fault = 0

	switch in.Op {
	case OpMov:
		e.write(&in.Operands[1], e.read(&in.Operands[0]))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpScc:
		// With stack operands, src2 (the top) is popped before src1.
		b := e.read(&in.Operands[1])
		a := e.read(&in.Operands[0])
		if e.fault == 0 {
			var v uint32
			switch in.Op {
			case OpAdd:
				v = uint32(int32(a) + int32(b))
			case OpSub:
				v = uint32(int32(a) - int32(b))
			case OpMul:
				v = uint32(int32(a) * int32(b))
			case OpDiv:
				if b == 0 {
					return &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: next}, e.cycles, nil
				}
				v = uint32(int32(a) / int32(b))
			case OpMod:
				if b == 0 {
					return &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: next}, e.cycles, nil
				}
				v = uint32(int32(a) % int32(b))
			case OpAnd:
				v = boolW(a != 0 && b != 0)
			case OpOr:
				v = boolW(a != 0 || b != 0)
			case OpScc:
				v = ccHolds(in.CC, int32(a) < int32(b), a == b)
			}
			e.write(&in.Operands[2], v)
		}
	case OpNeg, OpAbs, OpNot:
		a := e.read(&in.Operands[0])
		if e.fault == 0 {
			var v uint32
			switch in.Op {
			case OpNeg:
				v = uint32(-int32(a))
			case OpAbs:
				x := int32(a)
				if x < 0 {
					x = -x
				}
				v = uint32(x)
			case OpNot:
				v = boolW(a == 0)
			}
			e.write(&in.Operands[1], v)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFScc:
		b := s.Float.Dec(e.read(&in.Operands[1]))
		a := s.Float.Dec(e.read(&in.Operands[0]))
		if e.fault == 0 {
			switch in.Op {
			case OpFAdd:
				e.write(&in.Operands[2], s.Float.Enc(a+b))
			case OpFSub:
				e.write(&in.Operands[2], s.Float.Enc(a-b))
			case OpFMul:
				e.write(&in.Operands[2], s.Float.Enc(a*b))
			case OpFDiv:
				if b == 0 {
					return &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: next}, e.cycles, nil
				}
				e.write(&in.Operands[2], s.Float.Enc(a/b))
			case OpFScc:
				e.write(&in.Operands[2], ccHolds(in.CC, a < b, a == b))
			}
		}
	case OpFNeg:
		a := s.Float.Dec(e.read(&in.Operands[0]))
		if e.fault == 0 {
			e.write(&in.Operands[1], s.Float.Enc(-a))
		}
	case OpCvt:
		a := int32(e.read(&in.Operands[0]))
		if e.fault == 0 {
			e.write(&in.Operands[1], s.Float.Enc(float32(a)))
		}
	case OpSScc:
		bref := e.read(&in.Operands[1])
		aref := e.read(&in.Operands[0])
		if e.fault == 0 {
			as, ok1 := e.readString(aref)
			bs, ok2 := e.readString(bref)
			if !ok1 || !ok2 {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			e.cycles += uint32(min(len(as), len(bs)))
			c := bytes.Compare(as, bs)
			e.write(&in.Operands[2], ccHolds(in.CC, c < 0, c == 0))
		}
	case OpJmp:
		next = uint32(in.Target)
	case OpBrz, OpBrnz:
		v := e.read(&in.Operands[0])
		if e.fault == 0 {
			if (v == 0) == (in.Op == OpBrz) {
				next = uint32(in.Target)
				e.cycles += 1 // taken-branch penalty
			}
		}
	case OpALoad:
		idx := e.read(&in.Operands[1])
		arr := e.read(&in.Operands[0])
		if e.fault == 0 {
			if arr == 0 {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			n, ok := e.ld32(arr + LenOff)
			if !ok {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			if idx >= n {
				return &Trap{Kind: TrapFault, Fault: FaultBounds, PC: next}, e.cycles, nil
			}
			v, ok := e.ld32(arr + ArrDataOff + 4*idx)
			if !ok {
				return &Trap{Kind: TrapFault, Fault: FaultBounds, PC: next}, e.cycles, nil
			}
			e.write(&in.Operands[2], v)
		}
	case OpAStor:
		v := e.read(&in.Operands[2])
		idx := e.read(&in.Operands[1])
		arr := e.read(&in.Operands[0])
		if e.fault == 0 {
			if arr == 0 {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			n, ok := e.ld32(arr + LenOff)
			if !ok {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			if idx >= n {
				return &Trap{Kind: TrapFault, Fault: FaultBounds, PC: next}, e.cycles, nil
			}
			if !e.st32(arr+ArrDataOff+4*idx, v) {
				return &Trap{Kind: TrapFault, Fault: FaultBounds, PC: next}, e.cycles, nil
			}
		}
	case OpALen, OpSLen:
		ref := e.read(&in.Operands[0])
		if e.fault == 0 {
			if ref == 0 {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			n, ok := e.ld32(ref + LenOff)
			if !ok {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			e.write(&in.Operands[1], n)
		}
	case OpSIdx:
		idx := e.read(&in.Operands[1])
		ref := e.read(&in.Operands[0])
		if e.fault == 0 {
			str, ok := e.readString(ref)
			if !ok {
				return &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: next}, e.cycles, nil
			}
			if idx >= uint32(len(str)) {
				return &Trap{Kind: TrapFault, Fault: FaultBounds, PC: next}, e.cycles, nil
			}
			e.write(&in.Operands[2], uint32(str[idx]))
		}
	case OpPoll:
		if cpu.Preempt {
			cpu.PC = next
			return &Trap{Kind: TrapYield, PC: next}, e.cycles + s.TrapCycles, nil
		}
	case OpRet:
		cpu.PC = next
		return &Trap{Kind: TrapRet, PC: next}, e.cycles + s.TrapCycles, nil
	case OpTrap:
		cpu.PC = next
		return &Trap{Kind: in.TrapKind, A: in.TrapA, B: in.TrapB, PC: next},
			e.cycles + s.TrapCycles, nil
	case OpUnlq:
		// See Step: monitor exit in one non-interruptible instruction; no
		// TrapCycles because the kernel resumes without a scheduling point.
		cpu.PC = next
		return &Trap{Kind: TrapMonExitA, PC: next}, e.cycles, nil
	default:
		return nil, 0, fmt.Errorf("%s: unimplemented op %v at %#x", s.Name, in.Op, pc)
	}

	if e.fault != 0 {
		return &Trap{Kind: TrapFault, Fault: e.fault, PC: next}, e.cycles, nil
	}
	cpu.PC = next
	return nil, e.cycles, nil
}

// RunPredecoded executes up to budget instructions from the cache,
// falling back to Step for any PC that does not start a predecoded
// instruction (a jump into the middle of an encoding, or past the end).
// s must describe the same architecture p was predecoded for; passing it
// explicitly keeps cycle accounting tied to the caller's spec instance.
func RunPredecoded(s *Spec, p *Predecoded, cpu *CPU, mem []byte, budget int) (*Trap, uint64, int, error) {
	e := dexec{s: s, cpu: cpu, mem: mem}
	var cycles uint64
	for n := 0; n < budget; n++ {
		var (
			tr  *Trap
			c   uint32
			err error
		)
		if pc := cpu.PC; int64(pc) < int64(len(p.index)) && p.index[pc] >= 0 {
			tr, c, err = e.exec(&p.instrs[p.index[pc]], pc)
		} else {
			tr, c, err = Step(s, cpu, p.code, mem)
		}
		cycles += uint64(c)
		if err != nil {
			return nil, cycles, n + 1, err
		}
		if tr != nil {
			return tr, cycles, n + 1, nil
		}
	}
	return nil, cycles, budget, nil
}

// Run executes instructions until a trap occurs or budget instructions
// have executed, returning the trap (nil if the budget expired), the
// cycles consumed, and the instruction count. It predecodes the stream
// and dispatches over the cache; callers that hold a long-lived code
// object should Predecode once and call RunPredecoded instead. Code that
// does not predecode cleanly runs on the legacy byte-at-a-time loop,
// which fails at the same instruction Step would.
func Run(s *Spec, cpu *CPU, code []byte, mem []byte, budget int) (*Trap, uint64, int, error) {
	p, err := Predecode(s, code)
	if err != nil {
		return RunLegacy(s, cpu, code, mem, budget)
	}
	return RunPredecoded(s, p, cpu, mem, budget)
}
