// Replicated object directory (emdir), active only when Config.DirReplicas
// > 0. Every committed move drives one single-decree Paxos round (see
// internal/dir) recording the object's new home across the replicas of its
// shard; locates and stale-proxy re-resolution consult the directory first,
// and a per-node background compactor rewrites chained proxies so
// forwarding chains shrink to ≤1 hop. All directory traffic travels as
// ordinary protocol messages through sendMsg — charged, observed and
// fault-injected like any other kernel traffic — except that a node acting
// as a replica of its own query answers locally for just the syscall
// charge. Directory-off runs take none of these code paths: no messages,
// metrics, events or timers.
//
// Ordering with the two-phase move commit (twophase.go): under chaos the
// source proposes the decree only after the destination's positive MoveAck,
// and releases the object (commitMove) only once the decree resolves — so a
// chosen record never names a home that refused the install, and after a
// crash/restart a locate is one shard query. If the decree cannot complete
// (replica majority down), the round degrades after bounded attempts and
// the move commits anyway: availability of the move protocol is preserved
// and the forwarding-address chase covers the stale record. Chaos-off,
// delivery is certain and there are no competing proposers, so the decree
// is fire-and-forget at dispatch time.

package kernel

import (
	"fmt"
	"sort"

	"repro/internal/dir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// DefaultDirCompactMicros is the default compactor tick period.
const DefaultDirCompactMicros = 200000 // 200 simulated ms

// dirMaxAttempts bounds decree prepare rounds before degrading.
const dirMaxAttempts = 3

// dirCompactBatch bounds proxies refreshed per compactor tick.
const dirCompactBatch = 4

// armDir enables the directory: sizes the shard/replica layout, computes
// the locality-aware replica placement from the netsim topology, and arms
// the per-node compactors. Compactor ticks are weak events (they never keep
// a finished simulation alive), mirroring heartbeats.
func (c *Cluster) armDir() {
	c.dirOn = true
	c.dirCfg = dir.Config{Replicas: c.Config.DirReplicas}.Normalize(len(c.Nodes))
	// Replica placement is fixed for the run: every node derives the same
	// table from the same topology, so no placement messages are needed.
	// On a uniform topology PlaceReplicas reproduces the consecutive
	// ReplicaSet exactly; with latency-skewed links each shard anchor
	// recruits its lowest-latency peers.
	cost := func(a, b int) int64 { return int64(c.Net.LinkExtraLatency(a, b)) }
	c.dirPlace = make([][]int, c.dirCfg.Shards)
	for s := range c.dirPlace {
		c.dirPlace[s] = dir.PlaceReplicas(s, c.dirCfg.Replicas, len(c.Nodes), cost)
	}
	for _, n := range c.Nodes {
		n := n
		c.Sim.AtNodeWeak(n.ID, c.dirCompactPeriod(), n.dirCompactTick)
	}
}

func (c *Cluster) dirCompactPeriod() netsim.Micros {
	if c.Config.DirCompactPeriodMicros > 0 {
		return netsim.Micros(c.Config.DirCompactPeriodMicros)
	}
	return DefaultDirCompactMicros
}

// dirReplicasOf returns the replica set of o's shard (from the placement
// table armDir computed).
func (n *Node) dirReplicasOf(o oid.OID) []int {
	return n.cluster.dirPlace[dir.ShardOf(o, n.cluster.dirCfg.Shards)]
}

// dirLeasePeriod is the lease duration replicas grant on lookup hits
// (0: leases off).
func (c *Cluster) dirLeasePeriod() netsim.Micros {
	if c.Config.DirLeaseMicros > 0 {
		return netsim.Micros(c.Config.DirLeaseMicros)
	}
	return 0
}

// dirLease is one cached ownership record, granted by a shard replica with
// a simulated-time expiry. The holder drops it early when a learned decree
// or its own chosen decree supersedes the epoch, or when the recorded home
// becomes suspect.
type dirLease struct {
	node    int32
	epoch   uint32
	expires netsim.Micros
}

// dirInvalidateLease drops a cached lease superseded by a decree at epoch
// (epoch-fenced: replayed learns for older epochs leave a fresher lease
// alone).
func (n *Node) dirInvalidateLease(o oid.OID, epoch uint32) {
	if l, ok := n.dirLeases[o]; ok && epoch > l.epoch {
		delete(n.dirLeases, o)
	}
}

// dirSend routes a directory message: remote replicas through the normal
// (charged, reliable-under-chaos) send path, this node's own replica role
// synchronously for the syscall charge alone — the kernel never puts a
// frame on the medium addressed to itself.
func (n *Node) dirSend(dst int, p wire.Payload) {
	if dst == n.ID {
		n.charge(uint64(n.cluster.Costs.SyscallCycles))
		n.handleMsg(n.ID, p)
		return
	}
	n.sendMsg(dst, p)
}

// ------------------------------------------------------------- proposer

// dirProposal is the kernel side of one decree the local node is driving:
// the pure synod state plus replica fan-out and completion callbacks.
type dirProposal struct {
	p        *dir.Proposal
	replicas []int
	// done callbacks fire once, when the decree resolves (chosen or
	// degraded); the move commit gates on them under chaos.
	done []func(chosen bool)
	// stalledTimer: the round timer fired while this node was down;
	// restart re-arms it.
	stalledTimer bool
}

// dirPropose starts (or joins) the decree recording object o at home as of
// epoch. done, if non-nil, fires when the decree resolves.
func (n *Node) dirPropose(o oid.OID, epoch uint32, home int32, done func(chosen bool)) {
	slot := dir.Slot{OID: o, Epoch: epoch}
	if dp, ok := n.dirProps[slot]; ok {
		if done != nil {
			dp.done = append(dp.done, done)
		}
		return
	}
	dp := &dirProposal{
		p:        dir.NewProposal(slot, home, int32(n.ID), n.cluster.dirCfg.Quorum()),
		replicas: n.dirReplicasOf(o),
	}
	if done != nil {
		dp.done = append(dp.done, done)
	}
	n.dirProps[slot] = dp
	n.dirPrepareRound(dp)
}

// dirPrepareRound starts the next prepare round: a fresh ballot to every
// replica of the slot's shard. With a single-replica set containing this
// node the whole decree resolves synchronously inside the first dirSend, so
// the fan-out re-checks that the proposal is still the live one.
func (n *Node) dirPrepareRound(dp *dirProposal) {
	slot := dp.p.Slot
	ballot := dp.p.Start()
	for _, r := range dp.replicas {
		if n.dirProps[slot] != dp {
			return
		}
		n.dirSend(r, &wire.DirPrepare{Target: slot.OID, Epoch: slot.Epoch, Ballot: ballot})
	}
	n.armDirTimer(dp)
}

// armDirTimer watches one decree round (chaos only — without faults every
// round completes). A window that saw replies arrive means the round is
// merely slower than the window — keep the ballot and wait another window;
// a silent window means the round is stuck, so the proposer retries with a
// higher ballot, up to dirMaxAttempts silent windows, then degrades: the
// decree is abandoned, callers fall back to forwarding addresses, and the
// record heals on the object's next move.
func (n *Node) armDirTimer(dp *dirProposal) {
	if !n.chaosOn() {
		return
	}
	attempt := dp.p.Attempt()
	progress := dp.p.Progress()
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if n.dirProps[dp.p.Slot] != dp || dp.p.Done() {
			return
		}
		if !n.Up {
			dp.stalledTimer = true
			return
		}
		if dp.p.Attempt() != attempt {
			return // a newer round owns the live timer
		}
		if dp.p.Progress() != progress {
			n.armDirTimer(dp)
			return
		}
		if attempt >= dirMaxAttempts {
			n.dirResolve(dp, false, "decree attempts exhausted")
			return
		}
		n.dirPrepareRound(dp)
	})
}

// dirResolve finishes a decree (chosen or degraded) and fires the waiters.
func (n *Node) dirResolve(dp *dirProposal, chosen bool, reason string) {
	delete(n.dirProps, dp.p.Slot)
	if !chosen {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(dp.p.Slot.OID), Str: reason})
		n.cluster.Rec.Metrics().Add("dir_degraded", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	}
	done := dp.done
	dp.done = nil
	for _, f := range done {
		f(chosen)
	}
}

// recvDirPromise counts one promise; on quorum it broadcasts the accept.
func (n *Node) recvDirPromise(src int, p *wire.DirPromise) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	dp := n.dirProps[slot]
	if dp == nil || dp.p.Done() {
		return
	}
	if !dp.p.OnPromise(p.Ballot, p.Ok, p.AccBallot, p.AccNode, p.Promised) {
		return
	}
	v := dp.p.ChosenValue()
	for _, r := range dp.replicas {
		if n.dirProps[slot] != dp {
			return
		}
		n.dirSend(r, &wire.DirAccept{Target: slot.OID, Epoch: slot.Epoch,
			Ballot: dp.p.Ballot, Node: v})
	}
}

// recvDirAccepted counts one accept; on quorum the decree is chosen: the
// proposer announces it to every replica and releases the waiters.
func (n *Node) recvDirAccepted(src int, p *wire.DirAccepted) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	dp := n.dirProps[slot]
	if dp == nil {
		return
	}
	if !dp.p.OnAccepted(p.Ballot, p.Ok, p.Promised) {
		return
	}
	v := dp.p.ChosenValue()
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvDirDecree, Obj: uint32(slot.OID), A: uint64(slot.Epoch), B: uint64(v)})
	n.cluster.Rec.Metrics().Add("dir_decrees", lbl, 1)
	n.cluster.Rec.Metrics().Add("dir_decree_rounds", lbl, uint64(dp.p.Attempt()))
	n.dirInvalidateLease(slot.OID, slot.Epoch)
	for _, r := range dp.replicas {
		n.dirSend(r, &wire.DirLearn{Target: slot.OID, Epoch: slot.Epoch, Node: v})
	}
	n.dirResolve(dp, true, "")
}

// ------------------------------------------------------------- replica

// recvDirPrepare answers a prepare from this node's acceptor state.
func (n *Node) recvDirPrepare(src int, p *wire.DirPrepare) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	a := n.dirAcc[slot]
	if a == nil {
		a = &dir.Acceptor{AccNode: -1}
		n.dirAcc[slot] = a
	}
	ok, promised, accBal, accNode := a.Prepare(p.Ballot)
	n.dirSend(src, &wire.DirPromise{Target: p.Target, Epoch: p.Epoch, Ballot: p.Ballot,
		Ok: ok, Promised: promised, AccBallot: accBal, AccNode: accNode})
}

// recvDirAccept answers an accept from this node's acceptor state.
func (n *Node) recvDirAccept(src int, p *wire.DirAccept) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	a := n.dirAcc[slot]
	if a == nil {
		a = &dir.Acceptor{AccNode: -1}
		n.dirAcc[slot] = a
	}
	ok, promised := a.Accept(p.Ballot, p.Node)
	n.dirSend(src, &wire.DirAccepted{Target: p.Target, Epoch: p.Epoch, Ballot: p.Ballot,
		Ok: ok, Promised: promised})
}

// recvDirLearn applies a chosen decree to this replica's record store. The
// slot is decided, so its acceptor scratch state retires; each move of one
// object uses a fresh slot, and only the move's source proposes for it, so
// the slot can never be reopened.
func (n *Node) recvDirLearn(src int, p *wire.DirLearn) {
	n.dirStore.Learn(p.Target, p.Node, p.Epoch)
	delete(n.dirAcc, dir.Slot{OID: p.Target, Epoch: p.Epoch})
	n.dirInvalidateLease(p.Target, p.Epoch)
}

// dirAcceptor returns (creating on demand) this replica's acceptor for a
// slot.
func (n *Node) dirAcceptor(slot dir.Slot) *dir.Acceptor {
	a := n.dirAcc[slot]
	if a == nil {
		a = &dir.Acceptor{AccNode: -1}
		n.dirAcc[slot] = a
	}
	return a
}

// ------------------------------------------------- batched group decrees
//
// A MoveGroup cohort's location records commit in ONE multi-object quorum
// round: one DirGPrepare/DirGAccept fan-out covers every member slot
// instead of one single-decree round per member, cutting decree wire bytes
// per migrated object. Safety needs no new argument — each slot still has
// exactly one proposer (the cohort's source), the group just shares the
// ballot and the messages. The timers, degrade bound and crash/restart
// replay mirror the single-decree driver.

// dirGroupProposal is the kernel side of one group decree this node is
// driving.
type dirGroupProposal struct {
	g        *dir.GroupProposal
	replicas []int
	token    uint32
	done     []func(chosen bool)
	// stalledTimer: the round timer fired while this node was down;
	// restart re-arms it (in token order, after the single-decree slots).
	stalledTimer bool
}

// dirSlotRefs converts protocol slots to their wire form.
func dirSlotRefs(slots []dir.Slot) []wire.DirSlotRef {
	refs := make([]wire.DirSlotRef, len(slots))
	for i, s := range slots {
		refs[i] = wire.DirSlotRef{Target: s.OID, Epoch: s.Epoch}
	}
	return refs
}

// dirProposeGroup starts the batched decree recording each slots[i]'s
// object at homes[i]. Every slot must map to the same shard replica set
// (the cohort groupers guarantee it); a group of one degenerates to the
// single-decree path. done, if non-nil, fires when the group resolves.
func (n *Node) dirProposeGroup(slots []dir.Slot, homes []int32, done func(chosen bool)) {
	if len(slots) == 0 {
		return
	}
	if len(slots) == 1 {
		n.dirPropose(slots[0].OID, slots[0].Epoch, homes[0], done)
		return
	}
	n.dirGTok++
	gp := &dirGroupProposal{
		g:        dir.NewGroupProposal(slots, homes, int32(n.ID), n.cluster.dirCfg.Quorum()),
		replicas: n.dirReplicasOf(slots[0].OID),
		token:    n.dirGTok,
	}
	if done != nil {
		gp.done = append(gp.done, done)
	}
	n.dirGProps[gp.token] = gp
	n.dirGPrepareRound(gp)
}

// dirGPrepareRound starts the next group prepare round: one fresh ballot
// covering every member slot, to every replica of the shared shard.
func (n *Node) dirGPrepareRound(gp *dirGroupProposal) {
	ballot := gp.g.Start()
	refs := dirSlotRefs(gp.g.Slots)
	for _, r := range gp.replicas {
		if n.dirGProps[gp.token] != gp {
			return
		}
		n.dirSend(r, &wire.DirGPrepare{Token: gp.token, Ballot: ballot, Slots: refs})
	}
	n.armDirGTimer(gp)
}

// armDirGTimer watches one group round, with the same
// progress-or-retry-or-degrade policy as the single-decree timer.
func (n *Node) armDirGTimer(gp *dirGroupProposal) {
	if !n.chaosOn() {
		return
	}
	attempt := gp.g.Attempt()
	progress := gp.g.Progress()
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if n.dirGProps[gp.token] != gp || gp.g.Done() {
			return
		}
		if !n.Up {
			gp.stalledTimer = true
			return
		}
		if gp.g.Attempt() != attempt {
			return // a newer round owns the live timer
		}
		if gp.g.Progress() != progress {
			n.armDirGTimer(gp)
			return
		}
		if attempt >= dirMaxAttempts {
			n.dirGResolve(gp, false, "group decree attempts exhausted")
			return
		}
		n.dirGPrepareRound(gp)
	})
}

// dirGResolve finishes a group decree (chosen or degraded) and fires the
// waiters.
func (n *Node) dirGResolve(gp *dirGroupProposal, chosen bool, reason string) {
	delete(n.dirGProps, gp.token)
	if !chosen {
		for _, s := range gp.g.Slots {
			n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
				Kind: obs.EvDirDegraded, Obj: uint32(s.OID), Str: reason})
		}
		n.cluster.Rec.Metrics().Add("dir_degraded",
			obs.NodeLabels(n.ID, n.Spec.ID.String()), uint64(len(gp.g.Slots)))
	}
	done := gp.done
	gp.done = nil
	for _, f := range done {
		f(chosen)
	}
}

// recvDirGPromise counts one group promise; on quorum it broadcasts the
// group accept with the per-slot value vector.
func (n *Node) recvDirGPromise(src int, p *wire.DirGPromise) {
	gp := n.dirGProps[p.Token]
	if gp == nil || gp.g.Done() {
		return
	}
	if !gp.g.OnPromise(p.Ballot, p.Ok, p.AccBallots, p.AccNodes, p.Promised) {
		return
	}
	vals := gp.g.ChosenValues()
	refs := dirSlotRefs(gp.g.Slots)
	for _, r := range gp.replicas {
		if n.dirGProps[p.Token] != gp {
			return
		}
		n.dirSend(r, &wire.DirGAccept{Token: gp.token, Ballot: gp.g.Ballot,
			Slots: refs, Nodes: vals})
	}
}

// recvDirGAccepted counts one group accept; on quorum every member decree
// is chosen at once: per-slot decree events and learns, one group round's
// worth of messages.
func (n *Node) recvDirGAccepted(src int, p *wire.DirGAccepted) {
	gp := n.dirGProps[p.Token]
	if gp == nil {
		return
	}
	if !gp.g.OnAccepted(p.Ballot, p.Ok, p.Promised) {
		return
	}
	vals := gp.g.ChosenValues()
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	for i, s := range gp.g.Slots {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDecree, Obj: uint32(s.OID), A: uint64(s.Epoch), B: uint64(vals[i])})
		n.dirInvalidateLease(s.OID, s.Epoch)
	}
	n.cluster.Rec.Metrics().Add("dir_decrees", lbl, uint64(len(gp.g.Slots)))
	n.cluster.Rec.Metrics().Add("dir_decree_rounds", lbl, uint64(gp.g.Attempt()))
	n.cluster.Rec.Metrics().Add("dir_group_decrees", lbl, 1)
	n.cluster.Rec.Metrics().Add("dir_group_slots", lbl, uint64(len(gp.g.Slots)))
	learn := &wire.DirGLearn{Slots: dirSlotRefs(gp.g.Slots), Nodes: vals}
	for _, r := range gp.replicas {
		n.dirSend(r, learn)
	}
	n.dirGResolve(gp, true, "")
}

// recvDirGPrepare answers a group prepare: every member slot must promise
// the ballot for the group to promise. Slots promised before a blocking
// one keep their (higher) promise — promising more never violates
// safety, and the proposer's retry ballot will clear the bar everywhere.
func (n *Node) recvDirGPrepare(src int, p *wire.DirGPrepare) {
	ok := true
	var blocked uint64
	accBals := make([]uint64, len(p.Slots))
	accNodes := make([]int32, len(p.Slots))
	for i, s := range p.Slots {
		a := n.dirAcceptor(dir.Slot{OID: s.Target, Epoch: s.Epoch})
		sok, promised, accBal, accNode := a.Prepare(p.Ballot)
		if !sok {
			ok = false
			if promised > blocked {
				blocked = promised
			}
			continue
		}
		accBals[i] = accBal
		accNodes[i] = accNode
	}
	reply := &wire.DirGPromise{Token: p.Token, Ballot: p.Ballot, Ok: ok, Promised: blocked}
	if ok {
		reply.AccBallots = accBals
		reply.AccNodes = accNodes
	}
	n.dirSend(src, reply)
}

// recvDirGAccept answers a group accept: every member slot must accept for
// the group to accept (partial accepts are safe — a slot's value can only
// be adopted by this same proposer's retry).
func (n *Node) recvDirGAccept(src int, p *wire.DirGAccept) {
	if len(p.Nodes) != len(p.Slots) {
		return // malformed (corrupt frame survived CRC); drop
	}
	ok := true
	var blocked uint64
	for i, s := range p.Slots {
		a := n.dirAcceptor(dir.Slot{OID: s.Target, Epoch: s.Epoch})
		sok, promised := a.Accept(p.Ballot, p.Nodes[i])
		if !sok {
			ok = false
			if promised > blocked {
				blocked = promised
			}
		}
	}
	n.dirSend(src, &wire.DirGAccepted{Token: p.Token, Ballot: p.Ballot, Ok: ok, Promised: blocked})
}

// recvDirGLearn applies a chosen group decree member by member, exactly
// like the equivalent run of single learns.
func (n *Node) recvDirGLearn(src int, p *wire.DirGLearn) {
	if len(p.Nodes) != len(p.Slots) {
		return
	}
	for i, s := range p.Slots {
		n.dirStore.Learn(s.Target, p.Nodes[i], s.Epoch)
		delete(n.dirAcc, dir.Slot{OID: s.Target, Epoch: s.Epoch})
		n.dirInvalidateLease(s.Target, s.Epoch)
	}
}

// recvDirLookup answers a location query from this replica's record store,
// granting a read lease on hits when leases are armed.
func (n *Node) recvDirLookup(src int, p *wire.DirLookup) {
	r, ok := n.dirStore.Lookup(p.Target)
	reply := &wire.DirLookupReply{Target: p.Target, Token: p.Token, Ok: ok,
		Node: r.Node, Epoch: r.Epoch}
	if !ok {
		reply.Node = -1
	}
	if ok {
		if lp := n.cluster.dirLeasePeriod(); lp > 0 {
			reply.Lease = uint32(lp)
		}
	}
	n.dirSend(src, reply)
}

// ------------------------------------------------------------- lookups

// dirLookup is one outstanding location query.
type dirLookup struct {
	oid  oid.OID
	done func(ok bool, node int32, epoch uint32)
	// stalledTimer: the query timeout fired while this node was down;
	// restart re-arms it.
	stalledTimer bool
	token        uint32
}

// dirLookupQuery asks one replica of o's shard for its ownership record —
// the O(1) locate. It prefers this node's own replica role (free and
// synchronous), else the first unsuspected replica. timed arms a degrade
// timeout under chaos; callers with a blocked fragment on the line want it,
// the compactor does not (its queries carry no strong timers, so an idle
// simulation can finish). done always fires exactly once; ok=false means
// degraded or miss and the caller falls back to the forwarding chase.
func (n *Node) dirLookupQuery(o oid.OID, timed bool, done func(ok bool, node int32, epoch uint32)) {
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	if n.cluster.dirLeasePeriod() > 0 {
		if l, ok := n.dirLeases[o]; ok {
			if n.now() >= l.expires {
				delete(n.dirLeases, o)
				n.cluster.Rec.Metrics().Add("dir_lease_expired", lbl, 1)
			} else if n.suspects[int(l.node)] || int(l.node) == n.ID {
				// The leased home is suspect (the record is about to be
				// superseded or the chase must cover it) or names this very
				// node while the object is not resident here — either way
				// the lease is useless; drop it and ask the shard.
				delete(n.dirLeases, o)
			} else {
				// Lease hit: answer from the cached record for just the
				// syscall charge — no shard query, no messages. The same
				// monotonic epoch guard that fences replica records
				// (dirRefreshProxy) fences this one at the caller.
				n.charge(uint64(n.cluster.Costs.SyscallCycles))
				n.cluster.Rec.Metrics().Add("dir_lease_hits", lbl, 1)
				done(true, l.node, l.epoch)
				return
			}
		}
	}
	n.cluster.Rec.Metrics().Add("dir_lookups", lbl, 1)
	target := -1
	for _, r := range n.dirReplicasOf(o) {
		if r == n.ID {
			target = r
			break
		}
		if target < 0 && !n.suspects[r] {
			target = r
		}
	}
	if target < 0 {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(o), Str: "all replicas suspected"})
		n.cluster.Rec.Metrics().Add("dir_degraded", lbl, 1)
		done(false, -1, 0)
		return
	}
	n.dirTok++
	lk := &dirLookup{oid: o, done: done, token: n.dirTok}
	n.dirLooks[lk.token] = lk
	if timed && n.chaosOn() && target != n.ID {
		n.armDirLookupTimer(lk)
	}
	n.dirSend(target, &wire.DirLookup{Target: o, Token: lk.token})
}

// armDirLookupTimer degrades a remote query whose reply does not arrive
// within the commit window (replica crashed after suspicion checks, reply
// stalled). The fallback chase still answers the caller.
func (n *Node) armDirLookupTimer(lk *dirLookup) {
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if n.dirLooks[lk.token] != lk {
			return
		}
		if !n.Up {
			lk.stalledTimer = true
			return
		}
		delete(n.dirLooks, lk.token)
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(lk.oid), Str: "lookup timeout"})
		n.cluster.Rec.Metrics().Add("dir_degraded", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
		lk.done(false, -1, 0)
	})
}

// recvDirLookupReply resolves an outstanding query.
func (n *Node) recvDirLookupReply(src int, p *wire.DirLookupReply) {
	lk := n.dirLooks[p.Token]
	if lk == nil {
		return // timed out and degraded, or duplicate
	}
	delete(n.dirLooks, p.Token)
	hit := uint64(0)
	if p.Ok {
		hit = 1
		n.cluster.Rec.Metrics().Add("dir_lookup_hits", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
		if p.Lease > 0 && n.cluster.dirLeasePeriod() > 0 {
			n.dirLeases[p.Target] = dirLease{node: p.Node, epoch: p.Epoch,
				expires: n.now() + netsim.Micros(p.Lease)}
		}
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvDirLookup, Obj: uint32(p.Target), A: hit, B: uint64(uint32(p.Node))})
	lk.done(p.Ok, p.Node, p.Epoch)
}

// dirRefreshProxy applies a directory record to a local proxy. Records are
// quorum-chosen truths, so they overwrite hint-derived knowledge of the
// same epoch; strictly older records never regress the proxy (the same
// monotonicity guard UpdateLoc uses). Reports whether the proxy moved.
func (n *Node) dirRefreshProxy(o *Obj, node int32, epoch uint32) bool {
	if o.Resident || o.transit != nil || node < 0 || int(node) >= len(n.cluster.Nodes) {
		return false
	}
	if int(node) == n.ID {
		// The record names this node but the object is not resident here:
		// an inbound move's decree raced the install, or we re-exported it.
		// Never point a proxy at ourselves.
		return false
	}
	if epoch > o.Epoch || (epoch == o.Epoch && int(node) != o.LastKnown) {
		o.LastKnown = int(node)
		o.Epoch = epoch
		o.LocStale = false
		o.chained = false
		return true
	}
	if epoch == o.Epoch && int(node) == o.LastKnown {
		o.LocStale = false
	}
	return false
}

// dirLocate services a locate for a blocked fragment: one shard query, then
// the (refreshed) forwarding protocol — the resident node still produces
// the authoritative answer, the directory just collapses the walk to ≤1
// hop. On miss or degrade the chase runs from the old hint unchanged.
func (n *Node) dirLocate(f *Frag, o *Obj) {
	n.dirLookupQuery(o.OID, true, func(ok bool, node int32, epoch uint32) {
		if cur, live := n.objects[o.OID]; live && cur == o && !o.Resident {
			if ok {
				n.dirRefreshProxy(o, node, epoch)
			}
			n.sendMsg(o.LastKnown, &wire.Locate{
				Target: o.OID, Origin: int32(n.ID), ReplyFrag: f.ID,
			})
			return
		}
		// The object became resident here while the query was in flight
		// (an inbound move landed): answer directly.
		n.pushTemp(f, uint32(n.ID))
		n.enqueue(f)
	})
}

// dirRerouteInvoke re-resolves a suspected-or-stale callee location through
// the directory before giving up on the invocation. Any record naming a
// healthy home lets the call redispatch — including the record that merely
// confirms the proxy's current knowledge (the home crashed, restarted and
// was unsuspected again while LocStale was still set: the call must go
// through, not fault). Only when the freshest location the directory knows
// is still a suspected node does the invocation fail, with the same typed
// fault the directory-free path raises.
func (n *Node) dirRerouteInvoke(f *Frag, recv *Obj, opName string, args []uint32) {
	f.Status = FragStateBlockedCall
	f.waitNode = -1
	n.dirLookupQuery(recv.OID, true, func(ok bool, node int32, epoch uint32) {
		if recv.Resident {
			// An inbound move landed the callee here mid-query.
			f.Status = FragStateReady
			n.dispatchCall(f, recv, opName, args)
			return
		}
		if ok {
			n.dirRefreshProxy(recv, node, epoch)
		}
		if !n.suspects[recv.LastKnown] {
			// The redispatch target is as fresh as the directory can make
			// it; clear the stale bit so the next invoke takes the fast
			// path instead of re-querying the shard every call.
			recv.LocStale = false
			n.cluster.Rec.Metrics().Add("dir_reroutes", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			f.Status = FragStateReady
			n.invokeRemote(f, recv, opName, args)
			return
		}
		recv.LocStale = false // fault now; a later suspicion re-marks
		n.faultErr(f, ErrNodeDown, fmt.Sprintf("remote invocation of %s on %v: node %d is down",
			opName, recv.OID, recv.LastKnown))
	})
}

// invalidateLocationsAt marks every proxy whose cached location points at
// the newly suspected peer: the forwarding address may dangle. The marks
// steer directory-armed lookups and the compactor; without the directory
// they are inert bits.
func (n *Node) invalidateLocationsAt(peer int) {
	for _, o := range n.objects {
		if !o.Resident && o.transit == nil && o.LastKnown == peer {
			o.LocStale = true
		}
	}
	// Leases pointing at the suspect peer drop too: a crashed home's record
	// is exactly the staleness a lease must not serve through.
	for o, l := range n.dirLeases {
		if int(l.node) == peer {
			delete(n.dirLeases, o)
		}
	}
}

// ------------------------------------------------------------ compactor

// dirCompactTick is the background chain compactor: each tick it refreshes
// a bounded batch of flagged proxies (chained through by traffic, or
// location-stale after a suspicion) from the directory, rewriting them to
// the decreed home so forwarding chains truncate to ≤1 hop. Weakly
// self-re-arming, like heartbeats.
func (n *Node) dirCompactTick() {
	n.sched.AtWeak(n.cluster.dirCompactPeriod(), n.dirCompactTick)
	if !n.Up {
		return
	}
	var ids []oid.OID
	for id, o := range n.objects {
		if !o.Resident && o.transit == nil && (o.LocStale || o.chained) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > dirCompactBatch {
		ids = ids[:dirCompactBatch]
	}
	for _, id := range ids {
		id := id
		n.dirLookupQuery(id, false, func(ok bool, node int32, epoch uint32) {
			o := n.objects[id]
			if o == nil || o.Resident {
				return
			}
			// One query per flagging either way: a miss (the object never
			// moved under the directory) clears the flags too, or the
			// compactor would re-query it every tick forever.
			if ok && n.dirRefreshProxy(o, node, epoch) {
				n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
					Kind: obs.EvDirCompact, Obj: uint32(id), A: uint64(epoch), B: uint64(uint32(node))})
				n.cluster.Rec.Metrics().Add("dir_compactions", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			}
			o.LocStale = false
			o.chained = false
		})
	}
}

// -------------------------------------------------- move-commit ordering

// dirProposeMove drives the decree for a positively-acked move and commits
// the transaction when the decree resolves — chosen or degraded — provided
// the span is still pending (the commit timer cannot have aborted it: a
// delivered, acked move retires the timer; this is belt and braces).
func (n *Node) dirProposeMove(tx *moveTxn) {
	span := tx.span
	n.dirPropose(tx.obj.OID, tx.obj.Epoch, int32(tx.dest), func(chosen bool) {
		if cur, live := n.pendingCommits[span]; !live || cur != tx {
			return
		}
		n.commitMove(tx)
	})
}

// dirReplicaKey identifies o's shard replica set for cohort grouping: two
// members batch into one group decree exactly when their shards replicate
// on the same node set. Membership is what matters — placement orders the
// same set differently per shard anchor — so the key is sorted.
func (n *Node) dirReplicaKey(o oid.OID) string {
	replicas := n.dirReplicasOf(o)
	sorted := make([]int, len(replicas))
	copy(sorted, replicas)
	sort.Ints(sorted)
	return fmt.Sprint(sorted)
}

// dirGroupBatch collects one MoveGroup cohort's in-flight transactions
// under chaos so their decrees ride batched group rounds: members' MoveAcks
// arrive back to back (the whole cohort installs in one frame event), the
// batch waits until every member resolves — positively acked, refused or
// aborted — then proposes one group decree per replica set over the acked
// members. Each member's commit still gates on its decree resolving, like
// the single-object path.
type dirGroupBatch struct {
	outstanding int
	ready       []*moveTxn
}

// dirBatchAcked records one positively-acked member; the last resolution
// triggers the batched proposals.
func (n *Node) dirBatchAcked(tx *moveTxn) {
	b := tx.dirBatch
	tx.dirBatch = nil
	b.ready = append(b.ready, tx)
	b.outstanding--
	if b.outstanding == 0 {
		n.dirBatchPropose(b)
	}
}

// dirBatchDrop removes an aborted or refused member from its batch (no-op
// for batchless transactions); the remaining acked members still decree.
func (n *Node) dirBatchDrop(tx *moveTxn) {
	b := tx.dirBatch
	if b == nil {
		return
	}
	tx.dirBatch = nil
	b.outstanding--
	if b.outstanding == 0 && len(b.ready) > 0 {
		n.dirBatchPropose(b)
	}
}

// dirBatchPropose groups the batch's acked members by replica set and
// drives one group decree per set (singles degenerate), committing each
// member when its group resolves.
func (n *Node) dirBatchPropose(b *dirGroupBatch) {
	var order []string
	groups := map[string][]*moveTxn{}
	for _, tx := range b.ready {
		key := n.dirReplicaKey(tx.obj.OID)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], tx)
	}
	for _, key := range order {
		txs := groups[key]
		if len(txs) == 1 {
			n.dirProposeMove(txs[0])
			continue
		}
		slots := make([]dir.Slot, len(txs))
		homes := make([]int32, len(txs))
		for i, tx := range txs {
			slots[i] = dir.Slot{OID: tx.obj.OID, Epoch: tx.obj.Epoch}
			homes[i] = int32(tx.dest)
		}
		n.dirProposeGroup(slots, homes, func(chosen bool) {
			for _, tx := range txs {
				if cur, live := n.pendingCommits[tx.span]; !live || cur != tx {
					continue
				}
				n.commitMove(tx)
			}
		})
	}
}

// dirCohortPropose drives the chaos-off fire-and-forget decrees for a
// MoveGroup cohort, batched per shard replica set: members whose shards
// replicate on the same node set share one group decree round instead of
// opening one single-slot decree each.
func (n *Node) dirCohortPropose(cohort []groupItem, dest int) {
	var order []string
	groups := map[string][]groupItem{}
	for _, it := range cohort {
		key := n.dirReplicaKey(it.msg.Object)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], it)
	}
	for _, key := range order {
		its := groups[key]
		if len(its) == 1 {
			n.dirPropose(its[0].msg.Object, its[0].msg.Epoch, int32(dest), nil)
			continue
		}
		slots := make([]dir.Slot, len(its))
		homes := make([]int32, len(its))
		for i, it := range its {
			slots[i] = dir.Slot{OID: it.msg.Object, Epoch: it.msg.Epoch}
			homes[i] = int32(dest)
		}
		n.dirProposeGroup(slots, homes, nil)
	}
}

// restartDir re-arms directory timers that fired while the node was down,
// in deterministic order; called from restart().
func (n *Node) restartDir() {
	slots := make([]dir.Slot, 0, len(n.dirProps))
	for slot, dp := range n.dirProps {
		if dp.stalledTimer {
			slots = append(slots, slot)
		}
	}
	dir.SortSlots(slots)
	for _, slot := range slots {
		dp := n.dirProps[slot]
		dp.stalledTimer = false
		n.armDirTimer(dp)
	}
	// Stalled group decrees re-arm after the single slots, in token order —
	// tokens are minted in proposal order, so reruns replay identically.
	gtoks := make([]uint32, 0, len(n.dirGProps))
	for tok, gp := range n.dirGProps {
		if gp.stalledTimer {
			gtoks = append(gtoks, tok)
		}
	}
	sort.Slice(gtoks, func(i, j int) bool { return gtoks[i] < gtoks[j] })
	for _, tok := range gtoks {
		gp := n.dirGProps[tok]
		gp.stalledTimer = false
		n.armDirGTimer(gp)
	}
	toks := make([]uint32, 0, len(n.dirLooks))
	for tok, lk := range n.dirLooks {
		if lk.stalledTimer {
			toks = append(toks, tok)
		}
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		lk := n.dirLooks[tok]
		lk.stalledTimer = false
		n.armDirLookupTimer(lk)
	}
}
