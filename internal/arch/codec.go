// Instruction encoding and decoding.
//
// Two encoding families are implemented. The CISC family (VAX-like, M68K-
// like) uses self-describing variable-length instructions: an opcode (one
// byte on the VAX, a two-byte word on the M68K), an optional condition
// byte, then per-operand mode bytes with mode-dependent payloads. The RISC
// family (SPARC-like) uses fixed 4-byte big-endian words, register-only ALU
// operations and single-memory-operand moves; immediates and kernel traps
// occupy two words.
//
// The same abstract program therefore has different instruction lengths —
// and different program-counter values for the same program point — on
// every architecture, which is precisely the problem bus stops solve.

package arch

import "fmt"

// Encode appends the encoding of in to code and returns the extended slice.
// It fails if the instruction is not representable on the architecture.
func Encode(s *Spec, code []byte, in Instr) ([]byte, error) {
	ops := in.Operands[:in.N]
	if err := s.Supports(in.Op, ops); err != nil {
		return nil, err
	}
	if in.Op == OpUnlq && !s.HasAtomicUnlink {
		return nil, fmt.Errorf("%s: no atomic unlink instruction", s.Name)
	}
	if s.Style == EncFixedRISC {
		return encodeRISC(s, code, in)
	}
	return encodeCISC(s, code, in)
}

// cisc opcode size: the M68K uses 2-byte opcodes (distinguished by NumRegs
// trick would be fragile; use a dedicated spec knob).
func opcodeSize(s *Spec) int {
	if s.ID == M68K {
		return 2
	}
	return 1
}

func put16(s *Spec, code []byte, v uint16) []byte {
	var b [2]byte
	s.ByteOrd.PutUint16(b[:], v)
	return append(code, b[:]...)
}

func put32(s *Spec, code []byte, v uint32) []byte {
	var b [4]byte
	s.ByteOrd.PutUint32(b[:], v)
	return append(code, b[:]...)
}

func encodeCISC(s *Spec, code []byte, in Instr) ([]byte, error) {
	oc := s.opcodeByte(in.Op)
	if opcodeSize(s) == 2 {
		// M68K-style: opcode byte plus its complement as a check byte.
		code = append(code, oc, ^oc)
	} else {
		code = append(code, oc)
	}
	sh := shapes[in.Op]
	if sh.hasCC {
		code = append(code, in.CC)
	}
	if in.Op == OpTrap {
		code = append(code, byte(in.TrapKind))
		code = put16(s, code, in.TrapA)
		code = put16(s, code, in.TrapB)
		return code, nil
	}
	for k := 0; k < int(in.N); k++ {
		o := in.Operands[k]
		code = append(code, byte(o.Mode))
		switch o.Mode {
		case ModeImm:
			code = put32(s, code, o.Imm)
		case ModeReg:
			code = append(code, o.Reg)
		case ModeFrame, ModeSelf, ModeLit:
			code = put16(s, code, o.Disp)
		case ModePop, ModePush:
			// no payload
		default:
			return nil, fmt.Errorf("%s: cannot encode operand mode %v", s.Name, o.Mode)
		}
	}
	if sh.hasTarget {
		code = put16(s, code, in.Target)
	}
	return code, nil
}

// RISC mov sub-modes (see decode): the single register operand is packed
// with the sub-mode in byte 1; payload goes in bytes 2..3.
const (
	rmRegReg = iota // dst <- src reg (payload low byte)
	rmImm           // dst <- imm (next word)
	rmLdFrame
	rmLdSelf
	rmLdLit
	rmLdPop
	rmStFrame // frame <- reg
	rmStSelf
	rmStPush
)

func encodeRISC(s *Spec, code []byte, in Instr) ([]byte, error) {
	oc := s.opcodeByte(in.Op)
	w := []byte{oc, 0, 0, 0}
	checkReg := func(r byte) error {
		if r > 15 {
			return fmt.Errorf("%s: register %d out of range", s.Name, r)
		}
		return nil
	}
	switch in.Op {
	case OpMov:
		src, dst := in.Operands[0], in.Operands[1]
		var sub byte
		var reg byte
		var payload uint16
		var imm *uint32
		switch {
		case src.Mode == ModeReg && dst.Mode == ModeReg:
			sub, reg, payload = rmRegReg, dst.Reg, uint16(src.Reg)
		case src.Mode == ModeImm && dst.Mode == ModeReg:
			sub, reg = rmImm, dst.Reg
			v := src.Imm
			imm = &v
		case src.Mode == ModeFrame && dst.Mode == ModeReg:
			sub, reg, payload = rmLdFrame, dst.Reg, src.Disp
		case src.Mode == ModeSelf && dst.Mode == ModeReg:
			sub, reg, payload = rmLdSelf, dst.Reg, src.Disp
		case src.Mode == ModeLit && dst.Mode == ModeReg:
			sub, reg, payload = rmLdLit, dst.Reg, src.Disp
		case src.Mode == ModePop && dst.Mode == ModeReg:
			sub, reg = rmLdPop, dst.Reg
		case src.Mode == ModeReg && dst.Mode == ModeFrame:
			sub, reg, payload = rmStFrame, src.Reg, dst.Disp
		case src.Mode == ModeReg && dst.Mode == ModeSelf:
			sub, reg, payload = rmStSelf, src.Reg, dst.Disp
		case src.Mode == ModeReg && dst.Mode == ModePush:
			sub, reg = rmStPush, src.Reg
		default:
			return nil, fmt.Errorf("%s: unencodable mov %v -> %v", s.Name, src.Mode, dst.Mode)
		}
		if err := checkReg(reg); err != nil {
			return nil, err
		}
		w[1] = sub<<4 | reg
		w[2] = byte(payload >> 8)
		w[3] = byte(payload)
		code = append(code, w...)
		if imm != nil {
			code = put32(s, code, *imm)
		}
		return code, nil
	case OpJmp:
		w[2], w[3] = byte(in.Target>>8), byte(in.Target)
		return append(code, w...), nil
	case OpBrz, OpBrnz:
		if err := checkReg(in.Operands[0].Reg); err != nil {
			return nil, err
		}
		w[1] = in.Operands[0].Reg
		w[2], w[3] = byte(in.Target>>8), byte(in.Target)
		return append(code, w...), nil
	case OpPoll, OpRet:
		return append(code, w...), nil
	case OpTrap:
		w[1] = byte(in.TrapKind)
		w[2], w[3] = byte(in.TrapA>>8), byte(in.TrapA)
		code = append(code, w...)
		return append(code, byte(in.TrapB>>8), byte(in.TrapB), 0, 0), nil
	}
	// Register-form ALU and millicode ops: pack up to three registers; the
	// condition code shares byte 1's high nibble.
	sh := shapes[in.Op]
	for k := 0; k < int(in.N); k++ {
		if in.Operands[k].Mode != ModeReg {
			return nil, fmt.Errorf("%s: %v requires register operands", s.Name, in.Op)
		}
		if err := checkReg(in.Operands[k].Reg); err != nil {
			return nil, err
		}
		w[1+k] = in.Operands[k].Reg
	}
	if sh.hasCC {
		w[1] |= in.CC << 4
	}
	return append(code, w...), nil
}

// Decode decodes the instruction at pc. The returned instruction's Size
// field gives its encoded length.
func Decode(s *Spec, code []byte, pc uint32) (Instr, error) {
	if int(pc) >= len(code) {
		return Instr{}, fmt.Errorf("%s: pc %#x outside code of %d bytes", s.Name, pc, len(code))
	}
	if s.Style == EncFixedRISC {
		return decodeRISC(s, code, pc)
	}
	return decodeCISC(s, code, pc)
}

func decodeCISC(s *Spec, code []byte, pc uint32) (Instr, error) {
	p := pc
	need := func(n uint32) error {
		if int(p+n) > len(code) {
			return fmt.Errorf("%s: truncated instruction at %#x", s.Name, pc)
		}
		return nil
	}
	osz := uint32(opcodeSize(s))
	if err := need(osz); err != nil {
		return Instr{}, err
	}
	op, err := s.opFromByte(code[p])
	if err != nil {
		return Instr{}, fmt.Errorf("pc %#x: %w", pc, err)
	}
	if osz == 2 && code[p+1] != ^code[p] {
		return Instr{}, fmt.Errorf("%s: bad opcode check byte at %#x", s.Name, pc)
	}
	p += osz
	in := Instr{Op: op}
	sh := shapes[op]
	if sh.hasCC {
		if err := need(1); err != nil {
			return Instr{}, err
		}
		in.CC = code[p]
		p++
	}
	if op == OpTrap {
		if err := need(5); err != nil {
			return Instr{}, err
		}
		in.TrapKind = TrapKind(code[p])
		in.TrapA = s.ByteOrd.Uint16(code[p+1 : p+3])
		in.TrapB = s.ByteOrd.Uint16(code[p+3 : p+5])
		p += 5
		in.Size = p - pc
		return in, nil
	}
	in.N = byte(sh.nOperands)
	for k := 0; k < sh.nOperands; k++ {
		if err := need(1); err != nil {
			return Instr{}, err
		}
		m := Mode(code[p])
		p++
		o := Operand{Mode: m}
		switch m {
		case ModeImm:
			if err := need(4); err != nil {
				return Instr{}, err
			}
			o.Imm = s.ByteOrd.Uint32(code[p : p+4])
			p += 4
		case ModeReg:
			if err := need(1); err != nil {
				return Instr{}, err
			}
			o.Reg = code[p]
			p++
		case ModeFrame, ModeSelf, ModeLit:
			if err := need(2); err != nil {
				return Instr{}, err
			}
			o.Disp = s.ByteOrd.Uint16(code[p : p+2])
			p += 2
		case ModePop, ModePush:
		default:
			return Instr{}, fmt.Errorf("%s: bad operand mode %d at %#x", s.Name, m, pc)
		}
		in.Operands[k] = o
	}
	if sh.hasTarget {
		if err := need(2); err != nil {
			return Instr{}, err
		}
		in.Target = s.ByteOrd.Uint16(code[p : p+2])
		p += 2
	}
	in.Size = p - pc
	return in, nil
}

func decodeRISC(s *Spec, code []byte, pc uint32) (Instr, error) {
	if int(pc)+4 > len(code) {
		return Instr{}, fmt.Errorf("%s: truncated word at %#x", s.Name, pc)
	}
	w := code[pc : pc+4]
	op, err := s.opFromByte(w[0])
	if err != nil {
		return Instr{}, fmt.Errorf("pc %#x: %w", pc, err)
	}
	in := Instr{Op: op, Size: 4}
	switch op {
	case OpMov:
		sub := w[1] >> 4
		reg := w[1] & 0xf
		payload := uint16(w[2])<<8 | uint16(w[3])
		switch sub {
		case rmRegReg:
			in.Operands[0] = Reg(byte(payload))
			in.Operands[1] = Reg(reg)
		case rmImm:
			if int(pc)+8 > len(code) {
				return Instr{}, fmt.Errorf("%s: truncated immediate at %#x", s.Name, pc)
			}
			in.Operands[0] = Imm(s.ByteOrd.Uint32(code[pc+4 : pc+8]))
			in.Operands[1] = Reg(reg)
			in.Size = 8
		case rmLdFrame:
			in.Operands[0] = Frame(payload)
			in.Operands[1] = Reg(reg)
		case rmLdSelf:
			in.Operands[0] = SelfOp(payload)
			in.Operands[1] = Reg(reg)
		case rmLdLit:
			in.Operands[0] = Lit(payload)
			in.Operands[1] = Reg(reg)
		case rmLdPop:
			in.Operands[0] = Pop()
			in.Operands[1] = Reg(reg)
		case rmStFrame:
			in.Operands[0] = Reg(reg)
			in.Operands[1] = Frame(payload)
		case rmStSelf:
			in.Operands[0] = Reg(reg)
			in.Operands[1] = SelfOp(payload)
		case rmStPush:
			in.Operands[0] = Reg(reg)
			in.Operands[1] = Push()
		default:
			return Instr{}, fmt.Errorf("%s: bad mov sub-mode %d at %#x", s.Name, sub, pc)
		}
		in.N = 2
		return in, nil
	case OpJmp:
		in.Target = uint16(w[2])<<8 | uint16(w[3])
		return in, nil
	case OpBrz, OpBrnz:
		in.Operands[0] = Reg(w[1])
		in.N = 1
		in.Target = uint16(w[2])<<8 | uint16(w[3])
		return in, nil
	case OpPoll, OpRet:
		return in, nil
	case OpTrap:
		if int(pc)+8 > len(code) {
			return Instr{}, fmt.Errorf("%s: truncated trap at %#x", s.Name, pc)
		}
		in.TrapKind = TrapKind(w[1])
		in.TrapA = uint16(w[2])<<8 | uint16(w[3])
		in.TrapB = uint16(code[pc+4])<<8 | uint16(code[pc+5])
		in.Size = 8
		return in, nil
	}
	sh := shapes[op]
	in.N = byte(sh.nOperands)
	for k := 0; k < sh.nOperands; k++ {
		r := w[1+k]
		if k == 0 && sh.hasCC {
			in.CC = r >> 4
			r &= 0xf
		}
		in.Operands[k] = Reg(r)
	}
	return in, nil
}

// PatchTarget rewrites the branch target of the instruction starting at
// instrStart. Encoded instruction length is unchanged.
func PatchTarget(s *Spec, code []byte, instrStart uint32, target uint16) error {
	in, err := Decode(s, code, instrStart)
	if err != nil {
		return err
	}
	if !shapes[in.Op].hasTarget {
		return fmt.Errorf("%s: instruction %v has no target", s.Name, in.Op)
	}
	if s.Style == EncFixedRISC {
		code[instrStart+2] = byte(target >> 8)
		code[instrStart+3] = byte(target)
		return nil
	}
	// CISC: the target is the final two bytes of the instruction.
	off := instrStart + in.Size - 2
	var b [2]byte
	s.ByteOrd.PutUint16(b[:], target)
	code[off] = b[0]
	code[off+1] = b[1]
	return nil
}
