package arch

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// genInstr draws a random instruction that is legal on spec.
func genInstr(rng *rand.Rand, s *Spec) Instr {
	reg := func() Operand { return Reg(byte(rng.Intn(16))) }
	anyOperand := func() Operand {
		if s.Style == EncFixedRISC {
			return reg()
		}
		switch rng.Intn(6) {
		case 0:
			return Imm(rng.Uint32())
		case 1:
			return reg()
		case 2:
			return Frame(uint16(rng.Intn(1 << 12)))
		case 3:
			return SelfOp(uint16(rng.Intn(1 << 12)))
		case 4:
			return Lit(uint16(rng.Intn(256)))
		default:
			return Pop()
		}
	}
	dstOperand := func() Operand {
		if s.Style == EncFixedRISC {
			return reg()
		}
		switch rng.Intn(4) {
		case 0:
			return reg()
		case 1:
			return Frame(uint16(rng.Intn(1 << 12)))
		case 2:
			return SelfOp(uint16(rng.Intn(1 << 12)))
		default:
			return Push()
		}
	}
	ops3 := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpFAdd,
		OpFSub, OpFMul, OpFDiv, OpALoad, OpSIdx}
	ops2 := []Op{OpNeg, OpAbs, OpNot, OpFNeg, OpCvt, OpALen, OpSLen}
	switch rng.Intn(8) {
	case 0: // mov
		in := Instr{Op: OpMov, N: 2}
		if s.Style == EncFixedRISC {
			// One memory operand max: load or store form.
			if rng.Intn(2) == 0 {
				src := [...]Operand{Imm(rng.Uint32()), Frame(uint16(rng.Intn(4096))),
					SelfOp(uint16(rng.Intn(4096))), Lit(uint16(rng.Intn(256))), Pop(), reg()}[rng.Intn(6)]
				in.Operands = [3]Operand{src, reg()}
			} else {
				dst := [...]Operand{Frame(uint16(rng.Intn(4096))),
					SelfOp(uint16(rng.Intn(4096))), Push()}[rng.Intn(3)]
				in.Operands = [3]Operand{reg(), dst}
			}
		} else {
			in.Operands = [3]Operand{anyOperand(), dstOperand()}
		}
		return in
	case 1:
		op := ops3[rng.Intn(len(ops3))]
		return Instr{Op: op, N: 3, Operands: [3]Operand{anyOperand(), anyOperand(), dstOperand()}}
	case 2:
		op := ops2[rng.Intn(len(ops2))]
		return Instr{Op: op, N: 2, Operands: [3]Operand{anyOperand(), dstOperand()}}
	case 3:
		cc := byte(rng.Intn(6))
		op := []Op{OpScc, OpFScc}[rng.Intn(2)]
		return Instr{Op: op, CC: cc, N: 3, Operands: [3]Operand{anyOperand(), anyOperand(), dstOperand()}}
	case 4:
		return Instr{Op: OpJmp, Target: uint16(rng.Intn(1 << 15))}
	case 5:
		op := []Op{OpBrz, OpBrnz}[rng.Intn(2)]
		src := reg()
		if s.Style != EncFixedRISC && rng.Intn(2) == 0 {
			src = Pop()
		}
		return Instr{Op: op, N: 1, Operands: [3]Operand{src}, Target: uint16(rng.Intn(1 << 15))}
	case 6:
		return Instr{Op: OpTrap, TrapKind: TrapKind(1 + rng.Intn(int(NumTrap)-2)),
			TrapA: uint16(rng.Uint32()), TrapB: uint16(rng.Uint32())}
	default:
		return [...]Instr{{Op: OpPoll}, {Op: OpRet}}[rng.Intn(2)]
	}
}

// TestQuickEncodeDecodeRoundtrip: every legal random instruction survives
// encode/decode on every architecture, at every alignment within a stream.
func TestQuickEncodeDecodeRoundtrip(t *testing.T) {
	for _, s := range AllSpecs() {
		s := s
		cfg := &quick.Config{
			MaxCount: 300,
			Values: func(vs []reflect.Value, rng *rand.Rand) {
				n := 1 + rng.Intn(8)
				ins := make([]Instr, n)
				for i := range ins {
					ins[i] = genInstr(rng, s)
				}
				vs[0] = reflect.ValueOf(ins)
			},
		}
		prop := func(ins []Instr) bool {
			var code []byte
			var err error
			starts := make([]uint32, len(ins))
			for i, in := range ins {
				starts[i] = uint32(len(code))
				code, err = Encode(s, code, in)
				if err != nil {
					t.Logf("%s: encode %v: %v", s.Name, in, err)
					return false
				}
			}
			for i, in := range ins {
				got, err := Decode(s, code, starts[i])
				if err != nil {
					t.Logf("%s: decode %v: %v", s.Name, in, err)
					return false
				}
				want := in
				want.Size = got.Size
				if got.String() != want.String() {
					t.Logf("%s: %q != %q", s.Name, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestQuickStepNeverPanics: executing arbitrary (even garbage) bytes either
// decodes and steps or returns an error — never panics or writes outside
// memory.
func TestQuickStepNeverPanics(t *testing.T) {
	for _, s := range AllSpecs() {
		s := s
		prop := func(code []byte, fp, tb uint16) bool {
			mem := make([]byte, 1<<14)
			cpu := CPU{FP: uint32(fp), TempBase: uint32(tb)}
			for i := 0; i < 32; i++ {
				tr, _, err := Step(s, &cpu, code, mem)
				if err != nil || tr != nil {
					return true
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

var _ = ir.VKInt // quick generators share the ir kinds vocabulary
