// Observability determinism: the emtrace contract is that the same program
// on the same network produces a byte-identical event stream, metrics
// snapshot and Chrome trace on every run. Two fresh runs of the kilroy tour
// are compared byte for byte, and a two-hop trace is pinned against a
// golden file. Regenerate the golden with
//
//	go test ./internal/core -run TestChromeTraceGolden -update
package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the .golden files")

func kilroySource(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "programs", "kilroy.em"))
	if err != nil {
		t.Fatalf("reading kilroy demo: %v", err)
	}
	return string(src)
}

// capture runs src on machines and returns every deterministic export:
// the rendered event log, the metrics snapshot as JSON, and the Chrome
// trace.
func capture(t *testing.T, src string, machines []netsim.MachineModel) (log, metrics, chrome []byte) {
	t.Helper()
	sys, err := RunSource(src, machines, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec := sys.Recorder()
	if d := rec.Dropped(); d > 0 {
		t.Fatalf("%d events dropped; ring too small for the workload", d)
	}
	var mbuf, cbuf bytes.Buffer
	if err := obs.WriteMetricsJSON(&mbuf, sys.MetricsSnapshot()); err != nil {
		t.Fatalf("metrics export: %v", err)
	}
	if err := obs.WriteChromeTrace(&cbuf, rec); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	return obs.EventLog(rec), mbuf.Bytes(), cbuf.Bytes()
}

func TestEventStreamDeterministic(t *testing.T) {
	src := kilroySource(t)
	log1, met1, chr1 := capture(t, src, Figure1Network())
	log2, met2, chr2 := capture(t, src, Figure1Network())
	if !bytes.Equal(log1, log2) {
		t.Errorf("event logs differ between identical runs:\nrun1:\n%s\nrun2:\n%s", log1, log2)
	}
	if !bytes.Equal(met1, met2) {
		t.Errorf("metrics snapshots differ between identical runs:\nrun1:\n%s\nrun2:\n%s", met1, met2)
	}
	if !bytes.Equal(chr1, chr2) {
		t.Error("chrome traces differ between identical runs")
	}
	if len(log1) == 0 {
		t.Error("kilroy run produced an empty event log")
	}
}

func TestChromeTraceGoldenTwoHop(t *testing.T) {
	machines := []netsim.MachineModel{netsim.SPARCstationSLC, netsim.VAXstation2000}
	_, _, chrome := capture(t, kilroySource(t), machines)

	// The golden bytes must stay a well-formed Chrome trace document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if name, ok := ev["name"].(string); ok && ev["ph"] == "X" {
			switch {
			case strings.HasPrefix(name, "MD→MI"):
				phases["conv_out"] = true
			case strings.HasPrefix(name, "wire"):
				phases["wire"] = true
			case strings.HasPrefix(name, "MI→MD"):
				phases["respec"] = true
			}
		}
	}
	for _, want := range []string{"conv_out", "wire", "respec"} {
		if !phases[want] {
			t.Errorf("two-hop trace is missing a %s phase slice", want)
		}
	}

	golden := filepath.Join("testdata", "kilroy_two_hop_trace.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, chrome, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(chrome, want) {
		t.Errorf("chrome trace drifted from golden (run with -update to accept):\ngot %d bytes, want %d bytes", len(chrome), len(want))
	}
}
