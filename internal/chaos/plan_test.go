package chaos

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,drop=0.05,dup=0.03,delay=0.02:2ms,corrupt=0.01," +
		"crash=2@120ms:320ms,crash=1@1s,partition=0-1@10ms:20ms," +
		"hb=25ms,suspect=200ms,commit=500ms,rto=10ms,rtomax=160ms,retries=8,retrymove=250ms")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed: 42, Drop: 0.05, Dup: 0.03, Delay: 0.02, Corrupt: 0.01,
		DelayMicros: 2_000,
		Crashes: []Crash{
			{Node: 2, At: 120_000, RestartAt: 320_000},
			{Node: 1, At: 1_000_000},
		},
		Partitions:     []Partition{{A: 0, B: 1, From: 10_000, Until: 20_000}},
		HeartbeatEvery: 25_000, SuspectAfter: 200_000, CommitTimeout: 500_000,
		RTOBase: 10_000, RTOMax: 160_000, MaxRetrans: 8, MoveRetry: 250_000,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ParsePlan mismatch:\ngot  %+v\nwant %+v", p, want)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus",               // not key=value
		"zoom=1",              // unknown key
		"drop=1.5",            // probability out of range
		"drop=-0.1",           // negative probability
		"crash=1",             // missing @at
		"crash=1@50ms:40ms",   // restart before crash
		"partition=0@1ms:2ms", // missing -b
		"partition=0-1@5ms:5ms",
		"hb=-3ms",
		"retries=x",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", bad)
		}
	}
}

func TestPlanDefaults(t *testing.T) {
	var p Plan
	if got := p.HeartbeatPeriod(); got != 50_000 {
		t.Errorf("HeartbeatPeriod = %d", got)
	}
	if got := p.SuspectTimeout(); got != 400_000 {
		t.Errorf("SuspectTimeout = %d", got)
	}
	if got := p.CommitWindow(); got != 1_000_000 {
		t.Errorf("CommitWindow = %d", got)
	}
	if got := p.RTOMin(); got != 20_000 {
		t.Errorf("RTOMin = %d", got)
	}
	if got := p.RTOCap(); got != 320_000 {
		t.Errorf("RTOCap = %d", got)
	}
	if got := p.Retries(); got != 10 {
		t.Errorf("Retries = %d", got)
	}
	if got := p.RetryMoveAfter(); got != 300_000 {
		t.Errorf("RetryMoveAfter = %d", got)
	}
	if got := p.DelayBound(); got != 1_000 {
		t.Errorf("DelayBound = %d", got)
	}
}

func TestPlanStringRoundtrip(t *testing.T) {
	p1, err := ParsePlan("seed=9,drop=0.1,dup=0.05,delay=0.02:500us,corrupt=0.01,crash=1@1000us:2000us")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(p1.String())
	if err != nil {
		t.Fatalf("String() output does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("roundtrip mismatch:\ngot  %+v\nwant %+v", p2, p1)
	}
}

// verdicts feeds a fixed synthetic frame sequence to an injector and
// collects its decisions.
func verdicts(in *Injector) []netsim.Verdict {
	out := make([]netsim.Verdict, 0, 64)
	for i := 0; i < 64; i++ {
		out = append(out, in.Frame(netsim.Micros(i*100), i%4, (i+1)%4, 100+i))
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	plan := &Plan{Seed: 7, Drop: 0.2, Dup: 0.2, Delay: 0.2, Corrupt: 0.2}
	v1 := verdicts(NewInjector(plan, nil))
	v2 := verdicts(NewInjector(plan, nil))
	if !reflect.DeepEqual(v1, v2) {
		t.Error("same seed produced different verdict sequences")
	}
	v3 := verdicts(NewInjector(&Plan{Seed: 8, Drop: 0.2, Dup: 0.2, Delay: 0.2, Corrupt: 0.2}, nil))
	if reflect.DeepEqual(v1, v3) {
		t.Error("different seeds produced identical verdict sequences (PRNG not seeded)")
	}
	// With aggressive probabilities 64 frames must hit every fault class.
	in := NewInjector(plan, nil)
	verdicts(in)
	for _, kind := range []string{"drop", "dup", "delay", "corrupt"} {
		if in.Injected()[kind] == 0 {
			t.Errorf("no %s faults injected across 64 frames at p=0.2", kind)
		}
	}
}

func TestInjectorPartition(t *testing.T) {
	plan := &Plan{Seed: 1, Partitions: []Partition{{A: 0, B: 2, From: 100, Until: 200}}}
	in := NewInjector(plan, nil)
	if v := in.Frame(150, 0, 2, 10); !v.Drop {
		t.Error("frame inside partition window not dropped")
	}
	if v := in.Frame(150, 2, 0, 10); !v.Drop {
		t.Error("partition must cut both directions")
	}
	if v := in.Frame(250, 0, 2, 10); v.Drop {
		t.Error("frame after partition healed was dropped")
	}
	if v := in.Frame(150, 1, 2, 10); v.Drop {
		t.Error("partition leaked onto an uninvolved link")
	}
}

// TestInjectorPerLinkStreams: a link's verdict sequence is a function of
// the plan seed and that link's own frame count only. Frames on other
// links interleaved arbitrarily between them must not perturb it — the
// property the parallel engine needs, since under it the global
// interleaving of Frame calls across links is schedule-dependent.
func TestInjectorPerLinkStreams(t *testing.T) {
	plan := &Plan{Seed: 7, Drop: 0.2, Dup: 0.2, Delay: 0.2, Corrupt: 0.2}

	alone := NewInjector(plan, nil)
	var want []netsim.Verdict
	for i := 0; i < 32; i++ {
		want = append(want, alone.Frame(netsim.Micros(i*100), 0, 1, 64+i))
	}

	mixed := NewInjector(plan, nil)
	var got []netsim.Verdict
	for i := 0; i < 32; i++ {
		// Interleave traffic on three other links, including the reverse
		// direction of the link under test.
		mixed.Frame(netsim.Micros(i*100), 1, 0, 32)
		mixed.Frame(netsim.Micros(i*100+1), 2, 3, 48)
		got = append(got, mixed.Frame(netsim.Micros(i*100), 0, 1, 64+i))
		mixed.Frame(netsim.Micros(i*100+2), 3, 0, 16)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("interleaved traffic on other links perturbed a link's verdict stream")
	}
}
