// Directory (emdir) tests: the replicated object-location service must be
// invisible when off, keep program output identical when on, survive a
// replica crash/restart mid move chain with every object locatable in one
// shard query, reroute invocations around dead forwarding addresses, and
// bound the degraded-mode locate chase.

package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// dirConfig arms the directory with r replicas per shard.
func dirConfig(r int, plan *chaos.Plan) Config {
	cfg := DefaultConfig()
	cfg.DirReplicas = r
	cfg.Chaos = plan
	return cfg
}

// dirCounter sums a counter across all nodes.
func dirCounter(c *Cluster, name string) uint64 {
	var total uint64
	for _, cp := range c.Rec.Metrics().CountersPrefix(name) {
		total += cp.Value
	}
	return total
}

// TestDirOffLeavesNoTrace: with DirReplicas 0 no directory code path runs —
// no dir_* counters, no dir events, and kilroy's output is the golden one.
func TestDirOffLeavesNoTrace(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}
	c := runSrc(t, src, models, DefaultConfig())
	for _, cp := range c.Rec.Metrics().Snapshot(0).Counters {
		if strings.HasPrefix(cp.Name, "dir_") {
			t.Errorf("directory-off run recorded %s=%d", cp.Name, cp.Value)
		}
	}
	for _, e := range c.Rec.Events() {
		switch e.Kind {
		case obs.EvDirDecree, obs.EvDirDegraded, obs.EvDirLookup, obs.EvDirCompact:
			t.Fatalf("directory-off run emitted %v", e.Kind)
		}
	}
}

// TestDirKilroySameOutput: arming the directory must not change what the
// program prints, chaos-off and chaos-on, and a dir-on chaos run must stay
// deterministic (byte-identical event logs for the same seed).
func TestDirKilroySameOutput(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}

	base := runSrc(t, src, models, DefaultConfig())
	elapsed := base.Sim.Now()

	on := runSrc(t, src, models, dirConfig(3, nil))
	if got := on.OutputText(); got != base.OutputText() {
		t.Fatalf("dir-on output differs:\noff:\n%s\non:\n%s", base.OutputText(), got)
	}
	if dirCounter(on, "dir_decrees") == 0 {
		t.Error("dir-on run decreed nothing; the directory is not engaged")
	}

	plan := func() *chaos.Plan {
		return &chaos.Plan{
			Seed: 7, Drop: 0.06, Dup: 0.04, Delay: 0.05, Corrupt: 0.03,
			Crashes: []chaos.Crash{{Node: 2, At: elapsed / 3, RestartAt: elapsed/3 + 80_000}},
		}
	}
	c1 := runSrc(t, src, models, dirConfig(3, plan()))
	if got := c1.OutputText(); got != base.OutputText() {
		t.Fatalf("dir-on chaos output differs from fault-free run:\nfault-free:\n%s\nchaos:\n%s",
			base.OutputText(), got)
	}
	assertExactlyOnceInstalls(t, c1)
	c2 := runSrc(t, src, models, dirConfig(3, plan()))
	if !bytes.Equal(obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)) {
		t.Error("same seed produced different event logs with the directory on")
	}
}

// dirFinalRecordsMatchResidency asserts that, for every mutable runtime
// object resident somewhere, each replica holding a record at the object's
// current epoch names the resident node — the one-shard-query locate.
func dirFinalRecordsMatchResidency(t *testing.T, c *Cluster) {
	t.Helper()
	type home struct {
		node  int
		epoch uint32
	}
	homes := map[oid.OID]home{}
	for _, n := range c.Nodes {
		for id, o := range n.objects {
			if o.Resident && o.Epoch > 0 {
				homes[id] = home{node: n.ID, epoch: o.Epoch}
			}
		}
	}
	checked := 0
	for _, n := range c.Nodes {
		for _, id := range n.dirStore.OIDs() {
			r, _ := n.dirStore.Lookup(id)
			h, ok := homes[id]
			if !ok || r.Epoch != h.epoch {
				continue // object died, or replica has an older (superseded) record
			}
			checked++
			if int(r.Node) != h.node {
				t.Errorf("node %d directory: %v -> node %d epoch %d, but resident at node %d",
					n.ID, id, r.Node, r.Epoch, h.node)
			}
		}
	}
	if checked == 0 {
		t.Error("no current-epoch directory records to check; the directory is not engaged")
	}
}

// TestDirStoreMatchesResidency: after a migration-heavy chaos-off run every
// replica's current-epoch records agree with where objects actually live.
func TestDirStoreMatchesResidency(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}
	c := runSrc(t, src, models, dirConfig(3, nil))
	dirFinalRecordsMatchResidency(t, c)
}

const chainSrc = `
object Target
  var hits: Int <- 0
  operation hit() -> (r: Int)
    hits <- hits + 1
    r <- hits
  end
end Target
object Main
  process
    var o: Target <- new Target
    move o to node(1)
    move o to node(2)
    move o to node(3)
    print(o.hit())
    print(o.hit())
    print(locate(o))
  end process
end Main
`

// TestDirChainCrashRecovery is the acceptance scenario: a replica crashes
// and restarts in the middle of a multi-hop move chain. Directory off, the
// chaos protocol alone must still converge; directory on, additionally
// every moved object must be locatable in one shard query afterwards —
// each live replica's current-epoch record names the final home — with
// exactly-once installs and byte-identical reruns.
func TestDirChainCrashRecovery(t *testing.T) {
	models := []netsim.MachineModel{mSPARC, mVAX, mSun3, mHP1}
	base := runSrc(t, chainSrc, models, DefaultConfig())
	want := base.PrintedLines()
	elapsed := base.Sim.Now()

	plan := func() *chaos.Plan {
		return &chaos.Plan{
			Seed: 9, Drop: 0.05, Dup: 0.03,
			// Take node 2 — a mid-chain hop and a shard replica — down in
			// the thick of the move sequence, back within the suspicion
			// window.
			Crashes: []chaos.Crash{{Node: 2, At: elapsed / 4, RestartAt: elapsed/4 + 80_000}},
		}
	}

	for _, arm := range []struct {
		name     string
		replicas int
	}{{"dir-off", 0}, {"dir-on", 3}} {
		t.Run(arm.name, func(t *testing.T) {
			c1 := runSrc(t, chainSrc, models, dirConfig(arm.replicas, plan()))
			got := c1.PrintedLines()
			if len(got) != len(want) {
				t.Fatalf("output = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("output = %v, want %v", got, want)
				}
			}
			assertExactlyOnceInstalls(t, c1)
			c2 := runSrc(t, chainSrc, models, dirConfig(arm.replicas, plan()))
			if !bytes.Equal(obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)) {
				t.Error("same seed produced different event logs")
			}
			if arm.replicas > 0 {
				if dirCounter(c1, "dir_decrees") == 0 {
					t.Error("no decrees chosen across the move chain")
				}
				dirFinalRecordsMatchResidency(t, c1)
			}
		})
	}
}

const rerouteSrc = `
object Probe
  operation ping() -> (r: String)
    r <- str(thisnode())
  end
end Probe

object Main
  process
    var p: Probe <- new Probe
    move p to node(1)
    print(p.ping())
    move p to node(2)
    var i: Int <- 0
    while i < 2500000 do
      i <- i + 1
    end
    print(p.ping())
  end process
end Main
`

// rerouteplan crashes node 1 for good after the probe has moved on to node
// 2. Node 0 never learns about the second hop (a MoveReq serviced at node 1
// sends nothing back), so its proxy still points at the dead node when the
// second ping fires.
func reroutePlan() *chaos.Plan {
	return &chaos.Plan{
		Seed: 1,
		// Crash late enough that both moves (and their decrees) have
		// settled; never restarts.
		Crashes:        []chaos.Crash{{Node: 1, At: 450_000}},
		HeartbeatEvery: 20_000,
		SuspectAfter:   100_000,
		CommitTimeout:  60_000,
		RTOBase:        20_000,
		RTOMax:         80_000,
		MaxRetrans:     5,
	}
}

// TestDirRerouteStaleLocation is the stale-forwarding-address fix:
// directory off, an invocation through a suspected node faults with the
// typed ErrNodeDown; directory on, the kernel re-resolves the callee
// through the directory and the call lands on its real home.
func TestDirRerouteStaleLocation(t *testing.T) {
	models := []netsim.MachineModel{mSPARC, mSPARC, mSPARC}

	// Directory off: the second ping dies with the typed fault.
	p := compileSrc(t, rerouteSrc)
	c, err := NewCluster(p, models, dirConfig(0, reroutePlan()))
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	c.Start(nil)
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := c.OutputText(); got != "node1" {
		t.Fatalf("dir-off output = %q, want %q (second ping should fault)", got, "node1")
	}
	if len(c.Faults) == 0 {
		t.Fatal("dir-off: expected a typed node-down fault, got none")
	}
	if !errors.Is(c.Faults[0].Err, ErrNodeDown) {
		t.Errorf("dir-off fault = %v, want ErrNodeDown", c.Faults[0].Err)
	}

	// Directory on: the same run reroutes and completes faultlessly. The
	// compactor is idled (it would heal the proxy first and mask the
	// invoke-time reroute path under test).
	cfg := dirConfig(3, reroutePlan())
	cfg.DirCompactPeriodMicros = 60_000_000
	cOn := runSrc(t, rerouteSrc, models, cfg)
	if got := cOn.OutputText(); got != "node1\nnode2" {
		t.Fatalf("dir-on output = %q, want %q", got, "node1\nnode2")
	}
	if dirCounter(cOn, "dir_reroutes") == 0 {
		t.Error("dir-on run recorded no reroutes; the call did not go through the directory")
	}
}

// TestDirCompactorHealsStaleProxies: with the compactor at its default
// cadence, a proxy invalidated by a suspicion is rewritten from the
// directory in the background — before any invocation needs it — so the
// second ping goes direct without an invoke-time reroute.
func TestDirCompactorHealsStaleProxies(t *testing.T) {
	models := []netsim.MachineModel{mSPARC, mSPARC, mSPARC}
	c := runSrc(t, rerouteSrc, models, dirConfig(3, reroutePlan()))
	if got := c.OutputText(); got != "node1\nnode2" {
		t.Fatalf("output = %q, want %q", got, "node1\nnode2")
	}
	if dirCounter(c, "dir_compactions") == 0 {
		t.Error("compactor rewrote nothing; the stale proxy was not healed in the background")
	}
	// The healed proxy points at the real home with its flags cleared.
	for _, o := range c.Nodes[0].objects {
		if !o.Resident && o.Kind == ObjPlain && o.Epoch > 0 {
			if o.LastKnown != 2 {
				t.Errorf("proxy still points at node %d, want 2", o.LastKnown)
			}
			if o.LocStale || o.chained {
				t.Error("healed proxy still flagged stale/chained")
			}
		}
	}
}

// TestLocateChaseTTL bounds the forwarding walk: a forwarding loop (two
// proxies pointing at each other, as crash-era hints can leave behind) must
// exhaust the hop budget and fail the locate instead of ping-ponging
// forever.
func TestLocateChaseTTL(t *testing.T) {
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC},
		chaosConfig(&chaos.Plan{Seed: 1}))
	n0 := c.Nodes[0]
	ghost := oid.ForRuntime(0, 900)
	n0.proxyFor(ghost, 1) // n0 thinks node 1 has it; nobody does

	// A chase that has already burned its budget must fail, not forward.
	sentBefore := n0.MsgsSent
	n0.recvLocate(1, &wire.Locate{Target: ghost, Origin: 1, ReplyFrag: 7, Hops: maxLocateHops})
	if got := dirCounter(c, "locate_chase_exhausted"); got != 1 {
		t.Errorf("locate_chase_exhausted = %d, want 1", got)
	}
	if n0.MsgsSent != sentBefore+1 {
		t.Errorf("exhausted locate sent %d messages, want 1 (the failure Return)", n0.MsgsSent-sentBefore)
	}

	// Under budget the chase still forwards and counts the hop.
	n0.recvLocate(1, &wire.Locate{Target: ghost, Origin: 1, ReplyFrag: 7, Hops: maxLocateHops - 1})
	if got := dirCounter(c, "locate_chase_exhausted"); got != 1 {
		t.Errorf("in-budget locate bumped locate_chase_exhausted to %d", got)
	}
}

// TestDirUnitShardQuery drives the kernel-level lookup path directly: after
// a dir-on run, querying a replica's store for a decreed object is a single
// Lookup — no network walk required.
func TestDirUnitShardQuery(t *testing.T) {
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC}, dirConfig(2, nil))
	if got := c.OutputText(); got != "node1" {
		t.Fatalf("output = %q, want %q", got, "node1")
	}
	// Find the probe's OID: the plain runtime object resident on node 1.
	var probe oid.OID
	for id, o := range c.Nodes[1].objects {
		if o.Resident && o.Kind == ObjPlain && uint32(id) >= 0x10000 {
			probe = id
		}
	}
	if probe == 0 {
		t.Fatal("probe object not found on node 1")
	}
	replicas := dir.ReplicaSet(dir.ShardOf(probe, c.dirCfg.Shards), c.dirCfg.Replicas, len(c.Nodes))
	hits := 0
	for _, r := range replicas {
		if rec, ok := c.Nodes[r].dirStore.Lookup(probe); ok {
			hits++
			if rec.Node != 1 {
				t.Errorf("replica %d record names node %d, want 1", r, rec.Node)
			}
		}
	}
	if hits == 0 {
		t.Errorf("no replica of shard holds a record for %v", probe)
	}
}
