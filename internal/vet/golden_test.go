// Golden tests over the negative corpus in testdata/: each fixture either
// carries its defect in the source (the lint fixtures) or is compiled clean
// and then deliberately corrupted in memory (the metadata fixtures), and the
// full diagnostic output is pinned against a .golden file. Regenerate with
//
//	go test ./internal/vet -run TestGolden -update
package vet_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/busstop"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/vet"
)

var update = flag.Bool("update", false, "rewrite the .golden files")

// corruptions maps fixture name to the in-memory tampering applied after a
// clean compile. Fixtures not listed here carry their defect in the source.
var corruptions = map[string]func(t *testing.T, prog *codegen.Program){
	"skewed_stops": func(t *testing.T, prog *codegen.Program) {
		restop(t, vaxFunc(t, prog, "Counter"), func(stops []busstop.Info) {
			stops[0].TempDepth++
			stops[0].TempKinds = append(stops[0].TempKinds, ir.VKInt)
		})
	},
	"cleared_live_bit": func(t *testing.T, prog *codegen.Program) {
		restop(t, vaxFunc(t, prog, "Counter"), func(stops []busstop.Info) {
			if stops[0].LiveVars == 0 {
				t.Fatal("first Counter.bump stop has no live slots to clear")
			}
			stops[0].LiveVars &= stops[0].LiveVars - 1 // clear lowest set bit
		})
	},
	"wrong_template_kind": func(t *testing.T, prog *codegen.Program) {
		fc := vaxFunc(t, prog, "Holder")
		if len(fc.Template.Vars) == 0 {
			t.Fatal("Holder.keep has no variable homes")
		}
		fc.Template.Vars[0].Kind = ir.VKPtr
	},
}

func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.em"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".em")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog := compile(t, string(src))
			if corrupt, ok := corruptions[name]; ok {
				mustClean(t, prog) // the defect is the corruption, not the source
				corrupt(t, prog)
			}
			var b strings.Builder
			for _, d := range vet.Check(prog) {
				fmt.Fprintln(&b, d)
			}
			got := b.String()
			if got == "" {
				t.Fatalf("fixture %s produced no diagnostics", name)
			}
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// TestGoldenPassCoverage pins which pass flags each fixture, independent of
// message wording: the corpus must keep exercising every advertised pass
// family even if diagnostics are reworded.
func TestGoldenPassCoverage(t *testing.T) {
	wantPasses := map[string]string{
		"dead_store":          "dead-store",
		"unassigned":          "definite-assignment",
		"unreachable":         "unreachable-code",
		"reentrancy":          "monitor-reentrancy",
		"skewed_stops":        "liveness-consistency",
		"cleared_live_bit":    "liveness-consistency",
		"wrong_template_kind": "template-coverage",
		"escaping_local":      "ptr-escape",
		"dead_ptr_at_stop":    "dead-ptr-at-stop",
		"immobile_reach":      "immobile-reach",
	}
	for name, pass := range wantPasses {
		name, pass := name, pass
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name+".em"))
			if err != nil {
				t.Fatal(err)
			}
			prog := compile(t, string(src))
			if corrupt, ok := corruptions[name]; ok {
				corrupt(t, prog)
			}
			diags := vet.Check(prog)
			if !passNames(diags)[pass] {
				t.Errorf("fixture %s not flagged by %s; diagnostics:", name, pass)
				for _, d := range diags {
					t.Errorf("  %s", d)
				}
			}
		})
	}
}
