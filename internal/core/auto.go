// Static placement facts for the adaptive-placement subsystem: core runs
// the points-to analysis over the compiled program and translates its
// site-labelled results (cohorts, immobile reach) into the class-name lists
// the kernel's policy driver consumes — the kernel itself stays free of any
// pta dependency.

package core

import (
	"sort"
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/pta"
)

// AutoFacts computes the class-name group-migration cohorts and the pinned
// class list for prog. Cohorts come from pta's per-allocation-site closure,
// collapsed from site labels ("Func@PC new Type") to distinct type-name
// sets; sets with fewer than two classes batch nothing and are dropped, as
// are duplicates. Pinned classes come from the immobile-reach analysis:
// any class a fix statement can reach must never be scheduled by a policy.
func AutoFacts(prog *codegen.Program) (cohorts [][]string, pinned []string, err error) {
	irp := &ir.Program{Objects: make([]*ir.Object, len(prog.Objects))}
	for i, oc := range prog.Objects {
		irp.Objects[i] = oc.IR
	}
	res, err := pta.Analyze(irp)
	if err != nil {
		return nil, nil, err
	}

	seen := map[string]bool{}
	for _, c := range res.Cohorts() {
		set := map[string]bool{}
		for _, m := range c.Members {
			// Member labels have the stable form "Func@PC new TypeName".
			if i := strings.Index(m, " new "); i >= 0 {
				set[m[i+len(" new "):]] = true
			}
		}
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(names) < 2 {
			continue
		}
		key := strings.Join(names, "|")
		if seen[key] {
			continue
		}
		seen[key] = true
		cohorts = append(cohorts, names)
	}

	pinSet := map[string]bool{}
	for _, oc := range prog.Objects {
		// Entries have the form "T1/T2 (fixed at fn@pc, ...)".
		for _, entry := range res.ProcessPinnedReach(oc.Name) {
			head := entry
			if i := strings.Index(head, " ("); i >= 0 {
				head = head[:i]
			}
			for _, cls := range strings.Split(head, "/") {
				if cls != "" {
					pinSet[cls] = true
				}
			}
		}
	}
	for n := range pinSet {
		pinned = append(pinned, n)
	}
	sort.Strings(pinned)
	return cohorts, pinned, nil
}

// AutoDecisionLog returns the run's placement decision log (empty when no
// policy was armed).
func (s *System) AutoDecisionLog() []string { return s.Cluster.AutoDecisionLog() }
