// Disassembler, used by cmd/emc -S, debugging and golden tests.

package arch

import (
	"fmt"
	"strings"
)

// Disassemble renders the whole code slice, one instruction per line,
// prefixed with the byte offset. Decoding stops at the first undecodable
// byte (reported in the output).
func Disassemble(s *Spec, code []byte) string {
	var b strings.Builder
	pc := uint32(0)
	for int(pc) < len(code) {
		in, err := Decode(s, code, pc)
		if err != nil {
			fmt.Fprintf(&b, "%6d: <undecodable: %v>\n", pc, err)
			break
		}
		fmt.Fprintf(&b, "%6d: %s\n", pc, in)
		pc += in.Size
	}
	return b.String()
}

// CountInstrs returns the number of instructions in code.
func CountInstrs(s *Spec, code []byte) (int, error) {
	n := 0
	pc := uint32(0)
	for int(pc) < len(code) {
		in, err := Decode(s, code, pc)
		if err != nil {
			return n, err
		}
		n++
		pc += in.Size
	}
	return n, nil
}
