package kernel

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/netsim"
)

const vetLoadSrc = `
object Counter
  monitor
    var n: Int <- 0
    operation bump() -> (r: Int)
      n <- n + 1
      r <- n
    end
  end monitor
end Counter

object Main
  process
    var c: Counter <- new Counter
    print("n=", c.bump())
  end process
end Main
`

// tamperCounter skews the first VAX stop of Counter — the tampering the
// vet-on-load gate exists to catch.
func tamperCounter(t *testing.T, c *Cluster) {
	t.Helper()
	oc := c.Prog.Object("Counter")
	fc := oc.PerArch[arch.VAX].Funcs[0]
	stops := fc.Stops.All()
	stops[0].TempDepth++
	stops[0].TempKinds = append(stops[0].TempKinds, ir.VKInt)
	nt, err := busstop.NewTable(stops)
	if err != nil {
		t.Fatalf("rebuilding tampered table: %v", err)
	}
	fc.Stops = nt
}

// TestVetOnLoadRefusesTamperedTable: with VetOnLoad on, a node must refuse
// to load a code object whose bus-stop table was tampered with, both via
// the direct load path and as a fault in a full run.
func TestVetOnLoadRefusesTamperedTable(t *testing.T) {
	prog := compileSrc(t, vetLoadSrc)
	cfg := DefaultConfig()
	cfg.VetOnLoad = true
	c, err := NewCluster(prog, []netsim.MachineModel{mVAX}, cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	tamperCounter(t, c)

	// Direct load path: the error names vet and the object.
	oc := c.Prog.Object("Counter")
	if _, err := c.Nodes[0].loadCode(oc.CodeOID); err == nil {
		t.Fatal("tampered Counter loaded without complaint")
	} else if !strings.Contains(err.Error(), "vet") || !strings.Contains(err.Error(), "Counter") {
		t.Errorf("load error does not identify the vet refusal: %v", err)
	}

	// Full run: the refusal surfaces as a fault, not a hang or corruption.
	c.Start(nil)
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, f := range c.Faults {
		if strings.Contains(f.Msg, "vet") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no vet fault recorded; faults: %+v, output: %q", c.Faults, c.OutputText())
	}
}

// TestVetOnLoadAcceptsCleanProgram: the gate must not reject honest code,
// on any architecture.
func TestVetOnLoadAcceptsCleanProgram(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VetOnLoad = true
	c := runSrc(t, vetLoadSrc, []netsim.MachineModel{mVAX, mSPARC, mSun3}, cfg)
	if got := c.OutputText(); got != "n=1" {
		t.Errorf("output %q, want %q", got, "n=1")
	}
}

// TestVetOnLoadOffByDefault: without the option the tampered program loads
// (and this test documents why the gate exists: the kernel itself has no
// cheap way to notice).
func TestVetOnLoadOffByDefault(t *testing.T) {
	prog := compileSrc(t, vetLoadSrc)
	c, err := NewCluster(prog, []netsim.MachineModel{mVAX}, DefaultConfig())
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	tamperCounter(t, c)
	oc := c.Prog.Object("Counter")
	if _, err := c.Nodes[0].loadCode(oc.CodeOID); err != nil {
		t.Errorf("load unexpectedly failed with VetOnLoad off: %v", err)
	}
}
