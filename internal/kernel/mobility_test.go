package kernel

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// hetero4 is the paper's Figure 1 network: VAX, Sun-3, HP9000/300, SPARC.
func hetero4() []netsim.MachineModel {
	return []netsim.MachineModel{mVAX, mSun3, mHP1, mSPARC}
}

// archPairs enumerates representative heterogeneous and homogeneous pairs.
func archPairs() [][]netsim.MachineModel {
	return [][]netsim.MachineModel{
		{mSPARC, mSPARC},
		{mSPARC, mVAX},
		{mVAX, mSPARC},
		{mSPARC, mSun3},
		{mSun3, mHP1},
		{mVAX, mSun3},
		{mVAX, mVAX},
	}
}

func pairName(ms []netsim.MachineModel) string {
	var parts []string
	for _, m := range ms {
		parts = append(parts, m.Name)
	}
	return strings.Join(parts, "<->")
}

// remoteSrc: Main on node 0 invokes an object moved to node 1.
const remoteSrc = `
object Adder
  var base: Int <- 0
  operation add(x: Int, y: Real, s: String, b: Bool) -> (r: String)
    base <- base + x
    var v: Real <- y * 2
    if b then
      r <- s + ":" + str(base) + ":" + str(v)
    else
      r <- "no"
    end
  end
end Adder
object Main
  process
    var a: Adder <- new Adder
    move a to node(1)
    print(locate(a) == node(1))
    print(a.add(5, 1.25, "hi", true))
    print(a.add(2, 0.5, "ho", true))
  end process
end Main
`

func TestRemoteInvocationAcrossArchPairs(t *testing.T) {
	want := []string{"true", "hi:5:2.5", "ho:7:1"}
	for _, ms := range archPairs() {
		t.Run(pairName(ms), func(t *testing.T) {
			c := runSrc(t, remoteSrc, ms, DefaultConfig())
			got := c.PrintedLines()
			if len(got) != len(want) {
				t.Fatalf("lines: %v", got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("line %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

// threadMoveSrc: the thread moves itself (inside Carrier) between nodes
// while holding live locals of every kind — the heart of the paper.
const threadMoveSrc = `
object Carrier
  var tag: String <- "c"
  operation tour() -> (r: String)
    var i: Int <- 17
    var x: Real <- 2.5
    var s: String <- "abc"
    var b: Bool <- true
    var here: Node <- thisnode()
    var a: Array[Int] <- new Array[Int](3)
    a[0] <- 11
    move self to node(1)
    // All locals must survive the format conversion.
    var mid: Node <- thisnode()
    i <- i + 1
    x <- x * 2
    s <- s + "d"
    a[1] <- a[0] + 1
    move self to node(2)
    var fin: Node <- thisnode()
    r <- str(i) + " " + str(x) + " " + s + " " + str(b) + " " +
         str(here) + str(mid) + str(fin) + " " + str(a[0] + a[1])
  end
end Carrier
object Main
  process
    var c: Carrier <- new Carrier
    print(c.tour())
    print(locate(c))
  end process
end Main
`

func TestThreadMigrationAcrossHeterogeneousNodes(t *testing.T) {
	configs := []struct {
		name   string
		models []netsim.MachineModel
	}{
		{"vax-sun3-sparc", []netsim.MachineModel{mVAX, mSun3, mSPARC}},
		{"sparc-vax-m68k", []netsim.MachineModel{mSPARC, mVAX, mHP1}},
		{"m68k-sparc-vax", []netsim.MachineModel{mSun3, mSPARC, mVAX}},
		{"homog-sparc", []netsim.MachineModel{mSPARC, mSPARC, mSPARC}},
	}
	want := []string{"18 5 abcd true node0node1node2 23", "node2"}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			c := runSrc(t, threadMoveSrc, tc.models, DefaultConfig())
			got := c.PrintedLines()
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Errorf("output = %v, want %v", got, want)
			}
		})
	}
}

func TestMigrationEquivalentToSingleNode(t *testing.T) {
	// The same program, run single-node without moves vs. three-node with
	// moves, must print the same data values.
	prog := func(moves bool) string {
		mv := ""
		if moves {
			mv = "move self to node(1)"
		}
		mv2 := ""
		if moves {
			mv2 = "move self to node(2)"
		}
		return fmt.Sprintf(`
object Work
  var acc: Int <- 0
  operation run(n: Int) -> (r: Int)
    var i: Int <- 0
    while i < n do
      acc <- acc + i * i
      i <- i + 1
      if i == n / 2 then
        %s
      end
    end
    %s
    r <- acc
  end
end Work
object Main
  process
    var w: Work <- new Work
    print(w.run(20))
  end process
end Main
`, mv, mv2)
	}
	base := runSrc(t, prog(false), []netsim.MachineModel{mSPARC}, DefaultConfig())
	moved := runSrc(t, prog(true), []netsim.MachineModel{mSPARC, mVAX, mSun3}, DefaultConfig())
	if base.OutputText() != moved.OutputText() {
		t.Errorf("moved run differs: %q vs %q", moved.OutputText(), base.OutputText())
	}
}

func TestExample1FromPaper(t *testing.T) {
	// Paper Example 1: X on node A invokes an operation on Y (node B); the
	// operation moves X to node C; the invocation returns on node C.
	c := runSrc(t, `
object Mover
  operation relocate(x: Any, dest: Node)
    move x to dest
  end
end Mover
object X
  var y: Mover
  var report: String <- ""
  operation go() -> (r: String)
    var before: Node <- thisnode()
    y.relocate(self, node(2))
    var after: Node <- thisnode()
    r <- str(before) + "->" + str(after)
  end
end X
object Main
  process
    var y: Mover <- new Mover
    move y to node(1)
    var x: X <- new X(y)
    print(x.go())
    print(locate(x), " ", locate(y))
  end process
end Main
`, []netsim.MachineModel{mVAX, mSun3, mSPARC}, DefaultConfig())
	got := c.PrintedLines()
	want := []string{"node0->node2", "node2 node1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestMoveWithRemoteCaller(t *testing.T) {
	// A thread blocked in a remote call migrates; the return must be
	// forwarded to its new home.
	c := runSrc(t, `
object Slow
  operation compute(x: Int) -> (r: Int)
    var i: Int <- 0
    while i < 1000 do
      i <- i + 1
    end
    r <- x * 2
  end
end Slow
object Caller
  var s: Slow
  operation run() -> (r: Int)
    r <- s.compute(21)
  end
end Caller
object Mover
  var victim: Caller
  process
    // Give the caller time to get into the remote call, then move it.
    var i: Int <- 0
    while i < 50 do
      yield()
      i <- i + 1
    end
    move victim to node(2)
  end process
end Mover
object Main
  process
    var s: Slow <- new Slow
    move s to node(1)
    var victim: Caller <- new Caller(s)
    var m: Mover <- new Mover(victim)
    print(victim.run())
    print(locate(victim))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX, mSun3}, DefaultConfig())
	got := c.PrintedLines()
	if len(got) != 2 || got[0] != "42" {
		t.Fatalf("output = %v", got)
	}
	// The move may land before or after the return depending on timing;
	// both node0 (not yet moved by the time of the locate) and node2 are
	// plausible only if the race exists — with our deterministic sim the
	// answer is fixed; assert it is node2 (the move fires during compute).
	if got[1] != "node2" {
		t.Logf("note: victim at %s (timing-dependent but deterministic)", got[1])
	}
}

func TestMovedObjectStateIntact(t *testing.T) {
	// Data of every kind survives a round trip VAX -> SPARC -> Sun3 -> VAX.
	c := runSrc(t, `
object Box
  var i: Int <- 0-123456
  var x: Real <- 3.25
  var s: String <- "payload"
  var b: Bool <- true
  var other: Box
  operation check() -> (r: String)
    r <- str(i) + " " + str(x) + " " + s + " " + str(b) + " " + str(other == nil)
  end
  operation setOther(o: Box)
    other <- o
  end
end Box
object Main
  process
    var b1: Box <- new Box
    var b2: Box <- new Box
    b1.setOther(b2)
    print(b1.check())
    move b1 to node(1)
    move b1 to node(2)
    move b1 to node(0)
    print(b1.check())
    print(locate(b1), " ", locate(b2))
  end process
end Main
`, []netsim.MachineModel{mVAX, mSPARC, mSun3}, DefaultConfig())
	got := c.PrintedLines()
	if len(got) != 3 {
		t.Fatalf("output = %v", got)
	}
	want := "-123456 3.25 payload true false"
	if got[0] != want || got[1] != want {
		t.Errorf("box state corrupted: %v", got)
	}
	if got[2] != "node0 node0" {
		t.Errorf("locations = %q", got[2])
	}
}

func TestFixPreventsMove(t *testing.T) {
	c := runSrc(t, `
object Thing
  var v: Int <- 9
  operation get() -> (r: Int)
    r <- v
  end
end Thing
object Main
  process
    var o: Thing <- new Thing
    fix o at node(1)
    print(locate(o))
    move o to node(0)
    print(locate(o), " ", o.get())
    unfix o
    move o to node(0)
    print(locate(o), " ", o.get())
    refix o at node(1)
    print(locate(o))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	got := c.PrintedLines()
	want := []string{"node1", "node1 9", "node0 9", "node1"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestMonitorStateMigrates(t *testing.T) {
	// A thread waiting on a condition migrates with its object; the
	// signaller (arriving later via remote invocation) must wake it at the
	// new home.
	c := runSrc(t, `
object Gate
  monitor
    var open: Bool <- false
    var opened: Condition
    operation pass() -> (r: Node)
      while !open do
        wait opened
      end
      r <- thisnode()
    end
    operation unlock()
      open <- true
      signal opened
    end
  end monitor
end Gate
object Waiter
  var g: Gate
  process
    print("passed at ", g.pass())
  end process
end Waiter
object Main
  var g: Gate
  initially
    g <- new Gate
  end initially
  process
    var w: Waiter <- new Waiter(g)
    // Let the waiter block, then move the gate (with the waiting thread).
    var i: Int <- 0
    while i < 50 do
      yield()
      i <- i + 1
    end
    move g to node(1)
    g.unlock()
  end process
end Main
`, []netsim.MachineModel{mSPARC, mSun3}, DefaultConfig())
	if got := c.OutputText(); got != "passed at node1" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayMigrationAndRemoteAccess(t *testing.T) {
	c := runSrc(t, `
object Main
  process
    var a: Array[Int] <- new Array[Int](4)
    a[0] <- 5
    a[1] <- 6
    move a to node(1)
    print(locate(a))
    // Remote element access.
    a[2] <- a[0] + a[1]
    print(a[2], " ", a.size())
    move a to node(0)
    print(a[2], " ", locate(a))
  end process
end Main
`, []netsim.MachineModel{mVAX, mSPARC}, DefaultConfig())
	got := c.PrintedLines()
	want := []string{"node1", "11 4", "11 node0"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestKilroyTour(t *testing.T) {
	// The classic Emerald demo: one thread visits every node.
	c := runSrc(t, `
object Kilroy
  operation tour() -> (r: String)
    r <- ""
    var i: Int <- 0
    while i < nodes() do
      move self to node(i)
      r <- r + str(thisnode()) + " "
      i <- i + 1
    end
    move self to node(0)
  end
end Kilroy
object Main
  process
    var k: Kilroy <- new Kilroy
    print(k.tour())
  end process
end Main
`, hetero4(), DefaultConfig())
	if got := c.OutputText(); got != "node0 node1 node2 node3 " {
		t.Errorf("tour = %q", got)
	}
}

func TestConversionStatsDifferByMode(t *testing.T) {
	run := func(mode ConvMode, models []netsim.MachineModel) *Cluster {
		cfg := DefaultConfig()
		cfg.Mode = mode
		return runSrc(t, threadMoveSrc, models, cfg)
	}
	homog := []netsim.MachineModel{mSPARC, mSPARC, mSPARC}
	enh := run(ModeEnhanced, homog)
	orig := run(ModeOriginal, homog)
	fast := run(ModeEnhancedFastPath, homog)
	if enh.OutputText() != orig.OutputText() || enh.OutputText() != fast.OutputText() {
		t.Fatalf("modes disagree on output")
	}
	if orig.ConvStats().Calls != 0 {
		t.Errorf("original system made %d conversion calls", orig.ConvStats().Calls)
	}
	if enh.ConvStats().Calls == 0 {
		t.Error("enhanced system made no conversion calls")
	}
	if fast.ConvStats().Calls != 0 {
		t.Errorf("fast path made %d conversion calls on a homogeneous pair", fast.ConvStats().Calls)
	}
	// Enhanced migration costs more simulated time than original (§3.6).
	if enh.Sim.Now() <= orig.Sim.Now() {
		t.Errorf("enhanced (%dµs) not slower than original (%dµs)", enh.Sim.Now(), orig.Sim.Now())
	}
}

func TestOriginalModeRejectsHeterogeneous(t *testing.T) {
	p := compileSrc(t, "object Main\n process\n end process\nend Main")
	cfg := DefaultConfig()
	cfg.Mode = ModeOriginal
	if _, err := NewCluster(p, []netsim.MachineModel{mVAX, mSPARC}, cfg); err == nil {
		t.Fatal("original mode must reject heterogeneous clusters")
	}
}

func TestDeepCallStackMigration(t *testing.T) {
	// A recursive operation builds a deep stack inside one object, then the
	// object (with the whole run of activations) migrates.
	c := runSrc(t, `
object Deep
  operation rec(n: Int) -> (r: Int)
    if n == 0 then
      move self to node(1)
      r <- 1
    else
      r <- rec(n - 1) + n
    end
  end
end Deep
object Main
  process
    var d: Deep <- new Deep
    print(d.rec(25))
    print(locate(d))
  end process
end Main
`, []netsim.MachineModel{mVAX, mSPARC}, DefaultConfig())
	got := c.PrintedLines()
	want0 := fmt.Sprintf("%d", 25*26/2+1)
	if len(got) != 2 || got[0] != want0 || got[1] != "node1" {
		t.Errorf("output = %v, want [%s node1]", got, want0)
	}
}

func TestFragmentSplitMidStack(t *testing.T) {
	// Call chain X.a -> B.b -> X.c, then X moves: the X activations (a and
	// c) migrate; B.b stays, producing a three-piece distributed stack with
	// returns crossing the network twice.
	c := runSrc(t, `
object B
  var x: X
  operation b(n: Int) -> (r: Int)
    r <- x.c(n + 1) * 10
  end
end B
object X
  var helper: B
  operation a(n: Int) -> (r: Int)
    helper <- new B(self)
    r <- helper.b(n) + 1
  end
  operation c(n: Int) -> (r: Int)
    move self to node(1)
    r <- n + 100
  end
end X
object Main
  process
    var x: X <- new X(nil)
    print(x.a(5))
    print(locate(x))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	got := c.PrintedLines()
	// c(6) = 106 -> b: 1060 -> a: 1061
	if len(got) != 2 || got[0] != "1061" || got[1] != "node1" {
		t.Errorf("output = %v, want [1061 node1]", got)
	}
}
