// Batched group-decree tests: a MoveGroup cohort's location records must
// commit in one multi-object quorum round (fewer decree messages than one
// round per member), survive a crash/restart with the group round in
// flight — byte-identical reruns included — and decrees stalled by a
// network partition must resolve chosen once the partition heals.

package kernel

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// decreeMsgCount sums the per-kind message counters for the given wire
// kinds (as MsgKind.String() spells them).
func decreeMsgCount(c *Cluster, kinds ...string) uint64 {
	want := map[string]bool{}
	for _, k := range kinds {
		want["msg="+k] = true
	}
	var total uint64
	for _, cp := range c.Rec.Metrics().CountersPrefix("msgs") {
		if want[cp.Labels] {
			total += cp.Value
		}
	}
	return total
}

var singleDecreeKinds = []string{"dirprepare", "dirpromise", "diraccept", "diraccepted", "dirlearn"}
var groupDecreeKinds = []string{"dirgprepare", "dirgpromise", "dirgaccept", "dirgaccepted", "dirglearn"}

// TestDirGroupDecreeBatches: the {Service, Stats} cohort moves as one
// MoveGroup, so with the directory armed its two location records must
// commit in one group decree — fewer decree messages on the wire than the
// one-round-per-member control arm, with identical program output and the
// same final records.
func TestDirGroupDecreeBatches(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mSPARC}
	cfg := func(noGroup bool) Config {
		c := autoConfig()
		c.DirReplicas = 2
		c.DirNoGroupDecrees = noGroup
		return c
	}

	grouped := runSrc(t, chattySrc, models, cfg(false))
	if got := grouped.OutputText(); got != chattyWant {
		t.Fatalf("grouped output = %q, want %q", got, chattyWant)
	}
	if countKind(grouped, obs.EvMoveGroupOut) == 0 {
		t.Fatal("no batched group transfer; the cohort never moved together")
	}
	if g := dirCounter(grouped, "dir_group_decrees"); g == 0 {
		t.Fatal("no group decrees despite a cohort move with the directory armed")
	}
	if s := dirCounter(grouped, "dir_group_slots"); s < 2 {
		t.Errorf("dir_group_slots = %d, want >= 2 (the two-member cohort)", s)
	}
	dirFinalRecordsMatchResidency(t, grouped)

	control := runSrc(t, chattySrc, models, cfg(true))
	if got := control.OutputText(); got != chattyWant {
		t.Fatalf("control output = %q, want %q", got, chattyWant)
	}
	if g := dirCounter(control, "dir_group_decrees"); g != 0 {
		t.Errorf("control arm ran %d group decrees with batching disabled", g)
	}
	dirFinalRecordsMatchResidency(t, control)

	// Both arms decree every cohort member; the grouped arm does it in
	// fewer protocol messages.
	if d1, d2 := dirCounter(grouped, "dir_decrees"), dirCounter(control, "dir_decrees"); d1 != d2 {
		t.Errorf("decree counts diverge: grouped %d, control %d", d1, d2)
	}
	gm := decreeMsgCount(grouped, singleDecreeKinds...) + decreeMsgCount(grouped, groupDecreeKinds...)
	cm := decreeMsgCount(control, singleDecreeKinds...)
	if gm >= cm {
		t.Errorf("grouped arm sent %d decree messages, control %d; batching saved nothing", gm, cm)
	}
}

// TestDirGroupDecreeChaosReplay: crash the proposer one microsecond after
// its group prepare leaves, and keep it down across the round window so
// the group timer fires while crashed and restartDir must re-arm it. The
// decree must still resolve chosen (the acceptor's promise rides the
// reliable link through the outage), and the same seed must reproduce a
// byte-identical event log — the stalled group slots replay in order.
func TestDirGroupDecreeChaosReplay(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mSPARC}
	// The round window must exceed the loaded link's round trip (the hot
	// caller saturates the medium, ~40ms one way), or ballot churn degrades
	// the decree before any promise lands.
	basePlan := func() *chaos.Plan { return &chaos.Plan{Seed: 11, CommitTimeout: 150_000} }
	cfg := func(p *chaos.Plan) Config {
		c := autoConfig()
		c.DirReplicas = 2
		c.Chaos = p
		return c
	}

	// Scout run (same seed, no crash — identical up to the crash instant):
	// find when the group prepare goes out.
	scout := runSrc(t, chattySrc, models, cfg(basePlan()))
	if got := scout.OutputText(); got != chattyWant {
		t.Fatalf("scout output = %q, want %q", got, chattyWant)
	}
	var prepAt int64
	for _, e := range scout.Rec.Events() {
		if e.Kind == obs.EvWireSend && e.Str == "dirgprepare" {
			prepAt = e.At
			break
		}
	}
	if prepAt == 0 {
		t.Fatal("scout run never started a group decree")
	}

	plan := func() *chaos.Plan {
		p := basePlan()
		// Down from just after the prepare until past the 150ms round
		// window (the timer fires crashed), back inside the 400ms
		// suspicion timeout.
		p.Crashes = []chaos.Crash{{Node: 0, At: netsim.Micros(prepAt) + 1, RestartAt: netsim.Micros(prepAt) + 250_000}}
		return p
	}

	c1 := runSrc(t, chattySrc, models, cfg(plan()))
	if got := c1.OutputText(); got != chattyWant {
		t.Fatalf("chaos output = %q, want %q", got, chattyWant)
	}
	assertExactlyOnceInstalls(t, c1)
	if countKind(c1, obs.EvNodeCrash) == 0 || countKind(c1, obs.EvNodeRestart) == 0 {
		t.Fatal("crash/restart never happened; the replay path was not exercised")
	}
	if dirCounter(c1, "dir_group_decrees") == 0 {
		t.Error("no group decree resolved across the crash")
	}
	if d := dirCounter(c1, "dir_degraded"); d != 0 {
		t.Errorf("dir_degraded = %d; the replayed group decree must resolve chosen", d)
	}
	if countKind(c1, obs.EvRetransmit) == 0 {
		t.Error("no retransmissions; the outage never bit the decree traffic")
	}
	dirFinalRecordsMatchResidency(t, c1)

	c2 := runSrc(t, chattySrc, models, cfg(plan()))
	log1, log2 := obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)
	if !bytes.Equal(log1, log2) {
		t.Errorf("same seed produced different event logs (%d vs %d bytes)", len(log1), len(log2))
	}
}

// TestDirPartitionHealDecreeLiveness: a partition splits the cluster in
// half mid-tour, short of the suspicion timeout. Decrees whose quorum
// straddles the cut stall against the partition; once it heals, link
// retransmission must deliver every round and every decree must resolve
// chosen — zero degraded records — with fault-free output and
// byte-identical reruns.
func TestDirPartitionHealDecreeLiveness(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}

	base := runSrc(t, src, models, DefaultConfig())
	elapsed := base.Sim.Now()

	plan := func() *chaos.Plan {
		from := elapsed / 3
		until := from + 150_000 // heals well inside the 400ms suspicion window
		return &chaos.Plan{
			Seed: 5,
			Partitions: []chaos.Partition{
				{A: 0, B: 2, From: from, Until: until},
				{A: 0, B: 3, From: from, Until: until},
				{A: 1, B: 2, From: from, Until: until},
				{A: 1, B: 3, From: from, Until: until},
			},
		}
	}

	c1 := runSrc(t, src, models, dirConfig(3, plan()))
	if got := c1.OutputText(); got != base.OutputText() {
		t.Fatalf("partition run output differs:\nfault-free:\n%s\npartitioned:\n%s",
			base.OutputText(), got)
	}
	if countKind(c1, obs.EvRetransmit) == 0 {
		t.Fatal("no retransmissions; the partition never bit")
	}
	if d := dirCounter(c1, "dir_degraded"); d != 0 {
		t.Errorf("dir_degraded = %d; a healed partition must not degrade decrees", d)
	}
	if dirCounter(c1, "dir_decrees") == 0 {
		t.Error("no decrees chosen across the partitioned tour")
	}
	assertExactlyOnceInstalls(t, c1)
	dirFinalRecordsMatchResidency(t, c1)

	c2 := runSrc(t, src, models, dirConfig(3, plan()))
	if !bytes.Equal(obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)) {
		t.Error("same seed produced different event logs under partition chaos")
	}
}
