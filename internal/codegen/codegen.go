// Package codegen translates machine-independent IR into native code for
// each simulated architecture, together with the metadata the runtime needs
// for heterogeneous mobility: activation-record templates, object
// templates, and bus-stop tables (§3.3).
//
// One Compile call produces code for every architecture from the same IR,
// assigning code OIDs deterministically — the "program database" the paper
// proposes to replace its manual OID synchronization (§3.4).
//
// Per-architecture differences produced here, all of which the kernel's
// thread-state conversion must bridge:
//
//   - variable homes: the first len(Spec.HomeRegs) frame variables live in
//     callee-saved registers, the rest in activation-record slots — so a
//     variable that is a register on the SPARC may be memory on the VAX;
//   - activation-record field order differs per ISA;
//   - CISC back ends use memory-to-memory and stack-mode instructions,
//     while the RISC back end loads operands into scratch registers
//     ("RISCification": one abstract operation, several instructions);
//   - monitor exit is an atomic UNLINKQ on the VAX (with an exit-only bus
//     stop) and a kernel call elsewhere;
//   - instruction encodings, and therefore all PC values, differ.
package codegen

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/oid"
	"repro/internal/template"
)

// FuncCode is the native code of one function on one architecture.
type FuncCode struct {
	Name     string
	OpName   string
	Code     []byte
	Template *template.Activation
	Stops    *busstop.Table
	// Strings is the literal/name pool: trap operands and ModeLit operands
	// index it. The kernel interns each entry as a string object at load.
	Strings []string
	// NumInstrs is the instruction count (differs per ISA for the same IR).
	NumInstrs int
	// Decoded is the predecoded instruction cache the emulator dispatches
	// over (arch.RunPredecoded). Built here at compile time — the encoded
	// stream is immutable from this point on — and shared by every node
	// that loads this function. Nil for hand-built FuncCode values; the
	// kernel predecodes those at load (or falls back to byte-at-a-time
	// dispatch if the stream does not decode).
	Decoded *arch.Predecoded
	// Runs is the superinstruction fusion plan over Decoded: maximal
	// straight-line stretches bounded by branch targets, bus stops and
	// trapping instructions. Metadata only (PC + length pairs) — the
	// kernel compiles it into closures once per loaded function
	// (arch.Fuse). Nil for hand-built FuncCode values; the kernel plans
	// those at load.
	Runs *arch.FusePlan
}

// ArchCode is one object's code for one architecture.
type ArchCode struct {
	Arch  arch.ID
	Funcs []*FuncCode
}

// ObjectCode bundles everything the loader needs for one object
// declaration: the machine-independent template and IR plus per-ISA code.
type ObjectCode struct {
	Name       string
	Index      int
	CodeOID    oid.OID
	Template   *template.Object
	IR         *ir.Object
	HasProcess bool
	PerArch    [arch.NumArch]*ArchCode
}

// FuncIndex returns the function index of the named operation, or -1.
func (o *ObjectCode) FuncIndex(name string) int { return o.IR.FuncIndex(name) }

// Program is a fully compiled program: one entry per object declaration,
// each with code for every architecture.
type Program struct {
	Objects []*ObjectCode
	// Opts records the options the program was compiled with (with
	// Opts.Specs normalized to the actual target list). Static analyses
	// (internal/vet) consult them so that, e.g., an ablation build without
	// loop polls or with custom register files is checked against the
	// metadata it was actually generated for.
	Opts Options
}

// Specs returns the architecture specs the program was compiled for.
func (p *Program) Specs() []*arch.Spec {
	if p.Opts.Specs != nil {
		return p.Opts.Specs
	}
	return arch.AllSpecs()
}

// Object returns the compiled object named name, or nil.
func (p *Program) Object(name string) *ObjectCode {
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// Options tune code generation for ablation studies.
type Options struct {
	// OmitLoopPolls drops the bottom-of-loop poll instructions (and their
	// bus stops). The resulting code cannot be preempted or migrated at
	// loop bottoms — the ablation quantifies what the paper's "most of the
	// user code polls are free" claim costs in intra-node time.
	OmitLoopPolls bool
	// Specs overrides the target architectures (default arch.AllSpecs()).
	// Custom specs may vary the number of register variable homes.
	Specs []*arch.Spec
}

// Compile translates an IR program for every architecture.
func Compile(p *ir.Program) (*Program, error) {
	return CompileWithOptions(p, Options{})
}

// CompileWithOptions translates an IR program with explicit options.
func CompileWithOptions(p *ir.Program, opts Options) (*Program, error) {
	specs := opts.Specs
	if specs == nil {
		specs = arch.AllSpecs()
	}
	opts.Specs = specs
	out := &Program{Opts: opts}
	for idx, obj := range p.Objects {
		oc := &ObjectCode{
			Name:       obj.Name,
			Index:      idx,
			CodeOID:    oid.ForCode(idx),
			IR:         obj,
			HasProcess: obj.HasProcess,
			// Slots/SlotNames are copied: the template is an independent
			// artifact the runtime (and the vet passes) check against the
			// IR, so the two must not share backing storage.
			Template: &template.Object{
				Name:          obj.Name,
				Immutable:     obj.Immutable,
				Slots:         append([]ir.VK(nil), obj.VarKinds...),
				SlotNames:     append([]string(nil), obj.VarNames...),
				MonitoredFrom: obj.MonitoredFrom,
				NumConds:      obj.NumConds,
			},
		}
		for _, spec := range specs {
			ac := &ArchCode{Arch: spec.ID}
			for _, f := range obj.Funcs {
				fc, err := compileFunc(spec, obj, f, opts)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", f.Name, spec.Name, err)
				}
				ac.Funcs = append(ac.Funcs, fc)
			}
			oc.PerArch[spec.ID] = ac
		}
		out.Objects = append(out.Objects, oc)
	}
	// Bus-stop isomorphism is structural (same lowering order); verify it
	// anyway so a back-end bug cannot silently break mobility.
	for _, oc := range out.Objects {
		var base *ArchCode
		for _, spec := range specs {
			other := oc.PerArch[spec.ID]
			if base == nil {
				base = other
				continue
			}
			for i := range base.Funcs {
				if err := busstop.Isomorphic(base.Funcs[i].Stops, other.Funcs[i].Stops); err != nil {
					return nil, fmt.Errorf("%s: %v vs %v: %w", base.Funcs[i].Name, base.Arch, spec.ID, err)
				}
			}
		}
	}
	return out, nil
}

// layout builds the per-ISA activation template for f.
func layout(spec *arch.Spec, f *ir.Func, maxStack int) *template.Activation {
	a := &template.Activation{
		FuncName:   f.Name,
		NumParams:  f.NumParams,
		NumResults: f.NumResults,
		NumVars:    f.NumVars,
		Monitored:  f.Monitored,
		TempSlots:  maxStack,
	}
	nHomes := len(spec.HomeRegs)
	nRegVars := f.NumVars
	if nRegVars > nHomes {
		nRegVars = nHomes
	}
	nMemVars := f.NumVars - nRegVars
	a.SavedRegs = append([]byte(nil), spec.HomeRegs[:nRegVars]...)

	// Word-granular field allocation; the order differs per ISA so that
	// activation records are genuinely laid out differently.
	off := int32(0)
	word := func() int32 {
		o := off
		off += template.WordSize
		return o
	}
	words := func(n int) int32 {
		o := off
		off += int32(n) * template.WordSize
		return o
	}
	memVars := func() int32 { return words(nMemVars) }
	switch spec.ID {
	case arch.VAX:
		a.SavedFPOff = word()
		a.RetDescOff = word()
		a.RetPCOff = word()
		a.SelfOff = word()
		a.TempBaseOff = word()
		a.SavedRegsOff = words(nRegVars)
		mv := memVars()
		a.TempOff = words(maxStack)
		fillVars(a, f, spec, nRegVars, mv)
	case arch.M68K:
		a.RetPCOff = word()
		a.RetDescOff = word()
		a.SavedFPOff = word()
		a.SelfOff = word()
		a.TempBaseOff = word()
		mv := memVars()
		a.SavedRegsOff = words(nRegVars)
		a.TempOff = words(maxStack)
		fillVars(a, f, spec, nRegVars, mv)
	default: // SPARC
		a.SavedRegsOff = words(nRegVars)
		a.SavedFPOff = word()
		a.RetDescOff = word()
		a.RetPCOff = word()
		a.SelfOff = word()
		a.TempBaseOff = word()
		a.TempOff = words(maxStack)
		mv := memVars()
		fillVars(a, f, spec, nRegVars, mv)
	}
	a.Size = off
	return a
}

func fillVars(a *template.Activation, f *ir.Func, spec *arch.Spec, nRegVars int, memBase int32) {
	for v := 0; v < f.NumVars; v++ {
		h := template.Home{Name: f.VarNames[v], Kind: f.VarKinds[v]}
		if v < nRegVars {
			h.InReg = true
			h.Reg = spec.HomeRegs[v]
		} else {
			h.Off = memBase + int32(v-nRegVars)*template.WordSize
		}
		a.Vars = append(a.Vars, h)
	}
}

// trapFor maps value-returning and effect-only IR syscalls to trap kinds.
var sysTraps = map[ir.Op]struct {
	kind   arch.TrapKind
	pushes bool
	rk     ir.VK
}{
	ir.SysPrint:    {arch.TrapPrint, false, ir.VKInt},
	ir.SysNodes:    {arch.TrapNodes, true, ir.VKInt},
	ir.SysThisNode: {arch.TrapThisNode, true, ir.VKInt},
	ir.SysNodeAt:   {arch.TrapNodeAt, true, ir.VKInt},
	ir.SysTimeMS:   {arch.TrapTimeMS, true, ir.VKInt},
	ir.SysYield:    {arch.TrapYield, false, ir.VKInt},
	ir.SysStrOf:    {arch.TrapStrOf, true, ir.VKPtr},
	ir.SysConcat:   {arch.TrapConcat, true, ir.VKPtr},
	ir.SysMove:     {arch.TrapMove, false, ir.VKInt},
	ir.SysFix:      {arch.TrapFix, false, ir.VKInt},
	ir.SysRefix:    {arch.TrapRefix, false, ir.VKInt},
	ir.SysUnfix:    {arch.TrapUnfix, false, ir.VKInt},
	ir.SysLocate:   {arch.TrapLocate, true, ir.VKInt},
	ir.SysWait:     {arch.TrapWait, false, ir.VKInt},
	ir.SysSignal:   {arch.TrapSignal, false, ir.VKInt},
}

type lowerer struct {
	spec  *arch.Spec
	opts  Options
	f     *ir.Func
	tmpl  *template.Activation
	fi    *ir.FuncInfo
	code  []byte
	stops []busstop.Info
	// liveMask[pc] is the frame-variable live mask recorded on any bus stop
	// emitted while lowering IR instruction pc: the machine-independent
	// liveOut of the instruction (the stop PC is the resumption point past
	// it) with result slots always included — the kernel reads them at Ret
	// on the caller's behalf. curLive is liveMask of the instruction being
	// lowered.
	liveMask []uint64
	curLive  uint64
	// irOff[i] is the machine offset of IR instruction i; fixups record
	// (branch machine offset, IR target) pairs patched after lowering.
	irOff  []uint32
	fixups []fixup
	n      int // instruction count
}

type fixup struct {
	at       uint32
	irTarget int32
}

func compileFunc(spec *arch.Spec, obj *ir.Object, f *ir.Func, opts Options) (*FuncCode, error) {
	fi, err := ir.Analyze(f, obj.VarKinds)
	if err != nil {
		return nil, err
	}
	lo := &lowerer{
		spec: spec, f: f, fi: fi, opts: opts,
		tmpl:  layout(spec, f, fi.MaxStack),
		irOff: make([]uint32, len(f.Code)+1),
	}
	if err := lo.tmpl.Validate(); err != nil {
		return nil, err
	}
	li := ir.Liveness(f, fi)
	var resMask uint64
	for v := f.NumParams; v < f.NumParams+f.NumResults && v < 64; v++ {
		resMask |= 1 << uint(v)
	}
	lo.liveMask = make([]uint64, len(f.Code))
	for pc := range f.Code {
		lo.liveMask[pc] = li.LiveMask(pc, f.NumVars) | resMask
	}
	for pc, in := range f.Code {
		lo.irOff[pc] = uint32(len(lo.code))
		lo.curLive = lo.liveMask[pc]
		if !fi.Reach[pc] {
			// Keep a decodable placeholder so offsets remain well formed;
			// it can never execute.
			lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: arch.TrapFault,
				TrapA: uint16(arch.FaultStack)})
			continue
		}
		if err := lo.lower(pc, in); err != nil {
			return nil, err
		}
	}
	lo.irOff[len(f.Code)] = uint32(len(lo.code))
	for _, fx := range lo.fixups {
		target := lo.irOff[fx.irTarget]
		if target > 0xffff {
			return nil, fmt.Errorf("%s: branch target %#x exceeds 64KB", f.Name, target)
		}
		if err := arch.PatchTarget(spec, lo.code, fx.at, uint16(target)); err != nil {
			return nil, err
		}
	}
	tbl, err := busstop.NewTable(lo.stops)
	if err != nil {
		return nil, err
	}
	dec, err := arch.Predecode(spec, lo.code)
	if err != nil {
		// The lowerer emits decodable placeholders even for unreachable
		// slots, so a predecode failure here is a back-end bug.
		return nil, fmt.Errorf("%s: predecode %s: %w", spec.Name, f.Name, err)
	}
	return &FuncCode{
		Name:      f.Name,
		OpName:    f.OpName,
		Code:      lo.code,
		Template:  lo.tmpl,
		Stops:     tbl,
		Strings:   f.Strings,
		NumInstrs: lo.n,
		Decoded:   dec,
		Runs:      arch.PlanFusion(dec, tbl.PCs()),
	}, nil
}

func (lo *lowerer) emit(in arch.Instr) uint32 {
	at := uint32(len(lo.code))
	code, err := arch.Encode(lo.spec, lo.code, in)
	if err != nil {
		// Lowering always produces encodable instructions; any failure is a
		// back-end bug.
		panic(fmt.Sprintf("codegen: %s: %v: %v", lo.f.Name, in, err))
	}
	lo.code = code
	lo.n++
	return at
}

// stop registers a bus stop at the current PC (the address after the last
// emitted instruction, i.e. the resumption point).
func (lo *lowerer) stop(kind busstop.Kind, exitOnly, pushes bool, rk ir.VK, depth int, kinds []ir.VK) {
	lo.stops = append(lo.stops, busstop.Info{
		Stop: len(lo.stops), PC: uint32(len(lo.code)), Kind: kind,
		ExitOnly: exitOnly, Pushes: pushes, ResultKind: rk,
		TempDepth: depth, TempKinds: append([]ir.VK(nil), kinds...),
		LiveVars: lo.curLive,
	})
}

// scratch registers for RISC lowering.
func (lo *lowerer) sc(i int) byte { return lo.spec.ScratchRegs[i] }

func (lo *lowerer) risc() bool { return lo.spec.Style == arch.EncFixedRISC }

// mov emits a move, splitting it on RISC when both operands touch memory.
func (lo *lowerer) mov(src, dst arch.Operand) {
	if lo.risc() {
		srcMem := src.Mode != arch.ModeReg
		dstMem := dst.Mode != arch.ModeReg
		if srcMem && dstMem {
			r := arch.Reg(lo.sc(0))
			lo.emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{src, r}})
			lo.emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{r, dst}})
			return
		}
	}
	lo.emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{src, dst}})
}

// varOperand returns the operand addressing frame variable v.
func (lo *lowerer) varOperand(v int32) arch.Operand {
	h := lo.tmpl.Vars[v]
	if h.InReg {
		return arch.Reg(h.Reg)
	}
	return arch.Frame(uint16(h.Off))
}

// alu3 emits a three-operand stack ALU op: pops two, pushes one.
func (lo *lowerer) alu3(op arch.Op, cc byte) {
	if lo.risc() {
		// src2 (top of stack) first, then src1.
		lo.mov(arch.Pop(), arch.Reg(lo.sc(1)))
		lo.mov(arch.Pop(), arch.Reg(lo.sc(0)))
		lo.emit(arch.Instr{Op: op, CC: cc, N: 3, Operands: [3]arch.Operand{
			arch.Reg(lo.sc(0)), arch.Reg(lo.sc(1)), arch.Reg(lo.sc(2))}})
		lo.mov(arch.Reg(lo.sc(2)), arch.Push())
		return
	}
	lo.emit(arch.Instr{Op: op, CC: cc, N: 3, Operands: [3]arch.Operand{
		arch.Pop(), arch.Pop(), arch.Push()}})
}

// alu2 emits a two-operand stack ALU op: pops one, pushes one.
func (lo *lowerer) alu2(op arch.Op) {
	if lo.risc() {
		lo.mov(arch.Pop(), arch.Reg(lo.sc(0)))
		lo.emit(arch.Instr{Op: op, N: 2, Operands: [3]arch.Operand{
			arch.Reg(lo.sc(0)), arch.Reg(lo.sc(1))}})
		lo.mov(arch.Reg(lo.sc(1)), arch.Push())
		return
	}
	lo.emit(arch.Instr{Op: op, N: 2, Operands: [3]arch.Operand{
		arch.Pop(), arch.Push()}})
}

// trap emits a kernel trap and registers its bus stop.
func (lo *lowerer) trap(pc int, kind arch.TrapKind, a, b uint16,
	bsKind busstop.Kind, pushes bool, rk ir.VK) {
	lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: kind, TrapA: a, TrapB: b})
	pop, _ := ir.StackEffect(lo.f.Code[pc])
	st := lo.fi.StackIn[pc]
	depth := len(st) - pop
	lo.stop(bsKind, false, pushes, rk, depth, st[:depth])
}

func (lo *lowerer) lower(pc int, in ir.Instr) error {
	switch in.Op {
	case ir.Nop:
		// No code; the builder never produces Nop.
	case ir.PushInt:
		lo.mov(arch.Imm(uint32(in.A)), arch.Push())
	case ir.PushReal:
		lo.mov(arch.Imm(lo.spec.Float.Enc(float32(in.F))), arch.Push())
	case ir.PushStr:
		lo.mov(arch.Lit(uint16(in.S)), arch.Push())
	case ir.PushNil:
		lo.mov(arch.Imm(0), arch.Push())
	case ir.PushSelf:
		lo.mov(arch.Frame(uint16(lo.tmpl.SelfOff)), arch.Push())
	case ir.LoadVar:
		lo.mov(lo.varOperand(in.A), arch.Push())
	case ir.StoreVar:
		lo.mov(arch.Pop(), lo.varOperand(in.A))
	case ir.LoadMine:
		lo.mov(arch.SelfOp(uint16(4*in.A)), arch.Push())
	case ir.StoreMine:
		lo.mov(arch.Pop(), arch.SelfOp(uint16(4*in.A)))
	case ir.AddI:
		lo.alu3(arch.OpAdd, 0)
	case ir.SubI:
		lo.alu3(arch.OpSub, 0)
	case ir.MulI:
		lo.alu3(arch.OpMul, 0)
	case ir.DivI:
		lo.alu3(arch.OpDiv, 0)
	case ir.ModI:
		lo.alu3(arch.OpMod, 0)
	case ir.NegI:
		lo.alu2(arch.OpNeg)
	case ir.AbsI:
		lo.alu2(arch.OpAbs)
	case ir.AddR:
		lo.alu3(arch.OpFAdd, 0)
	case ir.SubR:
		lo.alu3(arch.OpFSub, 0)
	case ir.MulR:
		lo.alu3(arch.OpFMul, 0)
	case ir.DivR:
		lo.alu3(arch.OpFDiv, 0)
	case ir.NegR:
		lo.alu2(arch.OpFNeg)
	case ir.CvtIR:
		lo.alu2(arch.OpCvt)
	case ir.NotB:
		lo.alu2(arch.OpNot)
	case ir.AndB:
		lo.alu3(arch.OpAnd, 0)
	case ir.OrB:
		lo.alu3(arch.OpOr, 0)
	case ir.CmpI, ir.CmpP:
		lo.alu3(arch.OpScc, byte(in.A))
	case ir.CmpR:
		lo.alu3(arch.OpFScc, byte(in.A))
	case ir.CmpS:
		lo.alu3(arch.OpSScc, byte(in.A))
	case ir.SLen:
		lo.alu2(arch.OpSLen)
	case ir.SIndex:
		lo.alu3(arch.OpSIdx, 0)
	case ir.ALoad, ir.AStore, ir.ALen:
		// Arrays are mutable, mobile objects: element access goes through
		// the kernel, which takes a fast path when the array is resident
		// and a remote access protocol otherwise. (Strings are immutable
		// and copied across the wire, so string access stays inline.)
		var tk arch.TrapKind
		pushes := true
		rk := in.K
		switch in.Op {
		case ir.ALoad:
			tk = arch.TrapALoad
		case ir.AStore:
			tk, pushes = arch.TrapAStore, false
		case ir.ALen:
			tk, rk = arch.TrapALen, ir.VKInt
		}
		lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: tk, TrapB: uint16(in.K)})
		pop, _ := ir.StackEffect(in)
		st := lo.fi.StackIn[pc]
		depth := len(st) - pop
		lo.stop(busstop.KindSyscall, false, pushes, rk, depth, st[:depth])
	case ir.Drop:
		lo.mov(arch.Pop(), arch.Reg(lo.sc(0)))
	case ir.Jump:
		at := lo.emit(arch.Instr{Op: arch.OpJmp})
		lo.fixups = append(lo.fixups, fixup{at, in.A})
	case ir.BrFalse, ir.BrTrue:
		op := arch.OpBrz
		if in.Op == ir.BrTrue {
			op = arch.OpBrnz
		}
		var src arch.Operand
		if lo.risc() {
			lo.mov(arch.Pop(), arch.Reg(lo.sc(0)))
			src = arch.Reg(lo.sc(0))
		} else {
			src = arch.Pop()
		}
		at := lo.emit(arch.Instr{Op: op, N: 1, Operands: [3]arch.Operand{src}})
		lo.fixups = append(lo.fixups, fixup{at, in.A})
	case ir.LoopBottom:
		if lo.opts.OmitLoopPolls {
			break // ablation: no poll, no bus stop at loop bottoms
		}
		lo.emit(arch.Instr{Op: arch.OpPoll})
		st := lo.fi.StackIn[pc]
		lo.stop(busstop.KindLoopBottom, false, false, ir.VKInt, len(st), st)
	case ir.Ret:
		if lo.f.Monitored {
			if lo.spec.HasAtomicUnlink {
				lo.emit(arch.Instr{Op: arch.OpUnlq})
				st := lo.fi.StackIn[pc]
				lo.stop(busstop.KindMonExit, true, false, ir.VKInt, len(st), st)
			} else {
				lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: arch.TrapMonExit})
				st := lo.fi.StackIn[pc]
				lo.stop(busstop.KindMonExit, false, false, ir.VKInt, len(st), st)
			}
		}
		lo.emit(arch.Instr{Op: arch.OpRet})
	case ir.Call:
		lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: arch.TrapCall,
			TrapA: uint16(in.S), TrapB: uint16(in.A)})
		st := lo.fi.StackIn[pc]
		depth := len(st) - int(in.A) - 1
		lo.stop(busstop.KindCall, false, true, in.K, depth, st[:depth])
	case ir.New:
		lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: arch.TrapNew,
			TrapA: uint16(in.S), TrapB: uint16(in.A)})
		st := lo.fi.StackIn[pc]
		depth := len(st) - int(in.A)
		lo.stop(busstop.KindSyscall, false, true, ir.VKPtr, depth, st[:depth])
	case ir.NewArray:
		lo.emit(arch.Instr{Op: arch.OpTrap, TrapKind: arch.TrapNewArray,
			TrapB: uint16(in.K)})
		st := lo.fi.StackIn[pc]
		depth := len(st) - 1
		lo.stop(busstop.KindSyscall, false, true, ir.VKPtr, depth, st[:depth])
	default:
		ts, ok := sysTraps[in.Op]
		if !ok {
			return fmt.Errorf("codegen: cannot lower %v", in.Op)
		}
		a, b := uint16(in.S), uint16(in.A)
		lo.trap(pc, ts.kind, a, b, busstop.KindSyscall, ts.pushes, ts.rk)
	}
	return nil
}
