package interp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/lang/types"
	"repro/internal/netsim"
)

func buildIR(info *types.Info) *ir.Program { return ir.Build(info) }

// runAllLevels executes src at every level of the Figure 2 hierarchy and
// returns (source, bytecode, native) outputs.
func runAllLevels(t *testing.T, src string) (string, string, string) {
	t.Helper()
	info, prog, err := core.CompileInfo(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := NewSource(info)
	s.Run()
	if len(s.RT().Faults) > 0 {
		t.Fatalf("source faults: %v", s.RT().Faults)
	}
	b := NewBytecode(buildIR(info))
	b.Run()
	if len(b.RT().Faults) > 0 {
		t.Fatalf("bytecode faults: %v", b.RT().Faults)
	}
	sys, err := core.NewSystem(prog, []netsim.MachineModel{netsim.SPARCstationSLC},
		core.Options{Mode: kernel.ModeEnhanced})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("native: %v", err)
	}
	return strings.Join(s.RT().Output, "\n"),
		strings.Join(b.RT().Output, "\n"),
		sys.Output()
}

// differential checks all three levels agree.
func differential(t *testing.T, src string) {
	t.Helper()
	so, bo, no := runAllLevels(t, src)
	if so != bo {
		t.Errorf("source vs bytecode:\n--- source:\n%s\n--- bytecode:\n%s", so, bo)
	}
	if bo != no {
		t.Errorf("bytecode vs native:\n--- bytecode:\n%s\n--- native:\n%s", bo, no)
	}
}

func TestDifferentialArithmetic(t *testing.T) {
	differential(t, `
object Main
  process
    var i: Int <- 1
    var acc: Int <- 0
    while i <= 30 do
      acc <- acc + i * i - i / 2 + i % 3
      i <- i + 1
    end
    print(acc)
    var r: Real <- 1.5
    var j: Int <- 0
    while j < 8 do
      r <- r * 1.5 - 0.25
      j <- j + 1
    end
    print(r)
    print(abs(0 - acc), " ", acc % 7, " ", -acc)
  end process
end Main
`)
}

func TestDifferentialObjectsAndStrings(t *testing.T) {
	differential(t, `
object Stack
  var data: Array[Int]
  var top: Int <- 0
  initially
    data <- new Array[Int](16)
  end initially
  operation push(v: Int)
    data[top] <- v
    top <- top + 1
  end
  operation pop() -> (r: Int)
    top <- top - 1
    r <- data[top]
  end
  function depth() -> (r: Int)
    r <- top
  end
end Stack
object Main
  process
    var s: Stack <- new Stack
    var i: Int <- 0
    while i < 10 do
      s.push(i * 7)
      i <- i + 1
    end
    var out: String <- ""
    while s.depth() > 0 do
      out <- out + str(s.pop()) + ","
    end
    print(out)
    print(out.size(), " ", out[0], " ", out < "7", " ", out == out)
  end process
end Main
`)
}

func TestDifferentialRecursionAndControl(t *testing.T) {
	differential(t, `
object Math
  operation fib(n: Int) -> (r: Int)
    if n < 2 then
      r <- n
    else
      r <- fib(n - 1) + fib(n - 2)
    end
  end
  operation collatz(n: Int) -> (steps: Int)
    var x: Int <- n
    loop
      exit when x == 1
      if x % 2 == 0 then
        x <- x / 2
      else
        x <- 3 * x + 1
      end
      steps <- steps + 1
    end
  end
end Math
object Main
  process
    var m: Math <- new Math
    print(m.fib(12), " ", m.collatz(27))
  end process
end Main
`)
}

func TestDifferentialConcurrency(t *testing.T) {
	differential(t, `
object Queue
  monitor
    var buf: Array[Int]
    var head: Int <- 0
    var tail: Int <- 0
    var count: Int <- 0
    var nonempty: Condition
    var nonfull: Condition
    operation put(v: Int)
      while count == 4 do
        wait nonfull
      end
      buf[tail] <- v
      tail <- (tail + 1) % 4
      count <- count + 1
      signal nonempty
    end
    operation take() -> (r: Int)
      while count == 0 do
        wait nonempty
      end
      r <- buf[head]
      head <- (head + 1) % 4
      count <- count - 1
      signal nonfull
    end
  end monitor
  initially
    buf <- new Array[Int](4)
  end initially
end Queue
object Producer
  var q: Queue
  var n: Int
  process
    var i: Int <- 0
    while i < n do
      q.put(i)
      i <- i + 1
    end
  end process
end Producer
object Main
  var q: Queue
  initially
    q <- new Queue
  end initially
  process
    var p: Producer <- new Producer(q, 8)
    var sum: Int <- 0
    var i: Int <- 0
    while i < 8 do
      sum <- sum + q.take()
      i <- i + 1
    end
    print("sum=", sum, " p=", p == nil)
  end process
end Main
`)
}

func TestDifferentialMobilityNoOpsOnOneNode(t *testing.T) {
	differential(t, `
object Roamer
  operation roam() -> (r: String)
    move self to node(0)
    fix self at thisnode()
    unfix self
    r <- str(locate(self)) + "/" + str(nodes())
  end
end Roamer
object Main
  process
    var x: Roamer <- new Roamer
    print(x.roam())
  end process
end Main
`)
}

func TestStepCountsOrdered(t *testing.T) {
	// The specialization hierarchy: the source level does the most abstract
	// work per program step; byte code does less.
	src := `
object Main
  process
    var i: Int <- 0
    var acc: Int <- 0
    while i < 2000 do
      acc <- acc + i
      i <- i + 1
    end
    print(acc)
  end process
end Main
`
	info, _, err := core.CompileInfo(src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSource(info)
	s.Run()
	b := NewBytecode(buildIR(info))
	b.Run()
	if s.RT().Output[0] != b.RT().Output[0] {
		t.Fatalf("outputs differ: %v vs %v", s.RT().Output, b.RT().Output)
	}
	if s.RT().Steps == 0 || b.RT().Steps == 0 {
		t.Fatal("step counters not incremented")
	}
}

func TestInterpFaults(t *testing.T) {
	src := `
object Main
  process
    var z: Int <- 0
    print(7 / z)
  end process
end Main
`
	info, _, err := core.CompileInfo(src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSource(info)
	s.Run()
	if len(s.RT().Faults) != 1 || !strings.Contains(s.RT().Faults[0], "division by zero") {
		t.Errorf("source faults = %v", s.RT().Faults)
	}
	b := NewBytecode(buildIR(info))
	b.Run()
	if len(b.RT().Faults) != 1 || !strings.Contains(b.RT().Faults[0], "division by zero") {
		t.Errorf("bytecode faults = %v", b.RT().Faults)
	}
}
