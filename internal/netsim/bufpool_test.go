package netsim

import (
	"runtime"
	"testing"
)

// TestBufPoolWarmGrabDoesNotAllocate pins the pool's steady state: once a
// size class holds a released buffer, grab must recycle it with zero
// allocations.
func TestBufPoolWarmGrabDoesNotAllocate(t *testing.T) {
	payload := make([]byte, 300)
	var p bufPool
	p.release(p.grab(payload)) // warm the 512 B class
	got := testing.AllocsPerRun(100, func() {
		p.release(p.grab(payload))
	})
	if got != 0 {
		t.Errorf("warm grab/release allocated %.1f times per run, want 0", got)
	}
}

// TestBufPoolClassesDoNotMix: a released buffer must come back only for
// payloads its capacity can hold.
func TestBufPoolClassesDoNotMix(t *testing.T) {
	var p bufPool
	small := p.grab(make([]byte, 10))
	p.release(small)
	big := p.grab(make([]byte, 5000))
	if cap(big) < 5000 {
		t.Fatalf("grab(5000) returned cap %d", cap(big))
	}
}

// TestParallelDeliveryBuffersPooled pins the parallel engine's per-frame
// buffer cost. Each runner grabs send copies from its own pool and releases
// delivered frames into its pool, so a steady request/response exchange
// recycles buffers in both directions. With 16 KB payloads an unpooled
// engine allocates >32 KB per round trip; pooled steady state only pays for
// the per-event bookkeeping, pinned here at well under a kilobyte per round.
func TestParallelDeliveryBuffersPooled(t *testing.T) {
	const rounds = 2000
	payload := make([]byte, 16*1024)
	s := NewSim()
	net := NewNetwork(s)
	delivered := 0
	handler := func(me int) Handler {
		return func(src int, buf []byte) {
			delivered++
			if delivered < 2*rounds {
				if err := net.Send(me, src, payload, s.NodeSched(me).Now()); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}
	}
	net.Attach(0, handler(0))
	net.Attach(1, handler(1))
	s.AtNode(0, 0, func() {
		if err := net.Send(0, 1, payload, 0); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := s.RunParallel(net, 2, 10_000_000); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if delivered != 2*rounds {
		t.Fatalf("delivered %d frames, want %d", delivered, 2*rounds)
	}
	perRound := float64(after.TotalAlloc-before.TotalAlloc) / rounds
	if perRound > 1024 {
		t.Errorf("parallel steady state allocated %.0f B per round trip, want <= 1024", perRound)
	}
}
