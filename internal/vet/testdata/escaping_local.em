// Negative fixture: the Widget allocated into frame-local w is stored
// into Keeper's data slot, so its referent outlives make's activation.
object Widget
  operation poke() -> (r: Int)
    r <- 1
  end
end Widget

object Keeper
  var kept: Widget
  operation make() -> (r: Int)
    var w: Widget <- new Widget
    kept <- w
    r <- w.poke()
  end
end Keeper

object Main
  process
    var k: Keeper <- new Keeper
    print(k.make())
  end process
end Main
