// Adaptive-placement core tests: deterministic decision logs, the static
// fact translation (pta cohorts and pinned classes to class names), and
// the option-validation edges.

package core

import (
	"strings"
	"testing"

	"repro/internal/auto/workgen"
	"repro/internal/obs"
)

// TestAutoDecisionLogDeterministic: the same generated workload under the
// same policy must produce a byte-identical decision log and event log on
// every run (the CI race target runs this under -race, so the guarantee
// also holds with the runtime's scheduler shaking the host).
func TestAutoDecisionLogDeterministic(t *testing.T) {
	src := workgen.Generate(workgen.Config{Seed: 7, Services: 3, Sessions: 2, Requests: 12, Nodes: 3})
	run := func() (string, []byte) {
		sys, err := RunSource(src, Figure1Network(), Options{AutoPolicy: "greedy-colocate"})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return strings.Join(sys.AutoDecisionLog(), "\n"), obs.EventLog(sys.Recorder())
	}
	log1, ev1 := run()
	log2, ev2 := run()
	if log1 != log2 {
		t.Errorf("decision logs differ:\n--- run1\n%s\n--- run2\n%s", log1, log2)
	}
	if string(ev1) != string(ev2) {
		t.Errorf("event logs differ (%d vs %d bytes)", len(ev1), len(ev2))
	}
	if log1 == "" {
		t.Error("policy made no decisions; the determinism check is vacuous")
	}
}

// TestAutoPolicyValidation: unknown policies and the parallel engine are
// rejected up front.
func TestAutoPolicyValidation(t *testing.T) {
	src := "object Main\n  process\n    print(1)\n  end process\nend Main\n"
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(prog, Figure1Network(), Options{AutoPolicy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewSystem(prog, Figure1Network(), Options{AutoPolicy: "greedy-colocate", Parallel: true}); err == nil {
		t.Error("auto + parallel accepted; the policy tick needs the sequential engine")
	}
}

// TestAutoFactsCohortsAndPinned: the site-label translation must surface
// the {Service, Stats} allocation cohort and pin every class a fix
// statement reaches.
func TestAutoFactsCohortsAndPinned(t *testing.T) {
	src := `
object Stats
  var total: Int <- 0
  operation note(x: Int)
    total <- total + x
  end
end Stats

object Service
  var stats: Stats
  operation work(x: Int) -> (r: Int)
    stats.note(x)
    r <- x
  end
  initially
    stats <- new Stats
  end initially
end Service

object Anchor
  var n: Int <- 0
end Anchor

object Main
  var s: Service
  var a: Anchor
  initially
    s <- new Service
    a <- new Anchor
  end initially
  process
    fix a at thisnode()
    print(s.work(3))
  end process
end Main
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cohorts, pinned, err := AutoFacts(prog)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, set := range cohorts {
		if strings.Join(set, "|") == "Service|Stats" {
			found = true
		}
	}
	if !found {
		t.Errorf("cohorts = %v, want one {Service, Stats} set", cohorts)
	}
	gotPinned := strings.Join(pinned, ",")
	if !strings.Contains(gotPinned, "Anchor") {
		t.Errorf("pinned = %v, want Anchor (reached by fix)", pinned)
	}
}
