// Metadata passes: the checks that guard the heterogeneous-migration
// contract between the compiler back ends and the runtime kernel.

package vet

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/codegen"
	"repro/internal/ir"
)

// ---------------------------------------------------------- stop-isomorphism

// stopIsomorphism checks that every function's bus-stop tables enumerate the
// same machine-independent program points on every architecture. The stop
// numbers — not PCs — cross the network during migration, so any skew here
// silently resumes a thread at the wrong program point.
func (c *checker) stopIsomorphism(oc *codegen.ObjectCode) {
	var base *codegen.ArchCode
	for id := arch.ID(0); id < arch.NumArch; id++ {
		ac := oc.PerArch[id]
		if ac == nil {
			continue
		}
		if base == nil {
			base = ac
			continue
		}
		for i := range base.Funcs {
			if err := busstop.Isomorphic(base.Funcs[i].Stops, ac.Funcs[i].Stops); err != nil {
				c.report("stop-isomorphism", SevError, oc.Name, base.Funcs[i].Name,
					ac.Arch.String(), -1, "table differs from %v: %v", base.Arch, err)
			}
		}
	}
}

// exitOnlyPlacement checks that exit-only stops appear exactly where the ISA
// spec permits them: an exit-only stop is the atomic monitor-exit
// instruction (the VAX UNLINKQ, §3.3), so it is legal only for monitor-exit
// stops on an architecture with HasAtomicUnlink — and mandatory there, since
// the local runtime must never try to convert that PC to a stop number.
func (c *checker) exitOnlyPlacement(oc *codegen.ObjectCode, ac *codegen.ArchCode, spec *arch.Spec) {
	for _, fc := range ac.Funcs {
		for _, s := range fc.Stops.All() {
			switch {
			case s.ExitOnly && !spec.HasAtomicUnlink:
				c.report("stop-isomorphism", SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"exit-only stop on an ISA without an atomic unlink")
			case s.ExitOnly && s.Kind != busstop.KindMonExit:
				c.report("stop-isomorphism", SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"exit-only %s stop: only monitor exits may be exit-only", s.Kind)
			case !s.ExitOnly && s.Kind == busstop.KindMonExit && spec.HasAtomicUnlink:
				c.report("stop-isomorphism", SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"monitor-exit stop not exit-only on an ISA with an atomic unlink")
			}
		}
	}
}

// ---------------------------------------------------------- pc-alignment

// pcAlignment decodes each function's code and checks that every stop PC is
// an instruction boundary inside the function, in increasing order, and that
// the instruction ending at the stop PC belongs to the trap class the stop
// kind claims. A misaligned PC makes number→PC conversion park an arriving
// thread in the middle of an instruction.
func (c *checker) pcAlignment(oc *codegen.ObjectCode, ac *codegen.ArchCode, spec *arch.Spec) {
	const pass = "pc-alignment"
	for _, fc := range ac.Funcs {
		// endsAt[pc] is the instruction whose encoding ends at pc.
		endsAt := map[uint32]arch.Instr{}
		pc := uint32(0)
		decodeOK := true
		for int(pc) < len(fc.Code) {
			in, err := arch.Decode(spec, fc.Code, pc)
			if err != nil {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, -1,
					"undecodable instruction at pc %#x: %v", pc, err)
				decodeOK = false
				break
			}
			pc += in.Size
			endsAt[pc] = in
		}
		if !decodeOK {
			continue
		}
		prevPC := int64(-1)
		for _, s := range fc.Stops.All() {
			if int(s.PC) > len(fc.Code) {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"pc %#x outside code of %d bytes", s.PC, len(fc.Code))
				continue
			}
			if int64(s.PC) <= prevPC {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"pc %#x not after the previous stop's pc %#x", s.PC, prevPC)
			}
			prevPC = int64(s.PC)
			in, ok := endsAt[s.PC]
			if !ok {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, s.Stop,
					"pc %#x is not an instruction boundary", s.PC)
				continue
			}
			if msg := stopInstrMismatch(s, in); msg != "" {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, s.Stop, "%s", msg)
			}
		}
	}
}

// stopInstrMismatch checks that the instruction preceding a stop PC matches
// the stop's kind, returning a message when it does not.
func stopInstrMismatch(s busstop.Info, in arch.Instr) string {
	switch s.Kind {
	case busstop.KindLoopBottom:
		if in.Op != arch.OpPoll {
			return fmt.Sprintf("loop stop follows %v, want poll", in.Op)
		}
	case busstop.KindCall:
		if in.Op != arch.OpTrap || in.TrapKind != arch.TrapCall {
			return fmt.Sprintf("call stop follows %v, want a call trap", in)
		}
	case busstop.KindMonExit:
		if s.ExitOnly {
			if in.Op != arch.OpUnlq {
				return fmt.Sprintf("exit-only monexit stop follows %v, want unlq", in)
			}
		} else if in.Op != arch.OpTrap || in.TrapKind != arch.TrapMonExit {
			return fmt.Sprintf("monexit stop follows %v, want a monexit trap", in)
		}
	case busstop.KindSyscall:
		if in.Op != arch.OpTrap {
			return fmt.Sprintf("syscall stop follows %v, want a trap", in.Op)
		}
		switch in.TrapKind {
		case arch.TrapCall, arch.TrapMonExit, arch.TrapMonExitA, arch.TrapRet,
			arch.TrapFault, arch.TrapNone:
			return fmt.Sprintf("syscall stop follows a %v trap", in.TrapKind)
		}
	}
	return ""
}

// ------------------------------------------------------ liveness-consistency

// sysSigs mirrors the kernel's syscall signatures independently of the
// codegen lowering tables: whether each syscall pushes a result, and of what
// kind. The duplication is deliberate — vet recomputes the contract rather
// than trusting the code under test.
var sysSigs = map[ir.Op]struct {
	pushes bool
	rk     ir.VK
}{
	ir.SysPrint:    {false, ir.VKInt},
	ir.SysNodes:    {true, ir.VKInt},
	ir.SysThisNode: {true, ir.VKInt},
	ir.SysNodeAt:   {true, ir.VKInt},
	ir.SysTimeMS:   {true, ir.VKInt},
	ir.SysYield:    {false, ir.VKInt},
	ir.SysStrOf:    {true, ir.VKPtr},
	ir.SysConcat:   {true, ir.VKPtr},
	ir.SysMove:     {false, ir.VKInt},
	ir.SysFix:      {false, ir.VKInt},
	ir.SysRefix:    {false, ir.VKInt},
	ir.SysUnfix:    {false, ir.VKInt},
	ir.SysLocate:   {true, ir.VKInt},
	ir.SysWait:     {false, ir.VKInt},
	ir.SysSignal:   {false, ir.VKInt},
}

// expStop is one element of the machine-independent expected stop stream of
// a function: everything a bus stop must record except the PC (machine
// dependent) and the ExitOnly flag (derived per spec from monExit).
type expStop struct {
	irPC    int
	kind    busstop.Kind
	monExit bool
	pushes  bool
	rk      ir.VK
	kinds   []ir.VK // temporaries below the stop, bottom first
	live    uint64  // frame-variable live mask (liveOut of irPC | result slots)
}

// expectedStops recomputes, from the IR alone, the stop stream every
// architecture's table must realize: which reachable instructions trap to
// the kernel, in lowering order, with which temporaries live. This is the
// per-bus-stop information the enhanced compiler must emit (§3.3), derived
// here a second time so a back-end bug cannot certify itself.
func expectedStops(f *ir.Func, fi *ir.FuncInfo, omitLoopPolls bool) []expStop {
	var out []expStop
	li := ir.Liveness(f, fi)
	var resMask uint64
	for v := f.NumParams; v < f.NumParams+f.NumResults && v < 64; v++ {
		resMask |= 1 << uint(v)
	}
	for pc, in := range f.Code {
		if !fi.Reach[pc] {
			continue
		}
		st := fi.StackIn[pc]
		add := func(kind busstop.Kind, monExit, pushes bool, rk ir.VK, depth int) {
			out = append(out, expStop{
				irPC: pc, kind: kind, monExit: monExit, pushes: pushes, rk: rk,
				kinds: append([]ir.VK(nil), st[:depth]...),
				live:  li.LiveMask(pc, f.NumVars) | resMask,
			})
		}
		switch in.Op {
		case ir.Call:
			add(busstop.KindCall, false, true, in.K, len(st)-int(in.A)-1)
		case ir.New:
			add(busstop.KindSyscall, false, true, ir.VKPtr, len(st)-int(in.A))
		case ir.NewArray:
			add(busstop.KindSyscall, false, true, ir.VKPtr, len(st)-1)
		case ir.ALoad:
			add(busstop.KindSyscall, false, true, in.K, len(st)-2)
		case ir.AStore:
			add(busstop.KindSyscall, false, false, in.K, len(st)-3)
		case ir.ALen:
			add(busstop.KindSyscall, false, true, ir.VKInt, len(st)-1)
		case ir.LoopBottom:
			if !omitLoopPolls {
				add(busstop.KindLoopBottom, false, false, ir.VKInt, len(st))
			}
		case ir.Ret:
			if f.Monitored {
				add(busstop.KindMonExit, true, false, ir.VKInt, len(st))
			}
		default:
			if sig, ok := sysSigs[in.Op]; ok {
				pop, _ := ir.StackEffect(in)
				add(busstop.KindSyscall, false, sig.pushes, sig.rk, len(st)-pop)
			}
		}
	}
	return out
}

// livenessConsistency re-derives each function's stop stream from the IR and
// checks the architecture's table against it stop by stop: kind, push
// behaviour, result kind, and the exact temporary-stack description. The
// kernel trusts these fields to convert live temporaries between formats; a
// mismatch corrupts every value above the skew.
func (c *checker) livenessConsistency(oc *codegen.ObjectCode, ac *codegen.ArchCode, spec *arch.Spec) {
	const pass = "liveness-consistency"
	for i, fc := range ac.Funcs {
		f := oc.IR.Funcs[i]
		fi, err := ir.Analyze(f, oc.IR.VarKinds)
		if err != nil {
			c.report(pass, SevError, oc.Name, fc.Name, spec.Name, -1,
				"IR does not verify: %v", err)
			continue
		}
		exp := expectedStops(f, fi, c.prog.Opts.OmitLoopPolls)
		tbl := fc.Stops
		if tbl.Len() != len(exp) {
			c.report(pass, SevError, oc.Name, fc.Name, spec.Name, -1,
				"%d stops in table, %d kernel-transfer points in IR", tbl.Len(), len(exp))
			continue
		}
		for n, e := range exp {
			s, err := tbl.ByStop(n)
			if err != nil {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, n, "%v", err)
				continue
			}
			bad := func(format string, args ...any) {
				c.report(pass, SevError, oc.Name, fc.Name, spec.Name, n,
					"at ir@%d (%s): %s", e.irPC, f.Code[e.irPC], fmt.Sprintf(format, args...))
			}
			if s.Kind != e.kind {
				bad("kind %s, want %s", s.Kind, e.kind)
			}
			if s.Pushes != e.pushes {
				bad("pushes=%v, want %v", s.Pushes, e.pushes)
			}
			if s.Pushes && s.ResultKind != e.rk {
				bad("result kind %s, want %s", s.ResultKind, e.rk)
			}
			wantExit := e.monExit && spec.HasAtomicUnlink
			if s.ExitOnly != wantExit {
				bad("exit-only=%v, want %v", s.ExitOnly, wantExit)
			}
			if s.LiveVars != e.live {
				bad("live mask %#x, want %#x (a cleared live bit would let the "+
					"kernel canonicalize a slot some path still reads)", s.LiveVars, e.live)
			}
			if s.TempDepth != len(e.kinds) {
				bad("temp depth %d, want %d", s.TempDepth, len(e.kinds))
				continue
			}
			if len(s.TempKinds) != len(e.kinds) {
				bad("%d temp kinds for depth %d", len(s.TempKinds), len(e.kinds))
				continue
			}
			for j := range e.kinds {
				if s.TempKinds[j] != e.kinds[j] {
					bad("temp %d is %s, want %s", j, s.TempKinds[j], e.kinds[j])
				}
			}
		}
	}
}

// ------------------------------------------------------- template-coverage

// objectTemplate checks the machine-independent object template against the
// IR data-area layout. Templates drive marshalling, swizzling and GC: a slot
// whose kind disagrees with the IR either leaks a raw pointer across the
// network or converts an integer as a reference.
func (c *checker) objectTemplate(oc *codegen.ObjectCode) {
	const pass = "template-coverage"
	t := oc.Template
	o := oc.IR
	if t == nil {
		c.report(pass, SevError, oc.Name, "", "", -1, "object has no template")
		return
	}
	if t.Name != o.Name {
		c.report(pass, SevError, oc.Name, "", "", -1,
			"template names %q, object is %q", t.Name, o.Name)
	}
	if t.Immutable != o.Immutable {
		c.report(pass, SevError, oc.Name, "", "", -1,
			"template immutable=%v, object immutable=%v", t.Immutable, o.Immutable)
	}
	if len(t.Slots) != len(o.VarKinds) {
		c.report(pass, SevError, oc.Name, "", "", -1,
			"template has %d slots, data area has %d", len(t.Slots), len(o.VarKinds))
		return
	}
	for i, k := range t.Slots {
		if k != o.VarKinds[i] {
			c.report(pass, SevError, oc.Name, "", "", -1,
				"slot %d (%s) is %s in the template, %s in the IR",
				i, o.VarNames[i], k, o.VarKinds[i])
		}
		if i < len(t.SlotNames) && i < len(o.VarNames) && t.SlotNames[i] != o.VarNames[i] {
			c.report(pass, SevError, oc.Name, "", "", -1,
				"slot %d named %q in the template, %q in the IR", i, t.SlotNames[i], o.VarNames[i])
		}
	}
	if t.MonitoredFrom != o.MonitoredFrom {
		c.report(pass, SevError, oc.Name, "", "", -1,
			"template monitors slots from %d, IR from %d", t.MonitoredFrom, o.MonitoredFrom)
	}
	if t.NumConds != o.NumConds {
		c.report(pass, SevError, oc.Name, "", "", -1,
			"template has %d conditions, IR has %d", t.NumConds, o.NumConds)
	}
}

// templateCoverage checks each activation template against the IR function
// and the ISA spec: well-formed non-overlapping coverage of the record,
// every variable slot described exactly once with the IR's name and kind,
// register homes drawn from the ISA's callee-saved home registers, and a
// saved-register area that matches the homes in slot order — the contract
// the kernel's thread-state conversion and GC stack walk rely on.
func (c *checker) templateCoverage(oc *codegen.ObjectCode, ac *codegen.ArchCode, spec *arch.Spec) {
	const pass = "template-coverage"
	for i, fc := range ac.Funcs {
		f := oc.IR.Funcs[i]
		t := fc.Template
		if t == nil {
			c.report(pass, SevError, oc.Name, fc.Name, spec.Name, -1, "function has no template")
			continue
		}
		bad := func(format string, args ...any) {
			c.report(pass, SevError, oc.Name, fc.Name, spec.Name, -1, format, args...)
		}
		// Structural validity: every word claimed at most once, inside the
		// record.
		if err := t.Validate(); err != nil {
			bad("malformed template: %v", err)
			continue
		}
		if t.NumParams != f.NumParams || t.NumResults != f.NumResults || t.NumVars != f.NumVars {
			bad("template describes %d/%d/%d params/results/vars, IR has %d/%d/%d",
				t.NumParams, t.NumResults, t.NumVars, f.NumParams, f.NumResults, f.NumVars)
		}
		if t.Monitored != f.Monitored {
			bad("template monitored=%v, IR monitored=%v", t.Monitored, f.Monitored)
		}
		if fi, err := ir.Analyze(f, oc.IR.VarKinds); err == nil && t.TempSlots < fi.MaxStack {
			bad("temp area has %d slots, evaluation stack reaches %d", t.TempSlots, fi.MaxStack)
		}
		if len(t.Vars) != len(f.VarKinds) {
			bad("%d variable homes for %d slots", len(t.Vars), len(f.VarKinds))
			continue
		}
		home := func(r byte) bool {
			for _, h := range spec.HomeRegs {
				if h == r {
					return true
				}
			}
			return false
		}
		var regOrder []byte
		for v, h := range t.Vars {
			if h.Name != f.VarNames[v] {
				bad("slot %d named %q in the template, %q in the IR", v, h.Name, f.VarNames[v])
			}
			if h.Kind != f.VarKinds[v] {
				bad("slot %d (%s) is %s in the template, %s in the IR",
					v, f.VarNames[v], h.Kind, f.VarKinds[v])
			}
			if h.InReg {
				if !home(h.Reg) {
					bad("slot %d (%s) homed in r%d, which is not a callee-saved home register of %s",
						v, f.VarNames[v], h.Reg, spec.Name)
				}
				regOrder = append(regOrder, h.Reg)
			}
		}
		// The saved-register area must list exactly the registers used as
		// homes, in slot order: the kernel writes the caller's values there
		// at call time and restores them from there on migration.
		if len(regOrder) != len(t.SavedRegs) {
			bad("saved-register area holds %d registers, %d slots are register-homed",
				len(t.SavedRegs), len(regOrder))
		} else {
			for j := range regOrder {
				if t.SavedRegs[j] != regOrder[j] {
					bad("saved register %d is r%d, home order says r%d",
						j, t.SavedRegs[j], regOrder[j])
				}
			}
		}
	}
}
