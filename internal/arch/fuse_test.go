package arch

import (
	"bytes"
	"math/rand"
	"testing"
)

func fuseCountdown(t testing.TB, s *Spec, iters uint32) ([]byte, *Predecoded, *Fused) {
	t.Helper()
	code := buildCountdown(t, s, iters)
	pd, err := Predecode(s, code)
	if err != nil {
		t.Fatal(err)
	}
	fz := Fuse(s, pd, PlanFusion(pd, nil))
	if fz == nil {
		t.Fatal("countdown loop did not fuse")
	}
	return code, pd, fz
}

// The countdown loop has exactly one fusable run: the three-instruction
// loop body (mov, sub, brnz). The entry mov is a lone leader (below
// minFuseRun) and ret is a bus stop.
func TestFusePlanCountdown(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			_, _, fz := fuseCountdown(t, s, 10)
			if fz.NumRuns() != 1 {
				t.Fatalf("runs = %d, want 1", fz.NumRuns())
			}
			if lens := fz.RunLens(); lens[0] != 3 {
				t.Errorf("run length = %d, want 3 (mov, sub, brnz)", lens[0])
			}
		})
	}
}

// A bus stop inside what would otherwise be straight-line code must
// split the run: stop PCs are where migration snapshots happen, so a
// fused run may never cross one.
func TestFusePlanSplitsAtStops(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code := buildCountdown(t, s, 10)
			pd, err := Predecode(s, code)
			if err != nil {
				t.Fatal(err)
			}
			// Pretend the sub (third instruction) is a stop PC.
			var pcs []uint32
			pc := uint32(0)
			for i := 0; i < pd.NumInstrs(); i++ {
				pcs = append(pcs, pc)
				pc += pd.instrs[i].Size
			}
			plan := PlanFusion(pd, []uint32{pcs[2]})
			for _, r := range plan.Runs {
				if r.Head < pcs[2] && r.Head+1 > pcs[2] {
					t.Errorf("run at %#x crosses stop %#x", r.Head, pcs[2])
				}
				if r.Head == pcs[1] && r.N > 1 {
					t.Errorf("run at loop top spans the stop: N=%d", r.N)
				}
			}
		})
	}
}

// Steady-state fused dispatch must not allocate: closures are built once
// at Fuse time and all mutable state lives in the reusable FusedRunner.
func TestFusedDispatchSteadyStateAllocs(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			_, _, fz := fuseCountdown(t, s, 1_000_000)
			mem := make([]byte, 4096)
			var cpu CPU
			var rn FusedRunner // lives in the node, outside the slice loop
			got := testing.AllocsPerRun(100, func() {
				cpu = CPU{FP: 256, TempBase: 512}
				tr, _, _, err := rn.Run(s, fz, &cpu, mem, 5000)
				if err != nil || tr != nil {
					t.Fatalf("unexpected stop: %v %v", tr, err)
				}
			})
			if got != 0 {
				t.Errorf("fused dispatch allocates %.1f allocs/run, want 0", got)
			}
		})
	}
}

// Run the countdown to completion under fused and legacy dispatch and
// compare every observable.
func TestFusedMatchesLegacyToCompletion(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code, _, fz := fuseCountdown(t, s, 1000)
			mem1 := make([]byte, 4096)
			mem2 := make([]byte, 4096)
			cpu1 := CPU{FP: 256, TempBase: 512}
			cpu2 := cpu1
			tr1, cy1, n1, err1 := RunFused(s, fz, &cpu1, mem1, 1<<30)
			tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, 1<<30)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v %v", err1, err2)
			}
			if tr1 == nil || tr2 == nil || *tr1 != *tr2 {
				t.Fatalf("traps: %+v vs %+v", tr1, tr2)
			}
			if cy1 != cy2 || n1 != n2 || cpu1 != cpu2 {
				t.Errorf("state: %d/%d/%+v vs %d/%d/%+v", cy1, n1, cpu1, cy2, n2, cpu2)
			}
			if !bytes.Equal(mem1, mem2) {
				t.Errorf("memory images differ")
			}
		})
	}
}

// Migration resume can land on ANY PC — a run head, the middle of a run,
// or even mid-encoding. Sweep every byte offset as a start PC and demand
// byte-identical observables against the legacy loop. Mid-run PCs
// exercise the per-instruction fallback; mid-encoding PCs exercise the
// Step fallback below it.
func TestFusedResumeSweepMatchesLegacy(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code, _, fz := fuseCountdown(t, s, 5)
			for pc := uint32(0); pc <= uint32(len(code)); pc++ {
				mem1 := make([]byte, 4096)
				mem2 := make([]byte, 4096)
				cpu1 := CPU{PC: pc, FP: 256, TempBase: 512, Regs: [16]uint32{1: 7, 2: 7}}
				cpu2 := cpu1
				tr1, cy1, n1, err1 := RunFused(s, fz, &cpu1, mem1, 200)
				tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, 200)
				if (err1 == nil) != (err2 == nil) ||
					(err1 != nil && err1.Error() != err2.Error()) {
					t.Fatalf("pc=%d: error mismatch: %v vs %v", pc, err1, err2)
				}
				if cy1 != cy2 || n1 != n2 {
					t.Errorf("pc=%d: cycles/instrs %d/%d vs %d/%d", pc, cy1, n1, cy2, n2)
				}
				if (tr1 == nil) != (tr2 == nil) || (tr1 != nil && *tr1 != *tr2) {
					t.Errorf("pc=%d: traps %+v vs %+v", pc, tr1, tr2)
				}
				if cpu1 != cpu2 {
					t.Errorf("pc=%d: cpu %+v vs %+v", pc, cpu1, cpu2)
				}
				if !bytes.Equal(mem1, mem2) {
					t.Errorf("pc=%d: memory images differ", pc)
				}
			}
		})
	}
}

// A budget too small to cover the next whole run must fall back to the
// per-instruction path and stop at exactly the same instruction the
// legacy loop would.
func TestFusedBudgetMatchesLegacy(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code, _, fz := fuseCountdown(t, s, 100)
			for budget := 0; budget <= 12; budget++ {
				mem1 := make([]byte, 4096)
				mem2 := make([]byte, 4096)
				cpu1 := CPU{FP: 256, TempBase: 512}
				cpu2 := cpu1
				tr1, cy1, n1, err1 := RunFused(s, fz, &cpu1, mem1, budget)
				tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, budget)
				if err1 != nil || err2 != nil {
					t.Fatalf("budget=%d: errors %v %v", budget, err1, err2)
				}
				if cy1 != cy2 || n1 != n2 || cpu1 != cpu2 {
					t.Errorf("budget=%d: %d/%d/%+v vs %d/%d/%+v",
						budget, cy1, n1, cpu1, cy2, n2, cpu2)
				}
				if (tr1 == nil) != (tr2 == nil) || (tr1 != nil && *tr1 != *tr2) {
					t.Errorf("budget=%d: traps %+v vs %+v", budget, tr1, tr2)
				}
			}
		})
	}
}

// TestQuickFusedMatchesLegacy: random legal instruction streams, fused
// against legacy. Streams include faulting memory modes, stack over- and
// underflow, div-zero, branches to arbitrary targets — the fused
// executor must reproduce every observable exactly, including fault
// write-back of cached registers.
func TestQuickFusedMatchesLegacy(t *testing.T) {
	for _, s := range AllSpecs() {
		s := s
		rng := rand.New(rand.NewSource(0x5eed + int64(s.ID)))
		for iter := 0; iter < 300; iter++ {
			n := 2 + rng.Intn(10)
			var code []byte
			var err error
			ok := true
			for i := 0; i < n && ok; i++ {
				code, err = Encode(s, code, genInstr(rng, s))
				if err != nil {
					ok = false
				}
			}
			if !ok {
				continue
			}
			pd, err := Predecode(s, code)
			if err != nil {
				continue
			}
			fz := Fuse(s, pd, PlanFusion(pd, nil))
			if fz == nil {
				continue
			}
			mem1 := make([]byte, 1<<14)
			mem2 := make([]byte, 1<<14)
			var regs [16]uint32
			for i := range regs {
				regs[i] = rng.Uint32() % 1024
			}
			cpu1 := CPU{FP: 256, TempBase: 512, LitBase: 1024, Self: 2048,
				TempDepth: int32(rng.Intn(4)), Regs: regs}
			cpu2 := cpu1
			tr1, cy1, n1, err1 := RunFused(s, fz, &cpu1, mem1, 64)
			tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, 64)
			if (err1 == nil) != (err2 == nil) ||
				(err1 != nil && err1.Error() != err2.Error()) {
				t.Fatalf("%s iter %d: error mismatch: %v vs %v\ncode: %x", s.Name, iter, err1, err2, code)
			}
			if cy1 != cy2 || n1 != n2 {
				t.Fatalf("%s iter %d: cycles/instrs %d/%d vs %d/%d\ncode: %x", s.Name, iter, cy1, n1, cy2, n2, code)
			}
			if (tr1 == nil) != (tr2 == nil) || (tr1 != nil && *tr1 != *tr2) {
				t.Fatalf("%s iter %d: traps %+v vs %+v\ncode: %x", s.Name, iter, tr1, tr2, code)
			}
			if cpu1 != cpu2 {
				t.Fatalf("%s iter %d: cpu\n%+v\n%+v\ncode: %x", s.Name, iter, cpu1, cpu2, code)
			}
			if !bytes.Equal(mem1, mem2) {
				t.Fatalf("%s iter %d: memory images differ\ncode: %x", s.Name, iter, code)
			}
		}
	}
}
