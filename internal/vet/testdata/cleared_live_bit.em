// Negative fixture: compiled clean, then the golden test clears a set
// LiveVars bit in the first VAX stop (see golden_test.go) — the exact
// corruption that would let a sharpening kernel canonicalize a slot some
// path still reads after the thread resumes.
object Counter
  monitor
    var n: Int <- 0
    operation bump() -> (r: Int)
      n <- n + 1
      r <- n
    end
  end monitor
end Counter

object Main
  process
    var c: Counter <- new Counter
    print(c.bump())
  end process
end Main
