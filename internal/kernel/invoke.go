// Invocation: local calls, cross-architecture remote invocation, returns
// (local, remote, and kernel continuations), and the protocol message
// dispatcher.

package kernel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// handleCall services a TrapCall: resolve the receiver, then either push a
// local activation (acquiring the monitor for monitored operations) or
// perform a cross-node invocation.
func (n *Node) handleCall(f *Frag, tr *arch.Trap) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	opName := f.fn.fc.Strings[tr.A]
	argc := int(tr.B)
	// Arguments sit on the evaluation stack above the receiver.
	args := make([]uint32, argc)
	for i := argc - 1; i >= 0; i-- {
		args[i] = n.popTemp(f)
	}
	recvAddr := n.popTemp(f)
	if recvAddr == 0 {
		n.fault(f, "invocation of "+opName+" on nil")
		return
	}
	recv, err := n.objAt(recvAddr)
	if err != nil {
		n.fault(f, "invocation: "+err.Error())
		return
	}
	if recv.transit != nil {
		// The receiver is mid-move: block and replay the dispatch once the
		// move commits (remote path) or aborts (local path).
		f.Status = FragStateBlockedCall
		f.waitNode = -1
		recv.transit.parked = append(recv.transit.parked,
			func() { n.dispatchCall(f, recv, opName, args) })
		return
	}
	n.dispatchCall(f, recv, opName, args)
}

// dispatchCall routes a resolved call locally or remotely (re-entered when
// a parked call replays after a move resolves).
func (n *Node) dispatchCall(f *Frag, recv *Obj, opName string, args []uint32) {
	if recv.Resident {
		n.invokeLocal(f, recv, opName, args)
		return
	}
	n.invokeRemote(f, recv, opName, args)
}

// invokeLocal pushes the callee activation on the calling thread.
func (n *Node) invokeLocal(f *Frag, recv *Obj, opName string, args []uint32) {
	if recv.Kind != ObjPlain {
		n.fault(f, "invocation of "+opName+" on a non-object value")
		return
	}
	idx := recv.Code.oc.FuncIndex(opName)
	if idx < 0 {
		n.fault(f, recv.Code.oc.Name+" has no operation "+opName)
		return
	}
	lf := recv.Code.funcs[idx]
	if lf.fc.Template.NumParams != len(args) {
		n.fault(f, fmt.Sprintf("%s takes %d arguments, got %d",
			opName, lf.fc.Template.NumParams, len(args)))
		return
	}
	retDesc := f.fn.desc
	if err := n.pushFrame(f, lf, recv, args, retDesc, f.CPU.PC); err != nil {
		n.fault(f, err.Error())
		return
	}
	if lf.fc.Template.Monitored {
		if !n.monAcquire(f, recv) {
			return // blocked at monitor entry; resumed by monRelease
		}
	}
	n.enqueue(f)
}

// invokeRemote marshals the arguments and sends an Invoke; the calling
// fragment blocks until the Return arrives (possibly at another node, if
// the fragment migrates meanwhile).
func (n *Node) invokeRemote(f *Frag, recv *Obj, opName string, args []uint32) {
	if n.chaosOn() && (n.suspects[recv.LastKnown] || (n.cluster.dirOn && recv.LocStale)) {
		if n.cluster.dirOn {
			// The cached location is a suspected node (or was invalidated
			// when one fell): ask the directory for the decreed home before
			// giving up on the call.
			n.dirRerouteInvoke(f, recv, opName, args)
			return
		}
		// The last known host is suspected down: fail fast with the typed
		// cause instead of blocking on a Return that will not come.
		n.faultErr(f, ErrNodeDown, fmt.Sprintf("remote invocation of %s on %v: node %d is down",
			opName, recv.OID, recv.LastKnown))
		return
	}
	// Marshalling needs each argument's kind. The program database (every
	// node holds every interface, §3.4) supplies the callee signature.
	sig, ok := n.signatureOf(recv, opName, len(args))
	if !ok {
		n.fault(f, fmt.Sprintf("cannot determine remote signature of %s/%d", opName, len(args)))
		return
	}
	conv := n.cluster.converterFor(n, n.cluster.Nodes[recv.LastKnown].Spec.ID)
	prev := conv.Stats()
	wargs := make([]wire.Value, len(args))
	for i, a := range args {
		v, err := n.wireTempValue(conv, sig[i], a)
		if err != nil {
			n.fault(f, "marshal argument: "+err.Error())
			return
		}
		wargs[i] = v
	}
	n.chargeConv(conv, prev)
	f.Status = FragStateBlockedCall
	f.waitNode = int32(recv.LastKnown)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvRemoteInvoke, Frag: f.ID, Obj: uint32(recv.OID),
		B: uint64(recv.LastKnown), Str: opName})
	n.cluster.Rec.Metrics().Add("remote_invokes",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	if n.cluster.autoOn {
		// Per-link and per-object traffic for the placement policies: which
		// (src,dst) pairs are chatty, and which objects the traffic is about.
		// Recorded only when a policy is armed so policy-disabled runs keep
		// byte-identical metric snapshots.
		n.cluster.Rec.Metrics().Add("invoke_link",
			fmt.Sprintf("src=%d,dst=%d", n.ID, recv.LastKnown), 1)
		n.cluster.Rec.Metrics().Add("invoke_obj",
			fmt.Sprintf("oid=%d,src=%d", uint32(recv.OID), n.ID), 1)
	}
	n.sendMsg(recv.LastKnown, &wire.Invoke{
		Target:     recv.OID,
		OpName:     opName,
		Origin:     int32(n.ID),
		CallerFrag: f.ID,
		Args:       wargs,
		Hints:      n.collectHints(wargs),
	})
}

// signatureOf returns the parameter kinds of opName on recv's class, using
// the program database (every node knows every interface; OIDs name
// semantic content consistently across the network, §3.4).
func (n *Node) signatureOf(recv *Obj, opName string, argc int) ([]ir.VK, bool) {
	var source *ir.Object
	if recv.Code != nil {
		source = recv.Code.oc.IR
	} else {
		// Proxy without class knowledge: search the program for a class
		// with this operation and arity (the program database; the static
		// type checker guarantees a consistent meaning at the call site).
		for _, oc := range n.cluster.Prog.Objects {
			if i := oc.FuncIndex(opName); i >= 0 && oc.IR.Funcs[i].NumParams == argc {
				source = oc.IR
				break
			}
		}
	}
	if source == nil {
		return nil, false
	}
	i := source.FuncIndex(opName)
	if i < 0 || source.Funcs[i].NumParams != argc {
		return nil, false
	}
	fn := source.Funcs[i]
	return fn.VarKinds[:fn.NumParams], true
}

// handleReturn services a TrapRet.
func (n *Node) handleReturn(f *Frag) {
	resultW := uint32(0)
	var resultK ir.VK
	hadResult := false
	if f.fn.fc.Template.NumResults > 0 {
		resultW = n.resultWord(f)
		resultK = resultKind(f.fn)
		hadResult = true
	}
	kont, hasCaller, err := n.popFrame(f)
	if err != nil {
		n.fault(f, err.Error())
		return
	}
	switch {
	case kont:
		k := f.konts[len(f.konts)-1]
		f.konts = f.konts[:len(f.konts)-1]
		k()
		n.retryPendingMoves()
	case hasCaller:
		// Calls always push exactly one value (0 for result-less ops).
		if !hadResult {
			resultW = 0
		}
		n.pushTemp(f, resultW)
		n.enqueue(f)
	case f.Link.Node >= 0:
		// Bottom of a fragment with a remote caller: ship the result.
		conv := n.cluster.converterFor(n, n.cluster.Nodes[f.Link.Node].Spec.ID)
		prev := conv.Stats()
		v := wire.IntV(0)
		if hadResult {
			var werr error
			v, werr = n.wireTempValue(conv, resultK, resultW)
			if werr != nil {
				n.fault(f, "marshal result: "+werr.Error())
				return
			}
		} else {
			v = conv.IntToWire(0)
		}
		n.chargeConv(conv, prev)
		n.sendMsg(int(f.Link.Node), &wire.Return{
			Origin: int32(n.ID), CallerFrag: f.Link.Frag, Ok: true, Result: v,
			Hints: n.collectHints([]wire.Value{v}),
		})
		n.killFrag(f)
	default:
		// Thread root finished.
		n.killFrag(f)
	}
}

// ---------------------------------------------------------------- messages

// handleMsg dispatches a received protocol message.
func (n *Node) handleMsg(src int, p wire.Payload) {
	switch p := p.(type) {
	case *wire.Invoke:
		n.recvInvoke(src, p)
	case *wire.Return:
		n.recvReturn(src, p)
	case *wire.MoveReq:
		n.recvMoveReq(src, p)
	case *wire.Move:
		n.recvMove(src, p)
	case *wire.MoveGroup:
		n.recvMoveGroup(src, p)
	case *wire.UnfixReq:
		n.recvUnfixReq(src, p)
	case *wire.MoveAck:
		n.recvMoveAck(src, p)
	case *wire.UpdateLoc:
		if o, ok := n.objects[p.Target]; ok && !o.Resident && p.Epoch > o.Epoch {
			o.LastKnown = int(p.Node)
			o.Epoch = p.Epoch
			o.LocStale = false
			o.chained = false
		}
	case *wire.Locate:
		n.recvLocate(src, p)
	case *wire.LocateReply:
		if o, ok := n.objects[p.Target]; ok && !o.Resident && p.Node >= 0 {
			o.LastKnown = int(p.Node)
		}
	case *wire.DirPrepare:
		n.recvDirPrepare(src, p)
	case *wire.DirPromise:
		n.recvDirPromise(src, p)
	case *wire.DirAccept:
		n.recvDirAccept(src, p)
	case *wire.DirAccepted:
		n.recvDirAccepted(src, p)
	case *wire.DirLearn:
		n.recvDirLearn(src, p)
	case *wire.DirGPrepare:
		n.recvDirGPrepare(src, p)
	case *wire.DirGPromise:
		n.recvDirGPromise(src, p)
	case *wire.DirGAccept:
		n.recvDirGAccept(src, p)
	case *wire.DirGAccepted:
		n.recvDirGAccepted(src, p)
	case *wire.DirGLearn:
		n.recvDirGLearn(src, p)
	case *wire.DirLookup:
		n.recvDirLookup(src, p)
	case *wire.DirLookupReply:
		n.recvDirLookupReply(src, p)
	default:
		panic(fmt.Sprintf("kernel: node %d: unhandled message %T", n.ID, p))
	}
}

// forwardIfMoved forwards a message about an object not resident here and
// tells the sender where it went. It reports whether forwarding happened.
func (n *Node) forwardIfMoved(src int, target *Obj, p wire.Payload) bool {
	if target.Resident {
		return false
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvProxyForward, Obj: uint32(target.OID),
		B: uint64(target.LastKnown), Str: p.Kind().String()})
	n.cluster.Rec.Metrics().Add("proxy_forwards",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	// This proxy just acted as a chain link: flag it so the directory
	// compactor rewrites it to the decreed home.
	target.chained = true
	n.sendMsg(target.LastKnown, p)
	n.sendMsg(src, &wire.UpdateLoc{Target: target.OID,
		Node: int32(target.LastKnown), Epoch: target.Epoch})
	return true
}

// recvInvoke runs an invocation on behalf of a remote caller: a fresh
// fragment whose Link addresses the caller.
func (n *Node) recvInvoke(src int, p *wire.Invoke) {
	origin := int(p.Origin)
	fail := func(msg string) {
		n.sendMsg(origin, &wire.Return{Origin: int32(n.ID),
			CallerFrag: p.CallerFrag, Ok: false, FaultMsg: msg})
	}
	target, ok := n.objects[p.Target]
	if !ok || !target.Resident {
		if ok && n.forwardIfMoved(src, target, p) {
			return
		}
		// Entirely unknown object: the sender's hint was wrong; bounce a
		// fault to the caller.
		fail(fmt.Sprintf("object %v not found at node %d", p.Target, n.ID))
		return
	}
	if target.transit != nil {
		// Mid-move: park the whole invocation and re-deliver it to
		// ourselves once the move resolves (forwarding if it committed).
		target.transit.parked = append(target.transit.parked,
			func() { n.recvInvoke(src, p) })
		return
	}
	if target.Kind == ObjArray {
		n.serveArrayOp(origin, p, target)
		return
	}
	idx := -1
	if target.Kind == ObjPlain {
		idx = target.Code.oc.FuncIndex(p.OpName)
	}
	if idx < 0 {
		fail("no operation " + p.OpName)
		return
	}
	lf := target.Code.funcs[idx]
	t := lf.fc.Template
	if t.NumParams != len(p.Args) {
		fail(fmt.Sprintf("%s takes %d arguments, got %d", p.OpName, t.NumParams, len(p.Args)))
		return
	}
	hints := map[oid.OID]int{}
	for _, h := range p.Hints {
		hints[h.OID] = int(h.Node)
	}
	// Values were produced by the origin machine.
	conv := n.cluster.converterFor(n, n.cluster.Nodes[origin].Spec.ID)
	prev := conv.Stats()
	args := make([]uint32, len(p.Args))
	for i, v := range p.Args {
		w, err := n.unwireValue(conv, t.Vars[i].Kind, v, hints, origin)
		if err != nil {
			fail("unmarshal: " + err.Error())
			return
		}
		args[i] = w
	}
	n.chargeConv(conv, prev)
	sf := n.newFrag()
	sf.Link = Link{Node: int32(origin), Frag: p.CallerFrag}
	if err := n.pushFrame(sf, lf, target, args, descNone, 0); err != nil {
		n.fault(sf, err.Error())
		return
	}
	if t.Monitored {
		if !n.monAcquire(sf, target) {
			return
		}
	}
	n.enqueue(sf)
}

// recvReturn resumes the caller fragment with the invocation result.
func (n *Node) recvReturn(src int, p *wire.Return) {
	f, ok := n.frags[p.CallerFrag]
	if !ok {
		// The caller migrated: forward along the thread-forwarding chain.
		if dest, moved := n.movedFrags[p.CallerFrag]; moved {
			n.sendMsg(dest, p)
			return
		}
		n.tracef("node%d: return for unknown frag %08x dropped", n.ID, p.CallerFrag)
		return
	}
	if !p.Ok {
		n.fault(f, "remote invocation failed: "+p.FaultMsg)
		return
	}
	// The caller is stopped at its call bus stop; the stop tells us whether
	// resumption pushes a value and of what kind.
	stop, err := n.currentStop(f)
	if err != nil {
		n.fault(f, "return: "+err.Error())
		return
	}
	f.waitNode = -1
	if stop.Pushes {
		hints := map[oid.OID]int{}
		for _, h := range p.Hints {
			hints[h.OID] = int(h.Node)
		}
		origin := int(p.Origin)
		conv := n.cluster.converterFor(n, n.cluster.Nodes[origin].Spec.ID)
		prev := conv.Stats()
		w, err := n.unwireValue(conv, stop.ResultKind, p.Result, hints, origin)
		if err != nil {
			n.fault(f, "return unmarshal: "+err.Error())
			return
		}
		n.chargeConv(conv, prev)
		n.pushTemp(f, w)
	}
	n.enqueue(f)
}

// maxLocateHops bounds the forwarding-address walk. A stale-but-live chain
// converges in at most nodes-1 hops; anything longer is a routing loop from
// crash-era hints, and the chase fails cleanly instead of ping-ponging.
const maxLocateHops = 16

// recvLocate answers or chases a location query (forwarding-address walk).
func (n *Node) recvLocate(src int, p *wire.Locate) {
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	answer := func(node int32) {
		n.cluster.Rec.Metrics().Add("locate_chase_hops", lbl, uint64(p.Hops))
		conv := n.cluster.converterFor(n, n.cluster.Nodes[p.Origin].Spec.ID)
		n.sendMsg(int(p.Origin), &wire.Return{
			Origin:     int32(n.ID),
			CallerFrag: p.ReplyFrag, Ok: true, Result: conv.IntToWire(uint32(node)),
		})
	}
	o, ok := n.objects[p.Target]
	switch {
	case ok && o.Resident:
		answer(int32(n.ID))
	case ok && p.Hops < maxLocateHops:
		p.Hops++
		n.sendMsg(o.LastKnown, p)
	default:
		if ok {
			// The chase walked p.Hops forwards before exhausting its
			// budget; account them so hop totals cover failed chases too.
			n.cluster.Rec.Metrics().Add("locate_chase_hops", lbl, uint64(p.Hops))
			n.cluster.Rec.Metrics().Add("locate_chase_exhausted", lbl, 1)
		}
		n.sendMsg(int(p.Origin), &wire.Return{
			Origin:     int32(n.ID),
			CallerFrag: p.ReplyFrag, Ok: false,
			FaultMsg: fmt.Sprintf("cannot locate %v", p.Target),
		})
	}
}

// recvMoveReq moves a resident object (or forwards the request).
func (n *Node) recvMoveReq(src int, p *wire.MoveReq) {
	target, ok := n.objects[p.Target]
	if !ok {
		n.tracef("node%d: movereq for unknown %v dropped", n.ID, p.Target)
		return
	}
	if n.forwardIfMoved(src, target, p) {
		return
	}
	n.moveObject(target, int(p.Dest), p.Fix)
}

// recvUnfixReq unfixes a resident object (or forwards).
func (n *Node) recvUnfixReq(src int, p *wire.UnfixReq) {
	target, ok := n.objects[p.Target]
	if !ok {
		return
	}
	if n.forwardIfMoved(src, target, p) {
		return
	}
	if target.transit != nil {
		target.transit.parked = append(target.transit.parked,
			func() { n.recvUnfixReq(src, p) })
		return
	}
	target.Fixed = false
	if p.Refix {
		n.moveObject(target, int(p.Dest), true)
	}
}

// handleMoveFamily services move/fix/refix traps.
func (n *Node) handleMoveFamily(f *Frag, tr *arch.Trap) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	destW := int(int32(n.popTemp(f)))
	addr := n.popTemp(f)
	if destW < 0 || destW >= len(n.cluster.Nodes) {
		n.fault(f, "move: bad destination node")
		return
	}
	o, err := n.objAt(addr)
	if err != nil {
		n.fault(f, "move: "+err.Error())
		return
	}
	fix := tr.Kind == arch.TrapFix || tr.Kind == arch.TrapRefix
	if tr.Kind == arch.TrapRefix {
		if o.Resident {
			o.Fixed = false
		} else {
			n.sendMsg(o.LastKnown, &wire.UnfixReq{Target: o.OID, Refix: true, Dest: int32(destW)})
			n.enqueue(f)
			return
		}
	}
	if !o.Resident {
		// Forward the request; the move is asynchronous from here.
		n.sendMsg(o.LastKnown, &wire.MoveReq{Target: o.OID, Dest: int32(destW), Fix: fix})
		n.enqueue(f)
		return
	}
	// Resume the requesting thread first: if its own frames migrate with
	// the object, moveObject takes it off the run queue again; otherwise it
	// continues here after the move.
	n.enqueue(f)
	n.moveObject(o, destW, fix)
}
