package exp

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/netsim"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	cells, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable1(cells))
	byLabel := map[string]Cell{}
	for _, c := range cells {
		byLabel[c.Pair.Label] = c
	}
	// Shape checks, mirroring the paper's qualitative claims.
	sparc := byLabel["SPARC<->SPARC"]
	if sparc.OverheadPct < 35 || sparc.OverheadPct > 90 {
		t.Errorf("SPARC overhead %.0f%%, paper reports ~57%%", sparc.OverheadPct)
	}
	hp := byLabel["HP9000/300-1<->HP9000/300-2"]
	if hp.OverheadPct < 35 || hp.OverheadPct > 90 {
		t.Errorf("HP overhead %.0f%%, paper reports ~57%%", hp.OverheadPct)
	}
	// Ordering: the HP pair is the fastest, Sun-3 pairs the slowest among
	// the measured M68K rows; SPARC<->Sun3 is the slowest SPARC row.
	if !(hp.EnhancedMS < sparc.EnhancedMS) {
		t.Errorf("HP pair (%f) should beat SPARC pair (%f)", hp.EnhancedMS, sparc.EnhancedMS)
	}
	if !(byLabel["SPARC<->Sun3"].EnhancedMS > byLabel["SPARC<->HP9000/300-1"].EnhancedMS) {
		t.Error("Sun-3 should be the slow partner among SPARC rows")
	}
	if !(byLabel["SPARC<->HP9000/300-2"].EnhancedMS > byLabel["SPARC<->HP9000/300-1"].EnhancedMS) {
		t.Error("the 25MHz HP should be slower than the 33MHz HP")
	}
	// Absolute band: within 35% of every measurable paper cell.
	check := func(label string, paper float64, got float64) {
		if got < paper*0.65 || got > paper*1.35 {
			t.Errorf("%s: %.0f ms vs paper %.0f ms (>35%% off)", label, got, paper)
		}
	}
	check("SPARC orig", 40, sparc.OriginalMS)
	check("SPARC enh", 63, sparc.EnhancedMS)
	check("HP orig", 28, hp.OriginalMS)
	check("HP enh", 44, hp.EnhancedMS)
	check("Sun3 orig", 65, byLabel["Sun-3<->Sun-3"].OriginalMS)
	check("VAX orig", 79, byLabel["VAX<->VAX"].OriginalMS)
	check("SPARC<->Sun3 enh", 122, byLabel["SPARC<->Sun3"].EnhancedMS)
	check("Sun3<->HP1 enh", 109, byLabel["Sun-3<->HP9000/300-1"].EnhancedMS)
}

func TestFigure2Hierarchy(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFigure2(rows))
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[1:] {
		if r.Output != rows[0].Output {
			t.Errorf("%s output %q differs from source %q", r.Level, r.Output, rows[0].Output)
		}
	}
}

func TestFigure34(t *testing.T) {
	s, err := Figure34()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
	for _, frag := range []string{
		"code1: o1; switch(); o2; o3; o4; o5; o6",
		"code2: o2; o5; switch(); o4; o1; o3; o6",
		"bridge: o2; o4; o5; -> code2@o3",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("figure output missing %q", frag)
		}
	}
}

func TestIntraNodeInvariant(t *testing.T) {
	for _, m := range []netsim.MachineModel{
		netsim.VAXstation2000, netsim.Sun3_100, netsim.SPARCstationSLC,
	} {
		r, err := IntraNode(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !r.EnhancedMatches {
			t.Errorf("%s: local %.1fms, migrated %.1fms, original-system %.1fms — must all match",
				r.Arch, r.LocalMS, r.MigratedMS, r.OriginalSysMS)
		}
	}
}

func TestConversionStudy(t *testing.T) {
	rs, err := ConversionStudy()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatConversionStudy(rs))
	byMode := map[kernel.ConvMode]ConvResult{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	orig := byMode[kernel.ModeOriginal]
	enh := byMode[kernel.ModeEnhanced]
	bat := byMode[kernel.ModeEnhancedBatched]
	fast := byMode[kernel.ModeEnhancedFastPath]
	if orig.ConvCalls != 0 {
		t.Errorf("original made %d conversion calls", orig.ConvCalls)
	}
	if !(enh.MovesMS > orig.MovesMS) {
		t.Error("enhanced must be slower than original")
	}
	// The paper's observation: 1-2 conversion calls per byte transferred.
	if enh.CallsPerByte < 1 || enh.CallsPerByte > 2.6 {
		t.Errorf("enhanced calls/byte = %.2f, paper observes 1-2", enh.CallsPerByte)
	}
	// The paper's guess: efficient routines cut the penalty roughly in half.
	penEnh := enh.MovesMS - orig.MovesMS
	penBat := bat.MovesMS - orig.MovesMS
	ratio := penBat / penEnh
	if ratio < 0.3 || ratio > 0.75 {
		t.Errorf("batched penalty ratio = %.2f, expected ~0.5", ratio)
	}
	// Homogeneous fast path: near-original speed.
	if fast.MovesMS > orig.MovesMS*1.15 {
		t.Errorf("fast path %.1f ms vs original %.1f ms", fast.MovesMS, orig.MovesMS)
	}
}
