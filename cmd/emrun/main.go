// Command emrun compiles an Emerald-subset program and runs it on a
// simulated network of heterogeneous workstations.
//
// Usage:
//
//	emrun [-net spec] [-mode enhanced|original|batched|fastpath]
//	      [-chaos plan] [-parallel] [-auto policy] [-dir n] [-nofuse]
//	      [-legacy] [-trace] [-stats] file.em
//
// The network spec is a comma-separated list of machine models, e.g.
// "sparc,vax,sun3,hp1,hp2" (default: the paper's Figure 1 network
// sun3,hp1,sparc,vax).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dir"
)

func main() {
	netSpec := flag.String("net", "sun3,hp1,sparc,vax", "comma-separated machine list")
	mode := flag.String("mode", "enhanced", "conversion mode: enhanced, original, batched, fastpath")
	trace := flag.Bool("trace", false, "print kernel event trace")
	stats := flag.Bool("stats", false, "print per-node statistics")
	vetLoad := flag.Bool("vetload", false, "nodes vet each code object's mobility metadata before loading it")
	parallel := flag.Bool("parallel", false, "run each node on its own goroutine (identical results; see DESIGN.md §12)")
	noSharpen := flag.Bool("nosharpen", false, "disable live-set sharpening (dead frame slots ship stale payload instead of canonical zero)")
	noFuse := flag.Bool("nofuse", false, "disable superinstruction fusion (dispatch on the plain predecoded path)")
	legacy := flag.Bool("legacy", false, "force the byte-at-a-time reference emulator (slowest; identical results)")
	chaosSpec := flag.String("chaos", "", "seeded fault plan, e.g. seed=7,drop=0.05,dup=0.02,crash=1@20000:50000 (see internal/chaos)")
	autoPolicy := flag.String("auto", "", "adaptive placement policy: greedy-colocate or load-balance (sequential engine only)")
	autoPeriod := flag.Int64("auto-period", 0, "placement tick period in simulated µs (0: kernel default)")
	autoLog := flag.Bool("auto-log", false, "print the placement decision log after the run")
	dirReplicas := flag.Int("dir", 0, "arm the replicated object directory with N replicas per shard (0: off)")
	dirLease := flag.Int64("dir-lease", 0, "directory read-lease duration in simulated µs (0: lease-free lookups)")
	dirNoGroup := flag.Bool("dir-nogroup", false, "disable batched group decrees (each cohort member decrees alone)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emrun [-net spec] [-mode m] [-chaos plan] [-parallel] [-auto policy] [-dir n] [-trace] [-stats] [-vetload] file.em")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "emrun:", err)
		os.Exit(1)
	}
	machines, err := core.ParseNetwork(*netSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emrun:", err)
		os.Exit(2)
	}
	cm, err := core.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emrun:", err)
		os.Exit(2)
	}
	if *dirReplicas != 0 {
		// Clamp out-of-range replica counts up front with a diagnostic
		// rather than letting the kernel mis-shard silently; the clamped
		// value is what actually arms the directory.
		dcfg, diags := dir.Config{Replicas: *dirReplicas}.NormalizeDiag(len(machines))
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, "emrun: -dir:", d)
		}
		*dirReplicas = dcfg.Replicas
	}
	opts := core.Options{Mode: cm, VetOnLoad: *vetLoad, Parallel: *parallel, NoSharpen: *noSharpen,
		NoFuse: *noFuse, LegacyDispatch: *legacy,
		AutoPolicy: *autoPolicy, AutoPeriodMicros: *autoPeriod, DirReplicas: *dirReplicas,
		DirLeaseMicros: *dirLease, DirNoGroupDecrees: *dirNoGroup}
	if *chaosSpec != "" {
		plan, err := chaos.ParsePlan(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emrun:", err)
			os.Exit(2)
		}
		opts.Chaos = plan
	}
	if *trace {
		opts.Trace = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	prog, err := core.Compile(string(src))
	if err != nil {
		for _, line := range core.Diagnostics(err) {
			fmt.Fprintln(os.Stderr, "emrun:", line)
		}
		os.Exit(1)
	}
	sys, err := core.NewSystem(prog, machines, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emrun:", err)
		os.Exit(1)
	}
	runErr := sys.Run()
	for _, line := range sys.Lines() {
		fmt.Println(line)
	}
	if *autoLog {
		for _, l := range sys.AutoDecisionLog() {
			fmt.Fprintln(os.Stderr, "auto:", l)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\nsimulated time: %.1f ms\n", sys.ElapsedMS())
		for _, n := range sys.Cluster.Nodes {
			fmt.Fprintf(os.Stderr, "node%d %-18s [%s] instrs=%d msgs=%d/%d migrations=%d\n",
				n.ID, n.Model.Name, n.Spec.Name, n.Instrs, n.MsgsSent, n.MsgsRecv, n.Migrations)
		}
		st := sys.Cluster.ConvStats()
		fmt.Fprintf(os.Stderr, "conversion calls=%d values=%d wire payload=%d bytes\n",
			st.Calls, st.Values, sys.Cluster.Net.PayloadLen)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "emrun:", runErr)
		os.Exit(1)
	}
	if blocked := sys.Cluster.BlockedThreads(); len(blocked) > 0 {
		fmt.Fprintln(os.Stderr, "emrun: blocked threads at exit:")
		for _, b := range blocked {
			fmt.Fprintln(os.Stderr, "  ", b)
		}
	}
}
