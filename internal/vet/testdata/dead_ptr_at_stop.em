// Negative fixture: pointer local s is assigned and read before the
// loop, but dead at the loop-bottom bus stop — every transfer through
// the loop swizzles a reference no path reads again.
object Scratch
  operation id(v: Int) -> (r: Int)
    r <- v
  end
end Scratch

object Worker
  operation work(n: Int) -> (r: Int)
    var s: Scratch <- new Scratch
    r <- s.id(n)
    var i: Int <- 0
    while i < n do
      r <- r + i
      i <- i + 1
    end
  end
end Worker

object Main
  process
    var w: Worker <- new Worker
    print(w.work(3))
  end process
end Main
