// Negative fixture: x is read but assigned on no path (always zero).
object Main
  process
    var x: Int
    print("x is ", x)
  end process
end Main
