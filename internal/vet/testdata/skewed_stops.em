// Negative fixture: compiled clean, then the golden test skews the first
// VAX stop's temporary-depth record (see golden_test.go) — the exact
// corruption that would garble every live temporary above the skew when a
// thread migrates through this operation.
object Counter
  monitor
    var n: Int <- 0
    operation bump() -> (r: Int)
      n <- n + 1
      r <- n
    end
  end monitor
end Counter

object Main
  process
    var c: Counter <- new Counter
    print(c.bump())
  end process
end Main
