package netsim

import (
	"bytes"
	"testing"
)

// dupAllInjector duplicates and corrupts every frame.
type dupAllInjector struct{}

func (dupAllInjector) Frame(at Micros, src, dst, payloadLen int) Verdict {
	return Verdict{Dup: true, DupDelay: 3, Corrupt: true, CorruptOff: 0, CorruptXor: 0xff}
}

// TestDupFrameDoesNotAliasPrimary: a duplicated frame must carry its own
// copy of the payload. If the duplicate aliased the primary's pooled
// buffer, the primary's corruption would bleed into the duplicate, and the
// primary's post-handler release would hand the duplicate's bytes back to
// the pool while still in flight — later frames would scribble over them.
func TestDupFrameDoesNotAliasPrimary(t *testing.T) {
	s := NewSim()
	net := NewNetwork(s)
	net.Inject = dupAllInjector{}
	var got [][]byte
	net.Attach(0, func(int, []byte) {})
	net.Attach(1, func(src int, payload []byte) {
		got = append(got, append([]byte(nil), payload...))
	})
	// Several frames in flight at once so the pool recycles between
	// deliveries; distinct first bytes tell the copies apart.
	const frames = 8
	s.AtNode(0, 0, func() {
		for i := 0; i < frames; i++ {
			if err := net.Send(0, 1, []byte{byte(i + 1), 0xaa, 0xbb}, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*frames {
		t.Fatalf("delivered %d copies, want %d", len(got), 2*frames)
	}
	// Per original frame i: one corrupted primary (first byte flipped) and
	// one pristine duplicate must both arrive, each with intact trailers.
	seen := map[byte][2]int{}
	for _, p := range got {
		if len(p) != 3 || !bytes.Equal(p[1:], []byte{0xaa, 0xbb}) {
			t.Fatalf("delivered payload scrambled: %x", p)
		}
		if orig := p[0] ^ 0xff; orig >= 1 && orig <= frames {
			c := seen[orig]
			c[0]++
			seen[orig] = c
		} else if p[0] >= 1 && p[0] <= frames {
			c := seen[p[0]]
			c[1]++
			seen[p[0]] = c
		} else {
			t.Fatalf("unrecognized payload %x", p)
		}
	}
	for i := byte(1); i <= frames; i++ {
		if seen[i] != [2]int{1, 1} {
			t.Errorf("frame %d: got %d corrupted primaries and %d pristine duplicates, want 1 and 1",
				i, seen[i][0], seen[i][1])
		}
	}
}
