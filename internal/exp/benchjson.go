// Machine-readable benchmark output.
//
// cmd/embench writes one BENCH_<name>.json file per experiment so that CI
// and plotting scripts can consume the reproduction's numbers without
// scraping the human tables. Every file pairs the paper's published value
// (where one exists) with our measured value in the same row. The encoding
// is deterministic: fixed struct field order, no maps, and no wall-clock
// fields — the same program on the same simulated network produces
// byte-identical files on every run.

package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BenchTable1Row is one Table 1 machine pair: the paper's ms for two thread
// moves (original and enhanced system, "N/A" where the authors' hardware
// had died) next to our simulated measurements.
type BenchTable1Row struct {
	Pair            string  `json:"pair"`
	SrcMachine      string  `json:"src_machine"`
	DstMachine      string  `json:"dst_machine"`
	PaperOriginalMS string  `json:"paper_original_ms"`
	PaperEnhancedMS string  `json:"paper_enhanced_ms"`
	OriginalMS      float64 `json:"original_ms"` // <0: original system can't run this pair
	EnhancedMS      float64 `json:"enhanced_ms"`
	OverheadPct     float64 `json:"overhead_pct"` // <0: no original baseline
	ConvCalls       uint64  `json:"conv_calls_per_two_moves"`
	WireBytes       uint64  `json:"wire_bytes_per_two_moves"`
}

// BenchTable1 is the BENCH_table1.json document.
type BenchTable1 struct {
	Benchmark string           `json:"benchmark"`
	Unit      string           `json:"unit"`
	Workload  string           `json:"workload"`
	Rows      []BenchTable1Row `json:"rows"`
}

// BenchTable1Doc converts measured Table 1 cells to the JSON document.
func BenchTable1Doc(cells []Cell) BenchTable1 {
	doc := BenchTable1{
		Benchmark: "table1",
		Unit:      "ms for two thread moves",
		Workload:  "Mobile13 (13-variable fragment, 25 round trips)",
	}
	for _, c := range cells {
		doc.Rows = append(doc.Rows, BenchTable1Row{
			Pair:            c.Pair.Label,
			SrcMachine:      c.Pair.A.Name,
			DstMachine:      c.Pair.B.Name,
			PaperOriginalMS: c.Pair.PaperOriginal,
			PaperEnhancedMS: c.Pair.PaperEnhanced,
			OriginalMS:      c.OriginalMS,
			EnhancedMS:      c.EnhancedMS,
			OverheadPct:     c.OverheadPct,
			ConvCalls:       c.ConvCalls,
			WireBytes:       c.BytesPerMoves,
		})
	}
	return doc
}

// BenchFig2Row is one level of the thread-state specialization hierarchy.
// Real (wall-clock) times are deliberately omitted: they vary run to run,
// and the deterministic work-unit and simulated-time columns carry the
// figure's claim.
type BenchFig2Row struct {
	Level     string  `json:"level"`
	State     string  `json:"thread_state"`
	WorkUnits uint64  `json:"work_units"`
	SimMS     float64 `json:"sim_ms"` // 0 for machine-independent levels
	Output    string  `json:"output"`
}

// BenchFig2 is the BENCH_fig2.json document.
type BenchFig2 struct {
	Benchmark string         `json:"benchmark"`
	Claim     string         `json:"claim"`
	Rows      []BenchFig2Row `json:"rows"`
}

// BenchFig2Doc converts Figure 2 rows to the JSON document.
func BenchFig2Doc(rows []Fig2Row) BenchFig2 {
	doc := BenchFig2{
		Benchmark: "fig2",
		Claim:     "same program at every specialization level prints identical output",
	}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, BenchFig2Row{
			Level:     r.Level,
			State:     r.Hardware,
			WorkUnits: r.Work,
			SimMS:     r.SimMS,
			Output:    r.Output,
		})
	}
	return doc
}

// BenchConvRow is one conversion-mode ablation measurement.
type BenchConvRow struct {
	Mode         string  `json:"mode"`
	MovesMS      float64 `json:"two_move_ms"`
	ConvCalls    uint64  `json:"conv_calls"`
	WireBytes    uint64  `json:"wire_bytes"`
	CallsPerByte float64 `json:"calls_per_byte"`
}

// BenchConv is the BENCH_conv.json document.
type BenchConv struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	Rows      []BenchConvRow `json:"rows"`
}

// BenchConvDoc converts conversion-study results to the JSON document.
func BenchConvDoc(rs []ConvResult) BenchConv {
	doc := BenchConv{
		Benchmark: "conv",
		Workload:  "Mobile13 on SPARC<->SPARC",
	}
	for _, r := range rs {
		doc.Rows = append(doc.Rows, BenchConvRow{
			Mode:         r.Mode.String(),
			MovesMS:      r.MovesMS,
			ConvCalls:    r.ConvCalls,
			WireBytes:    r.WireBytes,
			CallsPerByte: r.CallsPerByte,
		})
	}
	return doc
}

// WriteBenchJSON writes doc as indented JSON to dir/BENCH_<name>.json and
// returns the path. Struct-only documents make the bytes deterministic.
func WriteBenchJSON(dir, name string, doc any) (string, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("writing %s: %w", path, err)
	}
	return path, nil
}
