// Package ast defines the abstract syntax tree of the Emerald-subset
// language. A Program is a set of object declarations; execution starts at
// the process sections of objects instantiated by the loader (every object
// declaration with a process body gets one instance at program start, in
// declaration order).
package ast

import "repro/internal/lang/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- program

// Program is a parsed compilation unit.
type Program struct {
	Objects []*ObjectDecl
}

// ObjectDecl declares an object constructor ("class" in this subset;
// instances are created with `new Name(...)`, plus one implicit instance per
// declaration with a process body).
type ObjectDecl struct {
	NamePos   token.Pos
	Name      string
	Immutable bool
	Vars      []*VarDecl // unmonitored object variables
	Monitor   *MonitorDecl
	Ops       []*OpDecl
	Initially *Block // runs at creation, before the process
	Process   *Block // initial thread body, if any
}

func (d *ObjectDecl) Pos() token.Pos { return d.NamePos }

// Op returns the operation (monitored or not) named name, or nil.
func (d *ObjectDecl) Op(name string) *OpDecl {
	for _, op := range d.Ops {
		if op.Name == name {
			return op
		}
	}
	if d.Monitor != nil {
		for _, op := range d.Monitor.Ops {
			if op.Name == name {
				return op
			}
		}
	}
	return nil
}

// AllVars returns object variables, unmonitored first then monitored.
func (d *ObjectDecl) AllVars() []*VarDecl {
	vs := append([]*VarDecl(nil), d.Vars...)
	if d.Monitor != nil {
		vs = append(vs, d.Monitor.Vars...)
	}
	return vs
}

// AllOps returns all operations, unmonitored first then monitored.
func (d *ObjectDecl) AllOps() []*OpDecl {
	ops := append([]*OpDecl(nil), d.Ops...)
	if d.Monitor != nil {
		ops = append(ops, d.Monitor.Ops...)
	}
	return ops
}

// MonitorDecl is the monitored section of an object: its variables may only
// be touched by its operations, which hold the object monitor while running.
type MonitorDecl struct {
	MonPos token.Pos
	Vars   []*VarDecl
	Ops    []*OpDecl
}

func (d *MonitorDecl) Pos() token.Pos { return d.MonPos }

// VarDecl declares an object variable or a local variable.
type VarDecl struct {
	VarPos token.Pos
	Name   string
	Type   *TypeExpr
	Init   Expr // optional
}

func (d *VarDecl) Pos() token.Pos { return d.VarPos }

// Param is a formal argument or result of an operation.
type Param struct {
	NamePos token.Pos
	Name    string
	Type    *TypeExpr
}

func (p *Param) Pos() token.Pos { return p.NamePos }

// OpDecl declares an operation or function. Results are named; falling off
// the end (or `return`) yields the current values of the result variables.
type OpDecl struct {
	OpPos     token.Pos
	Name      string
	Function  bool // declared with `function`: must not mutate object state
	Monitored bool // set by the parser for ops inside a monitor section
	Params    []*Param
	Results   []*Param
	Body      *Block
}

func (d *OpDecl) Pos() token.Pos { return d.OpPos }

// TypeExpr is a syntactic type: a named type or Array[Elem].
type TypeExpr struct {
	NamePos token.Pos
	Name    string    // "Int", "Bool", "Real", "String", "Node", "Condition", "Any", object name, "Array"
	Elem    *TypeExpr // for Array
}

func (t *TypeExpr) Pos() token.Pos { return t.NamePos }

// String renders the type expression.
func (t *TypeExpr) String() string {
	if t.Name == "Array" && t.Elem != nil {
		return "Array[" + t.Elem.String() + "]"
	}
	return t.Name
}

// ---------------------------------------------------------------- statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a statement sequence.
type Block struct {
	LPos  token.Pos
	Stmts []Stmt
}

func (b *Block) Pos() token.Pos { return b.LPos }

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

func (s *DeclStmt) Pos() token.Pos { return s.Decl.VarPos }
func (s *DeclStmt) stmt()          {}

// AssignStmt assigns Rhs to Lhs (an identifier or index expression).
type AssignStmt struct {
	Lhs Expr
	Rhs Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.Lhs.Pos() }
func (s *AssignStmt) stmt()          {}

// ExprStmt evaluates an expression for effect (an invocation).
type ExprStmt struct{ X Expr }

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmt()          {}

// IfStmt is if/elseif/else. Elifs pair conditions with blocks.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  *Block
	Elifs []ElseIf
	Else  *Block // may be nil
}

// ElseIf is one elseif arm.
type ElseIf struct {
	Cond Expr
	Then *Block
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (s *IfStmt) stmt()          {}

// LoopStmt is `loop ... end`; exits via ExitStmt.
type LoopStmt struct {
	LoopPos token.Pos
	Body    *Block
}

func (s *LoopStmt) Pos() token.Pos { return s.LoopPos }
func (s *LoopStmt) stmt()          {}

// WhileStmt is `while cond do ... end`.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     *Block
}

func (s *WhileStmt) Pos() token.Pos { return s.WhilePos }
func (s *WhileStmt) stmt()          {}

// ExitStmt leaves the innermost loop, optionally `exit when cond`.
type ExitStmt struct {
	ExitPos token.Pos
	When    Expr // may be nil
}

func (s *ExitStmt) Pos() token.Pos { return s.ExitPos }
func (s *ExitStmt) stmt()          {}

// ReturnStmt returns from the current operation (result variables carry the
// values) or terminates the current process.
type ReturnStmt struct{ RetPos token.Pos }

func (s *ReturnStmt) Pos() token.Pos { return s.RetPos }
func (s *ReturnStmt) stmt()          {}

// MoveStmt is `move x to target` (target: Node expression).
type MoveStmt struct {
	MovePos token.Pos
	X       Expr
	To      Expr
}

func (s *MoveStmt) Pos() token.Pos { return s.MovePos }
func (s *MoveStmt) stmt()          {}

// FixStmt is `fix x at target` or `refix x at target`.
type FixStmt struct {
	FixPos token.Pos
	Refix  bool
	X      Expr
	At     Expr
}

func (s *FixStmt) Pos() token.Pos { return s.FixPos }
func (s *FixStmt) stmt()          {}

// UnfixStmt is `unfix x`.
type UnfixStmt struct {
	UnfixPos token.Pos
	X        Expr
}

func (s *UnfixStmt) Pos() token.Pos { return s.UnfixPos }
func (s *UnfixStmt) stmt()          {}

// WaitStmt is `wait c` on a Condition variable; the monitor is released while
// waiting and reacquired before continuing.
type WaitStmt struct {
	WaitPos token.Pos
	Cond    Expr
}

func (s *WaitStmt) Pos() token.Pos { return s.WaitPos }
func (s *WaitStmt) stmt()          {}

// SignalStmt is `signal c`: wakes one waiter, if any.
type SignalStmt struct {
	SigPos token.Pos
	Cond   Expr
}

func (s *SignalStmt) Pos() token.Pos { return s.SigPos }
func (s *SignalStmt) stmt()          {}

// ---------------------------------------------------------------- expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Ident names a variable, parameter, result, or object declaration.
type Ident struct {
	NamePos token.Pos
	Name    string
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) expr()          {}

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) expr()          {}

// RealLit is a floating-point literal.
type RealLit struct {
	LitPos token.Pos
	Value  float64
}

func (e *RealLit) Pos() token.Pos { return e.LitPos }
func (e *RealLit) expr()          {}

// StringLit is a string literal (decoded).
type StringLit struct {
	LitPos token.Pos
	Value  string
}

func (e *StringLit) Pos() token.Pos { return e.LitPos }
func (e *StringLit) expr()          {}

// BoolLit is true/false.
type BoolLit struct {
	LitPos token.Pos
	Value  bool
}

func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (e *BoolLit) expr()          {}

// NilLit is the nil reference.
type NilLit struct{ LitPos token.Pos }

func (e *NilLit) Pos() token.Pos { return e.LitPos }
func (e *NilLit) expr()          {}

// SelfExpr is `self`.
type SelfExpr struct{ SelfPos token.Pos }

func (e *SelfExpr) Pos() token.Pos { return e.SelfPos }
func (e *SelfExpr) expr()          {}

// Unary is -x or !x.
type Unary struct {
	OpPos token.Pos
	Op    token.Kind // Minus or Not
	X     Expr
}

func (e *Unary) Pos() token.Pos { return e.OpPos }
func (e *Unary) expr()          {}

// Binary is x op y.
type Binary struct {
	Op   token.Kind
	X, Y Expr
}

func (e *Binary) Pos() token.Pos { return e.X.Pos() }
func (e *Binary) expr()          {}

// Invoke is recv.op(args), or a builtin/self call op(args) with Recv nil.
type Invoke struct {
	Recv   Expr // nil for bare calls (self-invocation or builtin)
	OpPos  token.Pos
	OpName string
	Args   []Expr
}

func (e *Invoke) Pos() token.Pos {
	if e.Recv != nil {
		return e.Recv.Pos()
	}
	return e.OpPos
}
func (e *Invoke) expr() {}

// New creates an object: `new Name(args)` or `new Array[T](n)`.
type New struct {
	NewPos token.Pos
	Type   *TypeExpr
	Args   []Expr
}

func (e *New) Pos() token.Pos { return e.NewPos }
func (e *New) expr()          {}

// Index is a[i].
type Index struct {
	X     Expr
	LBPos token.Pos
	I     Expr
}

func (e *Index) Pos() token.Pos { return e.X.Pos() }
func (e *Index) expr()          {}

// Builtin names recognized for bare Invoke calls. The type checker maps a
// bare call to one of these when the name matches and no self-operation
// shadows it.
const (
	BuiltinPrint    = "print"    // print(args...): writes values, newline-terminated
	BuiltinNodes    = "nodes"    // nodes() Int: number of nodes in the network
	BuiltinThisNode = "thisnode" // thisnode() Node: node currently executing
	BuiltinNodeAt   = "node"     // node(i Int) Node: i'th node (0-based)
	BuiltinLocate   = "locate"   // locate(x) Node: current location of object x
	BuiltinTimeMS   = "timems"   // timems() Int: simulated time, milliseconds
	BuiltinYield    = "yield"    // yield(): let other threads run
	BuiltinStr      = "str"      // str(x Int|Real|Bool) String
	BuiltinAbs      = "abs"      // abs(x Int) Int
	BuiltinSize     = "size"     // method-style on arrays/strings: a.size()
)
