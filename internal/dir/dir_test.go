package dir

import (
	"testing"

	"repro/internal/oid"
)

func TestNormalizeAndQuorum(t *testing.T) {
	c := Config{Replicas: 9, Shards: 0}.Normalize(4)
	if c.Replicas != 4 || c.Shards != 4 {
		t.Fatalf("normalize clamped to %+v", c)
	}
	if q := (Config{Replicas: 3}).Quorum(); q != 2 {
		t.Fatalf("quorum(3) = %d", q)
	}
	if q := (Config{Replicas: 1}).Quorum(); q != 1 {
		t.Fatalf("quorum(1) = %d", q)
	}
	if q := (Config{Replicas: 4}).Quorum(); q != 3 {
		t.Fatalf("quorum(4) = %d", q)
	}
}

func TestReplicaSetWraps(t *testing.T) {
	got := ReplicaSet(3, 3, 4)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("replica set %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica set %v, want %v", got, want)
		}
	}
}

func TestAcceptorPromiseOrdering(t *testing.T) {
	var a Acceptor
	ok, _, accBal, _ := a.Prepare(10)
	if !ok || accBal != 0 {
		t.Fatalf("first prepare refused")
	}
	if ok, promised, _, _ := a.Prepare(5); ok || promised != 10 {
		t.Fatalf("lower prepare accepted (ok=%v promised=%d)", ok, promised)
	}
	if ok, _ := a.Accept(10, 2); !ok {
		t.Fatalf("accept at promised ballot refused")
	}
	// A later prepare must surface the accepted value.
	ok, _, accBal, accNode := a.Prepare(20)
	if !ok || accBal != 10 || accNode != 2 {
		t.Fatalf("prepare(20) = ok=%v accBal=%d accNode=%d", ok, accBal, accNode)
	}
	// An accept below the new promise is refused.
	if ok, _ := a.Accept(10, 3); ok {
		t.Fatalf("stale accept succeeded")
	}
}

func TestStoreLearnMonotoneEpoch(t *testing.T) {
	s := NewStore()
	o := oid.ForRuntime(0, 1)
	if !s.Learn(o, 2, 1) {
		t.Fatalf("first learn rejected")
	}
	if s.Learn(o, 3, 1) {
		t.Fatalf("equal-epoch learn overwrote")
	}
	if s.Learn(o, 3, 0) {
		t.Fatalf("older-epoch learn overwrote")
	}
	if !s.Learn(o, 3, 2) {
		t.Fatalf("newer-epoch learn rejected")
	}
	r, ok := s.Lookup(o)
	if !ok || r.Node != 3 || r.Epoch != 2 {
		t.Fatalf("lookup = %+v ok=%v", r, ok)
	}
	if _, ok := s.Lookup(oid.ForRuntime(1, 9)); ok {
		t.Fatalf("lookup of unknown object hit")
	}
}

func TestProposalHappyPath(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	if b == 0 {
		t.Fatalf("zero ballot")
	}
	if p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("quorum after one promise")
	}
	if !p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("no quorum after two promises")
	}
	if v := p.ChosenValue(); v != 3 {
		t.Fatalf("chose %d, want own value 3", v)
	}
	if p.OnAccepted(b, true, 0) {
		t.Fatalf("chosen after one accept")
	}
	if !p.OnAccepted(b, true, 0) {
		t.Fatalf("not chosen after quorum accepts")
	}
	if !p.Done() {
		t.Fatalf("not done after chosen")
	}
}

func TestProposalAdoptsAcceptedValue(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	p.OnPromise(b, true, 7, 1, 0) // a replica already accepted value 1 at ballot 7
	p.OnPromise(b, true, 0, -1, 0)
	if v := p.ChosenValue(); v != 1 {
		t.Fatalf("chose %d, want adopted value 1", v)
	}
}

func TestProposalRestartJumpsNacks(t *testing.T) {
	p := NewProposal(Slot{OID: 5, Epoch: 2}, 3, 0, 2)
	b := p.Start()
	// Nacked: someone promised a much higher ballot.
	if p.OnPromise(b, false, 0, -1, 99<<16) {
		t.Fatalf("nack advanced phase")
	}
	b2 := p.Start()
	if b2 <= 99<<16 {
		t.Fatalf("restart ballot %d did not jump past nacked ballot", b2)
	}
	// Stale replies from the old round are ignored.
	if p.OnPromise(b, true, 0, -1, 0) {
		t.Fatalf("stale-round promise counted")
	}
	if !p.OnPromise(b2, true, 0, -1, 0) || p.Done() {
		// first promise of round 2; need one more
		if p.Done() {
			t.Fatalf("done too early")
		}
	}
}

func TestProposalDistinctBallotsPerNode(t *testing.T) {
	a := NewProposal(Slot{OID: 1, Epoch: 1}, 0, 0, 1).Start()
	b := NewProposal(Slot{OID: 1, Epoch: 1}, 0, 1, 1).Start()
	if a == b {
		t.Fatalf("two proposers issued the same ballot %d", a)
	}
}

func TestShardOfStable(t *testing.T) {
	o := oid.ForRuntime(2, 7)
	if ShardOf(o, 4) != ShardOf(o, 4) {
		t.Fatalf("shard not stable")
	}
	if s := ShardOf(o, 4); s < 0 || s > 3 {
		t.Fatalf("shard %d out of range", s)
	}
}
