// Per-node mark-and-sweep garbage collection.
//
// The paper notes that the bus-stop technique is "also used to provide the
// garbage collector with well-defined states for easy pointer
// identification" (§2.2.1, citing [JJ92, Juu93]): because threads are only
// ever observable at bus stops, the compiler's templates plus the per-stop
// temporary descriptions identify every pointer exactly — in register
// variable homes, activation-record slots, live evaluation-stack
// temporaries and object data areas. This collector is that use: it walks
// thread fragments with exactly the same template machinery the migration
// engine uses.
//
// Collection is per node and conservative about the network: any object
// whose OID has ever crossed the wire (exported or imported) is pinned,
// since a remote node may still hold a reference. (The full Emerald system
// had a distributed collector; that is beyond this reproduction's scope and
// orthogonal to the paper's contribution.)
package kernel

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/obs"
)

// GCStats reports one collection.
type GCStats struct {
	Live, Freed int
	BytesFreed  uint32
}

// Collect runs a stop-the-world mark-and-sweep on this node. All threads
// are at bus stops whenever the kernel runs, so the heap is always in a
// well-defined state.
func (n *Node) Collect() (GCStats, error) {
	marked := map[*Obj]bool{}
	var work []*Obj
	mark := func(o *Obj) {
		if o != nil && !marked[o] {
			marked[o] = true
			work = append(work, o)
		}
	}
	markAddr := func(addr uint32) error {
		if addr == 0 {
			return nil
		}
		o, err := n.objAt(addr)
		if err != nil {
			return err
		}
		mark(o)
		return nil
	}

	// Roots 1: every pointer slot of every thread fragment, identified
	// through templates and bus-stop temporary descriptions.
	ids := make([]uint32, 0, len(n.frags))
	for id := range n.frags {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.frags[id]
		if f.fn == nil {
			continue
		}
		frames, err := n.walkFrames(f)
		if err != nil {
			return GCStats{}, fmt.Errorf("gc: %w", err)
		}
		for _, fi := range frames {
			mark(fi.self)
			t := fi.lf.fc.Template
			for _, h := range t.Vars {
				if h.Kind != ir.VKPtr {
					continue
				}
				var w uint32
				if h.InReg {
					w = fi.regs[h.Reg&0xf]
				} else {
					w = n.ld32(fi.fp + uint32(h.Off))
				}
				if err := markAddr(w); err != nil {
					return GCStats{}, fmt.Errorf("gc: frame %s var %s: %w", fi.lf.name(), h.Name, err)
				}
			}
			if fi.entry {
				continue
			}
			for j := 0; j < fi.tempDepth; j++ {
				if tempKindAt(fi.stop, j) != ir.VKPtr {
					continue
				}
				w := n.ld32(fi.fp + uint32(t.TempOff) + uint32(4*j))
				if err := markAddr(w); err != nil {
					return GCStats{}, fmt.Errorf("gc: frame %s temp %d: %w", fi.lf.name(), j, err)
				}
			}
		}
	}

	// Roots 2: interned string literals (referenced from literal tables).
	for _, lf := range n.descs {
		for si := range lf.fc.Strings {
			if err := markAddr(n.ld32(lf.litBase + uint32(4*si))); err != nil {
				return GCStats{}, fmt.Errorf("gc: literal table: %w", err)
			}
		}
	}

	// Roots 3: objects known to the rest of the network (conservative
	// pinning), and proxies (one-word table stubs, trivially cheap).
	for _, o := range n.objects {
		if n.exported[o.OID] || !o.Resident {
			mark(o)
		}
	}

	// Trace.
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		if !o.Resident {
			continue
		}
		switch o.Kind {
		case ObjPlain:
			for i, k := range o.Code.oc.Template.Slots {
				if k != ir.VKPtr {
					continue
				}
				if err := markAddr(n.ld32(o.slotAddr(i))); err != nil {
					return GCStats{}, fmt.Errorf("gc: object %v slot %d: %w", o.OID, i, err)
				}
			}
		case ObjArray:
			if o.ElemKind == ir.VKPtr {
				for i := uint32(0); i < o.Len; i++ {
					if err := markAddr(n.ld32(o.slotAddr(int(i)))); err != nil {
						return GCStats{}, fmt.Errorf("gc: array %v: %w", o.OID, err)
					}
				}
			}
		}
	}

	// Sweep.
	var stats GCStats
	for id, o := range n.objects {
		if marked[o] {
			stats.Live++
			continue
		}
		if !o.Resident {
			continue // proxies already marked above; defensive
		}
		size := n.sizeOf(o)
		n.free(o.Addr, size)
		stats.BytesFreed += size
		stats.Freed++
		delete(n.byAddr, o.Addr)
		delete(n.objects, id)
		n.table[o.TableIdx] = nil
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvGCCycle, A: uint64(stats.Freed), B: uint64(stats.BytesFreed)})
	n.cluster.Rec.Metrics().Add("gc_cycles",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	return stats, nil
}

// sizeOf returns the allocated byte size of a resident object.
func (n *Node) sizeOf(o *Obj) uint32 {
	switch o.Kind {
	case ObjPlain:
		return alignUp(arch.ObjDataOff + uint32(o.Code.oc.Template.DataSize()))
	case ObjArray:
		return alignUp(arch.ArrDataOff + 4*o.Len)
	default: // string
		return alignUp(arch.ArrDataOff + o.Len)
	}
}

func alignUp(v uint32) uint32 { return (v + 3) &^ 3 }

// free returns a block to the size-bucketed free list.
func (n *Node) free(addr, size uint32) {
	if n.freeLists == nil {
		n.freeLists = map[uint32][]uint32{}
	}
	n.freeLists[size] = append(n.freeLists[size], addr)
}

// CollectAll runs a collection on every node of the cluster.
func (c *Cluster) CollectAll() (GCStats, error) {
	var total GCStats
	for _, n := range c.Nodes {
		s, err := n.Collect()
		if err != nil {
			return total, err
		}
		total.Live += s.Live
		total.Freed += s.Freed
		total.BytesFreed += s.BytesFreed
	}
	return total, nil
}

// HeapObjects counts resident objects (diagnostics for GC tests).
func (n *Node) HeapObjects() int {
	k := 0
	for _, o := range n.objects {
		if o.Resident {
			k++
		}
	}
	return k
}
