// Package lexer converts Emerald-subset source text into tokens.
//
// Comments run from "//" to end of line ("%" is the modulo operator, unlike
// classic Emerald where it introduced comments). String literals use double
// quotes with \n \t \" \\ escapes.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
)

// Error is a lexical error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans one source file.
type Lexer struct {
	src  string
	off  int // byte offset of next unread char
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		if kind == token.Ident {
			return token.Token{Kind: token.Ident, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: kind, Pos: pos}
	case isDigit(c):
		return l.number(pos)
	case c == '"':
		return l.stringLit(pos)
	}
	two := func(second byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '<':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.Assign, Pos: pos}
		}
		return two('=', token.Le, token.Lt)
	case '>':
		return two('=', token.Ge, token.Gt)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.Eq, Pos: pos}
		}
		l.errorf(pos, "unexpected '='; assignment is '<-', equality is '=='")
		return token.Token{Kind: token.Illegal, Lit: "=", Pos: pos}
	case '!':
		return two('=', token.NotEq, token.Not)
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.Arrow, Pos: pos}
		}
		return token.Token{Kind: token.Minus, Pos: pos}
	case '+':
		return token.Token{Kind: token.Plus, Pos: pos}
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}
	case '&':
		return token.Token{Kind: token.And, Pos: pos}
	case '|':
		return token.Token{Kind: token.Or, Pos: pos}
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}
	case '.':
		return token.Token{Kind: token.Dot, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.Illegal, Lit: string(c), Pos: pos}
}

func (l *Lexer) number(pos token.Pos) token.Token {
	start := l.off - 1
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	// A real literal requires a digit after the dot, so "3.foo" lexes as
	// INT DOT IDENT (method call on an integer).
	if l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.Real, Lit: l.src[start:l.off], Pos: pos}
	}
	return token.Token{Kind: token.Int, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) stringLit(pos token.Pos) token.Token {
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.Illegal, Lit: b.String(), Pos: pos}
		}
		c := l.advance()
		switch c {
		case '"':
			return token.Token{Kind: token.String, Lit: b.String(), Pos: pos}
		case '\n':
			l.errorf(pos, "newline in string literal")
			return token.Token{Kind: token.Illegal, Lit: b.String(), Pos: pos}
		case '\\':
			if l.off >= len(l.src) {
				l.errorf(pos, "unterminated string literal")
				return token.Token{Kind: token.Illegal, Lit: b.String(), Pos: pos}
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				l.errorf(pos, "unknown escape \\%c", e)
				b.WriteByte(e)
			}
		default:
			b.WriteByte(c)
		}
	}
}

// All lexes the whole input, returning every token up to and including EOF.
func All(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
