// Threads: fragments of distributed call stacks, frame management through
// templates, and the kernel trap dispatcher (every trap site is a bus
// stop).

package kernel

import (
	"fmt"
	"strconv"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// FragState is a fragment's scheduling state.
type FragState byte

// Fragment states.
const (
	FragStateReady FragState = iota
	FragStateRunning
	FragStateBlockedCall  // awaiting a Return from a remote callee
	FragStateBlockedEntry // queued on a monitor
	FragStateWaitCond     // waiting on a condition variable
	FragStateDead
	// FragStateInTransit suspends a fragment while an object whose frames it
	// carries is mid-move under the two-phase commit protocol (chaos runs
	// only); the previous state is restored on abort.
	FragStateInTransit
)

func (s FragState) String() string {
	switch s {
	case FragStateReady:
		return "ready"
	case FragStateRunning:
		return "running"
	case FragStateBlockedCall:
		return "blocked-call"
	case FragStateBlockedEntry:
		return "blocked-entry"
	case FragStateWaitCond:
		return "wait-cond"
	case FragStateDead:
		return "dead"
	case FragStateInTransit:
		return "in-transit"
	}
	return "?"
}

// Link addresses the stack piece below this fragment's oldest activation.
type Link struct {
	Node int32 // -1: none (thread root)
	Frag uint32
}

// Frag is the node-local piece of a (possibly distributed) thread: a
// contiguous run of activation records in a stack region, plus CPU state
// when it holds the thread's active top.
type Frag struct {
	ID     uint32
	Status FragState
	CPU    arch.CPU
	fn     *loadedFunc // function of the top activation
	Link   Link
	// Stack region.
	stackBase, stackLimit uint32
	// konts are kernel continuations keyed from synthetic frames
	// (retDescKont): object-creation chains.
	konts []func()
	// nframes tracks the number of activation records (diagnostics).
	nframes int
	// condIndex records which condition a FragStateWaitCond fragment waits on.
	condIndex uint16
	// queued guards against double-enqueueing.
	queued bool
	// waitNode is the node a FragStateBlockedCall fragment awaits a Return
	// from (-1: none); crash suspicion fails such waiters with ErrNodeDown.
	waitNode int32
}

func (f *Frag) topName() string {
	if f.fn == nil {
		return "<no frames>"
	}
	return f.fn.name()
}

// newFrag allocates a fragment with a fresh stack region.
func (n *Node) newFrag() *Frag {
	n.fragCtr++
	id := uint32(n.ID)<<24 | n.fragCtr
	base, err := n.alloc(n.cluster.StackSize)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	f := &Frag{ID: id, Status: FragStateReady, Link: Link{Node: -1},
		stackBase: base, stackLimit: base + n.cluster.StackSize, waitNode: -1}
	f.CPU.FP = base // empty: first frame goes at base
	n.frags[id] = f
	return f
}

// ---------------------------------------------------------------- frames

// frameTop returns the first free byte above the current top frame.
func (n *Node) frameTop(f *Frag) uint32 {
	if f.fn == nil {
		return f.stackBase
	}
	return f.CPU.FP + uint32(f.fn.fc.Template.Size)
}

// pushFrame creates an activation of lf with the given receiver and
// arguments (machine words, one per parameter), saving the caller's state
// per the callee's template. retDesc/retPC address the caller; for
// kernel-continuation frames retDesc is retDescKont, for remote callers
// retDescRemote.
func (n *Node) pushFrame(f *Frag, lf *loadedFunc, self *Obj, args []uint32,
	retDesc, retPC uint32) error {
	t := lf.fc.Template
	fp := n.frameTop(f)
	if fp+uint32(t.Size) > f.stackLimit {
		return fmt.Errorf("stack overflow in %s", lf.name())
	}
	n.charge(uint64(n.cluster.Costs.CallCycles) +
		uint64(n.cluster.Costs.PerArgCycles)*uint64(len(args)))
	// Zero the record.
	for i := fp; i < fp+uint32(t.Size); i++ {
		n.Mem[i] = 0
	}
	n.st32(fp+uint32(t.SavedFPOff), f.CPU.FP)
	n.st32(fp+uint32(t.RetDescOff), retDesc)
	n.st32(fp+uint32(t.RetPCOff), retPC)
	selfAddr := uint32(0)
	if self != nil {
		var err error
		selfAddr, err = n.ensureAddressable(self)
		if err != nil {
			return err
		}
	}
	n.st32(fp+uint32(t.SelfOff), selfAddr)
	n.st32(fp+uint32(t.TempBaseOff), fp+uint32(t.TempOff))
	// Callee-save: the caller's values of the home registers this function
	// uses.
	for i, r := range t.SavedRegs {
		n.st32(fp+uint32(t.SavedRegsOff)+uint32(4*i), f.CPU.Regs[r&0xf])
	}
	// Parameters into their homes (registers or record slots); remaining
	// variables stay zero.
	for i, v := range args {
		h := t.Vars[i]
		if h.InReg {
			f.CPU.Regs[h.Reg&0xf] = v
		} else {
			n.st32(fp+uint32(h.Off), v)
		}
	}
	// Zero the register homes of non-parameter variables (so stale caller
	// values cannot leak into uninitialized callee variables).
	for i := len(args); i < t.NumVars; i++ {
		if h := t.Vars[i]; h.InReg {
			f.CPU.Regs[h.Reg&0xf] = 0
		}
	}
	f.CPU.FP = fp
	f.CPU.PC = 0
	f.CPU.Self = selfAddr
	f.CPU.TempBase = fp + uint32(t.TempOff)
	f.CPU.TempDepth = 0
	f.CPU.LitBase = lf.litBase
	f.fn = lf
	f.nframes++
	return nil
}

// popFrame unwinds the top activation: restores saved registers and the
// caller's frame context (PC, self, temp state — re-established from the
// bus stop at the return address). It reports whether a kernel
// continuation must run and whether a local caller was restored.
func (n *Node) popFrame(f *Frag) (kont, hasCaller bool, err error) {
	t := f.fn.fc.Template
	fp := f.CPU.FP
	n.charge(uint64(n.cluster.Costs.RetCycles))
	raw := n.ld32(fp + uint32(t.RetDescOff))
	retPC := n.ld32(fp + uint32(t.RetPCOff))
	kont = raw&kontFlag != 0
	desc := raw &^ kontFlag
	for i, r := range t.SavedRegs {
		f.CPU.Regs[r&0xf] = n.ld32(fp + uint32(t.SavedRegsOff) + uint32(4*i))
	}
	f.CPU.FP = n.ld32(fp + uint32(t.SavedFPOff))
	f.nframes--
	if desc == descNone {
		f.fn = nil
		return kont, false, nil
	}
	caller, err := n.funcByDesc(desc)
	if err != nil {
		return kont, false, err
	}
	ct := caller.fc.Template
	f.fn = caller
	f.CPU.PC = retPC
	f.CPU.Self = n.ld32(f.CPU.FP + uint32(ct.SelfOff))
	f.CPU.TempBase = f.CPU.FP + uint32(ct.TempOff)
	f.CPU.LitBase = caller.litBase
	stop, serr := caller.fc.Stops.ByPC(retPC)
	if serr != nil {
		return kont, true, fmt.Errorf("return address %#x in %s is not a bus stop: %v",
			retPC, caller.name(), serr)
	}
	f.CPU.TempDepth = int32(stop.TempDepth)
	return kont, true, nil
}

// resultWord reads the first result variable of the (just returning) top
// frame of f.
func (n *Node) resultWord(f *Frag) uint32 {
	t := f.fn.fc.Template
	if t.NumResults == 0 {
		return 0
	}
	h := t.Vars[t.NumParams] // first result follows the parameters
	if h.InReg {
		return f.CPU.Regs[h.Reg&0xf]
	}
	return n.ld32(f.CPU.FP + uint32(h.Off))
}

// resultKind returns the first result's kind (int for result-less ops).
func resultKind(lf *loadedFunc) ir.VK {
	t := lf.fc.Template
	if t.NumResults == 0 {
		return ir.VKInt
	}
	return t.Vars[t.NumParams].Kind
}

// pushTemp pushes a machine word onto f's evaluation stack.
func (n *Node) pushTemp(f *Frag, v uint32) {
	n.st32(f.CPU.TempBase+uint32(4*f.CPU.TempDepth), v)
	f.CPU.TempDepth++
}

// popTemp pops a machine word.
func (n *Node) popTemp(f *Frag) uint32 {
	f.CPU.TempDepth--
	return n.ld32(f.CPU.TempBase + uint32(4*f.CPU.TempDepth))
}

// ---------------------------------------------------------------- traps

// handleTrap services a kernel trap from f. It returns true if f should
// continue executing in the same slice (atomic monitor exit only).
func (n *Node) handleTrap(f *Frag, tr *arch.Trap) bool {
	c := &n.cluster.Costs
	switch tr.Kind {
	case arch.TrapFault:
		n.fault(f, tr.Fault.String()+" in "+f.topName())
		return false
	case arch.TrapYield:
		n.charge(uint64(c.SyscallCycles))
		n.enqueue(f)
		return false
	case arch.TrapRet:
		n.handleReturn(f)
		return false
	case arch.TrapCall:
		n.handleCall(f, tr)
		return false
	case arch.TrapNew:
		n.handleNew(f, tr)
		return false
	case arch.TrapNewArray:
		n.charge(uint64(c.SyscallCycles))
		length := n.popTemp(f)
		if int32(length) < 0 {
			n.fault(f, "negative array length")
			return false
		}
		a, err := n.newArray(ir.VK(tr.B), length)
		if err != nil {
			n.fault(f, err.Error())
			return false
		}
		n.pushTemp(f, a.Addr)
		n.enqueue(f)
		return false
	case arch.TrapPrint:
		n.handlePrint(f, tr)
		n.enqueue(f)
		return false
	case arch.TrapNodes:
		n.charge(uint64(c.SyscallCycles))
		n.pushTemp(f, uint32(len(n.cluster.Nodes)))
		n.enqueue(f)
		return false
	case arch.TrapThisNode:
		n.charge(uint64(c.SyscallCycles))
		n.pushTemp(f, uint32(n.ID))
		n.enqueue(f)
		return false
	case arch.TrapNodeAt:
		n.charge(uint64(c.SyscallCycles))
		i := int32(n.popTemp(f))
		if i < 0 || int(i) >= len(n.cluster.Nodes) {
			n.fault(f, "node("+strconv.Itoa(int(i))+") out of range")
			return false
		}
		n.pushTemp(f, uint32(i))
		n.enqueue(f)
		return false
	case arch.TrapTimeMS:
		n.charge(uint64(c.SyscallCycles))
		// The node's virtual work clock: includes all CPU work charged so
		// far (event timestamps can lag the work accounted within a slice).
		n.pushTemp(f, uint32(n.CPU.FreeAt/1000))
		n.enqueue(f)
		return false
	case arch.TrapStrOf:
		n.handleStrOf(f, tr)
		return false
	case arch.TrapConcat:
		n.handleConcat(f)
		return false
	case arch.TrapLocate:
		n.charge(uint64(c.SyscallCycles))
		addr := n.popTemp(f)
		o, err := n.objAt(addr)
		if err != nil {
			n.fault(f, "locate: "+err.Error())
			return false
		}
		if o.Resident {
			n.pushTemp(f, uint32(n.ID))
			n.enqueue(f)
			return false
		}
		f.Status = FragStateBlockedCall
		if n.cluster.dirOn {
			// One shard query refreshes the proxy to the decreed home, so
			// the chase below is ≤1 hop (or runs unchanged on degrade).
			n.dirLocate(f, o)
			return false
		}
		// Chase the forwarding chain; the resident node replies directly.
		n.sendMsg(o.LastKnown, &wire.Locate{
			Target: o.OID, Origin: int32(n.ID), ReplyFrag: f.ID,
		})
		return false
	case arch.TrapMove, arch.TrapFix, arch.TrapRefix:
		n.handleMoveFamily(f, tr)
		return false
	case arch.TrapUnfix:
		n.charge(uint64(c.SyscallCycles))
		addr := n.popTemp(f)
		o, err := n.objAt(addr)
		if err != nil {
			n.fault(f, "unfix: "+err.Error())
			return false
		}
		if o.Resident {
			o.Fixed = false
		} else {
			n.sendMsg(o.LastKnown, &wire.UnfixReq{Target: o.OID})
		}
		n.enqueue(f)
		return false
	case arch.TrapALoad, arch.TrapAStore, arch.TrapALen:
		n.handleArrayOp(f, tr)
		return false
	case arch.TrapWait:
		n.handleWait(f)
		return false
	case arch.TrapSignal:
		n.handleSignal(f)
		return false
	case arch.TrapMonExit:
		// System-call monitor exit (M68K, SPARC): a scheduling point.
		n.charge(uint64(c.SyscallCycles))
		n.monExit(f)
		n.enqueue(f)
		return false
	case arch.TrapMonExitA:
		// Atomic UNLINKQ (VAX): the unlink happens within one instruction;
		// the thread continues in the same slice — the runtime never treats
		// this PC as a scheduling point (its bus stop is exit-only).
		n.monExit(f)
		return true
	}
	n.fault(f, fmt.Sprintf("unknown trap %v", tr.Kind))
	return false
}

// currentStop looks up the bus stop at f's current PC.
func (n *Node) currentStop(f *Frag) (busstop.Info, error) {
	return f.fn.fc.Stops.ByPC(f.CPU.PC)
}

// selfObj resolves f's current receiver.
func (n *Node) selfObj(f *Frag) (*Obj, error) {
	return n.objAt(f.CPU.Self)
}

// ---------------------------------------------------------------- creation

// createObject runs the paper-faithful creation sequence on fragment f:
// allocate and zero, run $init (condition indices + variable initializers),
// store constructor arguments, run $initially if present, spawn the process
// thread if present, then invoke done(obj). All code runs natively on f via
// kernel continuation frames.
func (n *Node) createObject(f *Frag, code oid.OID, args []uint32, done func(*Obj)) {
	lc, err := n.loadCode(code)
	if err != nil {
		n.fault(f, err.Error())
		return
	}
	obj, err := n.newPlain(lc)
	if err != nil {
		n.fault(f, err.Error())
		return
	}
	irObj := lc.oc.IR
	initIdx := lc.oc.FuncIndex("$init")
	initiallyIdx := lc.oc.FuncIndex("$initially")

	// Synthetic creation frames return to f's current context and then run
	// a kernel continuation.
	kontDesc := func() (uint32, uint32) {
		if f.fn == nil {
			return descNone | kontFlag, 0
		}
		return f.fn.desc | kontFlag, f.CPU.PC
	}
	finish := func() {
		if irObj.HasProcess {
			n.spawnProcess(obj)
		}
		done(obj)
	}
	afterInit := func() {
		// Constructor arguments override the first k slots (stored after
		// the initializers ran, before `initially`).
		for i, v := range args {
			n.st32(obj.slotAddr(i), v)
		}
		if initiallyIdx >= 0 {
			f.konts = append(f.konts, finish)
			d, pc := kontDesc()
			if err := n.pushFrame(f, lc.funcs[initiallyIdx], obj, nil, d, pc); err != nil {
				n.fault(f, err.Error())
				return
			}
			n.enqueue(f)
			return
		}
		finish()
	}
	f.konts = append(f.konts, afterInit)
	d, pc := kontDesc()
	if err := n.pushFrame(f, lc.funcs[initIdx], obj, nil, d, pc); err != nil {
		n.fault(f, err.Error())
		return
	}
	n.enqueue(f)
}

// spawnProcess starts obj's process section on a fresh thread.
func (n *Node) spawnProcess(obj *Obj) {
	lc := obj.Code
	procIdx := lc.oc.FuncIndex("$process")
	pf := n.newFrag()
	if err := n.pushFrame(pf, lc.funcs[procIdx], obj, nil, descNone, 0); err != nil {
		n.fault(pf, err.Error())
		return
	}
	// A process root has no caller: Link stays {-1}.
	n.enqueue(pf)
}

// handleNew services a TrapNew: creation happens on the calling thread.
func (n *Node) handleNew(f *Frag, tr *arch.Trap) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	name := f.fn.fc.Strings[tr.A]
	oc := n.cluster.Prog.Object(name)
	if oc == nil {
		n.fault(f, "new: unknown object "+name)
		return
	}
	argc := int(tr.B)
	args := make([]uint32, argc)
	for i := argc - 1; i >= 0; i-- {
		args[i] = n.popTemp(f)
	}
	n.createObject(f, oc.CodeOID, args, func(obj *Obj) {
		n.pushTemp(f, obj.Addr)
		n.enqueue(f)
	})
}

// ---------------------------------------------------------------- printing

// formatValue renders one printed value per its kind letter.
func (n *Node) formatValue(letter byte, w uint32) string {
	switch letter {
	case 'i':
		return strconv.Itoa(int(int32(w)))
	case 'b':
		if w != 0 {
			return "true"
		}
		return "false"
	case 'r':
		return strconv.FormatFloat(float64(n.Spec.Float.Dec(w)), 'g', -1, 32)
	case 'n':
		return "node" + strconv.Itoa(int(int32(w)))
	case 's':
		if w == 0 {
			return "nil"
		}
		if o, err := n.objAt(w); err == nil && o.Kind == ObjString {
			return string(n.stringBytes(o))
		}
		return "<bad-string>"
	default: // 'p'
		if w == 0 {
			return "nil"
		}
		o, err := n.objAt(w)
		if err != nil {
			return "<bad-ref>"
		}
		name := "object"
		switch {
		case o.Kind == ObjArray:
			name = "array"
		case o.Kind == ObjString:
			name = "string"
		case o.Code != nil:
			name = o.Code.oc.Name
		}
		return fmt.Sprintf("<%s %v>", name, o.OID)
	}
}

func (n *Node) handlePrint(f *Frag, tr *arch.Trap) {
	kinds := f.fn.fc.Strings[tr.A]
	argc := int(tr.B)
	n.charge(uint64(n.cluster.Costs.SyscallCycles) + uint64(20*argc))
	parts := make([]string, argc)
	for i := argc - 1; i >= 0; i-- {
		w := n.popTemp(f)
		parts[i] = n.formatValue(kinds[i], w)
	}
	text := ""
	for _, p := range parts {
		text += p
	}
	n.print(text)
	n.tracef("node%d print: %s", n.ID, text)
}

func (n *Node) handleStrOf(f *Frag, tr *arch.Trap) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	letter := f.fn.fc.Strings[tr.A][0]
	w := n.popTemp(f)
	s, err := n.newString([]byte(n.formatValue(letter, w)))
	if err != nil {
		n.fault(f, err.Error())
		return
	}
	n.pushTemp(f, s.Addr)
	n.enqueue(f)
}

func (n *Node) handleConcat(f *Frag) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	bAddr := n.popTemp(f)
	aAddr := n.popTemp(f)
	ao, err1 := n.objAt(aAddr)
	bo, err2 := n.objAt(bAddr)
	if err1 != nil || err2 != nil || ao.Kind != ObjString || bo.Kind != ObjString {
		n.fault(f, "concat on non-string")
		return
	}
	buf := append(append([]byte(nil), n.stringBytes(ao)...), n.stringBytes(bo)...)
	n.charge(uint64(len(buf)))
	s, err := n.newString(buf)
	if err != nil {
		n.fault(f, err.Error())
		return
	}
	n.pushTemp(f, s.Addr)
	n.enqueue(f)
}

// ---------------------------------------------------------------- monitors

// monAcquire tries to take obj's monitor for f; on contention f blocks at
// entry and monAcquire returns false.
func (n *Node) monAcquire(f *Frag, obj *Obj) bool {
	m := obj.Mon
	if m.Holder == nil {
		m.Holder = f
		return true
	}
	f.Status = FragStateBlockedEntry
	m.Entry = append(m.Entry, f)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvMonitorBlock, Frag: f.ID, Obj: uint32(obj.OID)})
	n.cluster.Rec.Metrics().Add("monitor_contention",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	return false
}

// monRelease releases obj's monitor and admits the next entrant.
func (n *Node) monRelease(obj *Obj) {
	m := obj.Mon
	m.Holder = nil
	if len(m.Entry) > 0 {
		next := m.Entry[0]
		m.Entry = m.Entry[1:]
		m.Holder = next
		n.resumeEntrant(next)
	}
}

// resumeEntrant resumes a fragment that just acquired the monitor: either
// it was blocked at operation entry (PC 0, not yet run) or re-entering
// after a wait.
func (n *Node) resumeEntrant(f *Frag) {
	n.enqueue(f)
}

// monExit services monitor exit for f's current receiver.
func (n *Node) monExit(f *Frag) {
	obj, err := n.selfObj(f)
	if err != nil || obj.Mon == nil {
		n.fault(f, "monitor exit without monitor")
		return
	}
	if obj.Mon.Holder != f {
		n.fault(f, "monitor exit by non-holder")
		return
	}
	n.monRelease(obj)
}

// handleWait: release the monitor and join the condition queue.
func (n *Node) handleWait(f *Frag) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	k := int(int32(n.popTemp(f)))
	obj, err := n.selfObj(f)
	if err != nil || obj.Mon == nil || k < 0 || k >= len(obj.Mon.Conds) {
		n.fault(f, "wait on bad condition")
		return
	}
	if obj.Mon.Holder != f {
		n.fault(f, "wait without holding the monitor")
		return
	}
	f.Status = FragStateWaitCond
	f.condIndex = uint16(k)
	obj.Mon.Conds[k] = append(obj.Mon.Conds[k], f)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvMonitorWait, Frag: f.ID, Obj: uint32(obj.OID), A: uint64(k)})
	n.monRelease(obj)
}

// handleSignal: wake one waiter (it must reacquire the monitor — Mesa
// semantics; the source-level while loop retests the predicate).
func (n *Node) handleSignal(f *Frag) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	k := int(int32(n.popTemp(f)))
	obj, err := n.selfObj(f)
	if err != nil || obj.Mon == nil || k < 0 || k >= len(obj.Mon.Conds) {
		n.fault(f, "signal on bad condition")
		return
	}
	if obj.Mon.Holder != f {
		n.fault(f, "signal without holding the monitor")
		return
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvMonitorSignal, Frag: f.ID, Obj: uint32(obj.OID), A: uint64(k)})
	q := obj.Mon.Conds[k]
	if len(q) > 0 {
		w := q[0]
		obj.Mon.Conds[k] = q[1:]
		w.Status = FragStateBlockedEntry
		obj.Mon.Entry = append(obj.Mon.Entry, w)
	}
	n.enqueue(f)
}

// ---------------------------------------------------------------- arrays

// Remote array access uses the invocation protocol with reserved operation
// names; the serving node answers from the kernel without pushing frames.
const (
	arrGetOp  = "$aget"
	arrPutOp  = "$aput"
	arrSizeOp = "$asize"
)

// handleArrayOp services array element access: direct when the array is
// resident, through the remote-access protocol otherwise.
func (n *Node) handleArrayOp(f *Frag, tr *arch.Trap) {
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	elem := ir.VK(tr.B)
	var val, idx uint32
	if tr.Kind == arch.TrapAStore {
		val = n.popTemp(f)
	}
	if tr.Kind != arch.TrapALen {
		idx = n.popTemp(f)
	}
	addr := n.popTemp(f)
	if addr == 0 {
		n.fault(f, "nil array reference")
		return
	}
	o, err := n.objAt(addr)
	if err != nil || (o.Resident && o.Kind != ObjArray) {
		n.fault(f, "array operation on a non-array")
		return
	}
	if o.transit != nil {
		// The array is mid-move: block and replay once the move resolves.
		kind := tr.Kind
		f.Status = FragStateBlockedCall
		f.waitNode = -1
		o.transit.parked = append(o.transit.parked,
			func() { n.arrayOpOn(f, kind, elem, o, idx, val) })
		return
	}
	n.arrayOpOn(f, tr.Kind, elem, o, idx, val)
}

// arrayOpOn performs one array access on a resolved array object (re-entered
// when a parked access replays after a move resolves).
func (n *Node) arrayOpOn(f *Frag, kind arch.TrapKind, elem ir.VK, o *Obj, idx, val uint32) {
	if o.Resident {
		if kind != arch.TrapALen && idx >= o.Len {
			n.fault(f, fmt.Sprintf("index %d out of bounds (length %d)", int32(idx), o.Len))
			return
		}
		switch kind {
		case arch.TrapALoad:
			n.pushTemp(f, n.ld32(o.slotAddr(int(idx))))
		case arch.TrapAStore:
			n.st32(o.slotAddr(int(idx)), val)
		case arch.TrapALen:
			n.pushTemp(f, o.Len)
		}
		n.enqueue(f)
		return
	}
	if n.chaosOn() && n.suspects[o.LastKnown] {
		n.faultErr(f, ErrNodeDown, fmt.Sprintf("remote array access on %v: node %d is down",
			o.OID, o.LastKnown))
		return
	}
	// Remote array: marshal the access as a kernel-served invocation.
	conv := n.cluster.converterFor(n, n.cluster.Nodes[o.LastKnown].Spec.ID)
	prev := conv.Stats()
	var opName string
	var args []wire.Value
	switch kind {
	case arch.TrapALoad:
		opName = arrGetOp
		args = []wire.Value{conv.IntToWire(idx)}
	case arch.TrapAStore:
		opName = arrPutOp
		wv, err := n.wireTempValue(conv, elem, val)
		if err != nil {
			n.fault(f, "marshal element: "+err.Error())
			return
		}
		args = []wire.Value{conv.IntToWire(idx), wv}
	case arch.TrapALen:
		opName = arrSizeOp
	}
	n.chargeConv(conv, prev)
	f.Status = FragStateBlockedCall
	f.waitNode = int32(o.LastKnown)
	n.sendMsg(o.LastKnown, &wire.Invoke{
		Target: o.OID, OpName: opName, Origin: int32(n.ID), CallerFrag: f.ID,
		Args: args, Hints: n.collectHints(args),
	})
}

// serveArrayOp answers a remote array access on a resident array; origin
// is the node hosting the blocked caller.
func (n *Node) serveArrayOp(origin int, p *wire.Invoke, o *Obj) {
	conv := n.cluster.converterFor(n, n.cluster.Nodes[origin].Spec.ID)
	prev := conv.Stats()
	fail := func(msg string) {
		n.sendMsg(origin, &wire.Return{Origin: int32(n.ID),
			CallerFrag: p.CallerFrag, Ok: false, FaultMsg: msg})
	}
	idx := uint32(0)
	if len(p.Args) > 0 {
		v, err := conv.IntFromWire(p.Args[0])
		if err != nil {
			fail("bad index: " + err.Error())
			return
		}
		idx = v
	}
	if p.OpName != arrSizeOp && idx >= o.Len {
		fail(fmt.Sprintf("index %d out of bounds (length %d)", int32(idx), o.Len))
		return
	}
	var result wire.Value
	switch p.OpName {
	case arrSizeOp:
		result = conv.IntToWire(o.Len)
	case arrGetOp:
		v, err := n.wireTempValue(conv, o.ElemKind, n.ld32(o.slotAddr(int(idx))))
		if err != nil {
			fail("marshal element: " + err.Error())
			return
		}
		result = v
	case arrPutOp:
		hints := map[oid.OID]int{}
		for _, h := range p.Hints {
			hints[h.OID] = int(h.Node)
		}
		w, err := n.unwireValue(conv, o.ElemKind, p.Args[1], hints, origin)
		if err != nil {
			fail("unmarshal element: " + err.Error())
			return
		}
		n.st32(o.slotAddr(int(idx)), w)
		result = conv.IntToWire(0)
	}
	n.chargeConv(conv, prev)
	n.sendMsg(origin, &wire.Return{
		Origin:     int32(n.ID),
		CallerFrag: p.CallerFrag, Ok: true, Result: result,
		Hints: n.collectHints([]wire.Value{result}),
	})
}

// ---------------------------------------------------------------- helpers

// wireTempValue converts the machine word w of kind k for transmission.
func (n *Node) wireTempValue(conv wire.Converter, k ir.VK, w uint32) (wire.Value, error) {
	switch k {
	case ir.VKReal:
		return conv.RealToWire(w, n.Spec.Float), nil
	case ir.VKPtr:
		if w == 0 {
			return conv.RefToWire(oid.Nil), nil
		}
		o, err := n.objAt(w)
		if err != nil {
			return wire.Value{}, err
		}
		if o.Kind == ObjString && o.Resident {
			// Immutable strings travel by value (moved by duplication).
			return wire.StringV(append([]byte(nil), n.stringBytes(o)...)), nil
		}
		n.exported[o.OID] = true // a remote node will hold this reference
		return conv.RefToWire(o.OID), nil
	default:
		return conv.IntToWire(w), nil
	}
}

// unwireValue converts a received wire value to a machine word, creating
// proxies (with hints) or materializing strings as needed.
func (n *Node) unwireValue(conv wire.Converter, k ir.VK, v wire.Value,
	hints map[oid.OID]int, src int) (uint32, error) {
	switch k {
	case ir.VKReal:
		return conv.RealFromWire(v, n.Spec.Float)
	case ir.VKPtr:
		if v.Kind == wire.WString {
			s, err := n.newString(v.Str)
			if err != nil {
				return 0, err
			}
			return s.Addr, nil
		}
		id, err := conv.RefFromWire(v)
		if err != nil {
			return 0, err
		}
		if id == oid.Nil {
			return 0, nil
		}
		hint := src
		if h, ok := hints[id]; ok {
			hint = h
		}
		n.exported[id] = true // the sender knows this OID
		o := n.proxyFor(id, hint)
		return n.ensureAddressable(o)
	default:
		return conv.IntFromWire(v)
	}
}

// hintFor reports where this node believes id lives.
func (n *Node) hintFor(id oid.OID) int {
	if o, ok := n.objects[id]; ok {
		if o.Resident {
			return n.ID
		}
		return o.LastKnown
	}
	return n.ID
}

// collectHints builds location hints for every reference among values.
func (n *Node) collectHints(vals []wire.Value) []wire.LocHint {
	seen := map[oid.OID]bool{}
	var hints []wire.LocHint
	for _, v := range vals {
		if v.Kind == wire.WRef {
			id := v.OID()
			if !seen[id] {
				seen[id] = true
				hints = append(hints, wire.LocHint{OID: id, Node: int32(n.hintFor(id))})
			}
		}
	}
	return hints
}

// chargeConv charges the CPU for conversion calls accumulated since prev.
func (n *Node) chargeConv(conv wire.Converter, prev wire.Stats) {
	delta := conv.Stats().Calls - prev.Calls
	cycles := float64(delta*uint64(n.cluster.Costs.ConvCallCycles)) * n.Model.ConvFactor()
	n.charge(uint64(cycles))
}
