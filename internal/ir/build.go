// IR construction from a checked AST.

package ir

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

// KindOf maps a semantic type to its 32-bit storage kind.
func KindOf(t *types.Type) VK {
	switch t.Kind {
	case types.KReal:
		return VKReal
	case types.KString, types.KAny, types.KRef, types.KArray, types.KNil:
		return VKPtr
	default:
		return VKInt // Int, Bool, Node, Condition, Void (dummy)
	}
}

// printLetter maps a semantic type to the format letter used by SysPrint
// and SysStrOf.
func printLetter(t *types.Type) byte {
	switch t.Kind {
	case types.KInt:
		return 'i'
	case types.KBool:
		return 'b'
	case types.KReal:
		return 'r'
	case types.KNode:
		return 'n'
	case types.KString:
		return 's'
	default:
		return 'p' // other pointers: printed as object references
	}
}

// Build lowers a checked program to IR. The same Info must come from
// types.Check on the same AST; Build panics on internal inconsistencies
// (the checker has already rejected invalid programs).
func Build(info *types.Info) *Program {
	p := &Program{}
	for _, od := range info.Program.Objects {
		p.Objects = append(p.Objects, buildObject(info, od))
	}
	return p
}

func buildObject(info *types.Info, od *ast.ObjectDecl) *Object {
	vars := info.ObjVars[od]
	o := &Object{
		Name:          od.Name,
		Immutable:     od.Immutable,
		NumConds:      info.NumConds[od],
		MonitoredFrom: len(vars),
		HasProcess:    od.Process != nil,
	}
	for i, s := range vars {
		o.VarKinds = append(o.VarKinds, KindOf(s.Type))
		o.VarNames = append(o.VarNames, s.Name)
		if s.Monitored && i < o.MonitoredFrom {
			o.MonitoredFrom = i
		}
	}
	// Conditions are identified by index; their data slot holds the index so
	// that LoadMine+SysWait works uniformly. $init stores them.
	for _, op := range od.AllOps() {
		o.Funcs = append(o.Funcs, buildFunc(info, info.FuncOf[op]))
	}
	o.Funcs = append(o.Funcs, buildInit(info, od))
	if init := od.Initially; init != nil {
		f := info.InitOf[od]
		b := newBuilder(info, f, od.Name+".$initially", "$initially")
		b.fn.NumParams = 0
		b.fn.NumResults = 0
		b.block(init)
		o.Funcs = append(o.Funcs, b.finish())
	}
	if od.Process != nil {
		o.Funcs = append(o.Funcs, buildFunc(info, info.ProcessOf[od]))
	}
	return o
}

// buildInit generates the $init function: store condition indices, then run
// the object-variable initializer expressions in declaration order.
func buildInit(info *types.Info, od *ast.ObjectDecl) *Func {
	f := info.InitOf[od]
	b := newBuilder(info, f, od.Name+".$init", "$init")
	b.fn.NumVars = 0 // initializers reference no frame locals
	b.fn.VarKinds = nil
	b.fn.VarNames = nil
	for _, s := range info.ObjVars[od] {
		if s.Type.Kind == types.KCond {
			b.emit(Instr{Op: PushInt, A: int32(s.CondIndex)})
			b.emit(Instr{Op: StoreMine, A: int32(s.Index)})
		}
	}
	for _, vd := range od.AllVars() {
		if vd.Init == nil {
			continue
		}
		s := objVar(info, od, vd.Name)
		b.exprConv(vd.Init, s.Type)
		b.emit(Instr{Op: StoreMine, A: int32(s.Index)})
	}
	b.emit(Instr{Op: Ret})
	return b.finishNoRet()
}

func objVar(info *types.Info, od *ast.ObjectDecl, name string) *types.Symbol {
	for _, s := range info.ObjVars[od] {
		if s.Name == name {
			return s
		}
	}
	panic("ir: missing object variable " + name)
}

func buildFunc(info *types.Info, f *types.Func) *Func {
	opName := "$process"
	if f.Kind == types.FuncOp {
		opName = f.Op.Name
	}
	b := newBuilder(info, f, f.Name, opName)
	if f.Body != nil {
		b.block(f.Body)
	}
	return b.finish()
}

// builder accumulates the instruction stream of one function.
type builder struct {
	info *types.Info
	tf   *types.Func
	fn   *Func
	strs map[string]int32
	// loop exit patch lists, innermost last
	loopExits [][]int
}

func newBuilder(info *types.Info, tf *types.Func, name, opName string) *builder {
	b := &builder{info: info, tf: tf, strs: map[string]int32{}}
	b.fn = &Func{
		Name:       name,
		OpName:     opName,
		NumParams:  len(tf.Params),
		NumResults: len(tf.Results),
		NumVars:    tf.NumSlots,
		Monitored:  tf.Monitored && opName != "$init" && opName != "$initially" && opName != "$process",
	}
	for _, s := range tf.Slots() {
		b.fn.VarKinds = append(b.fn.VarKinds, KindOf(s.Type))
		b.fn.VarNames = append(b.fn.VarNames, s.Name)
	}
	return b
}

func (b *builder) finish() *Func {
	b.emit(Instr{Op: Ret})
	return b.fn
}

func (b *builder) finishNoRet() *Func { return b.fn }

func (b *builder) emit(i Instr) int {
	b.fn.Code = append(b.fn.Code, i)
	return len(b.fn.Code) - 1
}

func (b *builder) here() int32 { return int32(len(b.fn.Code)) }

func (b *builder) patch(at int, target int32) { b.fn.Code[at].A = target }

func (b *builder) str(s string) int32 {
	if i, ok := b.strs[s]; ok {
		return i
	}
	i := int32(len(b.fn.Strings))
	b.fn.Strings = append(b.fn.Strings, s)
	b.strs[s] = i
	return i
}

func (b *builder) typeOf(e ast.Expr) *types.Type { return b.info.TypeOf(e) }

// ---------------------------------------------------------------- statements

func (b *builder) block(blk *ast.Block) {
	for _, s := range blk.Stmts {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		vd := s.Decl
		if vd.Init == nil {
			return // frame slots are zeroed at activation creation
		}
		sym := b.info.LocalDecls[vd]
		b.exprConv(vd.Init, sym.Type)
		b.emit(Instr{Op: StoreVar, A: int32(sym.Index)})
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.ExprStmt:
		b.expr(s.X)
		b.emit(Instr{Op: Drop}) // calls always push one value
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.LoopStmt:
		top := b.here()
		b.loopExits = append(b.loopExits, nil)
		b.block(s.Body)
		b.emit(Instr{Op: LoopBottom})
		b.emit(Instr{Op: Jump, A: top})
		b.patchLoopExits()
	case *ast.WhileStmt:
		top := b.here()
		b.loopExits = append(b.loopExits, nil)
		b.expr(s.Cond)
		br := b.emit(Instr{Op: BrFalse})
		b.block(s.Body)
		b.emit(Instr{Op: LoopBottom})
		b.emit(Instr{Op: Jump, A: top})
		b.patch(br, b.here())
		b.patchLoopExits()
	case *ast.ExitStmt:
		n := len(b.loopExits) - 1
		if s.When != nil {
			b.expr(s.When)
			at := b.emit(Instr{Op: BrTrue})
			b.loopExits[n] = append(b.loopExits[n], at)
		} else {
			at := b.emit(Instr{Op: Jump})
			b.loopExits[n] = append(b.loopExits[n], at)
		}
	case *ast.ReturnStmt:
		b.emit(Instr{Op: Ret})
	case *ast.MoveStmt:
		b.expr(s.X)
		b.expr(s.To)
		b.emit(Instr{Op: SysMove})
	case *ast.FixStmt:
		b.expr(s.X)
		b.expr(s.At)
		if s.Refix {
			b.emit(Instr{Op: SysRefix})
		} else {
			b.emit(Instr{Op: SysFix})
		}
	case *ast.UnfixStmt:
		b.expr(s.X)
		b.emit(Instr{Op: SysUnfix})
	case *ast.WaitStmt:
		b.expr(s.Cond) // pushes the condition index (its data slot value)
		b.emit(Instr{Op: SysWait})
	case *ast.SignalStmt:
		b.expr(s.Cond)
		b.emit(Instr{Op: SysSignal})
	default:
		panic(fmt.Sprintf("ir: unknown statement %T", s))
	}
}

func (b *builder) patchLoopExits() {
	n := len(b.loopExits) - 1
	for _, at := range b.loopExits[n] {
		b.patch(at, b.here())
	}
	b.loopExits = b.loopExits[:n]
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	var ends []int
	b.expr(s.Cond)
	br := b.emit(Instr{Op: BrFalse})
	b.block(s.Then)
	for _, arm := range s.Elifs {
		ends = append(ends, b.emit(Instr{Op: Jump}))
		b.patch(br, b.here())
		b.expr(arm.Cond)
		br = b.emit(Instr{Op: BrFalse})
		b.block(arm.Then)
	}
	if s.Else != nil {
		ends = append(ends, b.emit(Instr{Op: Jump}))
		b.patch(br, b.here())
		b.block(s.Else)
	} else {
		b.patch(br, b.here())
	}
	for _, at := range ends {
		b.patch(at, b.here())
	}
}

func (b *builder) assign(s *ast.AssignStmt) {
	switch lhs := s.Lhs.(type) {
	case *ast.Ident:
		sym := b.info.Uses[lhs]
		b.exprConv(s.Rhs, sym.Type)
		switch sym.Kind {
		case types.SymLocal:
			b.emit(Instr{Op: StoreVar, A: int32(sym.Index)})
		case types.SymObjVar:
			b.emit(Instr{Op: StoreMine, A: int32(sym.Index)})
		default:
			panic("ir: assignment to global")
		}
	case *ast.Index:
		at := b.typeOf(lhs.X)
		b.expr(lhs.X)
		b.expr(lhs.I)
		b.exprConv(s.Rhs, at.Elem)
		b.emit(Instr{Op: AStore, K: KindOf(at.Elem)})
	default:
		panic("ir: invalid assignment target")
	}
}

// ---------------------------------------------------------------- expressions

// exprConv compiles e and inserts an int→real conversion if the context
// expects Real.
func (b *builder) exprConv(e ast.Expr, want *types.Type) {
	b.expr(e)
	if want != nil && want.Kind == types.KReal && b.typeOf(e).Kind == types.KInt {
		b.emit(Instr{Op: CvtIR})
	}
}

func (b *builder) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		b.emit(Instr{Op: PushInt, A: int32(e.Value)})
	case *ast.RealLit:
		b.emit(Instr{Op: PushReal, F: e.Value})
	case *ast.StringLit:
		b.emit(Instr{Op: PushStr, S: b.str(e.Value)})
	case *ast.BoolLit:
		v := int32(0)
		if e.Value {
			v = 1
		}
		b.emit(Instr{Op: PushInt, A: v})
	case *ast.NilLit:
		b.emit(Instr{Op: PushNil})
	case *ast.SelfExpr:
		b.emit(Instr{Op: PushSelf})
	case *ast.Ident:
		sym := b.info.Uses[e]
		switch sym.Kind {
		case types.SymLocal:
			b.emit(Instr{Op: LoadVar, A: int32(sym.Index)})
		case types.SymObjVar:
			b.emit(Instr{Op: LoadMine, A: int32(sym.Index)})
		default:
			panic("ir: load of global " + sym.Name)
		}
	case *ast.Unary:
		b.expr(e.X)
		switch {
		case e.Op == token.Not:
			b.emit(Instr{Op: NotB})
		case b.typeOf(e.X).Kind == types.KReal:
			b.emit(Instr{Op: NegR})
		default:
			b.emit(Instr{Op: NegI})
		}
	case *ast.Binary:
		b.binary(e)
	case *ast.Invoke:
		b.invoke(e)
	case *ast.New:
		b.newExpr(e)
	case *ast.Index:
		ct := b.typeOf(e.X)
		b.expr(e.X)
		b.expr(e.I)
		if ct.Kind == types.KString {
			b.emit(Instr{Op: SIndex})
		} else {
			b.emit(Instr{Op: ALoad, K: KindOf(ct.Elem)})
		}
	default:
		panic(fmt.Sprintf("ir: unknown expression %T", e))
	}
}

func (b *builder) binary(e *ast.Binary) {
	xt, yt := b.typeOf(e.X), b.typeOf(e.Y)
	isReal := xt.Kind == types.KReal || yt.Kind == types.KReal
	pushBoth := func() {
		b.expr(e.X)
		if isReal && xt.Kind == types.KInt {
			b.emit(Instr{Op: CvtIR})
		}
		b.expr(e.Y)
		if isReal && yt.Kind == types.KInt {
			b.emit(Instr{Op: CvtIR})
		}
	}
	arith := func(iop, rop Op) {
		pushBoth()
		if isReal {
			b.emit(Instr{Op: rop})
		} else {
			b.emit(Instr{Op: iop})
		}
	}
	cmp := func(code int32) {
		switch {
		case xt.Kind == types.KString && yt.Kind == types.KString:
			b.expr(e.X)
			b.expr(e.Y)
			b.emit(Instr{Op: CmpS, A: code})
		case isReal:
			pushBoth()
			b.emit(Instr{Op: CmpR, A: code})
		case xt.IsPointer() || yt.IsPointer():
			b.expr(e.X)
			b.expr(e.Y)
			b.emit(Instr{Op: CmpP, A: code})
		default:
			b.expr(e.X)
			b.expr(e.Y)
			b.emit(Instr{Op: CmpI, A: code})
		}
	}
	switch e.Op {
	case token.Plus:
		if xt.Kind == types.KString {
			b.expr(e.X)
			b.expr(e.Y)
			b.emit(Instr{Op: SysConcat})
			return
		}
		arith(AddI, AddR)
	case token.Minus:
		arith(SubI, SubR)
	case token.Star:
		arith(MulI, MulR)
	case token.Slash:
		arith(DivI, DivR)
	case token.Percent:
		pushBoth()
		b.emit(Instr{Op: ModI})
	case token.Eq:
		cmp(CmpEQ)
	case token.NotEq:
		cmp(CmpNE)
	case token.Lt:
		cmp(CmpLT)
	case token.Le:
		cmp(CmpLE)
	case token.Gt:
		cmp(CmpGT)
	case token.Ge:
		cmp(CmpGE)
	case token.And:
		b.expr(e.X)
		b.expr(e.Y)
		b.emit(Instr{Op: AndB})
	case token.Or:
		b.expr(e.X)
		b.expr(e.Y)
		b.emit(Instr{Op: OrB})
	default:
		panic("ir: unknown binary operator " + e.Op.String())
	}
}

func (b *builder) newExpr(e *ast.New) {
	t := b.typeOf(e)
	if t.Kind == types.KArray {
		b.exprConv(e.Args[0], types.Int)
		b.emit(Instr{Op: NewArray, K: KindOf(t.Elem)})
		return
	}
	vars := b.info.ObjVars[t.Obj]
	for i, a := range e.Args {
		b.exprConv(a, vars[i].Type)
	}
	b.emit(Instr{Op: New, S: b.str(t.Obj.Name), A: int32(len(e.Args))})
}

func (b *builder) invoke(e *ast.Invoke) {
	tgt := b.info.Targets[e]
	if tgt == nil {
		panic("ir: unresolved invocation " + e.OpName)
	}
	switch {
	case tgt.Builtin != "":
		b.builtin(e, tgt.Builtin)
	case tgt.Dynamic:
		b.expr(e.Recv)
		for _, a := range e.Args {
			b.expr(a)
		}
		b.emit(Instr{Op: Call, S: b.str(e.OpName), A: int32(len(e.Args)), K: VKPtr})
	default:
		f := b.info.FuncOf[tgt.Op]
		if tgt.OnSelf {
			b.emit(Instr{Op: PushSelf})
		} else {
			b.expr(e.Recv)
		}
		for i, a := range e.Args {
			var want *types.Type
			if i < len(f.Params) {
				want = f.Params[i].Type
			}
			b.exprConv(a, want)
		}
		k := VKInt
		if len(f.Results) > 0 {
			k = KindOf(f.Results[0].Type)
		}
		b.emit(Instr{Op: Call, S: b.str(e.OpName), A: int32(len(e.Args)), K: k})
	}
}

func (b *builder) builtin(e *ast.Invoke, name string) {
	switch name {
	case ast.BuiltinPrint:
		letters := make([]byte, 0, len(e.Args))
		for _, a := range e.Args {
			b.expr(a)
			letters = append(letters, printLetter(b.typeOf(a)))
		}
		b.emit(Instr{Op: SysPrint, S: b.str(string(letters)), A: int32(len(e.Args))})
		// Statement-position Drop expects one pushed value.
		b.emit(Instr{Op: PushInt, A: 0})
	case ast.BuiltinNodes:
		b.emit(Instr{Op: SysNodes})
	case ast.BuiltinThisNode:
		b.emit(Instr{Op: SysThisNode})
	case ast.BuiltinNodeAt:
		b.expr(e.Args[0])
		b.emit(Instr{Op: SysNodeAt})
	case ast.BuiltinTimeMS:
		b.emit(Instr{Op: SysTimeMS})
	case ast.BuiltinYield:
		b.emit(Instr{Op: SysYield})
		b.emit(Instr{Op: PushInt, A: 0})
	case ast.BuiltinStr:
		b.expr(e.Args[0])
		b.emit(Instr{Op: SysStrOf, S: b.str(string([]byte{printLetter(b.typeOf(e.Args[0]))}))})
	case ast.BuiltinAbs:
		b.expr(e.Args[0])
		b.emit(Instr{Op: AbsI})
	case ast.BuiltinLocate:
		b.expr(e.Args[0])
		b.emit(Instr{Op: SysLocate})
	case ast.BuiltinSize:
		b.expr(e.Recv)
		if b.typeOf(e.Recv).Kind == types.KString {
			b.emit(Instr{Op: SLen})
		} else {
			b.emit(Instr{Op: ALen})
		}
	default:
		panic("ir: unknown builtin " + name)
	}
}
