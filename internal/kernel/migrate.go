// Object and native-code thread migration (§3.5) — the paper's core.
//
// Moving an object moves, with it, every activation record of every thread
// that is executing an operation of the object. On the source node the
// kernel walks each thread's stack through the activation templates,
// reconstructing per-frame register contents by unwinding the callee-save
// areas, and converts each affected activation to the machine-independent
// format: all variables in canonical slot order, program points as bus-stop
// numbers, live temporaries as described by the per-stop tables. On the
// destination the records are re-specialized to that machine's templates —
// register homes refilled, activation records laid out per the local ISA,
// bus stops converted back to PCs — including the relocation pass the paper
// describes (records are converted youngest first, then placed).
package kernel

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// beginMoveSpan opens an observability span for one outbound hop. The span
// starts when the node can begin the conversion work (its CPU timeline, not
// the event instant: everything below happens inside one simulated event).
func (n *Node) beginMoveSpan(o *Obj, dest int, kind string) *obs.Span {
	start := n.CPU.FreeAt
	if now := n.now(); now > start {
		start = now
	}
	return n.cluster.Rec.BeginSpan(int64(start), int32(n.ID), int32(dest),
		uint32(o.OID), kind)
}

// finishMoveOut closes the source side of a hop: records the MD→MI phase
// from the converter-stat delta, emits the migrate-out and conversion
// events, and bumps the per-arch-pair migration counter.
func (n *Node) finishMoveOut(sp *obs.Span, o *Obj, dest int, conv wire.Converter, prev wire.Stats) {
	cur := conv.Stats()
	sp.ConvOutCalls = cur.Calls - prev.Calls
	sp.ConvOutBytes = cur.Bytes - prev.Bytes
	sp.ConvOutEnd = int64(n.CPU.FreeAt)
	rec := n.cluster.Rec
	rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvConvOut,
		Span: sp.ID, Obj: uint32(o.OID), A: sp.ConvOutCalls, B: sp.ConvOutBytes})
	rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvMigrateOut,
		Span: sp.ID, Obj: uint32(o.OID), A: uint64(sp.Frags), B: uint64(dest), Str: sp.ObjKind})
	rec.Metrics().Add("migrations_pair", fmt.Sprintf("src=%s,dst=%s",
		n.Spec.ID, n.cluster.Nodes[dest].Spec.ID), 1)
}

// frameInfo is one activation during a stack walk (youngest first).
type frameInfo struct {
	lf    *loadedFunc
	fp    uint32
	self  *Obj
	stop  busstop.Info
	entry bool // blocked at operation entry: not yet started
	// tempDepth is the actual evaluation-stack depth: for the thread's top
	// activation this can be stop.TempDepth+1 when the kernel has already
	// pushed a resume value (e.g. a delivered remote result) but the thread
	// has not run yet; the extra slot's kind is the stop's ResultKind.
	tempDepth int
	regs      [16]uint32
	kont      bool // this frame returns into a kernel continuation
	pinned    bool // unmovable: part of an active creation chain
}

// tempKindAt returns the kind of evaluation-stack slot j at a stop,
// accounting for an already-pushed resume value.
func tempKindAt(stop busstop.Info, j int) ir.VK {
	if j < len(stop.TempKinds) {
		return stop.TempKinds[j]
	}
	return stop.ResultKind
}

// walkFrames walks f's activation records through templates, reconstructing
// each frame's register view by unwinding the callee-save areas.
func (n *Node) walkFrames(f *Frag) ([]frameInfo, error) {
	var frames []frameInfo
	regs := f.CPU.Regs
	lf := f.fn
	fp := f.CPU.FP
	first := true
	childRetPC := uint32(0)
	for {
		t := lf.fc.Template
		fi := frameInfo{lf: lf, fp: fp, regs: regs}
		selfAddr := n.ld32(fp + uint32(t.SelfOff))
		self, err := n.objAt(selfAddr)
		if err != nil {
			return nil, fmt.Errorf("walk %s: %v", lf.name(), err)
		}
		fi.self = self
		if first && f.CPU.PC == 0 {
			// Operation entry: the activation exists (created at the call
			// bus stop) but has not executed an instruction — either
			// blocked at monitor entry or freshly scheduled. PC 0 is never
			// a bus stop (stops are post-instruction addresses).
			fi.entry = true
		} else {
			pc := f.CPU.PC
			if !first {
				pc = childRetPC
			}
			// ByPCAny: a migrated-in thread may be parked at an exit-only
			// stop installed by a number-to-PC conversion.
			stop, err := lf.fc.Stops.ByPCAny(pc)
			if err != nil {
				return nil, fmt.Errorf("walk %s: %v", lf.name(), err)
			}
			fi.stop = stop
			fi.tempDepth = stop.TempDepth
			if first {
				fi.tempDepth = int(f.CPU.TempDepth)
				if fi.tempDepth < stop.TempDepth || fi.tempDepth > stop.TempDepth+1 {
					return nil, fmt.Errorf("walk %s: temp depth %d vs stop depth %d",
						lf.name(), fi.tempDepth, stop.TempDepth)
				}
			}
		}
		raw := n.ld32(fp + uint32(t.RetDescOff))
		fi.kont = raw&kontFlag != 0
		frames = append(frames, fi)
		// Unwind: restore the caller's values of this frame's home regs.
		for i, r := range t.SavedRegs {
			regs[r&0xf] = n.ld32(fp + uint32(t.SavedRegsOff) + uint32(4*i))
		}
		desc := raw &^ kontFlag
		if desc == descNone {
			break
		}
		caller, err := n.funcByDesc(desc)
		if err != nil {
			return nil, err
		}
		childRetPC = n.ld32(fp + uint32(t.RetPCOff))
		fp = n.ld32(fp + uint32(t.SavedFPOff))
		lf = caller
		first = false
	}
	// Pinned: kernel-continuation frames and their callers cannot migrate
	// (the continuation is node-local state).
	for i := range frames {
		if frames[i].kont || (i > 0 && frames[i-1].kont) {
			frames[i].pinned = true
		}
	}
	return frames, nil
}

// pendingMove is a deferred migration (the object had a pinned activation).
type pendingMove struct {
	obj  oid.OID
	dest int
	fix  bool
}

// retryPendingMoves re-attempts deferred migrations.
func (n *Node) retryPendingMoves() {
	if len(n.pendingMoves) == 0 {
		return
	}
	pend := n.pendingMoves
	n.pendingMoves = nil
	for _, pm := range pend {
		o, ok := n.objects[pm.obj]
		if !ok || !o.Resident {
			continue
		}
		n.moveObject(o, pm.dest, pm.fix)
	}
}

// moveObject migrates a resident object (and the thread fragments inside
// it) to dest. Fixed objects refuse to move; immutable objects move by
// duplication.
func (n *Node) moveObject(o *Obj, dest int, fix bool) {
	if dest == n.ID {
		if fix {
			o.Fixed = true
		}
		return
	}
	if o.Fixed {
		n.tracef("node%d: move of fixed %v refused", n.ID, o.OID)
		return
	}
	if n.chaosOn() {
		if o.transit != nil {
			// Mid-transit: park and replay once the current move resolves.
			// The replay must re-check residency: if the move committed,
			// the object lives elsewhere now and shipping this node's
			// stale copy would fork it — forward the request instead,
			// exactly as a parked remote MoveReq would replay.
			tx := o.transit
			tx.parked = append(tx.parked, func() {
				if !o.Resident {
					n.sendMsg(o.LastKnown, &wire.MoveReq{Target: o.OID, Dest: int32(dest), Fix: fix})
					return
				}
				n.moveObject(o, dest, fix)
			})
			return
		}
		if n.suspects[dest] {
			// The destination looks dead: degrade gracefully — the object
			// stays resident here and callers keep reaching it by remote
			// invocation.
			n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
				Kind: obs.EvMoveAbort, Obj: uint32(o.OID), B: uint64(dest), Str: "degraded"})
			n.cluster.Rec.Metrics().Add("move_degraded", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			return
		}
	}
	switch o.Kind {
	case ObjString:
		// Strings are immutable and copied on every transfer; an explicit
		// move is a no-op.
		return
	case ObjArray:
		n.moveArray(o, dest, fix)
		return
	}
	if o.Code.oc.Template.Immutable {
		n.moveImmutable(o, dest)
		return
	}
	n.movePlain(o, dest, fix)
}

// moveArray ships an array's elements.
func (n *Node) moveArray(o *Obj, dest int, fix bool) {
	tx := n.newMoveTxn(o, dest, fix)
	sp := n.beginMoveSpan(o, dest, "array")
	n.charge(uint64(n.cluster.Costs.MigrateCycles))
	conv := n.cluster.converterFor(n, n.cluster.Nodes[dest].Spec.ID)
	prev := conv.Stats()
	data := make([]wire.Value, o.Len)
	for i := range data {
		v, err := n.wireTempValue(conv, o.ElemKind, n.ld32(o.slotAddr(i)))
		if err != nil {
			panic(fmt.Sprintf("kernel: move array: %v", err))
		}
		data[i] = v
	}
	n.chargeConv(conv, prev)
	o.Epoch++
	n.finishMoveOut(sp, o, dest, conv, prev)
	n.dispatchMove(dest, &wire.Move{
		Object: o.OID, IsArray: true, ArrayElemKind: byte(o.ElemKind),
		Epoch: o.Epoch, Data: data, Fixed: fix, Hints: n.collectHints(data),
		SpanID: sp.ID,
	}, tx, sp, func() {
		o.Resident = false
		o.LastKnown = dest
		o.LocStale = false
		o.chained = false
		n.Migrations++
	})
}

// moveImmutable duplicates an immutable object: the destination gets a
// resident copy under the same OID while the source keeps its own (§3.2:
// "immutable objects ... can be moved to another processor by duplication").
func (n *Node) moveImmutable(o *Obj, dest int) {
	sp := n.beginMoveSpan(o, dest, "immutable")
	n.charge(uint64(n.cluster.Costs.MigrateCycles))
	conv := n.cluster.converterFor(n, n.cluster.Nodes[dest].Spec.ID)
	prev := conv.Stats()
	tmpl := o.Code.oc.Template
	data := make([]wire.Value, len(tmpl.Slots))
	for i, k := range tmpl.Slots {
		v, err := n.wireTempValue(conv, k, n.ld32(o.slotAddr(i)))
		if err != nil {
			panic(fmt.Sprintf("kernel: move immutable: %v", err))
		}
		data[i] = v
	}
	n.chargeConv(conv, prev)
	n.finishMoveOut(sp, o, dest, conv, prev)
	bytes, sendAt := n.sendMsg(dest, &wire.Move{
		Object: o.OID, CodeOID: o.Code.oc.CodeOID, Data: data,
		Hints: n.collectHints(data), SpanID: sp.ID,
	})
	n.cluster.Rec.SpanSent(sp.ID, bytes, int64(sendAt))
	n.Migrations++
}

// movePlain implements full object + thread migration. Under a chaos plan
// it runs as the prepare phase of a two-phase commit: marshalling is
// read-only and every destructive completion is deferred onto the move
// transaction (see twophase.go); chaos-off the deferred operations execute
// inline at exactly their historical program points.
func (n *Node) movePlain(o *Obj, dest int, fix bool) {
	tx := n.newMoveTxn(o, dest, fix)
	n.charge(uint64(n.cluster.Costs.MigrateCycles))
	peer := n.cluster.Nodes[dest].Spec.ID
	conv := n.cluster.converterFor(n, peer)
	prev := conv.Stats()

	// Deterministic fragment order.
	fragIDs := make([]uint32, 0, len(n.frags))
	for id := range n.frags {
		fragIDs = append(fragIDs, id)
	}
	sort.Slice(fragIDs, func(i, j int) bool { return fragIDs[i] < fragIDs[j] })

	type fragPlan struct {
		frag   *Frag
		frames []frameInfo
		runs   [][2]int
	}
	var plans []fragPlan
	for _, id := range fragIDs {
		fr := n.frags[id]
		if fr.fn == nil {
			continue
		}
		frames, err := n.walkFrames(fr)
		if err != nil {
			panic(fmt.Sprintf("kernel: node %d: %v", n.ID, err))
		}
		var runs [][2]int
		i := 0
		for i < len(frames) {
			if frames[i].self != o {
				i++
				continue
			}
			j := i
			for j+1 < len(frames) && frames[j+1].self == o {
				j++
			}
			for k := i; k <= j; k++ {
				if frames[k].pinned {
					// Defer the whole move until the creation chain ends.
					n.pendingMoves = append(n.pendingMoves, pendingMove{o.OID, dest, fix})
					return
				}
			}
			runs = append(runs, [2]int{i, j})
			i = j + 1
		}
		if len(runs) > 0 {
			if fr.Status == FragStateInTransit {
				// Another object's in-flight move holds deferred stack
				// restructuring over this fragment; retry once it resolves.
				n.pendingMoves = append(n.pendingMoves, pendingMove{o.OID, dest, fix})
				n.armMoveRetry()
				return
			}
			plans = append(plans, fragPlan{frag: fr, frames: frames, runs: runs})
		}
	}

	// The move will happen: open its observability span (deferred moves
	// above never reach here, so no abandoned spans).
	sp := n.beginMoveSpan(o, dest, "plain")

	// Build wire fragments and restructure local stacks.
	var wireFrags []wire.Fragment
	pieceIDOf := map[*Frag]uint32{} // original fragment -> wire id of its top piece
	var refs []wire.Value           // every shipped value, for hint collection
	for _, plan := range plans {
		fr, frames := plan.frag, plan.frames
		m := len(frames)
		// Walk runs youngest-to-oldest, building moved pieces and local
		// remainder pieces.
		type localPiece struct {
			frag *Frag // nil until materialized
			a, b int
		}
		// Partition [0..m) into alternating segments.
		var segs []struct {
			moved bool
			a, b  int
		}
		cursor := 0
		for _, r := range plan.runs {
			if r[0] > cursor {
				segs = append(segs, struct {
					moved bool
					a, b  int
				}{false, cursor, r[0] - 1})
			}
			segs = append(segs, struct {
				moved bool
				a, b  int
			}{true, r[0], r[1]})
			cursor = r[1] + 1
		}
		if cursor < m {
			segs = append(segs, struct {
				moved bool
				a, b  int
			}{false, cursor, m - 1})
		}
		// Materialize fragments for each segment. The topmost segment keeps
		// fr's identity; others get fresh IDs. Local remainder pieces are
		// stack surgery, so they materialize as (possibly deferred) commit
		// operations; the ids are minted eagerly for the wire links.
		ids := make([]uint32, len(segs))
		frs := make([]*Frag, len(segs))
		for si := range segs {
			if si == 0 {
				ids[si] = fr.ID
				if !segs[si].moved {
					frs[si] = fr
				}
			} else {
				ids[si] = n.mintFragID()
				if !segs[si].moved {
					si := si
					tx.do(func() {
						frs[si] = n.adoptRemainder(fr, frames, segs[si].a, segs[si].b, ids[si])
					})
				}
			}
		}
		// Links: each segment links to the one below; the bottom segment
		// inherits fr's original Link — captured before any segment mutates
		// fr.Link (the topmost unmoved segment reassigns it below).
		origLink := fr.Link
		linkOf := func(si int) wire.Fragment {
			var l wire.Fragment
			if si == len(segs)-1 {
				l.LinkNode = origLink.Node
				l.LinkFrag = origLink.Frag
			} else if segs[si+1].moved {
				l.LinkNode = int32(dest)
				l.LinkFrag = ids[si+1]
			} else {
				l.LinkNode = int32(n.ID)
				l.LinkFrag = ids[si+1]
			}
			return l
		}
		for si, seg := range segs {
			lk := linkOf(si)
			if seg.moved {
				wf := wire.Fragment{
					FragID: ids[si], LinkNode: lk.LinkNode, LinkFrag: lk.LinkFrag,
				}
				if si == 0 {
					wf.Executing = true
					wf.Status, wf.CondIndex = wireStatus(fr)
					pieceIDOf[fr] = ids[si]
				} else {
					wf.Status = wire.FragBlockedCall
				}
				for k := seg.a; k <= seg.b; k++ {
					act, vs := n.marshalFrame(conv, peer, frames[k])
					n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
						Kind: obs.EvThreadStop, Span: sp.ID, Frag: fr.ID,
						Obj: uint32(o.OID), A: uint64(act.Stop), Str: frames[k].lf.name()})
					wf.Acts = append(wf.Acts, act)
					refs = append(refs, vs...)
					sp.Acts++
				}
				wireFrags = append(wireFrags, wf)
			} else if si > 0 {
				// Interior/lower remainder: waits for the piece above to
				// return into it. Its records are relocated and its bottom
				// cut by the adoptRemainder commit op above.
				si := si
				tx.do(func() {
					lfr := frs[si]
					lfr.Link = Link{Node: lk.LinkNode, Frag: lk.LinkFrag}
					lfr.Status = FragStateBlockedCall
				})
			} else {
				// Top remainder piece: records stay in place; cut the
				// oldest frame's caller — it now returns via Link.
				bot := frames[seg.b]
				tx.do(func() {
					fr.Link = Link{Node: lk.LinkNode, Frag: lk.LinkFrag}
					kf := uint32(0)
					if bot.kont {
						kf = kontFlag
					}
					n.st32(bot.fp+uint32(bot.lf.fc.Template.RetDescOff), descNone|kf)
				})
			}
		}
		if segs[0].moved {
			// The thread's active top leaves this node: forward late
			// returns, and drop the local fragment.
			tx.do(func() {
				n.movedFrags[fr.ID] = dest
				n.unscheduleFrag(fr)
			})
		}
		if tx.live {
			// Freeze the fragment until the destination acknowledges the
			// install (its wire status was captured above).
			tx.suspend(fr)
		}
	}

	// Object data.
	tmpl := o.Code.oc.Template
	data := make([]wire.Value, len(tmpl.Slots))
	for i, k := range tmpl.Slots {
		v, err := n.wireTempValue(conv, k, n.ld32(o.slotAddr(i)))
		if err != nil {
			panic(fmt.Sprintf("kernel: move: %v", err))
		}
		data[i] = v
	}
	refs = append(refs, data...)

	// Monitor state: map holder/queues to shipped piece IDs.
	o.Epoch++
	sp.Frags = len(wireFrags)
	msg := &wire.Move{
		Object: o.OID, CodeOID: o.Code.oc.CodeOID, Epoch: o.Epoch, Fixed: fix,
		Data: data, Frags: wireFrags, SpanID: sp.ID,
	}
	if o.Mon != nil {
		if o.Mon.Holder != nil {
			msg.MonLocked = true
			msg.MonHolder = mustPiece(pieceIDOf, o.Mon.Holder, "monitor holder")
		}
		for _, e := range o.Mon.Entry {
			msg.EntryQueue = append(msg.EntryQueue, mustPiece(pieceIDOf, e, "monitor entrant"))
		}
		for _, q := range o.Mon.Conds {
			var wq []uint32
			for _, w := range q {
				wq = append(wq, mustPiece(pieceIDOf, w, "condition waiter"))
			}
			msg.CondQueues = append(msg.CondQueues, wq)
		}
	}
	msg.Hints = n.collectHints(refs)
	n.chargeConv(conv, prev)
	n.finishMoveOut(sp, o, dest, conv, prev)

	// The object becomes a remote proxy here; stale machine addresses keep
	// resolving to it through byAddr. Under chaos this is the final commit
	// operation: the object stays resident until the destination acks.
	n.dispatchMove(dest, msg, tx, sp, func() {
		o.Resident = false
		o.LastKnown = dest
		o.LocStale = false
		o.chained = false
		o.Mon = nil
		n.Migrations++
	})
}

func mustPiece(m map[*Frag]uint32, f *Frag, what string) uint32 {
	id, ok := m[f]
	if !ok {
		panic(fmt.Sprintf("kernel: %s did not migrate with its object", what))
	}
	return id
}

// wireStatus maps a fragment state to its wire form.
func wireStatus(f *Frag) (wire.FragStatus, uint16) {
	switch f.Status {
	case FragStateBlockedCall:
		return wire.FragBlockedCall, 0
	case FragStateBlockedEntry:
		return wire.FragBlockedEntry, 0
	case FragStateWaitCond:
		return wire.FragWaitCond, f.condIndex
	default:
		return wire.FragRunnable, 0
	}
}

// mintFragID allocates a globally unique fragment id.
func (n *Node) mintFragID() uint32 {
	n.fragCtr++
	return uint32(n.ID)<<24 | n.fragCtr
}

// unscheduleFrag removes a fragment whose execution migrated away,
// reclaiming its stack region (any local remainder pieces were relocated to
// their own regions).
func (n *Node) unscheduleFrag(f *Frag) {
	f.Status = FragStateDead
	delete(n.frags, f.ID)
	n.free(f.stackBase, n.cluster.StackSize)
}

// adoptRemainder creates a fragment for a local remainder piece [a..b] of
// frames, relocating its records into a fresh stack region (the records
// above and below belonged to other pieces).
func (n *Node) adoptRemainder(orig *Frag, frames []frameInfo, a, b int, id uint32) *Frag {
	base, err := n.alloc(n.cluster.StackSize)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	nf := &Frag{ID: id, Status: FragStateBlockedCall, Link: Link{Node: -1},
		stackBase: base, stackLimit: base + n.cluster.StackSize, waitNode: -1}
	n.frags[id] = nf
	// Relocate oldest-first so SavedFP links point downward correctly.
	place := base
	newFPs := make([]uint32, b-a+1)
	for k := b; k >= a; k-- {
		fi := frames[k]
		t := fi.lf.fc.Template
		copy(n.Mem[place:place+uint32(t.Size)], n.Mem[fi.fp:fi.fp+uint32(t.Size)])
		newFPs[k-a] = place
		// Fix the saved-FP word: oldest points at base (unused), others at
		// the record below.
		if k == b {
			n.st32(place+uint32(t.SavedFPOff), base)
			// Cut the caller: the piece below this remainder is reached
			// through the fragment Link, not a local record.
			kf := uint32(0)
			if fi.kont {
				kf = kontFlag
			}
			n.st32(place+uint32(t.RetDescOff), descNone|kf)
		} else {
			n.st32(place+uint32(t.SavedFPOff), newFPs[k+1-a])
		}
		n.st32(place+uint32(t.TempBaseOff), place+uint32(t.TempOff))
		place += uint32(t.Size)
		nf.nframes++
	}
	// Top of the remainder: reconstruct CPU state from the walk.
	top := frames[a]
	t := top.lf.fc.Template
	nf.fn = top.lf
	nf.CPU.Regs = top.regs
	nf.CPU.FP = newFPs[0]
	nf.CPU.PC = top.stop.PC
	nf.CPU.Self = n.mustAddr(top.self)
	nf.CPU.TempBase = newFPs[0] + uint32(t.TempOff)
	nf.CPU.TempDepth = int32(top.stop.TempDepth)
	nf.CPU.LitBase = top.lf.litBase
	return nf
}

func (n *Node) mustAddr(o *Obj) uint32 {
	a, err := n.ensureAddressable(o)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	return a
}

// marshalFrame converts one activation to machine-independent form,
// returning also the shipped values (for hint collection). It runs over
// the cached conversion plan for (function, stop, peer ISA) — see
// plan.go — compiling it on the first hop through this stop.
func (n *Node) marshalFrame(conv wire.Converter, peer arch.ID, fi frameInfo) (wire.MIActivation, []wire.Value) {
	stopNum := uint16(fi.stop.Stop)
	if fi.entry {
		stopNum = wire.EntryStop
	}
	return n.marshalFramePlanned(conv, fi, n.planFor(fi.lf, stopNum, peer))
}

// ---------------------------------------------------------------- receive

// finishMoveIn closes the destination side of a hop's span (MI→MD
// respecialization, measured on this node's CPU timeline) and emits the
// conversion and migrate-in events.
func (n *Node) finishMoveIn(src int, p *wire.Move, conv wire.Converter, prev wire.Stats, respecStart int64) {
	cur := conv.Stats()
	calls := cur.Calls - prev.Calls
	rec := n.cluster.Rec
	rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvConvIn,
		Span: p.SpanID, Obj: uint32(p.Object), A: calls, B: cur.Bytes - prev.Bytes})
	rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvMigrateIn,
		Span: p.SpanID, Obj: uint32(p.Object), B: uint64(src)})
	rec.SpanRespec(p.SpanID, respecStart, int64(n.CPU.FreeAt), calls)
}

// recvMove installs a migrated object and its thread fragments. Under a
// chaos plan it is the participant side of the two-phase commit: duplicate
// spans are suppressed (the object is never installed twice), the payload
// is structurally validated before anything is touched, and the source gets
// a MoveAck either way.
func (n *Node) recvMove(src int, p *wire.Move) {
	if n.chaosOn() {
		if n.seenSpans[p.SpanID] {
			// Retransmitted or duplicated Move: already installed. Re-ack —
			// the earlier ack may have raced a crash window.
			n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
				Kind: obs.EvMoveDupDrop, Span: p.SpanID, Obj: uint32(p.Object), B: uint64(src)})
			n.cluster.Rec.Metrics().Add("move_dup_drops", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			n.sendMsg(src, &wire.MoveAck{Object: p.Object, SpanID: p.SpanID, Epoch: p.Epoch, Ok: true})
			return
		}
		if err := n.validateMove(p); err != nil {
			// Protocol error: refuse the install; the source's abort path
			// restores the object there and retries or degrades.
			n.tracef("refusing move of %v from node%d: %v", p.Object, src, err)
			n.cluster.Rec.Metrics().Add("move_rejects", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			n.sendMsg(src, &wire.MoveAck{Object: p.Object, SpanID: p.SpanID, Epoch: p.Epoch,
				Ok: false, Err: err.Error()})
			return
		}
		n.seenSpans[p.SpanID] = true
	}
	respecStart := int64(n.CPU.FreeAt)
	if now := int64(n.now()); now > respecStart {
		respecStart = now
	}
	n.charge(uint64(n.cluster.Costs.MigrateCycles))
	conv := n.cluster.converterFor(n, n.cluster.Nodes[src].Spec.ID)
	prev := conv.Stats()
	hints := map[oid.OID]int{}
	for _, h := range p.Hints {
		hints[h.OID] = int(h.Node)
	}

	if p.IsArray {
		n.installArray(src, p, conv, hints)
		n.chargeConv(conv, prev)
		n.finishMoveIn(src, p, conv, prev, respecStart)
		if n.chaosOn() {
			n.sendMsg(src, &wire.MoveAck{Object: p.Object, SpanID: p.SpanID, Epoch: p.Epoch, Ok: true})
		}
		return
	}

	lc, err := n.loadCode(p.CodeOID)
	if err != nil {
		panic(fmt.Sprintf("kernel: node %d: %v", n.ID, err))
	}
	tmpl := lc.oc.Template
	// Upgrade an existing proxy or create a fresh entry; the source node
	// knows the OID, so the object is pinned for the local collector.
	n.exported[p.Object] = true
	o := n.proxyFor(p.Object, src)
	if o.Resident && !tmpl.Immutable {
		if n.chaosOn() {
			// A distinct span delivered an object that already lives here —
			// the residual double-move corner. Ack (the copy here is
			// authoritative) and flag it; the conflict metric makes the
			// disagreement visible instead of crashing the node.
			n.tracef("CONFLICT: %v arrived from node%d (span %d) but is already resident",
				p.Object, src, p.SpanID)
			n.cluster.Rec.Metrics().Add("move_conflicts", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			n.sendMsg(src, &wire.MoveAck{Object: p.Object, SpanID: p.SpanID, Epoch: p.Epoch, Ok: true})
			return
		}
		panic(fmt.Sprintf("kernel: node %d: %v arrived but is already resident", n.ID, p.Object))
	}
	o.Epoch = p.Epoch
	addr, err := n.alloc(arch.ObjDataOff + uint32(tmpl.DataSize()))
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	o.Kind = ObjPlain
	o.Resident = true
	o.LocStale = false
	o.chained = false
	o.Addr = addr
	o.Code = lc
	o.Fixed = p.Fixed
	o.Mon = newMonitor(tmpl.NumConds)
	n.byAddr[addr] = o
	n.st32(addr, o.TableIdx)
	for i, k := range tmpl.Slots {
		w, err := n.unwireValue(conv, k, p.Data[i], hints, src)
		if err != nil {
			panic(fmt.Sprintf("kernel: node %d: unmarshal slot %d: %v", n.ID, i, err))
		}
		n.st32(o.slotAddr(i), w)
	}

	// Rebuild fragments.
	byID := map[uint32]*Frag{}
	for i := range p.Frags {
		f := n.installFragment(src, &p.Frags[i], o, conv, hints)
		byID[p.Frags[i].FragID] = f
	}
	// Monitor state.
	if p.MonLocked {
		o.Mon.Holder = byID[p.MonHolder]
	}
	for _, id := range p.EntryQueue {
		o.Mon.Entry = append(o.Mon.Entry, byID[id])
	}
	for k, q := range p.CondQueues {
		for _, id := range q {
			o.Mon.Conds[k] = append(o.Mon.Conds[k], byID[id])
		}
	}
	n.chargeConv(conv, prev)
	n.finishMoveIn(src, p, conv, prev, respecStart)
	if n.chaosOn() {
		n.sendMsg(src, &wire.MoveAck{Object: p.Object, SpanID: p.SpanID, Epoch: p.Epoch, Ok: true})
	}
}

// installArray materializes a migrated array.
func (n *Node) installArray(src int, p *wire.Move, conv wire.Converter, hints map[oid.OID]int) {
	n.exported[p.Object] = true
	o := n.proxyFor(p.Object, src)
	o.Epoch = p.Epoch
	length := uint32(len(p.Data))
	addr, err := n.alloc(arch.ArrDataOff + 4*length)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	o.Kind = ObjArray
	o.Resident = true
	o.LocStale = false
	o.chained = false
	o.Addr = addr
	o.ElemKind = ir.VK(p.ArrayElemKind)
	o.Len = length
	o.Fixed = p.Fixed
	n.byAddr[addr] = o
	n.st32(addr, o.TableIdx)
	n.st32(addr+arch.LenOff, length)
	for i, v := range p.Data {
		w, err := n.unwireValue(conv, o.ElemKind, v, hints, src)
		if err != nil {
			panic(fmt.Sprintf("kernel: unmarshal array: %v", err))
		}
		n.st32(o.slotAddr(i), w)
	}
}

// installFragment re-specializes one migrated thread fragment to this
// architecture: machine-independent activations are converted youngest
// first (as the templates require), then placed oldest-first in a fresh
// stack region — the paper's relocation pass (§3.5) — while register homes
// are refilled per this ISA's templates and callee-save areas are
// reconstructed.
func (n *Node) installFragment(src int, wf *wire.Fragment, obj *Obj,
	conv wire.Converter, hints map[oid.OID]int) *Frag {
	base, err := n.alloc(n.cluster.StackSize)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	f := &Frag{ID: wf.FragID, Link: Link{Node: wf.LinkNode, Frag: wf.LinkFrag},
		stackBase: base, stackLimit: base + n.cluster.StackSize, waitNode: -1}
	n.frags[f.ID] = f

	type convFrame struct {
		lf    *loadedFunc
		vars  []uint32
		temps []uint32
		stop  busstop.Info
		entry bool
	}
	// Convert youngest first (wire order), through the cached plan for
	// (function, stop, sender ISA) — see plan.go.
	peer := n.cluster.Nodes[src].Spec.ID
	cfs := make([]convFrame, len(wf.Acts))
	for i := range wf.Acts {
		a := &wf.Acts[i]
		lc, err := n.loadCode(a.CodeOID)
		if err != nil {
			panic(fmt.Sprintf("kernel: node %d: %v", n.ID, err))
		}
		lf := lc.funcs[a.FuncIndex]
		pl := n.planFor(lf, a.Stop, peer)
		cf := convFrame{lf: lf, stop: pl.stop, entry: pl.entry}
		if len(a.Vars) > 0 {
			cf.vars = make([]uint32, len(a.Vars))
		}
		for vi, v := range a.Vars {
			w, err := n.unwireClassValue(conv, pl.vars[vi].class, v, hints, src)
			if err != nil {
				panic(fmt.Sprintf("kernel: unmarshal var: %v", err))
			}
			cf.vars[vi] = w
		}
		if len(a.Temps) > 0 {
			cf.temps = make([]uint32, len(a.Temps))
		}
		for ti, v := range a.Temps {
			w, err := n.unwireClassValue(conv, pl.tempClassAt(ti), v, hints, src)
			if err != nil {
				panic(fmt.Sprintf("kernel: unmarshal temp: %v", err))
			}
			cf.temps[ti] = w
		}
		cfs[i] = cf
	}

	// Relocation/placement pass: lay records out oldest first, simulating
	// the register file to rebuild callee-save areas, exactly inverse to
	// the source-side unwinding.
	objAddr := n.mustAddr(obj)
	var regs [16]uint32
	place := base
	fps := make([]uint32, len(cfs))
	for i := len(cfs) - 1; i >= 0; i-- {
		cf := cfs[i]
		t := cf.lf.fc.Template
		if place+uint32(t.Size) > f.stackLimit {
			panic("kernel: migrated stack exceeds stack region")
		}
		fp := place
		place += uint32(t.Size)
		fps[i] = fp
		for b := fp; b < place; b++ {
			n.Mem[b] = 0
		}
		// Control words.
		if i == len(cfs)-1 {
			// Oldest: caller is the fragment Link.
			n.st32(fp+uint32(t.SavedFPOff), base)
			n.st32(fp+uint32(t.RetDescOff), descNone)
			n.st32(fp+uint32(t.RetPCOff), 0)
		} else {
			n.st32(fp+uint32(t.SavedFPOff), fps[i+1])
			caller := cfs[i+1]
			n.st32(fp+uint32(t.RetDescOff), caller.lf.desc)
			// Bus stop -> this machine's PC (works for exit-only stops:
			// number-to-PC conversion is exactly what they permit).
			n.st32(fp+uint32(t.RetPCOff), caller.stop.PC)
		}
		n.st32(fp+uint32(t.SelfOff), objAddr)
		n.st32(fp+uint32(t.TempBaseOff), fp+uint32(t.TempOff))
		// Callee-save area: the caller's (current) values of the home
		// registers this frame uses.
		for ri, r := range t.SavedRegs {
			n.st32(fp+uint32(t.SavedRegsOff)+uint32(4*ri), regs[r&0xf])
		}
		// Variables into their homes on this ISA.
		for vi, h := range t.Vars {
			w := uint32(0)
			if vi < len(cf.vars) {
				w = cf.vars[vi]
			}
			if h.InReg {
				regs[h.Reg&0xf] = w
			} else {
				n.st32(fp+uint32(h.Off), w)
			}
		}
		// Live temporaries.
		for ti, w := range cf.temps {
			n.st32(fp+uint32(t.TempOff)+uint32(4*ti), w)
		}
		f.nframes++
	}

	// Thread state of the top activation.
	top := cfs[0]
	t := top.lf.fc.Template
	f.fn = top.lf
	f.CPU.Regs = regs
	f.CPU.FP = fps[0]
	f.CPU.Self = objAddr
	f.CPU.TempBase = fps[0] + uint32(t.TempOff)
	f.CPU.LitBase = top.lf.litBase
	if top.entry {
		f.CPU.PC = 0
		f.CPU.TempDepth = 0
	} else {
		f.CPU.PC = top.stop.PC
		f.CPU.TempDepth = int32(len(top.temps))
	}

	// Scheduling state.
	switch wf.Status {
	case wire.FragRunnable:
		if wf.Executing {
			n.enqueue(f)
		} else {
			f.Status = FragStateBlockedCall
		}
	case wire.FragBlockedCall:
		f.Status = FragStateBlockedCall
	case wire.FragBlockedEntry:
		f.Status = FragStateBlockedEntry
	case wire.FragWaitCond:
		f.Status = FragStateWaitCond
		f.condIndex = wf.CondIndex
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvThreadResume, Frag: f.ID, Obj: uint32(obj.OID),
		A: uint64(len(wf.Acts))})
	return f
}
