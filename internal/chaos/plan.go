// Package chaos provides seeded, deterministic fault injection for the
// simulated network and the knobs of the kernel's crash-tolerant migration
// protocol. A Plan describes what goes wrong — per-frame drop / duplicate /
// delay / corruption probabilities, link partitions between node pairs, and
// scheduled node crashes with restarts — and every decision draws from a
// splitmix64 PRNG seeded in the plan, so the same seed yields the same
// faults on the same frame sequence and a byte-identical event log.
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netsim"
)

// Crash schedules one node failure. The node stops executing and receiving
// at At; if RestartAt > At it comes back (with its kernel and link state
// intact — the fail-stop model has durable state), otherwise it stays down.
type Crash struct {
	Node      int
	At        netsim.Micros
	RestartAt netsim.Micros // 0: never restarts
}

// Partition cuts the link between nodes A and B (both directions) during
// [From, Until).
type Partition struct {
	A, B        int
	From, Until netsim.Micros
}

// Plan is a complete fault plan plus protocol tuning. The zero value
// injects nothing; protocol knobs left zero take the defaults below.
type Plan struct {
	Seed uint64

	// Per-frame fault probabilities in [0,1).
	Drop    float64
	Dup     float64
	Delay   float64
	Corrupt float64

	// DelayMicros bounds the extra delivery delay of a delayed frame
	// (uniform in [1, DelayMicros]; 0 selects 1000µs).
	DelayMicros netsim.Micros

	Crashes    []Crash
	Partitions []Partition

	// Protocol tuning (zero selects the default).
	HeartbeatEvery netsim.Micros // heartbeat period (default 50ms)
	SuspectAfter   netsim.Micros // silence before suspicion (default 400ms)
	CommitTimeout  netsim.Micros // move-commit abort window (default 1s)
	RTOBase        netsim.Micros // first retransmission timeout (default 20ms)
	RTOMax         netsim.Micros // retransmission backoff cap (default 320ms)
	MaxRetrans     int           // attempts before giving up on a suspect (default 10)
	MoveRetry      netsim.Micros // delay before retrying an aborted move (default 300ms)
}

// Defaults.
const (
	defHeartbeat   = netsim.Micros(50_000)
	defSuspect     = netsim.Micros(400_000)
	defCommit      = netsim.Micros(1_000_000)
	defRTOBase     = netsim.Micros(20_000)
	defRTOMax      = netsim.Micros(320_000)
	defMaxRetrans  = 10
	defMoveRetry   = netsim.Micros(300_000)
	defDelayBound  = netsim.Micros(1_000)
)

// HeartbeatPeriod returns the effective heartbeat period.
func (p *Plan) HeartbeatPeriod() netsim.Micros {
	if p.HeartbeatEvery > 0 {
		return p.HeartbeatEvery
	}
	return defHeartbeat
}

// SuspectTimeout returns the silence interval after which a peer is
// suspected down.
func (p *Plan) SuspectTimeout() netsim.Micros {
	if p.SuspectAfter > 0 {
		return p.SuspectAfter
	}
	return defSuspect
}

// CommitWindow returns how long a move source waits for the destination's
// install ack before aborting the move.
func (p *Plan) CommitWindow() netsim.Micros {
	if p.CommitTimeout > 0 {
		return p.CommitTimeout
	}
	return defCommit
}

// RTOMin returns the first retransmission timeout.
func (p *Plan) RTOMin() netsim.Micros {
	if p.RTOBase > 0 {
		return p.RTOBase
	}
	return defRTOBase
}

// RTOCap returns the retransmission backoff ceiling.
func (p *Plan) RTOCap() netsim.Micros {
	if p.RTOMax > 0 {
		return p.RTOMax
	}
	return defRTOMax
}

// Retries returns the retransmission attempt bound.
func (p *Plan) Retries() int {
	if p.MaxRetrans > 0 {
		return p.MaxRetrans
	}
	return defMaxRetrans
}

// RetryMoveAfter returns the delay before an aborted move is retried.
func (p *Plan) RetryMoveAfter() netsim.Micros {
	if p.MoveRetry > 0 {
		return p.MoveRetry
	}
	return defMoveRetry
}

// DelayBound returns the delayed-frame extra-delay bound.
func (p *Plan) DelayBound() netsim.Micros {
	if p.DelayMicros > 0 {
		return p.DelayMicros
	}
	return defDelayBound
}

// ParsePlan parses the -chaos flag grammar: comma-separated key=value
// fields.
//
//	seed=7                 PRNG seed (default 1)
//	drop=0.05              per-frame drop probability
//	dup=0.03               per-frame duplicate probability
//	delay=0.02:2ms         per-frame delay probability : delay bound
//	corrupt=0.02           per-frame corruption probability
//	crash=2@120ms:320ms    node 2 crashes at 120ms, restarts at 320ms
//	crash=2@120ms          node 2 crashes at 120ms and stays down
//	partition=0-1@10ms:20ms  cut link 0<->1 during [10ms, 20ms)
//	hb=50ms suspect=400ms commit=1s rto=20ms rtomax=320ms
//	retries=10 retrymove=300ms        protocol tuning
//
// Durations accept s, ms, us or µs suffixes; a bare number is microseconds.
// crash= and partition= may repeat.
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			p.Drop, err = parseProb(val)
		case "dup":
			p.Dup, err = parseProb(val)
		case "corrupt":
			p.Corrupt, err = parseProb(val)
		case "delay":
			prob, bound, cut := strings.Cut(val, ":")
			if p.Delay, err = parseProb(prob); err == nil && cut {
				p.DelayMicros, err = parseDuration(bound)
			}
		case "crash":
			var c Crash
			if c, err = parseCrash(val); err == nil {
				p.Crashes = append(p.Crashes, c)
			}
		case "partition":
			var pt Partition
			if pt, err = parsePartition(val); err == nil {
				p.Partitions = append(p.Partitions, pt)
			}
		case "hb":
			p.HeartbeatEvery, err = parseDuration(val)
		case "suspect":
			p.SuspectAfter, err = parseDuration(val)
		case "commit":
			p.CommitTimeout, err = parseDuration(val)
		case "rto":
			p.RTOBase, err = parseDuration(val)
		case "rtomax":
			p.RTOMax, err = parseDuration(val)
		case "retries":
			p.MaxRetrans, err = strconv.Atoi(val)
		case "retrymove":
			p.MoveRetry, err = parseDuration(val)
		default:
			return nil, fmt.Errorf("chaos: unknown field %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: field %q: %v", field, err)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("probability %v outside [0,1)", v)
	}
	return v, nil
}

// parseDuration parses "1s", "300ms", "200us", "200µs" or a bare
// microsecond count.
func parseDuration(s string) (netsim.Micros, error) {
	scale := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		s, scale = s[:len(s)-2], 1e3
	case strings.HasSuffix(s, "us"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "µs"):
		s = strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "s"):
		s, scale = s[:len(s)-1], 1e6
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return netsim.Micros(v * scale), nil
}

// parseCrash parses "node@at[:restart]".
func parseCrash(s string) (Crash, error) {
	nodeStr, times, ok := strings.Cut(s, "@")
	if !ok {
		return Crash{}, fmt.Errorf("want node@at[:restart]")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return Crash{}, err
	}
	atStr, restartStr, hasRestart := strings.Cut(times, ":")
	at, err := parseDuration(atStr)
	if err != nil {
		return Crash{}, err
	}
	c := Crash{Node: node, At: at}
	if hasRestart {
		if c.RestartAt, err = parseDuration(restartStr); err != nil {
			return Crash{}, err
		}
		if c.RestartAt <= c.At {
			return Crash{}, fmt.Errorf("restart %v not after crash %v", c.RestartAt, c.At)
		}
	}
	return c, nil
}

// parsePartition parses "a-b@from:until".
func parsePartition(s string) (Partition, error) {
	pair, times, ok := strings.Cut(s, "@")
	if !ok {
		return Partition{}, fmt.Errorf("want a-b@from:until")
	}
	aStr, bStr, ok := strings.Cut(pair, "-")
	if !ok {
		return Partition{}, fmt.Errorf("want a-b@from:until")
	}
	a, err := strconv.Atoi(aStr)
	if err != nil {
		return Partition{}, err
	}
	b, err := strconv.Atoi(bStr)
	if err != nil {
		return Partition{}, err
	}
	fromStr, untilStr, ok := strings.Cut(times, ":")
	if !ok {
		return Partition{}, fmt.Errorf("want a-b@from:until")
	}
	from, err := parseDuration(fromStr)
	if err != nil {
		return Partition{}, err
	}
	until, err := parseDuration(untilStr)
	if err != nil {
		return Partition{}, err
	}
	if until <= from {
		return Partition{}, fmt.Errorf("until %v not after from %v", until, from)
	}
	return Partition{A: a, B: b, From: from, Until: until}, nil
}

// String renders the plan compactly (for traces and CLI echo).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	if p.Drop > 0 {
		fmt.Fprintf(&b, ",drop=%g", p.Drop)
	}
	if p.Dup > 0 {
		fmt.Fprintf(&b, ",dup=%g", p.Dup)
	}
	if p.Delay > 0 {
		fmt.Fprintf(&b, ",delay=%g:%dus", p.Delay, p.DelayBound())
	}
	if p.Corrupt > 0 {
		fmt.Fprintf(&b, ",corrupt=%g", p.Corrupt)
	}
	for _, c := range p.Crashes {
		fmt.Fprintf(&b, ",crash=%d@%dus", c.Node, c.At)
		if c.RestartAt > 0 {
			fmt.Fprintf(&b, ":%dus", c.RestartAt)
		}
	}
	for _, pt := range p.Partitions {
		fmt.Fprintf(&b, ",partition=%d-%d@%dus:%dus", pt.A, pt.B, pt.From, pt.Until)
	}
	return b.String()
}
