// Package dir implements the replicated object-location directory (emdir).
//
// The paper's kernels locate objects by chasing forwarding addresses left
// behind by moves (§4.3); a crash in the middle of a chain orphans every
// proxy pointing through the dead node. emdir replaces the chain as the
// primary location mechanism with sharded ownership records — OID → (home
// node, epoch) — replicated across a small replica set and updated by one
// single-decree Paxos round per move commit. Each move of an object is its
// own consensus instance, keyed by the (oid, epoch) slot the move's epoch
// bump created, so decrees from different moves never collide and a decree
// is immutable once chosen. After a crash/restart a locate is one shard
// query instead of a forwarding-address walk; the chase survives only as
// the degraded-mode fallback.
//
// This package holds the pure protocol state machines — acceptor, learner
// store, proposer — with no I/O and no time: the kernel drives message
// exchange over the simulated network (internal/kernel/dir.go) so directory
// traffic is charged and fault-injected like any other kernel traffic. The
// protocol shape follows the classic single-decree synod (cf. the paxos lab
// exemplar named in ROADMAP.md): prepare/promise, accept/accepted, learn.
package dir

import (
	"sort"

	"repro/internal/oid"
)

// Config sizes the directory.
type Config struct {
	// Replicas is the replica-set size per shard (clamped to node count).
	Replicas int
	// Shards is the number of shards; records hash to shards by OID.
	Shards int
}

// Normalize clamps the configuration to a cluster of n nodes: at least one
// replica, no more replicas than nodes, and one shard per node by default.
func (c Config) Normalize(n int) Config {
	if c.Shards <= 0 {
		c.Shards = n
	}
	if c.Shards > n {
		c.Shards = n
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > n {
		c.Replicas = n
	}
	return c
}

// Quorum is the majority size of a replica set.
func (c Config) Quorum() int { return c.Replicas/2 + 1 }

// ShardOf maps an OID to its shard.
func ShardOf(o oid.OID, shards int) int {
	return int(uint32(o) % uint32(shards))
}

// ReplicaSet returns the (sorted) node IDs replicating a shard: the
// consecutive run of nodes starting at the shard index, wrapping mod n.
func ReplicaSet(shard, replicas, nodes int) []int {
	if replicas > nodes {
		replicas = nodes
	}
	set := make([]int, replicas)
	for i := range set {
		set[i] = (shard + i) % nodes
	}
	sort.Ints(set)
	return set
}

// Slot names one consensus instance: the decree that object o's move to
// epoch e landed on a particular home node. Epoch bumps on every move, so
// each move gets a fresh slot.
type Slot struct {
	OID   oid.OID
	Epoch uint32
}

// Less orders slots for deterministic iteration.
func (s Slot) Less(t Slot) bool {
	if s.OID != t.OID {
		return s.OID < t.OID
	}
	return s.Epoch < t.Epoch
}

// SortSlots sorts a slot slice in canonical order.
func SortSlots(ss []Slot) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Less(ss[j]) })
}

// Record is one ownership record: where an object lives as of an epoch.
type Record struct {
	Node  int32
	Epoch uint32
}

// Acceptor is the per-slot acceptor state held by each replica.
type Acceptor struct {
	Promised uint64 // highest ballot promised
	AccBal   uint64 // ballot of the accepted value, 0 if none
	AccNode  int32  // accepted value (home node)
}

// Prepare handles a prepare(ballot) request. On success it promises the
// ballot and reports any previously accepted (ballot, value) so the
// proposer can adopt it; on failure it reports the ballot that blocked.
func (a *Acceptor) Prepare(ballot uint64) (ok bool, promised, accBal uint64, accNode int32) {
	if ballot <= a.Promised {
		return false, a.Promised, 0, -1
	}
	a.Promised = ballot
	return true, ballot, a.AccBal, a.AccNode
}

// Accept handles an accept(ballot, node) request: accepted iff the ballot
// is at least the promise.
func (a *Acceptor) Accept(ballot uint64, node int32) (ok bool, promised uint64) {
	if ballot < a.Promised {
		return false, a.Promised
	}
	a.Promised = ballot
	a.AccBal = ballot
	a.AccNode = node
	return true, ballot
}

// Store is the learner state: chosen ownership records, one per object,
// monotone in epoch. Replicas answer lookups from here.
type Store struct {
	recs map[oid.OID]Record
}

// NewStore returns an empty record store.
func NewStore() *Store { return &Store{recs: make(map[oid.OID]Record)} }

// Learn applies a chosen decree. Only strictly newer epochs overwrite (the
// same guard proxies apply to UpdateLoc hints), so replayed or reordered
// learns are harmless.
func (s *Store) Learn(o oid.OID, node int32, epoch uint32) bool {
	if r, ok := s.recs[o]; ok && epoch <= r.Epoch {
		return false
	}
	s.recs[o] = Record{Node: node, Epoch: epoch}
	return true
}

// Lookup answers the current record for an object, if any decree chose one.
func (s *Store) Lookup(o oid.OID) (Record, bool) {
	r, ok := s.recs[o]
	return r, ok
}

// Len reports how many objects have records.
func (s *Store) Len() int { return len(s.recs) }

// OIDs returns the recorded object IDs in sorted order (for deterministic
// iteration in tests and debug dumps).
func (s *Store) OIDs() []oid.OID {
	out := make([]oid.OID, 0, len(s.recs))
	for o := range s.recs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Proposal phases.
const (
	phaseIdle = iota
	phasePrepare
	phaseAccept
	phaseDone
)

// Proposal is the proposer side of one decree: the source node of a move
// drives it after the destination acknowledges the install. The kernel owns
// message exchange and timeouts; this struct owns ballots, quorum counting
// and value adoption.
type Proposal struct {
	Slot   Slot
	Value  int32 // the home node this proposer wants recorded
	Quorum int

	self     int32  // proposer node id, disambiguates ballots
	Ballot   uint64 // current ballot, valid after Start
	attempt  uint32
	maxSeen  uint64 // highest ballot observed in nacks
	phase    int
	promises int
	accepts  int
	accBal   uint64 // highest accepted ballot among promises
	accNode  int32  // its value
	progress uint64 // counts every reply that advanced the current round
}

// NewProposal builds a proposal for slot with the given desired value.
func NewProposal(slot Slot, value, self int32, quorum int) *Proposal {
	return &Proposal{Slot: slot, Value: value, Quorum: quorum, self: self, accNode: -1}
}

// Start begins the next prepare round and returns its ballot. Ballots embed
// the proposer id so concurrent proposers never collide, and each restart
// jumps past every ballot observed in nacks.
func (p *Proposal) Start() uint64 {
	for {
		p.attempt++
		b := uint64(p.attempt)<<16 | uint64(uint16(p.self+1))
		if b > p.maxSeen {
			p.Ballot = b
			break
		}
		if p.maxSeen>>16 > uint64(p.attempt) {
			p.attempt = uint32(p.maxSeen >> 16)
		}
	}
	p.phase = phasePrepare
	p.promises = 0
	p.accepts = 0
	p.accBal = 0
	p.accNode = -1
	return p.Ballot
}

// Attempt reports how many prepare rounds have started.
func (p *Proposal) Attempt() int { return int(p.attempt) }

// Progress counts replies that advanced the current round. A timeout driver
// can compare snapshots of it to tell a round that is merely slower than
// the timeout window (replies still arriving — leave the ballot alone) from
// one that is truly stuck (nothing arrived — restart with a higher ballot).
func (p *Proposal) Progress() uint64 { return p.progress }

// Done reports whether the decree has been chosen.
func (p *Proposal) Done() bool { return p.phase == phaseDone }

// OnPromise processes one promise (or nack) for the given ballot. It
// returns true exactly once, when the quorum of promises is reached and the
// proposer should broadcast accept(Ballot, ChosenValue).
func (p *Proposal) OnPromise(ballot uint64, ok bool, accBal uint64, accNode int32, promised uint64) bool {
	if !ok {
		if promised > p.maxSeen {
			p.maxSeen = promised
		}
		return false
	}
	if p.phase != phasePrepare || ballot != p.Ballot {
		return false // stale round
	}
	if accBal > p.accBal {
		p.accBal = accBal
		p.accNode = accNode
	}
	p.progress++
	p.promises++
	if p.promises < p.Quorum {
		return false
	}
	p.phase = phaseAccept
	return true
}

// ChosenValue is the value to propose in the accept phase: any value a
// quorum member already accepted wins over our own (the synod invariant).
func (p *Proposal) ChosenValue() int32 {
	if p.accBal > 0 && p.accNode >= 0 {
		return p.accNode
	}
	return p.Value
}

// OnAccepted processes one accepted (or nack) reply. It returns true
// exactly once, when a quorum has accepted and the decree is chosen.
func (p *Proposal) OnAccepted(ballot uint64, ok bool, promised uint64) bool {
	if !ok {
		if promised > p.maxSeen {
			p.maxSeen = promised
		}
		return false
	}
	if p.phase != phaseAccept || ballot != p.Ballot {
		return false
	}
	p.progress++
	p.accepts++
	if p.accepts < p.Quorum {
		return false
	}
	p.phase = phaseDone
	return true
}
