// Node state: simulated memory, heap allocation, code loading and literal
// interning, the object table, and the cooperative scheduler.

package kernel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/dir"
	"repro/internal/ir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/vet"
	"repro/internal/wire"
)

// loadedCode is one code object loaded on one node.
type loadedCode struct {
	oc    *codegen.ObjectCode
	ac    *codegen.ArchCode
	funcs []*loadedFunc
}

// loadedFunc is one loaded function: code, templates, bus stops, and the
// node-local descriptor index and literal table.
type loadedFunc struct {
	code    *loadedCode
	fc      *codegen.FuncCode
	idx     int
	desc    uint32 // node-local code descriptor (stored in AR RetDesc words)
	litBase uint32 // address of the literal table (one ref word per string)
	// pd is the predecoded instruction cache runSlice dispatches over; nil
	// forces the legacy byte-at-a-time path (Config.LegacyDispatch, or a
	// hand-built stream that does not predecode).
	pd *arch.Predecoded
	// fz is the fused superinstruction program compiled from pd exactly
	// once, here at load (Config.NoFuse disables it). Migration
	// re-install reuses the loadedFunc via codeByOID, so a function is
	// never re-fused no matter how many threads move through it.
	fz *arch.Fused
	// plans caches compiled conversion plans per (bus stop, peer ISA); see
	// plan.go. Lazily filled on first MD→MI conversion at each stop.
	plans map[planKey]*convPlan
}

func (lf *loadedFunc) name() string { return lf.fc.Name }

// Return-descriptor encoding: the low 31 bits are the caller's code
// descriptor, or descNone when the caller is not a local activation (a
// thread root, a remote caller addressed by the fragment's Link, or a
// bootstrap). The kontFlag bit requests a kernel continuation after the
// frame pops (object-creation chains).
const (
	descNone = 0x7fffffff
	kontFlag = 0x80000000
)

// Node is one simulated workstation.
type Node struct {
	cluster *Cluster
	ID      int
	Model   netsim.MachineModel
	Spec    *arch.Spec
	CPU     netsim.CPU
	Mem     []byte

	heapNext uint32

	objects map[oid.OID]*Obj
	byAddr  map[uint32]*Obj
	table   []*Obj

	frags   map[uint32]*Frag
	fragCtr uint32
	oidCtr  uint32
	runq    []*Frag
	schedOn bool

	codeByOID map[oid.OID]*loadedCode
	descs     []*loadedFunc
	// fused is the node's reusable fused-dispatch executor: keeping it
	// here (rather than per runSlice call) holds steady-state dispatch at
	// zero allocations. Safe because a node runs one slice at a time.
	fused arch.FusedRunner

	// movedFrags forwards late messages for fragments that migrated away.
	movedFrags map[uint32]int
	// exported pins objects whose OIDs have crossed the network (a remote
	// node may hold references; local GC must not reclaim them).
	exported map[oid.OID]bool
	// freeLists holds reclaimed heap blocks by size.
	freeLists map[uint32][]uint32
	inGC      bool
	// pendingMoves are migrations deferred because an activation was part
	// of an active object-creation chain.
	pendingMoves []pendingMove
	// collect, while non-nil, redirects dispatchMove's sends into a group
	// collector so a whole cohort rides one batched MoveGroup frame (see
	// group.go).
	collect *moveCollector

	// Crash-tolerance state, live only under a chaos plan (Config.Chaos).
	// Up is the fail-stop flag: a crashed node neither runs nor receives.
	Up bool
	// outSeq is the next LData sequence number per destination; unacked
	// holds in-flight reliable frames keyed by linkKey(dst, seq).
	outSeq  map[int]uint32
	unacked map[uint64]*pendingFrame
	// inNext / inBuf implement per-source in-order exactly-once delivery:
	// the next expected sequence number and the out-of-order hold buffer.
	inNext map[int]uint32
	inBuf  map[int]map[uint32][]byte
	// lastHeard / suspects drive heartbeat-based crash suspicion.
	lastHeard map[int]netsim.Micros
	suspects  map[int]bool
	// seenSpans deduplicates Move deliveries by SpanID so an object is
	// never installed twice; pendingCommits are this node's outbound moves
	// awaiting a MoveAck; abortedSpans tombstones aborted move spans to
	// detect conflicting late acks.
	seenSpans      map[uint32]bool
	pendingCommits map[uint32]*moveTxn
	abortedSpans   map[uint32]bool
	// moveRetryStalled marks a move-retry timer that fired while the node
	// was down; restart re-arms it.
	moveRetryStalled bool
	// lastFrame is the pendingFrame of the most recent sendReliable call,
	// so the move protocol can locate the frame backing a just-sent Move.
	lastFrame *pendingFrame

	// Replicated-directory state, live only when Config.DirReplicas > 0
	// (see dir.go). dirAcc/dirStore are this node's replica roles (acceptor
	// per decree slot, learner record store); dirProps are decrees this
	// node is driving as a move source; dirLooks are its outstanding lookup
	// queries keyed by token.
	dirAcc   map[dir.Slot]*dir.Acceptor
	dirStore *dir.Store
	dirProps map[dir.Slot]*dirProposal
	dirLooks map[uint32]*dirLookup
	dirTok   uint32
	// dirGProps are batched group decrees this node is driving as a
	// MoveGroup source, keyed by a node-local group token; dirLeases are
	// read leases granted by shard replicas (Config.DirLeaseMicros > 0),
	// letting repeat lookups of a stable object skip the shard query.
	dirGProps map[uint32]*dirGroupProposal
	dirGTok   uint32
	dirLeases map[oid.OID]dirLease

	callConv  *wire.CallConverter
	batchConv *wire.BatchedConverter
	rawConv   *wire.RawConverter

	// MarshaledVarSlots counts frame-variable slots this node marshaled
	// onto the wire; CanonicalizedVarSlots counts the subset whose payload
	// was replaced by the canonical zero because the stop's LiveVars mask
	// proved them dead (Config.SharpenLiveSets). Plain counters, not obs
	// metrics: they are read by tests and embench, and must not perturb
	// allocation counts or the event stream.
	MarshaledVarSlots     uint64
	CanonicalizedVarSlots uint64

	// sched is this node's scheduling handle: clock and timers routed to
	// the node's own event queue under the parallel engine, and to the
	// shared heap (tagged with the node) under the sequential one. All
	// kernel timer/clock access goes through it so both engines see the
	// same per-node timeline.
	sched netsim.NodeSched
	// msgSeq numbers this node's outbound protocol messages. Per-node
	// (src, seq) pairs stay unique cluster-wide, and a node-local counter
	// is computable without cross-node coordination — the wire encoding is
	// fixed-width, so the numbering scheme does not affect sizes or
	// timings.
	msgSeq uint32
	// out and faultLog shard printed lines and runtime faults per node
	// during a parallel run; Cluster.mergeShards folds them into
	// Cluster.Output/Faults in canonical order after the run. Sequential
	// runs append to the cluster slices directly.
	out      []OutputLine
	faultLog []Fault

	// Stats.
	MsgsSent, MsgsRecv uint64
	Instrs             uint64
	Migrations         uint64
	// ProtoConvCalls counts the network-format layer's per-byte conversion
	// procedure calls (§3.6) made by this node.
	ProtoConvCalls uint64
}

func newNode(c *Cluster, id int, m netsim.MachineModel) *Node {
	spec := arch.SpecOf(arch.ID(m.Arch))
	if c.SpecOverride != nil {
		spec = c.SpecOverride(arch.ID(m.Arch))
	}
	n := &Node{
		cluster:    c,
		ID:         id,
		Model:      m,
		Spec:       spec,
		CPU:        netsim.CPU{MHz: m.MHz},
		Mem:        make([]byte, c.MemBytes),
		heapNext:   64, // address 0 is nil; low words reserved
		objects:    map[oid.OID]*Obj{},
		byAddr:     map[uint32]*Obj{},
		frags:      map[uint32]*Frag{},
		codeByOID:  map[oid.OID]*loadedCode{},
		movedFrags: map[uint32]int{},
		exported:   map[oid.OID]bool{},
		callConv:   wire.NewCallConverter(),
		batchConv:  wire.NewBatchedConverter(),
		rawConv:    wire.NewRawConverter(),

		Up:             true,
		outSeq:         map[int]uint32{},
		unacked:        map[uint64]*pendingFrame{},
		inNext:         map[int]uint32{},
		inBuf:          map[int]map[uint32][]byte{},
		lastHeard:      map[int]netsim.Micros{},
		suspects:       map[int]bool{},
		seenSpans:      map[uint32]bool{},
		pendingCommits: map[uint32]*moveTxn{},
		abortedSpans:   map[uint32]bool{},

		dirAcc:    map[dir.Slot]*dir.Acceptor{},
		dirStore:  dir.NewStore(),
		dirProps:  map[dir.Slot]*dirProposal{},
		dirLooks:  map[uint32]*dirLookup{},
		dirGProps: map[uint32]*dirGroupProposal{},
		dirLeases: map[oid.OID]dirLease{},
	}
	n.sched = c.Sim.NodeSched(id)
	return n
}

// chaosOn reports whether the crash-tolerant protocol is armed.
func (n *Node) chaosOn() bool { return n.cluster.Chaos != nil }

// now returns this node's current simulated time.
func (n *Node) now() netsim.Micros { return n.sched.Now() }

// nextSeq mints a protocol sequence number for this node's messages.
func (n *Node) nextSeq() uint32 {
	n.msgSeq++
	return n.msgSeq
}

// charge accounts CPU cycles.
func (n *Node) charge(cycles uint64) { n.CPU.Charge(n.now(), cycles) }

// ---------------------------------------------------------------- memory

// alloc carves size bytes (word aligned) from the heap, reusing reclaimed
// blocks and falling back to a garbage collection before giving up.
func (n *Node) alloc(size uint32) (uint32, error) {
	size = (size + 3) &^ 3
	if blocks := n.freeLists[size]; len(blocks) > 0 {
		a := blocks[len(blocks)-1]
		n.freeLists[size] = blocks[:len(blocks)-1]
		for i := a; i < a+size; i++ {
			n.Mem[i] = 0
		}
		return a, nil
	}
	if int(n.heapNext)+int(size) > len(n.Mem) {
		if !n.inGC {
			n.inGC = true
			_, err := n.Collect()
			n.inGC = false
			if err == nil {
				if blocks := n.freeLists[size]; len(blocks) > 0 {
					return n.alloc(size)
				}
			}
		}
		return 0, fmt.Errorf("node %d: out of memory (%d bytes requested)", n.ID, size)
	}
	a := n.heapNext
	n.heapNext += size
	for i := a; i < a+size; i++ {
		n.Mem[i] = 0
	}
	return a, nil
}

// ld32 / st32 access node memory in the node's byte order.
func (n *Node) ld32(addr uint32) uint32 {
	return n.Spec.ByteOrd.Uint32(n.Mem[addr : addr+4])
}

func (n *Node) st32(addr, v uint32) {
	n.Spec.ByteOrd.PutUint32(n.Mem[addr:addr+4], v)
}

// ---------------------------------------------------------------- OIDs

func (n *Node) newOID() oid.OID {
	n.oidCtr++
	return oid.ForRuntime(n.ID, n.oidCtr)
}

// register enters an object into the table and writes its header word.
func (n *Node) register(o *Obj) {
	o.TableIdx = uint32(len(n.table))
	n.table = append(n.table, o)
	n.objects[o.OID] = o
	if o.Resident {
		n.byAddr[o.Addr] = o
		n.st32(o.Addr, o.TableIdx)
	}
}

// objAt resolves a local data address to its object.
func (n *Node) objAt(addr uint32) (*Obj, error) {
	if o, ok := n.byAddr[addr]; ok {
		return o, nil
	}
	return nil, fmt.Errorf("node %d: address %#x is not an object", n.ID, addr)
}

// proxyFor returns the local entry for an OID, creating a proxy with the
// given location hint when the object is unknown here. Existing entries
// keep their own (epoch-stamped) knowledge: hints carry no epoch and must
// not regress it.
func (n *Node) proxyFor(id oid.OID, hint int) *Obj {
	if o, ok := n.objects[id]; ok {
		return o
	}
	o := &Obj{OID: id, Resident: false, LastKnown: hint}
	n.register(o)
	return o
}

// refToAddr returns the machine word for a reference to o (its local data
// address; proxies have no address, so resident objects only — callers use
// ensureAddressable for proxies).
func (n *Node) ensureAddressable(o *Obj) (uint32, error) {
	if o.Resident {
		return o.Addr, nil
	}
	// Proxies are addressable too: they get a one-word data area whose
	// header points at the table entry, so machine code can hold and pass
	// the reference; any operation on it traps to the kernel, which sees
	// the proxy and goes remote.
	a, err := n.alloc(arch.HeaderBytes)
	if err != nil {
		return 0, err
	}
	o.Addr = a
	n.byAddr[a] = o
	n.st32(a, o.TableIdx)
	return a, nil
}

// ---------------------------------------------------------------- code

// loadCode ensures the code object is loaded locally (the NFS fetch),
// charging the fetch latency on cold loads.
func (n *Node) loadCode(code oid.OID) (*loadedCode, error) {
	if lc, ok := n.codeByOID[code]; ok {
		return lc, nil
	}
	oc, ac, lat, err := n.cluster.CodeSrv.Fetch(code, n.Spec.ID)
	if err != nil {
		return nil, err
	}
	if n.cluster.VetOnLoad {
		if verr := vet.VetForLoad(n.cluster.Prog, oc, n.Spec); verr != nil {
			return nil, fmt.Errorf("node %d: refusing to load %s: %w", n.ID, oc.Name, verr)
		}
	}
	n.CPU.FreeAt += lat // NFS round trip stalls the node
	lc := &loadedCode{oc: oc, ac: ac}
	for i, fc := range ac.Funcs {
		lf := &loadedFunc{code: lc, fc: fc, idx: i, desc: uint32(len(n.descs))}
		if !n.cluster.LegacyDispatch {
			lf.pd = fc.Decoded
			if lf.pd == nil {
				// Hand-built FuncCode (tests, analyzers): predecode at
				// load; a stream that does not decode end-to-end keeps
				// pd nil and runs on the legacy path, which reports the
				// bad instruction if execution ever reaches it.
				lf.pd, _ = arch.Predecode(n.Spec, fc.Code)
			}
			if lf.pd != nil && !n.cluster.NoFuse {
				plan := fc.Runs
				if plan == nil {
					// Hand-built FuncCode: plan here, bounding runs at
					// this function's bus stops when it declares any.
					var stopPCs []uint32
					if fc.Stops != nil {
						stopPCs = fc.Stops.PCs()
					}
					plan = arch.PlanFusion(lf.pd, stopPCs)
				}
				lf.fz = arch.Fuse(n.Spec, lf.pd, plan)
			}
		}
		// Literal table: one word per string-pool entry, holding a
		// reference to the interned string object.
		base, err := n.alloc(uint32(4 * max(1, len(fc.Strings))))
		if err != nil {
			return nil, err
		}
		lf.litBase = base
		for si, s := range fc.Strings {
			sobj, err := n.newString([]byte(s))
			if err != nil {
				return nil, err
			}
			n.st32(base+uint32(4*si), sobj.Addr)
		}
		n.descs = append(n.descs, lf)
		lc.funcs = append(lc.funcs, lf)
	}
	n.codeByOID[code] = lc
	return lc, nil
}

func (n *Node) funcByDesc(desc uint32) (*loadedFunc, error) {
	if int(desc) >= len(n.descs) {
		return nil, fmt.Errorf("node %d: bad code descriptor %d", n.ID, desc)
	}
	return n.descs[desc], nil
}

// ---------------------------------------------------------------- heap objects

// newString allocates an immutable string object.
func (n *Node) newString(b []byte) (*Obj, error) {
	a, err := n.alloc(arch.ArrDataOff + uint32(len(b)))
	if err != nil {
		return nil, err
	}
	n.st32(a+arch.LenOff, uint32(len(b)))
	copy(n.Mem[a+arch.ArrDataOff:], b)
	o := &Obj{OID: n.newOID(), Kind: ObjString, Resident: true, Addr: a, Len: uint32(len(b))}
	n.register(o)
	return o, nil
}

// stringBytes reads a resident string object's bytes.
func (n *Node) stringBytes(o *Obj) []byte {
	return n.Mem[o.Addr+arch.ArrDataOff : o.Addr+arch.ArrDataOff+o.Len]
}

// newArray allocates an array object.
func (n *Node) newArray(elem ir.VK, length uint32) (*Obj, error) {
	if length > 1<<20 {
		return nil, fmt.Errorf("node %d: array length %d too large", n.ID, length)
	}
	a, err := n.alloc(arch.ArrDataOff + 4*length)
	if err != nil {
		return nil, err
	}
	n.st32(a+arch.LenOff, length)
	o := &Obj{OID: n.newOID(), Kind: ObjArray, Resident: true, Addr: a,
		ElemKind: elem, Len: length}
	n.register(o)
	return o, nil
}

// newPlain allocates a plain object instance of lc with zeroed slots.
func (n *Node) newPlain(lc *loadedCode) (*Obj, error) {
	tmpl := lc.oc.Template
	a, err := n.alloc(arch.ObjDataOff + uint32(tmpl.DataSize()))
	if err != nil {
		return nil, err
	}
	o := &Obj{OID: n.newOID(), Kind: ObjPlain, Resident: true, Addr: a, Code: lc,
		Mon: newMonitor(tmpl.NumConds)}
	n.register(o)
	return o, nil
}

// slotAddr returns the address of data slot i of a plain object or array
// element i.
func (o *Obj) slotAddr(i int) uint32 {
	if o.Kind == ObjPlain {
		return o.Addr + arch.ObjDataOff + uint32(4*i)
	}
	return o.Addr + arch.ArrDataOff + uint32(4*i)
}

// ---------------------------------------------------------------- bootstrap

// bootstrap creates the root instance of the named object (which has a
// process section) on this node.
func (n *Node) bootstrap(objName string) {
	oc := n.cluster.Prog.Object(objName)
	f := n.newFrag()
	f.Status = FragStateReady
	n.createObject(f, oc.CodeOID, nil, func(obj *Obj) {
		// The bootstrap fragment's work is done; it has no frames left and
		// dies when the creation chain completes.
		n.killFrag(f)
	})
	n.schedule()
}

// ---------------------------------------------------------------- scheduler

// enqueue makes a fragment runnable.
func (n *Node) enqueue(f *Frag) {
	f.Status = FragStateReady
	f.waitNode = -1
	if f.queued {
		return
	}
	f.queued = true
	n.runq = append(n.runq, f)
	n.cluster.Rec.Metrics().Observe("runq_depth",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), uint64(len(n.runq)))
	n.schedule()
}

// schedule arranges a scheduler pass if work is pending.
func (n *Node) schedule() {
	if n.schedOn || len(n.runq) == 0 || !n.Up {
		return
	}
	n.schedOn = true
	delay := n.CPU.FreeAt - n.now()
	n.sched.At(delay, n.schedPass)
}

// schedPass runs one scheduling slice.
func (n *Node) schedPass() {
	n.schedOn = false
	if len(n.runq) == 0 || !n.Up {
		return
	}
	f := n.runq[0]
	n.runq = n.runq[1:]
	f.queued = false
	if f.Status != FragStateReady {
		// Killed or blocked while queued.
		n.schedule()
		return
	}
	n.runSlice(f)
	n.schedule()
}

// runSlice executes f until it traps into the kernel (handling atomic
// monitor exits inline) or the slice budget expires.
func (n *Node) runSlice(f *Frag) {
	f.Status = FragStateRunning
	for {
		f.CPU.Preempt = len(n.runq) > 0
		var (
			tr     *arch.Trap
			cycles uint64
			instrs int
			err    error
		)
		if fz := f.fn.fz; fz != nil {
			tr, cycles, instrs, err = n.fused.Run(n.Spec, fz, &f.CPU, n.Mem, n.cluster.SliceInstrs)
		} else if pd := f.fn.pd; pd != nil {
			tr, cycles, instrs, err = arch.RunPredecoded(n.Spec, pd, &f.CPU, n.Mem, n.cluster.SliceInstrs)
		} else {
			tr, cycles, instrs, err = arch.RunLegacy(n.Spec, &f.CPU, f.fn.fc.Code, n.Mem, n.cluster.SliceInstrs)
		}
		n.charge(cycles)
		n.Instrs += uint64(instrs)
		if err != nil {
			// Simulator-internal failure: record and kill the thread.
			n.fault(f, fmt.Sprintf("internal: %v", err))
			return
		}
		if tr == nil {
			// Budget expired without a trap: requeue.
			if f.Status == FragStateRunning {
				n.enqueue(f)
			}
			return
		}
		resume := n.handleTrap(f, tr)
		if !resume {
			return
		}
	}
}

// print records one print statement's output line.
func (n *Node) print(text string) {
	line := OutputLine{Node: n.ID, At: n.now(), Text: text}
	if n.cluster.parallel {
		n.out = append(n.out, line)
	} else {
		n.cluster.Output = append(n.cluster.Output, line)
	}
}

// fault kills a thread with a runtime error, releasing any held monitor.
func (n *Node) fault(f *Frag, msg string) { n.faultErr(f, nil, msg) }

// faultErr is fault with a typed cause (e.g. ErrNodeDown).
func (n *Node) faultErr(f *Frag, cause error, msg string) {
	rec := Fault{Node: n.ID, At: n.now(), Frag: f.ID, Msg: msg, Err: cause}
	if n.cluster.parallel {
		n.faultLog = append(n.faultLog, rec)
	} else {
		n.cluster.Faults = append(n.cluster.Faults, rec)
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvFault,
		Frag: f.ID, Str: msg})
	n.cluster.Rec.Metrics().Add("faults", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	// Propagate to a remote caller if one is waiting.
	if f.Link.Node >= 0 {
		n.sendMsg(int(f.Link.Node), &wire.Return{
			Origin: int32(n.ID), CallerFrag: f.Link.Frag, Ok: false, FaultMsg: msg,
		})
	}
	n.releaseMonitorsOf(f)
	n.killFrag(f)
}

// killFrag removes a fragment and reclaims its stack region (each live
// fragment owns exactly one region; split remainders are relocated into
// fresh regions by adoptRemainder).
func (n *Node) killFrag(f *Frag) {
	f.Status = FragStateDead
	delete(n.frags, f.ID)
	n.free(f.stackBase, n.cluster.StackSize)
}

// releaseMonitorsOf force-releases any monitor held by f (fault cleanup).
func (n *Node) releaseMonitorsOf(f *Frag) {
	for _, o := range n.objects {
		if o.Mon != nil && o.Mon.Holder == f {
			n.monRelease(o)
		}
	}
}

// ---------------------------------------------------------------- messaging

// protoConvCharge accounts the enhanced system's network-format conversion
// layer: 1-2 conversion-procedure calls per payload byte at each end of a
// converting transfer (§3.6). The original system and the homogeneous fast
// path skip it; the batched converter halves the density.
func (n *Node) protoConvCharge(peer int, bytes int) {
	density := uint64(n.cluster.Costs.ConvCallsPerKB)
	switch n.cluster.Mode {
	case ModeOriginal:
		return
	case ModeEnhancedFastPath:
		if n.cluster.Nodes[peer].Spec.ID == n.Spec.ID {
			return
		}
	case ModeEnhancedBatched:
		density /= 2
	}
	calls := uint64(bytes) * density / 1024
	n.ProtoConvCalls += calls
	cycles := float64(calls*uint64(n.cluster.Costs.ConvCallCycles)) * n.Model.ConvFactor()
	n.charge(uint64(cycles))
}

// sendMsg serializes and transmits a protocol message, charging the sender.
// It returns the serialized size and the instant the sender CPU finished
// marshalling (transmission start; migration spans record both).
func (n *Node) sendMsg(dst int, p wire.Payload) (int, netsim.Micros) {
	return n.sendMsgAck(dst, p, nil)
}

// sendMsgAck is sendMsg with a link-level delivery hook: under a chaos plan
// the message travels as a reliable LData frame and onAck fires when the
// destination link-acknowledges it. Chaos-off, onAck is ignored (delivery
// is certain) and the bytes on the wire are exactly the legacy format.
func (n *Node) sendMsgAck(dst int, p wire.Payload, onAck func()) (int, netsim.Micros) {
	m := &wire.Msg{Src: int32(n.ID), Dst: int32(dst), Seq: n.nextSeq(), Payload: p}
	// Marshal into a pooled scratch buffer: netsim.Send copies the payload
	// into its own delivery buffer and the chaos link layer copies it into
	// the retransmission frame, so the scratch can be released as soon as
	// the send call returns.
	e := wire.GetEnc(256)
	buf := m.MarshalTo(e)
	size := len(buf)
	n.charge(uint64(n.cluster.Costs.SendCycles) +
		uint64(n.cluster.Costs.PerByteCycles)*uint64(size))
	n.protoConvCharge(dst, size)
	n.MsgsSent++
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvWireSend,
		A: uint64(size), B: uint64(dst), Str: p.Kind().String()})
	n.cluster.Rec.Metrics().Add("msg_bytes", "msg="+p.Kind().String(), uint64(size))
	n.cluster.Rec.Metrics().Add("msgs", "msg="+p.Kind().String(), 1)
	// Transmission starts once the CPU has finished marshalling.
	if n.chaosOn() {
		n.sendReliable(dst, buf, p.Kind().String(), onAck)
	} else if err := n.cluster.Net.Send(n.ID, dst, buf, n.CPU.FreeAt); err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	e.Release()
	return size, n.CPU.FreeAt
}

// netSend puts one raw frame on the medium (chaos paths; no protocol
// charges — callers account their own link-level costs).
func (n *Node) netSend(dst int, frame []byte) {
	if err := n.cluster.Net.Send(n.ID, dst, frame, n.CPU.FreeAt); err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
}

// deliver is the network receive handler. Chaos-off it is the legacy direct
// path; under a chaos plan it first runs the link layer: CRC check,
// acknowledgment, per-source deduplication and in-order release.
func (n *Node) deliver(src int, buf []byte) {
	if !n.chaosOn() {
		n.deliverInner(src, buf)
		return
	}
	if !n.Up {
		return // netsim drops frames to down nodes; belt and braces
	}
	lf, err := wire.ParseLinkFrame(buf)
	if err != nil {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvLinkDrop,
			B: uint64(src), Str: "crc"})
		n.cluster.Rec.Metrics().Add("link_drops", "reason=crc", 1)
		return // retransmission recovers
	}
	n.heard(src)
	n.charge(uint64(n.cluster.Costs.SyscallCycles))
	switch lf.Kind {
	case wire.LRaw: // heartbeat: liveness signal only
		return
	case wire.LAck:
		n.recvAck(src, lf.Seq)
		return
	}
	// LData: always acknowledge (acks are idempotent), then release in order.
	n.sendLinkAck(src, lf.Seq)
	next := n.inNext[src]
	if next == 0 {
		next = 1
	}
	if lf.Seq < next {
		n.cluster.Rec.Metrics().Add("link_drops", "reason=dup", 1)
		return // duplicate of an already-delivered frame
	}
	if lf.Seq > next {
		// Out of order: hold until the gap fills.
		if n.inBuf[src] == nil {
			n.inBuf[src] = map[uint32][]byte{}
		}
		if _, held := n.inBuf[src][lf.Seq]; !held {
			n.inBuf[src][lf.Seq] = append([]byte(nil), lf.Inner...)
		}
		n.inNext[src] = next
		return
	}
	n.deliverInner(src, lf.Inner)
	next++
	for {
		held, ok := n.inBuf[src][next]
		if !ok {
			break
		}
		delete(n.inBuf[src], next)
		n.deliverInner(src, held)
		next++
	}
	n.inNext[src] = next
}

// deliverInner processes one protocol message (post link layer under chaos).
func (n *Node) deliverInner(src int, buf []byte) {
	n.charge(uint64(n.cluster.Costs.RecvCycles) +
		uint64(n.cluster.Costs.PerByteCycles)*uint64(len(buf)))
	n.protoConvCharge(src, len(buf))
	n.MsgsRecv++
	m, err := wire.Unmarshal(buf)
	if err != nil {
		panic(fmt.Sprintf("kernel: node %d: bad message from %d: %v", n.ID, src, err))
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvWireRecv,
		A: uint64(len(buf)), B: uint64(src), Str: m.Payload.Kind().String()})
	if mv, ok := m.Payload.(*wire.Move); ok {
		n.cluster.Rec.SpanArrived(mv.SpanID, int64(n.now()))
	} else if mg, ok := m.Payload.(*wire.MoveGroup); ok {
		for _, im := range mg.Inner {
			n.cluster.Rec.SpanArrived(im.SpanID, int64(n.now()))
		}
	}
	n.handleMsg(int(m.Src), m.Payload)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
