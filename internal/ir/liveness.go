// Frame-variable liveness over the IR control-flow graph.
//
// The backward may-liveness fixpoint here serves two consumers: the vet
// dead-store lint, and the per-bus-stop live masks the code generators
// embed in busstop tables (LiveVars) so the kernel can prove a marshaled
// slot's payload is never read after restore. Because the analysis runs
// over the machine-independent IR, the computed masks are identical on
// every ISA by construction.

package ir

// Succs returns the control-flow successors of instruction pc in f.
func Succs(f *Func, pc int) []int {
	switch in := f.Code[pc]; in.Op {
	case Ret:
		return nil
	case Jump:
		return []int{int(in.A)}
	case BrFalse, BrTrue:
		return []int{pc + 1, int(in.A)}
	default:
		return []int{pc + 1}
	}
}

// LiveInfo holds the result of a liveness computation over one function.
type LiveInfo struct {
	// LiveOut[pc][v] reports that some path from pc's successors reads
	// frame slot v before writing it (result slots are read by every Ret:
	// the kernel marshals them to the caller).
	LiveOut [][]bool
	// LiveIn[pc][v] is the same property at pc itself (before executing it).
	LiveIn [][]bool
}

// Liveness computes backward may-liveness of the frame variables of f to a
// fixpoint. Result slots are live at every Ret. Unreachable instructions
// (per fi.Reach) keep all-false rows.
func Liveness(f *Func, fi *FuncInfo) *LiveInfo {
	nv := f.NumVars
	li := &LiveInfo{
		LiveOut: make([][]bool, len(f.Code)),
		LiveIn:  make([][]bool, len(f.Code)),
	}
	for pc := range f.Code {
		li.LiveOut[pc] = make([]bool, nv)
		li.LiveIn[pc] = make([]bool, nv)
	}
	if nv == 0 {
		return li
	}
	resultsLive := make([]bool, nv)
	for v := f.NumParams; v < f.NumParams+f.NumResults; v++ {
		resultsLive[v] = true
	}
	for changed := true; changed; {
		changed = false
		for pc := len(f.Code) - 1; pc >= 0; pc-- {
			if !fi.Reach[pc] {
				continue
			}
			in := f.Code[pc]
			var out []bool
			if in.Op == Ret {
				out = resultsLive
			} else {
				out = li.LiveOut[pc]
				for v := range out {
					out[v] = false
				}
				for _, s := range Succs(f, pc) {
					for v := range out {
						out[v] = out[v] || li.LiveIn[s][v]
					}
				}
			}
			li.LiveOut[pc] = out
			for v := range out {
				lv := out[v]
				switch {
				case in.Op == StoreVar && int(in.A) == v:
					lv = false
				case in.Op == LoadVar && int(in.A) == v:
					lv = true
				}
				if lv != li.LiveIn[pc][v] {
					li.LiveIn[pc][v] = lv
					changed = true
				}
			}
		}
	}
	return li
}

// LiveMask packs LiveOut[pc] into the per-stop bit mask the busstop table
// carries: bit v set means slot v's value may be read after the thread
// resumes past pc. Only slots 0..63 are representable; consumers must
// treat slots beyond 63 as always live (no function in the corpus comes
// close to that many frame variables).
func (li *LiveInfo) LiveMask(pc, numVars int) uint64 {
	var m uint64
	row := li.LiveOut[pc]
	for v := 0; v < numVars && v < 64; v++ {
		if row[v] {
			m |= 1 << uint(v)
		}
	}
	return m
}
