// The byte-code interpreter: the middle of the Figure 2 hierarchy, and the
// spiritual sibling of BC-Emerald (the non-distributed byte-coded Emerald,
// §3.7). It executes the machine-independent IR directly — no encoding, no
// registers, no per-ISA state — so thread states at this level are already
// machine independent.

package interp

import (
	"strings"

	"repro/internal/ir"
)

// Bytecode interprets an IR program on a single node.
type Bytecode struct {
	rt   *RT
	prog *ir.Program
}

// NewBytecode builds a byte-code interpreter.
func NewBytecode(prog *ir.Program) *Bytecode {
	return &Bytecode{rt: NewRT(), prog: prog}
}

// RT exposes the runtime.
func (b *Bytecode) RT() *RT { return b.rt }

// Run boots the program and interprets to completion.
func (b *Bytecode) Run() {
	var roots []*ir.Object
	if m := b.prog.Object("Main"); m != nil && m.HasProcess {
		roots = []*ir.Object{m}
	} else {
		for _, o := range b.prog.Objects {
			if o.HasProcess {
				roots = append(roots, o)
			}
		}
	}
	for _, o := range roots {
		o := o
		b.rt.Spawn(func(t *Thread) { b.create(o, nil) })
	}
	b.rt.Run()
}

// bcObject attaches the IR class to a runtime object (Decl stays nil at
// this level; formatting uses the IR name).
type bcObject struct {
	Object
	ir *ir.Object
}

func (b *Bytecode) create(cls *ir.Object, args []any) *bcObject {
	obj := &bcObject{ir: cls}
	obj.Vars = make([]any, len(cls.VarKinds))
	obj.conds = make([][]*Thread, cls.NumConds)
	for i, k := range cls.VarKinds {
		obj.Vars[i] = zeroVK(k)
	}
	b.call(obj, cls.Init(), nil)
	for i, a := range args {
		obj.Vars[i] = a
	}
	if idx := cls.FuncIndex("$initially"); idx >= 0 {
		b.call(obj, cls.Funcs[idx], nil)
	}
	if proc := cls.Process(); proc != nil {
		b.rt.Spawn(func(t *Thread) { b.call(obj, proc, nil) })
	}
	return obj
}

func zeroVK(k ir.VK) any {
	switch k {
	case ir.VKReal:
		return float32(0)
	case ir.VKPtr:
		return nil
	default:
		return int32(0)
	}
}

// call runs one IR function to completion on the current thread, returning
// the value a Call instruction pushes.
func (b *Bytecode) call(self *bcObject, f *ir.Func, args []any) any {
	vars := make([]any, f.NumVars)
	for i := range vars {
		vars[i] = zeroVK(f.VarKinds[i])
	}
	copy(vars, args)
	if f.Monitored {
		b.rt.MonEnter(&self.Object)
	}
	stack := make([]any, 0, 16)
	push := func(v any) { stack = append(stack, v) }
	pop := func() any {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	popI := func() int32 { return AsInt(pop()) }
	popR := func() float32 { return pop().(float32) }
	ret := func() any {
		if f.Monitored {
			b.rt.MonExit(&self.Object)
		}
		if f.NumResults > 0 {
			return vars[f.NumParams]
		}
		return int32(0)
	}
	cmp := func(cc int32, lt, eq bool) bool {
		switch int(cc) {
		case ir.CmpEQ:
			return eq
		case ir.CmpNE:
			return !eq
		case ir.CmpLT:
			return lt
		case ir.CmpLE:
			return lt || eq
		case ir.CmpGT:
			return !lt && !eq
		default:
			return !lt
		}
	}

	pc := 0
	for {
		b.rt.Steps++
		in := f.Code[pc]
		pc++
		switch in.Op {
		case ir.Nop:
		case ir.PushInt:
			push(in.A)
		case ir.PushReal:
			push(float32(in.F))
		case ir.PushStr:
			push(f.Strings[in.S])
		case ir.PushNil:
			push(nil)
		case ir.PushSelf:
			push(self)
		case ir.LoadVar:
			push(vars[in.A])
		case ir.StoreVar:
			vars[in.A] = pop()
		case ir.LoadMine:
			push(self.Vars[in.A])
		case ir.StoreMine:
			self.Vars[in.A] = pop()
		case ir.AddI:
			y, x := popI(), popI()
			push(x + y)
		case ir.SubI:
			y, x := popI(), popI()
			push(x - y)
		case ir.MulI:
			y, x := popI(), popI()
			push(x * y)
		case ir.DivI:
			y, x := popI(), popI()
			if y == 0 {
				Faultf("division by zero")
			}
			push(x / y)
		case ir.ModI:
			y, x := popI(), popI()
			if y == 0 {
				Faultf("division by zero")
			}
			push(x % y)
		case ir.NegI:
			push(-popI())
		case ir.AbsI:
			v := popI()
			if v < 0 {
				v = -v
			}
			push(v)
		case ir.AddR:
			y, x := popR(), popR()
			push(x + y)
		case ir.SubR:
			y, x := popR(), popR()
			push(x - y)
		case ir.MulR:
			y, x := popR(), popR()
			push(x * y)
		case ir.DivR:
			y, x := popR(), popR()
			if y == 0 {
				Faultf("division by zero")
			}
			push(x / y)
		case ir.NegR:
			push(-popR())
		case ir.CvtIR:
			push(float32(popI()))
		case ir.NotB:
			push(popI() == 0)
		case ir.AndB:
			y, x := popI(), popI()
			push(x != 0 && y != 0)
		case ir.OrB:
			y, x := popI(), popI()
			push(x != 0 || y != 0)
		case ir.CmpI:
			y, x := popI(), popI()
			push(cmp(in.A, x < y, x == y))
		case ir.CmpR:
			y, x := popR(), popR()
			push(cmp(in.A, x < y, x == y))
		case ir.CmpS:
			y, x := pop().(string), pop().(string)
			push(cmp(in.A, x < y, x == y))
		case ir.CmpP:
			y, x := pop(), pop()
			push(cmp(in.A, false, x == y))
		case ir.SLen:
			push(int32(len(pop().(string))))
		case ir.SIndex:
			i, s := popI(), pop().(string)
			if i < 0 || int(i) >= len(s) {
				Faultf("index %d out of bounds (length %d)", i, len(s))
			}
			push(int32(s[i]))
		case ir.ALen:
			push(int32(len(b.asArray(pop()).Elems)))
		case ir.ALoad:
			i, av := popI(), pop()
			a := b.asArray(av)
			if i < 0 || int(i) >= len(a.Elems) {
				Faultf("index %d out of bounds (length %d)", i, len(a.Elems))
			}
			push(a.Elems[i])
		case ir.AStore:
			v, i, av := pop(), popI(), pop()
			a := b.asArray(av)
			if i < 0 || int(i) >= len(a.Elems) {
				Faultf("index %d out of bounds (length %d)", i, len(a.Elems))
			}
			a.Elems[i] = v
		case ir.Drop:
			pop()
		case ir.Jump:
			pc = int(in.A)
		case ir.BrFalse:
			if popI() == 0 {
				pc = int(in.A)
			}
		case ir.BrTrue:
			if popI() != 0 {
				pc = int(in.A)
			}
		case ir.LoopBottom:
			if len(b.rt.runq) > 0 {
				b.rt.Yield()
			}
		case ir.Ret:
			return ret()
		case ir.Call:
			argc := int(in.A)
			args := make([]any, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = pop()
			}
			rv := pop()
			if rv == nil {
				Faultf("invocation of %s on nil", f.Strings[in.S])
			}
			recv, ok := rv.(*bcObject)
			if !ok {
				Faultf("invocation of %s on a non-object value", f.Strings[in.S])
			}
			idx := recv.ir.FuncIndex(f.Strings[in.S])
			if idx < 0 {
				Faultf("%s has no operation %s", recv.ir.Name, f.Strings[in.S])
			}
			callee := recv.ir.Funcs[idx]
			if callee.NumParams != argc {
				Faultf("%s takes %d arguments, got %d", callee.OpName, callee.NumParams, argc)
			}
			push(b.call(recv, callee, args))
		case ir.New:
			argc := int(in.A)
			args := make([]any, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = pop()
			}
			cls := b.prog.Object(f.Strings[in.S])
			if cls == nil {
				Faultf("new: unknown object %s", f.Strings[in.S])
			}
			push(b.create(cls, args))
		case ir.NewArray:
			n := popI()
			if n < 0 {
				Faultf("negative array length")
			}
			a := &Array{Elems: make([]any, n)}
			for i := range a.Elems {
				a.Elems[i] = zeroVK(in.K)
			}
			push(a)
		case ir.SysPrint:
			kinds := f.Strings[in.S]
			argc := int(in.A)
			parts := make([]string, argc)
			for i := argc - 1; i >= 0; i-- {
				parts[i] = formatBC(kinds[i], pop())
			}
			b.rt.Print(strings.Join(parts, ""))
		case ir.SysNodes:
			push(int32(1))
		case ir.SysThisNode:
			push(NodeVal(0))
		case ir.SysNodeAt:
			if i := popI(); i != 0 {
				Faultf("node(%d) out of range", i)
			}
			push(NodeVal(0))
		case ir.SysTimeMS:
			push(int32(b.rt.Steps / 20000))
		case ir.SysYield:
			b.rt.Yield()
		case ir.SysStrOf:
			push(formatBC(f.Strings[in.S][0], pop()))
		case ir.SysConcat:
			y, x := pop().(string), pop().(string)
			push(x + y)
		case ir.SysMove, ir.SysFix, ir.SysRefix:
			pop()
			pop() // single node: no-ops
		case ir.SysUnfix:
			pop()
		case ir.SysLocate:
			pop()
			push(NodeVal(0))
		case ir.SysWait:
			k := popI()
			b.rt.Wait(&self.Object, int(k))
		case ir.SysSignal:
			k := popI()
			b.rt.Signal(&self.Object, int(k))
		default:
			Faultf("bytecode: unimplemented op %v", in.Op)
		}
	}
}

func (b *Bytecode) asArray(v any) *Array {
	a, ok := v.(*Array)
	if !ok {
		Faultf("expected an array, got %T", v)
	}
	return a
}

// formatBC renders a value per the print kind letter (matching the native
// kernel's formatting).
func formatBC(letter byte, v any) string {
	switch letter {
	case 'b':
		// Booleans are integers at the IR level.
		return FormatValue(AsInt(v) != 0)
	case 'n':
		return FormatValue(NodeVal(AsInt(v)))
	case 'p':
		if v == nil {
			return "nil"
		}
		if o, ok := v.(*bcObject); ok {
			return "<" + o.ir.Name + ">"
		}
		return FormatValue(v)
	default:
		return FormatValue(v)
	}
}
