// Pooled marshal buffers: Msg.Marshal is on the per-frame hot path of
// every migration and remote invocation, and the append-grown Enc buffer
// was reallocated for each message. Encoders are recycled through
// size-classed pools (powers of two from 256 B to 32 KB) so steady-state
// marshalling reuses a warm buffer of roughly the right size instead of
// re-growing from nil.

package wire

import "sync"

const (
	encMinClassBits = 8                                 // smallest class: 256 B
	encMaxClassBits = 15                                // largest class: 32 KB
	encNumClasses   = encMaxClassBits - encMinClassBits + 1
)

var encPools [encNumClasses]sync.Pool

// GetEnc returns an empty pooled encoder whose buffer has at least
// sizeHint capacity when a warm buffer of that class is available.
// Callers should Release it when the encoded bytes are no longer needed.
func GetEnc(sizeHint int) *Enc {
	c := 0
	for c < encNumClasses-1 && 1<<(encMinClassBits+c) < sizeHint {
		c++
	}
	if v := encPools[c].Get(); v != nil {
		e := v.(*Enc)
		e.buf = e.buf[:0]
		return e
	}
	return &Enc{buf: make([]byte, 0, 1<<(encMinClassBits+c))}
}

// Release returns the encoder to the pool of its (possibly grown)
// capacity class. The encoder and any buffer obtained from it must not
// be used afterwards. Encoders with buffers smaller than the smallest
// class are dropped.
func (e *Enc) Release() {
	if cap(e.buf) < 1<<encMinClassBits {
		return
	}
	c := 0
	for c < encNumClasses-1 && cap(e.buf) >= 1<<(encMinClassBits+c+1) {
		c++
	}
	encPools[c].Put(e)
}
