// The kernel side of adaptive placement: a periodic cluster-level tick
// builds an auto.View from the metrics registry and the object tables,
// consults the policy engine, and executes its decisions as (batched
// cohort) migrations. The tick is a weak simulation event — placement never
// keeps a finished program alive — and everything here is gated on
// Config.AutoPolicy, so a policy-free run carries no trace of it.

package kernel

import (
	"fmt"
	"sort"

	"repro/internal/auto"
	"repro/internal/ir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
)

// DefaultAutoPeriodMicros is the policy tick period when the config leaves
// it zero: 20 simulated milliseconds, a few times the cost of one move.
const DefaultAutoPeriodMicros = 20000

// armAuto builds the policy engine and schedules the first tick.
func (c *Cluster) armAuto() error {
	eng, err := auto.New(c.AutoPolicy, auto.Static{Cohorts: c.AutoCohorts, Pinned: c.AutoPinned})
	if err != nil {
		return err
	}
	c.autoOn = true
	c.autoEng = eng
	c.autoCohort = map[string]map[string]bool{}
	for _, set := range c.AutoCohorts {
		for _, cls := range set {
			m := c.autoCohort[cls]
			if m == nil {
				m = map[string]bool{}
				c.autoCohort[cls] = m
			}
			for _, other := range set {
				m[other] = true
			}
		}
	}
	c.autoPinned = map[string]bool{}
	for _, cls := range c.AutoPinned {
		c.autoPinned[cls] = true
	}
	c.Sim.AtWeak(c.autoPeriod(), c.autoTick)
	return nil
}

func (c *Cluster) autoPeriod() netsim.Micros {
	if c.AutoPeriodMicros > 0 {
		return netsim.Micros(c.AutoPeriodMicros)
	}
	return DefaultAutoPeriodMicros
}

// AutoDecisionLog returns the policy engine's canonical decision log (nil
// when no policy is armed).
func (c *Cluster) AutoDecisionLog() []string {
	if c.autoEng == nil {
		return nil
	}
	return c.autoEng.Log()
}

// autoTick is one policy period: observe, decide, execute, re-arm.
func (c *Cluster) autoTick() {
	decs := c.autoEng.Tick(c.autoView())
	for i, d := range decs {
		c.Rec.Emit(obs.Event{At: int64(c.Sim.Now()), Node: int32(d.From),
			Kind: obs.EvAutoDecision, Obj: d.Obj, A: uint64(i), B: uint64(d.To),
			Str: fmt.Sprintf("%s moves obj %d (%s)", d.Policy, d.Obj, d.Class)})
		c.Rec.Metrics().Add("auto_decisions", "policy="+d.Policy, 1)
		d := d
		c.Sim.AtNode(d.From, 0, func() { c.Nodes[d.From].execAutoMove(d) })
	}
	c.Sim.AtWeak(c.autoPeriod(), c.autoTick)
}

// autoView snapshots the cluster for the policy engine: per-node
// instruction pressure, the policy-feed traffic counters, and every
// resident plain object with its pin status. Object order is canonical
// (ascending OID).
func (c *Cluster) autoView() auto.View {
	v := auto.View{Now: int64(c.Sim.Now()), Nodes: len(c.Nodes)}
	v.Instrs = make([]uint64, len(c.Nodes))
	for i, n := range c.Nodes {
		v.Instrs[i] = n.Instrs
	}
	for _, cp := range c.Rec.Metrics().CountersPrefix("invoke_link") {
		var src, dst int
		if _, err := fmt.Sscanf(cp.Labels, "src=%d,dst=%d", &src, &dst); err == nil {
			v.Links = append(v.Links, auto.Link{Src: src, Dst: dst, Count: cp.Value})
		}
	}
	for _, cp := range c.Rec.Metrics().CountersPrefix("invoke_obj") {
		var id uint32
		var src int
		if _, err := fmt.Sscanf(cp.Labels, "oid=%d,src=%d", &id, &src); err == nil {
			v.ObjCalls = append(v.ObjCalls, auto.ObjCall{OID: id, Src: src, Count: cp.Value})
		}
	}
	for _, n := range c.Nodes {
		ids := make([]uint32, 0, len(n.objects))
		for id, o := range n.objects {
			if o.Resident && o.Kind == ObjPlain && o.Code != nil {
				ids = append(ids, uint32(id))
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			o := n.objects[oid.OID(id)]
			cls := o.Code.oc.Name
			v.Objects = append(v.Objects, auto.ObjInfo{
				OID: uint32(o.OID), Class: cls, Node: n.ID,
				Pinned: o.Fixed || o.transit != nil ||
					c.autoPinned[cls] || o.Code.oc.Template.Immutable,
			})
		}
	}
	sort.Slice(v.Objects, func(i, j int) bool { return v.Objects[i].OID < v.Objects[j].OID })
	return v
}

// execAutoMove executes one placement decision on the owning node,
// re-validating against the live object table (the object may have moved,
// fixed itself, or entered transit since the tick observed it), then
// migrating the object's whole co-resident cohort in one batched transfer.
func (n *Node) execAutoMove(d auto.Decision) {
	o, ok := n.objects[oid.OID(d.Obj)]
	if !ok || !o.Resident || o.Fixed || o.transit != nil {
		return
	}
	cohort := n.cohortOf(o)
	if len(cohort) > 1 && !n.cluster.AutoNoBatch {
		n.moveGroup(cohort, d.To, false)
		return
	}
	n.moveObject(o, d.To, false)
}

// cohortOf expands o to its co-resident group-migration cohort: the
// transitive closure, over reference slots, of resident movable objects
// whose classes the points-to analysis placed in one cohort with o's class.
// Traversal order is the object's slot order, so the cohort list — and the
// resulting MoveGroup — is deterministic.
func (n *Node) cohortOf(o *Obj) []*Obj {
	out := []*Obj{o}
	if o.Kind != ObjPlain || o.Code == nil {
		return out
	}
	set := n.cluster.autoCohort[o.Code.oc.Name]
	if set == nil {
		return out
	}
	seen := map[*Obj]bool{o: true}
	for qi := 0; qi < len(out); qi++ {
		cur := out[qi]
		tmpl := cur.Code.oc.Template
		for i, k := range tmpl.Slots {
			if k != ir.VKPtr {
				continue
			}
			w := n.ld32(cur.slotAddr(i))
			if w == 0 {
				continue
			}
			p := n.byAddr[w]
			if p == nil || seen[p] || !p.Resident || p.Fixed || p.transit != nil {
				continue
			}
			if p.Kind != ObjPlain || p.Code == nil || p.Code.oc.Template.Immutable {
				continue
			}
			if !set[p.Code.oc.Name] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
