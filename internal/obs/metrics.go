// The metrics registry: counters, gauges and histograms keyed by a metric
// name plus a label string (e.g. "node=0,arch=sparc"). The registry is
// snapshotable at any simulated instant; snapshots are fully sorted so that
// identical runs serialize to identical bytes.

package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// NumHistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with v < 2^i (the last bucket is unbounded).
const NumHistBuckets = 24

// Hist is a power-of-two-bucketed histogram.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumHistBuckets]uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := bits.Len64(v) // v < 2^Len64(v)
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	h.Buckets[b]++
}

// Mean returns the average observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Registry accumulates metrics. A single mutex guards the maps: the
// parallel engine's node goroutines add concurrently, and every update is
// commutative (counter sums, per-node-labelled gauges, histogram
// count/sum/max/buckets), so the final state is deterministic regardless
// of interleaving.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]int64
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]uint64{},
		gauges:   map[string]int64{},
		hists:    map[string]*Hist{},
	}
}

// Key builds the storage key for name and a label string. Labels must be
// pre-sorted by the caller (the fixed call sites in the kernel use literal
// label orders, which keeps runs comparable).
func Key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// SplitKey splits a storage key back into name and labels.
func SplitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// NodeLabels builds the standard per-node label set.
func NodeLabels(node int, arch string) string {
	return fmt.Sprintf("node=%d,arch=%s", node, arch)
}

// Add increments a counter.
func (r *Registry) Add(name, labels string, delta uint64) {
	r.mu.Lock()
	r.counters[Key(name, labels)] += delta
	r.mu.Unlock()
}

// Counter reads a counter (0 when absent).
func (r *Registry) Counter(name, labels string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[Key(name, labels)]
}

// SetGauge records an instantaneous value.
func (r *Registry) SetGauge(name, labels string, v int64) {
	r.mu.Lock()
	r.gauges[Key(name, labels)] = v
	r.mu.Unlock()
}

// Gauge reads a gauge (0 when absent).
func (r *Registry) Gauge(name, labels string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[Key(name, labels)]
}

// Observe records a histogram observation.
func (r *Registry) Observe(name, labels string, v uint64) {
	k := Key(name, labels)
	r.mu.Lock()
	h := r.hists[k]
	if h == nil {
		h = &Hist{}
		r.hists[k] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// CountersPrefix returns every counter whose metric name equals name,
// sorted by storage key (deterministic). The policy engine uses it to read
// labelled counter families (e.g. per-link invocation traffic) without
// serializing a full snapshot.
func (r *Registry) CountersPrefix(name string) []CounterPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, 8)
	for k := range r.counters {
		if n, _ := SplitKey(k); n == name {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]CounterPoint, 0, len(keys))
	for _, k := range keys {
		n, labels := SplitKey(k)
		out = append(out, CounterPoint{Name: n, Labels: labels, Value: r.counters[k]})
	}
	return out
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// HistPoint is one histogram in a snapshot. Buckets are trimmed to the
// last non-empty bucket.
type HistPoint struct {
	Name    string   `json:"name"`
	Labels  string   `json:"labels,omitempty"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

// Snapshot is the registry's full state at one simulated instant, fully
// sorted (deterministic).
type Snapshot struct {
	AtMicros   int64          `json:"at_micros"`
	Counters   []CounterPoint `json:"counters"`
	Gauges     []GaugePoint   `json:"gauges"`
	Histograms []HistPoint    `json:"histograms"`
}

// Snapshot captures the registry at simulated time `at`.
func (r *Registry) Snapshot(at int64) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{AtMicros: at}
	keys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, labels := SplitKey(k)
		s.Counters = append(s.Counters, CounterPoint{Name: name, Labels: labels, Value: r.counters[k]})
	}
	keys = keys[:0]
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, labels := SplitKey(k)
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Labels: labels, Value: r.gauges[k]})
	}
	keys = keys[:0]
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := r.hists[k]
		last := 0
		for i, b := range h.Buckets {
			if b != 0 {
				last = i + 1
			}
		}
		name, labels := SplitKey(k)
		s.Histograms = append(s.Histograms, HistPoint{
			Name: name, Labels: labels, Count: h.Count, Sum: h.Sum, Max: h.Max,
			Buckets: append([]uint64(nil), h.Buckets[:last]...),
		})
	}
	return s
}
