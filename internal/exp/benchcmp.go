// Baseline comparison for the BENCH_*.json files: the simulation is
// deterministic, so the committed baselines should reproduce exactly,
// but the gate allows a tolerance so that intentional small model
// recalibrations do not force a baseline refresh in the same commit.
// Anything beyond the tolerance — or any structural change — fails,
// which is how CI distinguishes "the simulator got faster" (fine; these
// are simulated metrics, not wall-clock) from "the simulator computes
// different numbers" (a behavior change that must be deliberate).

package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// CompareBenchJSON checks fresh against baseline, returning an error
// listing every numeric field whose relative drift exceeds tol (e.g.
// 0.20 for 20%) and every structural difference (missing/extra fields,
// changed strings, different row counts).
func CompareBenchJSON(fresh, baseline []byte, tol float64) error {
	var f, b any
	if err := json.Unmarshal(fresh, &f); err != nil {
		return fmt.Errorf("fresh result: %w", err)
	}
	if err := json.Unmarshal(baseline, &b); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var drifts []string
	cmpBenchValue("$", f, b, tol, &drifts)
	if len(drifts) == 0 {
		return nil
	}
	const max = 10
	n := len(drifts)
	if n > max {
		drifts = append(drifts[:max], fmt.Sprintf("... and %d more", n-max))
	}
	return fmt.Errorf("%d field(s) drifted beyond %.0f%%:\n  %s",
		n, tol*100, strings.Join(drifts, "\n  "))
}

func cmpBenchValue(path string, fresh, base any, tol float64, drifts *[]string) {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			*drifts = append(*drifts, fmt.Sprintf("%s: expected object, got %T", path, fresh))
			return
		}
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if strings.HasPrefix(k, "host") {
				// "host*" fields record host-dependent measurements
				// (wall-clock MIPS, CPU counts) that no two machines — or
				// two runs on one loaded machine — reproduce. They carry
				// context, not claims, so drift gating skips them; the
				// deterministic simulated fields beside them stay gated.
				continue
			}
			fv, ok := f[k]
			if !ok {
				*drifts = append(*drifts, fmt.Sprintf("%s.%s: missing in fresh result", path, k))
				continue
			}
			cmpBenchValue(path+"."+k, fv, b[k], tol, drifts)
		}
		for k := range f {
			if _, ok := b[k]; !ok && !strings.HasPrefix(k, "host") {
				*drifts = append(*drifts, fmt.Sprintf("%s.%s: not in baseline", path, k))
			}
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			*drifts = append(*drifts, fmt.Sprintf("%s: expected array, got %T", path, fresh))
			return
		}
		if len(f) != len(b) {
			*drifts = append(*drifts, fmt.Sprintf("%s: %d entries, baseline has %d", path, len(f), len(b)))
			return
		}
		for i := range b {
			cmpBenchValue(fmt.Sprintf("%s[%d]", path, i), f[i], b[i], tol, drifts)
		}
	case float64:
		f, ok := fresh.(float64)
		if !ok {
			*drifts = append(*drifts, fmt.Sprintf("%s: expected number, got %T", path, fresh))
			return
		}
		if msg := numericDrift(f, b, tol); msg != "" {
			*drifts = append(*drifts, path+": "+msg)
		}
	default:
		// Strings, bools, nulls: identity or structural failure.
		if fresh != base {
			*drifts = append(*drifts, fmt.Sprintf("%s: %v, baseline %v", path, fresh, base))
		}
	}
}

// numericDrift decides whether a fresh value drifted from its baseline,
// returning an empty string when it is within tolerance and a description
// otherwise. A baseline of exactly 0 has no magnitude to take a relative
// drift against (the naive ratio is Inf, or NaN for 0/0), so it is handled
// by identity: equal is fine, any nonzero fresh value is drift.
func numericDrift(fresh, base, tol float64) string {
	if fresh == base {
		return ""
	}
	if base == 0 {
		return fmt.Sprintf("%v, baseline 0 (zero baseline admits no drift)", fresh)
	}
	if math.Abs(fresh-base)/math.Abs(base) > tol {
		return fmt.Sprintf("%v, baseline %v", fresh, base)
	}
	return ""
}
