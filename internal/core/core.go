// Package core is the public face of the system: it wires the compiler
// pipeline (lexer → parser → type checker → IR → per-ISA code generation)
// to the runtime (simulated heterogeneous cluster) behind a small API.
//
// Typical use:
//
//	prog, err := core.Compile(src)
//	sys, err := core.NewSystem(prog, core.Figure1Network(), core.Options{})
//	err = sys.Run()
//	fmt.Println(sys.Output())
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Diagnostics flattens a Compile error into one line per diagnostic. Parse
// and typecheck failures carry an ErrorList of every problem found; drivers
// should show them all, not just the first.
func Diagnostics(err error) []string {
	var pl parser.ErrorList
	if errors.As(err, &pl) {
		out := make([]string, 0, len(pl))
		for _, e := range pl {
			out = append(out, "parse: "+e.Error())
		}
		return out
	}
	var tl types.ErrorList
	if errors.As(err, &tl) {
		out := make([]string, 0, len(tl))
		for _, e := range tl {
			out = append(out, "typecheck: "+e.Error())
		}
		return out
	}
	return []string{err.Error()}
}

// Compile runs the whole compiler pipeline on Emerald-subset source,
// producing native code, templates and bus-stop tables for every
// architecture.
func Compile(src string) (*codegen.Program, error) {
	ast, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := types.Check(ast)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return codegen.Compile(ir.Build(info))
}

// CompileInfo additionally returns the checked AST information (used by the
// source and byte-code interpreters).
func CompileInfo(src string) (*types.Info, *codegen.Program, error) {
	ast, err := parser.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	info, err := types.Check(ast)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck: %w", err)
	}
	p, err := codegen.Compile(ir.Build(info))
	if err != nil {
		return nil, nil, err
	}
	return info, p, nil
}

// Options configures a System.
type Options struct {
	// Mode selects original (homogeneous-only) vs enhanced conversion.
	Mode kernel.ConvMode
	// VetOnLoad makes every node statically vet a code object's mobility
	// metadata before loading it (see internal/vet), refusing programs
	// whose metadata would corrupt a migrating thread.
	VetOnLoad bool
	// Placement maps root objects to nodes (nil: all on node 0).
	Placement func(objName string, rootIdx int) int
	// MaxEvents bounds the simulation (0: a generous default).
	MaxEvents uint64
	// LegacyDispatch forces the byte-at-a-time reference emulator instead
	// of predecoded dispatch (identical observable behavior; used by the
	// differential tests).
	LegacyDispatch bool
	// NoFuse disables superinstruction fusion, keeping dispatch on the
	// plain predecoded path (identical observable behavior; the triage
	// escape hatch and the middle arm of the differential tests).
	NoFuse bool
	// SliceInstrs overrides the scheduling-slice instruction budget
	// (0: the kernel default). The differential tests shrink it to force
	// constant preemption, exercising mid-run suspend/resume.
	SliceInstrs int
	// Trace receives kernel event lines.
	Trace func(string)
	// Chaos, when non-nil, injects a seeded deterministic fault plan
	// (frame drops, duplicates, delays, corruption, node crashes and
	// link partitions) and switches the kernel's migration protocol to
	// its crash-tolerant mode (see internal/chaos and DESIGN.md §10).
	Chaos *chaos.Plan
	// Parallel runs each node's events on its own goroutine, using the
	// network's minimum link latency as conservative lookahead. Observable
	// results (printed output, faults, events, spans, metrics, simulated
	// time) are identical to the sequential engine; see DESIGN.md §12.
	Parallel bool
	// AutoPolicy arms the adaptive-placement subsystem (internal/auto)
	// with the named policy (see auto.Names). The static facts the policy
	// needs — group-migration cohorts and immobile-reach pinned classes —
	// are computed here with internal/pta and handed to the kernel as
	// class-name lists. Placement requires the sequential engine: the
	// policy tick is a cluster-level simulation event.
	AutoPolicy string
	// AutoPeriodMicros overrides the policy tick period (0: the kernel
	// default).
	AutoPeriodMicros int64
	// AutoNoBatch disables cohort batching: each placement decision moves
	// only the named object (the control arm of the batching experiment).
	AutoNoBatch bool
	// NoSharpen disables live-set sharpening (Config.SharpenLiveSets):
	// statically dead frame slots then ship their stale payload instead of
	// the canonical zero. Observable behavior is identical either way; the
	// flag exists as the escape hatch and for the differential tests.
	NoSharpen bool
	// DirReplicas arms the replicated object directory (internal/dir) with
	// this many replicas per shard (clamped to the node count). 0 — the
	// default — leaves the directory off and every run byte-identical to
	// the pre-directory kernel.
	DirReplicas int
	// DirCompactPeriodMicros overrides the directory compactor tick period
	// (0: the kernel default).
	DirCompactPeriodMicros int64
	// DirLeaseMicros, when > 0 with the directory armed, makes shard
	// replicas grant that many simulated microseconds of read lease on
	// each lookup hit, letting repeat locates skip the shard query. 0 —
	// the default — keeps lookups lease-free.
	DirLeaseMicros int64
	// DirNoGroupDecrees disables batched group decrees: every member of a
	// migrated cohort commits its location record in its own single-slot
	// decree round (the pre-batching wire pattern).
	DirNoGroupDecrees bool
	// LinkLatencies adds per-link extra latency (simulated microseconds)
	// on top of the uniform network latency, giving the topology a
	// locality structure the directory's replica placement can exploit.
	LinkLatencies []kernel.LinkLatency
}

// System is a compiled program loaded on a simulated network.
type System struct {
	Cluster *kernel.Cluster
	opts    Options
}

// Figure1Network returns the paper's sample network (Figure 1): Sun-3,
// HP9000/300, SPARC and VAX workstations on one Ethernet.
func Figure1Network() []netsim.MachineModel {
	return []netsim.MachineModel{
		netsim.Sun3_100,
		netsim.HP9000_433s,
		netsim.SPARCstationSLC,
		netsim.VAXstation2000,
	}
}

// machineSpecs maps CLI machine names to their models (shared by the emrun
// and emtrace drivers).
var machineSpecs = map[string]netsim.MachineModel{
	"sparc": netsim.SPARCstationSLC,
	"sun3":  netsim.Sun3_100,
	"hp1":   netsim.HP9000_433s,
	"hp2":   netsim.HP9000_385,
	"vax":   netsim.VAXstation2000,
}

// MachineNames is the accepted -net machine list, for usage messages.
const MachineNames = "sparc, sun3, hp1, hp2, vax"

// ParseNetwork parses a comma-separated machine list (e.g. "sparc,vax")
// into machine models.
func ParseNetwork(spec string) ([]netsim.MachineModel, error) {
	var machines []netsim.MachineModel
	for _, name := range strings.Split(spec, ",") {
		m, ok := machineSpecs[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown machine %q (have %s)", name, MachineNames)
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// ParseMode parses a conversion-mode name (enhanced, original, batched,
// fastpath).
func ParseMode(name string) (kernel.ConvMode, error) {
	switch name {
	case "enhanced":
		return kernel.ModeEnhanced, nil
	case "original":
		return kernel.ModeOriginal, nil
	case "batched":
		return kernel.ModeEnhancedBatched, nil
	case "fastpath":
		return kernel.ModeEnhancedFastPath, nil
	}
	return 0, fmt.Errorf("unknown mode %q (have enhanced, original, batched, fastpath)", name)
}

// NewSystem loads prog onto a cluster of the given machines.
func NewSystem(prog *codegen.Program, machines []netsim.MachineModel, opts Options) (*System, error) {
	cfg := kernel.DefaultConfig()
	cfg.Mode = opts.Mode
	cfg.Trace = opts.Trace
	if opts.Parallel {
		// The text sink is a plain callback with no locking; under the
		// parallel engine events are emitted from node goroutines, so the
		// sink is deferred: Run replays the merged event stream after the
		// run instead of rendering lines as they happen.
		cfg.Trace = nil
	}
	cfg.VetOnLoad = opts.VetOnLoad
	cfg.LegacyDispatch = opts.LegacyDispatch
	cfg.NoFuse = opts.NoFuse
	if opts.SliceInstrs > 0 {
		cfg.SliceInstrs = opts.SliceInstrs
	}
	cfg.Chaos = opts.Chaos
	cfg.SharpenLiveSets = !opts.NoSharpen
	cfg.DirReplicas = opts.DirReplicas
	cfg.DirCompactPeriodMicros = opts.DirCompactPeriodMicros
	cfg.DirLeaseMicros = opts.DirLeaseMicros
	cfg.DirNoGroupDecrees = opts.DirNoGroupDecrees
	cfg.LinkLatencies = opts.LinkLatencies
	if opts.AutoPolicy != "" {
		if opts.Parallel {
			return nil, fmt.Errorf("core: adaptive placement (-auto) requires the sequential engine")
		}
		cohorts, pinned, err := AutoFacts(prog)
		if err != nil {
			return nil, fmt.Errorf("core: placement analysis: %w", err)
		}
		cfg.AutoPolicy = opts.AutoPolicy
		cfg.AutoPeriodMicros = opts.AutoPeriodMicros
		cfg.AutoNoBatch = opts.AutoNoBatch
		cfg.AutoCohorts = cohorts
		cfg.AutoPinned = pinned
	}
	cl, err := kernel.NewCluster(prog, machines, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Cluster: cl, opts: opts}, nil
}

// Run boots the program and drives the simulation until it quiesces.
func (s *System) Run() error {
	s.Cluster.Start(s.opts.Placement)
	limit := s.opts.MaxEvents
	if limit == 0 {
		limit = 50_000_000
	}
	var err error
	if s.opts.Parallel {
		err = s.Cluster.RunParallel(limit)
		if s.opts.Trace != nil {
			// Deferred text sink: replay the canonically merged event
			// stream in the exact format the live sink renders.
			for _, e := range s.Cluster.Rec.Events() {
				s.opts.Trace(fmt.Sprintf("[%8dµs] %s", e.At, e.Text()))
			}
		}
	} else {
		err = s.Cluster.Run(limit)
	}
	if err != nil {
		return err
	}
	if len(s.Cluster.Faults) > 0 {
		f := s.Cluster.Faults[0]
		if f.Err != nil {
			return fmt.Errorf("runtime fault on node %d: %s: %w", f.Node, f.Msg, f.Err)
		}
		return fmt.Errorf("runtime fault on node %d: %s", f.Node, f.Msg)
	}
	return nil
}

// Output returns everything the program printed, in order.
func (s *System) Output() string { return s.Cluster.OutputText() }

// Recorder returns the run's observability recorder (events, migration
// spans, metrics registry; see internal/obs).
func (s *System) Recorder() *obs.Recorder { return s.Cluster.Rec }

// MetricsSnapshot captures the cluster's metrics at the current simulated
// instant.
func (s *System) MetricsSnapshot() obs.Snapshot { return s.Cluster.MetricsSnapshot() }

// Lines returns the printed lines.
func (s *System) Lines() []string { return s.Cluster.PrintedLines() }

// ElapsedMS returns the simulated run time in milliseconds.
func (s *System) ElapsedMS() float64 { return s.Cluster.Sim.Now().MS() }

// RunSource is the one-call convenience: compile and run src on machines.
func RunSource(src string, machines []netsim.MachineModel, opts Options) (*System, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(prog, machines, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(); err != nil {
		return sys, err
	}
	return sys, nil
}
