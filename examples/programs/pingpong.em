// Table 1's shape as a user program: a thread ping-pongs between two
// heterogeneous machines and reports the cost per round trip. Run with
//   go run ./cmd/emrun -net sparc,vax examples/programs/pingpong.em
object Ball
  operation rally(trips: Int) -> (r: Int)
    var home: Node <- thisnode()
    var t0: Int <- timems()
    var i: Int <- 0
    while i < trips do
      move self to node(1)
      move self to home
      i <- i + 1
    end
    var t1: Int <- timems()
    r <- (t1 - t0) / trips
  end
end Ball

object Main
  process
    var b: Ball <- new Ball
    print("ms per round trip (two thread moves): ", b.rally(20))
  end process
end Main
