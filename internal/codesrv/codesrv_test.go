package codesrv

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
)

func prog(t *testing.T) *codegen.Program {
	t.Helper()
	ast, err := parser.Parse(`
object A
  operation f() -> (r: Int)
    r <- 1
  end
end A
object B
end B
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Compile(ir.Build(info))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFetchByOIDAndArch(t *testing.T) {
	p := prog(t)
	s := New(p)
	for _, oc := range p.Objects {
		for _, id := range arch.All() {
			got, ac, lat, err := s.Fetch(oc.CodeOID, id)
			if err != nil {
				t.Fatalf("fetch %v/%v: %v", oc.CodeOID, id, err)
			}
			if got != oc || ac != oc.PerArch[id] {
				t.Error("wrong code object returned")
			}
			if lat <= 0 {
				t.Error("cold fetch should cost latency")
			}
		}
	}
	if s.Fetches() != uint64(len(p.Objects)*len(arch.All())) {
		t.Errorf("fetches = %d", s.Fetches())
	}
}

func TestFetchUnknown(t *testing.T) {
	s := New(prog(t))
	if _, _, _, err := s.Fetch(9999, arch.VAX); err == nil {
		t.Error("unknown OID must fail")
	}
}
