// Package codesrv provides the shared code repository. The paper's
// prototype used NFS "to create the illusion that the object code always
// resides in the local disk repository" (§3.4): a node receiving an object
// for which it has no code fetches the architecture-appropriate code object
// by OID. This package is that illusion: a store keyed by (code OID,
// architecture), populated once per program, read by every node, with a
// simulated fetch latency standing in for the NFS round trip.
package codesrv

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/netsim"
	"repro/internal/oid"
)

// Server is the repository.
type Server struct {
	byOID map[oid.OID]*codegen.ObjectCode
	// FetchLatency simulates the NFS read for a cold fetch.
	FetchLatency netsim.Micros
	// fetches is atomic: nodes fetch concurrently under the parallel engine.
	fetches uint64
}

// New builds a repository holding every code object of the program, for
// every architecture.
func New(p *codegen.Program) *Server {
	s := &Server{byOID: map[oid.OID]*codegen.ObjectCode{}, FetchLatency: 2000}
	for _, oc := range p.Objects {
		s.byOID[oc.CodeOID] = oc
	}
	return s
}

// Fetch returns the code object for (codeOID, architecture), with the
// simulated latency to charge to the caller. It fails if the program never
// defined the OID — the "code not found anywhere" case.
func (s *Server) Fetch(code oid.OID, id arch.ID) (*codegen.ObjectCode, *codegen.ArchCode, netsim.Micros, error) {
	oc, ok := s.byOID[code]
	if ok {
		if ac := oc.PerArch[id]; ac != nil {
			atomic.AddUint64(&s.fetches, 1)
			return oc, ac, s.FetchLatency, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("codesrv: no code object %v for %v", code, id)
}

// Fetches reports how many cold fetches were served.
func (s *Server) Fetches() uint64 { return atomic.LoadUint64(&s.fetches) }
