// Kernel-to-kernel message protocol: remote invocation, returns, object and
// thread migration, location management. Every message is genuinely
// serialized to network-format bytes; the byte count drives the Ethernet
// timing model in netsim.

package wire

import (
	"errors"
	"fmt"

	"repro/internal/oid"
)

// ---------------------------------------------------------------- enc/dec

// Enc is a network-byte-order (big endian) encoder.
type Enc struct{ buf []byte }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the current size.
func (e *Enc) Len() int { return len(e.buf) }

// U8 / U16 / U32 / I32 append fixed-width integers.
func (e *Enc) U8(v byte)    { e.buf = append(e.buf, v) }
func (e *Enc) U16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }
func (e *Enc) U32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

func (e *Enc) U64(v uint64) {
	e.U32(uint32(v >> 32))
	e.U32(uint32(v))
}

// Str appends a length-prefixed byte string.
func (e *Enc) Str(s []byte) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// OID appends an object identifier.
func (e *Enc) OID(o oid.OID) { e.U32(uint32(o)) }

// Value appends a tagged wire value.
func (e *Enc) Value(v Value) {
	e.U8(byte(v.Kind))
	if v.Kind == WString {
		e.Str(v.Str)
		return
	}
	e.U32(v.Bits)
}

// Values appends a counted list of values.
func (e *Enc) Values(vs []Value) {
	e.U16(uint16(len(vs)))
	for _, v := range vs {
		e.Value(v)
	}
}

// Dec decodes network-byte-order buffers. The first error sticks; check
// Err after decoding.
type Dec struct {
	buf []byte
	off int
	err error
	// vals is the shared backing arena for every Values list decoded from
	// this buffer (see Values).
	vals []Value
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the sticky error.
func (d *Dec) Err() error { return d.err }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("wire: truncated message at offset %d (+%d > %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 / U16 / U32 / I32 read fixed-width integers.
func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func (d *Dec) I32() int32 { return int32(d.U32()) }

func (d *Dec) U64() uint64 {
	hi := d.U32()
	return uint64(hi)<<32 | uint64(d.U32())
}

// Str reads a length-prefixed byte string.
func (d *Dec) Str() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > uint32(len(d.buf)-d.off) {
		d.err = fmt.Errorf("wire: string length %d exceeds message", n)
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

// OID reads an object identifier.
func (d *Dec) OID() oid.OID { return oid.OID(d.U32()) }

// Value reads a tagged wire value.
func (d *Dec) Value() Value {
	k := WKind(d.U8())
	if d.err != nil {
		return Value{}
	}
	if k > WRaw {
		d.err = fmt.Errorf("wire: bad value kind %d", k)
		return Value{}
	}
	if k == WString {
		return Value{Kind: k, Str: d.Str()}
	}
	return Value{Kind: k, Bits: d.U32()}
}

// Count reads a U16 element count and rejects it when fewer than
// count*minElemBytes bytes remain: a corrupt count field cannot force large
// allocations or long decode loops over a short buffer.
func (d *Dec) Count(minElemBytes int) int {
	n := int(d.U16())
	if d.err != nil {
		return 0
	}
	if n*minElemBytes > len(d.buf)-d.off {
		d.err = fmt.Errorf("wire: counted list of %d elements exceeds message", n)
		return 0
	}
	return n
}

// Minimum encoded sizes of counted-list elements (for Count).
const (
	minValueBytes    = 5  // kind byte + 4 bytes of bits or length
	minHintBytes     = 8  // OID + node
	minFragmentBytes = 18 // fixed Fragment header
	minActBytes      = 12 // fixed MIActivation header
	minMoveBytes     = 32 // fixed Move header (all counts empty)
)

// Values reads a counted list of values (nil for an empty list, matching
// the zero value of the encoding side). All lists decoded from one Dec
// share a single backing arena — a Move's Data, Vars and Temps cost one
// allocation together instead of one each. The returned slices have
// clamped capacity, so appending to one cannot clobber another.
func (d *Dec) Values() []Value {
	n := d.Count(minValueBytes)
	if n == 0 {
		return nil
	}
	if d.vals == nil {
		// Size the arena for every list in the message: remaining bytes
		// bound the total value count (Count enforces the same bound per
		// list). The n*4+8 cap keeps a short list with a long string tail
		// from over-allocating.
		c := (len(d.buf) - d.off) / minValueBytes
		if c > n*4+8 {
			c = n*4 + 8
		}
		d.vals = make([]Value, 0, c)
	}
	start := len(d.vals)
	for i := 0; i < n; i++ {
		d.vals = append(d.vals, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return d.vals[start:len(d.vals):len(d.vals)]
}

// ---------------------------------------------------------------- payloads

// MsgKind identifies a protocol message.
type MsgKind byte

// Protocol messages.
const (
	MInvoke      MsgKind = iota + 1 // start a remote invocation
	MReturn                         // deliver an invocation result
	MMoveReq                        // ask the holder of an object to move it
	MMove                           // the object (and thread fragments) itself
	MLocate                         // where is OID?
	MLocateReply                    //
	MUpdateLoc                      // forwarding hint: OID now lives at node
	MUnfixReq                       // unfix/refix control for a remote object
	MMoveAck                        // destination's install ack for a Move (2PC)
	MMoveGroup                      // batched cohort move: several Moves in one frame
	// Directory protocol (emdir): one single-decree Paxos instance per
	// (oid, epoch) move-commit slot, plus the replicated lookup service.
	// New kinds append here so older captures stay decodable.
	MDirPrepare                    // proposer → replica: prepare(slot, ballot)
	MDirPromise                    // replica → proposer: promise or nack
	MDirAccept                     // proposer → replica: accept(slot, ballot, home)
	MDirAccepted                   // replica → proposer: accepted or nack
	MDirLearn                      // proposer → replica: decree chosen, learn record
	MDirLookup                     // client → replica: where does OID live?
	MDirLookupReply                // replica → client: record (or miss)
	// Batched group decrees: a MoveGroup cohort's location records commit
	// under one ballot with one set of prepare/accept messages.
	MDirGPrepare                   // proposer → replica: prepare(slots, ballot)
	MDirGPromise                   // replica → proposer: group promise or nack
	MDirGAccept                    // proposer → replica: accept(slots, ballot, homes)
	MDirGAccepted                  // replica → proposer: group accepted or nack
	MDirGLearn                     // proposer → replica: group decree chosen
)

func (k MsgKind) String() string {
	switch k {
	case MInvoke:
		return "invoke"
	case MReturn:
		return "return"
	case MMoveReq:
		return "movereq"
	case MMove:
		return "move"
	case MLocate:
		return "locate"
	case MLocateReply:
		return "locatereply"
	case MUpdateLoc:
		return "updateloc"
	case MUnfixReq:
		return "unfixreq"
	case MMoveAck:
		return "moveack"
	case MMoveGroup:
		return "movegroup"
	case MDirPrepare:
		return "dirprepare"
	case MDirPromise:
		return "dirpromise"
	case MDirAccept:
		return "diraccept"
	case MDirAccepted:
		return "diraccepted"
	case MDirLearn:
		return "dirlearn"
	case MDirLookup:
		return "dirlookup"
	case MDirLookupReply:
		return "dirlookupreply"
	case MDirGPrepare:
		return "dirgprepare"
	case MDirGPromise:
		return "dirgpromise"
	case MDirGAccept:
		return "dirgaccept"
	case MDirGAccepted:
		return "dirgaccepted"
	case MDirGLearn:
		return "dirglearn"
	}
	return fmt.Sprintf("msg(%d)", byte(k))
}

// Payload is a message body.
type Payload interface {
	Kind() MsgKind
	marshal(e *Enc)
	unmarshal(d *Dec)
}

// Msg is one kernel-to-kernel message.
type Msg struct {
	Src, Dst int32
	Seq      uint32
	Payload  Payload
}

// MarshalTo serializes the message into e (resetting it first) and
// returns the encoded bytes. The bytes alias e's buffer: they are valid
// only until e is next used or Released. Callers that hand the bytes to
// a consumer that copies them (netsim.Network.Send does) avoid any
// allocation.
func (m *Msg) MarshalTo(e *Enc) []byte {
	e.buf = e.buf[:0]
	e.U8(byte(m.Payload.Kind()))
	e.I32(m.Src)
	e.I32(m.Dst)
	e.U32(m.Seq)
	m.Payload.marshal(e)
	return e.Bytes()
}

// Marshal serializes the message to wire bytes the caller owns.
func (m *Msg) Marshal() []byte {
	e := GetEnc(256)
	b := m.MarshalTo(e)
	out := make([]byte, len(b))
	copy(out, b)
	e.Release()
	return out
}

// Unmarshal parses a message. The payload unmarshal calls are concrete
// (not through the Payload interface) so the decoder does not escape to
// the heap — the hot receive path allocates only the message, payload
// and their lists.
func Unmarshal(buf []byte) (*Msg, error) {
	d := Dec{buf: buf}
	k := MsgKind(d.U8())
	m := &Msg{Src: d.I32(), Dst: d.I32(), Seq: d.U32()}
	switch k {
	case MInvoke:
		p := &Invoke{}
		p.unmarshal(&d)
		m.Payload = p
	case MReturn:
		p := &Return{}
		p.unmarshal(&d)
		m.Payload = p
	case MMoveReq:
		p := &MoveReq{}
		p.unmarshal(&d)
		m.Payload = p
	case MMove:
		p := &Move{}
		p.unmarshal(&d)
		m.Payload = p
	case MLocate:
		p := &Locate{}
		p.unmarshal(&d)
		m.Payload = p
	case MLocateReply:
		p := &LocateReply{}
		p.unmarshal(&d)
		m.Payload = p
	case MUpdateLoc:
		p := &UpdateLoc{}
		p.unmarshal(&d)
		m.Payload = p
	case MUnfixReq:
		p := &UnfixReq{}
		p.unmarshal(&d)
		m.Payload = p
	case MMoveAck:
		p := &MoveAck{}
		p.unmarshal(&d)
		m.Payload = p
	case MMoveGroup:
		p := &MoveGroup{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirPrepare:
		p := &DirPrepare{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirPromise:
		p := &DirPromise{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirAccept:
		p := &DirAccept{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirAccepted:
		p := &DirAccepted{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirLearn:
		p := &DirLearn{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirLookup:
		p := &DirLookup{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirLookupReply:
		p := &DirLookupReply{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirGPrepare:
		p := &DirGPrepare{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirGPromise:
		p := &DirGPromise{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirGAccept:
		p := &DirGAccept{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirGAccepted:
		p := &DirGAccepted{}
		p.unmarshal(&d)
		m.Payload = p
	case MDirGLearn:
		p := &DirGLearn{}
		p.unmarshal(&d)
		m.Payload = p
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", k)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Invoke asks the destination to run an operation on a resident object on
// behalf of caller fragment (Src, CallerFrag).
type Invoke struct {
	Target oid.OID
	OpName string
	// Origin is the node hosting CallerFrag. It survives forwarding along
	// stale location chains (Msg.Src becomes the forwarder), so the Return
	// finds its way home and converters know which machine produced the
	// argument values.
	Origin     int32
	CallerFrag uint32
	Args       []Value
	// Hints carries location hints for argument references.
	Hints []LocHint
}

// LocHint tells the receiver where a referenced object was last known to
// live, so it can build a proxy without a broadcast.
type LocHint struct {
	OID  oid.OID
	Node int32
}

// Kind implements Payload.
func (p *Invoke) Kind() MsgKind { return MInvoke }

func (p *Invoke) marshal(e *Enc) {
	e.OID(p.Target)
	e.Str([]byte(p.OpName))
	e.I32(p.Origin)
	e.U32(p.CallerFrag)
	e.Values(p.Args)
	e.U16(uint16(len(p.Hints)))
	for _, h := range p.Hints {
		e.OID(h.OID)
		e.I32(h.Node)
	}
}

func (p *Invoke) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.OpName = string(d.Str())
	p.Origin = d.I32()
	p.CallerFrag = d.U32()
	p.Args = d.Values()
	n := d.Count(minHintBytes)
	for i := 0; i < n; i++ {
		p.Hints = append(p.Hints, LocHint{OID: d.OID(), Node: d.I32()})
	}
}

// Return delivers the result of a remote invocation to the caller fragment.
type Return struct {
	// Origin is the node that produced the result (for format decisions on
	// raw fast-path values when the Return is forwarded to a migrated
	// caller).
	Origin     int32
	CallerFrag uint32
	Ok         bool
	Result     Value
	FaultMsg   string
	Hints      []LocHint
}

// Kind implements Payload.
func (p *Return) Kind() MsgKind { return MReturn }

func (p *Return) marshal(e *Enc) {
	e.I32(p.Origin)
	e.U32(p.CallerFrag)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Value(p.Result)
	e.Str([]byte(p.FaultMsg))
	e.U16(uint16(len(p.Hints)))
	for _, h := range p.Hints {
		e.OID(h.OID)
		e.I32(h.Node)
	}
}

func (p *Return) unmarshal(d *Dec) {
	p.Origin = d.I32()
	p.CallerFrag = d.U32()
	p.Ok = d.U8() != 0
	p.Result = d.Value()
	p.FaultMsg = string(d.Str())
	n := d.Count(minHintBytes)
	for i := 0; i < n; i++ {
		p.Hints = append(p.Hints, LocHint{OID: d.OID(), Node: d.I32()})
	}
}

// MoveReq asks whoever holds Target to move it to Dest (issued when a
// `move` statement executes on a node where the object is not resident).
type MoveReq struct {
	Target oid.OID
	Dest   int32
	Fix    bool // also fix the object at Dest
}

// Kind implements Payload.
func (p *MoveReq) Kind() MsgKind { return MMoveReq }

func (p *MoveReq) marshal(e *Enc) {
	e.OID(p.Target)
	e.I32(p.Dest)
	if p.Fix {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func (p *MoveReq) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Dest = d.I32()
	p.Fix = d.U8() != 0
}

// UnfixReq unfixes (or refixes at Dest) a remote object.
type UnfixReq struct {
	Target oid.OID
	Refix  bool
	Dest   int32
}

// Kind implements Payload.
func (p *UnfixReq) Kind() MsgKind { return MUnfixReq }

func (p *UnfixReq) marshal(e *Enc) {
	e.OID(p.Target)
	if p.Refix {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.I32(p.Dest)
}

func (p *UnfixReq) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Refix = d.U8() != 0
	p.Dest = d.I32()
}

// MIActivation is one activation record in machine-independent form: all
// variables in canonical slot order regardless of their register/memory
// homes, the program point as a bus-stop number, and the live temporaries
// (§3.5: "the new activation record format stored all local variables in
// the activation record rather than in registers").
type MIActivation struct {
	CodeOID   oid.OID
	FuncIndex uint16
	Stop      uint16 // bus stop; EntryStop for a not-yet-started activation
	Vars      []Value
	Temps     []Value
}

// EntryStop marks an activation created but not yet started (blocked at
// monitor entry).
const EntryStop = 0xffff

func (a *MIActivation) marshal(e *Enc) {
	e.OID(a.CodeOID)
	e.U16(a.FuncIndex)
	e.U16(a.Stop)
	e.Values(a.Vars)
	e.Values(a.Temps)
}

func (a *MIActivation) unmarshal(d *Dec) {
	a.CodeOID = d.OID()
	a.FuncIndex = d.U16()
	a.Stop = d.U16()
	a.Vars = d.Values()
	a.Temps = d.Values()
}

// FragStatus describes how a migrated thread fragment was stopped.
type FragStatus byte

// Fragment statuses.
const (
	FragRunnable     FragStatus = iota // resume at the top activation's stop
	FragWaitCond                       // waiting on condition CondIndex of the moved object
	FragBlockedCall                    // awaiting a Return for PendingSeq
	FragBlockedEntry                   // queued for the moved object's monitor
)

func (s FragStatus) String() string {
	switch s {
	case FragRunnable:
		return "runnable"
	case FragWaitCond:
		return "waitcond"
	case FragBlockedCall:
		return "blockedcall"
	case FragBlockedEntry:
		return "blockedentry"
	}
	return fmt.Sprintf("frag(%d)", byte(s))
}

// Fragment is a contiguous run of activation records of one thread, moved
// because every activation belongs to the migrating object. Activations are
// youngest first. Link points at the stack piece below the oldest
// activation (another node's fragment), or is zero for a thread root.
type Fragment struct {
	FragID    uint32 // new identity, minted by the sender
	LinkNode  int32
	LinkFrag  uint32
	Status    FragStatus
	CondIndex uint16
	Executing bool // this piece carries the thread's active top
	Acts      []MIActivation
}

func (f *Fragment) marshal(e *Enc) {
	e.U32(f.FragID)
	e.I32(f.LinkNode)
	e.U32(f.LinkFrag)
	e.U8(byte(f.Status))
	e.U16(f.CondIndex)
	if f.Executing {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U16(uint16(len(f.Acts)))
	for i := range f.Acts {
		f.Acts[i].marshal(e)
	}
}

func (f *Fragment) unmarshal(d *Dec) {
	f.FragID = d.U32()
	f.LinkNode = d.I32()
	f.LinkFrag = d.U32()
	f.Status = FragStatus(d.U8())
	f.CondIndex = d.U16()
	f.Executing = d.U8() != 0
	n := d.Count(minActBytes)
	for i := 0; i < n; i++ {
		var a MIActivation
		a.unmarshal(d)
		if d.Err() != nil {
			return
		}
		f.Acts = append(f.Acts, a)
	}
}

// Move carries one migrating object: its identity and code, its converted
// data area, every thread fragment executing inside it, and the monitor
// state. ArrayElemKind+ArrayLen describe arrays (which have no code
// object); for plain objects ArrayLen is ~0.
type Move struct {
	Object  oid.OID
	CodeOID oid.OID
	// Epoch is the object's move count (a forwarding-address timestamp):
	// location knowledge is only ever updated to a strictly newer epoch,
	// which, with the network's FIFO delivery, makes forwarding chains
	// loop-free.
	Epoch uint32
	Fixed bool
	// Array payloads.
	IsArray       bool
	ArrayElemKind byte
	// Data slots in declaration order (or array elements).
	Data []Value
	// Monitor state: all referenced fragments are in Frags.
	MonLocked  bool
	MonHolder  uint32   // FragID of the lock holder (0 = none)
	EntryQueue []uint32 // FragIDs blocked at monitor entry, FIFO
	CondQueues [][]uint32
	Frags      []Fragment
	Hints      []LocHint
	// SpanID is the sender's migration-span identifier (observability): the
	// destination closes the span it names. Zero means untraced.
	SpanID uint32
}

// Kind implements Payload.
func (p *Move) Kind() MsgKind { return MMove }

func (p *Move) marshal(e *Enc) {
	e.OID(p.Object)
	e.OID(p.CodeOID)
	e.U32(p.Epoch)
	flags := byte(0)
	if p.Fixed {
		flags |= 1
	}
	if p.IsArray {
		flags |= 2
	}
	if p.MonLocked {
		flags |= 4
	}
	e.U8(flags)
	e.U8(p.ArrayElemKind)
	e.Values(p.Data)
	e.U32(p.MonHolder)
	e.U16(uint16(len(p.EntryQueue)))
	for _, f := range p.EntryQueue {
		e.U32(f)
	}
	e.U16(uint16(len(p.CondQueues)))
	for _, q := range p.CondQueues {
		e.U16(uint16(len(q)))
		for _, f := range q {
			e.U32(f)
		}
	}
	e.U16(uint16(len(p.Frags)))
	for i := range p.Frags {
		p.Frags[i].marshal(e)
	}
	e.U16(uint16(len(p.Hints)))
	for _, h := range p.Hints {
		e.OID(h.OID)
		e.I32(h.Node)
	}
	e.U32(p.SpanID)
}

func (p *Move) unmarshal(d *Dec) {
	p.Object = d.OID()
	p.CodeOID = d.OID()
	p.Epoch = d.U32()
	flags := d.U8()
	p.Fixed = flags&1 != 0
	p.IsArray = flags&2 != 0
	p.MonLocked = flags&4 != 0
	p.ArrayElemKind = d.U8()
	p.Data = d.Values()
	p.MonHolder = d.U32()
	n := d.Count(4)
	for i := 0; i < n; i++ {
		p.EntryQueue = append(p.EntryQueue, d.U32())
	}
	nq := d.Count(2)
	for i := 0; i < nq; i++ {
		m := d.Count(4)
		var q []uint32
		for j := 0; j < m; j++ {
			q = append(q, d.U32())
		}
		p.CondQueues = append(p.CondQueues, q)
	}
	nf := d.Count(minFragmentBytes)
	for i := 0; i < nf; i++ {
		var f Fragment
		f.unmarshal(d)
		if d.Err() != nil {
			return
		}
		p.Frags = append(p.Frags, f)
	}
	nh := d.Count(minHintBytes)
	for i := 0; i < nh; i++ {
		p.Hints = append(p.Hints, LocHint{OID: d.OID(), Node: d.I32()})
	}
	p.SpanID = d.U32()
}

// Locate asks where an object lives. Nodes that do not hold the object
// forward the request along their forwarding hints; the resident node
// answers the Origin directly (a Return carrying the node number).
type Locate struct {
	Target    oid.OID
	Origin    int32 // node whose fragment awaits the answer
	ReplyFrag uint32
	Hops      uint16 // chase bound against stale cycles
}

// Kind implements Payload.
func (p *Locate) Kind() MsgKind { return MLocate }

func (p *Locate) marshal(e *Enc) {
	e.OID(p.Target)
	e.I32(p.Origin)
	e.U32(p.ReplyFrag)
	e.U16(p.Hops)
}

func (p *Locate) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Origin = d.I32()
	p.ReplyFrag = d.U32()
	p.Hops = d.U16()
}

// LocateReply answers a Locate.
type LocateReply struct {
	Target    oid.OID
	Node      int32 // -1 = unknown here
	ReplyFrag uint32
}

// Kind implements Payload.
func (p *LocateReply) Kind() MsgKind { return MLocateReply }

func (p *LocateReply) marshal(e *Enc) {
	e.OID(p.Target)
	e.I32(p.Node)
	e.U32(p.ReplyFrag)
}

func (p *LocateReply) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Node = d.I32()
	p.ReplyFrag = d.U32()
}

// UpdateLoc is a forwarding hint sent back to a node that used a stale
// location; Epoch timestamps the knowledge so late hints cannot regress it.
type UpdateLoc struct {
	Target oid.OID
	Node   int32
	Epoch  uint32
}

// Kind implements Payload.
func (p *UpdateLoc) Kind() MsgKind { return MUpdateLoc }

func (p *UpdateLoc) marshal(e *Enc) {
	e.OID(p.Target)
	e.I32(p.Node)
	e.U32(p.Epoch)
}

func (p *UpdateLoc) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Node = d.I32()
	p.Epoch = d.U32()
}

// MoveAck is the destination's answer to a Move: the second phase of the
// move commit. Ok means the object was installed (or was already installed
// — duplicate Moves are re-acked) and the source may release it; !Ok
// carries the validation error and the source aborts the move.
type MoveAck struct {
	Object oid.OID
	SpanID uint32 // echoes Move.SpanID, keying the source's pending commit
	Epoch  uint32 // echoes Move.Epoch
	Ok     bool
	Err    string
}

// Kind implements Payload.
func (p *MoveAck) Kind() MsgKind { return MMoveAck }

func (p *MoveAck) marshal(e *Enc) {
	e.OID(p.Object)
	e.U32(p.SpanID)
	e.U32(p.Epoch)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Str([]byte(p.Err))
}

func (p *MoveAck) unmarshal(d *Dec) {
	p.Object = d.OID()
	p.SpanID = d.U32()
	p.Epoch = d.U32()
	p.Ok = d.U8() != 0
	p.Err = string(d.Str())
}

// MoveGroup carries a whole migration cohort — several Moves bound for one
// destination — in a single protocol message, so the group pays the
// per-frame wire overhead and the per-message protocol-stack charge once.
// Each inner Move keeps its own span and epoch and is installed (and
// MoveAck'd) individually at the destination, so the two-phase commit and
// its exactly-once guarantees are unchanged per object.
type MoveGroup struct {
	Inner []*Move
}

// Kind implements Payload.
func (p *MoveGroup) Kind() MsgKind { return MMoveGroup }

func (p *MoveGroup) marshal(e *Enc) {
	e.U16(uint16(len(p.Inner)))
	for _, m := range p.Inner {
		m.marshal(e)
	}
}

func (p *MoveGroup) unmarshal(d *Dec) {
	n := d.Count(minMoveBytes)
	for i := 0; i < n; i++ {
		m := &Move{}
		m.unmarshal(d)
		if d.Err() != nil {
			return
		}
		p.Inner = append(p.Inner, m)
	}
}

// DirPrepare opens a decree round: the proposer (a move's source node)
// asks a replica of the object's shard to promise ballot for the
// (Target, Epoch) slot.
type DirPrepare struct {
	Target oid.OID
	Epoch  uint32
	Ballot uint64
}

// Kind implements Payload.
func (p *DirPrepare) Kind() MsgKind { return MDirPrepare }

func (p *DirPrepare) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Epoch)
	e.U64(p.Ballot)
}

func (p *DirPrepare) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Epoch = d.U32()
	p.Ballot = d.U64()
}

// DirPromise answers a DirPrepare. Ok carries the replica's previously
// accepted (ballot, home) for the slot so the proposer can adopt it; !Ok
// is a nack carrying the higher ballot that blocked.
type DirPromise struct {
	Target    oid.OID
	Epoch     uint32
	Ballot    uint64 // the prepare ballot being answered
	Ok        bool
	Promised  uint64 // on nack: the ballot the replica is holding for
	AccBallot uint64 // on ok: accepted ballot (0 = none)
	AccNode   int32  // on ok: accepted home node (-1 = none)
}

// Kind implements Payload.
func (p *DirPromise) Kind() MsgKind { return MDirPromise }

func (p *DirPromise) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Epoch)
	e.U64(p.Ballot)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U64(p.Promised)
	e.U64(p.AccBallot)
	e.I32(p.AccNode)
}

func (p *DirPromise) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Epoch = d.U32()
	p.Ballot = d.U64()
	p.Ok = d.U8() != 0
	p.Promised = d.U64()
	p.AccBallot = d.U64()
	p.AccNode = d.I32()
}

// DirAccept asks a replica to accept the decree value (the object's new
// home node) at the prepared ballot.
type DirAccept struct {
	Target oid.OID
	Epoch  uint32
	Ballot uint64
	Node   int32 // the home node being decreed
}

// Kind implements Payload.
func (p *DirAccept) Kind() MsgKind { return MDirAccept }

func (p *DirAccept) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Epoch)
	e.U64(p.Ballot)
	e.I32(p.Node)
}

func (p *DirAccept) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Epoch = d.U32()
	p.Ballot = d.U64()
	p.Node = d.I32()
}

// DirAccepted answers a DirAccept.
type DirAccepted struct {
	Target   oid.OID
	Epoch    uint32
	Ballot   uint64
	Ok       bool
	Promised uint64 // on nack: the blocking ballot
}

// Kind implements Payload.
func (p *DirAccepted) Kind() MsgKind { return MDirAccepted }

func (p *DirAccepted) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Epoch)
	e.U64(p.Ballot)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U64(p.Promised)
}

func (p *DirAccepted) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Epoch = d.U32()
	p.Ballot = d.U64()
	p.Ok = d.U8() != 0
	p.Promised = d.U64()
}

// DirLearn announces a chosen decree to a replica: object Target lives at
// Node as of Epoch. Learns are idempotent (replicas apply only strictly
// newer epochs), so the proposer broadcasts them unreliably-at-least-once.
type DirLearn struct {
	Target oid.OID
	Epoch  uint32
	Node   int32
}

// Kind implements Payload.
func (p *DirLearn) Kind() MsgKind { return MDirLearn }

func (p *DirLearn) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Epoch)
	e.I32(p.Node)
}

func (p *DirLearn) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Epoch = d.U32()
	p.Node = d.I32()
}

// DirLookup asks a replica of the target's shard for its ownership record.
// Token correlates the reply with the asker's pending query.
type DirLookup struct {
	Target oid.OID
	Token  uint32
}

// Kind implements Payload.
func (p *DirLookup) Kind() MsgKind { return MDirLookup }

func (p *DirLookup) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Token)
}

func (p *DirLookup) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Token = d.U32()
}

// DirLookupReply answers a DirLookup. !Ok means the replica has no record
// (the object never moved, or its decrees have not reached this replica).
// Lease, when nonzero on a hit, grants the asker the right to reuse this
// record without re-querying for that many simulated microseconds (counted
// from receipt); the asker still invalidates early on learned decrees and
// peer suspicion (see kernel dir.go).
type DirLookupReply struct {
	Target oid.OID
	Token  uint32
	Ok     bool
	Node   int32
	Epoch  uint32
	Lease  uint32
}

// Kind implements Payload.
func (p *DirLookupReply) Kind() MsgKind { return MDirLookupReply }

func (p *DirLookupReply) marshal(e *Enc) {
	e.OID(p.Target)
	e.U32(p.Token)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.I32(p.Node)
	e.U32(p.Epoch)
	e.U32(p.Lease)
}

func (p *DirLookupReply) unmarshal(d *Dec) {
	p.Target = d.OID()
	p.Token = d.U32()
	p.Ok = d.U8() != 0
	p.Node = d.I32()
	p.Epoch = d.U32()
	p.Lease = d.U32()
}

// DirSlotRef names one (oid, epoch) decree slot inside a group message.
type DirSlotRef struct {
	Target oid.OID
	Epoch  uint32
}

// minSlotRefBytes is the encoded size of one DirSlotRef (for Count).
const minSlotRefBytes = 8

func marshalSlotRefs(e *Enc, ss []DirSlotRef) {
	e.U16(uint16(len(ss)))
	for _, s := range ss {
		e.OID(s.Target)
		e.U32(s.Epoch)
	}
}

func unmarshalSlotRefs(d *Dec) []DirSlotRef {
	n := d.Count(minSlotRefBytes)
	if n == 0 {
		return nil
	}
	out := make([]DirSlotRef, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DirSlotRef{Target: d.OID(), Epoch: d.U32()})
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// DirGPrepare opens a batched group decree round: the proposer (the source
// of a MoveGroup cohort) asks a replica shared by every member slot to
// promise one ballot for all of them. Token correlates the replies with
// the proposer's pending group.
type DirGPrepare struct {
	Token  uint32
	Ballot uint64
	Slots  []DirSlotRef
}

// Kind implements Payload.
func (p *DirGPrepare) Kind() MsgKind { return MDirGPrepare }

func (p *DirGPrepare) marshal(e *Enc) {
	e.U32(p.Token)
	e.U64(p.Ballot)
	marshalSlotRefs(e, p.Slots)
}

func (p *DirGPrepare) unmarshal(d *Dec) {
	p.Token = d.U32()
	p.Ballot = d.U64()
	p.Slots = unmarshalSlotRefs(d)
}

// DirGPromise answers a DirGPrepare. Ok means every member slot promised;
// AccBallots/AccNodes then carry the replica's per-slot accepted state,
// parallel to the prepare's slot list. !Ok is a nack carrying the highest
// ballot that blocked any member.
type DirGPromise struct {
	Token      uint32
	Ballot     uint64
	Ok         bool
	Promised   uint64
	AccBallots []uint64
	AccNodes   []int32
}

// Kind implements Payload.
func (p *DirGPromise) Kind() MsgKind { return MDirGPromise }

func (p *DirGPromise) marshal(e *Enc) {
	e.U32(p.Token)
	e.U64(p.Ballot)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U64(p.Promised)
	e.U16(uint16(len(p.AccBallots)))
	for _, b := range p.AccBallots {
		e.U64(b)
	}
	e.U16(uint16(len(p.AccNodes)))
	for _, n := range p.AccNodes {
		e.I32(n)
	}
}

func (p *DirGPromise) unmarshal(d *Dec) {
	p.Token = d.U32()
	p.Ballot = d.U64()
	p.Ok = d.U8() != 0
	p.Promised = d.U64()
	nb := d.Count(8)
	for i := 0; i < nb; i++ {
		p.AccBallots = append(p.AccBallots, d.U64())
		if d.Err() != nil {
			return
		}
	}
	nn := d.Count(4)
	for i := 0; i < nn; i++ {
		p.AccNodes = append(p.AccNodes, d.I32())
		if d.Err() != nil {
			return
		}
	}
}

// DirGAccept asks a replica to accept the whole group's values (one home
// node per member slot) at the prepared ballot. The slot list rides along
// so the replica side stays stateless between phases, like the
// single-decree protocol.
type DirGAccept struct {
	Token  uint32
	Ballot uint64
	Slots  []DirSlotRef
	Nodes  []int32
}

// Kind implements Payload.
func (p *DirGAccept) Kind() MsgKind { return MDirGAccept }

func (p *DirGAccept) marshal(e *Enc) {
	e.U32(p.Token)
	e.U64(p.Ballot)
	marshalSlotRefs(e, p.Slots)
	e.U16(uint16(len(p.Nodes)))
	for _, n := range p.Nodes {
		e.I32(n)
	}
}

func (p *DirGAccept) unmarshal(d *Dec) {
	p.Token = d.U32()
	p.Ballot = d.U64()
	p.Slots = unmarshalSlotRefs(d)
	nn := d.Count(4)
	for i := 0; i < nn; i++ {
		p.Nodes = append(p.Nodes, d.I32())
		if d.Err() != nil {
			return
		}
	}
}

// DirGAccepted answers a DirGAccept: every member slot accepted, or a nack
// with the blocking ballot.
type DirGAccepted struct {
	Token    uint32
	Ballot   uint64
	Ok       bool
	Promised uint64
}

// Kind implements Payload.
func (p *DirGAccepted) Kind() MsgKind { return MDirGAccepted }

func (p *DirGAccepted) marshal(e *Enc) {
	e.U32(p.Token)
	e.U64(p.Ballot)
	if p.Ok {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U64(p.Promised)
}

func (p *DirGAccepted) unmarshal(d *Dec) {
	p.Token = d.U32()
	p.Ballot = d.U64()
	p.Ok = d.U8() != 0
	p.Promised = d.U64()
}

// DirGLearn announces a chosen group decree: member slot i's object lives
// at Nodes[i] as of its slot epoch. Like DirLearn, learns are idempotent
// and applied per member.
type DirGLearn struct {
	Slots []DirSlotRef
	Nodes []int32
}

// Kind implements Payload.
func (p *DirGLearn) Kind() MsgKind { return MDirGLearn }

func (p *DirGLearn) marshal(e *Enc) {
	marshalSlotRefs(e, p.Slots)
	e.U16(uint16(len(p.Nodes)))
	for _, n := range p.Nodes {
		e.I32(n)
	}
}

func (p *DirGLearn) unmarshal(d *Dec) {
	p.Slots = unmarshalSlotRefs(d)
	nn := d.Count(4)
	for i := 0; i < nn; i++ {
		p.Nodes = append(p.Nodes, d.I32())
		if d.Err() != nil {
			return
		}
	}
}

// PayloadSize returns the encoded size of p alone (without the Msg
// header), using a pooled encoder. The batched move path uses it to
// attribute each inner object's share of a group frame.
func PayloadSize(p Payload) int {
	e := GetEnc(256)
	e.buf = e.buf[:0]
	p.marshal(e)
	n := e.Len()
	e.Release()
	return n
}

// ErrTruncated is returned for short buffers.
var ErrTruncated = errors.New("wire: truncated message")
