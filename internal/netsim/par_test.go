package netsim

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunExactBudget: a run that quiesces in exactly maxEvents events must
// succeed. The pre-fix Run checked the budget before the termination
// condition, so an exact-budget run spuriously reported exhaustion.
func TestRunExactBudget(t *testing.T) {
	s := NewSim()
	for i := 0; i < 5; i++ {
		s.At(Micros(i), func() {})
	}
	if err := s.Run(5); err != nil {
		t.Fatalf("run with exact event budget failed: %v", err)
	}
	// One fewer must still trip the guard.
	s2 := NewSim()
	for i := 0; i < 5; i++ {
		s2.At(Micros(i), func() {})
	}
	if err := s2.Run(4); err == nil {
		t.Fatal("run over budget succeeded")
	}
}

// TestRunClearsAbandonedWeak: weak events left behind at quiesce must be
// dropped from the queue (their closures released), not stay pinned.
func TestRunClearsAbandonedWeak(t *testing.T) {
	s := NewSim()
	s.At(10, func() {})
	var weakRan bool
	s.AtWeak(100, func() { weakRan = true })
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if weakRan {
		t.Error("abandoned weak event ran")
	}
	if got := s.PendingEvents(); got != 0 {
		t.Errorf("pending events after quiesce = %d, want 0", got)
	}
}

// pingPong runs a two-node frame exchange and returns each node's delivery
// log plus the final clock and network counters.
func pingPong(t *testing.T, parallel bool, rounds int) ([]string, []string, Micros, Counters) {
	t.Helper()
	s := NewSim()
	net := NewNetwork(s)
	logs := make([][]string, 2)
	var handler func(me int) Handler
	handler = func(me int) Handler {
		return func(src int, payload []byte) {
			logs[me] = append(logs[me], fmt.Sprintf("t=%d src=%d n=%d", s.NodeSched(me).Now(), src, payload[0]))
			if payload[0] < byte(rounds) {
				if err := net.Send(me, src, []byte{payload[0] + 1}, s.NodeSched(me).Now()); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}
	}
	net.Attach(0, handler(0))
	net.Attach(1, handler(1))
	s.AtNode(0, 0, func() {
		if err := net.Send(0, 1, []byte{1}, 0); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	var err error
	if parallel {
		err = s.RunParallel(net, 2, 100000)
	} else {
		err = s.Run(100000)
	}
	if err != nil {
		t.Fatal(err)
	}
	return logs[0], logs[1], s.Now(), net.Counters()
}

// TestRunParallelMatchesRun: the parallel engine's per-node delivery
// timelines, final clock and traffic counters equal the sequential
// reference's.
func TestRunParallelMatchesRun(t *testing.T) {
	s0, s1, now, c := pingPong(t, false, 20)
	p0, p1, pnow, pc := pingPong(t, true, 20)
	if strings.Join(s0, "\n") != strings.Join(p0, "\n") {
		t.Errorf("node 0 timelines differ:\nseq %v\npar %v", s0, p0)
	}
	if strings.Join(s1, "\n") != strings.Join(p1, "\n") {
		t.Errorf("node 1 timelines differ:\nseq %v\npar %v", s1, p1)
	}
	if now != pnow {
		t.Errorf("final clock: %d (seq) vs %d (par)", now, pnow)
	}
	if c != pc {
		t.Errorf("counters: %+v (seq) vs %+v (par)", c, pc)
	}
	if len(s0) == 0 || len(s1) == 0 {
		t.Error("ping-pong delivered nothing; comparison is vacuous")
	}
}

// TestRunParallelRejectsNodelessEvents: events scheduled with the node-less
// At have no home queue; the parallel engine must refuse, not guess.
func TestRunParallelRejectsNodelessEvents(t *testing.T) {
	s := NewSim()
	net := NewNetwork(s)
	net.Attach(0, func(int, []byte) {})
	s.At(5, func() {})
	if err := s.RunParallel(net, 1, 100); err == nil {
		t.Fatal("parallel run accepted a node-less pending event")
	}
}

// TestRunParallelBudget: a livelocked run must trip the event budget at a
// window barrier rather than spin forever.
func TestRunParallelBudget(t *testing.T) {
	s := NewSim()
	net := NewNetwork(s)
	net.Attach(0, func(int, []byte) {})
	var tick func()
	tick = func() { s.NodeSched(0).At(1, tick) }
	s.AtNode(0, 0, tick)
	if err := s.RunParallel(net, 1, 50); err == nil {
		t.Fatal("livelocked parallel run did not exhaust its budget")
	}
}

// TestRunParallelValidation: the precondition errors.
func TestRunParallelValidation(t *testing.T) {
	s := NewSim()
	net := NewNetwork(s)
	if err := s.RunParallel(net, 0, 10); err == nil {
		t.Error("accepted zero nodes")
	}
	net.LatencyMicros = 0
	if err := s.RunParallel(net, 1, 10); err == nil {
		t.Error("accepted zero lookahead")
	}
	net.LatencyMicros = 200
	other := NewNetwork(NewSim())
	if err := s.RunParallel(other, 1, 10); err == nil {
		t.Error("accepted a foreign network")
	}
}
