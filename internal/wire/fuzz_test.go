// Fuzzing the decode paths: under a chaos plan, frames arrive truncated and
// bit-flipped, so Unmarshal and ParseLinkFrame must reject any byte soup
// with an error — never panic, never over-allocate. The seed corpus covers
// every message kind; `go test -run FuzzMsgDecode` replays it in CI.

package wire

import (
	"bytes"
	"testing"
)

// seedMsgs returns one marshalled Msg of every payload kind.
func seedMsgs() [][]byte {
	payloads := []Payload{
		&Invoke{Target: 7, OpName: "tour", Origin: 1, CallerFrag: 0x01000002,
			Args:  []Value{{Kind: WInt, Bits: 42}, {Kind: WString, Str: []byte("hi")}},
			Hints: []LocHint{{OID: 9, Node: 2}}},
		&Return{Origin: 2, CallerFrag: 0x01000002, Ok: true,
			Result: Value{Kind: WInt, Bits: 1}, Hints: []LocHint{{OID: 9, Node: 0}}},
		&MoveReq{Target: 7, Dest: 3, Fix: true},
		&UnfixReq{Target: 7, Refix: true, Dest: 1},
		&Move{Object: 7, CodeOID: 3, Epoch: 2, MonLocked: true, MonHolder: 5,
			Data:       []Value{{Kind: WInt, Bits: 9}},
			EntryQueue: []uint32{5, 6},
			CondQueues: [][]uint32{nil, {8}},
			Frags: []Fragment{{FragID: 5, LinkNode: -1, Status: FragRunnable,
				Executing: true, Acts: []MIActivation{{CodeOID: 3, FuncIndex: 1,
					Stop: 2, Vars: []Value{{Kind: WInt, Bits: 3}}}}}},
			Hints:  []LocHint{{OID: 4, Node: 1}},
			SpanID: 11},
		&Locate{Target: 7, Origin: 0, ReplyFrag: 1, Hops: 3},
		&LocateReply{Target: 7, Node: 2, ReplyFrag: 1},
		&UpdateLoc{Target: 7, Node: 2, Epoch: 4},
		&MoveAck{Object: 7, SpanID: 11, Epoch: 2, Ok: false, Err: "bad piece index"},
	}
	var out [][]byte
	for i, p := range payloads {
		m := &Msg{Src: 0, Dst: 1, Seq: uint32(i), Payload: p}
		out = append(out, m.Marshal())
	}
	return out
}

func FuzzMsgDecode(f *testing.F) {
	for _, b := range seedMsgs() {
		f.Add(b)
		// Also seed link-wrapped and lightly mangled variants.
		lf := &LinkFrame{Kind: LData, Seq: 1, Inner: b}
		f.Add(lf.Marshal())
		if len(b) > 6 {
			mut := append([]byte(nil), b...)
			mut[len(mut)/2] ^= 0x40
			f.Add(mut[:len(mut)-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{byte(MMove)})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Unmarshal must return (msg, nil) or (nil, err) — never panic.
		if m, err := Unmarshal(data); err == nil {
			// A successfully decoded message must re-marshal without
			// panicking (canonical bytes may differ: flags re-normalize).
			_ = m.Marshal()
		}
		// Same for the link envelope; a valid frame's inner bytes go back
		// through Unmarshal like the kernel's receive path does.
		if lf, err := ParseLinkFrame(data); err == nil {
			if m, err := Unmarshal(lf.Inner); err == nil {
				_ = m.Marshal()
			}
		}
	})
}

func TestLinkFrameRoundtrip(t *testing.T) {
	inner := seedMsgs()[0]
	for _, kind := range []byte{LData, LAck, LRaw} {
		f := &LinkFrame{Kind: kind, Seq: 0xdeadbeef, Inner: inner}
		if kind != LData {
			f.Inner = nil
		}
		buf := f.Marshal()
		got, err := ParseLinkFrame(buf)
		if err != nil {
			t.Fatalf("kind 0x%02x: %v", kind, err)
		}
		if got.Kind != f.Kind || got.Seq != f.Seq || !bytes.Equal(got.Inner, f.Inner) {
			t.Fatalf("kind 0x%02x: roundtrip mismatch: %+v != %+v", kind, got, f)
		}
	}
}

func TestLinkFrameRejectsCorruption(t *testing.T) {
	f := &LinkFrame{Kind: LData, Seq: 42, Inner: seedMsgs()[4]}
	buf := f.Marshal()
	for off := 0; off < len(buf); off++ {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0x10
		if _, err := ParseLinkFrame(mut); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	for cut := 0; cut < linkHeaderBytes; cut++ {
		if _, err := ParseLinkFrame(buf[:cut]); err == nil {
			t.Fatalf("truncated header (%d bytes) accepted", cut)
		}
	}
}

func TestDecCountRejectsOversizedLists(t *testing.T) {
	// A Move whose fragment count claims 0xffff entries in a short buffer
	// must decode to an error, not a 65535-iteration loop or allocation.
	e := &Enc{}
	e.U8(byte(MMove))
	e.I32(0)
	e.I32(1)
	e.U32(0)
	e.OID(7)        // Object
	e.OID(3)        // CodeOID
	e.U32(1)        // Epoch
	e.U8(0)         // flags
	e.U8(0)         // elem kind
	e.U16(0)        // Data
	e.U32(0)        // MonHolder
	e.U16(0)        // EntryQueue
	e.U16(0)        // CondQueues
	e.U16(0xffff)   // Frags count: lies
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Fatal("oversized fragment count accepted")
	}
	// MoveAck roundtrip sanity while we are here.
	ack := &Msg{Src: 1, Dst: 0, Seq: 9,
		Payload: &MoveAck{Object: 7, SpanID: 3, Epoch: 2, Ok: true}}
	m, err := Unmarshal(ack.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Payload.(*MoveAck)
	if got.Object != 7 || got.SpanID != 3 || got.Epoch != 2 || !got.Ok || got.Err != "" {
		t.Fatalf("MoveAck roundtrip mismatch: %+v", got)
	}
}
