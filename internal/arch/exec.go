// The emulator: executes encoded machine code against simulated node
// memory, one instruction at a time, until it faults or traps to the
// kernel. The kernel (internal/kernel) owns everything above this level —
// threads, activation records, objects, scheduling — and resumes execution
// by calling Step again with updated CPU state.

package arch

import (
	"bytes"
	"fmt"

	"repro/internal/ir"
)

// Heap object layout (the machine ABI shared by the code generator, the
// emulator's inline array/string operations and the kernel):
//
//	plain object:  [table index][slot 0][slot 1]...
//	array:         [table index][length][element 0]...
//	string:        [table index][length][bytes..., zero padded to a word]
//
// References point at the table-index header word; 0 is nil.
const (
	HeaderBytes = 4 // table index word
	LenOff      = 4 // length word of arrays and strings
	ArrDataOff  = 8 // first element / first byte
	ObjDataOff  = 4 // first slot of a plain object
)

// CPU is the register state of one native thread.
type CPU struct {
	Regs      [16]uint32
	PC        uint32 // offset within the current function's code
	FP        uint32 // activation record base address
	Self      uint32 // data area address of the receiver (header word)
	TempBase  uint32 // base address of the activation's temporary area
	TempDepth int32  // current evaluation stack depth (slots)
	LitBase   uint32 // literal table of the current code object
	Preempt   bool   // set by the kernel to request a reschedule at the next poll
}

// Step executes the instruction at cpu.PC, updating cpu and mem, and
// returns the consumed cycles plus a non-nil trap if the kernel must take
// over. A returned error indicates a simulator-internal inconsistency
// (undecodable code), not a program-level fault — program faults are
// delivered as TrapFault traps.
func Step(s *Spec, cpu *CPU, code []byte, mem []byte) (*Trap, uint32, error) {
	in, err := Decode(s, code, cpu.PC)
	if err != nil {
		return nil, 0, err
	}
	next := cpu.PC + in.Size
	cycles := s.Cycles[in.Op]
	fault := func(f FaultCode) (*Trap, uint32, error) {
		return &Trap{Kind: TrapFault, Fault: f, PC: next}, cycles, nil
	}

	ld32 := func(addr uint32) (uint32, bool) {
		if int(addr)+4 > len(mem) || addr == 0 {
			return 0, false
		}
		return s.ByteOrd.Uint32(mem[addr : addr+4]), true
	}
	st32 := func(addr, v uint32) bool {
		if int(addr)+4 > len(mem) || addr == 0 {
			return false
		}
		s.ByteOrd.PutUint32(mem[addr:addr+4], v)
		return true
	}

	var faulted *FaultCode
	setFault := func(f FaultCode) uint32 {
		if faulted == nil {
			faulted = &f
		}
		return 0
	}
	// read evaluates a source operand.
	read := func(o Operand) uint32 {
		switch o.Mode {
		case ModeImm:
			return o.Imm
		case ModeReg:
			return cpu.Regs[o.Reg&0xf]
		case ModeFrame:
			cycles += s.MemCycles
			v, ok := ld32(cpu.FP + uint32(o.Disp))
			if !ok {
				return setFault(FaultStack)
			}
			return v
		case ModeSelf:
			cycles += s.MemCycles
			v, ok := ld32(cpu.Self + ObjDataOff + uint32(o.Disp))
			if !ok {
				return setFault(FaultNilRef)
			}
			return v
		case ModeLit:
			cycles += s.MemCycles
			v, ok := ld32(cpu.LitBase + 4*uint32(o.Disp))
			if !ok {
				return setFault(FaultNilRef)
			}
			return v
		case ModePop:
			cycles += s.MemCycles
			if cpu.TempDepth <= 0 {
				return setFault(FaultStack)
			}
			cpu.TempDepth--
			v, ok := ld32(cpu.TempBase + 4*uint32(cpu.TempDepth))
			if !ok {
				return setFault(FaultStack)
			}
			return v
		}
		setFault(FaultStack)
		return 0
	}
	// write stores to a destination operand.
	write := func(o Operand, v uint32) {
		switch o.Mode {
		case ModeReg:
			cpu.Regs[o.Reg&0xf] = v
		case ModeFrame:
			cycles += s.MemCycles
			if !st32(cpu.FP+uint32(o.Disp), v) {
				setFault(FaultStack)
			}
		case ModeSelf:
			cycles += s.MemCycles
			if !st32(cpu.Self+ObjDataOff+uint32(o.Disp), v) {
				setFault(FaultNilRef)
			}
		case ModePush:
			cycles += s.MemCycles
			if !st32(cpu.TempBase+4*uint32(cpu.TempDepth), v) {
				setFault(FaultStack)
			} else {
				cpu.TempDepth++
			}
		default:
			setFault(FaultStack)
		}
	}
	// readString fetches a string's bytes.
	readString := func(ref uint32) ([]byte, bool) {
		if ref == 0 {
			return nil, false
		}
		n, ok := ld32(ref + LenOff)
		if !ok || int(ref)+ArrDataOff+int(n) > len(mem) {
			return nil, false
		}
		return mem[ref+ArrDataOff : ref+ArrDataOff+n], true
	}
	cmp := func(cc byte, lt, eq bool) uint32 {
		var r bool
		switch int(cc) {
		case ir.CmpEQ:
			r = eq
		case ir.CmpNE:
			r = !eq
		case ir.CmpLT:
			r = lt
		case ir.CmpLE:
			r = lt || eq
		case ir.CmpGT:
			r = !lt && !eq
		case ir.CmpGE:
			r = !lt
		}
		if r {
			return 1
		}
		return 0
	}

	switch in.Op {
	case OpMov:
		write(in.Operands[1], read(in.Operands[0]))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpScc:
		// With stack operands, src2 (the top) is popped before src1.
		b := read(in.Operands[1])
		a := read(in.Operands[0])
		if faulted == nil {
			var v uint32
			switch in.Op {
			case OpAdd:
				v = uint32(int32(a) + int32(b))
			case OpSub:
				v = uint32(int32(a) - int32(b))
			case OpMul:
				v = uint32(int32(a) * int32(b))
			case OpDiv:
				if b == 0 {
					return fault(FaultDivZero)
				}
				v = uint32(int32(a) / int32(b))
			case OpMod:
				if b == 0 {
					return fault(FaultDivZero)
				}
				v = uint32(int32(a) % int32(b))
			case OpAnd:
				v = boolW(a != 0 && b != 0)
			case OpOr:
				v = boolW(a != 0 || b != 0)
			case OpScc:
				v = cmp(in.CC, int32(a) < int32(b), a == b)
			}
			write(in.Operands[2], v)
		}
	case OpNeg, OpAbs, OpNot:
		a := read(in.Operands[0])
		if faulted == nil {
			var v uint32
			switch in.Op {
			case OpNeg:
				v = uint32(-int32(a))
			case OpAbs:
				x := int32(a)
				if x < 0 {
					x = -x
				}
				v = uint32(x)
			case OpNot:
				v = boolW(a == 0)
			}
			write(in.Operands[1], v)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFScc:
		b := s.Float.Dec(read(in.Operands[1]))
		a := s.Float.Dec(read(in.Operands[0]))
		if faulted == nil {
			switch in.Op {
			case OpFAdd:
				write(in.Operands[2], s.Float.Enc(a+b))
			case OpFSub:
				write(in.Operands[2], s.Float.Enc(a-b))
			case OpFMul:
				write(in.Operands[2], s.Float.Enc(a*b))
			case OpFDiv:
				if b == 0 {
					return fault(FaultDivZero)
				}
				write(in.Operands[2], s.Float.Enc(a/b))
			case OpFScc:
				write(in.Operands[2], cmp(in.CC, a < b, a == b))
			}
		}
	case OpFNeg:
		a := s.Float.Dec(read(in.Operands[0]))
		if faulted == nil {
			write(in.Operands[1], s.Float.Enc(-a))
		}
	case OpCvt:
		a := int32(read(in.Operands[0]))
		if faulted == nil {
			write(in.Operands[1], s.Float.Enc(float32(a)))
		}
	case OpSScc:
		bref := read(in.Operands[1])
		aref := read(in.Operands[0])
		if faulted == nil {
			as, ok1 := readString(aref)
			bs, ok2 := readString(bref)
			if !ok1 || !ok2 {
				return fault(FaultNilRef)
			}
			cycles += uint32(min(len(as), len(bs)))
			c := bytes.Compare(as, bs)
			write(in.Operands[2], cmp(in.CC, c < 0, c == 0))
		}
	case OpJmp:
		next = uint32(in.Target)
	case OpBrz, OpBrnz:
		v := read(in.Operands[0])
		if faulted == nil {
			if (v == 0) == (in.Op == OpBrz) {
				next = uint32(in.Target)
				cycles += 1 // taken-branch penalty
			}
		}
	case OpALoad:
		idx := read(in.Operands[1])
		arr := read(in.Operands[0])
		if faulted == nil {
			if arr == 0 {
				return fault(FaultNilRef)
			}
			n, ok := ld32(arr + LenOff)
			if !ok {
				return fault(FaultNilRef)
			}
			if idx >= n {
				return fault(FaultBounds)
			}
			v, ok := ld32(arr + ArrDataOff + 4*idx)
			if !ok {
				return fault(FaultBounds)
			}
			write(in.Operands[2], v)
		}
	case OpAStor:
		v := read(in.Operands[2])
		idx := read(in.Operands[1])
		arr := read(in.Operands[0])
		if faulted == nil {
			if arr == 0 {
				return fault(FaultNilRef)
			}
			n, ok := ld32(arr + LenOff)
			if !ok {
				return fault(FaultNilRef)
			}
			if idx >= n {
				return fault(FaultBounds)
			}
			if !st32(arr+ArrDataOff+4*idx, v) {
				return fault(FaultBounds)
			}
		}
	case OpALen, OpSLen:
		ref := read(in.Operands[0])
		if faulted == nil {
			if ref == 0 {
				return fault(FaultNilRef)
			}
			n, ok := ld32(ref + LenOff)
			if !ok {
				return fault(FaultNilRef)
			}
			write(in.Operands[1], n)
		}
	case OpSIdx:
		idx := read(in.Operands[1])
		ref := read(in.Operands[0])
		if faulted == nil {
			str, ok := readString(ref)
			if !ok {
				return fault(FaultNilRef)
			}
			if idx >= uint32(len(str)) {
				return fault(FaultBounds)
			}
			write(in.Operands[2], uint32(str[idx]))
		}
	case OpPoll:
		if cpu.Preempt {
			cpu.PC = next
			return &Trap{Kind: TrapYield, PC: next}, cycles + s.TrapCycles, nil
		}
	case OpRet:
		cpu.PC = next
		return &Trap{Kind: TrapRet, PC: next}, cycles + s.TrapCycles, nil
	case OpTrap:
		cpu.PC = next
		return &Trap{Kind: in.TrapKind, A: in.TrapA, B: in.TrapB, PC: next},
			cycles + s.TrapCycles, nil
	case OpUnlq:
		// Atomic doubly-linked-list unlink: monitor exit in one
		// non-interruptible instruction. The kernel performs the unlink and
		// resumes the thread immediately — no scheduling point, so the local
		// runtime never observes this PC (the bus stop here is exit-only).
		cpu.PC = next
		return &Trap{Kind: TrapMonExitA, PC: next}, cycles, nil
	default:
		return nil, 0, fmt.Errorf("%s: unimplemented op %v at %#x", s.Name, in.Op, cpu.PC)
	}

	if faulted != nil {
		return &Trap{Kind: TrapFault, Fault: *faulted, PC: next}, cycles, nil
	}
	cpu.PC = next
	return nil, cycles, nil
}

func boolW(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// RunLegacy executes instructions until a trap occurs or budget
// instructions have executed, returning the trap (nil if the budget
// expired), the cycles consumed, and the instruction count. It decodes
// byte-at-a-time via Step and is the reference implementation the
// predecoded dispatcher (predecode.go) is validated against.
func RunLegacy(s *Spec, cpu *CPU, code []byte, mem []byte, budget int) (*Trap, uint64, int, error) {
	var cycles uint64
	for n := 0; n < budget; n++ {
		tr, c, err := Step(s, cpu, code, mem)
		cycles += uint64(c)
		if err != nil {
			return nil, cycles, n + 1, err
		}
		if tr != nil {
			return tr, cycles, n + 1, nil
		}
	}
	return nil, cycles, budget, nil
}
