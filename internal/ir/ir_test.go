package ir

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lang/types"
)

// compile parses, checks and lowers src, verifying every function.
func compile(t *testing.T, src string) (*Program, map[*Func]*FuncInfo) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p := Build(info)
	fis, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return p, fis
}

func TestBuildCounter(t *testing.T) {
	p, fis := compile(t, `
object Counter
  monitor
    var count: Int <- 0
    var nonzero: Condition
    operation inc(n: Int) -> (r: Int)
      count <- count + n
      signal nonzero
      r <- count
    end inc
  end monitor
end Counter
object Main
  var c: Counter
  initially
    c <- new Counter
  end initially
  process
    var x: Int <- c.inc(3)
    print("got ", x)
  end process
end Main
`)
	counter := p.Object("Counter")
	if counter == nil {
		t.Fatal("no Counter object")
	}
	inc := counter.Funcs[counter.FuncIndex("inc")]
	if !inc.Monitored {
		t.Error("inc should be monitored")
	}
	if inc.NumParams != 1 || inc.NumResults != 1 || inc.NumVars != 2 {
		t.Errorf("inc shape: params=%d results=%d vars=%d", inc.NumParams, inc.NumResults, inc.NumVars)
	}
	if counter.MonitoredFrom != 0 || counter.NumConds != 1 {
		t.Errorf("layout: monitoredFrom=%d conds=%d", counter.MonitoredFrom, counter.NumConds)
	}
	main := p.Object("Main")
	if main.Init() == nil || main.Process() == nil {
		t.Fatal("Main missing $init or $process")
	}
	if main.FuncIndex("$initially") < 0 {
		t.Fatal("Main missing $initially")
	}
	// The process calls c.inc then print.
	proc := main.Process()
	var haveCall, havePrint bool
	for _, in := range proc.Code {
		if in.Op == Call && proc.Strings[in.S] == "inc" {
			haveCall = true
		}
		if in.Op == SysPrint {
			havePrint = true
			if proc.Strings[in.S] != "si" {
				t.Errorf("print kinds = %q, want \"si\"", proc.Strings[in.S])
			}
		}
	}
	if !haveCall || !havePrint {
		t.Errorf("process missing call(%v)/print(%v)\n%s", haveCall, havePrint, Dump(proc))
	}
	_ = fis
}

func TestInitOrdering(t *testing.T) {
	p, _ := compile(t, `
object M
  var a: Int <- 10
  monitor
    var cv: Condition
    var dv: Condition
  end
end M
`)
	m := p.Object("M")
	init := m.Init()
	// Condition indices stored first, then initializers.
	var stores []int32
	for _, in := range init.Code {
		if in.Op == StoreMine {
			stores = append(stores, in.A)
		}
	}
	if len(stores) != 3 {
		t.Fatalf("init stores = %v, want cond slots then a\n%s", stores, Dump(init))
	}
	if stores[0] != 1 || stores[1] != 2 || stores[2] != 0 {
		t.Errorf("store order = %v", stores)
	}
}

func TestStackMapsAtBusStops(t *testing.T) {
	p, fis := compile(t, `
object A
  operation f(x: Int) -> (r: Int)
    r <- x
  end
end A
object M
  process
    var a: A <- new A
    var total: Int <- a.f(1) + a.f(2)
    print(total)
  end process
end M
`)
	proc := p.Object("M").Process()
	fi := fis[proc]
	// Find the second Call: at that point the first call's result (an int)
	// is live on the evaluation stack below the receiver+args, so the
	// stack before the call is [int, ptr, int].
	calls := 0
	for pc, in := range proc.Code {
		if in.Op != Call {
			continue
		}
		calls++
		if calls == 2 {
			st := fi.StackIn[pc]
			want := []VK{VKInt, VKPtr, VKInt}
			if len(st) != len(want) {
				t.Fatalf("stack at 2nd call = %v, want %v", st, want)
			}
			for i := range want {
				if st[i] != want[i] {
					t.Fatalf("stack at 2nd call = %v, want %v", st, want)
				}
			}
		}
	}
	if calls < 2 {
		t.Fatalf("found %d calls\n%s", calls, Dump(proc))
	}
	if fi.MaxStack < 3 {
		t.Errorf("MaxStack = %d, want >= 3", fi.MaxStack)
	}
}

func TestControlFlowShapes(t *testing.T) {
	p, fis := compile(t, `
object M
  operation f(x: Int) -> (r: Int)
    if x == 0 then
      r <- 1
    elseif x == 1 then
      r <- 2
    else
      r <- 3
    end
    loop
      r <- r + 1
      exit when r > 5
    end
    while r > 0 do
      r <- r - 1
    end
  end
end M
`)
	f := p.Object("M").Funcs[0]
	fi := fis[f]
	// All reachable instructions have consistent empty-or-known stacks; the
	// function must contain exactly two LoopBottom bus stops.
	lb := 0
	for _, in := range f.Code {
		if in.Op == LoopBottom {
			lb++
		}
	}
	if lb != 2 {
		t.Errorf("loop bottoms = %d, want 2\n%s", lb, Dump(f))
	}
	_ = fi
}

func TestImplicitConversions(t *testing.T) {
	p, _ := compile(t, `
object M
  operation f(i: Int, r: Real) -> (out: Real)
    out <- i + r
    out <- r + i
    out <- i
    var b: Bool <- i < r
    print(b)
  end
end M
`)
	f := p.Object("M").Funcs[0]
	cvt := 0
	for _, in := range f.Code {
		if in.Op == CvtIR {
			cvt++
		}
	}
	if cvt != 4 {
		t.Errorf("CvtIR count = %d, want 4\n%s", cvt, Dump(f))
	}
}

func TestStringOps(t *testing.T) {
	p, _ := compile(t, `
object M
  operation f(s: String) -> (r: Int)
    var u: String <- s + "x"
    if u == "abcx" then
      r <- u.size() + s[0]
    end
  end
end M
`)
	f := p.Object("M").Funcs[0]
	var ops []Op
	for _, in := range f.Code {
		switch in.Op {
		case SysConcat, CmpS, SLen, SIndex:
			ops = append(ops, in.Op)
		}
	}
	if len(ops) != 4 {
		t.Errorf("string ops = %v\n%s", ops, Dump(f))
	}
}

func TestArrays(t *testing.T) {
	p, fis := compile(t, `
object M
  operation f() -> (r: Real)
    var a: Array[Real] <- new Array[Real](3)
    a[0] <- 1.5
    a[1] <- 2
    r <- a[0] + a[1]
    var n: Int <- a.size()
    print(n)
  end
end M
`)
	f := p.Object("M").Funcs[0]
	fi := fis[f]
	if fi.MaxStack < 3 {
		t.Errorf("MaxStack = %d", fi.MaxStack)
	}
	// a[1] <- 2 must convert the int to real before AStore.
	seen := false
	for pc, in := range f.Code {
		if in.Op == AStore && in.K == VKReal {
			if f.Code[pc-1].Op == CvtIR {
				seen = true
			}
		}
	}
	if !seen {
		t.Errorf("missing CvtIR before real AStore\n%s", Dump(f))
	}
}

func TestMobilityOps(t *testing.T) {
	p, _ := compile(t, `
object M
  process
    var o: M <- new M
    move o to node(1)
    fix o at thisnode()
    refix o at node(0)
    unfix o
    var w: Node <- locate(o)
    print(w)
  end process
end M
`)
	f := p.Object("M").Process()
	want := []Op{SysMove, SysFix, SysRefix, SysUnfix, SysLocate}
	var got []Op
	for _, in := range f.Code {
		for _, w := range want {
			if in.Op == w {
				got = append(got, in.Op)
			}
		}
	}
	if len(got) != len(want) {
		t.Errorf("mobility ops = %v, want %v", got, want)
	}
}

func TestBusStopClassification(t *testing.T) {
	stops := []Op{Call, New, NewArray, LoopBottom, SysPrint, SysMove, SysWait, SysConcat}
	for _, op := range stops {
		if !op.IsBusStop() {
			t.Errorf("%v should be a bus stop", op)
		}
	}
	nonStops := []Op{AddI, LoadVar, Jump, BrFalse, Ret, CmpS, ALoad, PushInt}
	for _, op := range nonStops {
		if op.IsBusStop() {
			t.Errorf("%v should not be a bus stop", op)
		}
	}
}

func TestVerifyCatchesBadCode(t *testing.T) {
	bad := []*Func{
		{Name: "underflow", Code: []Instr{{Op: Drop}, {Op: Ret}}},
		{Name: "badjump", Code: []Instr{{Op: Jump, A: 99}}},
		{Name: "leftover", Code: []Instr{{Op: PushInt, A: 1}, {Op: Ret}}},
		{Name: "badslot", Code: []Instr{{Op: LoadVar, A: 5}, {Op: Drop}, {Op: Ret}}},
		{Name: "kind", VarKinds: []VK{VKPtr}, NumVars: 1,
			Code: []Instr{{Op: PushInt, A: 1}, {Op: StoreVar, A: 0}, {Op: Ret}}},
		{Name: "noret", Code: []Instr{{Op: Nop}}},
	}
	for _, f := range bad {
		if _, err := Analyze(f, nil); err == nil {
			t.Errorf("%s: expected verification error", f.Name)
		}
	}
}

func TestVerifyJoinMismatch(t *testing.T) {
	f := &Func{Name: "join", Code: []Instr{
		{Op: PushInt, A: 0}, // 0
		{Op: BrFalse, A: 4}, // 1: to 4 with empty stack
		{Op: PushInt, A: 7}, // 2
		{Op: Jump, A: 4},    // 3: to 4 with [int]
		{Op: PushInt, A: 1}, // 4
		{Op: Drop},          // 5
		{Op: Ret},           // 6
	}}
	if _, err := Analyze(f, nil); err == nil || !strings.Contains(err.Error(), "join") {
		t.Errorf("expected join mismatch, got %v", err)
	}
}

func TestDumpContainsMnemonics(t *testing.T) {
	p, _ := compile(t, `
object M
  operation f() -> (r: Int)
    r <- 1 + 2
  end
end M
`)
	d := Dump(p.Object("M").Funcs[0])
	for _, frag := range []string{"pushint 1", "pushint 2", "addi", "storevar 0", "ret"} {
		if !strings.Contains(d, frag) {
			t.Errorf("dump missing %q:\n%s", frag, d)
		}
	}
}

func TestDynamicCall(t *testing.T) {
	p, _ := compile(t, `
object M
  operation f(x: Any) -> (r: Any)
    r <- x.whatever(1)
  end
end M
`)
	f := p.Object("M").Funcs[0]
	found := false
	for _, in := range f.Code {
		if in.Op == Call && in.K == VKPtr {
			found = true
		}
	}
	if !found {
		t.Errorf("dynamic call should push a pointer\n%s", Dump(f))
	}
}
