// Kilroy — the classic Emerald mobility demo: a single object carries its
// thread around every node of the network, leaving a mark at each stop.
// Here the network mixes all three architectures, so every hop converts
// the live thread state (the loop counter, the accumulating itinerary
// string, the node values) between machine-dependent formats through the
// machine-independent form, resuming native execution at each stop.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

const program = `
object Kilroy
  var visits: Int <- 0
  operation tour() -> (r: String)
    r <- "Kilroy was here:"
    var i: Int <- 0
    while i < nodes() do
      move self to node(i)
      visits <- visits + 1
      r <- r + " " + str(thisnode())
      i <- i + 1
    end
    move self to node(0)
  end
  function count() -> (r: Int)
    r <- visits
  end
end Kilroy

object Main
  process
    var k: Kilroy <- new Kilroy
    var t0: Int <- timems()
    print(k.tour())
    var t1: Int <- timems()
    print("visited ", k.count(), " nodes in ", t1 - t0, " simulated ms")
    print("home again at ", locate(k))
  end process
end Main
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	machines := []netsim.MachineModel{
		netsim.SPARCstationSLC,
		netsim.VAXstation2000,
		netsim.Sun3_100,
		netsim.HP9000_433s,
		netsim.HP9000_385,
	}
	sys, err := core.NewSystem(prog, machines, core.Options{Mode: kernel.ModeEnhanced})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, line := range sys.Lines() {
		fmt.Println(line)
	}
	for _, n := range sys.Cluster.Nodes {
		fmt.Printf("node%d %-18s executed %d native instructions (%s)\n",
			n.ID, n.Model.Name, n.Instrs, n.Spec.Name)
	}
}
