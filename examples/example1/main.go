// Example 1 from the paper (§1): "Consider an object X residing on node A
// invoking an operation in an object Y residing on node B, the effect of
// the operation being that X is moved to node C. A remote procedure call is
// performed to invoke the operation in Y. When the thread returns from
// executing the operation in Y, execution has to resume on node C where X
// is now residing. The system has to move part of the call stack of the
// existing thread from node A to node C."
//
// Nodes A, B and C run different architectures here, so the moved part of
// the call stack is additionally converted between machine-dependent
// formats on the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
)

const program = `
object Y
  operation relocate(x: Any, dest: Node)
    print("  Y (on ", thisnode(), "): moving the caller to ", dest)
    move x to dest
  end
end Y

object X
  var y: Y
  operation go() -> (r: String)
    var a: Node <- thisnode()
    y.relocate(self, node(2))
    // The invocation of Y has returned -- on node C, not node A.
    r <- "X started on " + str(a) + ", resumed on " + str(thisnode())
  end
end X

object Main
  process
    var y: Y <- new Y
    move y to node(1)
    var x: X <- new X(y)
    print("node A = ", node(0), ", node B = ", node(1), ", node C = ", node(2))
    print(x.go())
    print("X now resides on ", locate(x))
  end process
end Main
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	machines := []netsim.MachineModel{
		netsim.VAXstation2000,  // node A
		netsim.Sun3_100,        // node B
		netsim.SPARCstationSLC, // node C
	}
	sys, err := core.NewSystem(prog, machines, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, line := range sys.Lines() {
		fmt.Println(line)
	}
}
