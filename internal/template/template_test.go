package template

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func validAct() *Activation {
	return &Activation{
		FuncName: "T.f", NumParams: 1, NumResults: 1, NumVars: 3,
		SavedFPOff: 0, RetDescOff: 4, RetPCOff: 8, SelfOff: 12, TempBaseOff: 16,
		SavedRegsOff: 20, SavedRegs: []byte{6, 7},
		Vars: []Home{
			{Name: "a", Kind: ir.VKInt, InReg: true, Reg: 6},
			{Name: "r", Kind: ir.VKPtr, InReg: true, Reg: 7},
			{Name: "x", Kind: ir.VKReal, Off: 28},
		},
		TempOff: 32, TempSlots: 2,
		Size: 40,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validAct().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Activation)
		frag string
	}{
		{"unaligned", func(a *Activation) { a.Size = 39 }, "word aligned"},
		{"overlap", func(a *Activation) { a.RetDescOff = 0 }, "overlaps"},
		{"outside", func(a *Activation) { a.TempOff = 100 }, "outside"},
		{"varOverlap", func(a *Activation) { a.Vars[2].Off = 4 }, "overlaps"},
		{"sharedReg", func(a *Activation) { a.Vars[1].Reg = 6 }, "share register"},
		{"homeCount", func(a *Activation) { a.Vars = a.Vars[:2] }, "homes for"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := validAct()
			c.mut(a)
			err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("err = %v, want containing %q", err, c.frag)
			}
		})
	}
}

func TestRegHome(t *testing.T) {
	a := validAct()
	if r, ok := a.RegHome(0); !ok || r != 6 {
		t.Errorf("var 0 home = %d,%v", r, ok)
	}
	if _, ok := a.RegHome(2); ok {
		t.Error("var 2 should be a memory home")
	}
}

func TestHomeString(t *testing.T) {
	h := Home{Name: "x", Kind: ir.VKReal, InReg: true, Reg: 9}
	if h.String() != "x:r@r9" {
		t.Errorf("home = %q", h.String())
	}
	h = Home{Name: "y", Kind: ir.VKPtr, Off: 24}
	if h.String() != "y:p@fp+24" {
		t.Errorf("home = %q", h.String())
	}
}

func TestObjectDataSize(t *testing.T) {
	o := &Object{Name: "X", Slots: []ir.VK{ir.VKInt, ir.VKPtr, ir.VKReal}}
	if o.DataSize() != 12 {
		t.Errorf("data size = %d", o.DataSize())
	}
}
