// Chaos-protocol tests: the kernel's migration protocol must survive a
// seeded fault plan — dropped, duplicated, delayed and corrupted frames
// plus a mid-run crash/restart — and still produce exactly the fault-free
// program output, install every object exactly once, and emit a
// byte-identical event log for the same seed.

package kernel

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/ir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

func kilroySrc(t testing.TB) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "programs", "kilroy.em"))
	if err != nil {
		t.Fatalf("reading kilroy demo: %v", err)
	}
	return string(b)
}

func chaosConfig(plan *chaos.Plan) Config {
	cfg := DefaultConfig()
	cfg.Chaos = plan
	return cfg
}

// assertExactlyOnceInstalls fails if any migration span installed twice.
func assertExactlyOnceInstalls(t *testing.T, c *Cluster) {
	t.Helper()
	installs := map[uint32]int{}
	for _, e := range c.Rec.Events() {
		if e.Kind == obs.EvMigrateIn {
			installs[e.Span]++
		}
	}
	for span, cnt := range installs {
		if cnt > 1 {
			t.Errorf("span %d installed %d times (double install)", span, cnt)
		}
	}
}

// TestChaosKilroyIdentical is the headline acceptance test: kilroy under a
// plan with >5% drop, duplicates, delays, corruption and a crash/restart
// in the middle of the tour must print exactly what the fault-free run
// prints, and two runs with the same seed must produce byte-identical
// event logs.
func TestChaosKilroyIdentical(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}

	base := runSrc(t, src, models, DefaultConfig())
	baseOut := base.OutputText()
	elapsed := base.Sim.Now()

	plan := func() *chaos.Plan {
		return &chaos.Plan{
			Seed:    7,
			Drop:    0.06,
			Dup:     0.04,
			Delay:   0.05,
			Corrupt: 0.03,
			// Crash a mid-tour node a third of the way through the
			// fault-free schedule and bring it back well inside the
			// suspicion timeout, so the protocol recovers by
			// retransmission rather than degradation.
			Crashes: []chaos.Crash{{Node: 2, At: elapsed / 3, RestartAt: elapsed/3 + 80_000}},
		}
	}

	c1 := runSrc(t, src, models, chaosConfig(plan()))
	if got := c1.OutputText(); got != baseOut {
		t.Fatalf("chaos run output differs from fault-free run:\nfault-free:\n%s\nchaos:\n%s", baseOut, got)
	}
	assertExactlyOnceInstalls(t, c1)

	// The plan must actually have bitten: injected faults and recovery
	// actions should both be present, or the test proves nothing.
	counts := map[obs.Kind]int{}
	for _, e := range c1.Rec.Events() {
		counts[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.EvFaultInject, obs.EvRetransmit, obs.EvNodeCrash, obs.EvNodeRestart} {
		if counts[k] == 0 {
			t.Errorf("expected at least one %v event under the fault plan", k)
		}
	}

	c2 := runSrc(t, src, models, chaosConfig(plan()))
	log1, log2 := obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)
	if !bytes.Equal(log1, log2) {
		t.Errorf("same seed produced different event logs (%d vs %d bytes)", len(log1), len(log2))
	}
}

const probeSrc = `
object Probe
  operation ping() -> (r: String)
    r <- str(thisnode())
  end
end Probe

object Main
  process
    var p: Probe <- new Probe
    move p to node(1)
    print(p.ping())
  end process
end Main
`

// TestRetryPendingMovesAfterRecovery parks a move behind a crashed
// destination: node 1 is down from boot, so the Move cannot be delivered,
// the commit window expires once the destination is suspected, the move
// aborts and requeues, and the retry — scheduled after the destination's
// restart — completes it exactly once.
func TestRetryPendingMovesAfterRecovery(t *testing.T) {
	plan := &chaos.Plan{
		Seed:           1,
		Crashes:        []chaos.Crash{{Node: 1, At: 1, RestartAt: 150_000}},
		HeartbeatEvery: 10_000,
		SuspectAfter:   35_000,
		CommitTimeout:  25_000,
		RTOBase:        5_000,
		RTOMax:         20_000,
		MaxRetrans:     3,
		MoveRetry:      150_000,
	}
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC}, chaosConfig(plan))

	// The parked call replays on abort, so ping answers locally (node 0).
	if got := c.OutputText(); got != "node0" {
		t.Fatalf("output = %q, want %q", got, "node0")
	}
	var aborts, commits, installs int
	for _, e := range c.Rec.Events() {
		switch e.Kind {
		case obs.EvMoveAbort:
			aborts++
		case obs.EvMoveCommit:
			commits++
		case obs.EvMigrateIn:
			if e.Node == 1 {
				installs++
			}
		}
	}
	if aborts == 0 {
		t.Error("expected the first move attempt to abort while node 1 was down")
	}
	if commits != 1 {
		t.Errorf("move commits = %d, want exactly 1 (the post-recovery retry)", commits)
	}
	if installs != 1 {
		t.Errorf("node 1 installs = %d, want exactly 1 (exactly-once delivery)", installs)
	}
	assertExactlyOnceInstalls(t, c)
	// The retried move really landed: the probe lives on node 1 now.
	n1 := c.Nodes[1]
	resident := 0
	for _, o := range n1.objects {
		if o.Resident && o.Kind == ObjPlain {
			resident++
		}
	}
	if resident == 0 {
		t.Error("probe object is not resident on node 1 after the retried move")
	}
}

const deadNodeSrc = `
object Probe
  operation ping() -> (r: String)
    r <- str(thisnode())
  end
end Probe

object Main
  process
    var p: Probe <- new Probe
    move p to node(1)
    print(p.ping())
    var i: Int <- 0
    while i < 2500000 do
      i <- i + 1
    end
    print(p.ping())
  end process
end Main
`

// TestNodeDownFaultTyped kills the destination for good: the in-flight
// remote invocation must fail with a typed ErrNodeDown fault instead of
// hanging the simulation.
func TestNodeDownFaultTyped(t *testing.T) {
	// Message sends cost SendCycles of CPU (~8.5ms at 20 MHz), so every
	// protocol window here is generous relative to that: the crash lands
	// deep inside the spin loop, long after the first ping's round trip.
	plan := &chaos.Plan{
		Seed:           1,
		Crashes:        []chaos.Crash{{Node: 1, At: 250_000}}, // never restarts
		HeartbeatEvery: 20_000,
		SuspectAfter:   100_000,
		CommitTimeout:  60_000,
		RTOBase:        20_000,
		RTOMax:         80_000,
		MaxRetrans:     5,
	}
	p := compileSrc(t, deadNodeSrc)
	c, err := NewCluster(p, []netsim.MachineModel{mSPARC, mSPARC}, chaosConfig(plan))
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	c.Start(nil)
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The first ping reached node 1 before the crash.
	if got := c.OutputText(); got != "node1" {
		t.Fatalf("output = %q, want %q (first ping answered, second faulted)", got, "node1")
	}
	if len(c.Faults) == 0 {
		t.Fatal("expected a typed node-down fault, got none")
	}
	f := c.Faults[0]
	if !errors.Is(f.Err, ErrNodeDown) {
		t.Errorf("fault error = %v, want ErrNodeDown (msg %q)", f.Err, f.Msg)
	}
}

// TestRecvMoveDuplicateSuppressed re-delivers the same Move span twice:
// the second delivery must be dropped (and re-acked), not re-installed.
func TestRecvMoveDuplicateSuppressed(t *testing.T) {
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC},
		chaosConfig(&chaos.Plan{Seed: 1}))
	n1 := c.Nodes[1]
	mv := &wire.Move{
		Object: oid.ForRuntime(0, 999), IsArray: true,
		ArrayElemKind: byte(ir.VKInt), Epoch: 1,
		Data:   []wire.Value{wire.IntV(4), wire.IntV(9)},
		SpanID: 424242,
	}
	n1.recvMove(0, mv)
	if o, ok := n1.objects[mv.Object]; !ok || !o.Resident {
		t.Fatal("first delivery did not install the array")
	}
	addr := n1.objects[mv.Object].Addr

	n1.recvMove(0, mv) // duplicate span: must be suppressed
	if got := n1.objects[mv.Object].Addr; got != addr {
		t.Errorf("duplicate Move re-installed the object (addr %#x -> %#x)", addr, got)
	}
	var dups int
	for _, e := range c.Rec.Events() {
		if e.Kind == obs.EvMoveDupDrop && e.Span == mv.SpanID {
			dups++
		}
	}
	if dups != 1 {
		t.Errorf("move-dup-drop events = %d, want 1", dups)
	}
	assertExactlyOnceInstalls(t, c)
}

// TestValidateMoveRejects feeds structurally bad Moves to recvMove: each
// must be refused with a negative MoveAck (the metric counts rejects) and
// never installed or panicked on.
func TestValidateMoveRejects(t *testing.T) {
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC},
		chaosConfig(&chaos.Plan{Seed: 1}))
	n1 := c.Nodes[1]
	bad := []*wire.Move{
		// Hint naming a node outside the cluster.
		{Object: oid.ForRuntime(0, 800), IsArray: true, ArrayElemKind: byte(ir.VKInt),
			Data:   []wire.Value{wire.IntV(1)},
			Hints:  []wire.LocHint{{OID: oid.ForRuntime(0, 801), Node: 99}},
			SpanID: 910_001},
		// Array with an element kind beyond the VK range.
		{Object: oid.ForRuntime(0, 802), IsArray: true, ArrayElemKind: 200,
			Data: []wire.Value{wire.IntV(1)}, SpanID: 910_002},
		// Array claiming thread state.
		{Object: oid.ForRuntime(0, 803), IsArray: true, ArrayElemKind: byte(ir.VKInt),
			Data:   []wire.Value{wire.IntV(1)},
			Frags:  []wire.Fragment{{FragID: 1}},
			SpanID: 910_003},
	}
	for _, mv := range bad {
		n1.recvMove(0, mv)
		if o, ok := n1.objects[mv.Object]; ok && o.Resident {
			t.Errorf("malformed Move (span %d) was installed", mv.SpanID)
		}
		if n1.seenSpans[mv.SpanID] {
			t.Errorf("rejected span %d was marked seen; a corrected retry would be dropped", mv.SpanID)
		}
	}
}

// TestChaosAggressiveDupSmoke is the pooled-buffer-lifetime regression
// test: with every other frame duplicated (plus corruption to force CRC
// retransmissions) many primary/duplicate pairs are in flight through the
// delivery-buffer pool at once. If a duplicate ever aliased its primary's
// pooled buffer, the first delivery's release would recycle bytes still in
// flight and the tour would decode garbage. Run under -race (make ci) this
// also checks the buffer paths for data races.
func TestChaosAggressiveDupSmoke(t *testing.T) {
	src := kilroySrc(t)
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}
	base := runSrc(t, src, models, DefaultConfig())

	plan := func() *chaos.Plan {
		return &chaos.Plan{Seed: 11, Dup: 0.5, Corrupt: 0.05}
	}
	c1 := runSrc(t, src, models, chaosConfig(plan()))
	if got := c1.OutputText(); got != base.OutputText() {
		t.Fatalf("aggressive-dup run output differs from fault-free run:\nfault-free:\n%s\nchaos:\n%s",
			base.OutputText(), got)
	}
	assertExactlyOnceInstalls(t, c1)
	if dups := c1.Net.Dups; dups < 10 {
		t.Errorf("only %d duplicates injected; smoke is not aggressive", dups)
	}
	c2 := runSrc(t, src, models, chaosConfig(plan()))
	if !bytes.Equal(obs.EventLog(c1.Rec), obs.EventLog(c2.Rec)) {
		t.Error("same seed produced different event logs under aggressive duplication")
	}
}
