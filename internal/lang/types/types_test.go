package types

import (
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected type error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestSlotAssignment(t *testing.T) {
	info := mustCheck(t, `
object M
  operation f(a: Int, b: String) -> (r: Real)
    var x: Int <- a
    var y: Bool <- true
    if y then
      var z: Int <- x
      x <- z
    end
  end
end M
`)
	f := info.FuncOf[info.Objects["M"].Ops[0]]
	if f.NumSlots != 6 {
		t.Fatalf("NumSlots = %d, want 6", f.NumSlots)
	}
	slots := f.Slots()
	wantNames := []string{"a", "b", "r", "x", "y", "z"}
	for i, n := range wantNames {
		if slots[i].Name != n || slots[i].Index != i {
			t.Errorf("slot %d = %s@%d, want %s@%d", i, slots[i].Name, slots[i].Index, n, i)
		}
	}
	if !slots[1].Type.IsPointer() || slots[0].Type.IsPointer() {
		t.Error("pointer-ness wrong for a/b")
	}
	if !slots[2].IsResult {
		t.Error("r should be a result")
	}
}

func TestObjectVarLayout(t *testing.T) {
	info := mustCheck(t, `
object M
  var a: Int
  var b: M
  monitor
    var c: Int
    var cv: Condition
    var dv: Condition
    operation g()
      wait cv
      signal dv
    end
  end
end M
`)
	od := info.Objects["M"]
	vars := info.ObjVars[od]
	if len(vars) != 5 {
		t.Fatalf("vars = %d, want 5", len(vars))
	}
	if !vars[2].Monitored || vars[0].Monitored {
		t.Error("monitored flags wrong")
	}
	if info.NumConds[od] != 2 {
		t.Errorf("NumConds = %d, want 2", info.NumConds[od])
	}
	if vars[3].CondIndex != 0 || vars[4].CondIndex != 1 {
		t.Errorf("cond indices = %d,%d", vars[3].CondIndex, vars[4].CondIndex)
	}
}

func TestFuncInventory(t *testing.T) {
	info := mustCheck(t, `
object A
  operation f()
  end
  process
  end
end A
object B
  operation g()
  end
end B
`)
	names := map[string]bool{}
	for _, f := range info.Funcs {
		names[f.Name] = true
	}
	for _, want := range []string{"A.f", "A.$init", "A.$process", "B.g", "B.$init"} {
		if !names[want] {
			t.Errorf("missing func %s (have %v)", want, names)
		}
	}
	if names["B.$process"] {
		t.Error("B has no process")
	}
}

func TestArithTypes(t *testing.T) {
	info := mustCheck(t, `
object M
  operation f(i: Int, r: Real, s: String) -> (out: Real)
    var a: Int <- i + i
    var b: Real <- i + r
    var c: Real <- r * r
    var d: String <- s + s
    var e: Bool <- i < r
    var g: Bool <- s == s
    out <- b + c
    print(a, d, e, g)
  end
end M
`)
	_ = info
}

func TestAssignabilityErrors(t *testing.T) {
	wantErr(t, `
object M
  operation f() -> (r: Int)
    r <- "no"
  end
end M`, "cannot assign")
	wantErr(t, `
object M
  operation f() -> (r: Int)
    r <- 1.5
  end
end M`, "cannot assign")
	wantErr(t, `
object M
  operation f(b: Bool)
    if b + b then
      return
    end
  end
end M`, "not defined")
}

func TestUndefined(t *testing.T) {
	wantErr(t, `
object M
  operation f()
    x <- 1
  end
end M`, "undefined: x")
	wantErr(t, `
object M
  operation f()
    frob(1)
  end
end M`, "undefined operation or builtin")
	wantErr(t, `
object M
  var v: Nope
end M`, "unknown type")
}

func TestMonitorRules(t *testing.T) {
	wantErr(t, `
object M
  var cv: Condition
end M`, "must be declared in a monitor")
	wantErr(t, `
object M
  monitor
    var c: Int
  end
  operation f() -> (r: Int)
    r <- c
  end
end M`, "outside the monitor")
	wantErr(t, `
object M
  operation f()
    var cv: Condition
  end
end M`, "must be object variables")
	wantErr(t, `
object M
  monitor
    var c: Condition
  end
  operation f()
    wait c
  end
end M`, "outside the monitor")
}

func TestEncapsulation(t *testing.T) {
	wantErr(t, `
object A
  var x: Int
end A
object M
  operation f(a: A) -> (r: Int)
    r <- x
  end
end M`, "undefined: x")
}

func TestFunctionPurity(t *testing.T) {
	wantErr(t, `
object M
  var x: Int
  function f()
    x <- 1
  end
end M`, "may not assign")
}

func TestInvocationChecking(t *testing.T) {
	wantErr(t, `
object A
  operation f(x: Int)
  end
end A
object M
  operation g(a: A)
    a.f("s")
  end
end M`, "cannot use String as Int")
	wantErr(t, `
object A
  operation f(x: Int)
  end
end A
object M
  operation g(a: A)
    a.f(1, 2)
  end
end M`, "takes 1 arguments")
	wantErr(t, `
object A
end A
object M
  operation g(a: A)
    a.nosuch()
  end
end M`, "has no operation")
}

func TestSelfAndBareCalls(t *testing.T) {
	info := mustCheck(t, `
object M
  operation helper(x: Int) -> (r: Int)
    r <- x * 2
  end
  operation f() -> (r: Int)
    r <- helper(21)
    r <- self.helper(r)
  end
end M
`)
	od := info.Objects["M"]
	f := od.Op("f")
	bare := f.Body.Stmts[0].(*ast.AssignStmt).Rhs.(*ast.Invoke)
	tgt := info.Targets[bare]
	if tgt == nil || !tgt.OnSelf || tgt.Op == nil {
		t.Fatalf("bare call target = %+v", tgt)
	}
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `
object M
  process
    var n: Int <- nodes()
    var h: Node <- thisnode()
    var o: Node <- node(n - 1)
    var t: Int <- timems()
    var s: String <- str(t)
    var a: Int <- abs(0 - t)
    yield()
    print(n, h == o, s, a)
  end process
end M
`)
	wantErr(t, `
object M
  process
    var h: Node <- node("x")
  end process
end M`, "cannot use String as Int")
	wantErr(t, `
object M
  process
    var n: Node <- locate(3)
  end process
end M`, "locate requires an object reference")
}

func TestDynamicAny(t *testing.T) {
	info := mustCheck(t, `
object M
  operation f(x: Any) -> (r: Any)
    r <- x
    x.anything(1, 2, 3)
  end
end M
`)
	inv := info.Objects["M"].Ops[0].Body.Stmts[1].(*ast.ExprStmt).X.(*ast.Invoke)
	if !info.Targets[inv].Dynamic {
		t.Error("Any invocation should be dynamic")
	}
}

func TestNewChecks(t *testing.T) {
	mustCheck(t, `
object P
  var x: Int
  var s: String
end P
object M
  process
    var p: P <- new P(1, "a")
    var a: Array[Int] <- new Array[Int](4)
    a[0] <- 1
    print(p, a)
  end process
end M`)
}

func TestNewErrors(t *testing.T) {
	wantErr(t, `
object P
  var x: Int
end P
object M
  process
    var p: P <- new P(1, 2)
  end process
end M`, "2 arguments for 1 object variables")
	wantErr(t, `
object P
  var x: Int
end P
object M
  process
    var p: P <- new P("s")
  end process
end M`, "argument 1 has type String")
	wantErr(t, `
object M
  process
    var a: Array[Int] <- new Array[Int](1, 2)
  end process
end M`, "exactly one length")
}

func TestExitOutsideLoop(t *testing.T) {
	wantErr(t, `
object M
  operation f()
    exit
  end
end M`, "exit outside loop")
}

func TestMoveRequiresRef(t *testing.T) {
	wantErr(t, `
object M
  process
    move 3 to thisnode()
  end process
end M`, "move requires an object reference")
	wantErr(t, `
object M
  process
    var o: M <- new M
    move o to 3
  end process
end M`, "expected Node")
}

func TestNilAssignment(t *testing.T) {
	mustCheck(t, `
object M
  var o: M
  operation f()
    o <- nil
    if o == nil then
      o <- new M
    end
  end
end M
`)
	wantErr(t, `
object M
  operation f() -> (r: Int)
    r <- nil
  end
end M`, "cannot assign")
}

func TestIndexTypes(t *testing.T) {
	mustCheck(t, `
object M
  operation f(a: Array[String], s: String) -> (r: Int)
    r <- s[0] + a.size() + a[1].size()
  end
end M
`)
	wantErr(t, `
object M
  operation f(x: Int) -> (r: Int)
    r <- x[0]
  end
end M`, "cannot index")
}

func TestRedeclarations(t *testing.T) {
	wantErr(t, `
object M
end M
object M
end M`, "redeclared")
	wantErr(t, `
object M
  operation f()
  end
  operation f()
  end
end M`, "operation f redeclared")
	wantErr(t, `
object M
  var x: Int
  var x: Int
end M`, "object variable x redeclared")
	wantErr(t, `
object M
  operation f()
    var x: Int
    var x: Int
  end
end M`, "redeclared in this scope")
}

func TestShadowingInNestedScopesAllowed(t *testing.T) {
	info := mustCheck(t, `
object M
  operation f() -> (r: Int)
    var x: Int <- 1
    if true then
      var x: Int <- 2
      r <- x
    end
    r <- r + x
  end
end M
`)
	f := info.FuncOf[info.Objects["M"].Ops[0]]
	if len(f.Locals) != 2 {
		t.Fatalf("locals = %d, want 2 (both x's get slots)", len(f.Locals))
	}
}
