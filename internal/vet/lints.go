// IR dataflow lints: findings about the program itself rather than its
// compiled metadata. Locals are zeroed at activation creation, so none of
// these are soundness errors — they are reported as warnings.

package vet

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/ir"
)

// lintObject runs the dataflow lints over every function of one object.
func (c *checker) lintObject(oc *codegen.ObjectCode) {
	for _, f := range oc.IR.Funcs {
		fi, err := ir.Analyze(f, oc.IR.VarKinds)
		if err != nil {
			continue // the liveness pass reports unverifiable IR
		}
		c.lintUnreachable(oc, f, fi)
		c.lintAssignment(oc, f, fi)
		c.lintDeadStores(oc, f, fi)
		c.lintReentrancy(oc, f, fi)
	}
}

// succs returns the control-flow successors of instruction pc.
func succs(f *ir.Func, pc int) []int { return ir.Succs(f, pc) }

// lintUnreachable reports instructions control can never reach. The builder
// unconditionally appends a final ret, which is legitimately unreachable
// when the body already returned or loops forever; that one instruction is
// exempt.
func (c *checker) lintUnreachable(oc *codegen.ObjectCode, f *ir.Func, fi *ir.FuncInfo) {
	n := len(f.Code)
	for pc := 0; pc < n; {
		if fi.Reach[pc] || (pc == n-1 && f.Code[pc].Op == ir.Ret) {
			pc++
			continue
		}
		end := pc
		for end < n && !fi.Reach[end] && !(end == n-1 && f.Code[end].Op == ir.Ret) {
			end++
		}
		if end-pc == 1 {
			c.report("unreachable-code", SevWarning, oc.Name, f.Name, "", -1,
				"instruction %d (%s) is unreachable", pc, f.Code[pc])
		} else {
			c.report("unreachable-code", SevWarning, oc.Name, f.Name, "", -1,
				"instructions %d..%d are unreachable", pc, end-1)
		}
		pc = end
	}
}

// lintAssignment reports loads of variables that no path has assigned.
// Frame slots are zeroed at activation creation, so such a read is defined —
// but it can only ever yield zero/nil, which is almost always a bug.
// Parameters are assigned by the caller. Loads that are unassigned on only
// some paths are not reported: assignment under a condition is idiomatic.
func (c *checker) lintAssignment(oc *codegen.ObjectCode, f *ir.Func, fi *ir.FuncInfo) {
	nv := f.NumVars
	if nv == 0 {
		return
	}
	// Per-pc in-state: for each slot, whether some path reaching the pc has
	// assigned it. A load is flagged when NO reaching path has.
	mayAssigned := make([][]bool, len(f.Code))
	entry := make([]bool, nv)
	for v := 0; v < f.NumParams; v++ {
		entry[v] = true
	}
	mayAssigned[0] = entry
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		out := append([]bool(nil), mayAssigned[pc]...)
		if in := f.Code[pc]; in.Op == ir.StoreVar {
			out[in.A] = true
		}
		for _, s := range succs(f, pc) {
			if mayAssigned[s] == nil {
				mayAssigned[s] = append([]bool(nil), out...)
				work = append(work, s)
				continue
			}
			changed := false
			for v := range out {
				if out[v] && !mayAssigned[s][v] {
					mayAssigned[s][v] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	reported := make([]bool, nv)
	for pc, in := range f.Code {
		if in.Op != ir.LoadVar || mayAssigned[pc] == nil {
			continue
		}
		if v := int(in.A); !mayAssigned[pc][v] && !reported[v] {
			reported[v] = true
			c.report("definite-assignment", SevWarning, oc.Name, f.Name, "", -1,
				"variable %s is read at instruction %d but assigned on no path (always zero)",
				f.VarNames[v], pc)
		}
	}
}

// lintDeadStores reports stores whose value no execution can observe: the
// slot is overwritten or the activation returns before any load. Result
// slots are live at every return (the kernel marshals them to the caller).
// The same liveness also feeds the per-stop LiveVars masks codegen embeds,
// but the lint itself only reports; it licenses no transformation.
func (c *checker) lintDeadStores(oc *codegen.ObjectCode, f *ir.Func, fi *ir.FuncInfo) {
	if f.NumVars == 0 {
		return
	}
	li := ir.Liveness(f, fi)
	for pc, in := range f.Code {
		if in.Op != ir.StoreVar || !fi.Reach[pc] {
			continue
		}
		if v := int(in.A); !li.LiveOut[pc][v] {
			c.report("dead-store", SevWarning, oc.Name, f.Name, "", -1,
				"value stored to %s at instruction %d is never read", f.VarNames[v], pc)
		}
	}
}

// lintReentrancy reports monitored operations that may invoke a monitored
// operation on self: monitors are not reentrant (entry while holding blocks
// forever, §3.3's doubly-linked entry queues), so such a call is a
// self-deadlock the moment it executes. Selfness of the receiver is tracked
// as a may-analysis over the evaluation stack.
func (c *checker) lintReentrancy(oc *codegen.ObjectCode, f *ir.Func, fi *ir.FuncInfo) {
	if !f.Monitored {
		return
	}
	// selfAt[pc] marks evaluation-stack slots (bottom first, same depth as
	// fi.StackIn[pc]) that may hold a reference to self.
	selfAt := make([][]bool, len(f.Code))
	selfAt[0] = []bool{}
	work := []int{0}
	reported := map[string]bool{}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		sf := selfAt[pc]
		in := f.Code[pc]
		if in.Op == ir.Call {
			recv := len(sf) - int(in.A) - 1
			if recv >= 0 && sf[recv] {
				callee := f.Strings[in.S]
				if j := oc.IR.FuncIndex(callee); j >= 0 && oc.IR.Funcs[j].Monitored && !reported[callee] {
					reported[callee] = true
					c.report("monitor-reentrancy", SevWarning, oc.Name, f.Name, "", -1,
						"monitored operation invokes monitored operation %s on self at instruction %d: "+
							"monitors are not reentrant, this deadlocks", callee, pc)
				}
			}
		}
		pop, push := ir.StackEffect(in)
		if in.Op == ir.Call {
			push = 1
		}
		out := append([]bool(nil), sf[:len(sf)-pop]...)
		for i := 0; i < push; i++ {
			out = append(out, in.Op == ir.PushSelf)
		}
		for _, s := range succs(f, pc) {
			if selfAt[s] == nil {
				selfAt[s] = append([]bool(nil), out...)
				work = append(work, s)
				continue
			}
			if len(selfAt[s]) != len(out) {
				// Analyze verified depth agreement; disagreement here is a
				// vet bug, not a program bug.
				panic(fmt.Sprintf("vet: %s: stack depth mismatch at join %d", f.Name, s))
			}
			changed := false
			for i := range out {
				if out[i] && !selfAt[s][i] {
					selfAt[s][i] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
}
