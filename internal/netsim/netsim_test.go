package netsim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var log []int
	s.At(30, func() { log = append(log, 3) })
	s.At(10, func() { log = append(log, 1) })
	s.At(20, func() { log = append(log, 2) })
	s.At(10, func() { log = append(log, 11) }) // FIFO among equal times
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("order = %v, want %v", log, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("now = %d", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var at Micros
	s.At(5, func() {
		s.At(7, func() { at = s.Now() })
	})
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if at != 12 {
		t.Errorf("nested event at %d, want 12", at)
	}
}

func TestRunBudget(t *testing.T) {
	s := NewSim()
	var loop func()
	loop = func() { s.At(1, loop) }
	s.At(0, loop)
	if err := s.Run(50); err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

func TestCPUCharge(t *testing.T) {
	c := &CPU{MHz: 10} // 10 cycles per microsecond
	end := c.Charge(0, 100)
	if end != 10 {
		t.Errorf("100 cycles at 10MHz = %d µs, want 10", end)
	}
	// Work arriving while busy queues behind FreeAt.
	end = c.Charge(5, 100)
	if end != 20 {
		t.Errorf("second charge ends at %d, want 20", end)
	}
	// Idle gap: work starts at the request time.
	end = c.Charge(100, 10)
	if end != 101 {
		t.Errorf("third charge ends at %d, want 101", end)
	}
	if c.Cycles != 210 {
		t.Errorf("cycles = %d", c.Cycles)
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	var got []byte
	var from int
	var at Micros
	n.Attach(1, func(src int, p []byte) { got, from, at = p, src, s.Now() })
	payload := make([]byte, 1000)
	payload[0] = 42
	if err := n.Send(0, 1, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if got == nil || got[0] != 42 || from != 0 {
		t.Fatal("payload not delivered")
	}
	// 1046 bytes at 10 Mbit/s = 836.8 µs + 200 µs latency.
	if at < 1000 || at > 1100 {
		t.Errorf("delivered at %d µs", at)
	}
	if n.Frames != 1 || n.PayloadLen != 1000 {
		t.Errorf("counters: frames=%d payload=%d", n.Frames, n.PayloadLen)
	}
}

func TestNetworkSharedMediumSerializes(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	var times []Micros
	n.Attach(1, func(int, []byte) { times = append(times, s.Now()) })
	n.Attach(2, func(int, []byte) { times = append(times, s.Now()) })
	big := make([]byte, 10000) // 8ms transmission each
	if err := n.Send(0, 1, big, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 2, big, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatal("missing deliveries")
	}
	gap := times[1] - times[0]
	if gap < 7000 {
		t.Errorf("medium not serialized: gap %d µs", gap)
	}
}

func TestNetworkMinFrame(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	n.Attach(1, func(int, []byte) {})
	if err := n.Send(0, 1, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if n.Bytes < 64 {
		t.Errorf("min frame not applied: %d bytes", n.Bytes)
	}
	if err := n.Send(0, 9, []byte{1}, 0); err == nil {
		t.Error("send to unattached node must fail")
	}
}

func TestMachineModels(t *testing.T) {
	models := []MachineModel{SPARCstationSLC, Sun3_100, HP9000_433s, HP9000_385, VAXstation2000}
	for _, m := range models {
		if m.MHz <= 0 || m.Name == "" {
			t.Errorf("bad model %+v", m)
		}
	}
	if HP9000_433s.MHz <= HP9000_385.MHz {
		t.Error("433s should be faster than 385")
	}
	if SPARCstationSLC.MHz <= Sun3_100.MHz {
		t.Error("SLC should be faster than Sun-3/100")
	}
}

func TestLinkExtraLatency(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	var plainAt, slowAt Micros
	n.Attach(1, func(int, []byte) { plainAt = s.Now() })
	n.Attach(2, func(int, []byte) { slowAt = s.Now() })
	n.SetLinkExtraLatency(0, 2, 5000)
	if n.LinkExtraLatency(0, 2) != 5000 || n.LinkExtraLatency(2, 0) != 5000 {
		t.Fatalf("extra latency not symmetric")
	}
	if n.LinkExtraLatency(0, 1) != 0 {
		t.Fatalf("unconfigured link has extra latency")
	}
	// Non-positive extras and self-links are ignored.
	n.SetLinkExtraLatency(0, 1, -7)
	n.SetLinkExtraLatency(1, 1, 100)
	if n.LinkExtraLatency(0, 1) != 0 || n.LinkExtraLatency(1, 1) != 0 {
		t.Fatalf("ignored extras stored")
	}
	payload := make([]byte, 100)
	if err := n.Send(0, 1, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 2, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if plainAt == 0 || slowAt == 0 {
		t.Fatal("missing deliveries")
	}
	// The slow link's delivery trails by the extra latency on top of the
	// medium serialization of the two back-to-back frames.
	if d := slowAt - plainAt; d < 5000 {
		t.Errorf("slow link only %d µs behind the plain one", d)
	}
}
