// Package token defines the lexical tokens of the Emerald-subset language
// compiled by this system, together with source positions.
//
// The language is the vehicle for the paper's mobility experiments: it is a
// small object language in the spirit of Emerald [BHJL86], with objects,
// operations, monitors, processes, and explicit mobility statements
// (move/fix/unfix/locate).
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow KeywordBeg/KeywordEnd so the lexer can
// classify identifiers with a single map lookup.
const (
	Illegal Kind = iota
	EOF

	// Literals and identifiers.
	Ident  // counter
	Int    // 123
	Real   // 1.5
	String // "abc"

	// Operators and delimiters.
	Assign   // <-
	Arrow    // ->
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Eq       // ==
	NotEq    // !=
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	And      // &
	Or       // |
	Not      // !
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	Comma    // ,
	Colon    // :
	Dot      // .

	keywordBeg
	KwObject
	KwEnd
	KwVar
	KwConst
	KwOperation
	KwFunction
	KwProcess
	KwMonitor
	KwInitially
	KwImmutable
	KwIf
	KwThen
	KwElseif
	KwElse
	KwLoop
	KwWhile
	KwDo
	KwExit
	KwWhen
	KwReturn
	KwMove
	KwTo
	KwFix
	KwAt
	KwUnfix
	KwRefix
	KwNew
	KwSelf
	KwNil
	KwTrue
	KwFalse
	KwWait
	KwSignal
	keywordEnd
)

var kindNames = map[Kind]string{
	Illegal: "ILLEGAL", EOF: "EOF",
	Ident: "IDENT", Int: "INT", Real: "REAL", String: "STRING",
	Assign: "<-", Arrow: "->", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Eq: "==", NotEq: "!=", Lt: "<", Le: "<=",
	Gt: ">", Ge: ">=", And: "&", Or: "|", Not: "!",
	LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	Comma: ",", Colon: ":", Dot: ".",
	KwObject: "object", KwEnd: "end", KwVar: "var", KwConst: "const",
	KwOperation: "operation", KwFunction: "function", KwProcess: "process",
	KwMonitor: "monitor", KwInitially: "initially", KwImmutable: "immutable",
	KwIf: "if", KwThen: "then", KwElseif: "elseif", KwElse: "else",
	KwLoop: "loop", KwWhile: "while", KwDo: "do", KwExit: "exit",
	KwWhen: "when", KwReturn: "return", KwMove: "move", KwTo: "to",
	KwFix: "fix", KwAt: "at", KwUnfix: "unfix", KwRefix: "refix",
	KwNew: "new", KwSelf: "self", KwNil: "nil",
	KwTrue: "true", KwFalse: "false", KwWait: "wait", KwSignal: "signal",
}

// String returns the canonical spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexeme with its kind and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for Ident/Int/Real/String (decoded)
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, Real:
		return t.Lit
	case String:
		return fmt.Sprintf("%q", t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary operator precedence for the kind, or 0 if the
// kind is not a binary operator. Higher binds tighter.
func (k Kind) Precedence() int {
	switch k {
	case Or:
		return 1
	case And:
		return 2
	case Eq, NotEq, Lt, Le, Gt, Ge:
		return 3
	case Plus, Minus:
		return 4
	case Star, Slash, Percent:
		return 5
	}
	return 0
}
