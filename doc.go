// Package repro is a from-scratch Go reproduction of "Object and Native
// Code Thread Mobility Among Heterogeneous Computers" (Steensgaard & Jul,
// SOSP 1995): the Emerald system extended with heterogeneous native-code
// thread migration via bus stops.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the measured
// reproduction of every table and figure. The benchmark harness in
// bench_test.go regenerates the paper's evaluation; `go run ./cmd/embench`
// prints it.
package repro
