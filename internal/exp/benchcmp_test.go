package exp

import (
	"strings"
	"testing"
)

func TestCompareBenchJSONIdentical(t *testing.T) {
	doc := []byte(`{"benchmark":"t","rows":[{"pair":"a","ms":10.5,"calls":26}]}`)
	if err := CompareBenchJSON(doc, doc, 0.20); err != nil {
		t.Errorf("identical documents flagged: %v", err)
	}
}

func TestCompareBenchJSONWithinTolerance(t *testing.T) {
	base := []byte(`{"ms":100,"n":26}`)
	fresh := []byte(`{"ms":115,"n":26}`)
	if err := CompareBenchJSON(fresh, base, 0.20); err != nil {
		t.Errorf("15%% drift flagged at 20%% tolerance: %v", err)
	}
}

func TestCompareBenchJSONDrift(t *testing.T) {
	base := []byte(`{"rows":[{"pair":"a","ms":100}]}`)
	fresh := []byte(`{"rows":[{"pair":"a","ms":130}]}`)
	err := CompareBenchJSON(fresh, base, 0.20)
	if err == nil {
		t.Fatal("30% drift not flagged at 20% tolerance")
	}
	if !strings.Contains(err.Error(), "$.rows[0].ms") {
		t.Errorf("error does not name the drifted field: %v", err)
	}
}

func TestCompareBenchJSONStructure(t *testing.T) {
	base := []byte(`{"rows":[{"pair":"a","ms":100},{"pair":"b","ms":100}],"unit":"ms"}`)
	for _, tc := range []struct {
		name, fresh, wantIn string
	}{
		{"missing field", `{"rows":[{"pair":"a"},{"pair":"b","ms":100}],"unit":"ms"}`, "missing in fresh"},
		{"extra field", `{"rows":[{"pair":"a","ms":100,"x":1},{"pair":"b","ms":100}],"unit":"ms"}`, "not in baseline"},
		{"row count", `{"rows":[{"pair":"a","ms":100}],"unit":"ms"}`, "entries"},
		{"string change", `{"rows":[{"pair":"Z","ms":100},{"pair":"b","ms":100}],"unit":"ms"}`, "$.rows[0].pair"},
		{"zero baseline", `{"rows":[{"pair":"a","ms":100},{"pair":"b","ms":100}],"unit":"ms","z":1}`, "not in baseline"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := CompareBenchJSON([]byte(tc.fresh), base, 0.20)
			if err == nil {
				t.Fatal("structural difference not flagged")
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Errorf("error %q does not mention %q", err, tc.wantIn)
			}
		})
	}
}

// "host*" fields carry host-dependent measurements (wall-clock MIPS,
// CPU counts): any amount of drift, absence, or novelty is fine, while
// the deterministic fields beside them stay gated.
func TestCompareBenchJSONSkipsHostFields(t *testing.T) {
	base := []byte(`{"instrs":1000,"host_mips_fused":12.5}`)
	for _, fresh := range []string{
		`{"instrs":1000,"host_mips_fused":99.9}`, // wild drift
		`{"instrs":1000}`,                        // absent in fresh
		`{"instrs":1000,"host_mips_fused":12.5,"host_cpus":64}`, // novel host field
	} {
		if err := CompareBenchJSON([]byte(fresh), base, 0.20); err != nil {
			t.Errorf("host-prefixed field flagged: %v (fresh %s)", err, fresh)
		}
	}
	// The gate still bites on the simulated field next door.
	if err := CompareBenchJSON([]byte(`{"instrs":2000,"host_mips_fused":12.5}`), base, 0.20); err == nil {
		t.Error("instrs drift not flagged despite host-field skip")
	}
}

func TestCompareBenchJSONZeroBaseline(t *testing.T) {
	base := []byte(`{"ms":0}`)
	if err := CompareBenchJSON([]byte(`{"ms":0}`), base, 0.20); err != nil {
		t.Errorf("0 vs 0 flagged: %v", err)
	}
	if err := CompareBenchJSON([]byte(`{"ms":0.1}`), base, 0.20); err == nil {
		t.Error("nonzero against zero baseline not flagged")
	}
}

func TestNumericDrift(t *testing.T) {
	for _, tc := range []struct {
		name        string
		fresh, base float64
		tol         float64
		drift       bool
	}{
		{"zero/zero", 0, 0, 0.20, false},
		{"nonzero/zero", 0.1, 0, 0.20, true},
		{"negative nonzero/zero", -0.1, 0, 0.20, true},
		{"zero/nonzero beyond tol", 0, 100, 0.20, true},
		{"equal", 42, 42, 0.20, false},
		{"within tolerance", 115, 100, 0.20, false},
		{"at boundary", 120, 100, 0.20, false},
		{"beyond tolerance", 130, 100, 0.20, true},
		{"negative baseline within", -110, -100, 0.20, false},
		{"negative baseline beyond", -130, -100, 0.20, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			msg := numericDrift(tc.fresh, tc.base, tc.tol)
			if got := msg != ""; got != tc.drift {
				t.Errorf("numericDrift(%v, %v, %v) = %q, want drift=%v",
					tc.fresh, tc.base, tc.tol, msg, tc.drift)
			}
			// The rendered message must never leak the raw Inf/NaN ratio a
			// naive zero-baseline division would produce.
			for _, bad := range []string{"Inf", "NaN"} {
				if strings.Contains(msg, bad) {
					t.Errorf("drift message contains %s: %q", bad, msg)
				}
			}
		})
	}
}

func TestCompareBenchJSONZeroBaselineMessage(t *testing.T) {
	err := CompareBenchJSON([]byte(`{"ms":5}`), []byte(`{"ms":0}`), 0.20)
	if err == nil {
		t.Fatal("nonzero against zero baseline not flagged")
	}
	if !strings.Contains(err.Error(), "zero baseline") {
		t.Errorf("error does not explain the zero-baseline rule: %v", err)
	}
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(err.Error(), bad) {
			t.Errorf("error leaks %s: %v", bad, err)
		}
	}
}
