// Negative fixture: the print after the unconditional exit can never run.
object Main
  process
    loop
      exit
      print("never")
    end
    print("done")
  end process
end Main
