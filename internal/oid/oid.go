// Package oid defines network-wide unique object identifiers.
//
// As in Emerald, every object — including code objects — is named by an OID
// that is location independent. Code objects compiled for different
// architectures from the same source share one OID (the OID names the
// semantic content); the architecture is carried alongside when fetching
// the machine-specific binary (§3.4). The prototype in the paper required
// manual OID-counter synchronization; we implement the paper's proposed
// fix, a program database: the compiler assigns code OIDs deterministically
// from program structure, so every architecture's compilation agrees.
package oid

import "fmt"

// OID is a network-unique object identifier. 0 is the nil OID.
type OID uint32

// Nil is the OID of the nil reference.
const Nil OID = 0

// String renders the OID.
func (o OID) String() string {
	if o == Nil {
		return "oid(nil)"
	}
	return fmt.Sprintf("oid(%d:%d)", uint32(o)>>24, uint32(o)&0xffffff)
}

// ForCode returns the OID of the code object with the given program index.
// Code OIDs live in the node-0 space below the runtime allocation floor.
func ForCode(programIndex int) OID { return OID(programIndex + 1) }

// First runtime OID counter value per node; node n allocates n<<24 | k for
// k >= RuntimeFloor, so nodes never collide and code OIDs stay distinct.
const RuntimeFloor = 0x10000

// ForRuntime returns the k'th runtime OID allocated by node n.
func ForRuntime(node int, k uint32) OID {
	return OID(uint32(node)<<24 | (RuntimeFloor + k))
}
