package bridge

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFigure3Shapes(t *testing.T) {
	abstract, code1, code2, _, _ := Figure3()
	if got := code1.String(); got != "code1: o1; switch(); o2; o3; o4; o5; o6" {
		t.Errorf("code1 = %s", got)
	}
	if got := code2.String(); got != "code2: o2; o5; switch(); o4; o1; o3; o6" {
		t.Errorf("code2 = %s", got)
	}
	if got := abstract.String(); got != "abstract: o1; o2; o3; switch(); o4; o5; o6" {
		t.Errorf("abstract = %s", got)
	}
}

func TestFigure4Bridge(t *testing.T) {
	// The paper's Example 2: a thread stopped at the visible point after
	// switch() in code1 moves to a processor running code2. The bridge must
	// execute o2, o4, o5 and join code2 at o3 (Figure 4).
	abstract, code1, code2, _, _ := Figure3()
	stop := code1.IndexOf("switch()") + 1 // o1 and switch() executed
	plan, err := Build(abstract, code1, stop, code2)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != "bridge: o2; o4; o5; -> code2@o3" {
		t.Errorf("plan = %s", got)
	}
	tr := RunWithMigration(code1, stop, plan)
	if err := tr.ExactlyOnce(abstract); err != nil {
		t.Errorf("exactly-once violated: %v", err)
	}
}

func TestExample3Composition(t *testing.T) {
	// Example 3: the bridge can equivalently be built via the abstract
	// code — bridge(code1 -> abstract) composed with bridge(abstract ->
	// code2) yields the same executed-exactly-once behaviour.
	abstract, code1, code2, _, _ := Figure3()
	stop := code1.IndexOf("switch()") + 1
	toAbstract, err := Build(abstract, code1, stop, abstract)
	if err != nil {
		t.Fatal(err)
	}
	// "The bridging code from code1 to abstract consists of operations o2
	// and o3."
	if got := opsString(toAbstract.Bridge); got != "o2 o3" {
		t.Errorf("code1->abstract bridge = %q, want \"o2 o3\"", got)
	}
	// Continue: executed = prefix of code1 + bridge ops; then to code2.
	executed := map[AbsOp]bool{}
	for _, o := range code1.Ops[:stop] {
		executed[o] = true
	}
	for _, o := range toAbstract.Bridge {
		executed[o] = true
	}
	toCode2, err := BuildFromSet(abstract, executed, code2)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	tr.Exec(code1.Ops[:stop])
	tr.Exec(toAbstract.Bridge)
	tr.Exec(toCode2.Bridge)
	tr.Exec(code2.Ops[toCode2.JoinIdx:])
	if err := tr.ExactlyOnce(abstract); err != nil {
		t.Errorf("composed bridge violates exactly-once: %v", err)
	}
}

func opsString(ops []AbsOp) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = string(o)
	}
	return strings.Join(parts, " ")
}

func TestMoveReversibility(t *testing.T) {
	abstract, _, code2, _, edits2 := Figure3()
	back, err := Unoptimize(code2, "recovered", edits2)
	if err != nil {
		t.Fatal(err)
	}
	if opsString(back.Ops) != opsString(abstract.Ops) {
		t.Errorf("reverse edits: got %v, want %v", back.Ops, abstract.Ops)
	}
}

func TestBridgeAtEveryStop(t *testing.T) {
	// Every visible point of code1 and code2 must bridge to the other with
	// the exactly-once property.
	abstract, code1, code2, _, _ := Figure3()
	for _, pair := range [][2]*Code{{code1, code2}, {code2, code1}, {code1, abstract}, {abstract, code2}} {
		from, to := pair[0], pair[1]
		for stop := 0; stop <= len(from.Ops); stop++ {
			plan, err := Build(abstract, from, stop, to)
			if err != nil {
				t.Fatalf("%s@%d -> %s: %v", from.Name, stop, to.Name, err)
			}
			tr := RunWithMigration(from, stop, plan)
			if err := tr.ExactlyOnce(abstract); err != nil {
				t.Errorf("%s@%d -> %s: %v", from.Name, stop, to.Name, err)
			}
		}
	}
}

func TestBridgeIdentityWhenCodesMatch(t *testing.T) {
	abstract, code1, _, _, _ := Figure3()
	for stop := 0; stop <= len(code1.Ops); stop++ {
		plan, err := Build(abstract, code1, stop, code1)
		if err != nil {
			t.Fatal(err)
		}
		// Same code: no bridge ops needed, join where we stopped.
		if len(plan.Bridge) != 0 || plan.JoinIdx != stop {
			t.Errorf("stop %d: bridge=%v join=%d", stop, plan.Bridge, plan.JoinIdx)
		}
	}
}

// randomCode builds a random optimized instance, returning it with its
// edits.
func randomCode(rng *rand.Rand, original *Code, name string) *Code {
	n := len(original.Ops)
	var edits []Move
	for i := 0; i < rng.Intn(8); i++ {
		edits = append(edits, Move{From: rng.Intn(n), To: rng.Intn(n)})
	}
	c, err := Optimize(original, name, edits)
	if err != nil {
		panic(err)
	}
	return c
}

func TestPropertyExactlyOnceUnderRandomMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	original := &Code{Name: "orig", Ops: []AbsOp{
		"a", "b", "c", "d", "e", "f", "g", "h",
	}}
	for trial := 0; trial < 500; trial++ {
		from := randomCode(rng, original, "from")
		to := randomCode(rng, original, "to")
		stop := rng.Intn(len(from.Ops) + 1)
		plan, err := Build(original, from, stop, to)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := RunWithMigration(from, stop, plan)
		if err := tr.ExactlyOnce(original); err != nil {
			t.Fatalf("trial %d (%s@%d -> %s): %v\nbridge: %v",
				trial, from, stop, to, err, plan.Bridge)
		}
	}
}

func TestPropertyDoubleMigrationMidBridge(t *testing.T) {
	// A thread migrated again while still executing bridging code (§2.4:
	// "The thread state may, of course, be moved once more before it has
	// finished executing the bridging code").
	rng := rand.New(rand.NewSource(7))
	original := &Code{Name: "orig", Ops: []AbsOp{"a", "b", "c", "d", "e", "f"}}
	for trial := 0; trial < 300; trial++ {
		c1 := randomCode(rng, original, "c1")
		c2 := randomCode(rng, original, "c2")
		c3 := randomCode(rng, original, "c3")
		stop1 := rng.Intn(len(c1.Ops) + 1)
		plan12, err := Build(original, c1, stop1, c2)
		if err != nil {
			t.Fatal(err)
		}
		// Interrupt the first bridge partway.
		cut := rng.Intn(len(plan12.Bridge) + 1)
		executed := map[AbsOp]bool{}
		tr := &Trace{}
		tr.Exec(c1.Ops[:stop1])
		tr.Exec(plan12.Bridge[:cut])
		for _, o := range tr.Log {
			executed[o] = true
		}
		plan13, err := BuildFromSet(original, executed, c3)
		if err != nil {
			t.Fatal(err)
		}
		tr.Exec(plan13.Bridge)
		tr.Exec(c3.Ops[plan13.JoinIdx:])
		if err := tr.ExactlyOnce(original); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestOptimizeRejectsBadEdits(t *testing.T) {
	original := &Code{Name: "o", Ops: []AbsOp{"a", "b"}}
	if _, err := Optimize(original, "x", []Move{{From: 5, To: 0}}); err == nil {
		t.Error("out-of-range edit accepted")
	}
	dup := &Code{Name: "dup", Ops: []AbsOp{"a", "a"}}
	if err := sameOps(dup, dup); err == nil {
		t.Error("duplicate ops accepted")
	}
}

func TestBuildRejectsForeignExecutedSet(t *testing.T) {
	original := &Code{Name: "o", Ops: []AbsOp{"a", "b"}}
	if _, err := BuildFromSet(original, map[AbsOp]bool{"zz": true}, original); err == nil {
		t.Error("foreign executed op accepted")
	}
}
