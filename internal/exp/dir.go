// The directory overhead study (embench dir): one fixed migration-heavy
// tour run under directory off/on (3 replicas), clean and under a seeded
// fault plan that crashes and restarts a pure replica host mid-run (a
// minority of every shard's replica set, so decrees keep completing), plus
// a lease arm (read-cached lookups on the same tour) and a batched
// group-decree pair on the zipf workgen workload (grouped vs one decree
// per cohort member). The table backs the claims DESIGN.md §15 makes: the
// replicated directory's decree traffic is a modest constant overhead per
// move, under the crash plan it keeps objects locatable in one shard
// query, leases collapse repeat lookups of stable objects, and batching a
// cohort's decrees cuts the decree wire bytes per migrated object.

package exp

import (
	"fmt"
	"strings"

	"repro/internal/auto/workgen"
	"repro/internal/chaos"
	"repro/internal/core"
)

// DirResult is one configuration's measurement.
type DirResult struct {
	Config        string  // directory / fault-plan arm
	SimMS         float64 // simulated completion time
	Frames        uint64  // total link frames on the wire
	WireBytes     uint64  // total bytes on the wire (payload + framing)
	RemoteInvokes uint64  // cross-node invocations
	ProxyForwards uint64  // messages forwarded along a proxy chain
	ChaseHops     uint64  // locate chase hops walked (satellite TTL metric)
	Decrees       uint64  // directory decrees chosen (slots, incl. group members)
	Lookups       uint64  // directory shard queries issued
	Degraded      uint64  // decrees/lookups that fell back to the chase
	Compactions   uint64  // proxies rewritten by the background compactor
	LeaseHits     uint64  // lookups served from a cached read lease
	LeaseExpired  uint64  // leases discarded at use time past their deadline
	GroupDecrees  uint64  // batched group rounds run
	GroupSlots    uint64  // member slots committed by those rounds
	DecreeBytes   uint64  // wire bytes of all decree protocol messages
}

// dirDecreeKinds are the wire kinds whose msg_bytes add up to DecreeBytes —
// the single-slot round plus the batched group round.
var dirDecreeKinds = []string{
	"dirprepare", "dirpromise", "diraccept", "diraccepted", "dirlearn",
	"dirgprepare", "dirgpromise", "dirgaccept", "dirgaccepted", "dirglearn",
}

// dirWorkload is the study's fixed tour: three couriers bouncing between
// nodes 0-2 with an invocation after every move, then fifteen repeat
// locates of the couriers parked on remote nodes — the stable-object tail
// the lease arm collapses. Node 3 hosts no objects or threads — it exists
// purely as a shard replica, so crashing it stresses the directory's
// availability without perturbing the program.
const dirWorkload = `
object Courier
  var hops: Int <- 0
  operation bump() -> (r: Int)
    hops <- hops + 1
    r <- hops
  end
end Courier

object Main
  process
    var a: Courier <- new Courier
    var b: Courier <- new Courier
    var c: Courier <- new Courier
    var lap: Int <- 0
    while lap < 3 do
      move a to node(1)
      print(a.bump())
      move b to node(2)
      print(b.bump())
      move c to node(1)
      print(c.bump())
      move a to node(2)
      print(a.bump())
      move b to node(1)
      print(b.bump())
      move a to node(0)
      move b to node(0)
      move c to node(0)
      print(c.bump())
      lap <- lap + 1
    end
    move a to node(1)
    move b to node(2)
    move c to node(1)
    var rep: Int <- 0
    while rep < 5 do
      print(locate(a))
      print(locate(b))
      print(locate(c))
      rep <- rep + 1
    end
  end process
end Main
`

// dirPlan is the fault arm: light frame noise plus a crash/restart of node
// 3 — the pure replica host — in the middle of the tour.
func dirPlan() *chaos.Plan {
	return &chaos.Plan{
		Seed: 7, Drop: 0.02, Dup: 0.01,
		Crashes: []chaos.Crash{{Node: 3, At: 400_000, RestartAt: 520_000}},
	}
}

// dirArm runs one configuration of the study.
func dirArm(label, src string, opts core.Options) (DirResult, error) {
	sys, err := core.RunSource(src, core.Figure1Network(), opts)
	if err != nil {
		return DirResult{}, fmt.Errorf("%s: %w", label, err)
	}
	r := DirResult{Config: label, SimMS: sys.ElapsedMS()}
	decreeKind := map[string]bool{}
	for _, k := range dirDecreeKinds {
		decreeKind["msg="+k] = true
	}
	for _, c := range sys.MetricsSnapshot().Counters {
		switch c.Name {
		case "remote_invokes":
			r.RemoteInvokes += c.Value
		case "proxy_forwards":
			r.ProxyForwards += c.Value
		case "locate_chase_hops":
			r.ChaseHops += c.Value
		case "dir_decrees":
			r.Decrees += c.Value
		case "dir_lookups":
			r.Lookups += c.Value
		case "dir_degraded":
			r.Degraded += c.Value
		case "dir_compactions":
			r.Compactions += c.Value
		case "dir_lease_hits":
			r.LeaseHits += c.Value
		case "dir_lease_expired":
			r.LeaseExpired += c.Value
		case "dir_group_decrees":
			r.GroupDecrees += c.Value
		case "dir_group_slots":
			r.GroupSlots += c.Value
		case "msg_bytes":
			if decreeKind[c.Labels] {
				r.DecreeBytes += c.Value
			}
		}
	}
	net := sys.Cluster.Net
	r.Frames = uint64(net.Frames)
	r.WireBytes = uint64(net.Bytes)
	return r, nil
}

// DirStudy runs every arm and returns the rows plus the workload
// description line. The first five arms share the fixed courier tour; the
// last two run the zipf workgen workload under greedy-colocate, where
// cohort moves give the batched group decree something to batch.
func DirStudy() ([]DirResult, string, error) {
	desc := "3 couriers x 3 laps over nodes 0-2, bump after every move, then 15 repeat locates; node 3 is a pure shard replica (crashed 400-520ms in the fault arms); group arms run the auto study's workgen workload under greedy-colocate"
	groupSrc := workgen.Generate(autoWorkload)
	arms := []struct {
		label string
		src   string
		opts  core.Options
	}{
		{"off/clean", dirWorkload, core.Options{}},
		{"dir3/clean", dirWorkload, core.Options{DirReplicas: 3}},
		{"dir3/lease", dirWorkload, core.Options{DirReplicas: 3, DirLeaseMicros: 2_000_000}},
		{"off/crash", dirWorkload, core.Options{Chaos: dirPlan()}},
		{"dir3/crash", dirWorkload, core.Options{DirReplicas: 3, Chaos: dirPlan()}},
		// Full replication: every shard shares one replica set, so every
		// cohort is eligible to batch (with r < n, cohort members whose
		// shards replicate on different node sets must decree alone).
		{"dir4/group", groupSrc, core.Options{DirReplicas: 4, AutoPolicy: "greedy-colocate"}},
		{"dir4/nogroup", groupSrc, core.Options{DirReplicas: 4, AutoPolicy: "greedy-colocate", DirNoGroupDecrees: true}},
	}
	var out []DirResult
	for _, a := range arms {
		r, err := dirArm(a.label, a.src, a.opts)
		if err != nil {
			return nil, "", err
		}
		out = append(out, r)
	}
	return out, desc, nil
}

// FormatDir renders the study as the human-readable overhead table.
func FormatDir(rows []DirResult, desc string) string {
	var b strings.Builder
	b.WriteString("Replicated directory overhead on a migration-heavy tour\n")
	b.WriteString(desc + "\n")
	fmt.Fprintf(&b, "%-12s %9s %7s %9s %7s %6s %6s %8s %7s %5s %5s %5s %7s\n",
		"config", "sim time", "frames", "bytes", "remote", "fwd", "chase", "decrees", "lookups", "degr", "lease", "gdecr", "decrB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7.1fms %7d %9d %7d %6d %6d %8d %7d %5d %5d %5d %7d\n",
			r.Config, r.SimMS, r.Frames, r.WireBytes, r.RemoteInvokes,
			r.ProxyForwards, r.ChaseHops, r.Decrees, r.Lookups, r.Degraded,
			r.LeaseHits, r.GroupDecrees, r.DecreeBytes)
	}
	b.WriteString("fwd = proxy-chain forwards; chase = locate hops walked;\n")
	b.WriteString("decrees/lookups/degr = directory consensus, shard queries, fallbacks;\n")
	b.WriteString("lease = lookups served from a cached read lease; gdecr = batched\n")
	b.WriteString("group rounds; decrB = wire bytes of all decree protocol messages.\n")
	return b.String()
}

// BenchDirRow is one arm in BENCH_dir.json.
type BenchDirRow struct {
	Config        string  `json:"config"`
	SimMS         float64 `json:"sim_ms"`
	Frames        uint64  `json:"frames"`
	WireBytes     uint64  `json:"wire_bytes"`
	RemoteInvokes uint64  `json:"remote_invokes"`
	ProxyForwards uint64  `json:"proxy_forwards"`
	ChaseHops     uint64  `json:"chase_hops"`
	Decrees       uint64  `json:"decrees"`
	Lookups       uint64  `json:"lookups"`
	Degraded      uint64  `json:"degraded"`
	Compactions   uint64  `json:"compactions"`
	LeaseHits     uint64  `json:"lease_hits"`
	LeaseExpired  uint64  `json:"lease_expired"`
	GroupDecrees  uint64  `json:"group_decrees"`
	GroupSlots    uint64  `json:"group_slots"`
	DecreeBytes   uint64  `json:"decree_bytes"`
}

// BenchDir is the BENCH_dir.json document.
type BenchDir struct {
	Benchmark string        `json:"benchmark"`
	Unit      string        `json:"unit"`
	Workload  string        `json:"workload"`
	Rows      []BenchDirRow `json:"rows"`
}

// BenchDirDoc converts the study rows to the JSON document.
func BenchDirDoc(rows []DirResult, desc string) BenchDir {
	doc := BenchDir{
		Benchmark: "dir",
		Unit:      "mixed (ms, counts, bytes)",
		Workload:  desc,
	}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, BenchDirRow{
			Config: r.Config, SimMS: r.SimMS, Frames: r.Frames,
			WireBytes: r.WireBytes, RemoteInvokes: r.RemoteInvokes,
			ProxyForwards: r.ProxyForwards, ChaseHops: r.ChaseHops,
			Decrees: r.Decrees, Lookups: r.Lookups, Degraded: r.Degraded,
			Compactions: r.Compactions, LeaseHits: r.LeaseHits,
			LeaseExpired: r.LeaseExpired, GroupDecrees: r.GroupDecrees,
			GroupSlots: r.GroupSlots, DecreeBytes: r.DecreeBytes,
		})
	}
	return doc
}
