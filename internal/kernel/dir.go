// Replicated object directory (emdir), active only when Config.DirReplicas
// > 0. Every committed move drives one single-decree Paxos round (see
// internal/dir) recording the object's new home across the replicas of its
// shard; locates and stale-proxy re-resolution consult the directory first,
// and a per-node background compactor rewrites chained proxies so
// forwarding chains shrink to ≤1 hop. All directory traffic travels as
// ordinary protocol messages through sendMsg — charged, observed and
// fault-injected like any other kernel traffic — except that a node acting
// as a replica of its own query answers locally for just the syscall
// charge. Directory-off runs take none of these code paths: no messages,
// metrics, events or timers.
//
// Ordering with the two-phase move commit (twophase.go): under chaos the
// source proposes the decree only after the destination's positive MoveAck,
// and releases the object (commitMove) only once the decree resolves — so a
// chosen record never names a home that refused the install, and after a
// crash/restart a locate is one shard query. If the decree cannot complete
// (replica majority down), the round degrades after bounded attempts and
// the move commits anyway: availability of the move protocol is preserved
// and the forwarding-address chase covers the stale record. Chaos-off,
// delivery is certain and there are no competing proposers, so the decree
// is fire-and-forget at dispatch time.

package kernel

import (
	"fmt"
	"sort"

	"repro/internal/dir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// DefaultDirCompactMicros is the default compactor tick period.
const DefaultDirCompactMicros = 200000 // 200 simulated ms

// dirMaxAttempts bounds decree prepare rounds before degrading.
const dirMaxAttempts = 3

// dirCompactBatch bounds proxies refreshed per compactor tick.
const dirCompactBatch = 4

// armDir enables the directory: sizes the shard/replica layout and arms the
// per-node compactors. Compactor ticks are weak events (they never keep a
// finished simulation alive), mirroring heartbeats.
func (c *Cluster) armDir() {
	c.dirOn = true
	c.dirCfg = dir.Config{Replicas: c.Config.DirReplicas}.Normalize(len(c.Nodes))
	for _, n := range c.Nodes {
		n := n
		c.Sim.AtNodeWeak(n.ID, c.dirCompactPeriod(), n.dirCompactTick)
	}
}

func (c *Cluster) dirCompactPeriod() netsim.Micros {
	if c.Config.DirCompactPeriodMicros > 0 {
		return netsim.Micros(c.Config.DirCompactPeriodMicros)
	}
	return DefaultDirCompactMicros
}

// dirReplicasOf returns the replica set of o's shard.
func (n *Node) dirReplicasOf(o oid.OID) []int {
	cfg := n.cluster.dirCfg
	return dir.ReplicaSet(dir.ShardOf(o, cfg.Shards), cfg.Replicas, len(n.cluster.Nodes))
}

// dirSend routes a directory message: remote replicas through the normal
// (charged, reliable-under-chaos) send path, this node's own replica role
// synchronously for the syscall charge alone — the kernel never puts a
// frame on the medium addressed to itself.
func (n *Node) dirSend(dst int, p wire.Payload) {
	if dst == n.ID {
		n.charge(uint64(n.cluster.Costs.SyscallCycles))
		n.handleMsg(n.ID, p)
		return
	}
	n.sendMsg(dst, p)
}

// ------------------------------------------------------------- proposer

// dirProposal is the kernel side of one decree the local node is driving:
// the pure synod state plus replica fan-out and completion callbacks.
type dirProposal struct {
	p        *dir.Proposal
	replicas []int
	// done callbacks fire once, when the decree resolves (chosen or
	// degraded); the move commit gates on them under chaos.
	done []func(chosen bool)
	// stalledTimer: the round timer fired while this node was down;
	// restart re-arms it.
	stalledTimer bool
}

// dirPropose starts (or joins) the decree recording object o at home as of
// epoch. done, if non-nil, fires when the decree resolves.
func (n *Node) dirPropose(o oid.OID, epoch uint32, home int32, done func(chosen bool)) {
	slot := dir.Slot{OID: o, Epoch: epoch}
	if dp, ok := n.dirProps[slot]; ok {
		if done != nil {
			dp.done = append(dp.done, done)
		}
		return
	}
	dp := &dirProposal{
		p:        dir.NewProposal(slot, home, int32(n.ID), n.cluster.dirCfg.Quorum()),
		replicas: n.dirReplicasOf(o),
	}
	if done != nil {
		dp.done = append(dp.done, done)
	}
	n.dirProps[slot] = dp
	n.dirPrepareRound(dp)
}

// dirPrepareRound starts the next prepare round: a fresh ballot to every
// replica of the slot's shard. With a single-replica set containing this
// node the whole decree resolves synchronously inside the first dirSend, so
// the fan-out re-checks that the proposal is still the live one.
func (n *Node) dirPrepareRound(dp *dirProposal) {
	slot := dp.p.Slot
	ballot := dp.p.Start()
	for _, r := range dp.replicas {
		if n.dirProps[slot] != dp {
			return
		}
		n.dirSend(r, &wire.DirPrepare{Target: slot.OID, Epoch: slot.Epoch, Ballot: ballot})
	}
	n.armDirTimer(dp)
}

// armDirTimer watches one decree round (chaos only — without faults every
// round completes). A window that saw replies arrive means the round is
// merely slower than the window — keep the ballot and wait another window;
// a silent window means the round is stuck, so the proposer retries with a
// higher ballot, up to dirMaxAttempts silent windows, then degrades: the
// decree is abandoned, callers fall back to forwarding addresses, and the
// record heals on the object's next move.
func (n *Node) armDirTimer(dp *dirProposal) {
	if !n.chaosOn() {
		return
	}
	attempt := dp.p.Attempt()
	progress := dp.p.Progress()
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if n.dirProps[dp.p.Slot] != dp || dp.p.Done() {
			return
		}
		if !n.Up {
			dp.stalledTimer = true
			return
		}
		if dp.p.Attempt() != attempt {
			return // a newer round owns the live timer
		}
		if dp.p.Progress() != progress {
			n.armDirTimer(dp)
			return
		}
		if attempt >= dirMaxAttempts {
			n.dirResolve(dp, false, "decree attempts exhausted")
			return
		}
		n.dirPrepareRound(dp)
	})
}

// dirResolve finishes a decree (chosen or degraded) and fires the waiters.
func (n *Node) dirResolve(dp *dirProposal, chosen bool, reason string) {
	delete(n.dirProps, dp.p.Slot)
	if !chosen {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(dp.p.Slot.OID), Str: reason})
		n.cluster.Rec.Metrics().Add("dir_degraded", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	}
	done := dp.done
	dp.done = nil
	for _, f := range done {
		f(chosen)
	}
}

// recvDirPromise counts one promise; on quorum it broadcasts the accept.
func (n *Node) recvDirPromise(src int, p *wire.DirPromise) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	dp := n.dirProps[slot]
	if dp == nil || dp.p.Done() {
		return
	}
	if !dp.p.OnPromise(p.Ballot, p.Ok, p.AccBallot, p.AccNode, p.Promised) {
		return
	}
	v := dp.p.ChosenValue()
	for _, r := range dp.replicas {
		if n.dirProps[slot] != dp {
			return
		}
		n.dirSend(r, &wire.DirAccept{Target: slot.OID, Epoch: slot.Epoch,
			Ballot: dp.p.Ballot, Node: v})
	}
}

// recvDirAccepted counts one accept; on quorum the decree is chosen: the
// proposer announces it to every replica and releases the waiters.
func (n *Node) recvDirAccepted(src int, p *wire.DirAccepted) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	dp := n.dirProps[slot]
	if dp == nil {
		return
	}
	if !dp.p.OnAccepted(p.Ballot, p.Ok, p.Promised) {
		return
	}
	v := dp.p.ChosenValue()
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvDirDecree, Obj: uint32(slot.OID), A: uint64(slot.Epoch), B: uint64(v)})
	n.cluster.Rec.Metrics().Add("dir_decrees", lbl, 1)
	n.cluster.Rec.Metrics().Add("dir_decree_rounds", lbl, uint64(dp.p.Attempt()))
	for _, r := range dp.replicas {
		n.dirSend(r, &wire.DirLearn{Target: slot.OID, Epoch: slot.Epoch, Node: v})
	}
	n.dirResolve(dp, true, "")
}

// ------------------------------------------------------------- replica

// recvDirPrepare answers a prepare from this node's acceptor state.
func (n *Node) recvDirPrepare(src int, p *wire.DirPrepare) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	a := n.dirAcc[slot]
	if a == nil {
		a = &dir.Acceptor{AccNode: -1}
		n.dirAcc[slot] = a
	}
	ok, promised, accBal, accNode := a.Prepare(p.Ballot)
	n.dirSend(src, &wire.DirPromise{Target: p.Target, Epoch: p.Epoch, Ballot: p.Ballot,
		Ok: ok, Promised: promised, AccBallot: accBal, AccNode: accNode})
}

// recvDirAccept answers an accept from this node's acceptor state.
func (n *Node) recvDirAccept(src int, p *wire.DirAccept) {
	slot := dir.Slot{OID: p.Target, Epoch: p.Epoch}
	a := n.dirAcc[slot]
	if a == nil {
		a = &dir.Acceptor{AccNode: -1}
		n.dirAcc[slot] = a
	}
	ok, promised := a.Accept(p.Ballot, p.Node)
	n.dirSend(src, &wire.DirAccepted{Target: p.Target, Epoch: p.Epoch, Ballot: p.Ballot,
		Ok: ok, Promised: promised})
}

// recvDirLearn applies a chosen decree to this replica's record store. The
// slot is decided, so its acceptor scratch state retires; each move of one
// object uses a fresh slot, and only the move's source proposes for it, so
// the slot can never be reopened.
func (n *Node) recvDirLearn(src int, p *wire.DirLearn) {
	n.dirStore.Learn(p.Target, p.Node, p.Epoch)
	delete(n.dirAcc, dir.Slot{OID: p.Target, Epoch: p.Epoch})
}

// recvDirLookup answers a location query from this replica's record store.
func (n *Node) recvDirLookup(src int, p *wire.DirLookup) {
	r, ok := n.dirStore.Lookup(p.Target)
	reply := &wire.DirLookupReply{Target: p.Target, Token: p.Token, Ok: ok,
		Node: r.Node, Epoch: r.Epoch}
	if !ok {
		reply.Node = -1
	}
	n.dirSend(src, reply)
}

// ------------------------------------------------------------- lookups

// dirLookup is one outstanding location query.
type dirLookup struct {
	oid  oid.OID
	done func(ok bool, node int32, epoch uint32)
	// stalledTimer: the query timeout fired while this node was down;
	// restart re-arms it.
	stalledTimer bool
	token        uint32
}

// dirLookupQuery asks one replica of o's shard for its ownership record —
// the O(1) locate. It prefers this node's own replica role (free and
// synchronous), else the first unsuspected replica. timed arms a degrade
// timeout under chaos; callers with a blocked fragment on the line want it,
// the compactor does not (its queries carry no strong timers, so an idle
// simulation can finish). done always fires exactly once; ok=false means
// degraded or miss and the caller falls back to the forwarding chase.
func (n *Node) dirLookupQuery(o oid.OID, timed bool, done func(ok bool, node int32, epoch uint32)) {
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	n.cluster.Rec.Metrics().Add("dir_lookups", lbl, 1)
	target := -1
	for _, r := range n.dirReplicasOf(o) {
		if r == n.ID {
			target = r
			break
		}
		if target < 0 && !n.suspects[r] {
			target = r
		}
	}
	if target < 0 {
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(o), Str: "all replicas suspected"})
		n.cluster.Rec.Metrics().Add("dir_degraded", lbl, 1)
		done(false, -1, 0)
		return
	}
	n.dirTok++
	lk := &dirLookup{oid: o, done: done, token: n.dirTok}
	n.dirLooks[lk.token] = lk
	if timed && n.chaosOn() && target != n.ID {
		n.armDirLookupTimer(lk)
	}
	n.dirSend(target, &wire.DirLookup{Target: o, Token: lk.token})
}

// armDirLookupTimer degrades a remote query whose reply does not arrive
// within the commit window (replica crashed after suspicion checks, reply
// stalled). The fallback chase still answers the caller.
func (n *Node) armDirLookupTimer(lk *dirLookup) {
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if n.dirLooks[lk.token] != lk {
			return
		}
		if !n.Up {
			lk.stalledTimer = true
			return
		}
		delete(n.dirLooks, lk.token)
		n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
			Kind: obs.EvDirDegraded, Obj: uint32(lk.oid), Str: "lookup timeout"})
		n.cluster.Rec.Metrics().Add("dir_degraded", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
		lk.done(false, -1, 0)
	})
}

// recvDirLookupReply resolves an outstanding query.
func (n *Node) recvDirLookupReply(src int, p *wire.DirLookupReply) {
	lk := n.dirLooks[p.Token]
	if lk == nil {
		return // timed out and degraded, or duplicate
	}
	delete(n.dirLooks, p.Token)
	hit := uint64(0)
	if p.Ok {
		hit = 1
		n.cluster.Rec.Metrics().Add("dir_lookup_hits", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvDirLookup, Obj: uint32(p.Target), A: hit, B: uint64(uint32(p.Node))})
	lk.done(p.Ok, p.Node, p.Epoch)
}

// dirRefreshProxy applies a directory record to a local proxy. Records are
// quorum-chosen truths, so they overwrite hint-derived knowledge of the
// same epoch; strictly older records never regress the proxy (the same
// monotonicity guard UpdateLoc uses). Reports whether the proxy moved.
func (n *Node) dirRefreshProxy(o *Obj, node int32, epoch uint32) bool {
	if o.Resident || o.transit != nil || node < 0 || int(node) >= len(n.cluster.Nodes) {
		return false
	}
	if int(node) == n.ID {
		// The record names this node but the object is not resident here:
		// an inbound move's decree raced the install, or we re-exported it.
		// Never point a proxy at ourselves.
		return false
	}
	if epoch > o.Epoch || (epoch == o.Epoch && int(node) != o.LastKnown) {
		o.LastKnown = int(node)
		o.Epoch = epoch
		o.LocStale = false
		o.chained = false
		return true
	}
	if epoch == o.Epoch && int(node) == o.LastKnown {
		o.LocStale = false
	}
	return false
}

// dirLocate services a locate for a blocked fragment: one shard query, then
// the (refreshed) forwarding protocol — the resident node still produces
// the authoritative answer, the directory just collapses the walk to ≤1
// hop. On miss or degrade the chase runs from the old hint unchanged.
func (n *Node) dirLocate(f *Frag, o *Obj) {
	n.dirLookupQuery(o.OID, true, func(ok bool, node int32, epoch uint32) {
		if cur, live := n.objects[o.OID]; live && cur == o && !o.Resident {
			if ok {
				n.dirRefreshProxy(o, node, epoch)
			}
			n.sendMsg(o.LastKnown, &wire.Locate{
				Target: o.OID, Origin: int32(n.ID), ReplyFrag: f.ID,
			})
			return
		}
		// The object became resident here while the query was in flight
		// (an inbound move landed): answer directly.
		n.pushTemp(f, uint32(n.ID))
		n.enqueue(f)
	})
}

// dirRerouteInvoke re-resolves a suspected-or-stale callee location through
// the directory before giving up on the invocation. If the record names a
// healthy different home the call redispatches there; otherwise the
// invocation fails with the same typed fault the directory-free path
// raises.
func (n *Node) dirRerouteInvoke(f *Frag, recv *Obj, opName string, args []uint32) {
	f.Status = FragStateBlockedCall
	f.waitNode = -1
	n.dirLookupQuery(recv.OID, true, func(ok bool, node int32, epoch uint32) {
		if recv.Resident {
			// An inbound move landed the callee here mid-query.
			f.Status = FragStateReady
			n.dispatchCall(f, recv, opName, args)
			return
		}
		if ok && n.dirRefreshProxy(recv, node, epoch) && !n.suspects[recv.LastKnown] {
			n.cluster.Rec.Metrics().Add("dir_reroutes", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			f.Status = FragStateReady
			n.invokeRemote(f, recv, opName, args)
			return
		}
		recv.LocStale = false // fault now; a later suspicion re-marks
		n.faultErr(f, ErrNodeDown, fmt.Sprintf("remote invocation of %s on %v: node %d is down",
			opName, recv.OID, recv.LastKnown))
	})
}

// invalidateLocationsAt marks every proxy whose cached location points at
// the newly suspected peer: the forwarding address may dangle. The marks
// steer directory-armed lookups and the compactor; without the directory
// they are inert bits.
func (n *Node) invalidateLocationsAt(peer int) {
	for _, o := range n.objects {
		if !o.Resident && o.transit == nil && o.LastKnown == peer {
			o.LocStale = true
		}
	}
}

// ------------------------------------------------------------ compactor

// dirCompactTick is the background chain compactor: each tick it refreshes
// a bounded batch of flagged proxies (chained through by traffic, or
// location-stale after a suspicion) from the directory, rewriting them to
// the decreed home so forwarding chains truncate to ≤1 hop. Weakly
// self-re-arming, like heartbeats.
func (n *Node) dirCompactTick() {
	n.sched.AtWeak(n.cluster.dirCompactPeriod(), n.dirCompactTick)
	if !n.Up {
		return
	}
	var ids []oid.OID
	for id, o := range n.objects {
		if !o.Resident && o.transit == nil && (o.LocStale || o.chained) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > dirCompactBatch {
		ids = ids[:dirCompactBatch]
	}
	for _, id := range ids {
		id := id
		n.dirLookupQuery(id, false, func(ok bool, node int32, epoch uint32) {
			o := n.objects[id]
			if o == nil || o.Resident {
				return
			}
			// One query per flagging either way: a miss (the object never
			// moved under the directory) clears the flags too, or the
			// compactor would re-query it every tick forever.
			if ok && n.dirRefreshProxy(o, node, epoch) {
				n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
					Kind: obs.EvDirCompact, Obj: uint32(id), A: uint64(epoch), B: uint64(uint32(node))})
				n.cluster.Rec.Metrics().Add("dir_compactions", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			}
			o.LocStale = false
			o.chained = false
		})
	}
}

// -------------------------------------------------- move-commit ordering

// dirProposeMove drives the decree for a positively-acked move and commits
// the transaction when the decree resolves — chosen or degraded — provided
// the span is still pending (the commit timer cannot have aborted it: a
// delivered, acked move retires the timer; this is belt and braces).
func (n *Node) dirProposeMove(tx *moveTxn) {
	span := tx.span
	n.dirPropose(tx.obj.OID, tx.obj.Epoch, int32(tx.dest), func(chosen bool) {
		if cur, live := n.pendingCommits[span]; !live || cur != tx {
			return
		}
		n.commitMove(tx)
	})
}

// restartDir re-arms directory timers that fired while the node was down,
// in deterministic order; called from restart().
func (n *Node) restartDir() {
	slots := make([]dir.Slot, 0, len(n.dirProps))
	for slot, dp := range n.dirProps {
		if dp.stalledTimer {
			slots = append(slots, slot)
		}
	}
	dir.SortSlots(slots)
	for _, slot := range slots {
		dp := n.dirProps[slot]
		dp.stalledTimer = false
		n.armDirTimer(dp)
	}
	toks := make([]uint32, 0, len(n.dirLooks))
	for tok, lk := range n.dirLooks {
		if lk.stalledTimer {
			toks = append(toks, tok)
		}
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		lk := n.dirLooks[tok]
		lk.stalledTimer = false
		n.armDirLookupTimer(lk)
	}
}
