// The frame-layer injector: implements netsim.Injector, drawing every
// decision from the plan's seeded PRNG and emitting an obs event plus a
// metric for each injected fault so recovery is visible in the trace.

package chaos

import (
	"repro/internal/netsim"
	"repro/internal/obs"
)

// rng is splitmix64: tiny, fast, and fully deterministic across platforms.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Injector implements netsim.Injector for a Plan. It is driven entirely by
// the deterministic frame sequence, so the same plan on the same run
// produces the same verdicts.
type Injector struct {
	plan *Plan
	rng  rng
	rec  *obs.Recorder // may be nil (unit tests)

	// Injected counts verdicts by kind (drop, dup, delay, corrupt,
	// partition), independent of the recorder.
	Injected map[string]uint64
}

// NewInjector returns an injector for plan, reporting into rec (which may
// be nil).
func NewInjector(plan *Plan, rec *obs.Recorder) *Injector {
	return &Injector{
		plan:     plan,
		rng:      rng{state: plan.Seed},
		rec:      rec,
		Injected: map[string]uint64{},
	}
}

// Frame implements netsim.Injector.
func (in *Injector) Frame(at netsim.Micros, src, dst, payloadLen int) netsim.Verdict {
	var v netsim.Verdict
	p := in.plan
	if in.partitioned(at, src, dst) {
		v.Drop = true
		in.note(at, src, dst, "partition")
		return v
	}
	// One draw per fault class per frame, in a fixed order, so the
	// consumption pattern is a pure function of the frame sequence.
	if in.rng.float() < p.Drop {
		v.Drop = true
		in.note(at, src, dst, "drop")
	}
	if in.rng.float() < p.Dup {
		v.Dup = true
		v.DupDelay = 1 + netsim.Micros(in.rng.next()%64)
		in.note(at, src, dst, "dup")
	}
	if in.rng.float() < p.Delay {
		v.ExtraDelay = 1 + netsim.Micros(in.rng.next()%uint64(p.DelayBound()))
		in.note(at, src, dst, "delay")
	}
	if in.rng.float() < p.Corrupt {
		v.Corrupt = true
		if payloadLen > 0 {
			v.CorruptOff = int(in.rng.next() % uint64(payloadLen))
		}
		v.CorruptXor = byte(1 + in.rng.next()%255)
		in.note(at, src, dst, "corrupt")
	}
	return v
}

// partitioned reports whether the src<->dst link is cut at time at.
func (in *Injector) partitioned(at netsim.Micros, src, dst int) bool {
	for _, pt := range in.plan.Partitions {
		if ((pt.A == src && pt.B == dst) || (pt.A == dst && pt.B == src)) &&
			at >= pt.From && at < pt.Until {
			return true
		}
	}
	return false
}

func (in *Injector) note(at netsim.Micros, src, dst int, kind string) {
	in.Injected[kind]++
	if in.rec == nil {
		return
	}
	in.rec.Emit(obs.Event{At: int64(at), Node: int32(src), Kind: obs.EvFaultInject,
		B: uint64(dst), Str: kind})
	in.rec.Metrics().Add("chaos_injected", "kind="+kind, 1)
}
