// Package pta implements a Steensgaard-style — flow-insensitive,
// interprocedural, unification-based — points-to and escape analysis over
// the machine-independent IR, with a call graph derived from the program's
// invoke sites.
//
// Every abstract value class is an element of a union-find structure
// (an ECR, "equivalence class representative"). Assignments unify the
// classes of their two sides, so the whole analysis is a single linear
// pass over the IR plus near-constant-time union/find operations — the
// almost-linear bound of Steensgaard's POPL'96 formulation, which matters
// here because the analysis runs inside compile/load paths.
//
// The abstract locations are:
//
//   - TypeRoot(T): the class of references to instances of object type T.
//     Every `new T` site attaches its label here, and the self reference
//     of T's operations is this class — sound because a T operation's
//     self is always a T instance.
//   - Field(T,i): the class of values held by data slot i of any T
//     instance. Loads push it, stores unify into it, and constructor
//     argument i unifies with it (the kernel stores `new T(args)`
//     positionally into the first data slots).
//   - Var(f,v): the class of values held by frame slot v of function f.
//   - elem(c): the class of elements of arrays referenced by class c,
//     created on demand and merged when classes merge (the classic
//     pointee join of the unification solver).
//
// The call graph resolves an invoke site by operation name across all
// object types — an over-approximation that the statically typed source
// nearly always makes exact. Receiver, argument and result classes unify
// with the callee's self, parameter and result-slot classes.
//
// Escape facts fall out of the same structure: the classes of pointer
// object fields, pointer array elements and pointer result slots are the
// capture seeds (values stored there outlive the storing activation); a
// frame slot escapes when its class has been unified with a seed.
// Strings are exempt — they are immutable and cross the wire by value,
// so a "captured" string constrains nothing.
package pta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Stats counts the solver's work, for the near-linearity benchmarks and
// regression tests: total generated constraints, performed unions, and
// find operations.
type Stats struct {
	Constraints int
	Unions      int
	Finds       int
}

// Work is a scalar summary of solver effort, used to assert near-linear
// scaling (work on an n×-duplicated program stays O(n)).
func (s Stats) Work() int { return s.Constraints + s.Unions + s.Finds }

// Site is one allocation site: a reachable New or NewArray instruction.
type Site struct {
	ID       int
	Object   string // enclosing object type
	Func     string // enclosing function
	PC       int    // IR instruction index
	TypeName string // created type ("Buffer", or "Array[i]" etc.)
}

// Label renders the site in the stable form used by reports and cohorts.
func (s Site) Label() string {
	return fmt.Sprintf("%s@%d new %s", s.Func, s.PC, s.TypeName)
}

// Cohort is the static group-migration closure of one allocation site:
// the site itself plus every allocation site reachable from it through
// object fields and array elements. Objects in one cohort tend to move
// together, so cohorts are the candidate units for batched group
// migration.
type Cohort struct {
	Site    Site
	Members []string // sorted member site labels, including the site's own
}

// Result holds the solved analysis for one program.
type Result struct {
	Stats Stats

	prog    *ir.Program
	parent  []int32
	rank    []byte
	elem    []int32 // per-root element class, -1 if none
	scalar  int32
	str     int32
	tyRoot  []int32   // per object index
	fieldV  [][]int32 // per object index, per data slot
	varV    [][]int32 // per global func id, per frame slot
	funcs   []*ir.Func
	funcObj []int          // owning object index per global func id
	fidOf   map[string]int // "Obj.func" -> global func id

	sites   []Site
	siteECR []int32

	capturedIDs []int32
	pinnedIDs   []int32
	pinSites    map[int32][]string // pinned ECR id -> "Func@pc" fix sites

	callees map[int][]int // global func id -> sorted callee func ids

	// Post-solve caches.
	capturedSet map[int32]bool
	pinnedSet   map[int32]bool
	strRoot     int32
	labelsBy    map[int32][]int // class root -> site IDs, sorted
	typesBy     map[int32][]int // class root -> object indices, sorted
}

// ---------------------------------------------------------------- union-find

func (r *Result) fresh() int32 {
	id := int32(len(r.parent))
	r.parent = append(r.parent, id)
	r.rank = append(r.rank, 0)
	r.elem = append(r.elem, -1)
	return id
}

func (r *Result) find(x int32) int32 {
	r.Stats.Finds++
	for r.parent[x] != x {
		r.parent[x] = r.parent[r.parent[x]] // path halving
		x = r.parent[x]
	}
	return x
}

// unify merges the classes of x and y, and — transitively — the classes
// of their array elements (the solver's pointee join), iteratively so
// degenerate chains cannot overflow the stack.
func (r *Result) unify(x, y int32) {
	type pair struct{ x, y int32 }
	work := []pair{{x, y}}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		rx, ry := r.find(p.x), r.find(p.y)
		if rx == ry {
			continue
		}
		r.Stats.Unions++
		if r.rank[rx] < r.rank[ry] {
			rx, ry = ry, rx
		}
		r.parent[ry] = rx
		if r.rank[rx] == r.rank[ry] {
			r.rank[rx]++
		}
		if r.elem[ry] >= 0 {
			if r.elem[rx] >= 0 {
				work = append(work, pair{r.elem[rx], r.elem[ry]})
			} else {
				r.elem[rx] = r.elem[ry]
			}
		}
	}
}

// getElem returns (creating on demand) the element class of arrays
// referenced by class e.
func (r *Result) getElem(e int32) int32 {
	root := r.find(e)
	if r.elem[root] < 0 {
		r.elem[root] = r.fresh()
	}
	return r.elem[root]
}

// ------------------------------------------------------------------ analysis

// Analyze solves the whole-program analysis. It fails only when a
// function's IR does not verify — compiled programs always do.
func Analyze(p *ir.Program) (*Result, error) {
	r := &Result{
		prog:     p,
		fidOf:    map[string]int{},
		callees:  map[int][]int{},
		pinSites: map[int32][]string{},
	}
	r.scalar = r.fresh()
	r.str = r.fresh()

	// Location universe.
	for oi, obj := range p.Objects {
		r.tyRoot = append(r.tyRoot, r.fresh())
		fv := make([]int32, len(obj.VarKinds))
		for i, k := range obj.VarKinds {
			fv[i] = r.fresh()
			if k == ir.VKPtr {
				r.capturedIDs = append(r.capturedIDs, fv[i])
			}
		}
		r.fieldV = append(r.fieldV, fv)
		for _, f := range obj.Funcs {
			fid := len(r.funcs)
			r.funcs = append(r.funcs, f)
			r.funcObj = append(r.funcObj, oi)
			r.fidOf[f.Name] = fid
			vv := make([]int32, f.NumVars)
			for v := 0; v < f.NumVars; v++ {
				vv[v] = r.fresh()
				if v >= f.NumParams && v < f.NumParams+f.NumResults && f.VarKinds[v] == ir.VKPtr {
					r.capturedIDs = append(r.capturedIDs, vv[v])
				}
			}
			r.varV = append(r.varV, vv)
		}
	}

	for fid := range r.funcs {
		if err := r.genFunc(fid); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// genFunc generates and solves the constraints of one function: a single
// visit of every reachable instruction propagating an abstract ECR stack,
// with elementwise unification at control-flow joins. One visit suffices
// because every constraint is a unification — symmetric and idempotent —
// so later class growth at a join needs no re-propagation.
func (r *Result) genFunc(fid int) error {
	f := r.funcs[fid]
	oi := r.funcObj[fid]
	obj := r.prog.Objects[oi]
	fi, err := ir.Analyze(f, obj.VarKinds)
	if err != nil {
		return fmt.Errorf("pta: %s.%s: %w", obj.Name, f.Name, err)
	}

	// Allocation sites and the call graph come from a deterministic
	// pre-scan in instruction order.
	siteAt := make(map[int]int32)
	var calleeSet []int
	for pc, in := range f.Code {
		if !fi.Reach[pc] {
			continue
		}
		switch in.Op {
		case ir.New:
			name := f.Strings[in.S]
			r.Stats.Constraints++
			site := Site{ID: len(r.sites), Object: obj.Name,
				Func: f.Name, PC: pc, TypeName: name}
			var ecr int32
			if ti := r.objIndex(name); ti >= 0 {
				ecr = r.tyRoot[ti]
			} else {
				ecr = r.fresh()
			}
			r.sites = append(r.sites, site)
			r.siteECR = append(r.siteECR, ecr)
			siteAt[pc] = ecr
		case ir.NewArray:
			site := Site{ID: len(r.sites), Object: obj.Name,
				Func: f.Name, PC: pc, TypeName: "Array[" + in.K.String() + "]"}
			ecr := r.fresh()
			if in.K == ir.VKPtr {
				r.capturedIDs = append(r.capturedIDs, r.getElem(ecr))
			}
			r.sites = append(r.sites, site)
			r.siteECR = append(r.siteECR, ecr)
			siteAt[pc] = ecr
		case ir.Call:
			for _, cand := range r.calleesOf(f.Strings[in.S]) {
				calleeSet = append(calleeSet, cand)
			}
		}
	}
	sort.Ints(calleeSet)
	r.callees[fid] = dedupInts(calleeSet)

	stackAt := make([][]int32, len(f.Code))
	stackAt[0] = []int32{}
	work := []int{0}
	visited := make([]bool, len(f.Code))
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[pc] {
			continue
		}
		visited[pc] = true
		sf := stackAt[pc]
		in := f.Code[pc]
		pop, push := ir.StackEffect(in)
		if in.Op == ir.Call {
			push = 1
		}
		ops := sf[len(sf)-pop:]
		out := append([]int32(nil), sf[:len(sf)-pop]...)
		pushed := r.scalar
		switch in.Op {
		case ir.PushStr, ir.SysStrOf, ir.SysConcat:
			pushed = r.str
		case ir.PushNil:
			pushed = r.fresh()
		case ir.PushSelf:
			pushed = r.tyRoot[oi]
		case ir.LoadVar:
			pushed = r.varV[fid][in.A]
		case ir.StoreVar:
			r.Stats.Constraints++
			r.unify(r.varV[fid][in.A], ops[0])
		case ir.LoadMine:
			pushed = r.fieldV[oi][in.A]
		case ir.StoreMine:
			r.Stats.Constraints++
			r.unify(r.fieldV[oi][in.A], ops[0])
		case ir.ALoad:
			r.Stats.Constraints++
			pushed = r.getElem(ops[0])
		case ir.AStore:
			r.Stats.Constraints++
			r.unify(r.getElem(ops[0]), ops[2])
		case ir.New:
			argc := int(in.A)
			if ti := r.objIndex(f.Strings[in.S]); ti >= 0 {
				for j := 0; j < argc && j < len(r.fieldV[ti]); j++ {
					r.Stats.Constraints++
					r.unify(r.fieldV[ti][j], ops[j])
				}
			}
			pushed = siteAt[pc]
		case ir.NewArray:
			pushed = siteAt[pc]
		case ir.Call:
			res := r.fresh()
			recv := ops[0]
			args := ops[1:]
			for _, gid := range r.calleesOf(f.Strings[in.S]) {
				g := r.funcs[gid]
				r.Stats.Constraints++
				r.unify(recv, r.tyRoot[r.funcObj[gid]])
				for j := 0; j < g.NumParams && j < len(args); j++ {
					r.unify(r.varV[gid][j], args[j])
				}
				if g.NumResults > 0 {
					r.unify(res, r.varV[gid][g.NumParams])
				}
			}
			pushed = res
		case ir.SysFix, ir.SysRefix:
			r.Stats.Constraints++
			r.pinnedIDs = append(r.pinnedIDs, ops[0])
			where := fmt.Sprintf("%s@%d", f.Name, pc)
			if !containsStr(r.pinSites[ops[0]], where) {
				r.pinSites[ops[0]] = append(r.pinSites[ops[0]], where)
			}
		}
		for i := 0; i < push; i++ {
			out = append(out, pushed)
		}
		for _, s := range ir.Succs(f, pc) {
			if stackAt[s] == nil {
				stackAt[s] = append([]int32(nil), out...)
				work = append(work, s)
				continue
			}
			for i := range out {
				r.unify(stackAt[s][i], out[i])
			}
			if !visited[s] {
				work = append(work, s)
			}
		}
	}
	return nil
}

func (r *Result) objIndex(name string) int {
	for i, o := range r.prog.Objects {
		if o.Name == name {
			return i
		}
	}
	return -1
}

// calleesOf resolves an operation name to every function it may invoke:
// each object type declaring an operation of that name. Internal
// functions ($init, $initially, $process) are never invoke targets.
func (r *Result) calleesOf(op string) []int {
	var out []int
	if strings.HasPrefix(op, "$") {
		return nil
	}
	for fid, f := range r.funcs {
		if f.OpName == op {
			out = append(out, fid)
		}
	}
	return out
}

// finish builds the post-solve caches: per-class site labels, type
// memberships, and the captured/pinned class sets.
func (r *Result) finish() {
	r.capturedSet = map[int32]bool{}
	for _, id := range r.capturedIDs {
		r.capturedSet[r.find(id)] = true
	}
	r.pinnedSet = map[int32]bool{}
	for _, id := range r.pinnedIDs {
		r.pinnedSet[r.find(id)] = true
	}
	r.strRoot = r.find(r.str)
	r.labelsBy = map[int32][]int{}
	for i := range r.sites {
		root := r.find(r.siteECR[i])
		r.labelsBy[root] = append(r.labelsBy[root], i)
	}
	r.typesBy = map[int32][]int{}
	for oi := range r.prog.Objects {
		root := r.find(r.tyRoot[oi])
		r.typesBy[root] = append(r.typesBy[root], oi)
	}
}

// ------------------------------------------------------------------- queries

// SlotEscapes reports whether frame slot v of the function with
// qualified name fn ("Obj.op") holds references that may outlive the
// activation: its class has been unified with a pointer object field,
// pointer array element, or pointer result slot. Strings never escape
// (immutable, copied by value on the wire).
func (r *Result) SlotEscapes(fn string, v int) bool {
	fid, ok := r.fidOf[fn]
	if !ok || v >= len(r.varV[fid]) {
		return false
	}
	root := r.find(r.varV[fid][v])
	return r.capturedSet[root] && root != r.strRoot
}

// reachClasses computes the closure of class roots reachable from the
// seeds through object fields and array elements.
func (r *Result) reachClasses(seeds []int32) map[int32]bool {
	seen := map[int32]bool{}
	var work []int32
	add := func(id int32) {
		root := r.find(id)
		if !seen[root] {
			seen[root] = true
			work = append(work, root)
		}
	}
	for _, s := range seeds {
		add(s)
	}
	for len(work) > 0 {
		root := work[len(work)-1]
		work = work[:len(work)-1]
		if e := r.elem[root]; e >= 0 {
			add(e)
		}
		for _, oi := range r.typesBy[root] {
			for i, k := range r.prog.Objects[oi].VarKinds {
				if k == ir.VKPtr {
					add(r.fieldV[oi][i])
				}
			}
		}
	}
	return seen
}

// threadSeeds returns the classes a thread rooted at Obj's process can
// hold directly: the process self plus every frame slot (and self) of
// every function transitively invocable from it, per the call graph.
func (r *Result) threadSeeds(objName string) []int32 {
	fid, ok := r.fidOf[objName+".$process"]
	if !ok {
		return nil
	}
	seen := map[int]bool{fid: true}
	work := []int{fid}
	var seeds []int32
	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		seeds = append(seeds, r.tyRoot[r.funcObj[g]])
		for _, vv := range r.varV[g] {
			seeds = append(seeds, vv)
		}
		for _, callee := range r.callees[g] {
			if !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
		}
	}
	return seeds
}

// ProcessPinnedReach returns, for a process-bearing object type, a sorted
// description of every node-pinned class the thread can reach — each as
// "T1/T2 (fixed at fn@pc, ...)". Empty when the thread reaches nothing
// pinned (or the object has no process).
func (r *Result) ProcessPinnedReach(objName string) []string {
	seeds := r.threadSeeds(objName)
	if seeds == nil {
		return nil
	}
	reached := r.reachClasses(seeds)
	var out []string
	for root := range reached {
		if !r.pinnedSet[root] {
			continue
		}
		var names []string
		for _, oi := range r.typesBy[root] {
			names = append(names, r.prog.Objects[oi].Name)
		}
		if len(names) == 0 {
			names = append(names, "array")
		}
		sort.Strings(names)
		var fixes []string
		for id, sites := range r.pinSites {
			if r.find(id) == root {
				fixes = append(fixes, sites...)
			}
		}
		sort.Strings(fixes)
		out = append(out, fmt.Sprintf("%s (fixed at %s)",
			strings.Join(names, "/"), strings.Join(fixes, ", ")))
	}
	sort.Strings(out)
	return out
}

// Cohorts returns the group-migration closure of every allocation site
// with at least two members, in site order. Strings are excluded: they
// are copied, not migrated.
func (r *Result) Cohorts() []Cohort {
	var out []Cohort
	for i, s := range r.sites {
		reached := r.reachClasses([]int32{r.siteECR[i]})
		var members []string
		for root := range reached {
			if root == r.strRoot {
				continue
			}
			for _, si := range r.labelsBy[root] {
				members = append(members, r.sites[si].Label())
			}
		}
		members = sortedUnique(members)
		if len(members) >= 2 {
			out = append(out, Cohort{Site: s, Members: members})
		}
	}
	return out
}

// CallGraph returns the name-resolved call graph: qualified caller name
// to sorted qualified callee names. Functions with no invoke sites are
// omitted.
func (r *Result) CallGraph() map[string][]string {
	out := map[string][]string{}
	for fid, callees := range r.callees {
		if len(callees) == 0 {
			continue
		}
		var names []string
		for _, gid := range callees {
			g := r.funcs[gid]
			names = append(names, g.Name)
		}
		out[r.funcs[fid].Name] = sortedUnique(names)
	}
	return out
}

// Report renders the whole analysis deterministically: sites, call
// graph, escape summary and cohorts. Two runs over the same program
// produce byte-identical reports (pinned by tools/ptacheck).
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pta: %d objects, %d functions, %d allocation sites\n",
		len(r.prog.Objects), len(r.funcs), len(r.sites))
	for _, s := range r.sites {
		fmt.Fprintf(&b, "site %d: %s\n", s.ID, s.Label())
	}
	cg := r.CallGraph()
	var callers []string
	for k := range cg {
		callers = append(callers, k)
	}
	sort.Strings(callers)
	for _, k := range callers {
		fmt.Fprintf(&b, "call %s -> %s\n", k, strings.Join(cg[k], ", "))
	}
	for _, obj := range r.prog.Objects {
		for _, f := range obj.Funcs {
			for v := f.NumParams + f.NumResults; v < f.NumVars; v++ {
				if f.VarKinds[v] == ir.VKPtr && r.SlotEscapes(f.Name, v) {
					fmt.Fprintf(&b, "escape %s %s\n", f.Name, f.VarNames[v])
				}
			}
		}
		if obj.HasProcess {
			for _, p := range r.ProcessPinnedReach(obj.Name) {
				fmt.Fprintf(&b, "pinned-reach %s: %s\n", obj.Name, p)
			}
		}
	}
	for _, c := range r.Cohorts() {
		fmt.Fprintf(&b, "cohort site %d (%s): {%s}\n",
			c.Site.ID, c.Site.Label(), strings.Join(c.Members, "; "))
	}
	return b.String()
}

// Sites returns the allocation sites in deterministic (discovery) order.
func (r *Result) Sites() []Site { return append([]Site(nil), r.sites...) }

// ------------------------------------------------------------------- helpers

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func sortedUnique(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
