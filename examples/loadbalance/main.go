// Load balancing with mobility: a coordinator creates worker objects on
// the fastest node, then spreads them across the heterogeneous network
// with `move`; workers compute where they land (at full native speed for
// whatever architecture they landed on) and report back through ordinary
// invocations — which the runtime turns into cross-architecture RPC. The
// coordinator pins itself with `fix` so the results always come home.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
)

const program = `
object Worker
  var id: Int
  var done: Bool <- false
  var result: Int <- 0
  operation compute(n: Int)
    var i: Int <- 0
    var acc: Int <- 0
    while i < n do
      acc <- acc + (i * i) % 97
      i <- i + 1
    end
    result <- acc
    done <- true
  end
  function report() -> (r: String)
    r <- "worker " + str(id) + " on " + str(locate(self)) + " -> " + str(result)
  end
  function isdone() -> (r: Bool)
    r <- done
  end
end Worker

object Main
  process
    fix self at node(0)
    var nworkers: Int <- nodes()
    var ws: Array[Worker] <- new Array[Worker](nworkers)
    var i: Int <- 0
    while i < nworkers do
      var w: Worker <- new Worker(i)
      move w to node(i)
      ws[i] <- w
      i <- i + 1
    end
    // Kick off the computations (each runs remotely, at native speed).
    i <- 0
    while i < nworkers do
      ws[i].compute(2000 + i * 500)
      i <- i + 1
    end
    i <- 0
    while i < nworkers do
      print(ws[i].report())
      i <- i + 1
    end
    print("all ", nworkers, " workers done at ", timems(), " ms")
  end process
end Main
`

func main() {
	prog, err := core.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	machines := []netsim.MachineModel{
		netsim.SPARCstationSLC,
		netsim.Sun3_100,
		netsim.HP9000_433s,
		netsim.VAXstation2000,
	}
	sys, err := core.NewSystem(prog, machines, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	for _, line := range sys.Lines() {
		fmt.Println(line)
	}
}
