// Batched group migration: a whole cohort of objects (each prepared exactly
// like a single move — stack walk, conversion, two-phase transaction) rides
// one MoveGroup frame to the destination, amortizing the per-frame wire
// overhead and per-message protocol cost across the cohort. The group is a
// purely link-level batching: at the destination each inner Move runs the
// unchanged single-object install path, so per-span deduplication, structural
// validation, per-member MoveAcks and the two-phase commit all hold member by
// member even when the whole batch retransmits or partially fails.

package kernel

import (
	"repro/internal/obs"
	"repro/internal/wire"
)

// moveCollector accumulates prepared Moves bound for one destination so
// they can leave in one batched MoveGroup frame.
type moveCollector struct {
	dest  int
	items []groupItem
}

// groupItem is one prepared member move: its wire message, transaction,
// span, and deferred residency-flip commit operation.
type groupItem struct {
	msg    *wire.Move
	tx     *moveTxn
	sp     *obs.Span
	commit func()
}

// dispatchMove finishes a prepared object move: the (chaos-aware) send, span
// accounting, the residency-flip commit, and transit registration. While a
// group collector is open for the same destination the prepared move joins
// the batch instead and moveGroup sends it; the uncollected path is the
// historical per-object tail, byte for byte.
func (n *Node) dispatchMove(dest int, msg *wire.Move, tx *moveTxn, sp *obs.Span, commit func()) {
	if n.collect != nil && n.collect.dest == dest {
		n.collect.items = append(n.collect.items,
			groupItem{msg: msg, tx: tx, sp: sp, commit: commit})
		return
	}
	bytes, sendAt := n.sendMsgAck(dest, msg, func() { tx.delivered = true })
	n.cluster.Rec.SpanSent(sp.ID, bytes, int64(sendAt))
	tx.do(commit)
	if n.cluster.dirOn && !tx.live {
		// Chaos-off the commit just ran inline and delivery is certain, so
		// the directory decree is fire-and-forget; chaos-on it waits for
		// the destination's positive MoveAck (recvMoveAck).
		n.dirPropose(msg.Object, msg.Epoch, int32(dest), nil)
	}
	if tx.live {
		n.beginTransit(tx, sp.ID)
	}
}

// moveGroup migrates a cohort of resident objects to dest in one batched
// transfer. Members that cannot join right now (fixed, deferred on a
// creation chain, degraded, immutable — those duplicate via their own
// message) simply stay out of the batch; a batch of one degenerates to the
// plain single-object send.
func (n *Node) moveGroup(objs []*Obj, dest int, fix bool) {
	if len(objs) == 0 || dest == n.ID || dest < 0 || dest >= len(n.cluster.Nodes) {
		return
	}
	if len(objs) == 1 {
		n.moveObject(objs[0], dest, fix)
		return
	}
	col := &moveCollector{dest: dest}
	n.collect = col
	for _, o := range objs {
		n.moveObject(o, dest, fix)
	}
	n.collect = nil
	items := col.items
	if len(items) == 0 {
		return
	}
	if len(items) == 1 {
		it := items[0]
		n.dispatchMove(dest, it.msg, it.tx, it.sp, it.commit)
		return
	}
	inner := make([]*wire.Move, len(items))
	for i, it := range items {
		inner[i] = it.msg
	}
	frameBytes, sendAt := n.sendMsgAck(dest, &wire.MoveGroup{Inner: inner}, func() {
		for _, it := range items {
			it.tx.delivered = true
		}
	})
	// Per-member span accounting: each member's span carries its own payload
	// size; the gap between the batch frame and the member sum — plus the
	// n-1 saved frame overheads — is what the batch amortizes.
	memberBytes := 0
	for _, it := range items {
		pb := wire.PayloadSize(it.msg)
		memberBytes += pb
		n.cluster.Rec.SpanSent(it.sp.ID, pb, int64(sendAt))
	}
	first := items[0]
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvMoveGroupOut, Span: first.sp.ID, Obj: uint32(first.tx.obj.OID),
		A: uint64(len(items)), B: uint64(dest)})
	m := n.cluster.Rec.Metrics()
	lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
	m.Add("group_moves", lbl, 1)
	m.Add("group_move_objs", lbl, uint64(len(items)))
	m.Add("group_move_frame_bytes", lbl, uint64(frameBytes))
	m.Add("group_move_member_bytes", lbl, uint64(memberBytes))
	batching := n.cluster.dirOn && !n.cluster.Config.DirNoGroupDecrees
	var cohort []groupItem
	for _, it := range items {
		it.tx.do(it.commit)
		if n.cluster.dirOn && !it.tx.live {
			if batching {
				// Chaos-off the whole cohort's decrees batch into group
				// rounds, fired after the loop so members sharing a shard
				// replica set ride one prepare/accept exchange.
				cohort = append(cohort, it)
				continue
			}
			// Same chaos-off fire-and-forget decree as dispatchMove.
			n.dirPropose(it.msg.Object, it.msg.Epoch, int32(dest), nil)
		}
	}
	if len(cohort) > 0 {
		n.dirCohortPropose(cohort, dest)
	}
	// Under chaos every member transaction pins to the batch's single frame
	// (lastFrame after the one send above): per-member MoveAcks resolve the
	// transactions independently, and an abort's filler swap is idempotent
	// across members sharing the frame. With group decrees on, the live
	// members also share one dirGroupBatch: their decrees wait for the last
	// member's MoveAck and then batch per replica set.
	var batch *dirGroupBatch
	if batching {
		batch = &dirGroupBatch{}
	}
	for _, it := range items {
		if it.tx.live {
			if batch != nil {
				it.tx.dirBatch = batch
				batch.outstanding++
			}
			n.beginTransit(it.tx, it.sp.ID)
		}
	}
}

// recvMoveGroup installs a batched cohort: each inner Move runs the exact
// single-object install path — per-span dedup, structural validation, and a
// per-member MoveAck — so exactly-once installs hold member by member.
func (n *Node) recvMoveGroup(src int, p *wire.MoveGroup) {
	firstSpan := uint32(0)
	if len(p.Inner) > 0 {
		firstSpan = p.Inner[0].SpanID
	}
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID),
		Kind: obs.EvMoveGroupIn, Span: firstSpan,
		A: uint64(len(p.Inner)), B: uint64(src)})
	n.cluster.Rec.Metrics().Add("group_moves_in",
		obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	for _, inner := range p.Inner {
		n.recvMove(src, inner)
	}
}
