// Package dir implements the replicated object-location directory (emdir).
//
// The paper's kernels locate objects by chasing forwarding addresses left
// behind by moves (§4.3); a crash in the middle of a chain orphans every
// proxy pointing through the dead node. emdir replaces the chain as the
// primary location mechanism with sharded ownership records — OID → (home
// node, epoch) — replicated across a small replica set and updated by one
// single-decree Paxos round per move commit. Each move of an object is its
// own consensus instance, keyed by the (oid, epoch) slot the move's epoch
// bump created, so decrees from different moves never collide and a decree
// is immutable once chosen. After a crash/restart a locate is one shard
// query instead of a forwarding-address walk; the chase survives only as
// the degraded-mode fallback.
//
// This package holds the pure protocol state machines — acceptor, learner
// store, proposer — with no I/O and no time: the kernel drives message
// exchange over the simulated network (internal/kernel/dir.go) so directory
// traffic is charged and fault-injected like any other kernel traffic. The
// protocol shape follows the classic single-decree synod (cf. the paxos lab
// exemplar named in ROADMAP.md): prepare/promise, accept/accepted, learn.
package dir

import (
	"fmt"
	"sort"

	"repro/internal/oid"
)

// Config sizes the directory.
type Config struct {
	// Replicas is the replica-set size per shard (clamped to node count).
	Replicas int
	// Shards is the number of shards; records hash to shards by OID.
	Shards int
}

// Normalize clamps the configuration to a cluster of n nodes: at least one
// replica, no more replicas than nodes, and one shard per node by default.
func (c Config) Normalize(n int) Config {
	c, _ = c.NormalizeDiag(n)
	return c
}

// NormalizeDiag is Normalize plus a diagnostic line per clamp, so callers
// holding a user-supplied configuration (emrun -dir n) can report what was
// adjusted instead of silently mis-sharding.
func (c Config) NormalizeDiag(n int) (Config, []string) {
	var diags []string
	if c.Shards < 0 {
		diags = append(diags, fmt.Sprintf("dir: %d shards invalid; using %d (one per node)", c.Shards, n))
	}
	if c.Shards <= 0 {
		c.Shards = n
	}
	if c.Shards > n {
		diags = append(diags, fmt.Sprintf("dir: %d shards exceed the %d-node cluster; clamped to %d", c.Shards, n, n))
		c.Shards = n
	}
	if c.Replicas < 0 {
		diags = append(diags, fmt.Sprintf("dir: %d replicas invalid; using 1", c.Replicas))
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > n {
		diags = append(diags, fmt.Sprintf("dir: %d replicas exceed the %d-node cluster; clamped to %d", c.Replicas, n, n))
		c.Replicas = n
	}
	return c, diags
}

// Quorum is the majority size of a replica set.
func (c Config) Quorum() int { return c.Replicas/2 + 1 }

// ShardOf maps an OID to its shard.
func ShardOf(o oid.OID, shards int) int {
	return int(uint32(o) % uint32(shards))
}

// ReplicaSet returns the (sorted) node IDs replicating a shard: the
// consecutive run of nodes starting at the shard index, wrapping mod n.
func ReplicaSet(shard, replicas, nodes int) []int {
	if replicas > nodes {
		replicas = nodes
	}
	set := make([]int, replicas)
	for i := range set {
		set[i] = (shard + i) % nodes
	}
	sort.Ints(set)
	return set
}

// PlaceReplicas chooses a shard's (sorted) replica set with locality
// awareness: the shard's anchor node is always a member, and the remaining
// replicas-1 seats go to the peers with the lowest cost(anchor, peer) —
// the kernel passes per-link extra latency from the netsim topology. Ties
// break by ring distance from the anchor, so on a uniform topology (every
// extra latency zero, or cost nil) the placement degenerates to exactly
// ReplicaSet's consecutive run: topology-free clusters keep their historic
// layout byte for byte.
func PlaceReplicas(shard, replicas, nodes int, cost func(a, b int) int64) []int {
	if replicas > nodes {
		replicas = nodes
	}
	if replicas < 1 {
		replicas = 1
	}
	anchor := shard % nodes
	type seat struct {
		node int
		cost int64
		ring int // distance from the anchor walking the ring forward
	}
	cands := make([]seat, 0, nodes-1)
	for i := 1; i < nodes; i++ {
		p := (anchor + i) % nodes
		var c int64
		if cost != nil {
			c = cost(anchor, p)
		}
		cands = append(cands, seat{node: p, cost: c, ring: i})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].ring < cands[j].ring
	})
	set := make([]int, 0, replicas)
	set = append(set, anchor)
	for _, s := range cands[:replicas-1] {
		set = append(set, s.node)
	}
	sort.Ints(set)
	return set
}

// Slot names one consensus instance: the decree that object o's move to
// epoch e landed on a particular home node. Epoch bumps on every move, so
// each move gets a fresh slot.
type Slot struct {
	OID   oid.OID
	Epoch uint32
}

// Less orders slots for deterministic iteration.
func (s Slot) Less(t Slot) bool {
	if s.OID != t.OID {
		return s.OID < t.OID
	}
	return s.Epoch < t.Epoch
}

// SortSlots sorts a slot slice in canonical order.
func SortSlots(ss []Slot) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Less(ss[j]) })
}

// Record is one ownership record: where an object lives as of an epoch.
type Record struct {
	Node  int32
	Epoch uint32
}

// Acceptor is the per-slot acceptor state held by each replica.
type Acceptor struct {
	Promised uint64 // highest ballot promised
	AccBal   uint64 // ballot of the accepted value, 0 if none
	AccNode  int32  // accepted value (home node)
}

// Prepare handles a prepare(ballot) request. On success it promises the
// ballot and reports any previously accepted (ballot, value) so the
// proposer can adopt it; on failure it reports the ballot that blocked.
func (a *Acceptor) Prepare(ballot uint64) (ok bool, promised, accBal uint64, accNode int32) {
	if ballot <= a.Promised {
		return false, a.Promised, 0, -1
	}
	a.Promised = ballot
	return true, ballot, a.AccBal, a.AccNode
}

// Accept handles an accept(ballot, node) request: accepted iff the ballot
// is at least the promise.
func (a *Acceptor) Accept(ballot uint64, node int32) (ok bool, promised uint64) {
	if ballot < a.Promised {
		return false, a.Promised
	}
	a.Promised = ballot
	a.AccBal = ballot
	a.AccNode = node
	return true, ballot
}

// Store is the learner state: chosen ownership records, one per object,
// monotone in epoch. Replicas answer lookups from here.
type Store struct {
	recs map[oid.OID]Record
}

// NewStore returns an empty record store.
func NewStore() *Store { return &Store{recs: make(map[oid.OID]Record)} }

// Learn applies a chosen decree. Only strictly newer epochs overwrite (the
// same guard proxies apply to UpdateLoc hints), so replayed or reordered
// learns are harmless.
func (s *Store) Learn(o oid.OID, node int32, epoch uint32) bool {
	if r, ok := s.recs[o]; ok && epoch <= r.Epoch {
		return false
	}
	s.recs[o] = Record{Node: node, Epoch: epoch}
	return true
}

// Lookup answers the current record for an object, if any decree chose one.
func (s *Store) Lookup(o oid.OID) (Record, bool) {
	r, ok := s.recs[o]
	return r, ok
}

// Len reports how many objects have records.
func (s *Store) Len() int { return len(s.recs) }

// OIDs returns the recorded object IDs in sorted order (for deterministic
// iteration in tests and debug dumps).
func (s *Store) OIDs() []oid.OID {
	out := make([]oid.OID, 0, len(s.recs))
	for o := range s.recs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Proposal phases.
const (
	phaseIdle = iota
	phasePrepare
	phaseAccept
	phaseDone
)

// Proposal is the proposer side of one decree: the source node of a move
// drives it after the destination acknowledges the install. The kernel owns
// message exchange and timeouts; this struct owns ballots, quorum counting
// and value adoption.
type Proposal struct {
	Slot   Slot
	Value  int32 // the home node this proposer wants recorded
	Quorum int

	self     int32  // proposer node id, disambiguates ballots
	Ballot   uint64 // current ballot, valid after Start
	attempt  uint32
	maxSeen  uint64 // highest ballot observed in nacks
	phase    int
	promises int
	accepts  int
	accBal   uint64 // highest accepted ballot among promises
	accNode  int32  // its value
	progress uint64 // counts every reply that advanced the current round
}

// NewProposal builds a proposal for slot with the given desired value.
func NewProposal(slot Slot, value, self int32, quorum int) *Proposal {
	return &Proposal{Slot: slot, Value: value, Quorum: quorum, self: self, accNode: -1}
}

// Start begins the next prepare round and returns its ballot. Ballots embed
// the proposer id so concurrent proposers never collide, and each restart
// jumps past every ballot observed in nacks.
func (p *Proposal) Start() uint64 {
	for {
		p.attempt++
		b := uint64(p.attempt)<<16 | uint64(uint16(p.self+1))
		if b > p.maxSeen {
			p.Ballot = b
			break
		}
		if p.maxSeen>>16 > uint64(p.attempt) {
			p.attempt = uint32(p.maxSeen >> 16)
		}
	}
	p.phase = phasePrepare
	p.promises = 0
	p.accepts = 0
	p.accBal = 0
	p.accNode = -1
	return p.Ballot
}

// Attempt reports how many prepare rounds have started.
func (p *Proposal) Attempt() int { return int(p.attempt) }

// Progress counts replies that advanced the current round. A timeout driver
// can compare snapshots of it to tell a round that is merely slower than
// the timeout window (replies still arriving — leave the ballot alone) from
// one that is truly stuck (nothing arrived — restart with a higher ballot).
func (p *Proposal) Progress() uint64 { return p.progress }

// Done reports whether the decree has been chosen.
func (p *Proposal) Done() bool { return p.phase == phaseDone }

// OnPromise processes one promise (or nack) for the given ballot. It
// returns true exactly once, when the quorum of promises is reached and the
// proposer should broadcast accept(Ballot, ChosenValue).
func (p *Proposal) OnPromise(ballot uint64, ok bool, accBal uint64, accNode int32, promised uint64) bool {
	if !ok {
		if promised > p.maxSeen {
			p.maxSeen = promised
		}
		return false
	}
	if p.phase != phasePrepare || ballot != p.Ballot {
		return false // stale round
	}
	if accBal > p.accBal {
		p.accBal = accBal
		p.accNode = accNode
	}
	p.progress++
	p.promises++
	if p.promises < p.Quorum {
		return false
	}
	p.phase = phaseAccept
	return true
}

// ChosenValue is the value to propose in the accept phase: any value a
// quorum member already accepted wins over our own (the synod invariant).
func (p *Proposal) ChosenValue() int32 {
	if p.accBal > 0 && p.accNode >= 0 {
		return p.accNode
	}
	return p.Value
}

// OnAccepted processes one accepted (or nack) reply. It returns true
// exactly once, when a quorum has accepted and the decree is chosen.
func (p *Proposal) OnAccepted(ballot uint64, ok bool, promised uint64) bool {
	if !ok {
		if promised > p.maxSeen {
			p.maxSeen = promised
		}
		return false
	}
	if p.phase != phaseAccept || ballot != p.Ballot {
		return false
	}
	p.progress++
	p.accepts++
	if p.accepts < p.Quorum {
		return false
	}
	p.phase = phaseDone
	return true
}

// GroupProposal drives one multi-object decree round: a batched MoveGroup
// cohort's location records, all sharing one shard replica set, commit
// under a single ballot with one set of prepare/accept messages instead of
// one round per member. Each slot still has exactly one proposer (the move
// source that created it), so per-slot safety reduces to the single-decree
// argument; the group exists purely to amortize the protocol messages. A
// replica promises or accepts a group only when every member slot passes
// its acceptor check, and the prepare reply carries per-slot accepted
// values so a retry after a partial earlier round adopts them slot by slot.
type GroupProposal struct {
	Slots  []Slot
	Values []int32 // desired home per slot, parallel to Slots
	Quorum int

	self     int32
	Ballot   uint64
	attempt  uint32
	maxSeen  uint64
	phase    int
	promises int
	accepts  int
	accBals  []uint64 // highest accepted ballot seen per slot
	accVals  []int32  // its value
	progress uint64
}

// NewGroupProposal builds a group proposal over the given slots and homes,
// sorted into canonical slot order (the order every replica and every
// rerun observes).
func NewGroupProposal(slots []Slot, values []int32, self int32, quorum int) *GroupProposal {
	idx := make([]int, len(slots))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return slots[idx[i]].Less(slots[idx[j]]) })
	ss := make([]Slot, len(slots))
	vs := make([]int32, len(slots))
	for i, k := range idx {
		ss[i] = slots[k]
		vs[i] = values[k]
	}
	g := &GroupProposal{Slots: ss, Values: vs, Quorum: quorum, self: self}
	g.accBals = make([]uint64, len(ss))
	g.accVals = make([]int32, len(ss))
	for i := range g.accVals {
		g.accVals[i] = -1
	}
	return g
}

// Start begins the next prepare round and returns its ballot (same ballot
// scheme as Proposal.Start).
func (g *GroupProposal) Start() uint64 {
	for {
		g.attempt++
		b := uint64(g.attempt)<<16 | uint64(uint16(g.self+1))
		if b > g.maxSeen {
			g.Ballot = b
			break
		}
		if g.maxSeen>>16 > uint64(g.attempt) {
			g.attempt = uint32(g.maxSeen >> 16)
		}
	}
	g.phase = phasePrepare
	g.promises = 0
	g.accepts = 0
	for i := range g.accBals {
		g.accBals[i] = 0
		g.accVals[i] = -1
	}
	return g.Ballot
}

// Attempt reports how many prepare rounds have started.
func (g *GroupProposal) Attempt() int { return int(g.attempt) }

// Progress counts replies that advanced the current round (see
// Proposal.Progress).
func (g *GroupProposal) Progress() uint64 { return g.progress }

// Done reports whether the group decree has been chosen.
func (g *GroupProposal) Done() bool { return g.phase == phaseDone }

// OnPromise processes one group promise (or nack). accBals/accVals are the
// replica's per-slot accepted state, parallel to Slots; nil on a nack.
// Returns true exactly once, at promise quorum.
func (g *GroupProposal) OnPromise(ballot uint64, ok bool, accBals []uint64, accVals []int32, promised uint64) bool {
	if !ok {
		if promised > g.maxSeen {
			g.maxSeen = promised
		}
		return false
	}
	if g.phase != phasePrepare || ballot != g.Ballot {
		return false
	}
	if len(accBals) != len(g.Slots) || len(accVals) != len(g.Slots) {
		return false // malformed reply; ignore
	}
	for i := range g.Slots {
		if accBals[i] > g.accBals[i] {
			g.accBals[i] = accBals[i]
			g.accVals[i] = accVals[i]
		}
	}
	g.progress++
	g.promises++
	if g.promises < g.Quorum {
		return false
	}
	g.phase = phaseAccept
	return true
}

// ChosenValues is the per-slot value vector for the accept phase: any
// value a quorum member already accepted wins over our own, slot by slot.
func (g *GroupProposal) ChosenValues() []int32 {
	out := make([]int32, len(g.Slots))
	for i := range g.Slots {
		if g.accBals[i] > 0 && g.accVals[i] >= 0 {
			out[i] = g.accVals[i]
			continue
		}
		out[i] = g.Values[i]
	}
	return out
}

// OnAccepted processes one group accepted (or nack) reply. Returns true
// exactly once, at accept quorum.
func (g *GroupProposal) OnAccepted(ballot uint64, ok bool, promised uint64) bool {
	if !ok {
		if promised > g.maxSeen {
			g.maxSeen = promised
		}
		return false
	}
	if g.phase != phaseAccept || ballot != g.Ballot {
		return false
	}
	g.progress++
	g.accepts++
	if g.accepts < g.Quorum {
		return false
	}
	g.phase = phaseDone
	return true
}
