// Package kernel is the per-node runtime of the system: objects and object
// tables, native-code threads and their distributed call stacks, monitors,
// local and remote invocation, and — the paper's contribution — object and
// native-code thread migration among heterogeneous nodes using bus stops
// and templates (§3.5).
//
// A Cluster is a deterministic simulation of a network of heterogeneous
// workstations (Figure 1): every node runs real byte-encoded machine code
// for its own ISA against its own byte-ordered memory; all cross-node
// traffic is genuinely serialized network-format bytes.
package kernel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/auto"
	"repro/internal/chaos"
	"repro/internal/codegen"
	"repro/internal/codesrv"
	"repro/internal/dir"
	"repro/internal/ir"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/wire"
)

// ConvMode selects the data-conversion regime, the axis of Table 1.
type ConvMode int

// Conversion regimes. The zero value is the paper's enhanced system.
const (
	// ModeEnhanced is the paper's system: everything is converted through
	// the machine-independent network format with per-value conversion
	// procedures, regardless of the peer's architecture.
	ModeEnhanced ConvMode = iota
	// ModeOriginal is the original homogeneous-only Emerald: machine words
	// travel raw, so source and destination architectures must match.
	ModeOriginal
	// ModeEnhancedBatched uses the efficient conversion routines the paper
	// predicts would halve the penalty (§3.6 ablation).
	ModeEnhancedBatched
	// ModeEnhancedFastPath converts only between unlike architectures,
	// taking the raw path for homogeneous pairs ([SC88] multi-protocol RPC).
	ModeEnhancedFastPath
)

func (m ConvMode) String() string {
	switch m {
	case ModeOriginal:
		return "original"
	case ModeEnhanced:
		return "enhanced"
	case ModeEnhancedBatched:
		return "enhanced-batched"
	case ModeEnhancedFastPath:
		return "enhanced-fastpath"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Costs are the kernel-side cycle costs of the simulation's cost model.
// They are calibrated against the paper's absolute Table 1 numbers; see
// EXPERIMENTS.md. Structural quantities (conversion calls, bytes, message
// counts, executed instructions) are measured, not assumed.
type Costs struct {
	// ConvCallCycles per conversion-procedure call (§3.6 driver).
	ConvCallCycles uint32
	// ConvCallsPerKB: the enhanced system's network-format layer performs
	// "an average of 1-2 calls of conversion procedures for each byte being
	// transferred" (§3.6); this is that density, in calls per 1024 payload
	// bytes, charged at each end of a converting transfer. The batched
	// converter halves it (the paper's ~50% guess).
	ConvCallsPerKB uint32
	// SendCycles / RecvCycles: per-message protocol + OS networking stack.
	SendCycles, RecvCycles uint32
	// PerByteCycles: copying/marshalling cost per payload byte.
	PerByteCycles uint32
	// CallCycles / RetCycles / PerArgCycles: local invocation service.
	CallCycles, RetCycles, PerArgCycles uint32
	// SyscallCycles: base cost of simple kernel services.
	SyscallCycles uint32
	// MigrateCycles: fixed per-object migration bookkeeping on each side.
	MigrateCycles uint32
}

// DefaultCosts is the calibrated cost model (see EXPERIMENTS.md for the
// calibration against Table 1).
func DefaultCosts() Costs {
	return Costs{
		ConvCallCycles: 907,
		ConvCallsPerKB: 768, // 0.75 calls per byte at each end (~1.9 measured overall)
		SendCycles:     170000,
		RecvCycles:     170000,
		PerByteCycles:  16,
		CallCycles:     60,
		RetCycles:      50,
		PerArgCycles:   6,
		SyscallCycles:  40,
		MigrateCycles:  15000,
	}
}

// Config configures a cluster.
type Config struct {
	Mode      ConvMode
	Costs     Costs
	MemBytes  int
	StackSize uint32
	// SliceInstrs bounds one scheduling slice (instructions).
	SliceInstrs int
	// SpecOverride substitutes custom architecture specs (register-home
	// ablations); nil uses arch.SpecOf. The program must have been compiled
	// with the same specs.
	SpecOverride func(arch.ID) *arch.Spec
	// VetOnLoad runs the mobility-soundness metadata passes (internal/vet)
	// over each code object the first time a node loads it, refusing the
	// load when an error-severity finding exists. A program with skewed
	// bus-stop tables or mismatched templates would otherwise corrupt the
	// first thread that migrates through it.
	VetOnLoad bool
	// LegacyDispatch forces the byte-at-a-time reference emulator
	// (arch.Step / arch.RunLegacy) instead of the predecoded instruction
	// cache. Observable behavior — traps, cycle counts, memory images,
	// printed output — is identical either way; the differential tests
	// flip this knob to prove it. The legacy path is ~7x slower.
	LegacyDispatch bool
	// NoFuse disables superinstruction fusion (arch.Fuse), keeping
	// dispatch on the plain predecoded path. Observable behavior is
	// identical — fusion only changes how fast the emulator moves
	// between bus stops — so this exists purely as a triage escape
	// hatch, mirroring LegacyDispatch. Implied by LegacyDispatch (no
	// predecoded cache means nothing to fuse).
	NoFuse bool
	// Trace, when set, receives kernel event lines (for debugging). It is
	// installed as a text sink over the structured event stream (see
	// internal/obs): every emitted event renders as one legacy-style line.
	Trace func(string)
	// EventRingCap bounds each node's retained-event ring (0 selects
	// obs.DefaultRingCap, negative disables event retention).
	EventRingCap int
	// Chaos, when non-nil, arms the deterministic fault plan (frame drops,
	// duplicates, delays, corruption, partitions, node crashes) and switches
	// the kernel to the crash-tolerant migration protocol: CRC'd sequence-
	// numbered acked frames with retransmission, two-phase commit for moves,
	// and heartbeat-based crash suspicion. When nil (the default) the wire
	// format and event stream are byte-identical to previous releases.
	Chaos *chaos.Plan
	// AutoPolicy, when non-empty, arms the adaptive-placement subsystem
	// (internal/auto) with the named policy: the cluster periodically builds
	// a metrics view, asks the policy for placement decisions, and executes
	// them as (batched cohort) migrations. Empty keeps the engine byte-
	// identical to a policy-free build — no extra metrics, events or
	// timers. Placement runs on the sequential engine only (the tick is a
	// cluster-level simulation event).
	AutoPolicy string
	// AutoPeriodMicros is the policy tick period (0 selects
	// DefaultAutoPeriodMicros).
	AutoPeriodMicros int64
	// AutoCohorts are class-name groups that migrate together, computed by
	// internal/pta group-cohort analysis (core translates site labels to
	// class names so the kernel needs no pta dependency).
	AutoCohorts [][]string
	// AutoPinned are class names the policy must never schedule (the
	// immobile-reach pinned constraint from internal/pta).
	AutoPinned []string
	// AutoNoBatch makes each policy decision move only the named object
	// instead of its whole cohort in one batched transfer. Escape hatch and
	// the control arm of the batching experiment (embench auto).
	AutoNoBatch bool
	// SharpenLiveSets uses the per-stop LiveVars masks the compiler embeds
	// in bus-stop tables to canonicalize statically dead int/real frame
	// slots (substituting the canonical zero word) while marshalling. The
	// wire format, converter call sequence, simulated charges and event
	// stream are byte-identical to the unsharpened path — only the payload
	// bits of words no execution can read change — so this is on by
	// default; cmd/emrun's -nosharpen flag clears it.
	SharpenLiveSets bool
	// DirReplicas, when > 0, arms the replicated object directory (emdir,
	// internal/dir): every move commit drives a single-decree Paxos round
	// recording the object's new home across that many replicas of its
	// shard, locates consult the directory first (one shard query instead
	// of a forwarding-address walk), and a background compactor rewrites
	// stale proxies. 0 (the default) keeps both engines byte-identical to a
	// directory-free build — no extra messages, metrics, events or timers.
	DirReplicas int
	// DirCompactPeriodMicros is the per-node compactor tick period (0
	// selects DefaultDirCompactMicros).
	DirCompactPeriodMicros int64
	// DirLeaseMicros, when > 0 with the directory armed, makes shard
	// replicas grant that many simulated microseconds of read lease on
	// every positive lookup reply: the asker caches the record and repeat
	// locates/invokes of a stable object skip the shard query entirely.
	// Leases are epoch-fenced and invalidated early by learned decrees and
	// by peer suspicion. 0 (the default) keeps lookup behavior identical
	// to the lease-free directory.
	DirLeaseMicros int64
	// DirNoGroupDecrees disables batched group decrees: each member of a
	// MoveGroup cohort then drives its own single-object decree round, as
	// before. Escape hatch and the control arm of the batching experiment
	// (embench dir).
	DirNoGroupDecrees bool
	// LinkLatencies adds per-link extra propagation latency to the netsim
	// topology (on top of the network's shared LatencyMicros; see
	// netsim.SetLinkExtraLatency). The directory's replica placement reads
	// this topology to prefer low-latency peers; an empty list keeps every
	// link uniform and the run byte-identical to a topology-free build.
	LinkLatencies []LinkLatency
}

// LinkLatency is one latency-skewed link of the cluster topology: extra
// microseconds of propagation latency between nodes A and B, both
// directions, on top of the shared per-frame latency.
type LinkLatency struct {
	A, B        int
	ExtraMicros int64
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{
		Mode:            ModeEnhanced,
		Costs:           DefaultCosts(),
		MemBytes:        8 << 20,
		StackSize:       64 << 10,
		SliceInstrs:     200000,
		SharpenLiveSets: true,
	}
}

// OutputLine is one print statement's output.
type OutputLine struct {
	Node int
	At   netsim.Micros
	Text string
}

// Fault records a thread that died from a runtime error.
type Fault struct {
	Node int
	At   netsim.Micros
	Frag uint32
	Msg  string
	// Err, when non-nil, types the failure cause (errors.Is against
	// ErrNodeDown distinguishes crash-induced faults from program errors).
	Err error
}

// Cluster is a simulated network of nodes executing one program.
type Cluster struct {
	Config
	Sim     *netsim.Sim
	Net     *netsim.Network
	Prog    *codegen.Program
	CodeSrv *codesrv.Server
	Nodes   []*Node

	// Rec is the cluster's observability recorder: structured events,
	// migration spans and the metrics registry (see internal/obs).
	Rec *obs.Recorder

	Output []OutputLine
	Faults []Fault

	// parallel is set while RunParallel drives the cluster: printed lines
	// and faults shard into per-node logs (merged afterwards) instead of
	// appending to the shared slices above.
	parallel bool

	// Adaptive-placement state (see auto.go); autoOn gates the policy-feed
	// metrics so policy-disabled runs stay byte-identical.
	autoOn     bool
	autoEng    *auto.Engine
	autoCohort map[string]map[string]bool
	autoPinned map[string]bool

	// Replicated-directory state (see dir.go); dirOn gates every directory
	// code path so directory-off runs stay byte-identical. dirPlace is the
	// per-shard replica set, computed once at arming time from the netsim
	// topology (locality-aware placement; uniform topologies reproduce the
	// historic consecutive sets).
	dirOn    bool
	dirCfg   dir.Config
	dirPlace [][]int
}

// NewCluster builds a cluster of the given machine models. In ModeOriginal
// all models must share one architecture.
func NewCluster(prog *codegen.Program, models []netsim.MachineModel, cfg Config) (*Cluster, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("kernel: need at least one node")
	}
	if cfg.Mode == ModeOriginal {
		for _, m := range models[1:] {
			if m.Arch != models[0].Arch {
				return nil, fmt.Errorf("kernel: the original system supports only homogeneous networks (%s vs %s)",
					arch.ID(models[0].Arch), arch.ID(m.Arch))
			}
		}
	}
	c := &Cluster{
		Config:  cfg,
		Sim:     netsim.NewSim(),
		Prog:    prog,
		CodeSrv: codesrv.New(prog),
		Rec:     obs.NewRecorder(len(models), cfg.EventRingCap),
	}
	if cfg.Trace != nil {
		c.Rec.SetTextSink(cfg.Trace)
	}
	c.Net = netsim.NewNetwork(c.Sim)
	c.Net.Observer = c.Rec
	for _, l := range cfg.LinkLatencies {
		if l.A < 0 || l.A >= len(models) || l.B < 0 || l.B >= len(models) {
			return nil, fmt.Errorf("kernel: link latency names node pair (%d,%d); cluster has %d nodes",
				l.A, l.B, len(models))
		}
		c.Net.SetLinkExtraLatency(l.A, l.B, netsim.Micros(l.ExtraMicros))
	}
	for i, m := range models {
		n := newNode(c, i, m)
		c.Nodes = append(c.Nodes, n)
		c.Net.Attach(i, n.deliver)
		c.Rec.SetNodeInfo(i, m.Name, arch.ID(m.Arch).String())
	}
	if cfg.Chaos != nil {
		if err := c.armChaos(cfg.Chaos); err != nil {
			return nil, err
		}
	}
	if cfg.AutoPolicy != "" {
		if err := c.armAuto(); err != nil {
			return nil, err
		}
	}
	if cfg.DirReplicas > 0 {
		c.armDir()
	}
	return c, nil
}

// armChaos installs the fault injector and schedules the plan's crashes,
// restarts and per-node heartbeats. All chaos timers are weak simulation
// events: they never keep an otherwise-finished simulation alive.
func (c *Cluster) armChaos(plan *chaos.Plan) error {
	c.Net.Inject = chaos.NewInjector(plan, c.Rec)
	c.Net.OnLost = func(at netsim.Micros, src, dst int) {
		c.Rec.Emit(obs.Event{At: int64(at), Node: int32(dst), Kind: obs.EvLinkDrop,
			B: uint64(src), Str: "down"})
	}
	for _, cr := range plan.Crashes {
		cr := cr
		if cr.Node < 0 || cr.Node >= len(c.Nodes) {
			return fmt.Errorf("kernel: chaos plan crashes node %d; cluster has %d nodes", cr.Node, len(c.Nodes))
		}
		c.Sim.AtNodeWeak(cr.Node, cr.At, func() { c.Nodes[cr.Node].crash() })
		if cr.RestartAt > 0 {
			c.Sim.AtNodeWeak(cr.Node, cr.RestartAt, func() { c.Nodes[cr.Node].restart() })
		}
	}
	for _, p := range plan.Partitions {
		if p.A < 0 || p.A >= len(c.Nodes) || p.B < 0 || p.B >= len(c.Nodes) {
			return fmt.Errorf("kernel: chaos plan partitions node pair %d-%d; cluster has %d nodes", p.A, p.B, len(c.Nodes))
		}
	}
	for _, n := range c.Nodes {
		n := n
		c.Sim.AtNodeWeak(n.ID, plan.HeartbeatPeriod(), n.heartbeatTick)
	}
	return nil
}

// converterFor returns the converter a node uses for a transfer to/from the
// peer architecture.
func (c *Cluster) converterFor(n *Node, peer arch.ID) wire.Converter {
	switch c.Mode {
	case ModeOriginal:
		return n.rawConv
	case ModeEnhancedBatched:
		return n.batchConv
	case ModeEnhancedFastPath:
		if peer == n.Spec.ID {
			return n.rawConv
		}
		return n.callConv
	default:
		return n.callConv
	}
}

// Start boots the program: the loader instantiates the object named "Main"
// (which must have a process section); other objects — including ones with
// process sections, which spawn their thread at creation — come to life via
// `new`. If no object is named Main, every object with a process section is
// instantiated as a root, in declaration order. placement maps root index
// to node id; nil places every root on node 0.
func (c *Cluster) Start(placement func(objName string, rootIdx int) int) {
	var roots []string
	if m := c.Prog.Object("Main"); m != nil && m.HasProcess {
		roots = []string{"Main"}
	} else {
		for _, oc := range c.Prog.Objects {
			if oc.HasProcess {
				roots = append(roots, oc.Name)
			}
		}
	}
	c.StartRoots(roots, placement)
}

// StartRoots instantiates the named objects as program roots.
func (c *Cluster) StartRoots(roots []string, placement func(objName string, rootIdx int) int) {
	for i, name := range roots {
		nodeID := 0
		if placement != nil {
			nodeID = placement(name, i)
		}
		n := c.Nodes[nodeID]
		name := name
		c.Sim.AtNode(nodeID, 0, func() { n.bootstrap(name) })
	}
}

// Run drives the simulation to completion (or the event budget).
func (c *Cluster) Run(maxEvents uint64) error { return c.Sim.Run(maxEvents) }

// RunParallel drives the simulation with one goroutine per node, using the
// network's minimum link latency as conservative lookahead. Observable
// results — printed lines, faults, events, spans, metrics, per-node
// counters — are identical to Run; see DESIGN.md §12 for the argument.
func (c *Cluster) RunParallel(maxEvents uint64) error {
	c.parallel = true
	err := c.Sim.RunParallel(c.Net, len(c.Nodes), maxEvents)
	c.parallel = false
	c.mergeShards()
	return err
}

// mergeShards folds the per-node output and fault shards accumulated during
// a parallel run into the shared cluster slices, in the canonical order the
// sequential engine produces: (At, Node, per-node emission order). A stable
// sort by At over the node-ordered concatenation yields exactly that.
func (c *Cluster) mergeShards() {
	for _, n := range c.Nodes {
		c.Output = append(c.Output, n.out...)
		c.Faults = append(c.Faults, n.faultLog...)
		n.out, n.faultLog = nil, nil
	}
	sort.SliceStable(c.Output, func(i, j int) bool { return c.Output[i].At < c.Output[j].At })
	sort.SliceStable(c.Faults, func(i, j int) bool { return c.Faults[i].At < c.Faults[j].At })
}

// PrintedLines returns all output text in order.
func (c *Cluster) PrintedLines() []string {
	out := make([]string, len(c.Output))
	for i, l := range c.Output {
		out[i] = l.Text
	}
	return out
}

// OutputText joins all printed lines.
func (c *Cluster) OutputText() string {
	return strings.Join(c.PrintedLines(), "\n")
}

// ConvStats sums conversion statistics over all nodes and converters,
// including the network-format layer's per-byte conversion calls.
func (c *Cluster) ConvStats() wire.Stats {
	var s wire.Stats
	for _, n := range c.Nodes {
		s.Add(n.callConv.Stats())
		s.Add(n.batchConv.Stats())
		s.Add(n.rawConv.Stats())
		s.Calls += n.ProtoConvCalls
	}
	return s
}

// LoadedFuncs counts functions loaded across all nodes (each node that
// loads a code object gets its own loadedFunc per function). Together
// with arch.FuseBuildCount it pins the fuse-once discipline: fusion
// happens at load, and migration re-install — which reuses the cached
// loadedCode — must never fuse again.
func (c *Cluster) LoadedFuncs() int {
	total := 0
	for _, n := range c.Nodes {
		total += len(n.descs)
	}
	return total
}

// BlockedThreads lists fragments that are still blocked (for deadlock
// diagnostics after Run).
func (c *Cluster) BlockedThreads() []string {
	var out []string
	for _, n := range c.Nodes {
		ids := make([]uint32, 0, len(n.frags))
		for id := range n.frags {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			f := n.frags[id]
			out = append(out, fmt.Sprintf("node%d frag%08x %s in %s",
				n.ID, f.ID, f.Status, f.topName()))
		}
	}
	return out
}

// trace emits a cluster-level free-form trace line into the event stream
// (the text sink renders it; formatting happens at most once).
func (c *Cluster) trace(format string, args ...any) {
	c.Rec.Textf(int64(c.Sim.Now()), -1, format, args...)
}

// tracef emits a node-attributed free-form trace line.
func (n *Node) tracef(format string, args ...any) {
	n.cluster.Rec.Textf(int64(n.now()), int32(n.ID), format, args...)
}

// MetricsSnapshot captures the cluster's metrics registry at the current
// simulated instant, folding in the per-node kernel statistics, per-kind
// conversion counters, and the network's traffic counters.
func (c *Cluster) MetricsSnapshot() obs.Snapshot {
	reg := c.Rec.Metrics()
	for _, n := range c.Nodes {
		lbl := obs.NodeLabels(n.ID, n.Spec.ID.String())
		reg.SetGauge("msgs_sent", lbl, int64(n.MsgsSent))
		reg.SetGauge("msgs_recv", lbl, int64(n.MsgsRecv))
		reg.SetGauge("instrs", lbl, int64(n.Instrs))
		reg.SetGauge("migrations", lbl, int64(n.Migrations))
		reg.SetGauge("proto_conv_calls", lbl, int64(n.ProtoConvCalls))
		reg.SetGauge("cpu_cycles", lbl, int64(n.CPU.Cycles))
		var s wire.Stats
		s.Add(n.callConv.Stats())
		s.Add(n.batchConv.Stats())
		s.Add(n.rawConv.Stats())
		reg.SetGauge("conv_calls", lbl+",kind=int", int64(s.IntCalls))
		reg.SetGauge("conv_calls", lbl+",kind=real", int64(s.RealCalls))
		reg.SetGauge("conv_calls", lbl+",kind=ref", int64(s.RefCalls))
		reg.SetGauge("conv_values", lbl+",kind=int", int64(s.IntVals))
		reg.SetGauge("conv_values", lbl+",kind=real", int64(s.RealVals))
		reg.SetGauge("conv_values", lbl+",kind=ref", int64(s.RefVals))
	}
	nc := c.Net.Counters()
	reg.SetGauge("net_frames", "", int64(nc.Frames))
	reg.SetGauge("net_wire_bytes", "", int64(nc.Bytes))
	reg.SetGauge("net_busy_micros", "", int64(nc.BusyMicros))
	return reg.Snapshot(int64(c.Sim.Now()))
}

// ---------------------------------------------------------------- objects

// ObjKind distinguishes heap object classes.
type ObjKind byte

// Object classes.
const (
	ObjPlain ObjKind = iota
	ObjArray
	ObjString
)

// Obj is one object-table entry: a resident object or a remote proxy.
type Obj struct {
	OID      oid.OID
	Kind     ObjKind
	Resident bool
	// Resident state.
	Addr     uint32 // header address in node memory
	TableIdx uint32
	Code     *loadedCode // plain objects
	ElemKind ir.VK       // arrays
	Len      uint32      // arrays/strings
	Fixed    bool
	Mon      *Monitor
	// Epoch counts the object's moves (a forwarding-address timestamp).
	Epoch uint32
	// Proxy state.
	LastKnown int
	// LocStale marks a proxy whose LastKnown points at a node that has been
	// suspected down since we learned it: the cached location may be a
	// dangling forwarding address. Directory-armed runs re-resolve such
	// proxies through the directory instead of retrying into the dead node.
	LocStale bool
	// chained marks a proxy this node has forwarded traffic through (it sits
	// inside a forwarding chain); the directory compactor rewrites chained
	// proxies to point at the decreed home so chains shrink to ≤1 hop.
	chained bool
	// transit is the in-flight two-phase move this object is the subject of
	// (chaos runs only): while set, the object is still resident here but
	// operations on it park on the transaction and replay after commit or
	// abort.
	transit *moveTxn
}

// Monitor is the per-object monitor: a lock with an entry queue and
// condition queues, in the style the paper's Emerald implements with
// doubly-linked lists (hence the VAX UNLINK, §3.3).
type Monitor struct {
	Holder *Frag
	Entry  []*Frag
	Conds  [][]*Frag
}

func newMonitor(conds int) *Monitor { return &Monitor{Conds: make([][]*Frag, conds)} }
