// Package vet statically checks the mobility-soundness of a compiled
// program: that the compiler-emitted metadata every node relies on during
// heterogeneous thread and object migration is mutually consistent.
//
// The paper's whole mechanism depends on invariants nothing at run time can
// re-derive: bus-stop tables must enumerate the same machine-independent
// program points on every ISA (§2.2.1, §3.3), activation and object
// templates must exactly describe the state the kernel marshals (§3.2), and
// the per-stop liveness information must match what the generated code
// actually leaves on the evaluation stack. A violation surfaces only as a
// corrupted thread mid-migration — the dominant failure class reported by
// later heterogeneous-migration systems. This package finds such violations
// at compile (or load) time instead.
//
// Checks are organized as named passes over a codegen.Program:
//
//   - stop-isomorphism: bus-stop tables are pairwise isomorphic across all
//     ISAs, and exit-only stops appear only where the ISA permits them
//     (atomic monitor exit);
//   - pc-alignment: every stop PC decodes to an instruction boundary and
//     follows an instruction of the matching trap class;
//   - liveness-consistency: per-stop temporary depth/kinds and push
//     behaviour agree with an independently recomputed ir.Analyze stack
//     map and the call/syscall signatures;
//   - template-coverage: templates cover every variable slot exactly once
//     with the right kinds, register homes are legal for the ISA, and the
//     saved-register area matches the homes (the marshalling/GC contract);
//   - IR dataflow lints: definite-assignment, unreachable code, dead
//     stores, and monitored-object reentrancy hazards.
//
// The metadata passes report errors (a program failing them must not be
// run, let alone migrated); the dataflow lints report warnings.
package vet

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/pta"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, in increasing order.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity converts a name ("info", "warning", "error") to a Severity.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return SevInfo, nil
	case "warning":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("vet: unknown severity %q (have info, warning, error)", name)
}

// Diagnostic is one finding of one pass, with enough locus information to
// point at the offending object, function, architecture and bus stop.
type Diagnostic struct {
	Pass   string
	Sev    Severity
	Object string // object name ("" for program-level findings)
	Func   string // function name within the object ("" if n/a)
	Arch   string // architecture name ("" for machine-independent findings)
	Stop   int    // bus-stop number, or -1
	Msg    string
}

// String renders the diagnostic in the stable single-line form used by the
// CLI and golden tests:
//
//	error: [liveness-consistency] Kilroy.tour [vax] stop 3: ...
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: [%s] ", d.Sev, d.Pass)
	if d.Func != "" {
		fmt.Fprintf(&b, "%s ", d.Func)
	} else if d.Object != "" {
		fmt.Fprintf(&b, "%s ", d.Object)
	}
	if d.Arch != "" {
		fmt.Fprintf(&b, "[%s] ", d.Arch)
	}
	if d.Stop >= 0 {
		fmt.Fprintf(&b, "stop %d: ", d.Stop)
	}
	b.WriteString(d.Msg)
	return b.String()
}

// MaxSeverity returns the highest severity among diags, or (0, false) when
// diags is empty.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return 0, false
	}
	m := diags[0].Sev
	for _, d := range diags[1:] {
		if d.Sev > m {
			m = d.Sev
		}
	}
	return m, true
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	m, ok := MaxSeverity(diags)
	return ok && m >= SevError
}

// Dedup merges diagnostics that differ only in architecture: the per-arch
// metadata passes repeat a systematic finding once per ISA, and reading
// the same message five times helps nobody. Merged findings carry the
// architecture names joined with "," in encounter order; everything else
// (order included) is preserved.
func Dedup(diags []Diagnostic) []Diagnostic {
	type key struct {
		pass   string
		sev    Severity
		object string
		fn     string
		stop   int
		msg    string
	}
	idx := map[key]int{}
	var out []Diagnostic
	for _, d := range diags {
		k := key{d.Pass, d.Sev, d.Object, d.Func, d.Stop, d.Msg}
		if i, ok := idx[k]; ok {
			if d.Arch != "" && !strings.Contains(","+out[i].Arch+",", ","+d.Arch+",") {
				if out[i].Arch == "" {
					out[i].Arch = d.Arch
				} else {
					out[i].Arch += "," + d.Arch
				}
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, d)
	}
	return out
}

// PassInfo names and documents one pass, for CLI listings and docs.
type PassInfo struct {
	Name string
	Doc  string
}

// Passes lists every pass in execution order.
func Passes() []PassInfo {
	return []PassInfo{
		{"stop-isomorphism", "bus-stop tables agree across ISAs; exit-only stops only where the ISA permits"},
		{"pc-alignment", "every stop PC is an instruction boundary after the matching trap instruction"},
		{"liveness-consistency", "per-stop temporaries and push behaviour match a recomputed IR stack map"},
		{"template-coverage", "activation/object templates cover every slot once with the right kinds and homes"},
		{"definite-assignment", "variables are assigned before use"},
		{"unreachable-code", "no unreachable IR instructions"},
		{"dead-store", "no stores to variables that are never subsequently read"},
		{"monitor-reentrancy", "monitored operations do not self-invoke monitored operations (deadlock)"},
		{"ptr-escape", "frame-local references captured into heap locations (fields, elements, results) outlive the activation"},
		{"dead-ptr-at-stop", "pointer locals marshaled at in-loop bus stops that no path reads afterwards (needless swizzling)"},
		{"immobile-reach", "process threads that can reach node-fixed objects (static placement constraint on group migration)"},
	}
}

// checker carries the state of one vet run.
type checker struct {
	prog    *codegen.Program
	specs   map[arch.ID]*arch.Spec
	diags   []Diagnostic
	pta     *pta.Result
	ptaDone bool
}

func newChecker(p *codegen.Program) *checker {
	c := &checker{prog: p, specs: map[arch.ID]*arch.Spec{}}
	for _, s := range p.Specs() {
		c.specs[s.ID] = s
	}
	return c
}

// specFor returns the spec the program was compiled against for id.
func (c *checker) specFor(id arch.ID) *arch.Spec {
	if s, ok := c.specs[id]; ok {
		return s
	}
	return arch.SpecOf(id)
}

func (c *checker) report(pass string, sev Severity, obj, fn string, archName string, stop int, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pass: pass, Sev: sev, Object: obj, Func: fn, Arch: archName, Stop: stop,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Check runs every pass over every object of the program.
func Check(p *codegen.Program) []Diagnostic {
	c := newChecker(p)
	for _, oc := range p.Objects {
		c.checkObject(oc)
	}
	return c.diags
}

// CheckObject runs every pass over a single compiled object.
func CheckObject(p *codegen.Program, oc *codegen.ObjectCode) []Diagnostic {
	c := newChecker(p)
	c.checkObject(oc)
	return c.diags
}

func (c *checker) checkObject(oc *codegen.ObjectCode) {
	c.stopIsomorphism(oc)
	c.objectTemplate(oc)
	for id := arch.ID(0); id < arch.NumArch; id++ {
		ac := oc.PerArch[id]
		if ac == nil {
			continue
		}
		c.checkArch(oc, ac)
	}
	c.lintObject(oc)
	c.ptaObject(oc)
}

// checkArch runs the per-architecture metadata passes over one object.
func (c *checker) checkArch(oc *codegen.ObjectCode, ac *codegen.ArchCode) {
	spec := c.specFor(ac.Arch)
	c.exitOnlyPlacement(oc, ac, spec)
	c.pcAlignment(oc, ac, spec)
	c.livenessConsistency(oc, ac, spec)
	c.templateCoverage(oc, ac, spec)
}

// VetForLoad checks one object's metadata for loading on one architecture:
// the cross-ISA isomorphism plus every per-arch metadata pass for spec. It
// returns a non-nil error when any error-severity finding exists — the
// kernel's code-load path uses it to refuse programs whose metadata would
// corrupt a migrating thread. Lints are skipped: style findings must not
// stop a load.
func VetForLoad(p *codegen.Program, oc *codegen.ObjectCode, spec *arch.Spec) error {
	c := newChecker(p)
	c.stopIsomorphism(oc)
	c.objectTemplate(oc)
	if ac := oc.PerArch[spec.ID]; ac != nil {
		c.exitOnlyPlacement(oc, ac, spec)
		c.pcAlignment(oc, ac, spec)
		c.livenessConsistency(oc, ac, spec)
		c.templateCoverage(oc, ac, spec)
	}
	var nErr int
	var first Diagnostic
	for _, d := range c.diags {
		if d.Sev >= SevError {
			if nErr == 0 {
				first = d
			}
			nErr++
		}
	}
	if nErr > 0 {
		more := ""
		if nErr > 1 {
			more = fmt.Sprintf(" (and %d more)", nErr-1)
		}
		return fmt.Errorf("vet: %s%s", first, more)
	}
	return nil
}
