package auto

import (
	"strings"
	"testing"
)

// view builds a View with the given objects on their nodes.
func view(now int64, nodes int, objs ...ObjInfo) View {
	return View{Now: now, Nodes: nodes, Instrs: make([]uint64, nodes), Objects: objs}
}

// TestGreedyColocateAccumulates: traffic below the MinCalls gate in any one
// window must still trigger a move once the accumulated total crosses it,
// and the moved object's history must reset.
func TestGreedyColocateAccumulates(t *testing.T) {
	eng := NewEngine(&GreedyColocate{MinCalls: 4, MaxMoves: 4}, Static{})
	obj := ObjInfo{OID: 9, Class: "Service", Node: 0}

	// Cumulative counters: 2 calls per window from node 1.
	for tick, cum := range []uint64{2, 4} {
		v := view(int64(tick+1)*1000, 2, obj)
		v.ObjCalls = []ObjCall{{OID: 9, Src: 1, Count: cum}}
		decs := eng.Tick(v)
		if tick == 0 && len(decs) != 0 {
			t.Fatalf("tick 0: decided %v below the accumulated gate", decs)
		}
		if tick == 1 {
			if len(decs) != 1 || decs[0].Obj != 9 || decs[0].To != 1 {
				t.Fatalf("tick 1: decisions = %v, want move obj 9 to node 1", decs)
			}
		}
	}

	// After the move (object now on node 1) the history restarted: the same
	// per-window trickle must not immediately bounce it back.
	obj.Node = 1
	v := view(3000, 2, obj)
	v.ObjCalls = []ObjCall{{OID: 9, Src: 0, Count: 2}} // delta 2 from node 0
	if decs := eng.Tick(v); len(decs) != 0 {
		t.Fatalf("post-move tick: decided %v from a reset accumulator", decs)
	}
}

// TestEnginePinnedAndInvalidFiltered: pinned objects and malformed targets
// never reach the decision log.
func TestEnginePinnedAndInvalidFiltered(t *testing.T) {
	eng := NewEngine(&GreedyColocate{MinCalls: 1, MaxMoves: 8}, Static{})
	v := view(1000, 2,
		ObjInfo{OID: 1, Class: "A", Node: 0, Pinned: true},
		ObjInfo{OID: 2, Class: "B", Node: 0})
	v.ObjCalls = []ObjCall{{OID: 1, Src: 1, Count: 10}, {OID: 2, Src: 1, Count: 10}}
	decs := eng.Tick(v)
	if len(decs) != 1 || decs[0].Obj != 2 {
		t.Fatalf("decisions = %v, want only the unpinned obj 2", decs)
	}
	if len(eng.Log()) != 1 || !strings.Contains(eng.Log()[0], "obj 2 (B)") {
		t.Fatalf("log = %v, want one line for obj 2", eng.Log())
	}
}

// TestLoadBalanceSheds: a hot node above the ratio sheds its hottest
// movable object to the coldest node, never a pinned one.
func TestLoadBalanceSheds(t *testing.T) {
	eng := NewEngine(&LoadBalance{MinInstrs: 1000, Ratio: 2}, Static{})
	v := view(1000, 3,
		ObjInfo{OID: 5, Class: "Hot", Node: 0, Pinned: true},
		ObjInfo{OID: 6, Class: "Warm", Node: 0})
	v.Instrs = []uint64{5000, 400, 100}
	v.ObjCalls = []ObjCall{{OID: 5, Src: 1, Count: 9}, {OID: 6, Src: 1, Count: 3}}
	decs := eng.Tick(v)
	if len(decs) != 1 || decs[0].Obj != 6 || decs[0].From != 0 || decs[0].To != 2 {
		t.Fatalf("decisions = %v, want unpinned obj 6 shed from node 0 to node 2", decs)
	}
	// Balanced load: no shed.
	v2 := view(2000, 3, ObjInfo{OID: 6, Class: "Warm", Node: 2})
	v2.Instrs = []uint64{6000, 1400, 1100} // deltas 1000/1000/1000
	if decs := eng.Tick(v2); len(decs) != 0 {
		t.Fatalf("balanced tick decided %v", decs)
	}
}

// TestNewRejectsUnknown: the constructor names its valid policies.
func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New("nope", Static{}); err == nil || !strings.Contains(err.Error(), "greedy-colocate") {
		t.Fatalf("New(nope) err = %v, want an error listing the policies", err)
	}
	for _, name := range Names() {
		if _, err := New(name, Static{}); err != nil {
			t.Errorf("New(%s): %v", name, err)
		}
	}
}
