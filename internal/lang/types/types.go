// Package types implements semantic analysis for the Emerald-subset
// language: name resolution, type checking, and frame-slot assignment.
//
// The checker produces an Info structure consumed by the native-code
// compiler (internal/codegen), the source interpreter and the byte-code
// compiler (internal/interp). All three back ends therefore agree on
// variable numbering — the property the paper's cross-architecture OID and
// template consistency depends on.
package types

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

// Kind enumerates the semantic type kinds.
type Kind int

// Semantic type kinds. Values of pointer kinds occupy reference slots and
// are swizzled when marshalled; scalar kinds are converted by value.
const (
	KVoid   Kind = iota // no value (statement-position invocations)
	KInt                // 32-bit signed integer
	KBool               // true/false
	KReal               // 32-bit floating point (VAX F-float on the VAX)
	KString             // immutable string object (pointer)
	KNode               // a node of the network (scalar node id)
	KCond               // monitor condition variable (per-object index)
	KNil                // type of `nil`, assignable to any pointer kind
	KAny                // dynamically typed reference
	KRef                // reference to an instance of a declared object
	KArray              // Array[Elem]
)

// Type is a semantic type.
type Type struct {
	Kind Kind
	Elem *Type           // for KArray
	Obj  *ast.ObjectDecl // for KRef
}

// Predeclared types.
var (
	Void   = &Type{Kind: KVoid}
	Int    = &Type{Kind: KInt}
	Bool   = &Type{Kind: KBool}
	Real   = &Type{Kind: KReal}
	String = &Type{Kind: KString}
	Node   = &Type{Kind: KNode}
	Cond   = &Type{Kind: KCond}
	Nil    = &Type{Kind: KNil}
	Any    = &Type{Kind: KAny}
)

// Ref returns the reference type of obj.
func Ref(obj *ast.ObjectDecl) *Type { return &Type{Kind: KRef, Obj: obj} }

// Array returns the array type with the given element type.
func Array(elem *Type) *Type { return &Type{Kind: KArray, Elem: elem} }

// IsPointer reports whether values of the type live in reference slots
// (and must be swizzled during migration).
func (t *Type) IsPointer() bool {
	switch t.Kind {
	case KString, KAny, KRef, KArray, KNil:
		return true
	}
	return false
}

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "Void"
	case KInt:
		return "Int"
	case KBool:
		return "Bool"
	case KReal:
		return "Real"
	case KString:
		return "String"
	case KNode:
		return "Node"
	case KCond:
		return "Condition"
	case KNil:
		return "Nil"
	case KAny:
		return "Any"
	case KRef:
		return t.Obj.Name
	case KArray:
		return "Array[" + t.Elem.String() + "]"
	}
	return fmt.Sprintf("Kind(%d)", int(t.Kind))
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KRef:
		return a.Obj == b.Obj
	case KArray:
		return Equal(a.Elem, b.Elem)
	}
	return true
}

// AssignableTo reports whether a value of type src may be stored in dst.
func AssignableTo(src, dst *Type) bool {
	if Equal(src, dst) {
		return true
	}
	if src.Kind == KNil && dst.IsPointer() {
		return true
	}
	if dst.Kind == KAny && src.IsPointer() {
		return true
	}
	if src.Kind == KAny && dst.IsPointer() {
		return true // dynamic downcast, checked at run time
	}
	if src.Kind == KInt && dst.Kind == KReal {
		return true // implicit widening
	}
	return false
}

// ---------------------------------------------------------------- symbols

// SymKind says where a symbol lives.
type SymKind int

// Symbol storage classes.
const (
	SymLocal  SymKind = iota // parameter, result, or local variable (frame slot)
	SymObjVar                // object variable (object data area slot)
	SymGlobal                // an object declaration name
)

// Symbol is a resolved name.
type Symbol struct {
	Name      string
	Kind      SymKind
	Type      *Type
	Index     int             // frame slot (SymLocal) or data slot (SymObjVar)
	Obj       *ast.ObjectDecl // for SymGlobal / owning object for SymObjVar
	Monitored bool            // SymObjVar declared in the monitor section
	IsResult  bool            // SymLocal that is an operation result
	CondIndex int             // for Condition-typed object vars: per-object condition number
}

// FuncKind discriminates the compiled function bodies of an object.
type FuncKind int

// Function kinds. Every object yields one Func per operation, plus an Init
// function (variable initializers followed by the `initially` block) and,
// when a process section is present, a Process function.
const (
	FuncOp FuncKind = iota
	FuncInit
	FuncProcess
)

// Func is one compilable function body: an operation, the creation-time
// initializer, or the process body.
type Func struct {
	Object    *ast.ObjectDecl
	Kind      FuncKind
	Op        *ast.OpDecl // nil unless Kind == FuncOp
	Body      *ast.Block  // nil Init bodies are synthesized by the builder
	Name      string      // e.g. "Counter.inc", "Main.$process"
	Params    []*Symbol
	Results   []*Symbol
	Locals    []*Symbol // declared locals, slot order
	NumSlots  int       // params + results + locals
	Monitored bool
}

// Slots returns all frame symbols in slot order (params, results, locals).
func (f *Func) Slots() []*Symbol {
	out := make([]*Symbol, 0, f.NumSlots)
	out = append(out, f.Params...)
	out = append(out, f.Results...)
	out = append(out, f.Locals...)
	return out
}

// InvokeTarget describes what an ast.Invoke resolved to.
type InvokeTarget struct {
	Builtin string      // non-empty for builtin calls (ast.Builtin*)
	Op      *ast.OpDecl // resolved operation for object invocations
	OnSelf  bool        // bare call dispatched to self
	Dynamic bool        // receiver is Any: operation looked up at run time
}

// Info is the result of checking a program.
type Info struct {
	Program *ast.Program
	Objects map[string]*ast.ObjectDecl
	// ObjVars maps each object to its data-area symbols in slot order.
	ObjVars map[*ast.ObjectDecl][]*Symbol
	// NumConds is the number of Condition variables per object.
	NumConds map[*ast.ObjectDecl]int
	// Funcs lists all compilable functions in deterministic order.
	Funcs []*Func
	// FuncOf finds the Func for an operation declaration.
	FuncOf map[*ast.OpDecl]*Func
	// InitOf / ProcessOf find the synthetic functions per object.
	InitOf    map[*ast.ObjectDecl]*Func
	ProcessOf map[*ast.ObjectDecl]*Func
	// Types records the type of every expression.
	Types map[ast.Expr]*Type
	// Uses resolves identifiers to symbols.
	Uses map[*ast.Ident]*Symbol
	// LocalDecls resolves local variable declarations to their symbols.
	LocalDecls map[*ast.VarDecl]*Symbol
	// Targets records invocation resolution.
	Targets map[*ast.Invoke]*InvokeTarget
}

// TypeOf returns the checked type of e (Void if unknown).
func (in *Info) TypeOf(e ast.Expr) *Type {
	if t, ok := in.Types[e]; ok {
		return t
	}
	return Void
}

// Error is a semantic error.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// ---------------------------------------------------------------- checker

type checker struct {
	info *Info
	errs ErrorList

	// current function context
	obj    *ast.ObjectDecl
	fn     *Func
	scopes []map[string]*Symbol // innermost last
	loops  int                  // nesting depth of loop/while
}

// Check performs semantic analysis of prog.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{info: &Info{
		Program:    prog,
		Objects:    map[string]*ast.ObjectDecl{},
		ObjVars:    map[*ast.ObjectDecl][]*Symbol{},
		NumConds:   map[*ast.ObjectDecl]int{},
		FuncOf:     map[*ast.OpDecl]*Func{},
		InitOf:     map[*ast.ObjectDecl]*Func{},
		ProcessOf:  map[*ast.ObjectDecl]*Func{},
		Types:      map[ast.Expr]*Type{},
		Uses:       map[*ast.Ident]*Symbol{},
		LocalDecls: map[*ast.VarDecl]*Symbol{},
		Targets:    map[*ast.Invoke]*InvokeTarget{},
	}}
	c.collect(prog)
	for _, od := range prog.Objects {
		c.checkObject(od)
	}
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 25 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// collect registers object names, data layouts and function shells so that
// bodies can reference objects and operations declared later.
func (c *checker) collect(prog *ast.Program) {
	for _, od := range prog.Objects {
		if prev, dup := c.info.Objects[od.Name]; dup {
			c.errorf(od.NamePos, "object %s redeclared (first at %s)", od.Name, prev.NamePos)
			continue
		}
		c.info.Objects[od.Name] = od
	}
	for _, od := range prog.Objects {
		c.collectObject(od)
	}
}

func (c *checker) collectObject(od *ast.ObjectDecl) {
	// Object variable layout: unmonitored then monitored, declaration order.
	conds := 0
	var syms []*Symbol
	addVar := func(vd *ast.VarDecl, monitored bool) {
		t := c.resolveType(vd.Type)
		s := &Symbol{
			Name: vd.Name, Kind: SymObjVar, Type: t,
			Index: len(syms), Obj: od, Monitored: monitored, CondIndex: -1,
		}
		if t.Kind == KCond {
			if !monitored {
				c.errorf(vd.VarPos, "Condition variable %s must be declared in a monitor section", vd.Name)
			}
			s.CondIndex = conds
			conds++
		}
		for _, prev := range syms {
			if prev.Name == vd.Name {
				c.errorf(vd.VarPos, "object variable %s redeclared", vd.Name)
			}
		}
		syms = append(syms, s)
	}
	for _, vd := range od.Vars {
		addVar(vd, false)
	}
	if od.Monitor != nil {
		for _, vd := range od.Monitor.Vars {
			addVar(vd, true)
		}
	}
	c.info.ObjVars[od] = syms
	c.info.NumConds[od] = conds

	// Function shells with parameter/result slots assigned.
	newFunc := func(kind FuncKind, op *ast.OpDecl, name string, body *ast.Block, monitored bool) *Func {
		f := &Func{Object: od, Kind: kind, Op: op, Body: body, Name: name, Monitored: monitored}
		if op != nil {
			for _, p := range op.Params {
				f.Params = append(f.Params, &Symbol{
					Name: p.Name, Kind: SymLocal, Type: c.resolveType(p.Type),
					Index: len(f.Params), CondIndex: -1,
				})
			}
			for _, r := range op.Results {
				f.Results = append(f.Results, &Symbol{
					Name: r.Name, Kind: SymLocal, Type: c.resolveType(r.Type),
					Index: len(f.Params) + len(f.Results), IsResult: true, CondIndex: -1,
				})
			}
		}
		c.info.Funcs = append(c.info.Funcs, f)
		return f
	}
	seen := map[string]token.Pos{}
	for _, op := range od.AllOps() {
		if pos, dup := seen[op.Name]; dup {
			c.errorf(op.OpPos, "operation %s redeclared in %s (first at %s)", op.Name, od.Name, pos)
		}
		seen[op.Name] = op.OpPos
		f := newFunc(FuncOp, op, od.Name+"."+op.Name, op.Body, op.Monitored)
		c.info.FuncOf[op] = f
	}
	// Init function always exists: variable initializers + initially block.
	c.info.InitOf[od] = newFunc(FuncInit, nil, od.Name+".$init", od.Initially, false)
	if od.Process != nil {
		c.info.ProcessOf[od] = newFunc(FuncProcess, nil, od.Name+".$process", od.Process, false)
	}
}

func (c *checker) resolveType(te *ast.TypeExpr) *Type {
	if te == nil {
		return Void
	}
	switch te.Name {
	case "Int":
		return Int
	case "Bool":
		return Bool
	case "Real":
		return Real
	case "String":
		return String
	case "Node":
		return Node
	case "Condition":
		return Cond
	case "Any":
		return Any
	case "Array":
		if te.Elem == nil {
			c.errorf(te.NamePos, "Array requires an element type")
			return Array(Int)
		}
		return Array(c.resolveType(te.Elem))
	}
	if od, ok := c.info.Objects[te.Name]; ok {
		return Ref(od)
	}
	c.errorf(te.NamePos, "unknown type %s", te.Name)
	return Any
}

// ---------------------------------------------------------------- objects

func (c *checker) checkObject(od *ast.ObjectDecl) {
	c.obj = od
	for _, op := range od.AllOps() {
		c.checkFunc(c.info.FuncOf[op])
	}
	c.checkFunc(c.info.InitOf[od])
	if f := c.info.ProcessOf[od]; f != nil {
		c.checkFunc(f)
	}
	c.obj = nil
}

func (c *checker) checkFunc(f *Func) {
	c.fn = f
	c.scopes = []map[string]*Symbol{{}}
	c.loops = 0
	for _, s := range f.Params {
		c.declare(token.Pos{Line: 1, Col: 1}, s)
	}
	for _, s := range f.Results {
		c.declare(token.Pos{Line: 1, Col: 1}, s)
	}
	if f.Kind == FuncInit {
		// Object variable initializers are part of the init function.
		for _, vd := range f.Object.AllVars() {
			if vd.Init != nil {
				sym := c.lookupObjVar(f.Object, vd.Name)
				t := c.checkExpr(vd.Init)
				if !AssignableTo(t, sym.Type) {
					c.errorf(vd.VarPos, "cannot initialize %s (%s) with %s", vd.Name, sym.Type, t)
				}
			}
		}
	}
	if f.Body != nil {
		c.checkBlock(f.Body)
	}
	f.NumSlots = len(f.Params) + len(f.Results) + len(f.Locals)
	c.fn = nil
}

func (c *checker) lookupObjVar(od *ast.ObjectDecl, name string) *Symbol {
	for _, s := range c.info.ObjVars[od] {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (c *checker) declare(pos token.Pos, s *Symbol) {
	scope := c.scopes[len(c.scopes)-1]
	if _, dup := scope[s.Name]; dup {
		c.errorf(pos, "%s redeclared in this scope", s.Name)
	}
	scope[s.Name] = s
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if c.obj != nil {
		if s := c.lookupObjVar(c.obj, name); s != nil {
			return s
		}
	}
	if od, ok := c.info.Objects[name]; ok {
		return &Symbol{Name: name, Kind: SymGlobal, Type: Ref(od), Obj: od, CondIndex: -1}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// ---------------------------------------------------------------- statements

func (c *checker) checkBlock(b *ast.Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		vd := s.Decl
		t := c.resolveType(vd.Type)
		if t.Kind == KCond {
			c.errorf(vd.VarPos, "Condition variables must be object variables in a monitor section")
		}
		sym := &Symbol{
			Name: vd.Name, Kind: SymLocal, Type: t,
			Index:     len(c.fn.Params) + len(c.fn.Results) + len(c.fn.Locals),
			CondIndex: -1,
		}
		c.fn.Locals = append(c.fn.Locals, sym)
		c.info.LocalDecls[vd] = sym
		if vd.Init != nil {
			it := c.checkExpr(vd.Init)
			if !AssignableTo(it, t) {
				c.errorf(vd.VarPos, "cannot initialize %s (%s) with %s", vd.Name, t, it)
			}
		}
		c.declare(vd.VarPos, sym)
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		c.requireBool(s.Cond)
		c.checkBlock(s.Then)
		for _, e := range s.Elifs {
			c.requireBool(e.Cond)
			c.checkBlock(e.Then)
		}
		if s.Else != nil {
			c.checkBlock(s.Else)
		}
	case *ast.LoopStmt:
		c.loops++
		c.checkBlock(s.Body)
		c.loops--
	case *ast.WhileStmt:
		c.requireBool(s.Cond)
		c.loops++
		c.checkBlock(s.Body)
		c.loops--
	case *ast.ExitStmt:
		if c.loops == 0 {
			c.errorf(s.ExitPos, "exit outside loop")
		}
		if s.When != nil {
			c.requireBool(s.When)
		}
	case *ast.ReturnStmt:
		// Always legal; in a process it terminates the thread.
	case *ast.MoveStmt:
		t := c.checkExpr(s.X)
		if !t.IsPointer() {
			c.errorf(s.MovePos, "move requires an object reference, got %s", t)
		}
		c.requireNode(s.To)
	case *ast.FixStmt:
		t := c.checkExpr(s.X)
		if !t.IsPointer() {
			c.errorf(s.FixPos, "fix requires an object reference, got %s", t)
		}
		c.requireNode(s.At)
	case *ast.UnfixStmt:
		t := c.checkExpr(s.X)
		if !t.IsPointer() {
			c.errorf(s.UnfixPos, "unfix requires an object reference, got %s", t)
		}
	case *ast.WaitStmt:
		c.checkCondUse(s.Cond, s.WaitPos, "wait")
	case *ast.SignalStmt:
		c.checkCondUse(s.Cond, s.SigPos, "signal")
	default:
		panic(fmt.Sprintf("types: unknown statement %T", s))
	}
}

func (c *checker) checkCondUse(e ast.Expr, pos token.Pos, what string) {
	t := c.checkExpr(e)
	if t.Kind != KCond {
		c.errorf(pos, "%s requires a Condition variable, got %s", what, t)
		return
	}
	if !c.fn.Monitored {
		c.errorf(pos, "%s may only be used inside a monitored operation", what)
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt) {
	rt := c.checkExpr(s.Rhs)
	switch lhs := s.Lhs.(type) {
	case *ast.Ident:
		sym := c.lookup(lhs.Name)
		if sym == nil {
			c.errorf(lhs.NamePos, "undefined: %s", lhs.Name)
			return
		}
		c.info.Uses[lhs] = sym
		c.info.Types[lhs] = sym.Type
		if sym.Kind == SymGlobal {
			c.errorf(lhs.NamePos, "cannot assign to object name %s", lhs.Name)
			return
		}
		if sym.Type.Kind == KCond {
			c.errorf(lhs.NamePos, "cannot assign to Condition variable %s", lhs.Name)
			return
		}
		if sym.Kind == SymObjVar {
			if c.fn.Object != sym.Obj {
				c.errorf(lhs.NamePos, "cannot assign to %s.%s from outside", sym.Obj.Name, lhs.Name)
			}
			if c.fn.Op != nil && c.fn.Op.Function {
				c.errorf(lhs.NamePos, "function %s may not assign to object variable %s", c.fn.Op.Name, lhs.Name)
			}
			if sym.Monitored && !c.fn.Monitored && c.fn.Kind == FuncOp {
				c.errorf(lhs.NamePos, "monitored variable %s assigned outside the monitor", lhs.Name)
			}
		}
		if !AssignableTo(rt, sym.Type) {
			c.errorf(lhs.NamePos, "cannot assign %s to %s (%s)", rt, lhs.Name, sym.Type)
		}
	case *ast.Index:
		at := c.checkExpr(lhs.X)
		c.requireInt(lhs.I)
		if at.Kind != KArray {
			c.errorf(lhs.LBPos, "indexed assignment requires an array, got %s", at)
			return
		}
		c.info.Types[lhs] = at.Elem
		if !AssignableTo(rt, at.Elem) {
			c.errorf(lhs.LBPos, "cannot assign %s to element of %s", rt, at)
		}
	default:
		c.errorf(s.Lhs.Pos(), "invalid assignment target")
	}
}

func (c *checker) requireBool(e ast.Expr) {
	if t := c.checkExpr(e); t.Kind != KBool {
		c.errorf(e.Pos(), "condition must be Bool, got %s", t)
	}
}

func (c *checker) requireInt(e ast.Expr) {
	if t := c.checkExpr(e); t.Kind != KInt {
		c.errorf(e.Pos(), "expected Int, got %s", t)
	}
}

func (c *checker) requireNode(e ast.Expr) {
	if t := c.checkExpr(e); t.Kind != KNode {
		c.errorf(e.Pos(), "expected Node, got %s", t)
	}
}

// ---------------------------------------------------------------- expressions

func (c *checker) checkExpr(e ast.Expr) *Type {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return Int
	case *ast.RealLit:
		return Real
	case *ast.StringLit:
		return String
	case *ast.BoolLit:
		return Bool
	case *ast.NilLit:
		return Nil
	case *ast.SelfExpr:
		if c.obj == nil {
			c.errorf(e.SelfPos, "self outside object")
			return Any
		}
		return Ref(c.obj)
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.NamePos, "undefined: %s", e.Name)
			return Any
		}
		c.info.Uses[e] = sym
		if sym.Kind == SymObjVar {
			if c.fn.Object != sym.Obj {
				c.errorf(e.NamePos, "cannot access %s.%s from outside", sym.Obj.Name, e.Name)
			} else if sym.Monitored && !c.fn.Monitored && c.fn.Kind == FuncOp {
				c.errorf(e.NamePos, "monitored variable %s read outside the monitor", e.Name)
			}
		}
		if sym.Kind == SymGlobal {
			c.errorf(e.NamePos, "object name %s is not a value; use `new %s`", e.Name, e.Name)
			return sym.Type
		}
		return sym.Type
	case *ast.Unary:
		t := c.checkExpr(e.X)
		switch e.Op {
		case token.Minus:
			if t.Kind != KInt && t.Kind != KReal {
				c.errorf(e.OpPos, "operator - requires Int or Real, got %s", t)
				return Int
			}
			return t
		case token.Not:
			if t.Kind != KBool {
				c.errorf(e.OpPos, "operator ! requires Bool, got %s", t)
			}
			return Bool
		}
		return Void
	case *ast.Binary:
		return c.checkBinary(e)
	case *ast.Invoke:
		return c.checkInvoke(e, false)
	case *ast.New:
		return c.checkNew(e)
	case *ast.Index:
		at := c.checkExpr(e.X)
		c.requireInt(e.I)
		switch at.Kind {
		case KArray:
			return at.Elem
		case KString:
			return Int // byte value
		}
		c.errorf(e.LBPos, "cannot index %s", at)
		return Int
	}
	panic(fmt.Sprintf("types: unknown expression %T", e))
}

func (c *checker) checkBinary(e *ast.Binary) *Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	switch e.Op {
	case token.Plus:
		if xt.Kind == KString && yt.Kind == KString {
			return String
		}
		fallthrough
	case token.Minus, token.Star, token.Slash, token.Percent:
		if xt.Kind == KInt && yt.Kind == KInt {
			return Int
		}
		num := func(t *Type) bool { return t.Kind == KInt || t.Kind == KReal }
		if num(xt) && num(yt) && e.Op != token.Percent {
			return Real
		}
		c.errorf(e.X.Pos(), "operator %s not defined on %s and %s", e.Op, xt, yt)
		return Int
	case token.Eq, token.NotEq:
		ok := Equal(xt, yt) ||
			(xt.IsPointer() && yt.IsPointer()) ||
			(xt.Kind == KInt && yt.Kind == KReal) || (xt.Kind == KReal && yt.Kind == KInt)
		if !ok {
			c.errorf(e.X.Pos(), "cannot compare %s and %s", xt, yt)
		}
		return Bool
	case token.Lt, token.Le, token.Gt, token.Ge:
		ok := (xt.Kind == KInt || xt.Kind == KReal) && (yt.Kind == KInt || yt.Kind == KReal) ||
			xt.Kind == KString && yt.Kind == KString
		if !ok {
			c.errorf(e.X.Pos(), "operator %s not defined on %s and %s", e.Op, xt, yt)
		}
		return Bool
	case token.And, token.Or:
		if xt.Kind != KBool || yt.Kind != KBool {
			c.errorf(e.X.Pos(), "operator %s requires Bool operands", e.Op)
		}
		return Bool
	}
	c.errorf(e.X.Pos(), "unknown operator %s", e.Op)
	return Void
}

func (c *checker) checkNew(e *ast.New) *Type {
	t := c.resolveType(e.Type)
	switch t.Kind {
	case KArray:
		if len(e.Args) != 1 {
			c.errorf(e.NewPos, "new Array[...] takes exactly one length argument")
		} else {
			c.requireInt(e.Args[0])
		}
		return t
	case KRef:
		vars := c.info.ObjVars[t.Obj]
		if len(e.Args) > len(vars) {
			c.errorf(e.NewPos, "new %s: %d arguments for %d object variables", t.Obj.Name, len(e.Args), len(vars))
			return t
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if !AssignableTo(at, vars[i].Type) {
				c.errorf(a.Pos(), "new %s: argument %d has type %s, variable %s is %s",
					t.Obj.Name, i+1, at, vars[i].Name, vars[i].Type)
			}
		}
		return t
	}
	c.errorf(e.NewPos, "cannot create value of type %s", t)
	return t
}

// builtinSig describes a builtin's arity and result.
type builtinSig struct {
	params []*Type // nil means variadic-any (print)
	result *Type
}

var builtins = map[string]builtinSig{
	ast.BuiltinPrint:    {params: nil, result: Void},
	ast.BuiltinNodes:    {params: []*Type{}, result: Int},
	ast.BuiltinThisNode: {params: []*Type{}, result: Node},
	ast.BuiltinNodeAt:   {params: []*Type{Int}, result: Node},
	ast.BuiltinLocate:   {params: []*Type{Any}, result: Node},
	ast.BuiltinTimeMS:   {params: []*Type{}, result: Int},
	ast.BuiltinYield:    {params: []*Type{}, result: Void},
	ast.BuiltinStr:      {params: []*Type{Any}, result: String}, // Any here means Int/Real/Bool/Node
	ast.BuiltinAbs:      {params: []*Type{Int}, result: Int},
}

func (c *checker) checkInvoke(e *ast.Invoke, _ bool) *Type {
	if e.Recv == nil {
		// Bare call: self-operation first, then builtin.
		if c.obj != nil && c.obj.Op(e.OpName) != nil {
			op := c.obj.Op(e.OpName)
			c.info.Targets[e] = &InvokeTarget{Op: op, OnSelf: true}
			return c.checkOpCall(e, op)
		}
		sig, ok := builtins[e.OpName]
		if !ok {
			c.errorf(e.OpPos, "undefined operation or builtin %s", e.OpName)
			return Any
		}
		c.info.Targets[e] = &InvokeTarget{Builtin: e.OpName}
		return c.checkBuiltin(e, sig)
	}
	rt := c.checkExpr(e.Recv)
	switch rt.Kind {
	case KArray:
		if e.OpName == ast.BuiltinSize {
			if len(e.Args) != 0 {
				c.errorf(e.OpPos, "size() takes no arguments")
			}
			c.info.Targets[e] = &InvokeTarget{Builtin: ast.BuiltinSize}
			return Int
		}
		c.errorf(e.OpPos, "arrays have no operation %s", e.OpName)
		return Any
	case KString:
		if e.OpName == ast.BuiltinSize {
			if len(e.Args) != 0 {
				c.errorf(e.OpPos, "size() takes no arguments")
			}
			c.info.Targets[e] = &InvokeTarget{Builtin: ast.BuiltinSize}
			return Int
		}
		c.errorf(e.OpPos, "strings have no operation %s", e.OpName)
		return Any
	case KRef:
		op := rt.Obj.Op(e.OpName)
		if op == nil {
			c.errorf(e.OpPos, "%s has no operation %s", rt.Obj.Name, e.OpName)
			return Any
		}
		c.info.Targets[e] = &InvokeTarget{Op: op}
		return c.checkOpCall(e, op)
	case KAny:
		// Dynamic dispatch: arguments are checked for arity at run time.
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		c.info.Targets[e] = &InvokeTarget{Dynamic: true}
		return Any
	}
	c.errorf(e.OpPos, "cannot invoke %s on %s", e.OpName, rt)
	return Any
}

func (c *checker) checkOpCall(e *ast.Invoke, op *ast.OpDecl) *Type {
	f := c.info.FuncOf[op]
	if len(e.Args) != len(f.Params) {
		c.errorf(e.OpPos, "%s takes %d arguments, got %d", op.Name, len(f.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(f.Params) && !AssignableTo(at, f.Params[i].Type) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, op.Name, at, f.Params[i].Type)
		}
	}
	switch len(f.Results) {
	case 0:
		return Void
	case 1:
		return f.Results[0].Type
	default:
		// Multiple results only usable in statement position; expression use
		// yields the first result.
		return f.Results[0].Type
	}
}

func (c *checker) checkBuiltin(e *ast.Invoke, sig builtinSig) *Type {
	if sig.params == nil { // print: variadic
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return sig.result
	}
	if len(e.Args) != len(sig.params) {
		c.errorf(e.OpPos, "%s takes %d arguments, got %d", e.OpName, len(sig.params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i >= len(sig.params) {
			continue
		}
		want := sig.params[i]
		switch e.OpName {
		case ast.BuiltinLocate:
			if !at.IsPointer() {
				c.errorf(a.Pos(), "locate requires an object reference, got %s", at)
			}
		case ast.BuiltinStr:
			switch at.Kind {
			case KInt, KReal, KBool, KNode, KString:
			default:
				c.errorf(a.Pos(), "str cannot format %s", at)
			}
		default:
			if !AssignableTo(at, want) {
				c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, e.OpName, at, want)
			}
		}
	}
	return sig.result
}
