package kernel

import (
	"testing"

	"repro/internal/netsim"
)

// runAndCollect runs src on one SPARC node and collects afterwards.
func runAndCollect(t *testing.T, src string, models []netsim.MachineModel) (*Cluster, GCStats) {
	t.Helper()
	c := runSrc(t, src, models, DefaultConfig())
	stats, err := c.CollectAll()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return c, stats
}

func TestGCReclaimsGarbage(t *testing.T) {
	// The loop allocates 200 strings and 50 arrays that all become garbage.
	c, stats := runAndCollect(t, `
object Main
  process
    var keep: String <- "keeper"
    var i: Int <- 0
    while i < 50 do
      var s: String <- "garbage " + str(i)
      var a: Array[Int] <- new Array[Int](16)
      a[0] <- s.size()
      i <- i + 1
    end
    print(keep)
  end process
end Main
`, []netsim.MachineModel{mSPARC})
	if stats.Freed < 100 {
		t.Errorf("freed only %d objects", stats.Freed)
	}
	if stats.BytesFreed == 0 {
		t.Error("no bytes reclaimed")
	}
	_ = c
}

// gcProbeSrc builds a reachability web and parks the thread on a condition
// so that live data is held only through frames, registers, temps and
// object slots when the collector runs.
const gcProbeSrc = `
object NodeObj
  var next: NodeObj
  var tag: String
  operation setNext(x: NodeObj)
    next <- x
  end
  function getTag() -> (r: String)
    r <- tag
  end
  function getNext() -> (r: NodeObj)
    r <- next
  end
end NodeObj
object Main
  var chainHead: NodeObj
  process
    var a: NodeObj <- new NodeObj(nil, "a")
    var b: NodeObj <- new NodeObj(nil, "b")
    var c: NodeObj <- new NodeObj(nil, "c")
    a.setNext(b)
    b.setNext(c)
    chainHead <- a
    // Drop direct refs to b and c; they stay live only through the chain.
    b <- nil
    c <- nil
    var dead: NodeObj <- new NodeObj(nil, "dead")
    dead <- nil
    yield()
    print(chainHead.getNext().getNext().getTag())
  end process
end Main
`

func TestGCKeepsReachableChains(t *testing.T) {
	p := compileSrc(t, gcProbeSrc)
	c, err := NewCluster(p, []netsim.MachineModel{mSPARC}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start(nil)
	// Run a while, collect mid-flight at every quiesce point, keep running.
	for i := 0; i < 50; i++ {
		if !c.Sim.Step() {
			break
		}
		if i%10 == 0 {
			if _, err := c.Nodes[0].Collect(); err != nil {
				t.Fatalf("collect at step %d: %v", i, err)
			}
		}
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for _, f := range c.Faults {
		t.Fatalf("fault: %+v", f)
	}
	if got := c.OutputText(); got != "c" {
		t.Errorf("output = %q (chain broken by the collector?)", got)
	}
}

func TestGCPinsExportedObjects(t *testing.T) {
	// An object moved away and back leaves its OID known remotely; local
	// garbage collection must never reclaim objects the network may
	// reference. The remote node holds no live frames for it, but its copy
	// of the proxy keeps the OID meaningful.
	c := runSrc(t, `
object Box
  var v: Int <- 77
  function get() -> (r: Int)
    r <- v
  end
end Box
object Main
  var keep: Box
  process
    keep <- new Box
    move keep to node(1)
    yield()
    print(keep.get())
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	// After the run, node1 holds the Box with no local thread referencing
	// it — only Main's slot on node0 does. Collecting node1 must keep it.
	before := c.Nodes[1].HeapObjects()
	stats, err := c.Nodes[1].Collect()
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	// The box itself must survive (it is exported: node0 references it).
	found := false
	for _, o := range c.Nodes[1].objects {
		if o.Resident && o.Kind == ObjPlain && o.Code.oc.Name == "Box" {
			found = true
		}
	}
	if !found {
		t.Errorf("exported Box was collected (freed %d)", stats.Freed)
	}
}

func TestGCSurvivesThenProgramStillRuns(t *testing.T) {
	// Collect between scheduler steps throughout a monitor-heavy program;
	// the program must still complete correctly.
	src := `
object Buffer
  monitor
    var item: Int <- 0
    var full: Bool <- false
    var nonempty: Condition
    var nonfull: Condition
    operation put(x: Int)
      while full do
        wait nonfull
      end
      item <- x
      full <- true
      signal nonempty
    end
    operation take() -> (r: Int)
      while !full do
        wait nonempty
      end
      r <- item
      full <- false
      signal nonfull
    end
  end monitor
end Buffer
object Producer
  var buf: Buffer
  process
    var i: Int <- 1
    while i <= 5 do
      buf.put(i)
      i <- i + 1
    end
  end process
end Producer
object Main
  var buf: Buffer
  initially
    buf <- new Buffer
  end initially
  process
    var p: Producer <- new Producer(buf)
    var sum: Int <- 0
    var i: Int <- 0
    while i < 5 do
      sum <- sum + buf.take()
      i <- i + 1
    end
    print(sum, " ", p == nil)
  end process
end Main
`
	p := compileSrc(t, src)
	c, err := NewCluster(p, []netsim.MachineModel{mSun3}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start(nil)
	steps := 0
	for c.Sim.Step() {
		steps++
		if steps%7 == 0 {
			if _, err := c.Nodes[0].Collect(); err != nil {
				t.Fatalf("collect: %v", err)
			}
		}
		if steps > 5_000_000 {
			t.Fatal("livelock")
		}
	}
	for _, f := range c.Faults {
		t.Fatalf("fault: %+v", f)
	}
	if got := c.OutputText(); got != "15 false" {
		t.Errorf("output = %q", got)
	}
}

func TestGCFreeListReuse(t *testing.T) {
	c := runSrc(t, `
object Main
  process
    var i: Int <- 0
    while i < 20 do
      var a: Array[Int] <- new Array[Int](8)
      a[0] <- i
      i <- i + 1
    end
    print("done")
  end process
end Main
`, []netsim.MachineModel{mSPARC}, DefaultConfig())
	n := c.Nodes[0]
	heapBefore := n.heapNext
	if _, err := n.Collect(); err != nil {
		t.Fatal(err)
	}
	// Allocate the same shape again: must come from the free list, not
	// grow the heap.
	a1, err := n.newArray(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n.heapNext != heapBefore {
		t.Errorf("heap grew (%d -> %d) despite free list", heapBefore, n.heapNext)
	}
	if a1.Len != 8 {
		t.Error("reused block corrupted")
	}
	// Reused memory must be zeroed.
	for i := 0; i < 8; i++ {
		if n.ld32(a1.slotAddr(i)) != 0 {
			t.Errorf("reused array slot %d not zeroed", i)
		}
	}
}
