package interp

import (
	"testing"

	"repro/internal/lang/ast"
)

func TestSchedulerFIFOAndDeterminism(t *testing.T) {
	rt := NewRT()
	var log []int
	for i := 0; i < 3; i++ {
		i := i
		rt.Spawn(func(th *Thread) {
			log = append(log, i*10)
			rt.Yield()
			log = append(log, i*10+1)
		})
	}
	rt.Run()
	want := []int{0, 10, 20, 1, 11, 21}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	rt := NewRT()
	obj := &Object{}
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		rt.Spawn(func(th *Thread) {
			rt.MonEnter(obj)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			rt.Yield() // try to let others in while holding the monitor
			inside--
			rt.MonExit(obj)
		})
	}
	rt.Run()
	if maxInside != 1 {
		t.Errorf("monitor admitted %d threads at once", maxInside)
	}
}

func TestConditionWaitSignal(t *testing.T) {
	rt := NewRT()
	obj := &Object{}
	var log []string
	rt.Spawn(func(th *Thread) {
		rt.MonEnter(obj)
		log = append(log, "waiter-in")
		rt.Wait(obj, 0)
		log = append(log, "waiter-resumed")
		rt.MonExit(obj)
	})
	rt.Spawn(func(th *Thread) {
		rt.MonEnter(obj)
		log = append(log, "signaller")
		rt.Signal(obj, 0)
		rt.MonExit(obj)
	})
	rt.Run()
	want := []string{"waiter-in", "signaller", "waiter-resumed"}
	if len(log) != 3 || log[0] != want[0] || log[1] != want[1] || log[2] != want[2] {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestSignalWithoutWaiterIsNoop(t *testing.T) {
	rt := NewRT()
	obj := &Object{}
	rt.Spawn(func(th *Thread) {
		rt.MonEnter(obj)
		rt.Signal(obj, 0)
		rt.Signal(obj, 5) // out-of-range condition index: still a no-op
		rt.MonExit(obj)
	})
	rt.Run()
	if len(rt.Faults) != 0 {
		t.Errorf("faults = %v", rt.Faults)
	}
}

func TestFaultIsolation(t *testing.T) {
	rt := NewRT()
	var survived bool
	rt.Spawn(func(th *Thread) { Faultf("boom %d", 1) })
	rt.Spawn(func(th *Thread) { survived = true })
	rt.Run()
	if len(rt.Faults) != 1 || rt.Faults[0] != "boom 1" {
		t.Errorf("faults = %v", rt.Faults)
	}
	if !survived {
		t.Error("second thread did not run after the first faulted")
	}
}

func TestMonitorMisuseFaults(t *testing.T) {
	rt := NewRT()
	obj := &Object{}
	rt.Spawn(func(th *Thread) { rt.MonExit(obj) })
	rt.Spawn(func(th *Thread) { rt.Wait(obj, 0) })
	rt.Spawn(func(th *Thread) { rt.Signal(obj, 0) })
	rt.Run()
	if len(rt.Faults) != 3 {
		t.Errorf("faults = %v", rt.Faults)
	}
}

func TestFormatValue(t *testing.T) {
	decl := &ast.ObjectDecl{Name: "Thing"}
	cases := map[string]any{
		"nil": nil, "42": int32(42), "true": true, "false": false,
		"1.5": float32(1.5), "node3": NodeVal(3), "hi": "hi",
		"<Thing>": &Object{Decl: decl}, "<array>": &Array{},
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestAsIntAndAsReal(t *testing.T) {
	if AsInt(int32(5)) != 5 || AsInt(true) != 1 || AsInt(false) != 0 ||
		AsInt(NodeVal(2)) != 2 || AsInt(CondVal(3)) != 3 {
		t.Error("AsInt conversions wrong")
	}
	if AsReal(float32(1.5)) != 1.5 || AsReal(int32(4)) != 4 {
		t.Error("AsReal conversions wrong")
	}
	// Mistyped values fault.
	rt := NewRT()
	rt.Spawn(func(th *Thread) { _ = AsInt("not an int") })
	rt.Spawn(func(th *Thread) { _ = AsReal("nope") })
	rt.Spawn(func(th *Thread) { _ = Truthy(int32(1)) })
	rt.Run()
	if len(rt.Faults) != 3 {
		t.Errorf("faults = %v", rt.Faults)
	}
}
