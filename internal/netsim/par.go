// The parallel engine (empar): conservative parallel discrete-event
// execution with the network's per-frame latency as lookahead.
//
// The engine is a barrier-window design. Let L = Network.LatencyMicros and
// T = the earliest pending event anywhere. Every frame sent at a time
// t ≥ T is delivered no earlier than t + L ≥ T + L, so all events in the
// window [T, T+L) are causally independent across nodes: each node's
// goroutine can drain its own queue through the window without observing
// any other node. At the barrier the coordinator arbitrates the window's
// sends on the shared medium — in the exact order the sequential engine
// would have issued them — inserts the resulting deliveries, and opens the
// next window.
//
// Determinism: both engines execute events in the canonical
// (time, node, class, per-node seq) order (netsim.go). Within a window
// node queues are disjoint, so per-node execution order is the canonical
// order restricted to that node; sends are harvested per node and sorted
// by (send time, src, per-src index), which equals the canonical order of
// their originating events; medium arbitration is a fold over that
// sequence, so transmission starts, deliveries, and every traffic counter
// come out identical to the sequential engine. See DESIGN.md §12.
package netsim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// sendReq is one frame awaiting medium arbitration at the window barrier.
// Everything node-local (size, transmission time, fault verdict, payload
// copies, observer events) was already computed on the sending node's
// goroutine; only the shared-medium fold is deferred.
type sendReq struct {
	src, dst   int
	sendAt     Micros // sending node's clock at the Send call
	earliest   Micros // sender CPU free (transmission cannot start before)
	idx        uint64 // per-src issue order
	size       int
	payloadLen int
	xmit       Micros
	v          Verdict
	buf        []byte // primary delivery copy (corrupted if the verdict says); nil when dropped
	dupBuf     []byte // duplicate's own uncorrupted copy when v.Dup
}

// nodeRunner owns one node's event queue, clock and goroutine.
type nodeRunner struct {
	id   int
	heap eventHeap
	seq  uint64 // per-node scheduling sequence (continues the global one)
	now  Micros
	// strong/ran/reqs are written by the runner goroutine during a window
	// and read by the coordinator at the barrier (the start/done channel
	// pair orders every access).
	strong int
	ran    uint64
	sends  uint64 // per-src send index
	reqs   []sendReq
	// pool recycles delivery buffers, touched only by this runner's
	// goroutine: sends grab from the sending runner's pool, and the
	// delivery closure releases into the destination runner's pool after
	// the handler runs. Buffers therefore migrate along traffic — a
	// request/response exchange refills both ends — and steady-state
	// parallel traffic allocates no per-frame buffers, matching the
	// sequential engine's pooling.
	pool bufPool

	start chan Micros // window end; closing it stops the goroutine
	done  chan struct{}
}

func (r *nodeRunner) nextSeq() uint64 {
	r.seq++
	return r.seq
}

// at schedules fn on this runner's own queue (called from the runner's
// goroutine via NodeSched, or from the coordinator at a barrier).
func (r *nodeRunner) at(class int8, delay Micros, fn func(), weak bool) {
	if delay < 0 {
		delay = 0
	}
	if !weak {
		r.strong++
	}
	heap.Push(&r.heap, &event{at: r.now + delay, node: int32(r.id), class: class, seq: r.nextSeq(), weak: weak, fn: fn})
}

// head returns the earliest pending event time, or ok=false when idle.
func (r *nodeRunner) head() (Micros, bool) {
	if len(r.heap) == 0 {
		return 0, false
	}
	return r.heap[0].at, true
}

// run is the node goroutine: drain events strictly before each window end,
// until the start channel closes.
func (r *nodeRunner) run() {
	for w := range r.start {
		for len(r.heap) > 0 && r.heap[0].at < w {
			e := heap.Pop(&r.heap).(*event)
			r.now = e.at
			r.ran++
			if !e.weak {
				r.strong--
			}
			e.fn()
		}
		r.done <- struct{}{}
	}
}

// abandon drops any leftover (weak) events at quiesce, mirroring the
// sequential engine's dropAbandoned.
func (r *nodeRunner) abandon() {
	for _, e := range r.heap {
		e.fn = nil
	}
	r.heap = r.heap[:0]
}

// parRun is one parallel execution: the runners plus the shared network.
type parRun struct {
	sim       *Sim
	net       *Network
	lookahead Micros
	runners   []*nodeRunner
}

// sendParallel is Network.Send on a sending node's goroutine: compute
// everything link-local now (frame size, observer event, fault verdict,
// payload copies), defer only the shared-medium arbitration to the
// barrier. Payload copies come from the sending runner's own buffer pool
// (never the sequential engine's — pools are single-goroutine).
func (n *Network) sendParallel(p *parRun, src, dst int, payload []byte, earliest Micros) error {
	if src < 0 || src >= len(p.runners) {
		return fmt.Errorf("netsim: parallel send from unknown node %d", src)
	}
	r := p.runners[src]
	size, xmit := n.frameSize(len(payload))
	if n.Observer != nil {
		n.Observer.OnFrame(int64(r.now), src, dst, len(payload), size, int64(xmit))
	}
	var v Verdict
	if n.Inject != nil {
		v = n.Inject.Frame(r.now, src, dst, len(payload))
	}
	req := sendReq{
		src: src, dst: dst,
		sendAt: r.now, earliest: earliest, idx: r.sends,
		size: size, payloadLen: len(payload), xmit: xmit, v: v,
	}
	r.sends++
	if !v.Drop {
		req.buf = r.pool.grab(payload)
		corrupt(req.buf, v)
	}
	if v.Dup {
		// Distinct grab: the duplicate must never alias the primary copy
		// (each is released independently at the destination).
		req.dupBuf = r.pool.grab(payload)
	}
	r.reqs = append(r.reqs, req)
	return nil
}

// flushSends arbitrates the window's sends in canonical order and inserts
// the resulting delivery events. Runs at the barrier (all runners idle).
func (p *parRun) flushSends() {
	var all []sendReq
	for _, r := range p.runners {
		all = append(all, r.reqs...)
		r.reqs = r.reqs[:0]
	}
	if len(all) == 0 {
		return
	}
	// (sendAt, src, idx) is exactly the order the sequential engine's
	// canonical event order would have issued these Send calls in: events
	// at one instant run in node order, and one node's sends at one
	// instant run in issue order.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.sendAt != b.sendAt {
			return a.sendAt < b.sendAt
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})
	n := p.net
	for _, req := range all {
		deliverAt := n.arbitrate(req.sendAt, req.earliest, req.xmit, req.size, req.payloadLen) +
			n.LinkExtraLatency(req.src, req.dst)
		if req.v.Drop {
			atomic.AddUint64(&n.Lost, 1)
		} else {
			p.insertDelivery(req.src, req.dst, deliverAt+req.v.ExtraDelay, req.buf)
		}
		if req.v.Dup {
			n.Dups++
			p.insertDelivery(req.src, req.dst, deliverAt+dupDelay(req.v), req.dupBuf)
		}
	}
}

// insertDelivery queues a frame arrival on the destination runner. The
// closure mirrors the sequential deliver: a down destination discards the
// frame. Either way the scratch buffer is released into the destination
// runner's pool — the closure runs on that runner's goroutine, so the
// single-owner rule holds even though the buffer was grabbed by the sender.
func (p *parRun) insertDelivery(src, dst int, at Micros, buf []byte) {
	r := p.runners[dst]
	if at < r.now {
		// Lookahead violation — cannot happen while deliverAt ≥ sendAt+L,
		// but guard it loudly rather than silently reordering time.
		panic(fmt.Sprintf("netsim: delivery at %dµs behind node %d clock %dµs", at, dst, r.now))
	}
	n := p.net
	h := n.handlers[dst]
	r.strong++
	heap.Push(&r.heap, &event{at: at, node: int32(dst), class: classDelivery, seq: r.nextSeq(), fn: func() {
		if !n.NodeUp(dst) {
			atomic.AddUint64(&n.Lost, 1)
			if n.OnLost != nil {
				n.OnLost(r.now, src, dst)
			}
			r.pool.release(buf)
			return
		}
		h(src, buf)
		r.pool.release(buf)
	}})
}

// RunParallel drives the simulation to completion with one goroutine per
// node, producing byte-identical observable results to Run (see the
// package comment). numNodes is the cluster size; net must be the network
// the nodes communicate over (its LatencyMicros is the lookahead, so it
// must be ≥ 1). Every pending event must have been scheduled via
// AtNode/AtNodeWeak/NodeSched — node-less events have no home queue.
//
// Differences from Run, both only observable under a chaos plan: weak
// events that fall inside the final window may still run after the last
// strong event (the sequential engine stops mid-window), and the event
// budget is only checked at window barriers. Without weak events the
// engines terminate identically.
func (s *Sim) RunParallel(net *Network, numNodes int, maxEvents uint64) error {
	if s.par != nil {
		return fmt.Errorf("netsim: parallel run already active")
	}
	if net == nil || net.sim != s {
		return fmt.Errorf("netsim: RunParallel needs this simulation's network")
	}
	if net.LatencyMicros < 1 {
		return fmt.Errorf("netsim: parallel execution needs nonzero link latency for lookahead")
	}
	if numNodes < 1 {
		return fmt.Errorf("netsim: parallel execution needs at least one node")
	}
	p := &parRun{sim: s, net: net, lookahead: net.LatencyMicros}
	for i := 0; i < numNodes; i++ {
		p.runners = append(p.runners, &nodeRunner{
			id: i, seq: s.seq, now: s.now,
			start: make(chan Micros), done: make(chan struct{}),
		})
	}
	// Shard the pending queue onto the per-node runners.
	for _, e := range s.queue {
		if e.node < 0 || int(e.node) >= numNodes {
			return fmt.Errorf("netsim: pending event owned by no node (node %d); schedule via AtNode before RunParallel", e.node)
		}
		r := p.runners[e.node]
		heap.Push(&r.heap, e)
		if !e.weak {
			r.strong++
		}
	}
	s.queue = s.queue[:0]
	s.strong = 0
	s.par = p

	var wg sync.WaitGroup
	for _, r := range p.runners {
		wg.Add(1)
		go func(r *nodeRunner) {
			defer wg.Done()
			r.run()
		}(r)
	}
	err := p.drive(maxEvents)
	for _, r := range p.runners {
		close(r.start)
	}
	wg.Wait()
	// Fold the per-node state back into the sequential clock so post-run
	// reads (Now, Events) behave as after Run.
	for _, r := range p.runners {
		if r.now > s.now {
			s.now = r.now
		}
		s.events += r.ran
		if r.seq > s.seq {
			s.seq = r.seq
		}
	}
	s.par = nil
	return err
}

// drive is the coordinator loop: pick the next window, let every runner
// drain it, arbitrate the harvested sends, repeat until no strong events
// remain anywhere.
func (p *parRun) drive(maxEvents uint64) error {
	for {
		// Barrier state: all runners idle, queues quiescent.
		strong := 0
		ran := uint64(0)
		var horizon Micros
		have := false
		for _, r := range p.runners {
			strong += r.strong
			ran += r.ran
			if at, ok := r.head(); ok && (!have || at < horizon) {
				horizon, have = at, true
			}
		}
		if strong == 0 {
			for _, r := range p.runners {
				r.abandon()
			}
			return nil
		}
		if ran >= maxEvents {
			return fmt.Errorf("netsim: event budget %d exhausted at t=%v µs", maxEvents, horizon)
		}
		if !have {
			return nil // unreachable: strong > 0 implies a queued event
		}
		w := horizon + p.lookahead
		for _, r := range p.runners {
			r.start <- w
		}
		for _, r := range p.runners {
			<-r.done
		}
		p.flushSends()
	}
}
