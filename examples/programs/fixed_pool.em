// A worker pool around a pinned resource: the Journal models a node-bound
// device (a disk on node 0), fixed in place before any worker starts. The
// immobile-reach analysis marks Journal pinned, so adaptive placement
// (emrun -auto) will reshuffle the workers but never schedule the Journal.
//   go run ./cmd/emrun examples/programs/fixed_pool.em
//   go run ./cmd/emrun -auto load-balance examples/programs/fixed_pool.em
object Journal
  var entries: Int <- 0
  operation record(x: Int) -> (seq: Int)
    entries <- entries + 1
    seq <- entries
  end
end Journal

object Worker
  var j: Journal
  var id: Int
  var jobs: Int
  process
    move self to node(id % nodes())
    var last: Int <- 0
    var i: Int <- 1
    while i <= jobs do
      last <- j.record(id * 100 + i)
      i <- i + 1
    end
    print("worker ", id, " done, last journal seq=", last)
  end process
end Worker

object Main
  var j: Journal
  initially
    j <- new Journal
  end initially
  process
    fix j at node(0)
    var w1: Worker <- new Worker(j, 1, 6)
    var w2: Worker <- new Worker(j, 2, 6)
    var w3: Worker <- new Worker(j, 3, 6)
    print("journal pinned at ", locate(j), ", distinct workers: ", w1 == w2, " ", w2 == w3)
  end process
end Main
