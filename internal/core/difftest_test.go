// Differential validation of the predecoded dispatcher: every example
// program, on every ISA (homogeneous clusters) plus the heterogeneous
// Figure 1 network, must behave identically under the legacy
// byte-at-a-time emulator (arch.Step) and the predecoded instruction
// cache — same printed lines, same per-node cycle and instruction
// counts, same faults, same final memory images, and a byte-identical
// rendered event stream (which embeds every trap-driven kernel event).
package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// dispatchRun is the full observable projection of one run.
type dispatchRun struct {
	lines    []string
	elapsed  float64
	faults   []string
	cycles   []uint64
	instrs   []uint64
	memSum   [][]byte // final memory image per node
	eventLog []byte
}

func captureDispatch(t *testing.T, src string, machines []netsim.MachineModel, legacy bool) dispatchRun {
	t.Helper()
	sys, err := RunSource(src, machines, Options{LegacyDispatch: legacy})
	if err != nil {
		t.Fatalf("run (legacy=%v): %v", legacy, err)
	}
	r := dispatchRun{
		lines:    sys.Lines(),
		elapsed:  sys.ElapsedMS(),
		eventLog: obs.EventLog(sys.Recorder()),
	}
	for _, f := range sys.Cluster.Faults {
		r.faults = append(r.faults, fmt.Sprintf("node %d frag %d at %v: %s", f.Node, f.Frag, f.At, f.Msg))
	}
	for _, n := range sys.Cluster.Nodes {
		r.cycles = append(r.cycles, n.CPU.Cycles)
		r.instrs = append(r.instrs, n.Instrs)
		r.memSum = append(r.memSum, append([]byte(nil), n.Mem...))
	}
	return r
}

func diffDispatchRuns(t *testing.T, fast, legacy dispatchRun) {
	t.Helper()
	if len(fast.lines) != len(legacy.lines) {
		t.Fatalf("printed lines: %d (predecoded) vs %d (legacy)\n%v\nvs\n%v",
			len(fast.lines), len(legacy.lines), fast.lines, legacy.lines)
	}
	for i := range fast.lines {
		if fast.lines[i] != legacy.lines[i] {
			t.Errorf("line %d: %q (predecoded) vs %q (legacy)", i, fast.lines[i], legacy.lines[i])
		}
	}
	if fast.elapsed != legacy.elapsed {
		t.Errorf("elapsed: %v ms (predecoded) vs %v ms (legacy)", fast.elapsed, legacy.elapsed)
	}
	if len(fast.faults) != len(legacy.faults) {
		t.Fatalf("faults: %v (predecoded) vs %v (legacy)", fast.faults, legacy.faults)
	}
	for i := range fast.faults {
		if fast.faults[i] != legacy.faults[i] {
			t.Errorf("fault %d: %q vs %q", i, fast.faults[i], legacy.faults[i])
		}
	}
	for i := range fast.cycles {
		if fast.cycles[i] != legacy.cycles[i] {
			t.Errorf("node %d cycles: %d (predecoded) vs %d (legacy)", i, fast.cycles[i], legacy.cycles[i])
		}
		if fast.instrs[i] != legacy.instrs[i] {
			t.Errorf("node %d instrs: %d (predecoded) vs %d (legacy)", i, fast.instrs[i], legacy.instrs[i])
		}
		if !bytes.Equal(fast.memSum[i], legacy.memSum[i]) {
			t.Errorf("node %d final memory image differs", i)
		}
	}
	if !bytes.Equal(fast.eventLog, legacy.eventLog) {
		t.Error("rendered event streams differ")
	}
}

func TestDispatchDifferential(t *testing.T) {
	progs, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.em"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	// One homogeneous cluster per ISA, plus the heterogeneous Figure 1
	// network so cross-ISA conversion paths run under both dispatchers.
	nets := []struct {
		name     string
		machines []netsim.MachineModel
	}{
		{"vax", []netsim.MachineModel{netsim.VAXstation2000, netsim.VAXstation2000, netsim.VAXstation2000}},
		{"m68k", []netsim.MachineModel{netsim.Sun3_100, netsim.HP9000_433s, netsim.HP9000_385}},
		{"sparc", []netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC, netsim.SPARCstationSLC}},
		{"figure1", Figure1Network()},
	}
	for _, pf := range progs {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			t.Fatalf("reading %s: %v", pf, err)
		}
		src := string(srcBytes)
		for _, net := range nets {
			t.Run(filepath.Base(pf)+"/"+net.name, func(t *testing.T) {
				fast := captureDispatch(t, src, net.machines, false)
				legacy := captureDispatch(t, src, net.machines, true)
				diffDispatchRuns(t, fast, legacy)
				if len(fast.lines) == 0 {
					t.Error("program printed nothing; differential comparison is vacuous")
				}
			})
		}
	}
}
