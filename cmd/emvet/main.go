// Command emvet is the cross-ISA mobility-soundness analyzer: it compiles
// each Emerald-subset source file for every simulated architecture and runs
// every static-analysis pass in internal/vet over the result — bus-stop
// isomorphism across ISAs, stop-PC alignment, per-stop liveness consistency,
// template coverage, and the IR dataflow lints.
//
// Usage:
//
//	emvet [-severity error|warning|info] [-list] file.em...
//
//	-severity  lowest severity that makes the exit status nonzero
//	           (default warning)
//	-list      list the passes and exit
//
// The exit status is 0 when every file compiles and no finding reaches the
// threshold, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/vet"
)

func main() {
	sevName := flag.String("severity", "warning", "exit nonzero at or above this severity (info, warning, error)")
	list := flag.Bool("list", false, "list passes and exit")
	flag.Parse()
	if *list {
		for _, p := range vet.Passes() {
			fmt.Printf("%-22s %s\n", p.Name, p.Doc)
		}
		return
	}
	threshold, err := vet.ParseSeverity(*sevName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emvet:", err)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: emvet [-severity s] [-list] file.em...")
		os.Exit(2)
	}
	fail := false
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emvet:", err)
			fail = true
			continue
		}
		prog, err := core.Compile(string(src))
		if err != nil {
			for _, line := range core.Diagnostics(err) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", file, line)
			}
			fail = true
			continue
		}
		diags := vet.Check(prog)
		for _, d := range diags {
			fmt.Printf("%s: %s\n", file, d)
		}
		if m, ok := vet.MaxSeverity(diags); ok && m >= threshold {
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
