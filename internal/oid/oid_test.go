package oid

import "testing"

func TestCodeOIDs(t *testing.T) {
	if ForCode(0) == Nil || ForCode(1) == ForCode(0) {
		t.Error("code OIDs must be distinct and non-nil")
	}
}

func TestRuntimeOIDsDisjointAcrossNodes(t *testing.T) {
	seen := map[OID]bool{}
	for node := 0; node < 4; node++ {
		for k := uint32(1); k < 100; k++ {
			o := ForRuntime(node, k)
			if seen[o] {
				t.Fatalf("collision at node %d k %d", node, k)
			}
			seen[o] = true
		}
	}
}

func TestRuntimeOIDsDisjointFromCodeOIDs(t *testing.T) {
	// Node 0's runtime space starts at the floor, above any plausible
	// program's code-object count.
	if ForRuntime(0, 1) <= ForCode(60000) {
		t.Error("runtime OIDs must sit above code OIDs")
	}
}

func TestString(t *testing.T) {
	if Nil.String() != "oid(nil)" {
		t.Errorf("nil = %q", Nil.String())
	}
	if got := ForRuntime(2, 5).String(); got != "oid(2:65541)" {
		t.Errorf("oid = %q", got)
	}
}
