package arch

import (
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestOpcodeMappingInvertible(t *testing.T) {
	for _, s := range AllSpecs() {
		seen := map[byte]Op{}
		for op := Op(0); op < NumOp; op++ {
			b := s.opcodeByte(op)
			if prev, dup := seen[b]; dup {
				t.Fatalf("%s: ops %v and %v share opcode byte %#x", s.Name, prev, op, b)
			}
			seen[b] = op
			back, err := s.opFromByte(b)
			if err != nil || back != op {
				t.Fatalf("%s: roundtrip %v -> %#x -> %v (%v)", s.Name, op, b, back, err)
			}
		}
	}
}

func TestOpcodeBytesDifferAcrossArchs(t *testing.T) {
	// The same op must not have the same opcode byte everywhere, otherwise
	// the "different instruction sets" dimension would be fake.
	differs := 0
	for op := Op(0); op < NumOp; op++ {
		v := VAXSpec.opcodeByte(op)
		m := M68KSpec.opcodeByte(op)
		s := SPARCSpec.opcodeByte(op)
		if v != m || m != s {
			differs++
		}
	}
	if differs < int(NumOp)-2 {
		t.Errorf("only %d/%d opcodes differ across architectures", differs, NumOp)
	}
}

func TestModInverse(t *testing.T) {
	for _, a := range []byte{1, 3, 5, 7, 11, 13, 255} {
		if got := a * modInverse(a); got != 1 {
			t.Errorf("modInverse(%d): a*inv = %d", a, got)
		}
	}
}

// sampleInstrs returns a representative set of encodable instructions for
// the given spec.
func sampleInstrs(s *Spec) []Instr {
	regA, regB, regC := byte(1), byte(2), byte(3)
	var ins []Instr
	add := func(i Instr) { ins = append(ins, i) }
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(0xdeadbeef), Reg(regA)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Reg(regA), Reg(regB)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Frame(40), Reg(regA)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Reg(regA), Frame(44)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{SelfOp(8), Reg(regB)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Reg(regB), SelfOp(12)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Lit(3), Reg(regC)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Pop(), Reg(regA)}})
	add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Reg(regA), Push()}})
	add(Instr{Op: OpAdd, N: 3, Operands: [3]Operand{Reg(regA), Reg(regB), Reg(regC)}})
	add(Instr{Op: OpScc, CC: byte(ir.CmpLE), N: 3, Operands: [3]Operand{Reg(regA), Reg(regB), Reg(regC)}})
	add(Instr{Op: OpFMul, N: 3, Operands: [3]Operand{Reg(regA), Reg(regB), Reg(regC)}})
	add(Instr{Op: OpJmp, Target: 0x1234})
	add(Instr{Op: OpBrz, N: 1, Operands: [3]Operand{Reg(regA)}, Target: 0x42})
	add(Instr{Op: OpBrnz, N: 1, Operands: [3]Operand{Reg(regB)}, Target: 0x43})
	add(Instr{Op: OpALoad, N: 3, Operands: [3]Operand{Reg(regA), Reg(regB), Reg(regC)}})
	add(Instr{Op: OpAStor, N: 3, Operands: [3]Operand{Reg(regA), Reg(regB), Reg(regC)}})
	add(Instr{Op: OpSLen, N: 2, Operands: [3]Operand{Reg(regA), Reg(regB)}})
	add(Instr{Op: OpPoll})
	add(Instr{Op: OpRet})
	add(Instr{Op: OpTrap, TrapKind: TrapPrint, TrapA: 7, TrapB: 2})
	if s.Style == EncVariableCISC {
		// CISC-only richness: memory-to-memory and stack-mode ALU ops.
		add(Instr{Op: OpAdd, N: 3, Operands: [3]Operand{Pop(), Pop(), Push()}})
		add(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Frame(16), Frame(20)}})
		add(Instr{Op: OpSub, N: 3, Operands: [3]Operand{Frame(8), Imm(7), Push()}})
		add(Instr{Op: OpSScc, CC: byte(ir.CmpEQ), N: 3, Operands: [3]Operand{Pop(), Pop(), Push()}})
		add(Instr{Op: OpBrz, N: 1, Operands: [3]Operand{Pop()}, Target: 0x21})
	}
	if s.HasAtomicUnlink {
		add(Instr{Op: OpUnlq})
	}
	return ins
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, s := range AllSpecs() {
		var code []byte
		var err error
		ins := sampleInstrs(s)
		var starts []uint32
		for _, in := range ins {
			starts = append(starts, uint32(len(code)))
			code, err = Encode(s, code, in)
			if err != nil {
				t.Fatalf("%s: encode %v: %v", s.Name, in, err)
			}
		}
		for i, in := range ins {
			got, err := Decode(s, code, starts[i])
			if err != nil {
				t.Fatalf("%s: decode %v at %d: %v", s.Name, in, starts[i], err)
			}
			want := in
			want.Size = got.Size
			if got.String() != want.String() {
				t.Errorf("%s: roundtrip %q -> %q", s.Name, want, got)
			}
		}
		if s.Style == EncFixedRISC {
			for i, in := range ins {
				exp := uint32(4)
				if in.Op == OpTrap || (in.Op == OpMov && in.Operands[0].Mode == ModeImm) {
					exp = 8
				}
				got, _ := Decode(s, code, starts[i])
				if got.Size != exp {
					t.Errorf("%s: %v size %d, want %d", s.Name, in, got.Size, exp)
				}
			}
		}
	}
}

func TestEncodingLengthsDifferAcrossArchs(t *testing.T) {
	in := Instr{Op: OpMov, N: 2, Operands: [3]Operand{Frame(8), Reg(1)}}
	sizes := map[ID]int{}
	for _, s := range AllSpecs() {
		code, err := Encode(s, nil, in)
		if err != nil {
			t.Fatal(err)
		}
		sizes[s.ID] = len(code)
	}
	if sizes[VAX] == sizes[M68K] && sizes[M68K] == sizes[SPARC] {
		t.Errorf("identical instruction sizes across archs: %v", sizes)
	}
}

func TestRISCRejectsComplexModes(t *testing.T) {
	bad := []Instr{
		{Op: OpAdd, N: 3, Operands: [3]Operand{Pop(), Pop(), Push()}},
		{Op: OpMov, N: 2, Operands: [3]Operand{Frame(4), Frame(8)}},
		{Op: OpSScc, CC: 0, N: 3, Operands: [3]Operand{Pop(), Pop(), Push()}},
		{Op: OpUnlq},
	}
	for _, in := range bad {
		if _, err := Encode(SPARCSpec, nil, in); err == nil {
			t.Errorf("sparc: expected encode error for %v", in)
		}
	}
}

func TestPatchTarget(t *testing.T) {
	for _, s := range AllSpecs() {
		for _, in := range []Instr{
			{Op: OpJmp, Target: 0},
			{Op: OpBrz, N: 1, Operands: [3]Operand{Reg(2)}, Target: 0},
		} {
			code, err := Encode(s, nil, in)
			if err != nil {
				t.Fatal(err)
			}
			if err := PatchTarget(s, code, 0, 0xbeef&0x7fff); err != nil {
				t.Fatalf("%s: patch: %v", s.Name, err)
			}
			got, err := Decode(s, code, 0)
			if err != nil || got.Target != 0xbeef&0x7fff {
				t.Errorf("%s: patched target = %#x (%v)", s.Name, got.Target, err)
			}
		}
	}
}

func TestVAXFloatRoundtrip(t *testing.T) {
	f := VAXFloat{}
	cases := []float32{0, 1, -1, 0.5, 3.14159, -123456.78, 1e-20, 1e20, 7}
	for _, v := range cases {
		got := f.Dec(f.Enc(v))
		if v == 0 && got != 0 {
			t.Errorf("vaxf: 0 -> %g", got)
			continue
		}
		if v != 0 {
			rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
			if rel > 1e-6 {
				t.Errorf("vaxf roundtrip %g -> %g (rel err %g)", v, got, rel)
			}
		}
	}
}

func TestVAXFloatBitsDifferFromIEEE(t *testing.T) {
	f := VAXFloat{}
	i := IEEEFloat{}
	for _, v := range []float32{1, 2.5, -7.25, 1000} {
		if f.Enc(v) == i.Enc(v) {
			t.Errorf("VAX F bits equal IEEE bits for %g — format conversion would be a no-op", v)
		}
	}
}

func TestVAXFloatQuick(t *testing.T) {
	f := VAXFloat{}
	err := quick.Check(func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		// Saturation cases excluded: stay in a safely representable range.
		if v != 0 && (math.Abs(float64(v)) > 1e30 || math.Abs(float64(v)) < 1e-30) {
			return true
		}
		got := f.Dec(f.Enc(v))
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel < 1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// buildTestMem lays out a small memory image with a frame, temp area,
// self object, literal table and two strings, for executor tests.
type testMem struct {
	mem      []byte
	cpu      CPU
	strAddrs []uint32
}

func newTestMem(s *Spec, strs ...string) *testMem {
	m := &testMem{mem: make([]byte, 4096)}
	m.cpu.FP = 256       // frame at 256..511
	m.cpu.TempBase = 512 // temps at 512..767
	m.cpu.Self = 768     // object header at 768
	m.cpu.LitBase = 1024
	next := uint32(1280)
	for i, str := range strs {
		addr := next
		s.ByteOrd.PutUint32(m.mem[addr:], 0) // header
		s.ByteOrd.PutUint32(m.mem[addr+4:], uint32(len(str)))
		copy(m.mem[addr+8:], str)
		next = addr + 8 + uint32((len(str)+3)&^3)
		m.strAddrs = append(m.strAddrs, addr)
		s.ByteOrd.PutUint32(m.mem[m.cpu.LitBase+uint32(4*i):], addr)
	}
	return m
}

// run encodes and executes the instructions, returning the final trap.
func (m *testMem) run(t *testing.T, s *Spec, ins []Instr) *Trap {
	t.Helper()
	var code []byte
	var err error
	for _, in := range ins {
		code, err = Encode(s, code, in)
		if err != nil {
			t.Fatalf("%s: encode %v: %v", s.Name, in, err)
		}
	}
	code, err = Encode(s, code, Instr{Op: OpRet})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _, err := Run(s, &m.cpu, code, m.mem, 10000)
	if err != nil {
		t.Fatalf("%s: run: %v", s.Name, err)
	}
	if tr == nil {
		t.Fatalf("%s: no trap", s.Name)
	}
	return tr
}

func TestExecArithmeticAllArchs(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		// r4 = (7+5)*3 - 10/2 = 31; r5 = 31 % 4 = 3; r6 = -r5 = -3; r7=|r6|
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(7), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(5), Reg(2)}},
			{Op: OpAdd, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(4)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(3), Reg(2)}},
			{Op: OpMul, N: 3, Operands: [3]Operand{Reg(4), Reg(2), Reg(4)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(10), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(2), Reg(2)}},
			{Op: OpDiv, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(3)}},
			{Op: OpSub, N: 3, Operands: [3]Operand{Reg(4), Reg(3), Reg(4)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(4), Reg(2)}},
			{Op: OpMod, N: 3, Operands: [3]Operand{Reg(4), Reg(2), Reg(5)}},
			{Op: OpNeg, N: 2, Operands: [3]Operand{Reg(5), Reg(6)}},
			{Op: OpAbs, N: 2, Operands: [3]Operand{Reg(6), Reg(7)}},
		}
		tr := m.run(t, s, ins)
		if tr.Kind != TrapRet {
			t.Fatalf("%s: trap %v", s.Name, tr.Kind)
		}
		if got := int32(m.cpu.Regs[4]); got != 31 {
			t.Errorf("%s: r4 = %d, want 31", s.Name, got)
		}
		if got := int32(m.cpu.Regs[5]); got != 3 {
			t.Errorf("%s: r5 = %d, want 3", s.Name, got)
		}
		if got := int32(m.cpu.Regs[6]); got != -3 {
			t.Errorf("%s: r6 = %d, want -3", s.Name, got)
		}
		if got := int32(m.cpu.Regs[7]); got != 3 {
			t.Errorf("%s: r7 = %d, want 3", s.Name, got)
		}
	}
}

func TestExecFloatsPerFormat(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		a := s.Float.Enc(2.5)
		b := s.Float.Enc(4.0)
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(a), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(b), Reg(2)}},
			{Op: OpFMul, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(4)}},
			{Op: OpFSub, N: 3, Operands: [3]Operand{Reg(4), Reg(2), Reg(5)}},
			{Op: OpFScc, CC: byte(ir.CmpGT), N: 3, Operands: [3]Operand{Reg(4), Reg(5), Reg(6)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(3), Reg(1)}},
			{Op: OpCvt, N: 2, Operands: [3]Operand{Reg(1), Reg(7)}},
		}
		m.run(t, s, ins)
		if got := s.Float.Dec(m.cpu.Regs[4]); got != 10.0 {
			t.Errorf("%s: fmul = %g, want 10", s.Name, got)
		}
		if got := s.Float.Dec(m.cpu.Regs[5]); got != 6.0 {
			t.Errorf("%s: fsub = %g, want 6", s.Name, got)
		}
		if m.cpu.Regs[6] != 1 {
			t.Errorf("%s: fscc = %d, want 1", s.Name, m.cpu.Regs[6])
		}
		if got := s.Float.Dec(m.cpu.Regs[7]); got != 3.0 {
			t.Errorf("%s: cvt = %g, want 3", s.Name, got)
		}
	}
}

func TestExecStackModesCISC(t *testing.T) {
	for _, s := range []*Spec{VAXSpec, M68KSpec} {
		m := newTestMem(s)
		// push 10; push 3; sub pops b=3, a=10 -> 7
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(10), Push()}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(3), Push()}},
			{Op: OpSub, N: 3, Operands: [3]Operand{Pop(), Pop(), Push()}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Pop(), Reg(4)}},
		}
		m.run(t, s, ins)
		if got := int32(m.cpu.Regs[4]); got != 7 {
			t.Errorf("%s: stack sub = %d, want 7 (operand pop order wrong?)", s.Name, got)
		}
		if m.cpu.TempDepth != 0 {
			t.Errorf("%s: temp depth = %d, want 0", s.Name, m.cpu.TempDepth)
		}
	}
}

func TestExecFrameAndSelfEndianness(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(0x11223344), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Reg(1), Frame(8)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Reg(1), SelfOp(0)}},
		}
		m.run(t, s, ins)
		// Raw bytes must follow the architecture byte order.
		fb := m.mem[m.cpu.FP+8 : m.cpu.FP+12]
		want := []byte{0x44, 0x33, 0x22, 0x11}
		if s.ByteOrd == binary.BigEndian {
			want = []byte{0x11, 0x22, 0x33, 0x44}
		}
		for i := range want {
			if fb[i] != want[i] {
				t.Errorf("%s: frame bytes = % x, want % x", s.Name, fb, want)
				break
			}
		}
		sb := m.mem[m.cpu.Self+ObjDataOff : m.cpu.Self+ObjDataOff+4]
		if s.ByteOrd.Uint32(sb) != 0x11223344 {
			t.Errorf("%s: self slot = %#x", s.Name, s.ByteOrd.Uint32(sb))
		}
	}
}

func TestExecStringsAndLiterals(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s, "apple", "banana")
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Lit(0), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Lit(1), Reg(2)}},
			{Op: OpSLen, N: 2, Operands: [3]Operand{Reg(1), Reg(4)}},
			{Op: OpSScc, CC: byte(ir.CmpLT), N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(5)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(1), Reg(3)}},
			{Op: OpSIdx, N: 3, Operands: [3]Operand{Reg(1), Reg(3), Reg(6)}},
		}
		m.run(t, s, ins)
		if m.cpu.Regs[4] != 5 {
			t.Errorf("%s: slen = %d", s.Name, m.cpu.Regs[4])
		}
		if m.cpu.Regs[5] != 1 {
			t.Errorf("%s: apple < banana = %d", s.Name, m.cpu.Regs[5])
		}
		if m.cpu.Regs[6] != 'p' {
			t.Errorf("%s: sidx = %c", s.Name, m.cpu.Regs[6])
		}
	}
}

func TestExecArrays(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		// Build a 3-element array at 2048.
		arr := uint32(2048)
		s.ByteOrd.PutUint32(m.mem[arr+4:], 3)
		ins := []Instr{
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(arr), Reg(1)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(2), Reg(2)}},
			{Op: OpMov, N: 2, Operands: [3]Operand{Imm(99), Reg(3)}},
			{Op: OpAStor, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(3)}},
			{Op: OpALoad, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(4)}},
			{Op: OpALen, N: 2, Operands: [3]Operand{Reg(1), Reg(5)}},
		}
		m.run(t, s, ins)
		if m.cpu.Regs[4] != 99 || m.cpu.Regs[5] != 3 {
			t.Errorf("%s: aload=%d alen=%d", s.Name, m.cpu.Regs[4], m.cpu.Regs[5])
		}
	}
}

func TestExecFaults(t *testing.T) {
	for _, s := range AllSpecs() {
		cases := []struct {
			name string
			ins  []Instr
			want FaultCode
		}{
			{"div0", []Instr{
				{Op: OpMov, N: 2, Operands: [3]Operand{Imm(1), Reg(1)}},
				{Op: OpMov, N: 2, Operands: [3]Operand{Imm(0), Reg(2)}},
				{Op: OpDiv, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(3)}},
			}, FaultDivZero},
			{"bounds", []Instr{
				{Op: OpMov, N: 2, Operands: [3]Operand{Imm(2048), Reg(1)}},
				{Op: OpMov, N: 2, Operands: [3]Operand{Imm(50), Reg(2)}},
				{Op: OpALoad, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(3)}},
			}, FaultBounds},
			{"nil", []Instr{
				{Op: OpMov, N: 2, Operands: [3]Operand{Imm(0), Reg(1)}},
				{Op: OpSLen, N: 2, Operands: [3]Operand{Reg(1), Reg(2)}},
			}, FaultNilRef},
		}
		for _, c := range cases {
			m := newTestMem(s)
			s.ByteOrd.PutUint32(m.mem[2048+4:], 3)
			tr := m.run(t, s, c.ins)
			if tr.Kind != TrapFault || tr.Fault != c.want {
				t.Errorf("%s/%s: trap %v fault %v, want %v", s.Name, c.name, tr.Kind, tr.Fault, c.want)
			}
		}
	}
}

func TestExecBranchesAndLoops(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		// r4 = sum 1..5 via loop with brnz.
		var code []byte
		var err error
		emit := func(in Instr) uint32 {
			start := uint32(len(code))
			code, err = Encode(s, code, in)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			return start
		}
		emit(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(5), Reg(1)}})
		emit(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(0), Reg(4)}})
		top := uint32(len(code))
		emit(Instr{Op: OpAdd, N: 3, Operands: [3]Operand{Reg(4), Reg(1), Reg(4)}})
		emit(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(1), Reg(2)}})
		emit(Instr{Op: OpSub, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(1)}})
		emit(Instr{Op: OpPoll})
		emit(Instr{Op: OpBrnz, N: 1, Operands: [3]Operand{Reg(1)}, Target: uint16(top)})
		emit(Instr{Op: OpRet})
		tr, _, _, err := Run(s, &m.cpu, code, m.mem, 10000)
		if err != nil || tr == nil || tr.Kind != TrapRet {
			t.Fatalf("%s: %v %v", s.Name, tr, err)
		}
		if m.cpu.Regs[4] != 15 {
			t.Errorf("%s: sum = %d, want 15", s.Name, m.cpu.Regs[4])
		}
	}
}

func TestExecPollPreempt(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		m.cpu.Preempt = true
		var code []byte
		code, _ = Encode(s, code, Instr{Op: OpPoll})
		code, _ = Encode(s, code, Instr{Op: OpRet})
		tr, _, _, err := Run(s, &m.cpu, code, m.mem, 10)
		if err != nil || tr == nil || tr.Kind != TrapYield {
			t.Fatalf("%s: want yield trap, got %v %v", s.Name, tr, err)
		}
		// PC must be past the poll: resuming continues with ret.
		m.cpu.Preempt = false
		tr, _, _, err = Run(s, &m.cpu, code, m.mem, 10)
		if err != nil || tr == nil || tr.Kind != TrapRet {
			t.Fatalf("%s: resume: got %v %v", s.Name, tr, err)
		}
	}
}

func TestExecTrapOperands(t *testing.T) {
	for _, s := range AllSpecs() {
		m := newTestMem(s)
		var code []byte
		code, _ = Encode(s, code, Instr{Op: OpTrap, TrapKind: TrapCall, TrapA: 300, TrapB: 2})
		tr, _, _, err := Run(s, &m.cpu, code, m.mem, 10)
		if err != nil || tr == nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if tr.Kind != TrapCall || tr.A != 300 || tr.B != 2 {
			t.Errorf("%s: trap = %+v", s.Name, tr)
		}
		if tr.PC == 0 || tr.PC != m.cpu.PC {
			t.Errorf("%s: trap PC %d vs cpu PC %d", s.Name, tr.PC, m.cpu.PC)
		}
	}
}

func TestExecUnlinkQOnlyVAX(t *testing.T) {
	m := newTestMem(VAXSpec)
	var code []byte
	code, err := Encode(VAXSpec, code, Instr{Op: OpUnlq})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _, err := Run(VAXSpec, &m.cpu, code, m.mem, 10)
	if err != nil || tr == nil || tr.Kind != TrapMonExitA {
		t.Fatalf("vax unlq: %v %v", tr, err)
	}
}

func TestDisassembleRoundtrip(t *testing.T) {
	for _, s := range AllSpecs() {
		var code []byte
		var err error
		for _, in := range sampleInstrs(s) {
			code, err = Encode(s, code, in)
			if err != nil {
				t.Fatal(err)
			}
		}
		d := Disassemble(s, code)
		if strings.Contains(d, "undecodable") {
			t.Errorf("%s: disassembly failed:\n%s", s.Name, d)
		}
		n, err := CountInstrs(s, code)
		if err != nil || n != len(sampleInstrs(s)) {
			t.Errorf("%s: counted %d instrs (err %v), want %d", s.Name, n, err, len(sampleInstrs(s)))
		}
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range AllSpecs() {
		fails := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			buf := make([]byte, 16)
			rng.Read(buf)
			if _, err := Decode(s, buf, 0); err != nil {
				fails++
			}
		}
		if fails < trials/3 {
			t.Errorf("%s: only %d/%d garbage decodes failed", s.Name, fails, trials)
		}
	}
}
