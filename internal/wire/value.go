// Package wire implements the machine-independent network format of the
// enhanced system: big-endian integers, IEEE-754 reals, OIDs for swizzled
// references, strings by value (immutable objects move by duplication), and
// the machine-independent activation-record format used for migrating
// thread state (§3.5).
//
// Conversion between a node's machine-dependent representation and the
// network format is performed by a Converter, which also accounts for the
// number of conversion-procedure calls — the paper attributes most of the
// enhanced system's migration overhead to these calls ("an average of 1–2
// calls of conversion procedures are performed for each byte being
// transferred", §3.6) and guesses that efficient routines would halve the
// penalty. Two converters are provided so that the guess can be tested:
// CallConverter models the paper's per-value recursive-descent routines;
// BatchedConverter models the optimized implementation.
package wire

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/oid"
)

// WKind tags a wire value.
type WKind byte

// Wire value kinds.
const (
	WInt    WKind = iota // 32-bit integer (also bools, nodes, conditions)
	WReal                // IEEE-754 binary32
	WRef                 // object reference as an OID
	WString              // immutable string, by value
	WNil                 // nil reference
	WRaw                 // raw machine word (homogeneous fast path, no conversion)
)

func (k WKind) String() string {
	switch k {
	case WInt:
		return "int"
	case WReal:
		return "real"
	case WRef:
		return "ref"
	case WString:
		return "string"
	case WNil:
		return "nil"
	case WRaw:
		return "raw"
	}
	return fmt.Sprintf("wkind(%d)", byte(k))
}

// Value is one machine-independent value.
type Value struct {
	Kind WKind
	Bits uint32 // int value, IEEE bits, OID, or raw machine word
	Str  []byte // WString payload
}

// IntV / RealBitsV / RefV / StringV / NilV construct values.
func IntV(v uint32) Value      { return Value{Kind: WInt, Bits: v} }
func RealBitsV(b uint32) Value { return Value{Kind: WReal, Bits: b} }
func RefV(o oid.OID) Value     { return Value{Kind: WRef, Bits: uint32(o)} }
func StringV(b []byte) Value   { return Value{Kind: WString, Str: b} }
func NilV() Value              { return Value{Kind: WNil} }
func RawV(w uint32) Value      { return Value{Kind: WRaw, Bits: w} }

// OID returns the value as an OID (WRef only).
func (v Value) OID() oid.OID { return oid.OID(v.Bits) }

// WireSize returns the encoded size in bytes.
func (v Value) WireSize() int {
	if v.Kind == WString {
		return 1 + 4 + len(v.Str)
	}
	return 1 + 4
}

// Stats counts conversion work. Calls is the number of conversion-procedure
// calls (the paper's cost driver); Values and Bytes measure volume. The
// per-kind fields break both down by wire value kind — the paper's Table 1
// attributes conversion cost per value kind, and the metrics registry
// exports them as conv_calls{kind=...}. The struct stays comparable (plain
// integer fields only) so callers can test against the zero value.
type Stats struct {
	Calls  uint64
	Values uint64
	Bytes  uint64

	// Per-kind breakdown (ints cover bools/nodes/conditions and raw words).
	IntCalls  uint64
	RealCalls uint64
	RefCalls  uint64
	IntVals   uint64
	RealVals  uint64
	RefVals   uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Calls += other.Calls
	s.Values += other.Values
	s.Bytes += other.Bytes
	s.IntCalls += other.IntCalls
	s.RealCalls += other.RealCalls
	s.RefCalls += other.RefCalls
	s.IntVals += other.IntVals
	s.RealVals += other.RealVals
	s.RefVals += other.RefVals
}

// chargeKind accounts calls against the per-kind counters.
func (s *Stats) chargeKind(k WKind, calls int) {
	switch k {
	case WReal:
		s.RealCalls += uint64(calls)
		s.RealVals++
	case WRef, WNil:
		s.RefCalls += uint64(calls)
		s.RefVals++
	default:
		s.IntCalls += uint64(calls)
		s.IntVals++
	}
}

// Converter translates 32-bit machine slots to and from wire values,
// accounting for conversion-procedure calls.
type Converter interface {
	Name() string
	// ToWire converts a machine word of the given kind read on the given
	// architecture. Pointer words must be swizzled by the caller (the
	// kernel owns the address-to-OID mapping) and passed as an OID.
	IntToWire(raw uint32) Value
	RealToWire(bits uint32, f arch.FloatCodec) Value
	RefToWire(o oid.OID) Value
	// FromWire converts wire values back to machine words.
	IntFromWire(v Value) (uint32, error)
	RealFromWire(v Value, f arch.FloatCodec) (uint32, error)
	RefFromWire(v Value) (oid.OID, error)
	Stats() Stats
	ResetStats()
}

// CallConverter models the prototype's hand-written recursive-descent
// conversion routines: "depending on the processor type, 2–3 procedure
// calls are performed to convert a simple integer value to or from network
// format" (§3.5). Each 32-bit integer costs two calls (two 16-bit
// half-word conversions, htons-style, plus composition folded in), each
// real three (unpack, convert format, repack), each reference two
// (swizzle lookup plus conversion).
type CallConverter struct {
	stats Stats
}

// NewCallConverter returns a fresh per-value converter.
func NewCallConverter() *CallConverter { return &CallConverter{} }

// Name identifies the converter in benchmark output.
func (c *CallConverter) Name() string { return "per-value-calls" }

func (c *CallConverter) charge(k WKind, calls int) {
	c.stats.Calls += uint64(calls)
	c.stats.Values++
	c.stats.Bytes += 4
	c.stats.chargeKind(k, calls)
}

// IntToWire converts an integer machine word.
func (c *CallConverter) IntToWire(raw uint32) Value {
	c.charge(WInt, 2)
	return IntV(raw)
}

// RealToWire converts a real in the architecture float format to IEEE bits.
func (c *CallConverter) RealToWire(bits uint32, f arch.FloatCodec) Value {
	c.charge(WReal, 3)
	return RealBitsV(arch.IEEEFloat{}.Enc(f.Dec(bits)))
}

// RefToWire converts a swizzled reference.
func (c *CallConverter) RefToWire(o oid.OID) Value {
	c.charge(WRef, 2)
	if o == oid.Nil {
		return NilV()
	}
	return RefV(o)
}

// IntFromWire converts back to a machine integer.
func (c *CallConverter) IntFromWire(v Value) (uint32, error) {
	c.charge(WInt, 2)
	if v.Kind != WInt && v.Kind != WRaw {
		return 0, fmt.Errorf("wire: %v where int expected", v.Kind)
	}
	return v.Bits, nil
}

// RealFromWire converts IEEE bits to the architecture float format.
func (c *CallConverter) RealFromWire(v Value, f arch.FloatCodec) (uint32, error) {
	c.charge(WReal, 3)
	if v.Kind != WReal && v.Kind != WRaw {
		return 0, fmt.Errorf("wire: %v where real expected", v.Kind)
	}
	if v.Kind == WRaw {
		return v.Bits, nil
	}
	return f.Enc(arch.IEEEFloat{}.Dec(v.Bits)), nil
}

// RefFromWire extracts the OID.
func (c *CallConverter) RefFromWire(v Value) (oid.OID, error) {
	c.charge(WRef, 2)
	switch v.Kind {
	case WNil:
		return oid.Nil, nil
	case WRef:
		return oid.OID(v.Bits), nil
	}
	return 0, fmt.Errorf("wire: %v where ref expected", v.Kind)
}

// Stats returns the accumulated counters.
func (c *CallConverter) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *CallConverter) ResetStats() { c.stats = Stats{} }

// BatchedConverter models efficient conversion routines: one call per
// value, with the same semantic effect. The paper predicts roughly a 50%
// reduction of the migration penalty with such routines (§3.6); the
// conversion ablation benchmark compares the two.
type BatchedConverter struct {
	CallConverter
}

// NewBatchedConverter returns the optimized converter.
func NewBatchedConverter() *BatchedConverter { return &BatchedConverter{} }

// Name identifies the converter.
func (c *BatchedConverter) Name() string { return "batched" }

func (c *BatchedConverter) charge1(k WKind) {
	c.stats.Calls++
	c.stats.Values++
	c.stats.Bytes += 4
	c.stats.chargeKind(k, 1)
}

// IntToWire converts with a single call.
func (c *BatchedConverter) IntToWire(raw uint32) Value {
	c.charge1(WInt)
	return IntV(raw)
}

// RealToWire converts with a single call.
func (c *BatchedConverter) RealToWire(bits uint32, f arch.FloatCodec) Value {
	c.charge1(WReal)
	return RealBitsV(arch.IEEEFloat{}.Enc(f.Dec(bits)))
}

// RefToWire converts with a single call.
func (c *BatchedConverter) RefToWire(o oid.OID) Value {
	c.charge1(WRef)
	if o == oid.Nil {
		return NilV()
	}
	return RefV(o)
}

// IntFromWire converts with a single call.
func (c *BatchedConverter) IntFromWire(v Value) (uint32, error) {
	c.charge1(WInt)
	if v.Kind != WInt && v.Kind != WRaw {
		return 0, fmt.Errorf("wire: %v where int expected", v.Kind)
	}
	return v.Bits, nil
}

// RealFromWire converts with a single call.
func (c *BatchedConverter) RealFromWire(v Value, f arch.FloatCodec) (uint32, error) {
	c.charge1(WReal)
	if v.Kind != WReal && v.Kind != WRaw {
		return 0, fmt.Errorf("wire: %v where real expected", v.Kind)
	}
	if v.Kind == WRaw {
		return v.Bits, nil
	}
	return f.Enc(arch.IEEEFloat{}.Dec(v.Bits)), nil
}

// RefFromWire converts with a single call.
func (c *BatchedConverter) RefFromWire(v Value) (oid.OID, error) {
	c.charge1(WRef)
	switch v.Kind {
	case WNil:
		return oid.Nil, nil
	case WRef:
		return oid.OID(v.Bits), nil
	}
	return 0, fmt.Errorf("wire: %v where ref expected", v.Kind)
}

// RawConverter is the homogeneous fast path of the original system: machine
// words travel unconverted (both ends share one architecture), as in the
// multi-protocol RPC optimization the paper cites ([SC88], §3.1). It is
// only correct when source and destination architectures are identical.
type RawConverter struct {
	stats Stats
}

// NewRawConverter returns the no-conversion converter.
func NewRawConverter() *RawConverter { return &RawConverter{} }

// Name identifies the converter.
func (c *RawConverter) Name() string { return "raw-homogeneous" }

func (c *RawConverter) bump(k WKind) {
	c.stats.Values++
	c.stats.Bytes += 4
	c.stats.chargeKind(k, 0)
}

// IntToWire passes the word through.
func (c *RawConverter) IntToWire(raw uint32) Value { c.bump(WInt); return RawV(raw) }

// RealToWire passes machine float bits through unconverted.
func (c *RawConverter) RealToWire(bits uint32, _ arch.FloatCodec) Value {
	c.bump(WReal)
	return RawV(bits)
}

// RefToWire still swizzles (references are never raw: object identity must
// survive even homogeneous moves).
func (c *RawConverter) RefToWire(o oid.OID) Value {
	c.bump(WRef)
	if o == oid.Nil {
		return NilV()
	}
	return RefV(o)
}

// IntFromWire passes through.
func (c *RawConverter) IntFromWire(v Value) (uint32, error) {
	c.bump(WInt)
	return v.Bits, nil
}

// RealFromWire passes through.
func (c *RawConverter) RealFromWire(v Value, _ arch.FloatCodec) (uint32, error) {
	c.bump(WReal)
	return v.Bits, nil
}

// RefFromWire extracts the OID.
func (c *RawConverter) RefFromWire(v Value) (oid.OID, error) {
	c.bump(WRef)
	switch v.Kind {
	case WNil:
		return oid.Nil, nil
	case WRef:
		return oid.OID(v.Bits), nil
	}
	return 0, fmt.Errorf("wire: %v where ref expected", v.Kind)
}

// Stats returns the counters.
func (c *RawConverter) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *RawConverter) ResetStats() { c.stats = Stats{} }

// SlotToWire converts one machine slot of the given IR kind. refOID must be
// the swizzled OID for pointer slots (string slots are handled by the
// kernel, which ships strings by value).
func SlotToWire(c Converter, k ir.VK, raw uint32, refOID oid.OID, f arch.FloatCodec) Value {
	switch k {
	case ir.VKReal:
		return c.RealToWire(raw, f)
	case ir.VKPtr:
		return c.RefToWire(refOID)
	default:
		return c.IntToWire(raw)
	}
}
