package workgen

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic: same config, byte-identical source; different
// seed, different request stream.
func TestGenerateDeterministic(t *testing.T) {
	c := Config{Seed: 7, Services: 4, Sessions: 3, Requests: 24, Nodes: 4}
	a, b := Generate(c), Generate(c)
	if a != b {
		t.Fatal("same config generated different source")
	}
	c2 := c
	c2.Seed = 8
	if Generate(c2) == a {
		t.Fatal("different seed generated identical source")
	}
}

// TestGenerateShape: the rendered program has one session type per session,
// the right number of unrolled requests, and a precomputed expect total for
// the location-independent output check.
func TestGenerateShape(t *testing.T) {
	src := Generate(Config{Seed: 3, Services: 2, Sessions: 2, Requests: 5, Nodes: 2})
	for _, want := range []string{"object Service", "object Stats", "object Sess0", "object Sess1", "object Main"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	if got := strings.Count(src, ".work("); got != 2*5 {
		t.Errorf("unrolled %d requests, want %d", got, 2*5)
	}
	if !strings.Contains(src, "expect=") {
		t.Error("sessions carry no precomputed expect total")
	}
	// Open-loop adds the seeded warmup spin.
	open := Generate(Config{Seed: 3, Services: 2, Sessions: 2, Requests: 5, Nodes: 2, Open: true})
	if !strings.Contains(open, "while w <") {
		t.Error("open-loop source has no warmup spin")
	}
}
