// Negative fixture: compiled clean, then the golden test flips the kind of
// the first VAX variable home (see golden_test.go) — the template skew that
// would marshal an integer as an object reference.
object Holder
  operation keep(v: Int) -> (r: Int)
    var copy: Int <- v
    r <- copy
  end
end Holder

object Main
  process
    var h: Holder <- new Holder
    print(h.keep(7))
  end process
end Main
