package kernel

import (
	"testing"

	"repro/internal/busstop"
	"repro/internal/ir"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// planAllocSrc gives Probe.work a mixed int/real frame and a syscall bus
// stop (the print), with no pointer-kind locals, so the conversion path
// under test never touches the swizzler. At the print stop, y and b are
// dead (no path reads them afterwards) while x, a and the result r are
// live — which is what the sharpened variant of the test relies on.
const planAllocSrc = `
object Probe
  var base: Int <- 0
  operation work(x: Int, y: Real) -> (r: Int)
    var a: Int <- 3
    var b: Real <- 1.5
    print(x)
    r <- a + x
  end
end Probe
object Main
  process
    var p: Probe <- new Probe
    print(p.work(4, 2.5))
  end process
end Main
`

// warmPlanRoundtrip fabricates a stopped Probe.work frame on node 0 of a
// VAX/SPARC pair, runs a warm planned MD→MI→MD conversion under
// AllocsPerRun, and returns the plan, the words written into the frame,
// the words read back, and the measured allocations per run.
func warmPlanRoundtrip(t *testing.T, cfg Config) (n *Node, pl *convPlan, want, back []uint32, allocs float64) {
	t.Helper()
	p := compileSrc(t, planAllocSrc)
	c, err := NewCluster(p, []netsim.MachineModel{mVAX, mSPARC}, cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	n = c.Nodes[0]
	oc := p.Object("Probe")
	if oc == nil {
		t.Fatal("no Probe object")
	}
	lc, err := n.loadCode(oc.CodeOID)
	if err != nil {
		t.Fatalf("loadCode: %v", err)
	}
	fnIdx := oc.FuncIndex("work")
	if fnIdx < 0 {
		t.Fatal("no work function")
	}
	lf := lc.funcs[fnIdx]
	tmpl := lf.fc.Template

	// Pick a bus stop whose evaluation stack holds no pointers (the
	// syscall stop of the print qualifies; most have an empty stack).
	var stop busstop.Info
	found := false
	for _, s := range lf.fc.Stops.All() {
		ok := true
		for _, k := range s.TempKinds {
			if k == ir.VKPtr {
				ok = false
			}
		}
		if ok {
			stop, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no pointer-free bus stop in work")
	}
	tempDepth := stop.TempDepth
	if tempDepth > len(stop.TempKinds) {
		tempDepth = len(stop.TempKinds)
	}

	// Fabricate a stopped frame: allocate the record and give every
	// variable a distinguishable value in its home.
	fp, err := n.alloc(uint32(tmpl.Size))
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	fi := frameInfo{lf: lf, fp: fp, stop: stop, tempDepth: tempDepth}
	want = make([]uint32, 0, len(tmpl.Vars)+tempDepth)
	for i, h := range tmpl.Vars {
		w := uint32(10 + i)
		if h.Kind == ir.VKReal {
			w = n.Spec.Float.Enc(1.5 * float32(i+1))
		}
		if h.InReg {
			fi.regs[h.Reg&0xf] = w
		} else {
			n.st32(fp+uint32(h.Off), w)
		}
		want = append(want, w)
	}
	for j := 0; j < tempDepth; j++ {
		w := uint32(100 + j)
		n.st32(fp+uint32(tmpl.TempOff)+uint32(4*j), w)
		want = append(want, w)
	}

	peer := c.Nodes[1].Spec.ID
	conv := c.converterFor(n, peer)
	classAt := func(pl *convPlan, i int) slotClass {
		if i < len(pl.vars) {
			return pl.vars[i].class
		}
		return pl.tempClassAt(i - len(pl.vars))
	}

	// Warm: the first hop compiles and caches the plan.
	act, shipped := n.marshalFrame(conv, peer, fi)
	if int(act.Stop) != stop.Stop || len(shipped) != len(want) {
		t.Fatalf("warm marshal: stop %d (%d values), want stop %d (%d values)",
			act.Stop, len(shipped), stop.Stop, len(want))
	}
	pl = n.planFor(lf, uint16(stop.Stop), peer)

	back = make([]uint32, len(want))
	var m wire.MIActivation
	allocs = testing.AllocsPerRun(100, func() {
		a, vals := n.marshalFramePlanned(conv, fi, pl)
		m = a
		for i, v := range vals {
			w, err := n.unwireClassValue(conv, classAt(pl, i), v, nil, 1)
			if err != nil {
				t.Fatalf("unwire %d: %v", i, err)
			}
			back[i] = w
		}
	})
	if len(m.Vars) != len(tmpl.Vars) {
		t.Fatalf("marshalled %d vars, template has %d", len(m.Vars), len(tmpl.Vars))
	}
	return n, pl, want, back, allocs
}

// One warm-plan MD→MI→MD conversion of a frame is pinned at a single
// allocation: the combined value slice marshalFramePlanned returns. Plan
// compilation, template interpretation and per-value boxing must all be
// off the steady-state path. Sharpening is off here so the roundtrip
// must reproduce every machine-dependent word exactly (same float format
// on both sides of MI for identical codecs, identity for ints) — the
// alloc pin is not measuring a path that silently stopped converting.
func TestWarmPlanConversionAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SharpenLiveSets = false
	_, _, want, back, allocs := warmPlanRoundtrip(t, cfg)
	if allocs > 1 {
		t.Errorf("warm MD→MI→MD conversion allocates %.1f allocs/run, want <= 1", allocs)
	}
	for i, w := range back {
		if w != want[i] {
			t.Errorf("roundtrip slot %d = %#x, want %#x", i, w, want[i])
		}
	}
}

// The sharpened path must stay on the same ≤1-alloc budget, reproduce
// every live slot exactly, and restore every pta-dead slot as the
// canonical zero of its class — and the fixture must actually exercise
// that (at least one dead slot, never a pointer one).
func TestWarmPlanConversionAllocsSharpened(t *testing.T) {
	n, pl, want, back, allocs := warmPlanRoundtrip(t, DefaultConfig())
	if allocs > 1 {
		t.Errorf("sharpened warm conversion allocates %.1f allocs/run, want <= 1", allocs)
	}
	dead := 0
	for i := range back {
		if i < len(pl.vars) && pl.vars[i].dead {
			dead++
			if pl.vars[i].class == slotPtr {
				t.Errorf("slot %d: pointer slot marked dead; sharpening must never touch pointers", i)
			}
			var zero uint32
			if pl.vars[i].class == slotReal {
				zero = n.Spec.Float.Enc(0)
			}
			if back[i] != zero {
				t.Errorf("dead slot %d restored as %#x, want canonical zero %#x", i, back[i], zero)
			}
			continue
		}
		if back[i] != want[i] {
			t.Errorf("live slot %d = %#x, want %#x", i, back[i], want[i])
		}
	}
	if dead == 0 {
		t.Error("no dead slots in the plan; the sharpened test is vacuous (y and b should be dead at the print stop)")
	}
	if n.CanonicalizedVarSlots == 0 || n.MarshaledVarSlots < n.CanonicalizedVarSlots {
		t.Errorf("counters: marshaled %d, canonicalized %d; want 0 < canonicalized <= marshaled",
			n.MarshaledVarSlots, n.CanonicalizedVarSlots)
	}
}
