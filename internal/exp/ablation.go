// Ablations of the design choices DESIGN.md calls out (beyond the
// conversion-routine study in ConversionStudy).

package exp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/netsim"
)

// compileOpts compiles source with explicit codegen options.
func compileOpts(src string, opts codegen.Options) (*codegen.Program, error) {
	ast, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(ast)
	if err != nil {
		return nil, err
	}
	return codegen.CompileWithOptions(ir.Build(info), opts)
}

// runSimMS compiles and runs src on machines, returning total simulated ms.
func runSimMS(src string, opts codegen.Options, cfg kernel.Config,
	machines []netsim.MachineModel) (float64, *kernel.Cluster, error) {
	prog, err := compileOpts(src, opts)
	if err != nil {
		return 0, nil, err
	}
	cl, err := kernel.NewCluster(prog, machines, cfg)
	if err != nil {
		return 0, nil, err
	}
	cl.Start(nil)
	if err := cl.Run(120_000_000); err != nil {
		return 0, nil, err
	}
	if len(cl.Faults) > 0 {
		return 0, nil, fmt.Errorf("fault: %s", cl.Faults[0].Msg)
	}
	return cl.Sim.Now().MS(), cl, nil
}

// ---------------------------------------------------------------- polls

// BusStopDensityResult quantifies the cost of bottom-of-loop poll
// instructions: the price paid in intra-node time for being preemptible and
// migratable at loop bottoms (§3.2: "most of the user code polls are
// free" — polls are cheap flag checks).
type BusStopDensityResult struct {
	WithPollsMS    float64
	WithoutPollsMS float64
	OverheadPct    float64
	StopsWith      int
	StopsWithout   int
}

// BusStopDensity runs a loop-heavy compute workload with and without
// loop-bottom polls on one SPARC node.
func BusStopDensity() (*BusStopDensityResult, error) {
	machines := []netsim.MachineModel{netsim.SPARCstationSLC}
	cfg := kernel.DefaultConfig()
	with, _, err := runSimMS(Fig2Workload, codegen.Options{}, cfg, machines)
	if err != nil {
		return nil, err
	}
	without, _, err := runSimMS(Fig2Workload, codegen.Options{OmitLoopPolls: true}, cfg, machines)
	if err != nil {
		return nil, err
	}
	countStops := func(opts codegen.Options) (int, error) {
		prog, err := compileOpts(Fig2Workload, opts)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, oc := range prog.Objects {
			for _, fc := range oc.PerArch[arch.SPARC].Funcs {
				n += fc.Stops.Len()
			}
		}
		return n, nil
	}
	r := &BusStopDensityResult{WithPollsMS: with, WithoutPollsMS: without}
	r.OverheadPct = (with - without) / without * 100
	if r.StopsWith, err = countStops(codegen.Options{}); err != nil {
		return nil, err
	}
	if r.StopsWithout, err = countStops(codegen.Options{OmitLoopPolls: true}); err != nil {
		return nil, err
	}
	return r, nil
}

// ---------------------------------------------------------------- homes

// homesVariant builds spec copies with a different number of register
// variable homes (avoiding the scratch registers each back end reserves).
func homesVariant(name string, vaxHomes, m68kHomes, sparcHomes []byte) []*arch.Spec {
	cp := func(s *arch.Spec, homes []byte) *arch.Spec {
		c := *s
		c.HomeRegs = homes
		return &c
	}
	_ = name
	return []*arch.Spec{
		cp(arch.VAXSpec, vaxHomes),
		cp(arch.M68KSpec, m68kHomes),
		cp(arch.SPARCSpec, sparcHomes),
	}
}

// RegisterHomesResult compares variable-home policies.
type RegisterHomesResult struct {
	Variant    string
	ComputeMS  float64 // intra-node compute phase
	TwoMovesMS float64 // Table 1 workload, SPARC<->VAX pair
}

// RegisterHomes measures how the number of callee-saved register homes
// trades intra-node speed (registers are faster than activation-record
// slots) against nothing at all on the migration path — conversion work is
// per variable, not per home, which is exactly why the paper's design can
// afford register allocation.
func RegisterHomes() ([]RegisterHomesResult, error) {
	variants := []struct {
		name  string
		specs []*arch.Spec
	}{
		{"memory-only (0 homes)", homesVariant("none", nil, nil, nil)},
		{"paper defaults (4/6/8)", nil},
		{"wide (8/10/11)", homesVariant("wide",
			[]byte{4, 5, 6, 7, 8, 9, 10, 11},
			[]byte{2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
			[]byte{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})},
	}
	var out []RegisterHomesResult
	for _, v := range variants {
		opts := codegen.Options{Specs: v.specs}
		cfg := kernel.DefaultConfig()
		if v.specs != nil {
			cfg.SpecOverride = func(id arch.ID) *arch.Spec {
				for _, s := range v.specs {
					if s.ID == id {
						return s
					}
				}
				return arch.SpecOf(id)
			}
		}
		computeMS, _, err := runSimMS(intraNodeSrc(false), opts, cfg,
			[]netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC})
		if err != nil {
			return nil, fmt.Errorf("%s compute: %w", v.name, err)
		}
		// Migration cost on a heterogeneous pair.
		prog, err := compileOpts(Mobile13Source, opts)
		if err != nil {
			return nil, err
		}
		cl, err := kernel.NewCluster(prog,
			[]netsim.MachineModel{netsim.SPARCstationSLC, netsim.VAXstation2000}, cfg)
		if err != nil {
			return nil, err
		}
		cl.Start(nil)
		if err := cl.Run(120_000_000); err != nil {
			return nil, err
		}
		if len(cl.Faults) > 0 {
			return nil, fmt.Errorf("%s: fault: %s", v.name, cl.Faults[0].Msg)
		}
		lines := cl.PrintedLines()
		if len(lines) != 2 || lines[1] != "1624" {
			return nil, fmt.Errorf("%s: workload corrupted: %v", v.name, lines)
		}
		elapsed, _ := strconv.Atoi(lines[0])
		out = append(out, RegisterHomesResult{
			Variant:    v.name,
			ComputeMS:  computeMS,
			TwoMovesMS: float64(elapsed) / mobile13Trips,
		})
	}
	return out, nil
}

// FormatAblations renders both studies.
func FormatAblations(bs *BusStopDensityResult, homes []RegisterHomesResult) string {
	var b strings.Builder
	b.WriteString("Ablation: bus-stop density (bottom-of-loop polls, SPARC)\n")
	fmt.Fprintf(&b, "  with polls: %.1f ms   without: %.1f ms   poll overhead: %.1f%%\n",
		bs.WithPollsMS, bs.WithoutPollsMS, bs.OverheadPct)
	fmt.Fprintf(&b, "  bus stops: %d -> %d (loop-bottom stops removed; no migration there)\n",
		bs.StopsWith, bs.StopsWithout)
	b.WriteString("\nAblation: register variable homes (intra-node compute vs 2-move cost)\n")
	fmt.Fprintf(&b, "  %-26s %14s %14s\n", "variant", "compute", "2 moves")
	for _, h := range homes {
		fmt.Fprintf(&b, "  %-26s %11.1f ms %11.1f ms\n", h.Variant, h.ComputeMS, h.TwoMovesMS)
	}
	b.WriteString("  more homes = faster local code; migration cost is per variable, not\n")
	b.WriteString("  per home (the templates hide where variables live), as the paper argues.\n")
	return b.String()
}
