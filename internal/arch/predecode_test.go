package arch

import (
	"testing"
)

// buildCountdown emits the standard countdown loop used by the dispatch
// benchmarks: mov imm→r1; top: mov 1→r2; sub; brnz top; ret.
func buildCountdown(t testing.TB, s *Spec, iters uint32) []byte {
	t.Helper()
	var code []byte
	var err error
	emit := func(in Instr) {
		code, err = Encode(s, code, in)
		if err != nil {
			t.Fatal(err)
		}
	}
	emit(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(iters), Reg(1)}})
	top := uint32(len(code))
	emit(Instr{Op: OpMov, N: 2, Operands: [3]Operand{Imm(1), Reg(2)}})
	emit(Instr{Op: OpSub, N: 3, Operands: [3]Operand{Reg(1), Reg(2), Reg(1)}})
	emit(Instr{Op: OpBrnz, N: 1, Operands: [3]Operand{Reg(1)}, Target: uint16(top)})
	emit(Instr{Op: OpRet})
	return code
}

// Steady-state dispatch over a predecoded function must not allocate:
// the executor state lives in one stack frame and the instruction cache
// is read-only. (Traps allocate their *Trap — that is a kernel-entry
// event, not steady state — so the budget expires mid-loop here.)
func TestPredecodedDispatchSteadyStateAllocs(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code := buildCountdown(t, s, 1_000_000)
			pd, err := Predecode(s, code)
			if err != nil {
				t.Fatal(err)
			}
			mem := make([]byte, 4096)
			// The CPU lives outside the measured closure, as it does in the
			// kernel (inside the long-lived thread structure).
			var cpu CPU
			got := testing.AllocsPerRun(100, func() {
				cpu = CPU{FP: 256, TempBase: 512}
				tr, _, _, err := RunPredecoded(s, pd, &cpu, mem, 5000)
				if err != nil || tr != nil {
					t.Fatalf("unexpected stop: %v %v", tr, err)
				}
			})
			if got != 0 {
				t.Errorf("steady-state dispatch allocates %.1f allocs/run, want 0", got)
			}
		})
	}
}

// A PC that does not start a predecoded instruction (a computed jump
// into the middle of an encoding) must fall back to Step and behave
// exactly like the legacy loop.
func TestPredecodedFallbackMatchesLegacy(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code := buildCountdown(t, s, 3)
			pd, err := Predecode(s, code)
			if err != nil {
				t.Fatal(err)
			}
			// Start mid-instruction: PC 1 is inside the first mov on every
			// ISA (smallest encoding is 4 bytes).
			mem1 := make([]byte, 4096)
			mem2 := make([]byte, 4096)
			cpu1 := CPU{PC: 1, FP: 256, TempBase: 512}
			cpu2 := cpu1
			tr1, cy1, n1, err1 := RunPredecoded(s, pd, &cpu1, mem1, 100)
			tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, 100)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			if err1 != nil && err1.Error() != err2.Error() {
				t.Fatalf("error text mismatch: %v vs %v", err1, err2)
			}
			if cy1 != cy2 || n1 != n2 {
				t.Errorf("cycles/instrs: %d/%d vs %d/%d", cy1, n1, cy2, n2)
			}
			if (tr1 == nil) != (tr2 == nil) {
				t.Fatalf("trap mismatch: %+v vs %+v", tr1, tr2)
			}
			if tr1 != nil && *tr1 != *tr2 {
				t.Errorf("trap: %+v vs %+v", *tr1, *tr2)
			}
			if cpu1 != cpu2 {
				t.Errorf("cpu state: %+v vs %+v", cpu1, cpu2)
			}
		})
	}
}

// The exhaustive cross-check: run the countdown to completion under both
// dispatchers and compare everything.
func TestPredecodedMatchesLegacyToCompletion(t *testing.T) {
	for _, s := range AllSpecs() {
		t.Run(s.Name, func(t *testing.T) {
			code := buildCountdown(t, s, 1000)
			pd, err := Predecode(s, code)
			if err != nil {
				t.Fatal(err)
			}
			mem1 := make([]byte, 4096)
			mem2 := make([]byte, 4096)
			cpu1 := CPU{FP: 256, TempBase: 512}
			cpu2 := cpu1
			tr1, cy1, n1, err1 := RunPredecoded(s, pd, &cpu1, mem1, 1<<30)
			tr2, cy2, n2, err2 := RunLegacy(s, &cpu2, code, mem2, 1<<30)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v %v", err1, err2)
			}
			if tr1 == nil || tr2 == nil || *tr1 != *tr2 {
				t.Fatalf("traps: %+v vs %+v", tr1, tr2)
			}
			if cy1 != cy2 || n1 != n2 || cpu1 != cpu2 {
				t.Errorf("state: %d/%d/%+v vs %d/%d/%+v", cy1, n1, cpu1, cy2, n2, cpu2)
			}
		})
	}
}
