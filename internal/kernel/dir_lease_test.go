// Directory lease tests: repeat lookups of a stable object must be served
// from the client-side lease cache (no shard query), leases must drop on
// epoch-fenced invalidation, expiry and suspicion, and the stale-location
// fixes must hold — a healed home redispatches instead of faulting, healed
// proxies stop re-querying the shard, and the locate chase budget resolves
// a chain of exactly maxLocateHops live hops.

package kernel

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/wire"
)

const repeatLocateSrc = `
object Probe
  operation ping() -> (r: String)
    r <- str(thisnode())
  end
end Probe
object Main
  process
    var p: Probe <- new Probe
    move p to node(1)
    print(locate(p))
    print(locate(p))
    print(locate(p))
    print(locate(p))
    print(locate(p))
    print(locate(p))
  end process
end Main
`

// TestDirLeaseSkipsRepeatLookups: with leases armed, only the first locate
// of a stable object pays a shard query; the rest hit the cached lease, and
// the program output is unchanged.
func TestDirLeaseSkipsRepeatLookups(t *testing.T) {
	models := []netsim.MachineModel{mSun3, mHP1, mSPARC, mVAX}

	off := runSrc(t, repeatLocateSrc, models, dirConfig(3, nil))
	lookupsOff := dirCounter(off, "dir_lookups")
	if lookupsOff < 6 {
		t.Fatalf("lease-free run made %d shard queries, want one per locate (>= 6)", lookupsOff)
	}
	if dirCounter(off, "dir_lease_hits") != 0 || dirCounter(off, "dir_lease_expired") != 0 {
		t.Fatal("lease-free run recorded lease counters")
	}

	cfg := dirConfig(3, nil)
	cfg.DirLeaseMicros = 1_000_000
	on := runSrc(t, repeatLocateSrc, models, cfg)
	if on.OutputText() != off.OutputText() {
		t.Fatalf("lease arm changed output:\noff:\n%s\non:\n%s", off.OutputText(), on.OutputText())
	}
	hits := dirCounter(on, "dir_lease_hits")
	lookupsOn := dirCounter(on, "dir_lookups")
	if hits < 3 {
		t.Errorf("dir_lease_hits = %d, want >= 3 (three repeat locates)", hits)
	}
	// The acceptance bar: leases cut repeat lookups by at least half.
	if lookupsOn > lookupsOff/2 {
		t.Errorf("lease arm still made %d shard queries (lease-free: %d); want <= half", lookupsOn, lookupsOff)
	}
	if lookupsOn+hits != lookupsOff {
		t.Errorf("lookups(%d) + lease hits(%d) != lease-free lookups(%d); some locate went unaccounted",
			lookupsOn, hits, lookupsOff)
	}
}

// TestDirLeaseInvalidation drives the lease lifecycle directly on a node:
// epoch-fenced invalidation by decree, unconditional invalidation when the
// leased home becomes suspect, and expiry accounting.
func TestDirLeaseInvalidation(t *testing.T) {
	cfg := dirConfig(2, nil)
	cfg.DirLeaseMicros = 50_000
	c := runSrc(t, probeSrc, []netsim.MachineModel{mSun3, mSPARC}, cfg)
	n0 := c.Nodes[0]
	ghost := oid.ForRuntime(0, 901)

	// Epoch fence: an older or equal decree leaves the lease alone, a newer
	// one drops it.
	n0.dirLeases[ghost] = dirLease{node: 1, epoch: 3, expires: n0.now() + 50_000}
	n0.dirInvalidateLease(ghost, 2)
	n0.dirInvalidateLease(ghost, 3)
	if _, ok := n0.dirLeases[ghost]; !ok {
		t.Fatal("same/older-epoch decree dropped the lease")
	}
	n0.dirInvalidateLease(ghost, 4)
	if _, ok := n0.dirLeases[ghost]; ok {
		t.Fatal("newer-epoch decree left the lease")
	}

	// Suspicion: every lease pointing at the suspect peer drops.
	other := oid.ForRuntime(0, 902)
	n0.dirLeases[ghost] = dirLease{node: 1, epoch: 3, expires: n0.now() + 50_000}
	n0.dirLeases[other] = dirLease{node: 0, epoch: 1, expires: n0.now() + 50_000}
	n0.invalidateLocationsAt(1)
	if _, ok := n0.dirLeases[ghost]; ok {
		t.Fatal("lease pointing at the suspect peer survived")
	}
	if _, ok := n0.dirLeases[other]; !ok {
		t.Fatal("unrelated lease dropped on suspicion")
	}

	// Expiry: a lease past its deadline is discarded and counted, and the
	// query falls through to the shard.
	before := dirCounter(c, "dir_lease_expired")
	lookupsBefore := dirCounter(c, "dir_lookups")
	n0.dirLeases[ghost] = dirLease{node: 1, epoch: 3, expires: n0.now()}
	n0.dirLookupQuery(ghost, false, func(ok bool, node int32, epoch uint32) {})
	if got := dirCounter(c, "dir_lease_expired"); got != before+1 {
		t.Errorf("dir_lease_expired = %d, want %d", got, before+1)
	}
	if got := dirCounter(c, "dir_lookups"); got != lookupsBefore+1 {
		t.Errorf("expired lease did not fall through to a shard query")
	}
	if _, ok := n0.dirLeases[ghost]; ok {
		t.Fatal("expired lease still cached")
	}
}

const healedPingSrc = `
object Probe
  operation ping() -> (r: String)
    r <- str(thisnode())
  end
end Probe
object Main
  process
    var p: Probe <- new Probe
    move p to node(1)
    print(p.ping())
    var i: Int <- 0
    while i < 5000000 do
      i <- i + 1
    end
    print(p.ping())
    print(p.ping())
    print(p.ping())
  end process
end Main
`

// healedPlan crashes the probe's home early and restarts it well before the
// post-loop pings: the home is suspected (marking node 0's proxy stale),
// then heals. The compactor is idled so the invoke-time path is what heals.
func healedPlan() *chaos.Plan {
	return &chaos.Plan{
		Seed:           1,
		Crashes:        []chaos.Crash{{Node: 1, At: 200_000, RestartAt: 400_000}},
		HeartbeatEvery: 20_000,
		SuspectAfter:   100_000,
		CommitTimeout:  60_000,
		RTOBase:        20_000,
		RTOMax:         80_000,
		MaxRetrans:     5,
	}
}

// TestDirRerouteAfterRecovery is the healed-home regression: the directory
// record for the probe still names node 1 — the same node the proxy already
// knows — so the refresh changes nothing, yet the call must redispatch (the
// home is back up) instead of faulting. And the heal must stick: the two
// follow-up pings ride the healthy fast path without re-querying the shard
// on every invoke.
func TestDirRerouteAfterRecovery(t *testing.T) {
	models := []netsim.MachineModel{mSPARC, mSPARC, mSPARC}
	cfg := dirConfig(3, healedPlan())
	cfg.DirCompactPeriodMicros = 60_000_000 // idle the compactor
	c := runSrc(t, healedPingSrc, models, cfg)
	want := "node1\nnode1\nnode1\nnode1"
	if got := c.OutputText(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	// The first post-heal ping rerouted through the directory exactly once;
	// the rest took the fast path. More lookups than reroutes means healed
	// proxies kept re-querying the shard on every invoke.
	reroutes := dirCounter(c, "dir_reroutes")
	lookups := dirCounter(c, "dir_lookups")
	if reroutes != 1 {
		t.Errorf("dir_reroutes = %d, want exactly 1 (the first post-heal ping)", reroutes)
	}
	if lookups != reroutes {
		t.Errorf("dir_lookups = %d with %d reroutes; healed proxy still re-queries per invoke",
			lookups, reroutes)
	}
}

// buildLocateChain plants a ghost forwarding chain for the probe: each node
// in hops[0..len-2] gets a proxy pointing at the next, and the final entry
// must be the probe's real home. Returns the probe OID.
func buildLocateChain(t *testing.T, c *Cluster, hops []int) oid.OID {
	t.Helper()
	home := hops[len(hops)-1]
	var probe oid.OID
	for id, o := range c.Nodes[home].objects {
		if o.Resident && o.Kind == ObjPlain && uint32(id) >= 0x10000 {
			probe = id
		}
	}
	if probe == 0 {
		t.Fatalf("probe object not found on node %d", home)
	}
	for i := 0; i+1 < len(hops); i++ {
		c.Nodes[hops[i]].proxyFor(probe, hops[i+1])
	}
	return probe
}

// TestLocateChaseHopBudgetBoundary: a chain of exactly maxLocateHops live
// forwards must still resolve — the budget is a bound on forwards taken,
// not on chain length minus one — while one more hop exhausts it, and the
// exhausted chase accounts its hops like a resolved one.
func TestLocateChaseHopBudgetBoundary(t *testing.T) {
	// 18 nodes: the probe lives on node 1, and nodes 2..17 form a ghost
	// forwarding chain 2 -> 3 -> ... -> 17 -> 1 (16 live forwards end to
	// end).
	models := make([]netsim.MachineModel, 18)
	for i := range models {
		models[i] = mSPARC
	}
	c := runSrc(t, probeSrc, models, DefaultConfig())
	chain := make([]int, 0, 17)
	for i := 2; i <= 17; i++ {
		chain = append(chain, i)
	}
	chain = append(chain, 1)
	probe := buildLocateChain(t, c, chain)

	drive := func(start int, hops uint16) (gotHops, exhausted uint64) {
		h0 := dirCounter(c, "locate_chase_hops")
		x0 := dirCounter(c, "locate_chase_exhausted")
		c.Nodes[start].recvLocate(0, &wire.Locate{
			Target: probe, Origin: 0, ReplyFrag: 0xdead0001, Hops: hops})
		if err := c.Run(1_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return dirCounter(c, "locate_chase_hops") - h0,
			dirCounter(c, "locate_chase_exhausted") - x0
	}

	// 15 forwards (enter the chain one node in): resolves.
	if hops, exhausted := drive(3, 0); hops != maxLocateHops-1 || exhausted != 0 {
		t.Errorf("15-hop chain: hops=%d exhausted=%d, want %d/0", hops, exhausted, maxLocateHops-1)
	}
	// Exactly maxLocateHops forwards: must still resolve.
	if hops, exhausted := drive(2, 0); hops != maxLocateHops || exhausted != 0 {
		t.Errorf("16-hop chain: hops=%d exhausted=%d, want %d/0", hops, exhausted, maxLocateHops)
	}
	// One over budget (the chase arrives already one hop deep): fails after
	// walking the full budget, and the walked hops are accounted.
	if hops, exhausted := drive(2, 1); hops != maxLocateHops || exhausted != 1 {
		t.Errorf("17-hop chain: hops=%d exhausted=%d, want %d/1", hops, exhausted, maxLocateHops)
	}
}
