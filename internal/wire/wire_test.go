package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/oid"
)

func TestEncDecPrimitives(t *testing.T) {
	e := &Enc{}
	e.U8(7)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.I32(-42)
	e.Str([]byte("hello"))
	e.OID(oid.OID(123))
	d := NewDec(e.Bytes())
	if d.U8() != 7 || d.U16() != 0xbeef || d.U32() != 0xdeadbeef || d.I32() != -42 {
		t.Fatal("primitive roundtrip failed")
	}
	if string(d.Str()) != "hello" || d.OID() != 123 {
		t.Fatal("str/oid roundtrip failed")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestEncBigEndian(t *testing.T) {
	e := &Enc{}
	e.U32(0x11223344)
	want := []byte{0x11, 0x22, 0x33, 0x44}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("network byte order: got % x, want % x", e.Bytes(), want)
	}
}

func TestDecTruncation(t *testing.T) {
	d := NewDec([]byte{1, 2})
	d.U32()
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Oversized string length must not panic.
	e := &Enc{}
	e.U32(1 << 30)
	d = NewDec(e.Bytes())
	d.Str()
	if d.Err() == nil {
		t.Fatal("expected string-length error")
	}
}

func TestValueRoundtrip(t *testing.T) {
	vals := []Value{
		IntV(42), IntV(0xffffffff), RealBitsV(math.Float32bits(3.5)),
		RefV(777), NilV(), StringV([]byte("abc")), StringV(nil), RawV(0x12345678),
	}
	e := &Enc{}
	e.Values(vals)
	d := NewDec(e.Bytes())
	got := d.Values()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range vals {
		if got[i].Kind != vals[i].Kind || got[i].Bits != vals[i].Bits ||
			!bytes.Equal(got[i].Str, vals[i].Str) {
			t.Errorf("value %d: got %+v want %+v", i, got[i], vals[i])
		}
	}
}

func TestCallConverterCounts(t *testing.T) {
	c := NewCallConverter()
	c.IntToWire(5)
	c.RealToWire(arch.IEEEFloat{}.Enc(1.5), arch.IEEEFloat{})
	c.RefToWire(oid.OID(9))
	st := c.Stats()
	if st.Calls != 2+3+2 {
		t.Errorf("calls = %d, want 7", st.Calls)
	}
	if st.Values != 3 || st.Bytes != 12 {
		t.Errorf("values=%d bytes=%d", st.Values, st.Bytes)
	}
	// The paper's observation: 1-2 conversion calls per byte transferred.
	perByte := float64(st.Calls) / float64(st.Bytes)
	if perByte < 0.5 || perByte > 1.0 {
		t.Errorf("calls per byte = %.2f (value-level); message overhead brings this to the paper's 1-2", perByte)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("reset failed")
	}
}

func TestBatchedConverterCheaper(t *testing.T) {
	slow, fast := NewCallConverter(), NewBatchedConverter()
	for i := 0; i < 100; i++ {
		slow.IntToWire(uint32(i))
		fast.IntToWire(uint32(i))
	}
	if slow.Stats().Calls <= fast.Stats().Calls {
		t.Errorf("batched (%d calls) not cheaper than per-value (%d)",
			fast.Stats().Calls, slow.Stats().Calls)
	}
	if fast.Stats().Calls != 100 || slow.Stats().Calls != 200 {
		t.Errorf("calls: slow=%d fast=%d", slow.Stats().Calls, fast.Stats().Calls)
	}
}

func TestRealConversionAcrossFormats(t *testing.T) {
	// VAX real -> wire -> SPARC real must preserve the value while changing
	// the bits.
	c := NewCallConverter()
	vax, ieee := arch.VAXFloat{}, arch.IEEEFloat{}
	orig := float32(6.25)
	vaxBits := vax.Enc(orig)
	w := c.RealToWire(vaxBits, vax)
	if w.Bits != ieee.Enc(orig) {
		t.Fatalf("wire bits %#x, want IEEE %#x", w.Bits, ieee.Enc(orig))
	}
	sparcBits, err := c.RealFromWire(w, ieee)
	if err != nil || ieee.Dec(sparcBits) != orig {
		t.Fatalf("sparc value %g (err %v)", ieee.Dec(sparcBits), err)
	}
	if sparcBits == vaxBits {
		t.Error("VAX and SPARC bits identical; format conversion is a no-op")
	}
	// And back to a VAX.
	backBits, err := c.RealFromWire(w, vax)
	if err != nil || vax.Dec(backBits) != orig {
		t.Fatalf("vax round trip %g (err %v)", vax.Dec(backBits), err)
	}
}

func TestRawConverterPassesBitsUnchanged(t *testing.T) {
	c := NewRawConverter()
	v := c.RealToWire(0xdeadbeef, arch.VAXFloat{})
	if v.Kind != WRaw || v.Bits != 0xdeadbeef {
		t.Fatalf("raw real = %+v", v)
	}
	back, err := c.RealFromWire(v, arch.VAXFloat{})
	if err != nil || back != 0xdeadbeef {
		t.Fatal("raw real roundtrip changed bits")
	}
	if c.Stats().Calls != 0 {
		t.Errorf("raw converter charged %d calls", c.Stats().Calls)
	}
	// References are still swizzled even on the fast path.
	r := c.RefToWire(oid.OID(5))
	if r.Kind != WRef || r.OID() != 5 {
		t.Errorf("raw ref = %+v", r)
	}
}

func TestConverterKindMismatch(t *testing.T) {
	c := NewCallConverter()
	if _, err := c.IntFromWire(RefV(1)); err == nil {
		t.Error("int from ref should fail")
	}
	if _, err := c.RealFromWire(IntV(1), arch.IEEEFloat{}); err == nil {
		t.Error("real from int should fail")
	}
	if _, err := c.RefFromWire(IntV(1)); err == nil {
		t.Error("ref from int should fail")
	}
	if o, err := c.RefFromWire(NilV()); err != nil || o != oid.Nil {
		t.Error("nil ref must decode to the nil OID")
	}
}

func roundtripMsg(t *testing.T, m *Msg) *Msg {
	t.Helper()
	buf := m.Marshal()
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return got
}

func TestInvokeRoundtrip(t *testing.T) {
	m := &Msg{Src: 1, Dst: 2, Seq: 77, Payload: &Invoke{
		Target: 55, OpName: "inc", CallerFrag: 0x01000009,
		Args:  []Value{IntV(3), StringV([]byte("hi")), RefV(12), NilV()},
		Hints: []LocHint{{OID: 12, Node: 3}},
	}}
	got := roundtripMsg(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip:\n%+v\n%+v", m.Payload, got.Payload)
	}
}

func TestReturnRoundtrip(t *testing.T) {
	m := &Msg{Src: 2, Dst: 1, Seq: 78, Payload: &Return{
		CallerFrag: 9, Ok: true, Result: RealBitsV(0x40490fdb),
	}}
	got := roundtripMsg(t, m)
	p := got.Payload.(*Return)
	if !p.Ok || p.Result.Bits != 0x40490fdb || p.CallerFrag != 9 {
		t.Fatalf("return = %+v", p)
	}
	m2 := &Msg{Src: 2, Dst: 1, Seq: 79, Payload: &Return{
		CallerFrag: 9, Ok: false, FaultMsg: "division by zero",
	}}
	p2 := roundtripMsg(t, m2).Payload.(*Return)
	if p2.Ok || p2.FaultMsg != "division by zero" {
		t.Fatalf("fault return = %+v", p2)
	}
}

func TestMoveRoundtrip(t *testing.T) {
	m := &Msg{Src: 0, Dst: 3, Seq: 5, Payload: &Move{
		Object: 100, CodeOID: 2, Fixed: true,
		Data:      []Value{IntV(13), RefV(101), StringV([]byte("name"))},
		MonLocked: true, MonHolder: 7,
		EntryQueue: []uint32{8, 9},
		CondQueues: [][]uint32{{10}, nil},
		Frags: []Fragment{{
			FragID: 7, LinkNode: 0, LinkFrag: 3, Status: FragRunnable, Executing: true,
			Acts: []MIActivation{
				{CodeOID: 2, FuncIndex: 1, Stop: 4,
					Vars:  []Value{IntV(1), RealBitsV(0x3f800000)},
					Temps: []Value{IntV(9)}},
				{CodeOID: 2, FuncIndex: 0, Stop: 2, Vars: []Value{NilV()}},
			},
		}, {
			FragID: 8, LinkNode: 1, LinkFrag: 44, Status: FragBlockedEntry,
			Acts: []MIActivation{{CodeOID: 2, FuncIndex: 1, Stop: EntryStop}},
		}},
		Hints: []LocHint{{OID: 101, Node: 0}},
	}}
	got := roundtripMsg(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("move roundtrip:\n%+v\n%+v", m.Payload, got.Payload)
	}
}

func TestMoveReqLocateRoundtrips(t *testing.T) {
	for _, p := range []Payload{
		&MoveReq{Target: 9, Dest: 2, Fix: true},
		&UnfixReq{Target: 9, Refix: true, Dest: 1},
		&Locate{Target: 3, ReplyFrag: 12},
		&LocateReply{Target: 3, Node: -1, ReplyFrag: 12},
		&UpdateLoc{Target: 3, Node: 2},
	} {
		m := &Msg{Src: 1, Dst: 0, Seq: 1, Payload: p}
		got := roundtripMsg(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T roundtrip mismatch", p)
		}
	}
}

func TestDirMessageRoundtrips(t *testing.T) {
	for _, p := range []Payload{
		&DirPrepare{Target: 9, Epoch: 3, Ballot: 0x1_0002_0003},
		&DirPromise{Target: 9, Epoch: 3, Ballot: 0x1_0002_0003, Ok: true,
			Promised: 0x1_0002_0003, AccBallot: 0x10001, AccNode: 2},
		&DirPromise{Target: 9, Epoch: 3, Ballot: 0x10001, Ok: false,
			Promised: 0x20001, AccNode: -1},
		&DirAccept{Target: 9, Epoch: 3, Ballot: 0x1_0002_0003, Node: 2},
		&DirAccepted{Target: 9, Epoch: 3, Ballot: 0x1_0002_0003, Ok: true,
			Promised: 0x1_0002_0003},
		&DirLearn{Target: 9, Epoch: 3, Node: 2},
		&DirLookup{Target: 9, Token: 41},
		&DirLookupReply{Target: 9, Token: 41, Ok: true, Node: 2, Epoch: 3},
		&DirLookupReply{Target: 9, Token: 42, Node: -1},
	} {
		m := &Msg{Src: 1, Dst: 0, Seq: 1, Payload: p}
		got := roundtripMsg(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T roundtrip mismatch:\n%+v\n%+v", p, m.Payload, got.Payload)
		}
	}
}

func TestEncDecU64(t *testing.T) {
	var e Enc
	e.U64(0xdead_beef_cafe_f00d)
	if e.Len() != 8 {
		t.Fatalf("U64 encoded %d bytes", e.Len())
	}
	d := Dec{buf: e.Bytes()}
	if v := d.U64(); v != 0xdead_beef_cafe_f00d || d.Err() != nil {
		t.Fatalf("U64 roundtrip = %x err=%v", v, d.Err())
	}
	short := Dec{buf: e.Bytes()[:5]}
	short.U64()
	if short.Err() == nil {
		t.Fatalf("truncated U64 must error")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0xff, 1, 2, 3}); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := Unmarshal([]byte{byte(MInvoke), 1}); err == nil {
		t.Error("truncated invoke must fail")
	}
	m := &Msg{Src: 1, Dst: 2, Seq: 3, Payload: &Invoke{Target: 4, OpName: "x"}}
	buf := m.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-3]); err == nil {
		t.Error("truncated tail must fail")
	}
}

func TestQuickValueRoundtrip(t *testing.T) {
	f := func(kind byte, bits uint32, str []byte) bool {
		v := Value{Kind: WKind(kind % 6), Bits: bits}
		if v.Kind == WString {
			v.Bits = 0
			v.Str = str
			if len(v.Str) == 0 {
				v.Str = nil
			}
		}
		e := &Enc{}
		e.Value(v)
		d := NewDec(e.Bytes())
		got := d.Value()
		if d.Err() != nil {
			return false
		}
		if len(got.Str) == 0 {
			got.Str = nil
		}
		return got.Kind == v.Kind && got.Bits == v.Bits && bytes.Equal(got.Str, v.Str)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireSize(t *testing.T) {
	if IntV(1).WireSize() != 5 {
		t.Error("int size")
	}
	if StringV([]byte("abcd")).WireSize() != 9 {
		t.Error("string size")
	}
}

func TestDirGroupMessageRoundtrips(t *testing.T) {
	slots := []DirSlotRef{{Target: 9, Epoch: 3}, {Target: 12, Epoch: 1}}
	for _, p := range []Payload{
		&DirGPrepare{Token: 7, Ballot: 0x1_0002_0003, Slots: slots},
		&DirGPromise{Token: 7, Ballot: 0x1_0002_0003, Ok: true,
			Promised: 0x1_0002_0003, AccBallots: []uint64{0, 0x10001}, AccNodes: []int32{-1, 2}},
		&DirGPromise{Token: 7, Ballot: 0x10001, Ok: false, Promised: 0x20001},
		&DirGAccept{Token: 7, Ballot: 0x1_0002_0003, Slots: slots, Nodes: []int32{2, 0}},
		&DirGAccepted{Token: 7, Ballot: 0x1_0002_0003, Ok: true, Promised: 0x1_0002_0003},
		&DirGAccepted{Token: 8, Ballot: 0x10001, Ok: false, Promised: 0x30001},
		&DirGLearn{Slots: slots, Nodes: []int32{2, 0}},
		&DirGPrepare{Token: 9, Ballot: 0x10001}, // empty slot list survives
	} {
		m := &Msg{Src: 1, Dst: 0, Seq: 1, Payload: p}
		got := roundtripMsg(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T roundtrip mismatch:\n%+v\n%+v", p, m.Payload, got.Payload)
		}
	}
}

func TestDirLookupReplyLeaseRoundtrip(t *testing.T) {
	m := &Msg{Src: 1, Dst: 0, Seq: 1, Payload: &DirLookupReply{
		Target: 9, Token: 41, Ok: true, Node: 2, Epoch: 3, Lease: 150_000}}
	p := roundtripMsg(t, m).Payload.(*DirLookupReply)
	if p.Lease != 150_000 || !p.Ok || p.Node != 2 {
		t.Fatalf("lease reply = %+v", p)
	}
	// Lease-free replies stay lease-free.
	m2 := &Msg{Src: 1, Dst: 0, Seq: 2, Payload: &DirLookupReply{Target: 9, Token: 42, Node: -1}}
	if p2 := roundtripMsg(t, m2).Payload.(*DirLookupReply); p2.Lease != 0 {
		t.Fatalf("ghost lease %d", p2.Lease)
	}
}
