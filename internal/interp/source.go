// The source-level interpreter: the top of the Figure 2 hierarchy.
// "Program execution lower in the hierarchy is typically faster than
// program execution higher up" — this level re-examines the AST on every
// step.

package interp

import (
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/lang/types"
)

// Source interprets a checked program directly from its AST.
type Source struct {
	rt   *RT
	info *types.Info
}

// NewSource builds a source interpreter.
func NewSource(info *types.Info) *Source {
	return &Source{rt: NewRT(), info: info}
}

// RT exposes the runtime (output, faults, step counts).
func (s *Source) RT() *RT { return s.rt }

// Run boots the program (the object named Main, or every process object)
// and interprets to completion.
func (s *Source) Run() {
	roots := rootDecls(s.info)
	for _, od := range roots {
		od := od
		s.rt.Spawn(func(t *Thread) {
			s.create(od, nil)
		})
	}
	s.rt.Run()
}

// rootDecls mirrors the kernel loader's rule.
func rootDecls(info *types.Info) []*ast.ObjectDecl {
	if m, ok := info.Objects["Main"]; ok && m.Process != nil {
		return []*ast.ObjectDecl{m}
	}
	var out []*ast.ObjectDecl
	for _, od := range info.Program.Objects {
		if od.Process != nil {
			out = append(out, od)
		}
	}
	return out
}

type srcEnv struct {
	fn     *types.Func
	locals []any
	self   *Object
}

// ctl is a statement's control outcome.
type ctl int

const (
	ctlNone ctl = iota
	ctlReturn
	ctlExit
)

// create instantiates an object: zeroed vars, condition indices,
// initializers, constructor args, initially, process spawn.
func (s *Source) create(od *ast.ObjectDecl, args []any) *Object {
	vars := s.info.ObjVars[od]
	obj := &Object{Decl: od, Vars: make([]any, len(vars)),
		conds: make([][]*Thread, s.info.NumConds[od])}
	for i, sym := range vars {
		obj.Vars[i] = zeroOf(sym.Type)
		if sym.Type.Kind == types.KCond {
			obj.Vars[i] = CondVal(sym.CondIndex)
		}
	}
	initEnv := &srcEnv{fn: s.info.InitOf[od], self: obj,
		locals: make([]any, s.info.InitOf[od].NumSlots)}
	for _, vd := range od.AllVars() {
		if vd.Init != nil {
			sym := s.objVar(od, vd.Name)
			obj.Vars[sym.Index] = s.convert(s.eval(initEnv, vd.Init), sym.Type)
		}
	}
	for i, a := range args {
		obj.Vars[i] = s.convert(a, vars[i].Type)
	}
	if od.Initially != nil {
		s.execBlock(initEnv, od.Initially)
	}
	if od.Process != nil {
		proc := s.info.ProcessOf[od]
		s.rt.Spawn(func(t *Thread) {
			env := &srcEnv{fn: proc, self: obj, locals: make([]any, proc.NumSlots)}
			s.execBlock(env, od.Process)
		})
	}
	return obj
}

func (s *Source) objVar(od *ast.ObjectDecl, name string) *types.Symbol {
	for _, sym := range s.info.ObjVars[od] {
		if sym.Name == name {
			return sym
		}
	}
	Faultf("no object variable %s", name)
	return nil
}

// zeroOf returns the zero value of a semantic type.
func zeroOf(t *types.Type) any {
	switch t.Kind {
	case types.KInt, types.KCond:
		return int32(0)
	case types.KBool:
		return false
	case types.KReal:
		return float32(0)
	case types.KNode:
		return NodeVal(0)
	default:
		return nil
	}
}

// convert applies the implicit Int -> Real widening.
func (s *Source) convert(v any, want *types.Type) any {
	if want.Kind == types.KReal {
		if i, ok := v.(int32); ok {
			return float32(i)
		}
	}
	return v
}

// invoke runs an operation (monitored entry/exit included) and returns the
// first result value (int32(0) when the operation has none).
func (s *Source) invoke(recv *Object, op *ast.OpDecl, args []any) any {
	f := s.info.FuncOf[op]
	env := &srcEnv{fn: f, self: recv, locals: make([]any, f.NumSlots)}
	for i, sym := range f.Params {
		env.locals[sym.Index] = s.convert(args[i], sym.Type)
	}
	for _, sym := range f.Results {
		env.locals[sym.Index] = zeroOf(sym.Type)
	}
	if op.Monitored {
		s.rt.MonEnter(recv)
	}
	s.execBlock(env, op.Body)
	if op.Monitored {
		s.rt.MonExit(recv)
	}
	if len(f.Results) > 0 {
		return env.locals[f.Results[0].Index]
	}
	return int32(0)
}

// ---------------------------------------------------------------- statements

func (s *Source) execBlock(env *srcEnv, b *ast.Block) ctl {
	for _, st := range b.Stmts {
		if c := s.execStmt(env, st); c != ctlNone {
			return c
		}
	}
	return ctlNone
}

func (s *Source) execStmt(env *srcEnv, st ast.Stmt) ctl {
	s.rt.Steps++
	switch st := st.(type) {
	case *ast.DeclStmt:
		sym := s.info.LocalDecls[st.Decl]
		if st.Decl.Init != nil {
			env.locals[sym.Index] = s.convert(s.eval(env, st.Decl.Init), sym.Type)
		} else {
			env.locals[sym.Index] = zeroOf(sym.Type)
		}
	case *ast.AssignStmt:
		v := s.eval(env, st.Rhs)
		switch lhs := st.Lhs.(type) {
		case *ast.Ident:
			sym := s.info.Uses[lhs]
			v = s.convert(v, sym.Type)
			if sym.Kind == types.SymLocal {
				env.locals[sym.Index] = v
			} else {
				env.self.Vars[sym.Index] = v
			}
		case *ast.Index:
			arr := s.asArray(s.eval(env, lhs.X))
			i := AsInt(s.eval(env, lhs.I))
			if i < 0 || int(i) >= len(arr.Elems) {
				Faultf("index %d out of bounds (length %d)", i, len(arr.Elems))
			}
			at := s.info.TypeOf(lhs.X)
			arr.Elems[i] = s.convert(v, at.Elem)
		}
	case *ast.ExprStmt:
		s.eval(env, st.X)
	case *ast.IfStmt:
		if Truthy(s.eval(env, st.Cond)) {
			return s.execBlock(env, st.Then)
		}
		for _, arm := range st.Elifs {
			if Truthy(s.eval(env, arm.Cond)) {
				return s.execBlock(env, arm.Then)
			}
		}
		if st.Else != nil {
			return s.execBlock(env, st.Else)
		}
	case *ast.LoopStmt:
		for {
			c := s.execBlock(env, st.Body)
			if c == ctlExit {
				return ctlNone
			}
			if c == ctlReturn {
				return c
			}
			s.poll()
		}
	case *ast.WhileStmt:
		for Truthy(s.eval(env, st.Cond)) {
			c := s.execBlock(env, st.Body)
			if c == ctlExit {
				return ctlNone
			}
			if c == ctlReturn {
				return c
			}
			s.poll()
		}
	case *ast.ExitStmt:
		if st.When == nil || Truthy(s.eval(env, st.When)) {
			return ctlExit
		}
	case *ast.ReturnStmt:
		return ctlReturn
	case *ast.MoveStmt:
		s.eval(env, st.X)
		s.eval(env, st.To) // single node: moves are no-ops
	case *ast.FixStmt:
		s.eval(env, st.X)
		s.eval(env, st.At)
	case *ast.UnfixStmt:
		s.eval(env, st.X)
	case *ast.WaitStmt:
		k := AsInt(s.eval(env, st.Cond))
		s.rt.Wait(env.self, int(k))
	case *ast.SignalStmt:
		k := AsInt(s.eval(env, st.Cond))
		s.rt.Signal(env.self, int(k))
	}
	return ctlNone
}

// poll yields at loop bottoms when other threads are runnable (the
// interpreter's bus stop).
func (s *Source) poll() {
	if len(s.rt.runq) > 0 {
		s.rt.Yield()
	}
}

func (s *Source) asArray(v any) *Array {
	a, ok := v.(*Array)
	if !ok {
		Faultf("expected an array, got %T", v)
	}
	return a
}

// ---------------------------------------------------------------- expressions

func (s *Source) eval(env *srcEnv, e ast.Expr) any {
	s.rt.Steps++
	switch e := e.(type) {
	case *ast.IntLit:
		return int32(e.Value)
	case *ast.RealLit:
		return float32(e.Value)
	case *ast.StringLit:
		return e.Value
	case *ast.BoolLit:
		return e.Value
	case *ast.NilLit:
		return nil
	case *ast.SelfExpr:
		return env.self
	case *ast.Ident:
		sym := s.info.Uses[e]
		if sym.Kind == types.SymLocal {
			return env.locals[sym.Index]
		}
		return env.self.Vars[sym.Index]
	case *ast.Unary:
		v := s.eval(env, e.X)
		switch e.Op {
		case token.Not:
			return !Truthy(v)
		case token.Minus:
			if r, ok := v.(float32); ok {
				return -r
			}
			return -AsInt(v)
		}
	case *ast.Binary:
		return s.binary(env, e)
	case *ast.Invoke:
		return s.evalInvoke(env, e)
	case *ast.New:
		return s.evalNew(env, e)
	case *ast.Index:
		cv := s.eval(env, e.X)
		i := AsInt(s.eval(env, e.I))
		switch c := cv.(type) {
		case string:
			if i < 0 || int(i) >= len(c) {
				Faultf("index %d out of bounds (length %d)", i, len(c))
			}
			return int32(c[i])
		case *Array:
			if i < 0 || int(i) >= len(c.Elems) {
				Faultf("index %d out of bounds (length %d)", i, len(c.Elems))
			}
			return c.Elems[i]
		}
		Faultf("cannot index %T", cv)
	}
	Faultf("cannot evaluate %T", e)
	return nil
}

func (s *Source) binary(env *srcEnv, e *ast.Binary) any {
	x := s.eval(env, e.X)
	y := s.eval(env, e.Y)
	xt, yt := s.info.TypeOf(e.X), s.info.TypeOf(e.Y)
	isReal := xt.Kind == types.KReal || yt.Kind == types.KReal
	switch e.Op {
	case token.Plus:
		if xs, ok := x.(string); ok {
			return xs + y.(string)
		}
		if isReal {
			return AsReal(x) + AsReal(y)
		}
		return AsInt(x) + AsInt(y)
	case token.Minus:
		if isReal {
			return AsReal(x) - AsReal(y)
		}
		return AsInt(x) - AsInt(y)
	case token.Star:
		if isReal {
			return AsReal(x) * AsReal(y)
		}
		return AsInt(x) * AsInt(y)
	case token.Slash:
		if isReal {
			d := AsReal(y)
			if d == 0 {
				Faultf("division by zero")
			}
			return AsReal(x) / d
		}
		d := AsInt(y)
		if d == 0 {
			Faultf("division by zero")
		}
		return AsInt(x) / d
	case token.Percent:
		d := AsInt(y)
		if d == 0 {
			Faultf("division by zero")
		}
		return AsInt(x) % d
	case token.And:
		return Truthy(x) && Truthy(y)
	case token.Or:
		return Truthy(x) || Truthy(y)
	}
	// Comparisons.
	var lt, eq bool
	switch {
	case xt.Kind == types.KString && yt.Kind == types.KString:
		xs, ys := x.(string), y.(string)
		lt, eq = xs < ys, xs == ys
	case isReal:
		xv, yv := AsReal(x), AsReal(y)
		lt, eq = xv < yv, xv == yv
	case xt.IsPointer() || yt.IsPointer():
		eq = x == y
	default:
		xv, yv := AsInt(x), AsInt(y)
		lt, eq = xv < yv, xv == yv
	}
	switch e.Op {
	case token.Eq:
		return eq
	case token.NotEq:
		return !eq
	case token.Lt:
		return lt
	case token.Le:
		return lt || eq
	case token.Gt:
		return !lt && !eq
	case token.Ge:
		return !lt
	}
	Faultf("unknown operator %v", e.Op)
	return nil
}

func (s *Source) evalNew(env *srcEnv, e *ast.New) any {
	t := s.info.TypeOf(e)
	if t.Kind == types.KArray {
		n := AsInt(s.eval(env, e.Args[0]))
		if n < 0 {
			Faultf("negative array length")
		}
		a := &Array{Elems: make([]any, n)}
		for i := range a.Elems {
			a.Elems[i] = zeroOf(t.Elem)
		}
		return a
	}
	args := make([]any, len(e.Args))
	for i, ae := range e.Args {
		args[i] = s.eval(env, ae)
	}
	return s.create(t.Obj, args)
}

func (s *Source) evalInvoke(env *srcEnv, e *ast.Invoke) any {
	tgt := s.info.Targets[e]
	if tgt.Builtin != "" {
		return s.builtin(env, e, tgt.Builtin)
	}
	args := make([]any, len(e.Args))
	for i, ae := range e.Args {
		args[i] = s.eval(env, ae)
	}
	var recv *Object
	if tgt.OnSelf {
		recv = env.self
	} else {
		rv := s.eval(env, e.Recv)
		if rv == nil {
			Faultf("invocation of %s on nil", e.OpName)
		}
		var ok bool
		recv, ok = rv.(*Object)
		if !ok {
			Faultf("invocation of %s on a non-object value", e.OpName)
		}
	}
	op := tgt.Op
	if tgt.Dynamic {
		op = recv.Decl.Op(e.OpName)
		if op == nil {
			Faultf("%s has no operation %s", recv.Decl.Name, e.OpName)
		}
		if len(op.Params) != len(args) {
			Faultf("%s takes %d arguments, got %d", e.OpName, len(op.Params), len(args))
		}
	}
	return s.invoke(recv, op, args)
}

func (s *Source) builtin(env *srcEnv, e *ast.Invoke, name string) any {
	switch name {
	case ast.BuiltinPrint:
		var b strings.Builder
		for _, ae := range e.Args {
			b.WriteString(FormatValue(s.eval(env, ae)))
		}
		s.rt.Print(b.String())
		return int32(0)
	case ast.BuiltinNodes:
		return int32(1)
	case ast.BuiltinThisNode:
		return NodeVal(0)
	case ast.BuiltinNodeAt:
		i := AsInt(s.eval(env, e.Args[0]))
		if i != 0 {
			Faultf("node(%d) out of range", i)
		}
		return NodeVal(0)
	case ast.BuiltinLocate:
		s.eval(env, e.Args[0])
		return NodeVal(0)
	case ast.BuiltinTimeMS:
		// Pseudo-time: proportional to interpretation work.
		return int32(s.rt.Steps / 5000)
	case ast.BuiltinYield:
		s.rt.Yield()
		return int32(0)
	case ast.BuiltinStr:
		return FormatValue(s.eval(env, e.Args[0]))
	case ast.BuiltinAbs:
		v := AsInt(s.eval(env, e.Args[0]))
		if v < 0 {
			v = -v
		}
		return v
	case ast.BuiltinSize:
		switch c := s.eval(env, e.Recv).(type) {
		case string:
			return int32(len(c))
		case *Array:
			return int32(len(c.Elems))
		}
		Faultf("size() on a non-container")
	}
	Faultf("unknown builtin %s", name)
	return nil
}
