package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kernel"
)

func sampleCells() []Cell {
	pairs := Table1Pairs()
	return []Cell{
		{Pair: pairs[0], OriginalMS: 38.9, EnhancedMS: 64.8, OverheadPct: 66.4,
			ConvCalls: 572, BytesPerMoves: 154},
		{Pair: pairs[1], OriginalMS: -1, EnhancedMS: 121.7, OverheadPct: -1,
			ConvCalls: 572, BytesPerMoves: 154},
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBenchJSON(dir, "table1", BenchTable1Doc(sampleCells()))
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_table1.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc BenchTable1
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_table1.json is not valid JSON: %v", err)
	}
	if doc.Benchmark != "table1" || len(doc.Rows) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	r := doc.Rows[0]
	if r.Pair != "SPARC<->SPARC" || r.EnhancedMS != 64.8 || r.ConvCalls != 572 {
		t.Errorf("row 0 did not round-trip: %+v", r)
	}
	if doc.Rows[1].OriginalMS != -1 {
		t.Errorf("inapplicable original cell should stay -1, got %v", doc.Rows[1].OriginalMS)
	}
}

func TestBenchJSONDeterministic(t *testing.T) {
	dir := t.TempDir()
	cells := sampleCells()
	p1, err := WriteBenchJSON(dir, "a", BenchTable1Doc(cells))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WriteBenchJSON(dir, "b", BenchTable1Doc(cells))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Error("identical documents encoded to different bytes")
	}
}

func TestBenchFig2ExcludesWallClock(t *testing.T) {
	rows := []Fig2Row{{Level: "source", Output: "7", WallNS: 12345, Work: 99, Hardware: "machine independent"}}
	data, err := json.Marshal(BenchFig2Doc(rows))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	row := m["rows"].([]any)[0].(map[string]any)
	for k := range row {
		if k == "wall_ns" || k == "WallNS" {
			t.Error("fig2 JSON must not carry nondeterministic wall-clock fields")
		}
	}
	if row["work_units"].(float64) != 99 {
		t.Errorf("work_units = %v, want 99", row["work_units"])
	}
}

func TestBenchConvDoc(t *testing.T) {
	rs := []ConvResult{{Mode: kernel.ModeEnhanced, MovesMS: 64.8, ConvCalls: 14872,
		WireBytes: 8022, CallsPerByte: 1.85}}
	doc := BenchConvDoc(rs)
	if doc.Rows[0].Mode != kernel.ModeEnhanced.String() {
		t.Errorf("mode = %q", doc.Rows[0].Mode)
	}
}
