// The frame-layer injector: implements netsim.Injector, drawing every
// decision from the plan's seeded PRNG and emitting an obs event plus a
// metric for each injected fault so recovery is visible in the trace.
//
// Randomness is partitioned per (src,dst) link: each link gets its own
// splitmix64 stream derived from the plan seed, so a frame's verdict is a
// pure function of (plan, link, that link's frame index). That makes
// verdicts independent of how frames from different senders interleave —
// required for the parallel engine, where each sending node draws its own
// links' verdicts on its own goroutine, and the interleaving across nodes
// is not deterministic (only the per-link frame order is).
package chaos

import (
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// rng is splitmix64: tiny, fast, and fully deterministic across platforms.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// mix folds a link identity into the plan seed (one splitmix64 round over
// the combined bits, so nearby links get uncorrelated streams).
func mix(seed uint64, src, dst int) uint64 {
	r := rng{state: seed ^ (uint64(src+1) << 32) ^ uint64(dst+1)}
	return r.next()
}

// Fault kinds, in the order they are counted.
var faultKinds = []string{"drop", "dup", "delay", "corrupt", "partition"}

const (
	kindDrop = iota
	kindDup
	kindDelay
	kindCorrupt
	kindPartition
	numKinds
)

// Injector implements netsim.Injector for a Plan. Verdicts are drawn from
// per-link streams, so they are identical under the sequential and
// parallel engines. Frame may be called concurrently for different links
// (never concurrently for one link — a link's frames are sent by one
// node's goroutine).
type Injector struct {
	plan *Plan
	rec  *obs.Recorder // may be nil (unit tests)

	mu      sync.Mutex
	streams map[linkKey]*rng

	injected [numKinds]uint64 // atomic
}

type linkKey struct{ src, dst int }

// NewInjector returns an injector for plan, reporting into rec (which may
// be nil).
func NewInjector(plan *Plan, rec *obs.Recorder) *Injector {
	return &Injector{
		plan:    plan,
		rec:     rec,
		streams: map[linkKey]*rng{},
	}
}

// stream returns the (src,dst) link's PRNG stream, creating it on first
// use. The map is guarded for the parallel engine (different sending nodes
// may fault different links at once); the stream itself is only ever
// advanced by the link's sending node.
func (in *Injector) stream(src, dst int) *rng {
	k := linkKey{src, dst}
	in.mu.Lock()
	s := in.streams[k]
	if s == nil {
		s = &rng{state: mix(in.plan.Seed, src, dst)}
		in.streams[k] = s
	}
	in.mu.Unlock()
	return s
}

// Injected returns the verdict counts by kind (drop, dup, delay, corrupt,
// partition).
func (in *Injector) Injected() map[string]uint64 {
	out := map[string]uint64{}
	for i, k := range faultKinds {
		if v := atomic.LoadUint64(&in.injected[i]); v > 0 {
			out[k] = v
		}
	}
	return out
}

// Frame implements netsim.Injector.
func (in *Injector) Frame(at netsim.Micros, src, dst, payloadLen int) netsim.Verdict {
	var v netsim.Verdict
	p := in.plan
	if in.partitioned(at, src, dst) {
		v.Drop = true
		in.note(at, src, dst, kindPartition)
		return v
	}
	// One draw per fault class per frame, in a fixed order, so the
	// consumption pattern is a pure function of the link's frame sequence.
	rs := in.stream(src, dst)
	if rs.float() < p.Drop {
		v.Drop = true
		in.note(at, src, dst, kindDrop)
	}
	if rs.float() < p.Dup {
		v.Dup = true
		v.DupDelay = 1 + netsim.Micros(rs.next()%64)
		in.note(at, src, dst, kindDup)
	}
	if rs.float() < p.Delay {
		v.ExtraDelay = 1 + netsim.Micros(rs.next()%uint64(p.DelayBound()))
		in.note(at, src, dst, kindDelay)
	}
	if rs.float() < p.Corrupt {
		v.Corrupt = true
		if payloadLen > 0 {
			v.CorruptOff = int(rs.next() % uint64(payloadLen))
		}
		v.CorruptXor = byte(1 + rs.next()%255)
		in.note(at, src, dst, kindCorrupt)
	}
	return v
}

// partitioned reports whether the src<->dst link is cut at time at.
func (in *Injector) partitioned(at netsim.Micros, src, dst int) bool {
	for _, pt := range in.plan.Partitions {
		if ((pt.A == src && pt.B == dst) || (pt.A == dst && pt.B == src)) &&
			at >= pt.From && at < pt.Until {
			return true
		}
	}
	return false
}

func (in *Injector) note(at netsim.Micros, src, dst int, kind int) {
	atomic.AddUint64(&in.injected[kind], 1)
	if in.rec == nil {
		return
	}
	in.rec.Emit(obs.Event{At: int64(at), Node: int32(src), Kind: obs.EvFaultInject,
		B: uint64(dst), Str: faultKinds[kind]})
	in.rec.Metrics().Add("chaos_injected", "kind="+faultKinds[kind], 1)
}
