// Command embench regenerates the paper's evaluation: Table 1 (thread
// mobility timings), Figure 2 (the thread-state specialization hierarchy),
// Figures 3/4 (bridging code), the §3.6 intra-node performance invariant,
// and the conversion-routine ablation.
//
// Usage:
//
//	embench [-out dir] [-baseline dir] [table1|fig1|fig2|fig3|intranode|conv|ablations|all]
//
// The table1, fig2 and conv experiments additionally write machine-readable
// results (BENCH_table1.json, BENCH_fig2.json, BENCH_conv.json) into -out
// (default: the current directory) for CI and plotting scripts.
//
// With -baseline, each freshly written BENCH_*.json is compared against
// the file of the same name in the baseline directory (typically the
// repo root, where the committed baselines live); any simulated metric
// drifting more than 20% — or any structural change — is an error. The
// simulation is deterministic, so an unintended behavior change shows up
// as drift here even when the human-readable report looks plausible.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netsim"
)

// baselineTol is the relative drift allowed against a committed
// baseline before the run fails.
const baselineTol = 0.20

// baselineDir is the -baseline flag: when set, freshly written
// BENCH_*.json files are checked against their committed counterparts.
var baselineDir string

// checkBaseline compares the freshly written result at freshPath with
// the committed baseline of the same name, when -baseline is set.
func checkBaseline(freshPath string) error {
	if baselineDir == "" {
		return nil
	}
	name := filepath.Base(freshPath)
	basePath := filepath.Join(baselineDir, name)
	base, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	fresh, err := os.ReadFile(freshPath)
	if err != nil {
		return err
	}
	if err := exp.CompareBenchJSON(fresh, base, baselineTol); err != nil {
		return fmt.Errorf("%s vs baseline %s: %w", freshPath, basePath, err)
	}
	fmt.Fprintf(os.Stderr, "embench: %s matches baseline %s\n", freshPath, basePath)
	return nil
}

// subcommands lists every experiment in presentation order.
var subcommands = []struct {
	name string
	run  func(outDir string) error
}{
	{"fig1", figure1},
	{"table1", table1},
	{"fig2", figure2},
	{"fig3", figure3},
	{"intranode", intraNode},
	{"conv", conv},
	{"ablations", ablations},
	{"par", par},
	{"jit", jitStudy},
	{"auto", autoStudy},
	{"dir", dirStudy},
	{"shrink", shrink},
}

// autoStudy runs the adaptive-placement policy table (see internal/exp
// auto.go): four arms over one generated zipf workload, writing
// BENCH_auto.json.
func autoStudy(outDir string) error {
	rows, desc, err := exp.AutoStudy()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatAuto(rows, desc))
	path, err := exp.WriteBenchJSON(outDir, "auto", exp.BenchAutoDoc(rows, desc))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}

// dirStudy runs the replicated-directory overhead table (see internal/exp
// dir.go): directory off/on, clean and under a replica crash/restart,
// writing BENCH_dir.json.
func dirStudy(outDir string) error {
	rows, desc, err := exp.DirStudy()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatDir(rows, desc))
	path, err := exp.WriteBenchJSON(outDir, "dir", exp.BenchDirDoc(rows, desc))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}

// jitStudy measures the three dispatch tiers (legacy / predecode /
// fused superinstructions) on a compute-bound loop per ISA, writing
// BENCH_jit.json. The simulated fields are baseline-gated; the emulated-
// MIPS numbers are host wall-clock, carry the "host" field prefix, and
// are skipped by the comparator.
func jitStudy(outDir string) error {
	rs, err := exp.JitStudy()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatJit(rs))
	path, err := exp.WriteBenchJSON(outDir, "jit", exp.BenchJitDoc(rs))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}

func shrink(string) error {
	rows, err := exp.Shrink(filepath.Join("examples", "programs"))
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatShrink(rows))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: embench [-out dir] [subcommand]")
	fmt.Fprint(os.Stderr, "subcommands: all (default)")
	for _, s := range subcommands {
		fmt.Fprint(os.Stderr, ", ", s.name)
	}
	fmt.Fprintln(os.Stderr)
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_*.json result files")
	flag.StringVar(&baselineDir, "baseline", "",
		"directory of committed BENCH_*.json baselines to compare against (>20% drift fails)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 1 {
		usage()
		os.Exit(1)
	}
	what := "all"
	if flag.NArg() == 1 {
		what = flag.Arg(0)
	}
	known := what == "all"
	for _, s := range subcommands {
		known = known || what == s.name
	}
	if !known {
		fmt.Fprintf(os.Stderr, "embench: unknown subcommand %q\n", what)
		usage()
		os.Exit(1)
	}
	for _, s := range subcommands {
		if what != "all" && what != s.name {
			continue
		}
		if err := s.run(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "embench %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// wrote reports a BENCH_*.json file on stderr so stdout stays a clean
// human-readable report.
func wrote(path string) {
	fmt.Fprintf(os.Stderr, "embench: wrote %s\n", path)
}

func ablations(string) error {
	bs, err := exp.BusStopDensity()
	if err != nil {
		return err
	}
	homes, err := exp.RegisterHomes()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatAblations(bs, homes))
	return nil
}

func table1(outDir string) error {
	cells, err := exp.Table1()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable1(cells))
	path, err := exp.WriteBenchJSON(outDir, "table1", exp.BenchTable1Doc(cells))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}

func figure1(string) error {
	fmt.Println("Figure 1: a network of heterogeneous nodes")
	for i, m := range core.Figure1Network() {
		fmt.Printf("  node%d: %-18s (%s, %.1f effective MHz)\n", i, m.Name, archName(m), m.MHz)
	}
	fmt.Println("  connected by a shared 10 Mbit/s Ethernet")
	return nil
}

func archName(m netsim.MachineModel) string {
	return [...]string{"vax", "m68k", "sparc"}[m.Arch]
}

func figure2(outDir string) error {
	rows, err := exp.Figure2()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatFigure2(rows))
	path, err := exp.WriteBenchJSON(outDir, "fig2", exp.BenchFig2Doc(rows))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}

func figure3(string) error {
	s, err := exp.Figure34()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func intraNode(string) error {
	fmt.Println("§3.6 intra-node performance invariant (compute phase, ms):")
	fmt.Printf("%-20s %10s %10s %14s %6s\n", "machine", "local", "migrated", "original-sys", "ok")
	for _, m := range []netsim.MachineModel{
		netsim.VAXstation2000, netsim.Sun3_100, netsim.HP9000_433s, netsim.SPARCstationSLC,
	} {
		r, err := exp.IntraNode(m)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10.1f %10.1f %14.1f %6v\n",
			r.Arch, r.LocalMS, r.MigratedMS, r.OriginalSysMS, r.EnhancedMatches)
	}
	fmt.Println("migrated threads run at native speed, identical to the original system")
	return nil
}

// par measures sequential-vs-parallel wall-clock over N-node rings.
// BENCH_par.json records wall-clock times and the host CPU count, so it is
// deliberately not baseline-compared (wall-clock is host-dependent; the
// byte-identity of the two engines is checked inside the experiment).
func par(outDir string) error {
	rs, err := exp.ParScaling([]int{1, 2, 4, 8}, 6, 30000)
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatParScaling(rs))
	path, err := exp.WriteBenchJSON(outDir, "par", exp.BenchParDoc(rs))
	if err != nil {
		return err
	}
	wrote(path)
	return nil
}

func conv(outDir string) error {
	rs, err := exp.ConversionStudy()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatConversionStudy(rs))
	path, err := exp.WriteBenchJSON(outDir, "conv", exp.BenchConvDoc(rs))
	if err != nil {
		return err
	}
	wrote(path)
	return checkBaseline(path)
}
