// The three concrete architecture specifications.

package arch

import "encoding/binary"

// VAXSpec is the VAX-like CISC: little endian, VAX F-float, variable-length
// memory-to-memory instructions, a one-byte opcode, four callee-saved
// variable-home registers (r6–r9), and the atomic UNLINKQ used for monitor
// exit. Cycle costs reflect a microcoded implementation.
var VAXSpec = &Spec{
	ID:              VAX,
	Name:            "vax",
	ByteOrd:         binary.LittleEndian,
	Style:           EncVariableCISC,
	NumRegs:         16,
	HomeRegs:        []byte{6, 7, 8, 9},
	ScratchRegs:     []byte{0, 1, 2},
	OpcodeBase:      0x83,
	OpcodeMul:       7,
	Float:           VAXFloat{},
	HasAtomicUnlink: true,
	MemCycles:       2,
	TrapCycles:      24,
	Cycles: [NumOp]uint32{
		OpMov: 4, OpAdd: 5, OpSub: 5, OpMul: 14, OpDiv: 24, OpMod: 26,
		OpNeg: 4, OpAbs: 4, OpNot: 4, OpAnd: 5, OpOr: 5,
		OpFAdd: 12, OpFSub: 12, OpFMul: 18, OpFDiv: 30, OpFNeg: 6, OpCvt: 10,
		OpScc: 6, OpFScc: 12, OpSScc: 16,
		OpJmp: 4, OpBrz: 4, OpBrnz: 4,
		OpALoad: 8, OpAStor: 8, OpALen: 5, OpSLen: 5, OpSIdx: 8,
		OpPoll: 2, OpRet: 4, OpTrap: 4, OpUnlq: 10,
	},
}

// M68KSpec is the Motorola-68K-like CISC shared by the Sun-3 and HP9000/300
// machine models: big endian, IEEE floats, two-byte opcodes, six variable
// homes (d2–d7). No atomic unlink — monitor exit is a system call.
var M68KSpec = &Spec{
	ID:          M68K,
	Name:        "m68k",
	ByteOrd:     binary.BigEndian,
	Style:       EncVariableCISC,
	NumRegs:     16,
	HomeRegs:    []byte{2, 3, 4, 5, 6, 7},
	ScratchRegs: []byte{0, 1},
	OpcodeBase:  0x2a,
	OpcodeMul:   11,
	Float:       IEEEFloat{},
	MemCycles:   2,
	TrapCycles:  20,
	Cycles: [NumOp]uint32{
		OpMov: 3, OpAdd: 4, OpSub: 4, OpMul: 11, OpDiv: 20, OpMod: 22,
		OpNeg: 3, OpAbs: 3, OpNot: 3, OpAnd: 4, OpOr: 4,
		OpFAdd: 10, OpFSub: 10, OpFMul: 14, OpFDiv: 24, OpFNeg: 5, OpCvt: 8,
		OpScc: 5, OpFScc: 10, OpSScc: 14,
		OpJmp: 3, OpBrz: 3, OpBrnz: 3,
		OpALoad: 7, OpAStor: 7, OpALen: 4, OpSLen: 4, OpSIdx: 7,
		OpPoll: 2, OpRet: 3, OpTrap: 4, OpUnlq: 0,
	},
}

// SPARCSpec is the SPARC-like RISC: big endian, IEEE floats, fixed 4-byte
// instructions (8 for immediates and traps), register-only ALU operations
// with load/store moves, and eight variable homes (l0–l7 = r8–r15).
// Abstract operations that are single instructions on the CISC machines
// expand into several instructions here ("RISCification", §2.2.2).
var SPARCSpec = &Spec{
	ID:          SPARC,
	Name:        "sparc",
	ByteOrd:     binary.BigEndian,
	Style:       EncFixedRISC,
	NumRegs:     16,
	HomeRegs:    []byte{8, 9, 10, 11, 12, 13, 14, 15},
	ScratchRegs: []byte{1, 2, 3},
	OpcodeBase:  0x45,
	OpcodeMul:   13,
	Float:       IEEEFloat{},
	MemCycles:   1,
	TrapCycles:  14,
	Cycles: [NumOp]uint32{
		OpMov: 1, OpAdd: 1, OpSub: 1, OpMul: 5, OpDiv: 18, OpMod: 20,
		OpNeg: 1, OpAbs: 1, OpNot: 1, OpAnd: 1, OpOr: 1,
		OpFAdd: 4, OpFSub: 4, OpFMul: 6, OpFDiv: 14, OpFNeg: 2, OpCvt: 4,
		OpScc: 2, OpFScc: 4,
		// Millicode helpers (array/string forms) cost a short call.
		OpSScc: 22,
		OpJmp:  1, OpBrz: 1, OpBrnz: 1,
		OpALoad: 12, OpAStor: 12, OpALen: 6, OpSLen: 6, OpSIdx: 12,
		OpPoll: 1, OpRet: 1, OpTrap: 2, OpUnlq: 0,
	},
}

// Specs maps an ID to its specification.
func SpecOf(id ID) *Spec {
	switch id {
	case VAX:
		return VAXSpec
	case M68K:
		return M68KSpec
	case SPARC:
		return SPARCSpec
	}
	panic("arch: unknown architecture")
}

// AllSpecs returns the specs of every architecture.
func AllSpecs() []*Spec { return []*Spec{VAXSpec, M68KSpec, SPARCSpec} }
