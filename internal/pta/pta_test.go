package pta_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/pta"
)

// buildIR compiles Emerald-subset source down to the machine-independent
// IR the solver consumes.
func buildIR(t testing.TB, src string) *ir.Program {
	t.Helper()
	ast, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(ast)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return ir.Build(info)
}

func analyze(t testing.TB, src string) *pta.Result {
	t.Helper()
	r, err := pta.Analyze(buildIR(t, src))
	if err != nil {
		t.Fatalf("pta: %v", err)
	}
	return r
}

func readExample(t testing.TB, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "programs", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

var exampleNames = []string{"kilroy.em", "pingpong.em", "producer_consumer.em"}

// Two independent solves of the same program must render byte-identical
// reports: the report is the interface emvet -graph exposes and the
// emauto roadmap item will consume, so any map-iteration nondeterminism
// in the solver or its caches is a bug. tools/ptacheck pins the same
// property from the CLI.
func TestReportDeterministic(t *testing.T) {
	for _, name := range exampleNames {
		src := readExample(t, name)
		first := analyze(t, src).Report()
		for i := 0; i < 5; i++ {
			if got := analyze(t, src).Report(); got != first {
				t.Fatalf("%s: solve %d produced a different report:\n--- first\n%s--- got\n%s",
					name, i+2, first, got)
			}
		}
	}
}

// producer_consumer is the richest example: a shared Buffer holding an
// Array, reached by two process threads. The solver must find the three
// allocation sites, resolve both invoke sites, and group the Buffer and
// Producer allocations into cohorts that include the Array they reach.
func TestProducerConsumerFacts(t *testing.T) {
	r := analyze(t, readExample(t, "producer_consumer.em"))

	sites := r.Sites()
	if len(sites) != 3 {
		t.Fatalf("got %d allocation sites, want 3: %v", len(sites), sites)
	}
	var labels []string
	for _, s := range sites {
		labels = append(labels, s.Label())
	}
	for _, want := range []string{"new Array[i]", "new Buffer", "new Producer"} {
		found := false
		for _, l := range labels {
			if strings.Contains(l, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no site %q among %v", want, labels)
		}
	}

	cg := r.CallGraph()
	if got := cg["Main.$process"]; len(got) != 1 || got[0] != "Buffer.take" {
		t.Errorf("Main.$process callees = %v, want [Buffer.take]", got)
	}
	if got := cg["Producer.$process"]; len(got) != 1 || got[0] != "Buffer.put" {
		t.Errorf("Producer.$process callees = %v, want [Buffer.put]", got)
	}

	cohorts := r.Cohorts()
	if len(cohorts) != 2 {
		t.Fatalf("got %d cohorts, want 2: %+v", len(cohorts), cohorts)
	}
	// The Buffer cohort holds the buffer and its array; the Producer
	// cohort additionally reaches the buffer through the producer's
	// buf field.
	if n := len(cohorts[0].Members); n != 2 {
		t.Errorf("Buffer cohort has %d members, want 2: %v", n, cohorts[0].Members)
	}
	if n := len(cohorts[1].Members); n != 3 {
		t.Errorf("Producer cohort has %d members, want 3: %v", n, cohorts[1].Members)
	}
}

const escapeSrc = `
object Widget
  operation poke() -> (r: Int)
    r <- 1
  end
end Widget
object Gauge
  operation read() -> (r: Int)
    r <- 2
  end
end Gauge
object Keeper
  var kept: Widget
  operation stash() -> (r: Int)
    var w: Widget <- new Widget
    var scratch: Gauge <- new Gauge
    kept <- w
    r <- scratch.read()
  end
end Keeper
object Main
  process
    var k: Keeper <- new Keeper
    print(k.stash())
  end process
end Main
`

// The local stored into a field escapes; a local of an unrelated type
// only used as an invoke receiver does not. Both properties matter: the
// first is the pass's positive case, the second keeps it from crying
// wolf on every pointer local. (Locals of the SAME type as an escaping
// one do merge — the per-type roots are the point of the unification
// model — so the negative case uses a distinct type.)
func TestSlotEscapes(t *testing.T) {
	r := analyze(t, escapeSrc)
	p := buildIR(t, escapeSrc)
	var keeper *ir.Object
	for _, o := range p.Objects {
		if o.Name == "Keeper" {
			keeper = o
		}
	}
	if keeper == nil {
		t.Fatal("no Keeper object")
	}
	var stash *ir.Func
	for _, f := range keeper.Funcs {
		if f.Name == "Keeper.stash" {
			stash = f
		}
	}
	if stash == nil {
		t.Fatal("no Keeper.stash function")
	}
	slot := func(name string) int {
		for v, n := range stash.VarNames {
			if n == name {
				return v
			}
		}
		t.Fatalf("no slot %q in %v", name, stash.VarNames)
		return -1
	}
	if !r.SlotEscapes("Keeper.stash", slot("w")) {
		t.Error("w is stored into Keeper.kept but does not escape")
	}
	if r.SlotEscapes("Keeper.stash", slot("scratch")) {
		t.Error("scratch never leaves the frame but is reported escaping")
	}
}

const pinnedSrc = `
object Anchor
  operation ping() -> (r: Int)
    r <- 7
  end
end Anchor
object Main
  var a: Anchor
  initially
    a <- new Anchor
    fix a at thisnode()
  end initially
  process
    print(a.ping())
  end process
end Main
`

// A process thread that can reach a fixed object gets a pinned-reach
// fact naming the pinned type and the fix site.
func TestProcessPinnedReach(t *testing.T) {
	r := analyze(t, pinnedSrc)
	got := r.ProcessPinnedReach("Main")
	if len(got) != 1 || !strings.Contains(got[0], "Anchor") ||
		!strings.Contains(got[0], "Main.$initially@") {
		t.Errorf("ProcessPinnedReach(Main) = %v, want one Anchor entry with its fix site", got)
	}
	// kilroy fixes nothing, so its thread reaches no pinned class.
	rk := analyze(t, readExample(t, "kilroy.em"))
	if got := rk.ProcessPinnedReach("Main"); len(got) != 0 {
		t.Errorf("kilroy ProcessPinnedReach(Main) = %v, want none", got)
	}
}

// synthUnit renders one self-contained copy of the synthetic benchmark
// program; object and operation names carry the copy index so the
// name-resolved call graph keeps copies independent.
func synthUnit(i int) string {
	return strings.NewReplacer("#", fmt.Sprint(i)).Replace(`
object Widget#
  operation poke#(n: Int) -> (r: Int)
    r <- n + 1
  end
end Widget#
object Keeper#
  var kept: Widget#
  operation stash#(w: Widget#) -> (r: Int)
    kept <- w
    r <- w.poke#(3)
  end
end Keeper#
object Driver#
  process
    var k: Keeper# <- new Keeper#
    var w: Widget# <- new Widget#
    print(k.stash#(w))
  end process
end Driver#
`)
}

// Steensgaard's bound is almost-linear; the regression this pins is an
// accidental quadratic (e.g. re-propagation at joins, or per-constraint
// scans of the whole universe). A 10×-duplicated program may cost at
// most ~1.5× per copy more than one copy — far below the 10× per-copy
// growth a quadratic solver would show.
func TestNearLinearScaling(t *testing.T) {
	one := analyze(t, synthUnit(0)).Stats.Work()
	var b strings.Builder
	for i := 0; i < 10; i++ {
		b.WriteString(synthUnit(i))
	}
	ten := analyze(t, b.String()).Stats.Work()
	if one <= 0 || ten <= 0 {
		t.Fatalf("degenerate work counts: one=%d ten=%d", one, ten)
	}
	if ten > 15*one {
		t.Errorf("10x program costs %d work vs %d for 1x (%.1fx); want near-linear (<= 15x)",
			ten, one, float64(ten)/float64(one))
	}
}

// BenchmarkPTA measures the full solve on the largest example; the IR is
// built once outside the loop so the number is the analysis alone.
func BenchmarkPTA(b *testing.B) {
	p := buildIR(b, readExample(b, "producer_consumer.em"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pta.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}
