// Static frame shrink: how much of each example's marshaled frame state
// the points-to-backed liveness masks prove dead. The stop tables carry a
// machine-independent LiveVars mask per bus stop (internal/ir liveness,
// checked cross-ISA by vet); a dead slot still crosses the wire — the
// conversion plan substitutes its canonical zero, keeping the converter
// call sequence byte-identical — but it no longer carries information,
// which is exactly the state a future format change could elide. The
// table reports the static bound (slots and frame payload bytes over all
// stops, before and after intersecting with the live masks) alongside
// the slots the default sharpened run actually canonicalized.

package exp

import (
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/codegen"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// slotWireBytes is the frame payload cost of one variable slot on the
// wire: a one-byte value tag plus the 32-bit machine-independent word
// (references and strings cost more; the static bound prices every slot
// at the scalar rate, so it is conservative for both columns alike).
const slotWireBytes = 5

// ShrinkRow is the shrink measurement for one example program.
type ShrinkRow struct {
	Program   string
	Stops     int // bus stops contributing frames
	SlotsAll  int // static: frame slots marshaled over all stops
	SlotsLive int // static: slots the live masks keep
	BytesAll  int // static frame payload bytes, all slots
	BytesLive int // static frame payload bytes, live slots only
	// Runtime counters from one sharpened Figure-1 run.
	RunMarshaled     uint64
	RunCanonicalized uint64
}

// Shrink measures every example program in dir.
func Shrink(dir string) ([]ShrinkRow, error) {
	progs, err := filepath.Glob(filepath.Join(dir, "*.em"))
	if err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("no example programs in %s", dir)
	}
	sort.Strings(progs)
	var rows []ShrinkRow
	for _, pf := range progs {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			return nil, err
		}
		row, err := shrinkOne(filepath.Base(pf), string(srcBytes))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pf, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func shrinkOne(name, src string) (*ShrinkRow, error) {
	prog, err := compileOpts(src, codegen.Options{})
	if err != nil {
		return nil, err
	}
	row := &ShrinkRow{Program: strings.TrimSuffix(name, ".em")}
	for _, oc := range prog.Objects {
		var ac *codegen.ArchCode
		for _, cand := range oc.PerArch {
			if cand != nil {
				ac = cand // stop tables are isomorphic across ISAs; any one will do
				break
			}
		}
		if ac == nil {
			continue
		}
		for i, fc := range ac.Funcs {
			nv := oc.IR.Funcs[i].NumVars
			over := 0 // slots past the 64-bit mask are always live
			if nv > 64 {
				over = nv - 64
			}
			for _, s := range fc.Stops.All() {
				row.Stops++
				row.SlotsAll += nv
				row.SlotsLive += bits.OnesCount64(s.LiveVars) + over
			}
		}
	}
	row.BytesAll = slotWireBytes * row.SlotsAll
	row.BytesLive = slotWireBytes * row.SlotsLive

	cl, err := kernel.NewCluster(prog, []netsim.MachineModel{
		netsim.Sun3_100, netsim.HP9000_433s, netsim.SPARCstationSLC, netsim.VAXstation2000,
	}, kernel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cl.Start(nil)
	if err := cl.Run(120_000_000); err != nil {
		return nil, err
	}
	if len(cl.Faults) > 0 {
		return nil, fmt.Errorf("fault: %s", cl.Faults[0].Msg)
	}
	for _, n := range cl.Nodes {
		row.RunMarshaled += n.MarshaledVarSlots
		row.RunCanonicalized += n.CanonicalizedVarSlots
	}
	return row, nil
}

// FormatShrink renders the static-frame-shrink table.
func FormatShrink(rows []ShrinkRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Static frame shrink (per example, over all bus stops):")
	fmt.Fprintf(&b, "%-18s %5s %10s %10s %10s %10s %7s %12s %12s\n",
		"program", "stops", "slots", "live", "bytes", "live-bytes", "shrink", "run-slots", "run-canon")
	for _, r := range rows {
		pct := 0.0
		if r.SlotsAll > 0 {
			pct = 100 * float64(r.SlotsAll-r.SlotsLive) / float64(r.SlotsAll)
		}
		fmt.Fprintf(&b, "%-18s %5d %10d %10d %10d %10d %6.1f%% %12d %12d\n",
			r.Program, r.Stops, r.SlotsAll, r.SlotsLive, r.BytesAll, r.BytesLive,
			pct, r.RunMarshaled, r.RunCanonicalized)
	}
	return b.String()
}
