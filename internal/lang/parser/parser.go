// Package parser builds an AST from Emerald-subset source text.
//
// The grammar (see DESIGN.md §3) is LL(1) apart from assignment-vs-expression
// statements, which are resolved by parsing an expression and checking for a
// following "<-".
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/lang/ast"
	"repro/internal/lang/lexer"
	"repro/internal/lang/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token // current token
	next token.Token // one-token lookahead
	errs ErrorList
}

// Parse parses a complete program. If err is non-nil it is an ErrorList.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src)}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	prog := p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

func (p *parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	// Cap the error count so a badly broken file terminates quickly.
	if len(p.errs) < 25 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// expectIdent consumes an identifier and returns its spelling.
func (p *parser) expectIdent() (string, token.Pos) {
	t := p.tok
	if t.Kind != token.Ident {
		p.errorf(t.Pos, "expected identifier, found %s", t)
		p.skipTo(token.KwEnd)
		return "_", t.Pos
	}
	p.advance()
	return t.Lit, t.Pos
}

// acceptTrailing consumes an optional trailing keyword after `end` (as in
// `end if`, `end while`, `end monitor`) only when it sits on the same line
// as the `end`: otherwise a following statement or section that begins with
// the same keyword would be swallowed.
func (p *parser) acceptTrailing(k token.Kind, endLine int) {
	if p.tok.Kind == k && p.tok.Pos.Line == endLine {
		p.advance()
	}
}

// skipTo advances until one of the kinds (or EOF) is current. Used for error
// recovery so one bad declaration does not cascade.
func (p *parser) skipTo(kinds ...token.Kind) {
	for p.tok.Kind != token.EOF {
		for _, k := range kinds {
			if p.tok.Kind == k {
				return
			}
		}
		p.advance()
	}
}

// ---------------------------------------------------------------- program

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwImmutable, token.KwObject:
			prog.Objects = append(prog.Objects, p.parseObject())
		default:
			p.errorf(p.tok.Pos, "expected object declaration, found %s", p.tok)
			p.skipTo(token.KwObject, token.KwImmutable)
		}
	}
	return prog
}

func (p *parser) parseObject() *ast.ObjectDecl {
	d := &ast.ObjectDecl{}
	if p.accept(token.KwImmutable) {
		d.Immutable = true
	}
	p.expect(token.KwObject)
	d.Name, d.NamePos = p.expectIdent()
	for p.tok.Kind != token.KwEnd && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwVar:
			d.Vars = append(d.Vars, p.parseVarDecl())
		case token.KwOperation, token.KwFunction:
			d.Ops = append(d.Ops, p.parseOp(false))
		case token.KwMonitor:
			if d.Monitor != nil {
				p.errorf(p.tok.Pos, "object %s has more than one monitor section", d.Name)
			}
			d.Monitor = p.parseMonitor()
		case token.KwInitially:
			pos := p.tok.Pos
			p.advance()
			if d.Initially != nil {
				p.errorf(pos, "object %s has more than one initially section", d.Name)
			}
			d.Initially = p.parseBlock(pos)
			endTok := p.expect(token.KwEnd)
			p.acceptTrailing(token.KwInitially, endTok.Pos.Line)
		case token.KwProcess:
			pos := p.tok.Pos
			p.advance()
			if d.Process != nil {
				p.errorf(pos, "object %s has more than one process section", d.Name)
			}
			d.Process = p.parseBlock(pos)
			endTok := p.expect(token.KwEnd)
			p.acceptTrailing(token.KwProcess, endTok.Pos.Line)
		default:
			p.errorf(p.tok.Pos, "unexpected %s in object body", p.tok)
			p.advance()
		}
	}
	p.expect(token.KwEnd)
	// Optional trailing object name: `end Counter`.
	if p.tok.Kind == token.Ident {
		if p.tok.Lit != d.Name {
			p.errorf(p.tok.Pos, "end %s does not match object %s", p.tok.Lit, d.Name)
		}
		p.advance()
	}
	return d
}

func (p *parser) parseMonitor() *ast.MonitorDecl {
	m := &ast.MonitorDecl{MonPos: p.tok.Pos}
	p.expect(token.KwMonitor)
	for p.tok.Kind != token.KwEnd && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwVar:
			m.Vars = append(m.Vars, p.parseVarDecl())
		case token.KwOperation, token.KwFunction:
			op := p.parseOp(true)
			m.Ops = append(m.Ops, op)
		default:
			p.errorf(p.tok.Pos, "unexpected %s in monitor section", p.tok)
			p.advance()
		}
	}
	endTok := p.expect(token.KwEnd)
	p.acceptTrailing(token.KwMonitor, endTok.Pos.Line)
	return m
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	d := &ast.VarDecl{VarPos: p.tok.Pos}
	p.expect(token.KwVar)
	d.Name, _ = p.expectIdent()
	p.expect(token.Colon)
	d.Type = p.parseType()
	if p.accept(token.Assign) {
		d.Init = p.parseExpr()
	}
	return d
}

func (p *parser) parseOp(monitored bool) *ast.OpDecl {
	d := &ast.OpDecl{OpPos: p.tok.Pos, Monitored: monitored}
	d.Function = p.tok.Kind == token.KwFunction
	p.advance() // operation | function
	d.Name, _ = p.expectIdent()
	p.expect(token.LParen)
	d.Params = p.parseParams()
	p.expect(token.RParen)
	if p.accept(token.Arrow) {
		p.expect(token.LParen)
		d.Results = p.parseParams()
		p.expect(token.RParen)
	}
	d.Body = p.parseBlock(p.tok.Pos)
	p.expect(token.KwEnd)
	if p.tok.Kind == token.Ident {
		if p.tok.Lit != d.Name {
			p.errorf(p.tok.Pos, "end %s does not match operation %s", p.tok.Lit, d.Name)
		}
		p.advance()
	}
	return d
}

func (p *parser) parseParams() []*ast.Param {
	var ps []*ast.Param
	if p.tok.Kind == token.RParen {
		return ps
	}
	for {
		name, pos := p.expectIdent()
		p.expect(token.Colon)
		ps = append(ps, &ast.Param{NamePos: pos, Name: name, Type: p.parseType()})
		if !p.accept(token.Comma) {
			return ps
		}
	}
}

func (p *parser) parseType() *ast.TypeExpr {
	name, pos := p.expectIdent()
	t := &ast.TypeExpr{NamePos: pos, Name: name}
	if name == "Array" {
		p.expect(token.LBracket)
		t.Elem = p.parseType()
		p.expect(token.RBracket)
	}
	return t
}

// ---------------------------------------------------------------- statements

// blockEnders lists token kinds that terminate a statement block.
func blockEnds(k token.Kind) bool {
	switch k {
	case token.KwEnd, token.KwElse, token.KwElseif, token.EOF:
		return true
	}
	return false
}

func (p *parser) parseBlock(pos token.Pos) *ast.Block {
	b := &ast.Block{LPos: pos}
	for !blockEnds(p.tok.Kind) {
		before := p.tok
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.tok == before && p.tok.Kind != token.EOF {
			// No progress (error recovery); skip the offending token.
			p.advance()
		}
	}
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.KwVar:
		return &ast.DeclStmt{Decl: p.parseVarDecl()}
	case token.KwIf:
		return p.parseIf()
	case token.KwLoop:
		pos := p.tok.Pos
		p.advance()
		body := p.parseBlock(pos)
		endTok := p.expect(token.KwEnd)
		p.acceptTrailing(token.KwLoop, endTok.Pos.Line)
		return &ast.LoopStmt{LoopPos: pos, Body: body}
	case token.KwWhile:
		pos := p.tok.Pos
		p.advance()
		cond := p.parseExpr()
		p.expect(token.KwDo)
		body := p.parseBlock(pos)
		endTok := p.expect(token.KwEnd)
		p.acceptTrailing(token.KwWhile, endTok.Pos.Line)
		return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
	case token.KwExit:
		pos := p.tok.Pos
		p.advance()
		s := &ast.ExitStmt{ExitPos: pos}
		if p.accept(token.KwWhen) {
			s.When = p.parseExpr()
		}
		return s
	case token.KwReturn:
		pos := p.tok.Pos
		p.advance()
		return &ast.ReturnStmt{RetPos: pos}
	case token.KwMove:
		pos := p.tok.Pos
		p.advance()
		x := p.parseExpr()
		p.expect(token.KwTo)
		return &ast.MoveStmt{MovePos: pos, X: x, To: p.parseExpr()}
	case token.KwFix, token.KwRefix:
		pos := p.tok.Pos
		refix := p.tok.Kind == token.KwRefix
		p.advance()
		x := p.parseExpr()
		p.expect(token.KwAt)
		return &ast.FixStmt{FixPos: pos, Refix: refix, X: x, At: p.parseExpr()}
	case token.KwUnfix:
		pos := p.tok.Pos
		p.advance()
		return &ast.UnfixStmt{UnfixPos: pos, X: p.parseExpr()}
	case token.KwWait:
		pos := p.tok.Pos
		p.advance()
		return &ast.WaitStmt{WaitPos: pos, Cond: p.parseExpr()}
	case token.KwSignal:
		pos := p.tok.Pos
		p.advance()
		return &ast.SignalStmt{SigPos: pos, Cond: p.parseExpr()}
	}
	// Expression statement or assignment.
	x := p.parseExpr()
	if p.accept(token.Assign) {
		switch x.(type) {
		case *ast.Ident, *ast.Index:
		default:
			p.errorf(x.Pos(), "left side of <- must be a variable or array element")
		}
		return &ast.AssignStmt{Lhs: x, Rhs: p.parseExpr()}
	}
	if _, ok := x.(*ast.Invoke); !ok {
		p.errorf(x.Pos(), "expression used as statement must be an invocation")
	}
	return &ast.ExprStmt{X: x}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwIf)
	s := &ast.IfStmt{IfPos: pos, Cond: p.parseExpr()}
	p.expect(token.KwThen)
	s.Then = p.parseBlock(pos)
	for p.tok.Kind == token.KwElseif {
		epos := p.tok.Pos
		p.advance()
		cond := p.parseExpr()
		p.expect(token.KwThen)
		s.Elifs = append(s.Elifs, ast.ElseIf{Cond: cond, Then: p.parseBlock(epos)})
	}
	if p.accept(token.KwElse) {
		s.Else = p.parseBlock(pos)
	}
	endTok := p.expect(token.KwEnd)
	p.acceptTrailing(token.KwIf, endTok.Pos.Line)
	return s
}

// ---------------------------------------------------------------- expressions

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.Minus, token.Not:
		pos, op := p.tok.Pos, p.tok.Kind
		p.advance()
		return &ast.Unary{OpPos: pos, Op: op, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.Dot:
			p.advance()
			name, pos := p.expectIdent()
			inv := &ast.Invoke{Recv: x, OpPos: pos, OpName: name}
			p.expect(token.LParen)
			inv.Args = p.parseArgs()
			p.expect(token.RParen)
			x = inv
		case token.LBracket:
			pos := p.tok.Pos
			p.advance()
			i := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.Index{X: x, LBPos: pos, I: i}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	var args []ast.Expr
	if p.tok.Kind == token.RParen {
		return args
	}
	for {
		args = append(args, p.parseExpr())
		if !p.accept(token.Comma) {
			return args
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.Int:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.Real:
		p.advance()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid real literal %q", t.Lit)
		}
		return &ast.RealLit{LitPos: t.Pos, Value: v}
	case token.String:
		p.advance()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.KwTrue, token.KwFalse:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Value: t.Kind == token.KwTrue}
	case token.KwNil:
		p.advance()
		return &ast.NilLit{LitPos: t.Pos}
	case token.KwSelf:
		p.advance()
		return &ast.SelfExpr{SelfPos: t.Pos}
	case token.KwNew:
		p.advance()
		n := &ast.New{NewPos: t.Pos, Type: p.parseType()}
		if p.accept(token.LParen) {
			n.Args = p.parseArgs()
			p.expect(token.RParen)
		}
		return n
	case token.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.Ident:
		p.advance()
		if p.tok.Kind == token.LParen {
			// Bare call: builtin or self-operation.
			inv := &ast.Invoke{OpPos: t.Pos, OpName: t.Lit}
			p.expect(token.LParen)
			inv.Args = p.parseArgs()
			p.expect(token.RParen)
			return inv
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.advance()
	return &ast.IntLit{LitPos: t.Pos}
}
