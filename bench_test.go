// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Wall-clock ns/op
// measures this implementation; the custom metrics (sim-ms, conversion
// calls, work units) are the simulated quantities that reproduce the
// paper's numbers — EXPERIMENTS.md records paper-vs-measured per cell.
package repro

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Table 1: one benchmark per machine pair and system.
func BenchmarkTable1(b *testing.B) {
	prog, err := core.Compile(exp.Mobile13Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, pair := range exp.Table1Pairs() {
		for _, mode := range []kernel.ConvMode{kernel.ModeOriginal, kernel.ModeEnhanced} {
			if mode == kernel.ModeOriginal && pair.A.Family != pair.B.Family {
				continue
			}
			name := fmt.Sprintf("%s/%s", sanitize(pair.Label), mode)
			pair := pair
			mode := mode
			b.Run(name, func(b *testing.B) {
				var simMS float64
				var calls uint64
				for i := 0; i < b.N; i++ {
					cfg := kernel.DefaultConfig()
					cfg.Mode = mode
					cl, err := kernel.NewCluster(prog, []netsim.MachineModel{pair.A, pair.B}, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cl.Start(nil)
					if err := cl.Run(80_000_000); err != nil {
						b.Fatal(err)
					}
					lines := cl.PrintedLines()
					if len(lines) != 2 || lines[1] != "1624" {
						b.Fatalf("workload corrupted: %v", lines)
					}
					elapsed, _ := strconv.Atoi(lines[0])
					simMS = float64(elapsed) / 25
					calls = cl.ConvStats().Calls
				}
				b.ReportMetric(simMS, "sim-ms/2moves")
				b.ReportMetric(float64(calls), "conv-calls")
			})
		}
	}
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, "<->", "_")
	return strings.ReplaceAll(s, "/", "-")
}

// Figure 2: the same program at each level of the specialization hierarchy.
func BenchmarkFigure2(b *testing.B) {
	info, prog, err := core.CompileInfo(exp.Fig2Workload)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("source-interpreter", func(b *testing.B) {
		var steps uint64
		for i := 0; i < b.N; i++ {
			s := interp.NewSource(info)
			s.Run()
			steps = s.RT().Steps
		}
		b.ReportMetric(float64(steps), "steps")
	})
	irProg := ir.Build(info)
	b.Run("bytecode-interpreter", func(b *testing.B) {
		var steps uint64
		for i := 0; i < b.N; i++ {
			bc := interp.NewBytecode(irProg)
			bc.Run()
			steps = bc.RT().Steps
		}
		b.ReportMetric(float64(steps), "steps")
	})
	for _, m := range []netsim.MachineModel{netsim.VAXstation2000, netsim.Sun3_100, netsim.SPARCstationSLC} {
		m := m
		b.Run("native-"+sanitize(m.Family), func(b *testing.B) {
			var simMS float64
			var instrs uint64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(prog, []netsim.MachineModel{m}, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
				simMS = sys.ElapsedMS()
				instrs = sys.Cluster.Nodes[0].Instrs
			}
			b.ReportMetric(simMS, "sim-ms")
			b.ReportMetric(float64(instrs), "native-instrs")
		})
	}
}

// Figures 3+4: bridging-code synthesis for migration between differently
// optimized codes.
func BenchmarkFigure3Bridging(b *testing.B) {
	abstract, code1, code2, _, _ := bridge.Figure3()
	stop := code1.IndexOf("switch()") + 1
	b.Run("synthesize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := bridge.Build(abstract, code1, stop, code2)
			if err != nil {
				b.Fatal(err)
			}
			if len(plan.Bridge) != 3 {
				b.Fatalf("bridge = %v", plan.Bridge)
			}
		}
	})
	b.Run("synthesize-and-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, _ := bridge.Build(abstract, code1, stop, code2)
			tr := bridge.RunWithMigration(code1, stop, plan)
			if err := tr.ExactlyOnce(abstract); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// §3.6 intra-node invariant: local vs migrated execution speed.
func BenchmarkIntraNode(b *testing.B) {
	for _, m := range []netsim.MachineModel{netsim.VAXstation2000, netsim.SPARCstationSLC} {
		m := m
		b.Run(sanitize(m.Family), func(b *testing.B) {
			var r *exp.IntraNodeResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = exp.IntraNode(m)
				if err != nil {
					b.Fatal(err)
				}
				if !r.EnhancedMatches {
					b.Fatalf("invariant violated: %+v", r)
				}
			}
			b.ReportMetric(r.LocalMS, "local-sim-ms")
			b.ReportMetric(r.MigratedMS, "migrated-sim-ms")
		})
	}
}

// Conversion-routine ablation (§3.6: the paper guesses efficient routines
// halve the penalty) and the homogeneous fast path ([SC88]).
func BenchmarkConversionAblation(b *testing.B) {
	prog, err := core.Compile(exp.Mobile13Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []kernel.ConvMode{
		kernel.ModeOriginal, kernel.ModeEnhanced,
		kernel.ModeEnhancedBatched, kernel.ModeEnhancedFastPath,
	} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var simMS float64
			var calls uint64
			for i := 0; i < b.N; i++ {
				cfg := kernel.DefaultConfig()
				cfg.Mode = mode
				cl, err := kernel.NewCluster(prog,
					[]netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cl.Start(nil)
				if err := cl.Run(80_000_000); err != nil {
					b.Fatal(err)
				}
				elapsed, _ := strconv.Atoi(cl.PrintedLines()[0])
				simMS = float64(elapsed) / 25
				calls = cl.ConvStats().Calls
			}
			b.ReportMetric(simMS, "sim-ms/2moves")
			b.ReportMetric(float64(calls), "conv-calls")
		})
	}
}

// Engineering micro-benchmarks of this implementation.

func BenchmarkEmulatorStep(b *testing.B) {
	for _, spec := range arch.AllSpecs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			mem := make([]byte, 4096)
			var code []byte
			var err error
			emit := func(in arch.Instr) {
				code, err = arch.Encode(spec, code, in)
				if err != nil {
					b.Fatal(err)
				}
			}
			emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(100000), arch.Reg(1)}})
			top := uint32(len(code))
			emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(1), arch.Reg(2)}})
			emit(arch.Instr{Op: arch.OpSub, N: 3, Operands: [3]arch.Operand{arch.Reg(1), arch.Reg(2), arch.Reg(1)}})
			emit(arch.Instr{Op: arch.OpBrnz, N: 1, Operands: [3]arch.Operand{arch.Reg(1)}, Target: uint16(top)})
			emit(arch.Instr{Op: arch.OpRet})
			b.ResetTimer()
			instrs := 0
			for i := 0; i < b.N; i++ {
				cpu := arch.CPU{FP: 256, TempBase: 512}
				tr, _, n, err := arch.Run(spec, &cpu, code, mem, 1<<30)
				if err != nil || tr == nil || tr.Kind != arch.TrapRet {
					b.Fatalf("%v %v", tr, err)
				}
				instrs += n
			}
			// Per-op rate: instructions of one Run over the time of one Run.
			instrsPerOp := float64(instrs) / float64(b.N)
			secsPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(instrsPerOp/secsPerOp/1e6, "emulated-MIPS")
		})
	}
}

// BenchmarkEmulatorFused is the same countdown loop under fused
// superinstruction dispatch (one compiled run per loop body, register
// slots cached in executor locals); compare its emulated-MIPS against
// BenchmarkEmulatorStep's predecoded rate.
func BenchmarkEmulatorFused(b *testing.B) {
	for _, spec := range arch.AllSpecs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			mem := make([]byte, 4096)
			var code []byte
			var err error
			emit := func(in arch.Instr) {
				code, err = arch.Encode(spec, code, in)
				if err != nil {
					b.Fatal(err)
				}
			}
			emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(100000), arch.Reg(1)}})
			top := uint32(len(code))
			emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(1), arch.Reg(2)}})
			emit(arch.Instr{Op: arch.OpSub, N: 3, Operands: [3]arch.Operand{arch.Reg(1), arch.Reg(2), arch.Reg(1)}})
			emit(arch.Instr{Op: arch.OpBrnz, N: 1, Operands: [3]arch.Operand{arch.Reg(1)}, Target: uint16(top)})
			emit(arch.Instr{Op: arch.OpRet})
			pd, err := arch.Predecode(spec, code)
			if err != nil {
				b.Fatal(err)
			}
			fz := arch.Fuse(spec, pd, arch.PlanFusion(pd, nil))
			if fz == nil {
				b.Fatal("countdown loop did not fuse")
			}
			var rn arch.FusedRunner
			b.ResetTimer()
			instrs := 0
			for i := 0; i < b.N; i++ {
				cpu := arch.CPU{FP: 256, TempBase: 512}
				tr, _, n, err := rn.Run(spec, fz, &cpu, mem, 1<<30)
				if err != nil || tr == nil || tr.Kind != arch.TrapRet {
					b.Fatalf("%v %v", tr, err)
				}
				instrs += n
			}
			instrsPerOp := float64(instrs) / float64(b.N)
			secsPerOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(instrsPerOp/secsPerOp/1e6, "emulated-MIPS")
		})
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(exp.Mobile13Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireMoveRoundtrip(b *testing.B) {
	// Marshal+unmarshal of a representative Move message (the enhanced
	// system's biggest wire structure).
	msg := &wire.Msg{Src: 0, Dst: 1, Seq: 42, Payload: &wire.Move{
		Object: 100, CodeOID: 2,
		Data: []wire.Value{wire.IntV(1), wire.RefV(7), wire.StringV([]byte("payload")), wire.RealBitsV(0x40490fdb)},
		Frags: []wire.Fragment{{
			FragID: 9, LinkNode: 0, LinkFrag: 3, Executing: true,
			Acts: []wire.MIActivation{{
				CodeOID: 2, FuncIndex: 1, Stop: 4,
				Vars: []wire.Value{wire.IntV(1), wire.IntV(2), wire.RealBitsV(0x3f800000),
					wire.IntV(4), wire.StringV([]byte("thirteen")), wire.IntV(6), wire.IntV(7),
					wire.RealBitsV(0x41000000), wire.IntV(9), wire.IntV(10), wire.IntV(11),
					wire.IntV(12), wire.IntV(13)},
				Temps: []wire.Value{wire.IntV(5)},
			}},
		}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := msg.Marshal()
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConverters(b *testing.B) {
	codec := arch.VAXFloat{}
	for _, mk := range []struct {
		name string
		c    wire.Converter
	}{
		{"per-value", wire.NewCallConverter()},
		{"batched", wire.NewBatchedConverter()},
		{"raw", wire.NewRawConverter()},
	} {
		mk := mk
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := mk.c.RealToWire(uint32(i), codec)
				if _, err := mk.c.RealFromWire(v, codec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Full-pipeline throughput: compile + run the counter workload end to end
// on one node of each architecture.
func BenchmarkEndToEnd(b *testing.B) {
	prog, err := core.Compile(exp.Fig2Workload)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []netsim.MachineModel{netsim.VAXstation2000, netsim.SPARCstationSLC} {
		m := m
		b.Run(sanitize(m.Family), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(prog, []netsim.MachineModel{m}, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablations promised in DESIGN.md §6.

func BenchmarkAblationBusStopDensity(b *testing.B) {
	var r *exp.BusStopDensityResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.BusStopDensity()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.WithPollsMS, "with-polls-sim-ms")
	b.ReportMetric(r.WithoutPollsMS, "without-polls-sim-ms")
	b.ReportMetric(r.OverheadPct, "poll-overhead-%")
}

func BenchmarkAblationRegisterHomes(b *testing.B) {
	var rs []exp.RegisterHomesResult
	var err error
	for i := 0; i < b.N; i++ {
		rs, err = exp.RegisterHomes()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rs {
		name := strings.Fields(r.Variant)[0]
		b.ReportMetric(r.ComputeMS, name+"-compute-sim-ms")
	}
}

func BenchmarkAblationHomogeneousFastPath(b *testing.B) {
	// Alias of the fast-path row of BenchmarkConversionAblation, kept under
	// the name DESIGN.md announces.
	prog, err := core.Compile(exp.Mobile13Source)
	if err != nil {
		b.Fatal(err)
	}
	var simMS float64
	for i := 0; i < b.N; i++ {
		cfg := kernel.DefaultConfig()
		cfg.Mode = kernel.ModeEnhancedFastPath
		cl, err := kernel.NewCluster(prog,
			[]netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cl.Start(nil)
		if err := cl.Run(80_000_000); err != nil {
			b.Fatal(err)
		}
		elapsed, _ := strconv.Atoi(cl.PrintedLines()[0])
		simMS = float64(elapsed) / 25
	}
	b.ReportMetric(simMS, "sim-ms/2moves")
}
