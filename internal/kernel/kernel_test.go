package kernel

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/lang/parser"
	"repro/internal/lang/types"
	"repro/internal/netsim"
)

// compileSrc compiles source through the full pipeline.
func compileSrc(t testing.TB, src string) *codegen.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := codegen.Compile(ir.Build(info))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// Standard machine models for tests.
var (
	mVAX   = netsim.VAXstation2000
	mSun3  = netsim.Sun3_100
	mHP1   = netsim.HP9000_433s
	mSPARC = netsim.SPARCstationSLC
)

// runSrc runs src on the given models and returns the cluster.
func runSrc(t testing.TB, src string, models []netsim.MachineModel, cfg Config) *Cluster {
	t.Helper()
	p := compileSrc(t, src)
	c, err := NewCluster(p, models, cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	c.Start(nil)
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, c.OutputText())
	}
	for _, f := range c.Faults {
		t.Fatalf("fault: node%d frag%08x: %s\noutput:\n%s", f.Node, f.Frag, f.Msg, c.OutputText())
	}
	return c
}

// expectOutput runs src on one node of each architecture and checks output.
func expectOutput(t *testing.T, src string, want ...string) {
	t.Helper()
	for _, m := range []netsim.MachineModel{mVAX, mSun3, mSPARC} {
		c := runSrc(t, src, []netsim.MachineModel{m}, DefaultConfig())
		got := c.PrintedLines()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d lines, want %d:\n%s", m.Name, len(got), len(want), c.OutputText())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: line %d = %q, want %q", m.Name, i, got[i], want[i])
			}
		}
	}
}

func TestHelloAllArchs(t *testing.T) {
	expectOutput(t, `
object Main
  process
    print("hello, emerald")
  end process
end Main
`, "hello, emerald")
}

func TestArithmeticAllArchs(t *testing.T) {
	expectOutput(t, `
object Main
  process
    var a: Int <- 7
    var b: Int <- 3
    print(a + b, " ", a - b, " ", a * b, " ", a / b, " ", a % b)
    print(-a, " ", abs(-a))
    var x: Real <- 2.5
    var y: Real <- x * 4.0 + a
    print(y)
    print(1 < 2, " ", 2 <= 2, " ", 3 > 4, " ", 3 != 3, " ", true & false, " ", true | false, " ", !false)
  end process
end Main
`,
		"10 4 21 2 1",
		"-7 7",
		"17",
		"true true false false false true true")
}

func TestControlFlowAllArchs(t *testing.T) {
	expectOutput(t, `
object Main
  operation classify(x: Int) -> (r: String)
    if x < 0 then
      r <- "neg"
    elseif x == 0 then
      r <- "zero"
    elseif x < 10 then
      r <- "small"
    else
      r <- "big"
    end
  end
  process
    print(classify(0-5), " ", classify(0), " ", classify(5), " ", classify(50))
    var sum: Int <- 0
    var i: Int <- 1
    while i <= 100 do
      sum <- sum + i
      i <- i + 1
    end
    print(sum)
    var k: Int <- 0
    loop
      k <- k + 3
      exit when k > 10
    end
    print(k)
  end process
end Main
`, "neg zero small big", "5050", "12")
}

func TestObjectsAndInvocation(t *testing.T) {
	expectOutput(t, `
object Counter
  var count: Int <- 100
  operation inc(n: Int) -> (r: Int)
    count <- count + n
    r <- count
  end
  function get() -> (r: Int)
    r <- count
  end
end Counter
object Main
  process
    var c: Counter <- new Counter
    print(c.get())
    print(c.inc(5))
    print(c.inc(10))
    var d: Counter <- new Counter(7)
    print(d.get())
  end process
end Main
`, "100", "105", "115", "7")
}

func TestInitiallyAndConstructorArgs(t *testing.T) {
	expectOutput(t, `
object Pair
  var a: Int <- 1
  var b: Int <- 2
  var sum: Int
  initially
    sum <- a + b
  end initially
  operation total() -> (r: Int)
    r <- sum
  end
end Pair
object Main
  process
    var p: Pair <- new Pair
    print(p.total())
    var q: Pair <- new Pair(10, 20)
    print(q.total())
  end process
end Main
`, "3", "30")
}

func TestStringsAllArchs(t *testing.T) {
	expectOutput(t, `
object Main
  process
    var s: String <- "abc" + "def"
    print(s, " ", s.size(), " ", s[0], " ", s == "abcdef", " ", s < "abd")
    print(str(42) + "!" + str(true) + str(1.5))
  end process
end Main
`, "abcdef 6 97 true true", "42!true1.5")
}

func TestArraysAllArchs(t *testing.T) {
	expectOutput(t, `
object Main
  process
    var a: Array[Int] <- new Array[Int](5)
    var i: Int <- 0
    while i < a.size() do
      a[i] <- i * i
      i <- i + 1
    end
    print(a[0], " ", a[2], " ", a[4], " ", a.size())
    var r: Array[Real] <- new Array[Real](2)
    r[0] <- 1.5
    r[1] <- r[0] + 1
    print(r[1])
  end process
end Main
`, "0 4 16 5", "2.5")
}

func TestRealFormatsAcrossArchs(t *testing.T) {
	// The same program computes identical real values on VAX F-float and
	// IEEE machines (values chosen to be exact in both formats).
	expectOutput(t, `
object Main
  process
    var x: Real <- 0.5
    var y: Real <- x * 8 - 1.25
    print(y, " ", y == 2.75, " ", -y)
  end process
end Main
`, "2.75 true -2.75")
}

func TestSelfAndBareCalls(t *testing.T) {
	expectOutput(t, `
object Fib
  operation fib(n: Int) -> (r: Int)
    if n < 2 then
      r <- n
    else
      r <- fib(n - 1) + self.fib(n - 2)
    end
  end
end Fib
object Main
  process
    var f: Fib <- new Fib
    print(f.fib(15))
  end process
end Main
`, "610")
}

func TestMonitorsAndConditions(t *testing.T) {
	expectOutput(t, `
object Buffer
  monitor
    var item: Int <- 0
    var full: Bool <- false
    var nonempty: Condition
    var nonfull: Condition
    operation put(x: Int)
      while full do
        wait nonfull
      end
      item <- x
      full <- true
      signal nonempty
    end
    operation take() -> (r: Int)
      while !full do
        wait nonempty
      end
      r <- item
      full <- false
      signal nonfull
    end
  end monitor
end Buffer
object Producer
  var buf: Buffer
  var n: Int
  process
    var i: Int <- 1
    while i <= n do
      buf.put(i * 10)
      i <- i + 1
    end
  end process
end Producer
object Main
  var buf: Buffer
  initially
    buf <- new Buffer
  end initially
  process
    var p: Producer <- new Producer(buf, 3)
    print(buf.take())
    print(buf.take())
    print(buf.take())
    print(p == p)
  end process
end Main
`, "10", "20", "30", "true")
}

func TestNodesBuiltins(t *testing.T) {
	c := runSrc(t, `
object Main
  process
    print(nodes(), " ", thisnode(), " ", node(1), " ", thisnode() == node(0))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	if got := c.OutputText(); got != "2 node0 node1 true" {
		t.Errorf("output = %q", got)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"div0", `
object Main
  process
    var z: Int <- 0
    print(5 / z)
  end process
end Main`, "division by zero"},
		{"bounds", `
object Main
  process
    var a: Array[Int] <- new Array[Int](2)
    print(a[5])
  end process
end Main`, "out of bounds"},
		{"nilinvoke", `
object A
  operation f()
  end
end A
object Main
  process
    var a: A <- nil
    a.f()
  end process
end Main`, "on nil"},
		{"badnode", `
object Main
  process
    print(node(99))
  end process
end Main`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compileSrc(t, tc.src)
			c, err := NewCluster(p, []netsim.MachineModel{mSPARC}, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			c.Start(nil)
			if err := c.Run(1_000_000); err != nil {
				t.Fatal(err)
			}
			if len(c.Faults) != 1 {
				t.Fatalf("faults = %v", c.Faults)
			}
			if !strings.Contains(c.Faults[0].Msg, tc.frag) {
				t.Errorf("fault %q does not contain %q", c.Faults[0].Msg, tc.frag)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	src := `
object Worker
  var id: Int
  process
    var i: Int <- 0
    while i < 3 do
      print("worker ", id, " step ", i)
      yield()
      i <- i + 1
    end
  end process
end Worker
object Main
  process
    var a: Worker <- new Worker(1)
    var b: Worker <- new Worker(2)
    print(a == b)
  end process
end Main
`
	c1 := runSrc(t, src, []netsim.MachineModel{mSun3}, DefaultConfig())
	c2 := runSrc(t, src, []netsim.MachineModel{mSun3}, DefaultConfig())
	if c1.OutputText() != c2.OutputText() {
		t.Errorf("nondeterministic output:\n%s\nvs\n%s", c1.OutputText(), c2.OutputText())
	}
	if c1.Sim.Now() != c2.Sim.Now() {
		t.Errorf("nondeterministic time: %d vs %d", c1.Sim.Now(), c2.Sim.Now())
	}
}

func TestSimulatedTimeAdvances(t *testing.T) {
	c := runSrc(t, `
object Main
  process
    var t0: Int <- timems()
    var i: Int <- 0
    while i < 100000 do
      i <- i + 1
    end
    var t1: Int <- timems()
    print(t1 > t0)
  end process
end Main
`, []netsim.MachineModel{mVAX}, DefaultConfig())
	if c.OutputText() != "true" {
		t.Errorf("time did not advance: %s", c.OutputText())
	}
}

func TestIdenticalOutputAcrossArchitectures(t *testing.T) {
	// A broad workload must produce byte-identical output on all three
	// ISAs despite different endianness, float formats and code.
	src := `
object Acc
  var total: Int <- 0
  operation add(v: Int) -> (r: Int)
    total <- total + v
    r <- total
  end
end Acc
object Main
  process
    var acc: Acc <- new Acc
    var xs: Array[Int] <- new Array[Int](10)
    var i: Int <- 0
    while i < 10 do
      xs[i] <- i * 3 + 1
      i <- i + 1
    end
    i <- 0
    var last: Int <- 0
    while i < 10 do
      last <- acc.add(xs[i])
      i <- i + 1
    end
    print("total=", last)
    var msg: String <- "n=" + str(last) + " r=" + str(2.5 * last)
    print(msg)
  end process
end Main
`
	var outs []string
	for _, m := range []netsim.MachineModel{mVAX, mSun3, mSPARC} {
		c := runSrc(t, src, []netsim.MachineModel{m}, DefaultConfig())
		outs = append(outs, c.OutputText())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Errorf("outputs differ:\nvax: %s\nm68k: %s\nsparc: %s", outs[0], outs[1], outs[2])
	}
	if !strings.Contains(outs[0], "total=145") {
		t.Errorf("wrong total: %s", outs[0])
	}
}
