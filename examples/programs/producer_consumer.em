// A monitored bounded buffer with producer/consumer threads; the buffer
// migrates mid-run, taking its waiting threads along. Run with
//   go run ./cmd/emrun -net sun3,sparc examples/programs/producer_consumer.em
object Buffer
  monitor
    var slots: Array[Int]
    var head: Int <- 0
    var count: Int <- 0
    var nonempty: Condition
    var nonfull: Condition
    operation put(v: Int)
      while count == 4 do
        wait nonfull
      end
      slots[(head + count) % 4] <- v
      count <- count + 1
      signal nonempty
    end
    operation take() -> (r: Int)
      while count == 0 do
        wait nonempty
      end
      r <- slots[head]
      head <- (head + 1) % 4
      count <- count - 1
      signal nonfull
    end
  end monitor
  initially
    slots <- new Array[Int](4)
  end initially
end Buffer

object Producer
  var buf: Buffer
  var n: Int
  process
    var i: Int <- 1
    while i <= n do
      buf.put(i * i)
      i <- i + 1
    end
  end process
end Producer

object Main
  var buf: Buffer
  initially
    buf <- new Buffer
  end initially
  process
    var p: Producer <- new Producer(buf, 10)
    var sum: Int <- 0
    var i: Int <- 0
    while i < 10 do
      sum <- sum + buf.take()
      if i == 4 then
        move buf to node(1)   // waiters and monitor state migrate too
      end
      i <- i + 1
    end
    print("sum of squares 1..10 = ", sum, " (buffer ended on ", locate(buf), ")")
    print(p == nil)
  end process
end Main
