// The classic Emerald mobility demo: run with
//   go run ./cmd/emrun -net sparc,vax,sun3,hp1 examples/programs/kilroy.em
object Kilroy
  operation tour() -> (r: String)
    r <- "Kilroy was here:"
    var i: Int <- 0
    while i < nodes() do
      move self to node(i)
      r <- r + " " + str(thisnode())
      i <- i + 1
    end
    move self to node(0)
  end
end Kilroy

object Main
  process
    var k: Kilroy <- new Kilroy
    print(k.tour())
  end process
end Main
