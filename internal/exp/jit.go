// The emjit dispatch study: the same compute-bound register loop run to
// completion on every ISA under the three dispatch tiers — the legacy
// byte-at-a-time reference emulator (arch.Step), the predecoded
// instruction cache, and the fused superinstruction dispatcher — with
// emulated MIPS (simulated instructions per host wall-clock second)
// measured for each.
//
// The simulated observables (trap, cycles, instruction count, final
// registers) are asserted identical across the tiers inside the
// experiment, and the deterministic fields of BENCH_jit.json (instrs,
// cycles, fused run structure) are baseline-gated. The MIPS numbers are
// host wall-clock and therefore carry the "host" field prefix, which
// the baseline comparator skips (see benchcmp.go).

package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/arch"
)

// jitIters picks the loop trip count: 6 instructions per iteration, so
// ~150k iterations is ~0.9M simulated instructions per arm — enough to
// swamp timer granularity while keeping the three-tier × three-ISA
// matrix under a second of host time on the legacy arm.
const jitIters = 150_000

// jitLoop builds the compute kernel: an all-register multiply-accumulate
// countdown, legal on every ISA including the register-only RISC rules
// (immediates enter via mov). The body is one maximal fused run — six
// instructions between the loop-top branch target and the back-branch.
func jitLoop(s *arch.Spec, iters uint32) ([]byte, error) {
	var code []byte
	var err error
	emit := func(in arch.Instr) {
		if err != nil {
			return
		}
		code, err = arch.Encode(s, code, in)
	}
	emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(iters), arch.Reg(1)}})
	top := uint32(len(code))
	emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(3), arch.Reg(3)}})
	emit(arch.Instr{Op: arch.OpMul, N: 3, Operands: [3]arch.Operand{arch.Reg(1), arch.Reg(3), arch.Reg(4)}})
	emit(arch.Instr{Op: arch.OpAdd, N: 3, Operands: [3]arch.Operand{arch.Reg(4), arch.Reg(2), arch.Reg(2)}})
	emit(arch.Instr{Op: arch.OpMov, N: 2, Operands: [3]arch.Operand{arch.Imm(1), arch.Reg(5)}})
	emit(arch.Instr{Op: arch.OpSub, N: 3, Operands: [3]arch.Operand{arch.Reg(1), arch.Reg(5), arch.Reg(1)}})
	emit(arch.Instr{Op: arch.OpBrnz, N: 1, Operands: [3]arch.Operand{arch.Reg(1)}, Target: uint16(top)})
	emit(arch.Instr{Op: arch.OpRet})
	return code, err
}

// jitObs is the simulated outcome of one arm — everything that must be
// identical across dispatch tiers.
type jitObs struct {
	trap   arch.Trap
	cycles uint64
	instrs int
	regs   [16]uint32
}

// jitTime runs the workload once per rep and returns the best wall time
// with the (rep-invariant) observables. Best-of is the standard defense
// against scheduler noise in throughput measurement.
func jitTime(reps int, run func() (jitObs, error)) (jitObs, time.Duration, error) {
	var best time.Duration
	var obs jitObs
	for i := 0; i < reps; i++ {
		start := time.Now()
		o, err := run()
		wall := time.Since(start)
		if err != nil {
			return jitObs{}, 0, err
		}
		if i == 0 {
			obs = o
		} else if o != obs {
			return jitObs{}, 0, fmt.Errorf("rep %d: observables changed across reps: %+v vs %+v", i, o, obs)
		}
		if i == 0 || wall < best {
			best = wall
		}
	}
	return obs, best, nil
}

// JitResult is one ISA's three-tier measurement.
type JitResult struct {
	Arch          string
	Instrs        int
	Cycles        uint64
	FusedRuns     int
	FusedCoverage float64 // fraction of decoded instructions inside fused runs
	LegacyMIPS    float64
	PredecMIPS    float64
	FusedMIPS     float64
}

func mips(instrs int, wall time.Duration) float64 {
	return float64(instrs) / wall.Seconds() / 1e6
}

// JitStudy measures the three dispatch tiers on every ISA.
func JitStudy() ([]JitResult, error) {
	var out []JitResult
	for _, s := range arch.AllSpecs() {
		code, err := jitLoop(s, jitIters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		pd, err := arch.Predecode(s, code)
		if err != nil {
			return nil, fmt.Errorf("%s: predecode: %w", s.Name, err)
		}
		fz := arch.Fuse(s, pd, arch.PlanFusion(pd, nil))
		if fz == nil {
			return nil, fmt.Errorf("%s: compute loop did not fuse", s.Name)
		}
		covered := 0
		for _, n := range fz.RunLens() {
			covered += n
		}

		const budget = 1 << 30
		mem := make([]byte, 4096)
		finish := func(tr *arch.Trap, cpu *arch.CPU, cy uint64, n int, err error) (jitObs, error) {
			if err != nil {
				return jitObs{}, err
			}
			if tr == nil || tr.Kind != arch.TrapRet {
				return jitObs{}, fmt.Errorf("unexpected trap %+v", tr)
			}
			return jitObs{trap: *tr, cycles: cy, instrs: n, regs: cpu.Regs}, nil
		}
		var rn arch.FusedRunner
		arms := []struct {
			name string
			run  func() (jitObs, error)
		}{
			{"legacy", func() (jitObs, error) {
				cpu := arch.CPU{FP: 256, TempBase: 512}
				tr, cy, n, err := arch.RunLegacy(s, &cpu, code, mem, budget)
				return finish(tr, &cpu, cy, n, err)
			}},
			{"predecode", func() (jitObs, error) {
				cpu := arch.CPU{FP: 256, TempBase: 512}
				tr, cy, n, err := arch.RunPredecoded(s, pd, &cpu, mem, budget)
				return finish(tr, &cpu, cy, n, err)
			}},
			{"fused", func() (jitObs, error) {
				cpu := arch.CPU{FP: 256, TempBase: 512}
				tr, cy, n, err := rn.Run(s, fz, &cpu, mem, budget)
				return finish(tr, &cpu, cy, n, err)
			}},
		}
		var obs [3]jitObs
		var wall [3]time.Duration
		for i, arm := range arms {
			o, w, err := jitTime(5, arm.run)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", s.Name, arm.name, err)
			}
			obs[i], wall[i] = o, w
		}
		if obs[1] != obs[0] || obs[2] != obs[0] {
			return nil, fmt.Errorf("%s: dispatch tiers disagree on observables:\nlegacy    %+v\npredecode %+v\nfused     %+v",
				s.Name, obs[0], obs[1], obs[2])
		}
		out = append(out, JitResult{
			Arch:          s.Name,
			Instrs:        obs[0].instrs,
			Cycles:        obs[0].cycles,
			FusedRuns:     fz.NumRuns(),
			FusedCoverage: float64(covered) / float64(pd.NumInstrs()),
			LegacyMIPS:    mips(obs[0].instrs, wall[0]),
			PredecMIPS:    mips(obs[1].instrs, wall[1]),
			FusedMIPS:     mips(obs[2].instrs, wall[2]),
		})
	}
	return out, nil
}

// FormatJit renders the human-readable report.
func FormatJit(rs []JitResult) string {
	var b strings.Builder
	b.WriteString("emjit dispatch study: compute-bound register loop, emulated MIPS per tier\n")
	fmt.Fprintf(&b, "%-8s %9s %11s %6s %6s %9s %9s %9s %9s\n",
		"arch", "instrs", "cycles", "runs", "cover", "legacy", "predec", "fused", "fd/pd")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-8s %9d %11d %6d %5.0f%% %9.1f %9.1f %9.1f %8.2fx\n",
			r.Arch, r.Instrs, r.Cycles, r.FusedRuns, 100*r.FusedCoverage,
			r.LegacyMIPS, r.PredecMIPS, r.FusedMIPS, r.FusedMIPS/r.PredecMIPS)
	}
	b.WriteString("traps, cycles, instruction counts and final registers verified identical\n" +
		"across all three tiers on every ISA (MIPS are host wall-clock)\n")
	return b.String()
}

// BenchJitRow is one ISA in BENCH_jit.json. The host-prefixed fields are
// wall-clock measurements the baseline gate skips; everything else is
// deterministic simulation output.
type BenchJitRow struct {
	Arch            string  `json:"arch"`
	Instrs          int     `json:"instrs"`
	Cycles          uint64  `json:"cycles"`
	FusedRuns       int     `json:"fused_runs"`
	FusedCoverage   float64 `json:"fused_coverage"`
	HostMIPSLegacy  float64 `json:"host_mips_legacy"`
	HostMIPSPredec  float64 `json:"host_mips_predecode"`
	HostMIPSFused   float64 `json:"host_mips_fused"`
	HostFusedSpeedX float64 `json:"host_speedup_fused_vs_predecode"`
}

// BenchJit is the BENCH_jit.json document.
type BenchJit struct {
	Benchmark string        `json:"benchmark"`
	Workload  string        `json:"workload"`
	Claim     string        `json:"claim"`
	Rows      []BenchJitRow `json:"rows"`
}

// BenchJitDoc converts study results to the JSON document.
func BenchJitDoc(rs []JitResult) BenchJit {
	doc := BenchJit{
		Benchmark: "jit",
		Workload:  fmt.Sprintf("all-register multiply-accumulate countdown, %d iterations", jitIters),
		Claim:     "fused superinstruction dispatch outruns predecode on compute-bound code with byte-identical observables",
	}
	for _, r := range rs {
		doc.Rows = append(doc.Rows, BenchJitRow{
			Arch: r.Arch, Instrs: r.Instrs, Cycles: r.Cycles,
			FusedRuns: r.FusedRuns, FusedCoverage: r.FusedCoverage,
			HostMIPSLegacy: r.LegacyMIPS, HostMIPSPredec: r.PredecMIPS,
			HostMIPSFused: r.FusedMIPS, HostFusedSpeedX: r.FusedMIPS / r.PredecMIPS,
		})
	}
	return doc
}
