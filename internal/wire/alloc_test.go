package wire

import "testing"

// allocTestMsg mirrors the representative Move message from
// BenchmarkWireMoveRoundtrip: the enhanced system's biggest wire
// structure, with values of every kind.
func allocTestMsg() *Msg {
	return &Msg{Src: 0, Dst: 1, Seq: 42, Payload: &Move{
		Object: 100, CodeOID: 2,
		Data: []Value{IntV(1), RefV(7), StringV([]byte("payload")), RealBitsV(0x40490fdb)},
		Frags: []Fragment{{
			FragID: 9, LinkNode: 0, LinkFrag: 3, Executing: true,
			Acts: []MIActivation{{
				CodeOID: 2, FuncIndex: 1, Stop: 4,
				Vars: []Value{IntV(1), IntV(2), RealBitsV(0x3f800000),
					IntV(4), StringV([]byte("thirteen")), IntV(6), IntV(7),
					RealBitsV(0x41000000), IntV(9), IntV(10), IntV(11),
					IntV(12), IntV(13)},
				Temps: []Value{IntV(5)},
			}},
		}},
	}}
}

// Marshalling into a caller-held Enc must not allocate at all once the
// Enc's buffer has grown to the message size: this is the kernel's send
// path (sendMsgAck pairs GetEnc with MarshalTo).
func TestMarshalToAllocs(t *testing.T) {
	msg := allocTestMsg()
	e := GetEnc(256)
	defer e.Release()
	msg.MarshalTo(e) // warm: grow the buffer once
	got := testing.AllocsPerRun(100, func() {
		if len(msg.MarshalTo(e)) == 0 {
			t.Fatal("empty marshal")
		}
	})
	if got != 0 {
		t.Errorf("MarshalTo allocates %.1f allocs/run, want 0", got)
	}
}

// Marshal copies the encoding out of a pooled Enc, so its one permitted
// allocation is the returned buffer itself.
func TestMarshalAllocs(t *testing.T) {
	msg := allocTestMsg()
	msg.Marshal() // warm the Enc pool
	got := testing.AllocsPerRun(100, func() {
		if len(msg.Marshal()) == 0 {
			t.Fatal("empty marshal")
		}
	})
	// One alloc for the returned copy; allow one more for a pool miss
	// (sync.Pool may be drained by a concurrent GC).
	if got > 2 {
		t.Errorf("Marshal allocates %.1f allocs/run, want <= 2", got)
	}
}

// Full marshal + unmarshal of the representative Move. The decode side
// shares one Value arena across all value lists of the message, so the
// whole roundtrip is pinned at 8 allocations (1 marshal copy, 7 decode:
// Msg, payload, arena, frags, acts, and two var/temp headers).
func TestRoundtripAllocs(t *testing.T) {
	msg := allocTestMsg()
	got := testing.AllocsPerRun(100, func() {
		buf := msg.Marshal()
		if _, err := Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	})
	// Measured: 8. Allow one pool-miss of headroom, but fail loudly if
	// the zero-alloc work regresses toward the old 17.
	if got > 9 {
		t.Errorf("Marshal+Unmarshal allocates %.1f allocs/run, want <= 9", got)
	}
}
