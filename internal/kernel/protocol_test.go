package kernel

import (
	"testing"

	"repro/internal/netsim"
)

// TestCodeLoadedOncePerNode: the NFS-illusion repository serves each
// (code OID, architecture) at most once per node; subsequent arrivals of
// the same class reuse the loaded code.
func TestCodeLoadedOncePerNode(t *testing.T) {
	c := runSrc(t, `
object Box
  var v: Int
  function get() -> (r: Int)
    r <- v
  end
end Box
object Main
  process
    var sum: Int <- 0
    var i: Int <- 0
    while i < 5 do
      var b: Box <- new Box(i)
      move b to node(1)
      sum <- sum + b.get()
      i <- i + 1
    end
    print(sum)
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX}, DefaultConfig())
	if got := c.OutputText(); got != "10" {
		t.Fatalf("output = %q", got)
	}
	// Fetches: node0 loads Box+Main (+their per-arch entries are one fetch
	// each); node1 loads Box once despite five arrivals.
	if f := c.CodeSrv.Fetches(); f > 3 {
		t.Errorf("code fetched %d times; repeated moves must reuse loaded code", f)
	}
}

// TestMessageEconomy: one remote invocation costs exactly one Invoke plus
// one Return.
func TestMessageEconomy(t *testing.T) {
	c := runSrc(t, `
object Echo
  operation ping(x: Int) -> (r: Int)
    r <- x + 1
  end
end Echo
object Main
  process
    var e: Echo <- new Echo
    move e to node(1)
    print(e.ping(1))
    print(e.ping(2))
    print(e.ping(3))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mSun3}, DefaultConfig())
	if got := c.OutputText(); got != "2\n3\n4" {
		t.Fatalf("output = %q", got)
	}
	// 1 Move + 3×(Invoke+Return) = 7 messages.
	total := c.Nodes[0].MsgsSent + c.Nodes[1].MsgsSent
	if total != 7 {
		t.Errorf("messages = %d, want 7 (1 move + 3 invoke/return pairs)", total)
	}
}

// TestHintsAvoidExtraTraffic: passing a reference to a third object in a
// remote invocation ships a location hint, so the receiver can invoke it
// directly without a broadcast or extra hop.
func TestHintsAvoidExtraTraffic(t *testing.T) {
	c := runSrc(t, `
object Data
  var v: Int
  function get() -> (r: Int)
    r <- v
  end
end Data
object Reader
  operation read(d: Data) -> (r: Int)
    r <- d.get()
  end
end Reader
object Main
  process
    var d: Data <- new Data(99)
    var rd: Reader <- new Reader
    move rd to node(1)
    // rd receives a reference to d (still on node 0) plus a hint; its
    // callback lands directly on node 0.
    print(rd.read(d))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mHP1}, DefaultConfig())
	if got := c.OutputText(); got != "99" {
		t.Fatalf("output = %q", got)
	}
	// Move + Invoke(read) + Invoke(get) + Return(get) + Return(read) = 5.
	total := c.Nodes[0].MsgsSent + c.Nodes[1].MsgsSent
	if total != 5 {
		t.Errorf("messages = %d, want 5 (hints should avoid locate traffic)", total)
	}
}

// TestForwardingConvergence: after a chain of moves, a stale caller's
// invocation is forwarded along forwarding addresses and the caller's
// knowledge converges (UpdateLoc), so the next call goes direct.
func TestForwardingConvergence(t *testing.T) {
	c := runSrc(t, `
object Target
  var hits: Int <- 0
  operation hit() -> (r: Int)
    hits <- hits + 1
    r <- hits
  end
end Target
object Main
  process
    var o: Target <- new Target
    move o to node(1)
    move o to node(2)
    move o to node(3)
    print(o.hit())
    print(o.hit())
    print(locate(o))
  end process
end Main
`, []netsim.MachineModel{mSPARC, mVAX, mSun3, mHP1}, DefaultConfig())
	got := c.PrintedLines()
	if len(got) != 3 || got[0] != "1" || got[1] != "2" || got[2] != "node3" {
		t.Fatalf("output = %v", got)
	}
	// The second hit must not be forwarded: node0 learned the location from
	// the first call's UpdateLoc chain. Expect node3 to have received
	// exactly: 1 Move + 2 Invokes (+1 possible Locate).
	if c.Nodes[3].MsgsRecv > 4 {
		t.Errorf("node3 received %d messages; forwarding did not converge", c.Nodes[3].MsgsRecv)
	}
}

// TestWirePayloadIsNetworkFormat: everything that crosses the simulated
// wire is real serialized bytes; payload counters must match non-trivial
// traffic for a migration-heavy run.
func TestWirePayloadIsNetworkFormat(t *testing.T) {
	c := runSrc(t, threadMoveSrc, []netsim.MachineModel{mVAX, mSun3, mSPARC}, DefaultConfig())
	if c.Net.PayloadLen == 0 || c.Net.Frames == 0 {
		t.Fatal("no wire traffic recorded")
	}
	if c.Net.Bytes <= c.Net.PayloadLen {
		t.Error("framing overhead missing")
	}
}

// TestSliceBudgetPreemption: a long-running compute loop cannot starve
// other threads on the node — the poll/preempt mechanism interleaves them.
func TestSliceBudgetPreemption(t *testing.T) {
	c := runSrc(t, `
object Spinner
  process
    var i: Int <- 0
    while i < 200000 do
      i <- i + 1
    end
    print("spinner done")
  end process
end Spinner
object Main
  process
    var s: Spinner <- new Spinner
    print("main alive ", s == nil)
    yield()
    print("main again")
  end process
end Main
`, []netsim.MachineModel{mSPARC}, DefaultConfig())
	got := c.PrintedLines()
	if len(got) != 3 {
		t.Fatalf("output = %v", got)
	}
	// Main's lines must appear before the spinner finishes.
	if got[0] != "main alive false" || got[1] != "main again" || got[2] != "spinner done" {
		t.Errorf("interleaving wrong: %v", got)
	}
}
