// Negative fixture: Main's process thread reaches an Anchor instance
// that initialization fixes to a node, so the thread's reachable closure
// cannot migrate as a unit.
object Anchor
  operation ping() -> (r: Int)
    r <- 1
  end
end Anchor

object Main
  var a: Anchor
  initially
    a <- new Anchor
    fix a at thisnode()
  end initially
  process
    print(a.ping())
  end process
end Main
