// Differential validation of the dispatch tiers: every example program,
// on every ISA (homogeneous clusters) plus the heterogeneous Figure 1
// network, must behave identically under the legacy byte-at-a-time
// emulator (arch.Step), the predecoded instruction cache, and the fused
// superinstruction dispatcher — same printed lines, same per-node cycle
// and instruction counts, same faults, same final memory images, and a
// byte-identical rendered event stream (which embeds every trap-driven
// kernel event). A second matrix shrinks the scheduling slice so threads
// are constantly suspended at arbitrary PCs — including PCs inside fused
// runs — proving the mid-run per-instruction fallback is exact.
package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// dispatchRun is the full observable projection of one run.
type dispatchRun struct {
	lines    []string
	elapsed  float64
	faults   []string
	cycles   []uint64
	instrs   []uint64
	memSum   [][]byte // final memory image per node
	eventLog []byte
}

// dispatchArms enumerates the three dispatch tiers. All arms of one
// (program, network, slice) cell must be byte-identical.
var dispatchArms = []struct {
	name string
	opts Options
}{
	{"fused", Options{}}, // the default path
	{"predecode", Options{NoFuse: true}},
	{"legacy", Options{LegacyDispatch: true}},
}

func captureDispatch(t *testing.T, src string, machines []netsim.MachineModel, opts Options) dispatchRun {
	t.Helper()
	sys, err := RunSource(src, machines, opts)
	if err != nil {
		t.Fatalf("run (%+v): %v", opts, err)
	}
	r := dispatchRun{
		lines:    sys.Lines(),
		elapsed:  sys.ElapsedMS(),
		eventLog: obs.EventLog(sys.Recorder()),
	}
	for _, f := range sys.Cluster.Faults {
		r.faults = append(r.faults, fmt.Sprintf("node %d frag %d at %v: %s", f.Node, f.Frag, f.At, f.Msg))
	}
	for _, n := range sys.Cluster.Nodes {
		r.cycles = append(r.cycles, n.CPU.Cycles)
		r.instrs = append(r.instrs, n.Instrs)
		r.memSum = append(r.memSum, append([]byte(nil), n.Mem...))
	}
	return r
}

func diffDispatchRuns(t *testing.T, arm string, got, ref dispatchRun) {
	t.Helper()
	if len(got.lines) != len(ref.lines) {
		t.Fatalf("printed lines: %d (%s) vs %d (reference)\n%v\nvs\n%v",
			len(got.lines), arm, len(ref.lines), got.lines, ref.lines)
	}
	for i := range got.lines {
		if got.lines[i] != ref.lines[i] {
			t.Errorf("line %d: %q (%s) vs %q (reference)", i, got.lines[i], arm, ref.lines[i])
		}
	}
	if got.elapsed != ref.elapsed {
		t.Errorf("elapsed: %v ms (%s) vs %v ms (reference)", got.elapsed, arm, ref.elapsed)
	}
	if len(got.faults) != len(ref.faults) {
		t.Fatalf("faults: %v (%s) vs %v (reference)", got.faults, arm, ref.faults)
	}
	for i := range got.faults {
		if got.faults[i] != ref.faults[i] {
			t.Errorf("fault %d: %q vs %q", i, got.faults[i], ref.faults[i])
		}
	}
	for i := range got.cycles {
		if got.cycles[i] != ref.cycles[i] {
			t.Errorf("node %d cycles: %d (%s) vs %d (reference)", i, got.cycles[i], arm, ref.cycles[i])
		}
		if got.instrs[i] != ref.instrs[i] {
			t.Errorf("node %d instrs: %d (%s) vs %d (reference)", i, got.instrs[i], arm, ref.instrs[i])
		}
		if !bytes.Equal(got.memSum[i], ref.memSum[i]) {
			t.Errorf("node %d final memory image differs (%s vs reference)", i, arm)
		}
	}
	if !bytes.Equal(got.eventLog, ref.eventLog) {
		t.Errorf("rendered event streams differ (%s vs reference)", arm)
	}
}

func diffNets() []struct {
	name     string
	machines []netsim.MachineModel
} {
	// One homogeneous cluster per ISA, plus the heterogeneous Figure 1
	// network so cross-ISA conversion paths run under every dispatcher.
	return []struct {
		name     string
		machines []netsim.MachineModel
	}{
		{"vax", []netsim.MachineModel{netsim.VAXstation2000, netsim.VAXstation2000, netsim.VAXstation2000}},
		{"m68k", []netsim.MachineModel{netsim.Sun3_100, netsim.HP9000_433s, netsim.HP9000_385}},
		{"sparc", []netsim.MachineModel{netsim.SPARCstationSLC, netsim.SPARCstationSLC, netsim.SPARCstationSLC}},
		{"figure1", Figure1Network()},
	}
}

func examplePrograms(t *testing.T) []string {
	t.Helper()
	progs, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.em"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	return progs
}

func TestDispatchDifferential(t *testing.T) {
	for _, pf := range examplePrograms(t) {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			t.Fatalf("reading %s: %v", pf, err)
		}
		src := string(srcBytes)
		for _, net := range diffNets() {
			t.Run(filepath.Base(pf)+"/"+net.name, func(t *testing.T) {
				ref := captureDispatch(t, src, net.machines, dispatchArms[0].opts)
				for _, arm := range dispatchArms[1:] {
					got := captureDispatch(t, src, net.machines, arm.opts)
					diffDispatchRuns(t, arm.name, got, ref)
				}
				if len(ref.lines) == 0 {
					t.Error("program printed nothing; differential comparison is vacuous")
				}
			})
		}
	}
}

// TestDispatchDifferentialTinySlice reruns the matrix with a 13-instruction
// scheduling slice on the Figure 1 network. Threads are then preempted at
// essentially every program point — in particular at PCs *inside* fused
// runs, and at run heads with too little budget left to cover the run —
// so each resumed slice exercises the fused dispatcher's per-instruction
// (and mid-encoding Step) fallback before reaching the next run head.
// Arms are compared only within this slice size: a different slice
// budget legitimately changes scheduling interleavings, so the tiny-
// slice cell has its own reference arm.
func TestDispatchDifferentialTinySlice(t *testing.T) {
	progs := examplePrograms(t)
	net := Figure1Network()
	for _, pf := range progs {
		srcBytes, err := os.ReadFile(pf)
		if err != nil {
			t.Fatalf("reading %s: %v", pf, err)
		}
		src := string(srcBytes)
		t.Run(filepath.Base(pf), func(t *testing.T) {
			ref := captureDispatch(t, src, net, Options{SliceInstrs: 13})
			for _, arm := range dispatchArms[1:] {
				opts := arm.opts
				opts.SliceInstrs = 13
				got := captureDispatch(t, src, net, opts)
				diffDispatchRuns(t, arm.name, got, ref)
			}
		})
	}
}
