# The tier-1 gate: everything `make ci` runs must stay green on every
# commit (see ROADMAP.md). The emvet step keeps the example corpus clean
# under the mobility-soundness analyzer on every ISA.

GO ?= go

.PHONY: ci build test vet emvet race

ci: vet build race emvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

emvet:
	$(GO) run ./cmd/emvet examples/programs/*.em
