package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/netsim"
)

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("object M\n  operation f(\nend M"); err == nil ||
		!strings.Contains(err.Error(), "parse") {
		t.Errorf("parse error not surfaced: %v", err)
	}
	if _, err := Compile(`
object M
  operation f() -> (r: Int)
    r <- "x"
  end
end M`); err == nil || !strings.Contains(err.Error(), "typecheck") {
		t.Errorf("type error not surfaced: %v", err)
	}
}

func TestRunSourceQuickstart(t *testing.T) {
	sys, err := RunSource(`
object Main
  process
    print("n=", nodes())
  end process
end Main
`, Figure1Network(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Output() != "n=4" {
		t.Errorf("output = %q", sys.Output())
	}
	if sys.ElapsedMS() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestFaultsBecomeErrors(t *testing.T) {
	_, err := RunSource(`
object Main
  process
    var z: Int <- 0
    print(1 / z)
  end process
end Main
`, []netsim.MachineModel{netsim.SPARCstationSLC}, Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("fault not surfaced: %v", err)
	}
}

func TestPlacement(t *testing.T) {
	sys, err := RunSource(`
object Main
  process
    print(thisnode())
  end process
end Main
`, Figure1Network(), Options{
		Placement: func(name string, i int) int { return 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Output() != "node2" {
		t.Errorf("output = %q", sys.Output())
	}
}

func TestFigure1NetworkShape(t *testing.T) {
	net := Figure1Network()
	if len(net) != 4 {
		t.Fatalf("nodes = %d", len(net))
	}
	archs := map[byte]bool{}
	for _, m := range net {
		archs[m.Arch] = true
	}
	if len(archs) != 3 {
		t.Errorf("figure 1 must span all three ISAs, got %d", len(archs))
	}
}

func TestModeThreading(t *testing.T) {
	prog, err := Compile(`
object Main
  process
    print("x")
  end process
end Main`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(prog, Figure1Network(), Options{Mode: kernel.ModeOriginal}); err == nil {
		t.Error("original mode on a heterogeneous network must be rejected")
	}
}
