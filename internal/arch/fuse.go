// Superinstruction fusion: the paper's mobility contract only requires
// machine-dependent state to reconverge at bus stops, so everything
// *between* stops may be optimized freely. The predecoded dispatcher
// (predecode.go) still pays per-instruction costs — a table lookup, a
// call into exec, and an operand-mode switch per read/write. Fusion
// removes them for straight-line code: PlanFusion partitions a decoded
// function into maximal runs whose interiors contain no bus stop, no
// branch target and no always-trapping instruction, and Fuse compiles
// each run once into a chain of operand-pre-resolved closures that a
// single table lookup dispatches end to end, with the run's register
// slots cached in executor locals and written back only at run exit or
// on a fault path (see fexec.go and DESIGN.md §16).
//
// Step remains the semantic oracle: any PC that is not a run head — a
// migration resume mid-run, a computed jump into an encoding, a slice
// budget too small for the next run — executes on the existing
// per-instruction path, so observable behavior (traps, faults, cycle
// charges, memory images, event streams) is byte-identical to RunLegacy.

package arch

import (
	"bytes"
	"sync/atomic"
)

// minFuseRun is the shortest stretch worth compiling: a single
// instruction gains nothing over the per-instruction path and would pay
// the run entry/exit register traffic.
const minFuseRun = 2

// fuseRegSlots bounds how many distinct registers one run caches in
// executor locals; runs touching more fall back to direct CPU-struct
// access for the overflow registers (still exact, just not cached).
const fuseRegSlots = 8

// fuseBuilds counts Fuse invocations process-wide; the kernel tests pin
// "fusion runs exactly once per loadedFunc" against deltas of it.
var fuseBuilds atomic.Uint64

// FuseBuildCount reports how many times Fuse has compiled a fusion plan
// into a fused program since process start.
func FuseBuildCount() uint64 { return fuseBuilds.Load() }

// PlanRun is one superinstruction run boundary: N consecutive decoded
// instructions starting at PC Head.
type PlanRun struct {
	Head uint32
	N    int32
}

// FusePlan records the run boundaries of one predecoded function. It is
// machine-metadata only (no closures), so the code generator stamps it
// next to FuncCode.Decoded at compile time and every node that loads the
// function reuses it.
type FusePlan struct {
	Runs []PlanRun
}

// alwaysTraps reports ops that unconditionally (or, for OpPoll,
// preemption-dependently) enter the kernel: every such site is a bus
// stop and must terminate a run before it.
func alwaysTraps(op Op) bool {
	return op == OpPoll || op == OpRet || op == OpTrap || op == OpUnlq
}

func isBranch(op Op) bool { return op == OpJmp || op == OpBrz || op == OpBrnz }

// PlanFusion computes run boundaries over a predecoded function. A run
// head is PC 0, a branch target, a bus-stop PC (stopPCs), or the first
// instruction after a terminator; a run ends at (and includes) a branch,
// or before a run head, an always-trapping instruction, or end of code.
// Faulting-capable instructions (memory operands, div/mod, string and
// array ops) are allowed in interiors: the fused executor writes cached
// state back before delivering their trap (fexec.go).
func PlanFusion(p *Predecoded, stopPCs []uint32) *FusePlan {
	plan := &FusePlan{}
	n := len(p.instrs)
	if n == 0 {
		return plan
	}
	starts := make([]uint32, n)
	pc := uint32(0)
	for i := range p.instrs {
		starts[i] = pc
		pc += p.instrs[i].Size
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.instrs {
		if isBranch(p.instrs[i].Op) {
			if j := p.indexAt(uint32(p.instrs[i].Target)); j >= 0 {
				leader[j] = true
			}
		}
	}
	for _, spc := range stopPCs {
		if j := p.indexAt(spc); j >= 0 {
			leader[j] = true
		}
	}
	for i := 0; i < n; {
		if alwaysTraps(p.instrs[i].Op) {
			i++
			continue
		}
		j := i
		for {
			if isBranch(p.instrs[j].Op) {
				j++ // branch terminates the run and belongs to it
				break
			}
			j++
			if j >= n || leader[j] || alwaysTraps(p.instrs[j].Op) {
				break
			}
		}
		if j-i >= minFuseRun {
			plan.Runs = append(plan.Runs, PlanRun{Head: starts[i], N: int32(j - i)})
		}
		i = j
	}
	return plan
}

// Fused is one function's compiled superinstruction program: the
// predecoded cache plus, for each planned run, a closure chain with
// pre-resolved operands. Like Predecoded it is immutable once built and
// safe to share across goroutines; all mutable execution state lives in
// the caller's FusedRunner.
type Fused struct {
	p    *Predecoded
	runs []fusedRun
	at   []int32 // PC -> run index for run heads; -1 otherwise
}

// fusedRun is one compiled run.
type fusedRun struct {
	ops  []fop
	regs []byte   // cache slot i holds machine register regs[i]
	pcs  []uint32 // per-op start PC (fault-path CPU.PC, like Step)
	npcs []uint32 // per-op next PC (fault-path trap PC)
	end  uint32   // fallthrough PC after the last instruction
}

// NumRuns reports how many runs were compiled.
func (fz *Fused) NumRuns() int { return len(fz.runs) }

// RunLens returns the instruction count of every compiled run.
func (fz *Fused) RunLens() []int {
	out := make([]int, len(fz.runs))
	for i := range fz.runs {
		out[i] = len(fz.runs[i].ops)
	}
	return out
}

// Fuse compiles a fusion plan into a fused program for one spec. s must
// be the spec p was predecoded for (cycle charges and float codecs are
// baked into the closures). Returns nil when the plan yields no
// compilable run, in which case callers dispatch over p directly. Fuse
// runs once per loaded function — re-fusing on migration re-install
// would be pure waste, which FuseBuildCount lets tests pin.
func Fuse(s *Spec, p *Predecoded, plan *FusePlan) *Fused {
	fuseBuilds.Add(1)
	if p == nil || plan == nil || len(plan.Runs) == 0 {
		return nil
	}
	fz := &Fused{p: p, at: make([]int32, len(p.code))}
	for i := range fz.at {
		fz.at[i] = -1
	}
	for _, pr := range plan.Runs {
		fz.compileRun(s, pr)
	}
	if len(fz.runs) == 0 {
		return nil
	}
	return fz
}

func (fz *Fused) compileRun(s *Spec, pr PlanRun) {
	idx := fz.p.indexAt(pr.Head)
	if idx < 0 {
		return
	}
	b := &fuser{s: s}
	for i := range b.slotOf {
		b.slotOf[i] = -1
	}
	var fr fusedRun
	pc := pr.Head
	for k := 0; k < int(pr.N) && int(idx)+k < len(fz.p.instrs); k++ {
		in := &fz.p.instrs[int(idx)+k]
		npc := pc + in.Size
		op := b.fuseInstr(in, npc)
		if op == nil {
			break // defensive: plan included an uncompilable op
		}
		fr.ops = append(fr.ops, op)
		fr.pcs = append(fr.pcs, pc)
		fr.npcs = append(fr.npcs, npc)
		pc = npc
	}
	if len(fr.ops) < minFuseRun {
		return
	}
	fr.end = pc
	fr.regs = b.regs
	fz.at[pr.Head] = int32(len(fz.runs))
	fz.runs = append(fz.runs, fr)
}

// fuser compiles one run's instructions, allocating register cache slots
// on first touch. A register either gets a slot (and every access in the
// run goes through it) or, past fuseRegSlots distinct registers, is
// accessed directly in the CPU struct — never both, so the two views
// cannot diverge.
type fuser struct {
	s      *Spec
	regs   []byte
	slotOf [16]int8
}

func (b *fuser) regSlot(r byte) int {
	r &= 0xf
	if si := b.slotOf[r]; si >= 0 {
		return int(si)
	}
	if len(b.regs) >= fuseRegSlots {
		return -1
	}
	si := len(b.regs)
	b.regs = append(b.regs, r)
	b.slotOf[r] = int8(si)
	return si
}

// rdFn/wrFn are pre-resolved operand accessors: the addressing-mode
// switch of dexec.read/write runs once at fuse time, not per execution.
type (
	rdFn func(*fexec) uint32
	wrFn func(*fexec, uint32)
)

// rd builds a source-operand reader with dexec.read's exact semantics
// (cycle charges before the access, Pop's depth decrement before the
// load, first-fault-wins recording).
func (b *fuser) rd(o *Operand) rdFn {
	switch o.Mode {
	case ModeImm:
		v := o.Imm
		return func(*fexec) uint32 { return v }
	case ModeReg:
		if si := b.regSlot(o.Reg); si >= 0 {
			return func(e *fexec) uint32 { return e.r[si] }
		}
		k := o.Reg & 0xf
		return func(e *fexec) uint32 { return e.cpu.Regs[k] }
	case ModeFrame:
		d := uint32(o.Disp)
		return func(e *fexec) uint32 {
			e.cycles += uint64(e.mc)
			v, ok := e.ld32(e.fp + d)
			if !ok {
				return e.setFault(FaultStack)
			}
			return v
		}
	case ModeSelf:
		d := ObjDataOff + uint32(o.Disp)
		return func(e *fexec) uint32 {
			e.cycles += uint64(e.mc)
			v, ok := e.ld32(e.self + d)
			if !ok {
				return e.setFault(FaultNilRef)
			}
			return v
		}
	case ModeLit:
		d := 4 * uint32(o.Disp)
		return func(e *fexec) uint32 {
			e.cycles += uint64(e.mc)
			v, ok := e.ld32(e.litBase + d)
			if !ok {
				return e.setFault(FaultNilRef)
			}
			return v
		}
	case ModePop:
		return func(e *fexec) uint32 {
			e.cycles += uint64(e.mc)
			if e.depth <= 0 {
				return e.setFault(FaultStack)
			}
			e.depth--
			v, ok := e.ld32(e.tempBase + 4*uint32(e.depth))
			if !ok {
				return e.setFault(FaultStack)
			}
			return v
		}
	}
	return func(e *fexec) uint32 { return e.setFault(FaultStack) }
}

// wr builds a destination-operand writer with dexec.write's exact
// semantics (Push increments depth only after a successful store).
func (b *fuser) wr(o *Operand) wrFn {
	switch o.Mode {
	case ModeReg:
		if si := b.regSlot(o.Reg); si >= 0 {
			return func(e *fexec, v uint32) { e.r[si] = v }
		}
		k := o.Reg & 0xf
		return func(e *fexec, v uint32) { e.cpu.Regs[k] = v }
	case ModeFrame:
		d := uint32(o.Disp)
		return func(e *fexec, v uint32) {
			e.cycles += uint64(e.mc)
			if !e.st32(e.fp+d, v) {
				e.setFault(FaultStack)
			}
		}
	case ModeSelf:
		d := ObjDataOff + uint32(o.Disp)
		return func(e *fexec, v uint32) {
			e.cycles += uint64(e.mc)
			if !e.st32(e.self+d, v) {
				e.setFault(FaultNilRef)
			}
		}
	case ModePush:
		return func(e *fexec, v uint32) {
			e.cycles += uint64(e.mc)
			if !e.st32(e.tempBase+4*uint32(e.depth), v) {
				e.setFault(FaultStack)
			} else {
				e.depth++
			}
		}
	}
	return func(e *fexec, _ uint32) { e.setFault(FaultStack) }
}

// regOperand reports the cache slot of a register operand, or -1.
func (b *fuser) regOperand(o *Operand) int {
	if o.Mode != ModeReg {
		return -1
	}
	return b.regSlot(o.Reg)
}

// fuseInstr compiles one instruction into a closure, or nil when the op
// cannot live inside a run (always-trapping ops, unknown ops). Each
// closure mirrors the matching dexec.exec case: operand evaluation
// order, fault precedence, cycle charges and next-PC rules are
// identical, which the differential tests pin.
func (b *fuser) fuseInstr(in *Instr, npc uint32) fop {
	s := b.s
	cyc := uint64(s.Cycles[in.Op])
	switch in.Op {
	case OpMov:
		// Hot flat forms first: immediate or register moves between cached
		// slots compile to straight assignments.
		if di := b.regOperand(&in.Operands[1]); di >= 0 {
			if in.Operands[0].Mode == ModeImm {
				v := in.Operands[0].Imm
				return func(e *fexec) {
					e.cycles += cyc
					e.r[di] = v
				}
			}
			if si := b.regOperand(&in.Operands[0]); si >= 0 {
				return func(e *fexec) {
					e.cycles += cyc
					e.r[di] = e.r[si]
				}
			}
		}
		rd := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[1])
		// Like Step, the write runs even when the read faulted (storing 0
		// with all its side effects); the run stops right after.
		return func(e *fexec) {
			e.cycles += cyc
			wr(e, rd(e))
		}

	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpScc:
		op, cc := in.Op, in.CC
		s1 := b.regOperand(&in.Operands[0])
		s2 := b.regOperand(&in.Operands[1])
		sd := b.regOperand(&in.Operands[2])
		if s1 >= 0 && s2 >= 0 && sd >= 0 {
			// All-register form: no operand can fault, so the closure is a
			// straight computation on cached slots.
			switch op {
			case OpAdd:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[sd] = uint32(int32(e.r[s1]) + int32(e.r[s2]))
				}
			case OpSub:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[sd] = uint32(int32(e.r[s1]) - int32(e.r[s2]))
				}
			case OpMul:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[sd] = uint32(int32(e.r[s1]) * int32(e.r[s2]))
				}
			case OpAnd:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[sd] = boolW(e.r[s1] != 0 && e.r[s2] != 0)
				}
			case OpOr:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[sd] = boolW(e.r[s1] != 0 || e.r[s2] != 0)
				}
			case OpScc:
				return func(e *fexec) {
					e.cycles += cyc
					a, bb := e.r[s1], e.r[s2]
					e.r[sd] = ccHolds(cc, int32(a) < int32(bb), a == bb)
				}
			case OpDiv:
				return func(e *fexec) {
					e.cycles += cyc
					bb := e.r[s2]
					if bb == 0 {
						e.trap = &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: npc}
						e.stop = true
						return
					}
					e.r[sd] = uint32(int32(e.r[s1]) / int32(bb))
				}
			case OpMod:
				return func(e *fexec) {
					e.cycles += cyc
					bb := e.r[s2]
					if bb == 0 {
						e.trap = &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: npc}
						e.stop = true
						return
					}
					e.r[sd] = uint32(int32(e.r[s1]) % int32(bb))
				}
			}
		}
		// General form: src2 (stack top) evaluated before src1, write
		// suppressed after a fault, like dexec.
		rd2 := b.rd(&in.Operands[1])
		rd1 := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[2])
		return func(e *fexec) {
			e.cycles += cyc
			bb := rd2(e)
			a := rd1(e)
			if e.fault != 0 {
				return
			}
			var v uint32
			switch op {
			case OpAdd:
				v = uint32(int32(a) + int32(bb))
			case OpSub:
				v = uint32(int32(a) - int32(bb))
			case OpMul:
				v = uint32(int32(a) * int32(bb))
			case OpDiv:
				if bb == 0 {
					e.trap = &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: npc}
					e.stop = true
					return
				}
				v = uint32(int32(a) / int32(bb))
			case OpMod:
				if bb == 0 {
					e.trap = &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: npc}
					e.stop = true
					return
				}
				v = uint32(int32(a) % int32(bb))
			case OpAnd:
				v = boolW(a != 0 && bb != 0)
			case OpOr:
				v = boolW(a != 0 || bb != 0)
			case OpScc:
				v = ccHolds(cc, int32(a) < int32(bb), a == bb)
			}
			wr(e, v)
		}

	case OpNeg, OpAbs, OpNot:
		op := in.Op
		if si, di := b.regOperand(&in.Operands[0]), b.regOperand(&in.Operands[1]); si >= 0 && di >= 0 {
			switch op {
			case OpNeg:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[di] = uint32(-int32(e.r[si]))
				}
			case OpAbs:
				return func(e *fexec) {
					e.cycles += cyc
					x := int32(e.r[si])
					if x < 0 {
						x = -x
					}
					e.r[di] = uint32(x)
				}
			case OpNot:
				return func(e *fexec) {
					e.cycles += cyc
					e.r[di] = boolW(e.r[si] == 0)
				}
			}
		}
		rd := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[1])
		return func(e *fexec) {
			e.cycles += cyc
			a := rd(e)
			if e.fault != 0 {
				return
			}
			var v uint32
			switch op {
			case OpNeg:
				v = uint32(-int32(a))
			case OpAbs:
				x := int32(a)
				if x < 0 {
					x = -x
				}
				v = uint32(x)
			case OpNot:
				v = boolW(a == 0)
			}
			wr(e, v)
		}

	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFScc:
		op, cc, fl := in.Op, in.CC, s.Float
		rd2 := b.rd(&in.Operands[1])
		rd1 := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[2])
		return func(e *fexec) {
			e.cycles += cyc
			bb := fl.Dec(rd2(e))
			a := fl.Dec(rd1(e))
			if e.fault != 0 {
				return
			}
			switch op {
			case OpFAdd:
				wr(e, fl.Enc(a+bb))
			case OpFSub:
				wr(e, fl.Enc(a-bb))
			case OpFMul:
				wr(e, fl.Enc(a*bb))
			case OpFDiv:
				if bb == 0 {
					e.trap = &Trap{Kind: TrapFault, Fault: FaultDivZero, PC: npc}
					e.stop = true
					return
				}
				wr(e, fl.Enc(a/bb))
			case OpFScc:
				wr(e, ccHolds(cc, a < bb, a == bb))
			}
		}

	case OpFNeg:
		fl := s.Float
		rd := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[1])
		return func(e *fexec) {
			e.cycles += cyc
			a := fl.Dec(rd(e))
			if e.fault != 0 {
				return
			}
			wr(e, fl.Enc(-a))
		}

	case OpCvt:
		fl := s.Float
		rd := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[1])
		return func(e *fexec) {
			e.cycles += cyc
			a := int32(rd(e))
			if e.fault != 0 {
				return
			}
			wr(e, fl.Enc(float32(a)))
		}

	case OpSScc:
		cc := in.CC
		rd2 := b.rd(&in.Operands[1])
		rd1 := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[2])
		return func(e *fexec) {
			e.cycles += cyc
			bref := rd2(e)
			aref := rd1(e)
			if e.fault != 0 {
				return
			}
			as, ok1 := e.readString(aref)
			bs, ok2 := e.readString(bref)
			if !ok1 || !ok2 {
				e.trap = &Trap{Kind: TrapFault, Fault: FaultNilRef, PC: npc}
				e.stop = true
				return
			}
			e.cycles += uint64(min(len(as), len(bs)))
			c := bytes.Compare(as, bs)
			wr(e, ccHolds(cc, c < 0, c == 0))
		}

	case OpJmp:
		target := uint32(in.Target)
		return func(e *fexec) {
			e.cycles += cyc
			e.npc = target
		}

	case OpBrz, OpBrnz:
		wantZero := in.Op == OpBrz
		target := uint32(in.Target)
		if si := b.regOperand(&in.Operands[0]); si >= 0 {
			return func(e *fexec) {
				e.cycles += cyc
				if (e.r[si] == 0) == wantZero {
					e.npc = target
					e.cycles++ // taken-branch penalty
				}
			}
		}
		rd := b.rd(&in.Operands[0])
		return func(e *fexec) {
			e.cycles += cyc
			v := rd(e)
			if e.fault != 0 {
				return
			}
			if (v == 0) == wantZero {
				e.npc = target
				e.cycles++
			}
		}

	case OpALoad:
		rdIdx := b.rd(&in.Operands[1])
		rdArr := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[2])
		return func(e *fexec) {
			e.cycles += cyc
			idx := rdIdx(e)
			arr := rdArr(e)
			if e.fault != 0 {
				return
			}
			if arr == 0 {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			n, ok := e.ld32(arr + LenOff)
			if !ok {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			if idx >= n {
				e.fuseTrap(FaultBounds, npc)
				return
			}
			v, ok := e.ld32(arr + ArrDataOff + 4*idx)
			if !ok {
				e.fuseTrap(FaultBounds, npc)
				return
			}
			wr(e, v)
		}

	case OpAStor:
		rdVal := b.rd(&in.Operands[2])
		rdIdx := b.rd(&in.Operands[1])
		rdArr := b.rd(&in.Operands[0])
		return func(e *fexec) {
			e.cycles += cyc
			v := rdVal(e)
			idx := rdIdx(e)
			arr := rdArr(e)
			if e.fault != 0 {
				return
			}
			if arr == 0 {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			n, ok := e.ld32(arr + LenOff)
			if !ok {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			if idx >= n {
				e.fuseTrap(FaultBounds, npc)
				return
			}
			if !e.st32(arr+ArrDataOff+4*idx, v) {
				e.fuseTrap(FaultBounds, npc)
			}
		}

	case OpALen, OpSLen:
		rd := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[1])
		return func(e *fexec) {
			e.cycles += cyc
			ref := rd(e)
			if e.fault != 0 {
				return
			}
			if ref == 0 {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			n, ok := e.ld32(ref + LenOff)
			if !ok {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			wr(e, n)
		}

	case OpSIdx:
		rdIdx := b.rd(&in.Operands[1])
		rdRef := b.rd(&in.Operands[0])
		wr := b.wr(&in.Operands[2])
		return func(e *fexec) {
			e.cycles += cyc
			idx := rdIdx(e)
			ref := rdRef(e)
			if e.fault != 0 {
				return
			}
			str, ok := e.readString(ref)
			if !ok {
				e.fuseTrap(FaultNilRef, npc)
				return
			}
			if idx >= uint32(len(str)) {
				e.fuseTrap(FaultBounds, npc)
				return
			}
			wr(e, uint32(str[idx]))
		}
	}
	return nil
}
