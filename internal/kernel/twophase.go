// Two-phase commit for object moves, active only under a chaos plan. The
// source node prepares a move without destroying anything: marshalling is
// read-only, and every destructive completion (stack restructuring,
// fragment retirement, residency flip) is collected as a deferred commit
// operation. The object stays resident until the destination acknowledges
// the install with a MoveAck; only then do the deferred operations run. On
// a negative ack, or when the Move was never delivered and the destination
// is suspected down, the move aborts: suspended fragments resume, parked
// operations replay locally, and the move is requeued for retry (degrading
// to remote invocation if the destination stays suspect). Chaos-off, the
// deferred operations execute inline at their historical program points, so
// behavior and the event stream are byte-identical to previous releases.

package kernel

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/wire"
)

// suspendedFrag remembers a fragment's pre-transit scheduling state.
type suspendedFrag struct {
	f    *Frag
	prev FragState
}

// moveTxn is one in-flight move of one object.
type moveTxn struct {
	obj  *Obj
	dest int
	fix  bool
	span uint32
	// live: chaos is on, so destructive operations defer until commit.
	live bool
	// delivered: the Move frame was link-acknowledged by the destination.
	delivered bool
	// commitOps are the deferred destructive completions, in program order.
	commitOps []func()
	// suspended fragments sit in FragStateInTransit until commit or abort.
	suspended []suspendedFrag
	// parked operations arrived for the object mid-transit; they replay in
	// arrival order once the move resolves (remotely after commit, locally
	// after abort).
	parked []func()
	// moveFrame is the reliable link frame carrying the Move.
	moveFrame *pendingFrame
	// stalledTimer: the commit timer fired while the source was down.
	stalledTimer bool
	// dirBatch groups this transaction with the rest of its MoveGroup
	// cohort so the directory commits the whole cohort in batched group
	// decrees (nil for solo moves or when group decrees are disabled).
	dirBatch *dirGroupBatch
	// dirPending: the transaction has been handed to the directory; a
	// duplicate positive MoveAck (the destination re-acks replayed Moves)
	// must not open a second decree for the same slot.
	dirPending bool
}

func (n *Node) newMoveTxn(o *Obj, dest int, fix bool) *moveTxn {
	return &moveTxn{obj: o, dest: dest, fix: fix, live: n.chaosOn()}
}

// do runs f immediately when the transaction is not live (chaos off) —
// preserving the historical execution order exactly — and defers it to
// commit otherwise.
func (tx *moveTxn) do(f func()) {
	if tx.live {
		tx.commitOps = append(tx.commitOps, f)
		return
	}
	f()
}

// suspend parks a fragment for the duration of the transit.
func (tx *moveTxn) suspend(f *Frag) {
	prev := f.Status
	if prev == FragStateRunning {
		prev = FragStateReady
	}
	tx.suspended = append(tx.suspended, suspendedFrag{f: f, prev: prev})
	f.Status = FragStateInTransit
}

// resumeSuspended restores the pre-transit scheduling state of every
// fragment still in transit (fragments retired by commit operations are
// already dead and skipped).
func (n *Node) resumeSuspended(tx *moveTxn) {
	for _, s := range tx.suspended {
		if s.f.Status != FragStateInTransit {
			continue
		}
		s.f.Status = s.prev
		if s.prev == FragStateReady {
			n.enqueue(s.f)
		}
	}
	tx.suspended = nil
}

// replayParked replays operations that arrived mid-transit, in order.
func (n *Node) replayParked(tx *moveTxn) {
	parked := tx.parked
	tx.parked = nil
	for _, op := range parked {
		op()
	}
}

// beginTransit registers a live transaction: the object is pinned for the
// collector, incoming operations park, and the commit timer arms.
func (n *Node) beginTransit(tx *moveTxn, span uint32) {
	tx.span = span
	tx.moveFrame = n.lastFrame
	tx.obj.transit = tx
	n.exported[tx.obj.OID] = true
	n.pendingCommits[span] = tx
	n.armCommitTimer(tx)
}

// armCommitTimer watches one commit window. If the window closes with the
// Move still undelivered and the destination suspected down, the move
// aborts; an undelivered Move to a healthy-looking destination just gets
// another window (retransmission is still working on it). Once the Move is
// delivered the timer retires: the destination's MoveAck travels on the
// reliable link and will arrive whenever the destination is up.
func (n *Node) armCommitTimer(tx *moveTxn) {
	n.sched.At(n.cluster.Chaos.CommitWindow(), func() {
		if _, live := n.pendingCommits[tx.span]; !live {
			return
		}
		if !n.Up {
			tx.stalledTimer = true // restart re-arms
			return
		}
		if tx.delivered {
			return
		}
		if !n.suspects[tx.dest] {
			n.armCommitTimer(tx)
			return
		}
		n.abortMove(tx, "timeout")
	})
}

// recvMoveAck resolves a pending move transaction.
func (n *Node) recvMoveAck(src int, p *wire.MoveAck) {
	tx, ok := n.pendingCommits[p.SpanID]
	if !ok {
		if n.abortedSpans[p.SpanID] && p.Ok {
			// The residual fail-stop corner: the destination installed a
			// Move whose transaction this node had already aborted (the
			// original frame outlived the abort). Both copies now exist;
			// flag it loudly rather than corrupt silently.
			n.cluster.Rec.Metrics().Add("move_conflicts", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
			n.tracef("CONFLICT: node%d installed aborted move span %d of %v", src, p.SpanID, p.Object)
		}
		return
	}
	if p.Ok {
		if n.cluster.dirOn {
			// Third commit participant: record the new home in the
			// replicated directory before releasing the object, so a
			// post-crash locate is one shard query. Degraded decrees
			// still commit — the forwarding chase covers staleness.
			if tx.dirPending {
				return // duplicate ack; a decree is already in flight
			}
			tx.dirPending = true
			if tx.dirBatch != nil {
				n.dirBatchAcked(tx)
				return
			}
			n.dirProposeMove(tx)
			return
		}
		n.commitMove(tx)
		return
	}
	n.abortMove(tx, "refused: "+p.Err)
}

// commitMove runs the deferred destructive completions and releases the
// object: it is now resident at the destination.
func (n *Node) commitMove(tx *moveTxn) {
	delete(n.pendingCommits, tx.span)
	ops := tx.commitOps
	tx.commitOps = nil
	for _, op := range ops {
		op()
	}
	n.resumeSuspended(tx)
	tx.obj.transit = nil
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvMoveCommit,
		Span: tx.span, Obj: uint32(tx.obj.OID), B: uint64(tx.dest)})
	n.cluster.Rec.Metrics().Add("move_commits", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	n.replayParked(tx)
}

// abortMove rolls a move back: nothing destructive has happened, so the
// object simply stays resident. Suspended fragments resume, parked
// operations replay locally, and the move requeues for a later retry.
func (n *Node) abortMove(tx *moveTxn, reason string) {
	n.dirBatchDrop(tx)
	delete(n.pendingCommits, tx.span)
	n.abortedSpans[tx.span] = true
	if pf := tx.moveFrame; pf != nil && !pf.acked {
		// The Move must not install at the destination, but its link
		// sequence number must still be delivered — in-order release would
		// otherwise stall on the gap forever. Swap the payload for a
		// harmless same-sequence filler: a negative MoveAck for this very
		// span, which the destination ignores.
		noop := &wire.Msg{Src: int32(n.ID), Dst: int32(pf.dst), Seq: n.nextSeq(),
			Payload: &wire.MoveAck{Object: tx.obj.OID, SpanID: tx.span, Epoch: tx.obj.Epoch,
				Ok: false, Err: "aborted"}}
		pf.frame = (&wire.LinkFrame{Kind: wire.LData, Seq: pf.seq, Inner: noop.Marshal()}).Marshal()
		pf.kind = "moveack"
	}
	tx.obj.Epoch--
	tx.obj.transit = nil
	tx.commitOps = nil
	n.resumeSuspended(tx)
	n.cluster.Rec.Emit(obs.Event{At: int64(n.now()), Node: int32(n.ID), Kind: obs.EvMoveAbort,
		Span: tx.span, Obj: uint32(tx.obj.OID), B: uint64(tx.dest), Str: reason})
	n.cluster.Rec.Metrics().Add("move_aborts", obs.NodeLabels(n.ID, n.Spec.ID.String()), 1)
	n.replayParked(tx)
	n.pendingMoves = append(n.pendingMoves, pendingMove{tx.obj.OID, tx.dest, tx.fix})
	n.armMoveRetry()
}

// armMoveRetry schedules a retryPendingMoves pass (chaos only). The timer
// is strong: a requeued move is unfinished work.
func (n *Node) armMoveRetry() {
	n.sched.At(n.cluster.Chaos.RetryMoveAfter(), func() {
		if !n.Up {
			n.moveRetryStalled = true
			return
		}
		n.retryPendingMoves()
	})
}

// validateMove structurally validates an inbound Move against this node's
// templates before anything is installed: fragment piece indices, bus
// stops, value counts, stack fit, monitor references and location hints.
// Under chaos a malformed Move is refused with a protocol error the
// source's abort path handles; it must never panic the destination.
func (n *Node) validateMove(p *wire.Move) error {
	for _, h := range p.Hints {
		if int(h.Node) < 0 || int(h.Node) >= len(n.cluster.Nodes) {
			return fmt.Errorf("hint for %v names node %d; cluster has %d nodes",
				h.OID, h.Node, len(n.cluster.Nodes))
		}
	}
	if p.IsArray {
		if len(p.Frags) > 0 || p.MonLocked || len(p.EntryQueue) > 0 || len(p.CondQueues) > 0 {
			return fmt.Errorf("array move carries thread or monitor state")
		}
		if ir.VK(p.ArrayElemKind) > ir.VKPtr {
			return fmt.Errorf("bad array element kind %d", p.ArrayElemKind)
		}
		if len(p.Data) > 1<<20 {
			return fmt.Errorf("array length %d too large", len(p.Data))
		}
		return nil
	}
	lc, err := n.loadCode(p.CodeOID)
	if err != nil {
		return fmt.Errorf("code %v: %v", p.CodeOID, err)
	}
	tmpl := lc.oc.Template
	if len(p.Data) != len(tmpl.Slots) {
		return fmt.Errorf("object has %d data slots; template %s declares %d",
			len(p.Data), lc.oc.Name, len(tmpl.Slots))
	}
	fragIDs := map[uint32]bool{}
	for i := range p.Frags {
		wf := &p.Frags[i]
		if fragIDs[wf.FragID] {
			return fmt.Errorf("duplicate fragment id %08x", wf.FragID)
		}
		fragIDs[wf.FragID] = true
		if wf.Status > wire.FragWaitCond {
			return fmt.Errorf("fragment %08x: bad status %d", wf.FragID, wf.Status)
		}
		if wf.Status == wire.FragWaitCond && int(wf.CondIndex) >= tmpl.NumConds {
			return fmt.Errorf("fragment %08x: condition index %d out of range (%d conditions)",
				wf.FragID, wf.CondIndex, tmpl.NumConds)
		}
		if len(wf.Acts) == 0 {
			return fmt.Errorf("fragment %08x has no activations", wf.FragID)
		}
		var total uint32
		for ai := range wf.Acts {
			a := &wf.Acts[ai]
			alc, err := n.loadCode(a.CodeOID)
			if err != nil {
				return fmt.Errorf("fragment %08x activation %d: %v", wf.FragID, ai, err)
			}
			if int(a.FuncIndex) >= len(alc.funcs) {
				return fmt.Errorf("fragment %08x activation %d: function index %d out of range (%d functions)",
					wf.FragID, ai, a.FuncIndex, len(alc.funcs))
			}
			lf := alc.funcs[a.FuncIndex]
			t := lf.fc.Template
			if len(a.Vars) > len(t.Vars) {
				return fmt.Errorf("fragment %08x activation %d (%s): %d vars; template declares %d",
					wf.FragID, ai, lf.name(), len(a.Vars), len(t.Vars))
			}
			if a.Stop == wire.EntryStop {
				if len(a.Temps) > 0 {
					return fmt.Errorf("fragment %08x activation %d (%s): entry stop with %d temporaries",
						wf.FragID, ai, lf.name(), len(a.Temps))
				}
			} else {
				stop, err := lf.fc.Stops.ByStop(int(a.Stop))
				if err != nil {
					return fmt.Errorf("fragment %08x activation %d (%s): %v",
						wf.FragID, ai, lf.name(), err)
				}
				if len(a.Temps) > stop.TempDepth+1 {
					return fmt.Errorf("fragment %08x activation %d (%s): %d temporaries at stop %d (depth %d)",
						wf.FragID, ai, lf.name(), len(a.Temps), a.Stop, stop.TempDepth)
				}
			}
			total += uint32(t.Size)
		}
		if total > n.cluster.StackSize {
			return fmt.Errorf("fragment %08x needs %d stack bytes; region is %d",
				wf.FragID, total, n.cluster.StackSize)
		}
	}
	if p.MonLocked && !fragIDs[p.MonHolder] {
		return fmt.Errorf("monitor holder %08x not among migrated fragments", p.MonHolder)
	}
	for _, id := range p.EntryQueue {
		if !fragIDs[id] {
			return fmt.Errorf("monitor entrant %08x not among migrated fragments", id)
		}
	}
	if len(p.CondQueues) > tmpl.NumConds {
		return fmt.Errorf("%d condition queues; template %s declares %d conditions",
			len(p.CondQueues), lc.oc.Name, tmpl.NumConds)
	}
	for k, q := range p.CondQueues {
		for _, id := range q {
			if !fragIDs[id] {
				return fmt.Errorf("condition %d waiter %08x not among migrated fragments", k, id)
			}
		}
	}
	return nil
}
