// Fused execution state and dispatch loop. fexec is the superinstruction
// counterpart of dexec: one instance carries a whole run, with the
// kernel-owned bases (FP, Self, TempBase, LitBase — machine instructions
// never write them) hoisted once per RunFused call and the run's cached
// register slots plus temp-stack depth loaded at run entry and written
// back at run exit or before any trap delivery. Memory writes stay eager:
// only registers and depth are cached, so the final memory image is
// byte-identical to the legacy path by construction.

package arch

// fop executes one fused instruction against the shared executor state.
type fop func(*fexec)

// fexec is the mutable state threaded through a run's closures.
type fexec struct {
	s   *Spec
	cpu *CPU
	mem []byte

	// Hoisted per RunFused call (kernel-owned, instruction-immutable).
	fp       uint32
	self     uint32
	tempBase uint32
	litBase  uint32
	mc       uint32 // s.MemCycles

	// Per-run state.
	depth  int32     // cached cpu.TempDepth
	npc    uint32    // next PC; branches redirect it, fallthrough pre-set
	cycles uint64    // accumulated over the whole RunFused call
	fault  FaultCode // first fault of the current instruction; 0 = none
	trap   *Trap     // explicit trap (div-zero, bounds, nil-ref)
	stop   bool      // terminate the run after the current closure
	r      [fuseRegSlots]uint32
}

func (e *fexec) ld32(addr uint32) (uint32, bool) {
	if int(addr)+4 > len(e.mem) || addr == 0 {
		return 0, false
	}
	return e.s.ByteOrd.Uint32(e.mem[addr : addr+4]), true
}

func (e *fexec) st32(addr, v uint32) bool {
	if int(addr)+4 > len(e.mem) || addr == 0 {
		return false
	}
	e.s.ByteOrd.PutUint32(e.mem[addr:addr+4], v)
	return true
}

func (e *fexec) readString(ref uint32) ([]byte, bool) {
	if ref == 0 {
		return nil, false
	}
	n, ok := e.ld32(ref + LenOff)
	if !ok || int(ref)+ArrDataOff+int(n) > len(e.mem) {
		return nil, false
	}
	return e.mem[ref+ArrDataOff : ref+ArrDataOff+n], true
}

// setFault records the first fault of the instruction (like dexec) and
// marks the run stopped. The current closure keeps executing — Step's
// contract lets e.g. a Mov's write run after a faulted read — and the
// run loop delivers the fault trap once the closure returns.
func (e *fexec) setFault(f FaultCode) uint32 {
	if e.fault == 0 {
		e.fault = f
	}
	e.stop = true
	return 0
}

// fuseTrap stops the run with an explicit fault trap at next-PC npc
// (the early-return trap cases of dexec.exec: bounds, nil-ref).
func (e *fexec) fuseTrap(f FaultCode, npc uint32) {
	e.trap = &Trap{Kind: TrapFault, Fault: f, PC: npc}
	e.stop = true
}

// exec runs one fused run to completion or early stop. Returns the trap
// (nil on normal exit or budget-free completion) and the number of
// instructions executed. cpu.PC must equal the run head on entry.
func (fr *fusedRun) exec(e *fexec) (*Trap, int) {
	cpu := e.cpu
	for i, m := range fr.regs {
		e.r[i] = cpu.Regs[m]
	}
	e.depth = cpu.TempDepth
	e.npc = fr.end
	e.fault = 0
	e.trap = nil
	e.stop = false
	for i := 0; i < len(fr.ops); i++ {
		fr.ops[i](e)
		if e.stop {
			// Write-back discipline: cached slots and depth reconverge
			// before the trap becomes visible, so the kernel (and any
			// migration snapshot) sees exactly the legacy-path state.
			for k, m := range fr.regs {
				cpu.Regs[m] = e.r[k]
			}
			cpu.TempDepth = e.depth
			// Like Step, a faulting instruction leaves cpu.PC at its own
			// start; the trap's PC is the next instruction.
			cpu.PC = fr.pcs[i]
			tr := e.trap
			if tr == nil {
				tr = &Trap{Kind: TrapFault, Fault: e.fault, PC: fr.npcs[i]}
			}
			return tr, i + 1
		}
	}
	for k, m := range fr.regs {
		cpu.Regs[m] = e.r[k]
	}
	cpu.TempDepth = e.depth
	cpu.PC = e.npc
	return nil, len(fr.ops)
}

// FusedRunner executes fused programs. It exists so steady-state
// dispatch allocates nothing: the executor state (including the register
// cache array the closures capture through the *fexec) lives in the
// runner, and a kernel node reuses one runner across every slice it
// runs. The zero value is ready to use. Not safe for concurrent use.
type FusedRunner struct {
	e fexec
	d dexec
}

// Run executes up to budget instructions of fz, dispatching whole runs
// at run-head PCs and falling back to the per-instruction path (and,
// off the decode grid, to Step) everywhere else — including when the
// remaining budget cannot cover the next run, so budget semantics match
// RunPredecoded exactly. Observables (traps, faults, cycles, instruction
// counts, memory and register effects) are byte-identical to RunLegacy,
// which the differential suite pins.
func (rn *FusedRunner) Run(s *Spec, fz *Fused, cpu *CPU, mem []byte, budget int) (*Trap, uint64, int, error) {
	p := fz.p
	e := &rn.e
	e.s, e.cpu, e.mem = s, cpu, mem
	e.fp, e.self = cpu.FP, cpu.Self
	e.tempBase, e.litBase = cpu.TempBase, cpu.LitBase
	e.mc = s.MemCycles
	e.cycles = 0
	d := &rn.d
	d.s, d.cpu, d.mem = s, cpu, mem
	for n := 0; n < budget; {
		pc := cpu.PC
		if int64(pc) < int64(len(fz.at)) {
			if ri := fz.at[pc]; ri >= 0 {
				fr := &fz.runs[ri]
				if budget-n >= len(fr.ops) {
					tr, did := fr.exec(e)
					n += did
					if tr != nil {
						return tr, e.cycles, n, nil
					}
					continue
				}
			}
		}
		var (
			tr  *Trap
			c   uint32
			err error
		)
		if int64(pc) < int64(len(p.index)) && p.index[pc] >= 0 {
			tr, c, err = d.exec(&p.instrs[p.index[pc]], pc)
		} else {
			tr, c, err = Step(s, cpu, p.code, mem)
		}
		e.cycles += uint64(c)
		n++
		if err != nil {
			return nil, e.cycles, n, err
		}
		if tr != nil {
			return tr, e.cycles, n, nil
		}
	}
	return nil, e.cycles, budget, nil
}

// RunFused is the convenience form for callers without a long-lived
// runner (tests, benchmarks). Kernel nodes hold a FusedRunner instead so
// dispatch stays allocation-free.
func RunFused(s *Spec, fz *Fused, cpu *CPU, mem []byte, budget int) (*Trap, uint64, int, error) {
	var rn FusedRunner
	return rn.Run(s, fz, cpu, mem, budget)
}
